(* Quickstart: build a simulated SMP machine, run a multithreaded
   malloc/free loop against glibc's ptmalloc, and look at what the paper
   looks at — per-thread elapsed time, lock contention, arena growth.

     dune exec examples/quickstart.exe *)

module M = Core.Machine
module A = Core.Allocator

let () =
  (* A machine like the paper's first host: dual 200 MHz Pentium Pro. *)
  let machine = M.create ~seed:42 Core.Configs.dual_pentium_pro in

  (* One process whose threads share one allocator — the paper's
     "two threads sharing the same C library" configuration. *)
  let proc = M.create_proc machine ~name:"app" () in
  let ptmalloc = Core.Ptmalloc.make proc () in
  let alloc = Core.Ptmalloc.allocator ptmalloc in

  (* Two workers, each doing balanced 512-byte malloc/free pairs. *)
  let iterations = 20_000 in
  let workers =
    List.init 2 (fun i ->
        M.spawn proc ~name:(Printf.sprintf "worker-%d" i) (fun ctx ->
            for _ = 1 to iterations do
              let block = alloc.A.malloc ctx 512 in
              (* Touch the block like an application would. *)
              M.write_mem ctx block;
              alloc.A.free ctx block
            done))
  in

  (* Run the simulation to completion and report. *)
  M.run machine;
  List.iteri
    (fun i w ->
      let stats = M.thread_stats w in
      Printf.printf "worker %d: %.3f simulated ms, %d context switches, %d lock blocks\n" i
        (M.elapsed_ns w /. 1e6) stats.M.ctx_switches stats.M.blocks)
    workers;
  Printf.printf "arenas created: %d (ptmalloc grows one per contended thread)\n"
    (Core.Ptmalloc.arena_count ptmalloc);
  Printf.printf "heap address space: %d KB\n" (Core.Ptmalloc.heap_bytes ptmalloc / 1024);
  match alloc.A.validate () with
  | Ok () -> print_endline "heap invariants: OK"
  | Error msg -> Printf.printf "heap invariants VIOLATED: %s\n" msg
