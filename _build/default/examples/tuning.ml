(* Tuning the allocator, the paper's section 3 aside: "an application can
   invoke mallopt(3) to enable some of these features". Shows
   M_MMAP_THRESHOLD rerouting big requests, mallinfo accounting, and what
   the glibc-2.3 fastbin evolution buys the 40-byte path.

     dune exec examples/tuning.exe *)

module M = Core.Machine
module A = Core.Allocator

let show_mallinfo label pt =
  let i = Core.Ptmalloc.mallinfo pt in
  Printf.printf "%-26s arena=%6dB used=%6dB free=%6dB mmapped=%d blocks (%dB) top=%dB\n" label
    i.Core.Ptmalloc.arena i.Core.Ptmalloc.uordblks i.Core.Ptmalloc.fordblks i.Core.Ptmalloc.hblks
    i.Core.Ptmalloc.hblkhd i.Core.Ptmalloc.keepcost

let () =
  let machine = M.create ~seed:3 Core.Configs.dual_pentium_pro in
  let proc = M.create_proc machine ~name:"tuned" () in
  let pt = Core.Ptmalloc.make proc () in
  let alloc = Core.Ptmalloc.allocator pt in
  ignore
    (M.spawn proc (fun ctx ->
         (* A mixed footprint, then a snapshot. *)
         let small = List.init 50 (fun _ -> alloc.A.malloc ctx 40) in
         let medium = alloc.A.malloc ctx 8192 in
         show_mallinfo "default thresholds:" pt;

         (* Push the mmap threshold down: big blocks leave the arena. *)
         Core.Ptmalloc.mallopt pt (Core.Ptmalloc.Mmap_threshold 4096);
         let big = alloc.A.malloc ctx 8192 in
         show_mallinfo "M_MMAP_THRESHOLD=4096:" pt;

         (* The classic calloc/realloc/memalign trio work on any allocator. *)
         let table = A.calloc alloc ctx ~count:64 ~size:16 in
         let table = A.realloc alloc ctx table 2048 in
         let line_buf = A.memalign alloc ctx ~alignment:32 100 in
         Printf.printf "calloc+realloc block: %dB usable; memalign -> 0x%x (mod 32 = %d)\n"
           (alloc.A.usable_size table) line_buf (line_buf mod 32);

         A.free_aligned alloc ctx line_buf;
         alloc.A.free ctx table;
         alloc.A.free ctx big;
         alloc.A.free ctx medium;
         List.iter (fun u -> alloc.A.free ctx u) small;
         show_mallinfo "after draining:" pt));
  M.run machine;

  (* Fastbins: time the paper's benchmark-1 loop at 40 bytes both ways. *)
  let time_pairs use_fastbins =
    let m = M.create ~seed:3 Core.Configs.dual_pentium_pro in
    let p = M.create_proc m () in
    let params = { Core.Dlheap.default_params with Core.Dlheap.use_fastbins } in
    let a = Core.Ptmalloc.allocator (Core.Ptmalloc.make p ~params ()) in
    let th =
      M.spawn p (fun ctx ->
          for _ = 1 to 10_000 do
            let u = a.A.malloc ctx 40 in
            a.A.free ctx u
          done)
    in
    M.run m;
    M.elapsed_ns th /. 10_000.
  in
  let classic = time_pairs false and fast = time_pairs true in
  Printf.printf "\n40B malloc/free pair: glibc 2.0/2.1 %.0f ns, with fastbins %.0f ns (%.0f%% saved)\n"
    classic fast
    ((classic -. fast) /. classic *. 100.)
