examples/quickstart.mli:
