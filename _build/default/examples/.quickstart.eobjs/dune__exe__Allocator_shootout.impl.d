examples/allocator_shootout.ml: Core List Printf
