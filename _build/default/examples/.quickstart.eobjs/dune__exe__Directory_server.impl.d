examples/directory_server.ml: Core Printf
