examples/directory_server.mli:
