examples/false_sharing.ml: Core List Printf
