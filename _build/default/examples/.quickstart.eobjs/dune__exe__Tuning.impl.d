examples/tuning.ml: Core List Printf
