examples/tuning.mli:
