(* Benchmark 3 in miniature: watch two threads' small heap objects share
   a cache line and ping-pong between CPUs, then fix it with the
   line-aligning wrapper. Prints the actual object addresses so the line
   overlap is visible.

     dune exec examples/false_sharing.exe *)

let line_size = 32 (* the paper's Pentium III L1 line *)

let run ~aligned ~size =
  let params =
    { Core.Bench3.default with
      Core.Bench3.machine = Core.Configs.quad_xeon;
      threads = 2;
      object_size = size;
      writes = 300_000;
      aligned;
      seed = 5;
    }
  in
  Core.Bench3.run params

let describe label (r : Core.Bench3.result) =
  Printf.printf "%-14s elapsed %6.2f s (scaled to 100M writes), %7d line transfers\n" label
    r.Core.Bench3.scaled_s r.Core.Bench3.transfers;
  List.iteri
    (fun i addr ->
      Printf.printf "  object %d at 0x%08x: front in line %d, back in line %d\n" i addr
        (addr / line_size)
        ((addr + r.Core.Bench3.params.Core.Bench3.object_size - 1) / line_size))
    r.Core.Bench3.addresses

let () =
  let size = 24 in
  Printf.printf "two threads each writing a %d-byte heap object 100M times (4-way Xeon):\n\n" size;
  let normal = run ~aligned:false ~size in
  describe "normal:" normal;
  print_newline ();
  let aligned = run ~aligned:true ~size in
  describe "cache-aligned:" aligned;
  print_newline ();
  Printf.printf "false-sharing slowdown: %.2fx (the paper observes 2-4x)\n"
    (normal.Core.Bench3.scaled_s /. aligned.Core.Bench3.scaled_s);
  Printf.printf "alignment padding cost for %dB objects: up to %d bytes each\n" size
    (Core.Aligned.padding_overhead ~line_size size)
