(* The scenario that motivated the paper (section 2): an iPlanet-style
   directory server — one multithreaded process, many small requests,
   per-connection state freed by whichever worker touches the connection
   next. Compares the stock allocator with the per-thread-cache fix the
   iPlanet team shipped, which "exceeded a factor of six on
   four-processor hardware".

     dune exec examples/directory_server.exe *)

let run_with factory =
  let params =
    { Core.Server.default with
      Core.Server.machine = Core.Configs.quad_xeon;
      threads = 4;
      requests_per_thread = 3_000;
      connections = 512;
      factory;
      probe_latency = true;
    }
  in
  Core.Server.run params

let report label (r : Core.Server.result) =
  Printf.printf "%-22s %10.0f req/s   foreign frees: %6d   contended ops: %6d\n" label
    r.Core.Server.requests_per_second r.Core.Server.foreign_frees r.Core.Server.contended_ops;
  match r.Core.Server.latency with
  | Some p ->
      Printf.printf "%-22s malloc latency mean %.0f ns, p99 %.0f ns\n" "" p.Core.Server.malloc_mean_ns
        p.Core.Server.malloc_p99_ns
  | None -> ()

let () =
  print_endline "directory server on 4x500MHz Xeon, 4 worker threads, 12000 requests:";
  print_newline ();
  let ptmalloc = run_with (Core.Factory.ptmalloc ()) in
  report "glibc ptmalloc:" ptmalloc;
  let serial = run_with (Core.Factory.serial_glibc ()) in
  report "single-lock malloc:" serial;
  let perthread = run_with (Core.Factory.perthread ()) in
  report "per-thread caches:" perthread;
  print_newline ();
  Printf.printf "per-thread vs single-lock speedup: %.1fx (the paper reports >6x for the real fix)\n"
    (perthread.Core.Server.requests_per_second /. serial.Core.Server.requests_per_second)
