lib/cache/coherence.ml: Hashtbl Int Set
