lib/cache/coherence.mli:
