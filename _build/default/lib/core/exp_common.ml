module Bench1 = Mb_workload.Bench1
module Summary = Mb_stats.Summary

type opts = { quick : bool; seed : int }

let default_opts = { quick = false; seed = 1 }

let quick_opts = { quick = true; seed = 1 }

let pick opts ~full ~quick = if opts.quick then quick else full

let bench1_runs params ~runs =
  let results =
    List.init runs (fun i -> Bench1.run { params with Bench1.seed = params.Bench1.seed + (i * 101) })
  in
  let workers = params.Bench1.workers in
  let per_position =
    List.init workers (fun pos ->
        Summary.of_list (List.map (fun r -> List.nth r.Bench1.scaled_s pos) results))
  in
  (per_position, results)

let mean_of summaries =
  let total = List.fold_left (fun acc s -> acc +. s.Summary.mean) 0. summaries in
  total /. float_of_int (List.length summaries)

let single_thread_time params =
  let r = Bench1.run { params with Mb_workload.Bench1.workers = 1 } in
  List.hd r.Bench1.scaled_s

let paper_series ~label pts = Mb_stats.Series.make ~label pts
