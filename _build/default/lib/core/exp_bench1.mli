(** Reproductions of the paper's benchmark 1 artifacts: Tables 1–4 and
    Figures 1–4 (multithread scalability on the three SMP hosts). *)

val xeon_cost_scale : float
(** Per-host calibration multiplier for the 500 MHz Xeon (DESIGN.md). *)

val table1 : Exp_common.opts -> Outcome.t
(** Two threads sharing a heap vs two processes, dual Pentium Pro. *)

val fig1 : Exp_common.opts -> Outcome.t
(** Elapsed time vs thread count (1–6), dual Pentium Pro, 8 KB requests. *)

val fig2 : Exp_common.opts -> Outcome.t
(** Elapsed time for 8–64 threads, 4100-byte requests. *)

val table2 : Exp_common.opts -> Outcome.t
(** Threads vs processes under the Solaris single-lock allocator. *)

val fig3 : Exp_common.opts -> Outcome.t
(** Thread scalability collapse on Solaris (1–5 threads). *)

val table3 : Exp_common.opts -> Outcome.t
(** Threads vs processes on the 4-way Xeon. *)

val fig4 : Exp_common.opts -> Outcome.t
(** Thread scalability on the 4-way Xeon (1–6 threads). *)

val table4 : Exp_common.opts -> Outcome.t
(** Run-time variance of the 3-thread Xeon runs (cache sloshing). *)
