(** Reproductions of the paper's benchmark 2 artifacts: Figures 5–8 and
    the minor-page-fault lower-bound predictor of section 5.2. *)

val predictor : Exp_common.opts -> Outcome.t
(** Fits our own fault predictor from single-thread runs and compares
    its structure with the paper's 14 + 1.1*t*r + 127.6*t. *)

val fig5 : Exp_common.opts -> Outcome.t
(** Single thread, rounds 1–8 on the uniprocessor K6: no heap
    contention, faults track the predictor exactly. *)

val fig6 : Exp_common.opts -> Outcome.t
(** Three threads: leakage variance appears. *)

val fig7 : Exp_common.opts -> Outcome.t
(** Seven threads: relative variance shrinks as statistics level
    subheap imbalance out. *)

val fig8 : Exp_common.opts -> Outcome.t
(** Seven threads on the 4-way Xeon, long round counts: faults follow
    the predictor's slope with a near-constant offset (bounded growth). *)
