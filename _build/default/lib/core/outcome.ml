type check = {
  label : string;
  pass : bool;
  detail : string;
}

type t = {
  id : string;
  title : string;
  text : string;
  series : Mb_stats.Series.t list;
  checks : check list;
}

let check label pass fmt = Printf.ksprintf (fun detail -> { label; pass; detail }) fmt

let passed t = List.for_all (fun c -> c.pass) t.checks

let summary_line t =
  let pass = List.length (List.filter (fun c -> c.pass) t.checks) in
  let total = List.length t.checks in
  Printf.sprintf "%-16s %s (%d/%d checks)" t.id (if pass = total then "OK  " else "FAIL") pass total

let print t =
  Printf.printf "=== %s: %s ===\n%s\n" t.id t.title t.text;
  List.iter
    (fun c -> Printf.printf "  [%s] %s: %s\n" (if c.pass then "pass" else "FAIL") c.label c.detail)
    t.checks;
  print_newline ()
