module Bench3 = Mb_workload.Bench3
module Factory = Mb_workload.Factory
module Configs = Mb_machine.Configs
module Summary = Mb_stats.Summary
module Series = Mb_stats.Series
module Table = Mb_report.Table
module Plot = Mb_report.Plot
open Exp_common

let base_params opts =
  { Bench3.default with
    Bench3.seed = opts.seed;
    writes = pick opts ~full:1_000_000 ~quick:200_000;
  }

let fig ~id ~threads opts =
  let params = { (base_params opts) with Bench3.threads } in
  let sizes = pick opts ~full:Paper_data.bench3_sizes ~quick:[ 3; 16; 40; 52 ] in
  let runs = pick opts ~full:3 ~quick:1 in
  let aligned = Bench3.sweep { params with Bench3.aligned = true } ~sizes ~runs in
  let normal = Bench3.sweep { params with Bench3.aligned = false } ~sizes ~runs in
  let title =
    Printf.sprintf "Figure %s: cache sharing between %d threads (4-way Xeon)"
      (String.sub id 3 (String.length id - 3))
      threads
  in
  let series =
    [ Series.of_summaries ~label:"cache-aligned"
        (List.map (fun (s, v) -> (float_of_int s, v)) aligned);
      Series.of_summaries ~label:"normal" (List.map (fun (s, v) -> (float_of_int s, v)) normal);
    ]
  in
  let plot =
    Plot.render ~title ~x_label:"request size, bytes" ~y_label:"elapsed s (scaled to 100M writes)"
      series
  in
  let tbl = Table.make ~title:"data" ~header:[ "size"; "aligned (s)"; "normal (s)"; "slowdown" ] in
  List.iter2
    (fun (sz, (a : Summary.t)) (_, (n : Summary.t)) ->
      Table.row tbl
        [ string_of_int sz; Table.cell_f2 a.Summary.mean; Table.cell_f2 n.Summary.mean;
          Printf.sprintf "%.2fx" (n.Summary.mean /. a.Summary.mean);
        ])
    aligned normal;
  let aligned_means = List.map (fun (_, (s : Summary.t)) -> s.Summary.mean) aligned in
  let a_max = List.fold_left max 0. aligned_means in
  let a_min = List.fold_left min infinity aligned_means in
  let worst_slowdown =
    List.fold_left2
      (fun acc (_, (a : Summary.t)) (_, (n : Summary.t)) -> max acc (n.Summary.mean /. a.Summary.mean))
      0. aligned normal
  in
  let never_faster =
    List.for_all2
      (fun (_, (a : Summary.t)) (_, (n : Summary.t)) -> n.Summary.mean >= a.Summary.mean *. 0.95)
      aligned normal
  in
  { Outcome.id = id;
    title;
    text = plot ^ "\n" ^ Table.to_string tbl;
    series;
    checks =
      [ Outcome.check "aligned objects are size-insensitive" (a_max /. a_min < 1.25)
          "aligned max/min = %.2f" (a_max /. a_min);
        Outcome.check "false sharing costs at least 1.5x somewhere" (worst_slowdown >= 1.5)
          "worst normal/aligned = %.2fx (paper: 2-%0.0fx)" worst_slowdown
          Paper_data.bench3_max_slowdown;
        Outcome.check "normal never beats aligned" never_faster "within 5%% everywhere";
      ];
  }

let fig9 opts = fig ~id:"fig9" ~threads:2 opts

let fig10 opts = fig ~id:"fig10" ~threads:3 opts

let fig11 opts = fig ~id:"fig11" ~threads:4 opts

let single_thread_baseline opts =
  let params = { (base_params opts) with Bench3.threads = 1 } in
  let sizes = [ 3; 24; 52 ] in
  let results =
    List.map (fun sz -> (sz, (Bench3.run { params with Bench3.object_size = sz }).Bench3.scaled_s)) sizes
  in
  let title = "Benchmark 3 baseline: single thread, 100M writes (paper: 2.102-2.103 s)" in
  let tbl = Table.make ~title ~header:[ "size"; "elapsed (s)"; "paper" ] in
  List.iter
    (fun (sz, s) -> Table.row tbl [ string_of_int sz; Table.cell_f2 s; Table.cell_f2 Paper_data.bench3_single_thread_s ])
    results;
  let times = List.map snd results in
  let tmax = List.fold_left max 0. times and tmin = List.fold_left min infinity times in
  { Outcome.id = "bench3-baseline";
    title;
    text = Table.to_string tbl;
    series = [ Series.make ~label:"single thread" (List.map (fun (s, v) -> (float_of_int s, v)) results) ];
    checks =
      [ Outcome.check "size independent" (tmax /. tmin < 1.05) "max/min = %.3f" (tmax /. tmin);
        Outcome.check "calibrated near paper"
          (abs_float (tmax -. Paper_data.bench3_single_thread_s) /. Paper_data.bench3_single_thread_s < 0.25)
          "%.2f s vs paper %.2f s" tmax Paper_data.bench3_single_thread_s;
      ];
  }
