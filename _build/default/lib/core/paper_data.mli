(** The numbers the paper reports, transcribed for side-by-side
    comparison in the harness output and EXPERIMENTS.md. Values read off
    figures (rather than printed in tables) are marked derived in the
    comments and carry the uncertainty of reading a 2000-era plot. *)

(** {1 Benchmark 1} *)

(** Dual Pentium Pro single-thread 10M-pair run: 23.280357 s. *)
val ppro_single_thread_s : float

val ppro_single_thread_stddev : float

(** Table 1: two threads sharing a heap. *)
val table1_threads_s : float list

(** Table 1: two processes, private heaps. *)
val table1_processes_s : float list

(** Elapsed vs thread count on the dual Pentium Pro, derived from the
    text's slope law max(m, m*t/n) with m = 23.3, n = 2. *)
val fig1_derived : (float * float) list

(** The x axis of figure 2. *)
val fig2_threads : int list

(** Solaris single-thread run: 6.0535318 s. *)
val sparc_single_thread_s : float

val table2_threads_s : float list

val table2_processes_s : float list

(** 4-way Xeon single-thread run: 10.393376 s. *)
val xeon_single_thread_s : float

val table3_threads_s : float list

val table3_processes_s : float list

(** The fifteen 3-thread run times of Table 4 (bimodal: ~12.58 / ~14.85). *)
val table4_runs_s : float list

(** {1 Benchmark 2 — the minor-fault predictor mpf = 14 + 1.1*t*r + 127.6*t} *)

val predictor_base : float

val predictor_per_round_thread : float

val predictor_per_thread : float

val bench2_object_size : int

val bench2_objects_per_thread : int

(** {1 Benchmark 3} *)

(** Single-thread 100M-write run: 2.102 s, independent of object size. *)
val bench3_single_thread_s : float

(** Request sizes swept by figures 9-11 (3 to 52 bytes). *)
val bench3_sizes : int list

(** "sometimes by as much as a factor of four". *)
val bench3_max_slowdown : float
