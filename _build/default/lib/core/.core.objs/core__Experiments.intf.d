lib/core/experiments.mli: Exp_common Outcome
