lib/core/exp_common.ml: List Mb_stats Mb_workload
