lib/core/exp_extra.mli: Exp_common Outcome
