lib/core/outcome.ml: List Mb_stats Printf
