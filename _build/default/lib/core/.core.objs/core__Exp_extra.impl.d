lib/core/exp_extra.ml: Exp_bench1 Exp_common List Mb_alloc Mb_machine Mb_prng Mb_report Mb_stats Mb_vm Mb_workload Outcome Printf String
