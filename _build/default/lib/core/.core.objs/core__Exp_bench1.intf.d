lib/core/exp_bench1.mli: Exp_common Outcome
