lib/core/exp_bench2.mli: Exp_common Outcome
