lib/core/outcome.mli: Mb_stats
