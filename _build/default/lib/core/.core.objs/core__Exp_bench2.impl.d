lib/core/exp_bench2.ml: Exp_common List Mb_machine Mb_report Mb_stats Mb_workload Outcome Paper_data Printf
