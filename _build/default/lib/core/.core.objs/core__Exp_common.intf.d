lib/core/exp_common.mli: Mb_stats Mb_workload
