lib/core/core.ml: Exp_bench1 Exp_bench2 Exp_bench3 Exp_common Exp_extra Experiments Mb_alloc Mb_cache Mb_machine Mb_prng Mb_report Mb_sim Mb_stats Mb_vm Mb_workload Outcome Paper_data
