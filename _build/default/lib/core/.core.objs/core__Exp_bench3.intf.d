lib/core/exp_bench3.mli: Exp_common Outcome
