lib/core/exp_bench1.ml: Exp_common Format List Mb_alloc Mb_machine Mb_report Mb_stats Mb_workload Outcome Paper_data Printf String
