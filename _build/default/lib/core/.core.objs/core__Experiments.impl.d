lib/core/experiments.ml: Exp_bench1 Exp_bench2 Exp_bench3 Exp_common Exp_extra List Outcome
