let ppro_single_thread_s = 23.280357

let ppro_single_thread_stddev = 0.005543

let table1_threads_s = [ 26.040385; 26.063408 ]

let table1_processes_s = [ 23.309635; 23.314431 ]

(* Figure 1 is described by "elapsed time increases linearly ... at a
   constant slope of m/n" with m = 23 s, n = 2 CPUs; below the CPU count
   a single thread still takes m. Derived, not printed in the paper. *)
let fig1_derived =
  List.map (fun t -> (float_of_int t, max 23.3 (23.3 *. float_of_int t /. 2.))) [ 1; 2; 3; 4; 5; 6 ]

let fig2_threads = [ 8; 16; 24; 32; 40; 48; 56; 64 ]

let sparc_single_thread_s = 6.0535318

let table2_threads_s = [ 54.272971; 54.407517 ]

let table2_processes_s = [ 6.024991; 6.053607 ]

let xeon_single_thread_s = 10.393376

let table3_threads_s = [ 12.393250; 12.397936 ]

let table3_processes_s = [ 10.394361; 10.395771 ]

let table4_runs_s =
  [ 12.587744; 12.587753; 14.862689; 12.578893; 12.577891; 14.844941; 12.579065; 12.578305;
    14.841121; 12.576630; 12.577823; 14.836253; 12.584923; 12.584535; 14.856683 ]

let predictor_base = 14.

let predictor_per_round_thread = 1.1

let predictor_per_thread = 127.6

let bench2_object_size = 40

let bench2_objects_per_thread = 10_000

let bench3_single_thread_s = 2.102

let bench3_sizes = [ 3; 4; 8; 12; 16; 20; 24; 28; 32; 36; 40; 44; 48; 52 ]

let bench3_max_slowdown = 4.0
