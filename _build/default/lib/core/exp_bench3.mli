(** Reproductions of the paper's benchmark 3 artifacts: Figures 9–11
    (false cache-line sharing for 2, 3 and 4 writer threads on the
    4-way Xeon, cache-aligned vs normally placed heap objects). *)

val fig9 : Exp_common.opts -> Outcome.t

val fig10 : Exp_common.opts -> Outcome.t

val fig11 : Exp_common.opts -> Outcome.t

val single_thread_baseline : Exp_common.opts -> Outcome.t
(** The paper's 2.102 s single-thread run, independent of object size. *)
