module M = Mb_machine.Machine

type t = {
  name : string;
  malloc : M.ctx -> int -> int;
  free : M.ctx -> int -> unit;
  usable_size : int -> int;
  stats : Astats.t;
  validate : unit -> (unit, string) result;
  origins : (int, int) Hashtbl.t;
}

let out_of_memory who = failwith (who ^ ": out of memory")

(* Cost model for the derived entry points: a 1999-class CPU moves or
   clears roughly 8 bytes per cycle from/to cache. *)
let zero_cost_cycles bytes = (bytes + 7) / 8

let copy_cost_cycles bytes = (bytes + 7) / 8 * 2  (* load + store *)

let calloc t ctx ~count ~size =
  if count < 0 || size < 0 then invalid_arg "Allocator.calloc: negative";
  if size > 0 && count > max_int / size then invalid_arg "Allocator.calloc: overflow";
  let bytes = max 1 (count * size) in
  let user = t.malloc ctx bytes in
  M.work ctx (zero_cost_cycles bytes);
  M.touch_range ctx user ~len:bytes;
  user

let realloc t ctx addr new_size =
  if new_size < 0 then invalid_arg "Allocator.realloc: negative size";
  if addr = 0 then if new_size = 0 then 0 else t.malloc ctx new_size
  else if new_size = 0 then begin
    t.free ctx addr;
    0
  end
  else begin
    let old_usable = t.usable_size addr in
    if old_usable >= new_size then addr  (* shrink or fitting growth: in place *)
    else begin
      let fresh = t.malloc ctx new_size in
      M.work ctx (copy_cost_cycles old_usable);
      M.touch_range ctx fresh ~len:old_usable;
      t.free ctx addr;
      fresh
    end
  end

let memalign t ctx ~alignment size =
  if alignment <= 0 || alignment land (alignment - 1) <> 0 then
    invalid_arg "Allocator.memalign: alignment not a power of two";
  let raw = t.malloc ctx (size + alignment) in
  let user = (raw + alignment - 1) / alignment * alignment in
  if user <> raw then Hashtbl.replace t.origins user raw;
  user

let free_aligned t ctx user =
  match Hashtbl.find_opt t.origins user with
  | Some raw ->
      Hashtbl.remove t.origins user;
      t.free ctx raw
  | None -> t.free ctx user
