(** Mutable allocation statistics shared by all allocator implementations.

    Counters cover the quantities the paper reasons about: operation
    volume, live bytes, arena population, and how often lock contention
    redirected or delayed an operation. *)

type t = {
  mutable mallocs : int;
  mutable frees : int;
  mutable bytes_requested : int;   (** sum of malloc sizes *)
  mutable live_bytes : int;        (** requested bytes currently allocated *)
  mutable live_objects : int;
  mutable peak_live_bytes : int;
  mutable arenas_created : int;    (** subheaps ever created (never shrinks) *)
  mutable arena_switches : int;    (** ops served by a different arena than the thread's cached one *)
  mutable contended_ops : int;     (** ops that found their first-choice lock busy *)
  mutable foreign_frees : int;     (** frees of chunks owned by another arena/thread *)
  mutable mmapped_chunks : int;    (** requests served by direct mmap *)
  mutable grow_failures : int;     (** sbrk/sub-heap exhaustion events *)
}

val create : unit -> t

val record_malloc : t -> int -> unit
(** [record_malloc t size] accounts one successful allocation. *)

val record_free : t -> int -> unit
(** [record_free t size] accounts one release of [size] requested bytes. *)

val live_bytes : t -> int

val pp : Format.formatter -> t -> unit
