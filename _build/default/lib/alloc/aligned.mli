(** Cache-line-aligning wrapper around any allocator.

    Implements the mitigation the paper's conclusion proposes: "a heap
    allocator that aligns objects automatically to cache line boundaries,
    and thereby increases heap fragmentation". Requests are padded so
    the returned address can be rounded up to a line boundary and the
    object never shares its line(s) with a neighbour. Benchmark 3's
    "cache-aligned" series is the wrapped allocator; its "normal" series
    is the allocator underneath. *)

val make : line_size:int -> Allocator.t -> Allocator.t
(** [make ~line_size inner] aligns every block to [line_size] (a power of
    two) and pads it to a line multiple. The wrapper shares [inner]'s
    statistics record, so padding shows up as extra requested bytes. *)

val padding_overhead : line_size:int -> int -> int
(** [padding_overhead ~line_size size] is the worst-case extra bytes the
    wrapper requests for a [size]-byte block — the fragmentation price of
    alignment the paper trades off. *)
