lib/alloc/astats.mli: Format
