lib/alloc/aligned.ml: Allocator Hashtbl
