lib/alloc/dlheap.ml: Array Astats Costs Hashtbl Mb_machine Printf
