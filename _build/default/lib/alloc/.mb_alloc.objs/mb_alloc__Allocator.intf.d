lib/alloc/allocator.mli: Astats Hashtbl Mb_machine
