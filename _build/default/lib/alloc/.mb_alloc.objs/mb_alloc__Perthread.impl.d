lib/alloc/perthread.ml: Allocator Array Astats Costs Dlheap Hashtbl List Mb_machine
