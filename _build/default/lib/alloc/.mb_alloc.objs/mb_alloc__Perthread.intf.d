lib/alloc/perthread.mli: Allocator Costs Dlheap Mb_machine
