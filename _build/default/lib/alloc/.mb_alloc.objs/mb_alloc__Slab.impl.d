lib/alloc/slab.ml: Allocator Astats Costs Hashtbl List Mb_machine Printf
