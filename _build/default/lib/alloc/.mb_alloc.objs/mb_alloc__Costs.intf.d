lib/alloc/costs.mli:
