lib/alloc/costs.ml:
