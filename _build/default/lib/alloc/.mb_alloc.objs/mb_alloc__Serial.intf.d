lib/alloc/serial.mli: Allocator Costs Dlheap Mb_machine
