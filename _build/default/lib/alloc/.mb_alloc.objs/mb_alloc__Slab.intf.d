lib/alloc/slab.mli: Allocator Costs Mb_machine
