lib/alloc/ptmalloc.mli: Allocator Costs Dlheap Mb_machine
