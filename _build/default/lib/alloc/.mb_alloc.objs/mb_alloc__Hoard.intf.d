lib/alloc/hoard.mli: Allocator Costs Mb_machine
