lib/alloc/hoard.ml: Allocator Array Astats Costs Hashtbl List Mb_machine Printf
