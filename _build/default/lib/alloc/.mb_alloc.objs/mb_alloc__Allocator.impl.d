lib/alloc/allocator.ml: Astats Hashtbl Mb_machine
