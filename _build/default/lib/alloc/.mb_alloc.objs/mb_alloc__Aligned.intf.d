lib/alloc/aligned.mli: Allocator
