lib/alloc/astats.ml: Format
