lib/alloc/serial.ml: Allocator Astats Costs Dlheap Hashtbl Mb_machine
