lib/alloc/ptmalloc.ml: Allocator Array Astats Costs Dlheap Hashtbl Mb_machine Mb_prng Printf
