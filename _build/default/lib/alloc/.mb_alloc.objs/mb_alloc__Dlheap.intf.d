lib/alloc/dlheap.mli: Astats Costs Mb_machine
