let is_power_of_two n = n > 0 && n land (n - 1) = 0

let padding_overhead ~line_size size =
  let padded = (size + line_size - 1) / line_size * line_size in
  padded - size + line_size

let make ~line_size (inner : Allocator.t) =
  if not (is_power_of_two line_size) then invalid_arg "Aligned.make: line_size not a power of two";
  (* aligned user address -> inner allocation address *)
  let originals = Hashtbl.create 256 in
  let round_up a = (a + line_size - 1) / line_size * line_size in
  let malloc ctx size =
    (* Pad to a whole number of lines, plus slack to slide the base up to
       the next boundary: the object then owns every line it touches. *)
    let padded = ((size + line_size - 1) / line_size * line_size) + line_size in
    let raw = inner.Allocator.malloc ctx padded in
    let user = round_up raw in
    Hashtbl.replace originals user raw;
    user
  in
  let free ctx user =
    match Hashtbl.find_opt originals user with
    | Some raw ->
        Hashtbl.remove originals user;
        inner.Allocator.free ctx raw
    | None -> invalid_arg "Aligned.free: address was not allocated through this wrapper"
  in
  let usable_size user =
    match Hashtbl.find_opt originals user with
    | Some raw -> inner.Allocator.usable_size raw - (user - raw)
    | None -> invalid_arg "Aligned.usable_size: unknown address"
  in
  { Allocator.name = inner.Allocator.name ^ "+aligned";
    malloc;
    free;
    usable_size;
    stats = inner.Allocator.stats;
    validate = inner.Allocator.validate;
    origins = Hashtbl.create 8;
  }
