lib/sim/engine.mli:
