lib/sim/engine.ml: Effect Hashtbl List Pqueue Printexc Printf String
