lib/sim/pqueue.mli:
