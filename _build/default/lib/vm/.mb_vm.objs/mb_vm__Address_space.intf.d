lib/vm/address_space.mli:
