lib/vm/address_space.ml: Hashtbl Int Map
