(** Allocation-latency instrumentation (paper section 6 future work:
    "heap allocator latency should show little or no change as network
    servers remain up over time. We plan to create a benchmark to
    measure latency changes over server uptime").

    Wraps an allocator so every [malloc] records (simulated start time,
    duration); the samples can then be sliced into uptime windows to
    detect drift. *)

type probe

val wrap : Mb_alloc.Allocator.t -> probe * Mb_alloc.Allocator.t
(** The returned allocator behaves identically (and shares stats) but
    feeds the probe. *)

val samples : probe -> (float * float) list
(** All (start_ns, duration_ns) pairs, in collection order. *)

val count : probe -> int

val windows : probe -> window_ns:float -> (float * Mb_stats.Summary.t) list
(** Latency summaries per uptime window: [(window_start_ns, summary)] for
    each non-empty window, ascending. *)

val drift : probe -> window_ns:float -> float
(** Mean latency of the last non-empty window divided by the first —
    1.0 means no drift. Requires at least one sample. *)
