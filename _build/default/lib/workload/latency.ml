module M = Mb_machine.Machine
module A = Mb_alloc.Allocator

type probe = { mutable samples : (float * float) list; mutable n : int }

let wrap (inner : A.t) =
  let probe = { samples = []; n = 0 } in
  let malloc ctx size =
    let t0 = M.now ctx in
    let user = inner.A.malloc ctx size in
    probe.samples <- (t0, M.now ctx -. t0) :: probe.samples;
    probe.n <- probe.n + 1;
    user
  in
  (probe, { inner with A.name = inner.A.name ^ "+latency"; malloc })

let samples probe = List.rev probe.samples

let count probe = probe.n

let windows probe ~window_ns =
  if window_ns <= 0. then invalid_arg "Latency.windows: window_ns <= 0";
  let table = Hashtbl.create 64 in
  List.iter
    (fun (t0, d) ->
      let w = int_of_float (t0 /. window_ns) in
      Hashtbl.replace table w (d :: (try Hashtbl.find table w with Not_found -> [])))
    probe.samples;
  Hashtbl.fold (fun w ds acc -> (float_of_int w *. window_ns, Mb_stats.Summary.of_list ds) :: acc) table []
  |> List.sort compare

let drift probe ~window_ns =
  match windows probe ~window_ns with
  | [] -> invalid_arg "Latency.drift: no samples"
  | [ (_, only) ] -> ignore only; 1.0
  | (_, first) :: rest ->
      let _, last = List.nth rest (List.length rest - 1) in
      last.Mb_stats.Summary.mean /. first.Mb_stats.Summary.mean
