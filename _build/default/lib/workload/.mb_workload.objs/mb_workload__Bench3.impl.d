lib/workload/bench3.ml: Factory Hashtbl List Mb_alloc Mb_cache Mb_machine Mb_prng Mb_stats
