lib/workload/larson.ml: Array Factory Mb_alloc Mb_machine Mb_prng Mb_vm Printf
