lib/workload/latency.mli: Mb_alloc Mb_stats
