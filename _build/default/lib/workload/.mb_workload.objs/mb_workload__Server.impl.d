lib/workload/server.ml: Array Factory Latency List Mb_alloc Mb_machine Mb_prng Mb_stats Printf Trace
