lib/workload/trace.ml: Array Mb_alloc Mb_machine Mb_prng Printf
