lib/workload/bench2.mli: Factory Mb_machine
