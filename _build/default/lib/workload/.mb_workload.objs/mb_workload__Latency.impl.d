lib/workload/latency.ml: Hashtbl List Mb_alloc Mb_machine Mb_stats
