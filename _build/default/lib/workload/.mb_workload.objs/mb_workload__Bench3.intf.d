lib/workload/bench3.mli: Factory Mb_machine Mb_stats
