lib/workload/factory.ml: Hashtbl Mb_alloc Mb_machine
