lib/workload/bench1.mli: Factory Mb_machine
