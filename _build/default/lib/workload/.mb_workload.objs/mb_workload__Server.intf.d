lib/workload/server.mli: Factory Mb_machine
