lib/workload/bench2.ml: Array Factory List Mb_alloc Mb_machine Mb_prng Mb_vm Printf
