lib/workload/larson.mli: Factory Mb_machine
