lib/workload/factory.mli: Mb_alloc Mb_machine
