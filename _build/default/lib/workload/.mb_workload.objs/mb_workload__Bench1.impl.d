lib/workload/bench1.ml: Factory List Mb_alloc Mb_machine Printf
