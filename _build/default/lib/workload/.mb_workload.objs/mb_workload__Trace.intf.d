lib/workload/trace.mli: Mb_alloc Mb_machine Mb_prng
