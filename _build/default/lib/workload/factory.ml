module A = Mb_alloc

type t = {
  label : string;
  create : Mb_machine.Machine.proc -> A.Allocator.t;
}

let ptmalloc ?costs ?max_arenas () =
  { label = "ptmalloc";
    create =
      (fun proc ->
        let costs = match costs with Some c -> c | None -> A.Costs.glibc in
        A.Ptmalloc.allocator (A.Ptmalloc.make proc ~costs ?max_arenas ()));
  }

let ptmalloc_introspect ?costs ?max_arenas () =
  let instances : (string, A.Ptmalloc.t) Hashtbl.t = Hashtbl.create 4 in
  let factory =
    { label = "ptmalloc";
      create =
        (fun proc ->
          let costs = match costs with Some c -> c | None -> A.Costs.glibc in
          let pt = A.Ptmalloc.make proc ~costs ?max_arenas () in
          Hashtbl.replace instances (Mb_machine.Machine.proc_name proc) pt;
          A.Ptmalloc.allocator pt);
    }
  in
  (factory, fun proc -> Hashtbl.find_opt instances (Mb_machine.Machine.proc_name proc))

let serial_solaris () =
  { label = "serial"; create = (fun proc -> A.Serial.allocator (A.Serial.make proc ())) }

let serial_glibc () =
  { label = "serial-glibc";
    create = (fun proc -> A.Serial.allocator (A.Serial.make proc ~costs:A.Costs.glibc ()));
  }

let perthread () =
  { label = "perthread"; create = (fun proc -> A.Perthread.allocator (A.Perthread.make proc ())) }

let slab () = { label = "slab"; create = (fun proc -> A.Slab.allocator (A.Slab.make proc ())) }

let hoard () = { label = "hoard"; create = (fun proc -> A.Hoard.allocator (A.Hoard.make proc ())) }

let aligned ~line_size inner =
  { label = inner.label ^ "+aligned";
    create = (fun proc -> A.Aligned.make ~line_size (inner.create proc));
  }

let by_name = function
  | "ptmalloc" -> Some (ptmalloc ())
  | "serial" -> Some (serial_solaris ())
  | "serial-glibc" -> Some (serial_glibc ())
  | "perthread" -> Some (perthread ())
  | "slab" -> Some (slab ())
  | "hoard" -> Some (hoard ())
  | _ -> None

let names = [ "ptmalloc"; "serial"; "serial-glibc"; "perthread"; "slab"; "hoard" ]
