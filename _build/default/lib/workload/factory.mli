(** Allocator factories: named recipes the benchmark drivers instantiate
    once per simulated process, so a workload can be run against any
    allocator (and, in process mode, give each process its own). *)

type t = {
  label : string;
  create : Mb_machine.Machine.proc -> Mb_alloc.Allocator.t;
}

val ptmalloc : ?costs:Mb_alloc.Costs.t -> ?max_arenas:int -> unit -> t
(** glibc's allocator, the paper's subject. *)

val ptmalloc_introspect :
  ?costs:Mb_alloc.Costs.t ->
  ?max_arenas:int ->
  unit ->
  t * (Mb_machine.Machine.proc -> Mb_alloc.Ptmalloc.t option)
(** Like {!ptmalloc} but also returns a lookup giving the underlying
    arena structure for the allocator created in a given process —
    benchmark 2 reports arena imbalance through it. *)

val serial_solaris : unit -> t
(** One lock, Solaris cost model — Table 2's allocator. *)

val serial_glibc : unit -> t
(** dlmalloc behind a single lock with glibc costs: the "add one lock to a
    UP allocator" design the paper's section 2 quotes Berger & Blumofe
    against; used by the ablation benches. *)

val perthread : unit -> t
(** Hoard-style per-thread caches (the fix iPlanet shipped). *)

val slab : unit -> t
(** Kernel-style slab allocator (future-work section). *)

val hoard : unit -> t
(** The Hoard allocator (Berger & Blumofe), cited in sections 2 and 6. *)

val aligned : line_size:int -> t -> t
(** Wrap a factory so every allocation is cache-line aligned. *)

val by_name : string -> t option
(** "ptmalloc" | "serial" | "serial-glibc" | "perthread" | "slab" | "hoard". *)

val names : string list
