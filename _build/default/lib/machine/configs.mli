(** Machine presets mirroring the paper's benchmark hosts.

    Clock rates and CPU counts are taken from the paper; the cycle-cost
    constants are calibration (documented in DESIGN.md) chosen so the
    single-threaded benchmark-1 run lands near the paper's measurement.
    All multithreaded behaviour then emerges from the simulation. *)

val dual_pentium_pro : Machine.config
(** The paper's first host: dual 200 MHz Pentium Pro, i440FX board,
    Red Hat 5.1, glibc 2.0.6, kernel 2.2.0-pre4 (Tables 1, Figures 1–2). *)

val quad_xeon : Machine.config
(** Intel SC450NX: four 500 MHz Pentium III Xeons, 512 KB L2, Red Hat 6.1
    (Table 3, Table 4, Figure 4, Figure 8, and all of benchmark 3). *)

val dual_ultrasparc : Machine.config
(** Sun Ultra AX-MP: two 400 MHz UltraSPARC II, Solaris 2.6 (Table 2,
    Figure 3). Solaris 2.6 default mutexes park immediately instead of
    spinning, hence [spin_cycles = 0]. *)

val uni_k6 : Machine.config
(** Custom 400 MHz AMD K6-2, 64 MB, Red Hat 6.0 (benchmark 2's
    uniprocessor runs, Figures 5–7). *)

val by_name : string -> Machine.config option
(** Lookup by CLI-friendly name ("dual_pentium_pro", "quad_xeon",
    "dual_ultrasparc", "uni_k6"). *)

val names : string list
