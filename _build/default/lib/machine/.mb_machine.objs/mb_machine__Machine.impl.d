lib/machine/machine.ml: Array List Mb_cache Mb_prng Mb_sim Mb_vm Printf Queue
