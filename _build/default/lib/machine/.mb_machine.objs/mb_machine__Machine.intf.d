lib/machine/machine.mli: Mb_cache Mb_prng Mb_sim Mb_vm
