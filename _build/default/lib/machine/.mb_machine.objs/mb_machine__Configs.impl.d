lib/machine/configs.ml: List Machine Mb_cache
