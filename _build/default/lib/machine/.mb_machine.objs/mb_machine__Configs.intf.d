lib/machine/configs.mli: Machine
