(* Cycle-cost calibration notes:

   - ctx_switch_cycles + wake_cycles set the cost of a blocking handoff;
     they are what turn a single contended lock into the Table 2 collapse.
   - atomic_cycles vs stub_lock_cycles set the thread-vs-process gap of
     Tables 1 and 3 (glibc stubs its locks until a process goes
     multithreaded).
   - The cache transfer cost sets benchmark 3's false-sharing penalty;
     32-byte lines match the P6 and UltraSPARC II L1 of the era. *)

let line32 cache = { cache with Mb_cache.Coherence.line_size = 32 }

let base = Machine.default_config

let dual_pentium_pro =
  { base with
    Machine.cpus = 2;
    mhz = 200.;
    quantum_us = 2000.;
    ctx_switch_cycles = 900;
    atomic_cycles = 14;
    stub_lock_cycles = 2;
    spin_cycles = 400;
    mutex_handoff = false;
    wake_cycles = 300;
    syscall_cycles = 700;
    vm_syscalls_take_bkl = true;
    minor_fault_cycles = 800;
    thread_spawn_cycles = 1500;
    cache = line32 Mb_cache.Coherence.default_config;
  }

let quad_xeon =
  { base with
    Machine.cpus = 4;
    mhz = 500.;
    quantum_us = 2000.;
    ctx_switch_cycles = 1600;
    atomic_cycles = 26;
    stub_lock_cycles = 2;
    spin_cycles = 600;
    mutex_handoff = false;
    wake_cycles = 500;
    syscall_cycles = 1100;
    vm_syscalls_take_bkl = true;
    minor_fault_cycles = 1400;
    thread_spawn_cycles = 2500;
    cache =
      { Mb_cache.Coherence.line_size = 32;
        hit_cycles = 1;
        miss_cycles = 40;
        transfer_cycles = 55;
        upgrade_cycles = 14;
        ping_pong_burst = 4;
      };
  }

let dual_ultrasparc =
  { base with
    Machine.cpus = 2;
    mhz = 400.;
    quantum_us = 2000.;
    ctx_switch_cycles = 330;
    atomic_cycles = 12;
    stub_lock_cycles = 2;
    (* Solaris 2.6's default process-private mutex parks the caller in the
       kernel without an adaptive spin — the root of Table 2. *)
    spin_cycles = 0;
    mutex_handoff = true;
    wake_cycles = 120;
    syscall_cycles = 900;
    vm_syscalls_take_bkl = true;
    minor_fault_cycles = 1000;
    thread_spawn_cycles = 2000;
    cache = line32 Mb_cache.Coherence.default_config;
  }

let uni_k6 =
  { base with
    Machine.cpus = 1;
    mhz = 400.;
    (* Sized against benchmark 2's ~2.3 ms replacement rounds so that a
       round is preempted with probability well below 1 — heap-leak
       events must be occasional to reproduce Figure 6's variance. *)
    quantum_us = 4180.;
    ctx_switch_cycles = 1000;
    atomic_cycles = 18;
    stub_lock_cycles = 2;
    (* Spinning is pointless on a uniprocessor, and glibc 2.x LinuxThreads
       (pre-futex) parked contended lockers via signals — slow wakeups that
       keep a contended mutex effectively owned across the switch, i.e.
       handoff semantics. This is what lets benchmark 2's arena collisions
       cascade for a while once one occurs, producing Figure 6's leak
       variance. *)
    spin_cycles = 300;
    mutex_handoff = true;
    wake_cycles = 350;
    syscall_cycles = 900;
    vm_syscalls_take_bkl = true;
    minor_fault_cycles = 1000;
    thread_spawn_cycles = 1800;
    cache = line32 Mb_cache.Coherence.default_config;
  }

let table =
  [ ("dual_pentium_pro", dual_pentium_pro);
    ("quad_xeon", quad_xeon);
    ("dual_ultrasparc", dual_ultrasparc);
    ("uni_k6", uni_k6);
  ]

let by_name name = List.assoc_opt name table

let names = List.map fst table
