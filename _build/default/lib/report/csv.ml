module Series = Mb_stats.Series

let escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let of_rows rows =
  let buf = Buffer.create 256 in
  List.iter
    (fun row ->
      Buffer.add_string buf (String.concat "," (List.map escape row));
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let of_series series =
  let xs =
    List.sort_uniq compare (List.concat_map (fun s -> Series.xs s) series)
  in
  let header =
    "x"
    :: List.concat_map
         (fun (s : Series.t) -> [ s.Series.label; s.Series.label ^ "_err" ])
         series
  in
  let row_of x =
    Printf.sprintf "%g" x
    :: List.concat_map
         (fun (s : Series.t) ->
           match List.find_opt (fun (p : Series.point) -> p.Series.x = x) s.Series.points with
           | Some p -> [ Printf.sprintf "%g" p.Series.y; Printf.sprintf "%g" p.Series.err ]
           | None -> [ ""; "" ])
         series
  in
  of_rows (header :: List.map row_of xs)

let write_file path contents =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc contents)
