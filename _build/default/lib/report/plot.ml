module Series = Mb_stats.Series

let glyphs = [| '*'; 'o'; '+'; 'x'; '#'; '@' |]

let render ?(width = 64) ?(height = 16) ~title ~x_label ~y_label series =
  let all_points = List.concat_map (fun (s : Series.t) -> s.Series.points) series in
  if all_points = [] then title ^ "\n(no data)\n"
  else begin
    let xs = List.map (fun (p : Series.point) -> p.Series.x) all_points in
    let ys = List.map (fun (p : Series.point) -> p.Series.y) all_points in
    let x_min = List.fold_left min (List.hd xs) xs in
    let x_max = List.fold_left max (List.hd xs) xs in
    let y_max = List.fold_left max (List.hd ys) ys in
    let y_max = if y_max <= 0. then 1. else y_max *. 1.05 in
    let x_span = if x_max = x_min then 1. else x_max -. x_min in
    let canvas = Array.make_matrix height width ' ' in
    let plot_point glyph x y =
      let col = int_of_float ((x -. x_min) /. x_span *. float_of_int (width - 1)) in
      let row = int_of_float (y /. y_max *. float_of_int (height - 1)) in
      let r = height - 1 - max 0 (min (height - 1) row) in
      let c = max 0 (min (width - 1) col) in
      canvas.(r).(c) <- glyph
    in
    List.iteri
      (fun i (s : Series.t) ->
        let glyph = glyphs.(i mod Array.length glyphs) in
        List.iter (fun (p : Series.point) -> plot_point glyph p.Series.x p.Series.y) s.Series.points)
      series;
    let buf = Buffer.create 1024 in
    Buffer.add_string buf (Printf.sprintf "%s\n" title);
    Buffer.add_string buf (Printf.sprintf "  %s\n" y_label);
    for r = 0 to height - 1 do
      let y_here = float_of_int (height - 1 - r) /. float_of_int (height - 1) *. y_max in
      Buffer.add_string buf (Printf.sprintf "%10.2f |" y_here);
      Buffer.add_string buf (String.init width (fun c -> canvas.(r).(c)));
      Buffer.add_char buf '\n'
    done;
    Buffer.add_string buf (Printf.sprintf "%10s +%s\n" "" (String.make width '-'));
    Buffer.add_string buf
      (Printf.sprintf "%10s  %-*.6g%*.6g   (%s)\n" "" (width / 2) x_min (width / 2) x_max x_label);
    List.iteri
      (fun i (s : Series.t) ->
        Buffer.add_string buf
          (Printf.sprintf "%10s  %c = %s\n" "" glyphs.(i mod Array.length glyphs) s.Series.label))
      series;
    Buffer.contents buf
  end

let print ?width ?height ~title ~x_label ~y_label series =
  print_string (render ?width ?height ~title ~x_label ~y_label series);
  print_newline ()
