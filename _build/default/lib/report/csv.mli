(** Minimal CSV export for data series, so figures can be re-plotted with
    external tooling. *)

val escape : string -> string
(** RFC-4180 quoting when the field contains commas, quotes or
    newlines. *)

val of_rows : string list list -> string
(** Rows to CSV text (no trailing newline on the last row is NOT
    guaranteed; each row ends with ['\n']). *)

val of_series : Mb_stats.Series.t list -> string
(** Wide format: first column [x], one [y] and [err] column pair per
    series, rows joined on x (missing points are empty fields). *)

val write_file : string -> string -> unit
(** [write_file path contents]. *)
