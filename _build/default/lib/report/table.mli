(** Fixed-width ASCII tables for the benchmark harness output. *)

type t

val make : title:string -> header:string list -> t
(** A table with column headers; rows are appended with {!row}. *)

val row : t -> string list -> unit
(** Appends a row; must have as many cells as the header. *)

val rowf : t -> ('a, unit, string, unit) format4 -> 'a
(** [rowf t fmt ...] formats one string and appends it as a full-width
    row (used for notes / separators). *)

val to_string : t -> string
(** Renders with column widths fitted to content. *)

val print : t -> unit
(** [to_string] to stdout, followed by a blank line. *)

val cell_f : float -> string
(** Standard 6-decimal numeric cell, matching the paper's precision. *)

val cell_f2 : float -> string
(** 2-decimal cell for derived quantities. *)
