type line = Cells of string list | Note of string

type t = {
  title : string;
  header : string list;
  mutable lines : line list;  (* reversed *)
}

let make ~title ~header = { title; header; lines = [] }

let row t cells =
  if List.length cells <> List.length t.header then
    invalid_arg "Table.row: cell count does not match header";
  t.lines <- Cells cells :: t.lines

let rowf t fmt = Printf.ksprintf (fun s -> t.lines <- Note s :: t.lines) fmt

let to_string t =
  let lines = List.rev t.lines in
  let widths = Array.of_list (List.map String.length t.header) in
  List.iter
    (function
      | Cells cells ->
          List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells
      | Note _ -> ())
    lines;
  let buf = Buffer.create 256 in
  let pad i s = Printf.sprintf "%-*s" widths.(i) s in
  let render cells = "| " ^ String.concat " | " (List.mapi pad cells) ^ " |" in
  let total_width = Array.fold_left ( + ) 0 widths + (3 * Array.length widths) + 1 in
  let rule = String.make total_width '-' in
  Buffer.add_string buf (t.title ^ "\n");
  Buffer.add_string buf (rule ^ "\n");
  Buffer.add_string buf (render t.header ^ "\n");
  Buffer.add_string buf (rule ^ "\n");
  List.iter
    (function
      | Cells cells -> Buffer.add_string buf (render cells ^ "\n")
      | Note s -> Buffer.add_string buf ("| " ^ s ^ "\n"))
    lines;
  Buffer.add_string buf rule;
  Buffer.contents buf

let print t =
  print_endline (to_string t);
  print_newline ()

let cell_f x = Printf.sprintf "%.6f" x

let cell_f2 x = Printf.sprintf "%.2f" x
