(** ASCII line plots: enough to eyeball the shape of every figure in the
    paper directly in the benchmark output. Multiple series share axes;
    each gets a distinct glyph. *)

val render :
  ?width:int ->
  ?height:int ->
  title:string ->
  x_label:string ->
  y_label:string ->
  Mb_stats.Series.t list ->
  string
(** Plots all points of all series on a [width] x [height] character
    canvas with axis annotations and a legend. Y starts at 0 (the paper's
    figures all do), X spans the data. *)

val print :
  ?width:int ->
  ?height:int ->
  title:string ->
  x_label:string ->
  y_label:string ->
  Mb_stats.Series.t list ->
  unit
