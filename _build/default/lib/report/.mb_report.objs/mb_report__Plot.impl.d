lib/report/plot.ml: Array Buffer List Mb_stats Printf String
