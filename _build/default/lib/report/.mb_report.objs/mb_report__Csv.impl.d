lib/report/csv.ml: Buffer Fun List Mb_stats Printf String
