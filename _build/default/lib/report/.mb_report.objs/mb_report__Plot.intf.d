lib/report/plot.mli: Mb_stats
