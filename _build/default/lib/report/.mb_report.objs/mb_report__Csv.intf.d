lib/report/csv.mli: Mb_stats
