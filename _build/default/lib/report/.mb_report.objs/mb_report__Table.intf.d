lib/report/table.mli:
