type t = {
  lo : float;
  hi : float;
  width : float;
  counts : int array;
  mutable total : int;
}

let create ~lo ~hi ~bins =
  if lo >= hi then invalid_arg "Histogram.create: lo >= hi";
  if bins <= 0 then invalid_arg "Histogram.create: bins <= 0";
  { lo; hi; width = (hi -. lo) /. float_of_int bins; counts = Array.make bins 0; total = 0 }

let bin_of t x =
  let i = int_of_float ((x -. t.lo) /. t.width) in
  let last = Array.length t.counts - 1 in
  if i < 0 then 0 else if i > last then last else i

let add t x =
  t.counts.(bin_of t x) <- t.counts.(bin_of t x) + 1;
  t.total <- t.total + 1

let count t = t.total

let bin_count t i = t.counts.(i)

let bin_bounds t i =
  let lo = t.lo +. (float_of_int i *. t.width) in
  (lo, lo +. t.width)

let modes t =
  let n = Array.length t.counts in
  let get i = if i < 0 || i >= n then 0 else t.counts.(i) in
  let is_mode i =
    t.counts.(i) > 0
    && ((get i > get (i - 1) && get i >= get (i + 1))
       || (get i >= get (i - 1) && get i > get (i + 1)))
  in
  let rec collect i acc = if i >= n then List.rev acc else collect (i + 1) (if is_mode i then i :: acc else acc) in
  collect 0 []

let pp fmt t =
  let maxc = Array.fold_left max 1 t.counts in
  Array.iteri
    (fun i c ->
      if c > 0 then begin
        let lo, hi = bin_bounds t i in
        let bar = String.make (max 1 (c * 40 / maxc)) '#' in
        Format.fprintf fmt "[%8.3f, %8.3f) %4d %s@." lo hi c bar
      end)
    t.counts
