(** Ordinary least-squares linear regression.

    Used to check the paper's linearity claims: Figure 1's slope should be
    (single-thread time) / (CPU count), Figure 8's fault counts should track
    the predictor's slope, and so on. *)

type t = {
  slope : float;
  intercept : float;
  r2 : float;      (** coefficient of determination; 1.0 for a perfect fit *)
  n : int;
}

val fit : (float * float) list -> t
(** [fit points] fits y = slope * x + intercept. Requires at least two
    points with distinct x values; raises [Invalid_argument] otherwise. *)

val predict : t -> float -> float
(** [predict t x] evaluates the fitted line. *)

val pp : Format.formatter -> t -> unit
