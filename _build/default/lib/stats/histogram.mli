(** Fixed-width histograms.

    Used to expose bimodality in run times (Table 4's 12.6 s / 14.8 s
    clusters) and latency distributions in the uptime benchmark. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** [create ~lo ~hi ~bins] covers [\[lo, hi)] with [bins] equal bins.
    Samples outside the range are clamped to the first/last bin.
    Requires [lo < hi] and [bins > 0]. *)

val add : t -> float -> unit

val count : t -> int
(** Total number of samples added. *)

val bin_count : t -> int -> int
(** [bin_count t i] is the number of samples in bin [i]. *)

val bin_bounds : t -> int -> float * float
(** Half-open bounds of bin [i]. *)

val modes : t -> int list
(** Indexes of local maxima with non-zero counts, in increasing index
    order; a bimodal sample yields two entries. A bin is a local maximum
    if strictly greater than one neighbour and at least equal to the
    other. *)

val pp : Format.formatter -> t -> unit
(** ASCII bar rendering, one line per non-empty bin. *)
