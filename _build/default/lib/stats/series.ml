type point = { x : float; y : float; err : float }

type t = { label : string; points : point list }

let make ~label pts = { label; points = List.map (fun (x, y) -> { x; y; err = 0. }) pts }

let make_err ~label pts = { label; points = List.map (fun (x, y, err) -> { x; y; err }) pts }

let of_summaries ~label pts =
  { label;
    points = List.map (fun (x, (s : Summary.t)) -> { x; y = s.Summary.mean; err = s.Summary.stddev }) pts
  }

let xs t = List.map (fun p -> p.x) t.points

let ys t = List.map (fun p -> p.y) t.points

let y_at t x =
  match List.find_opt (fun p -> p.x = x) t.points with
  | Some p -> p.y
  | None -> raise Not_found

let map_y f t = { t with points = List.map (fun p -> { p with y = f p.y }) t.points }

let fold_y f init t = List.fold_left (fun acc p -> f acc p.y) init t.points

let max_y t =
  match t.points with
  | [] -> invalid_arg "Series.max_y: empty series"
  | p :: _ -> fold_y max p.y t

let min_y t =
  match t.points with
  | [] -> invalid_arg "Series.min_y: empty series"
  | p :: _ -> fold_y min p.y t
