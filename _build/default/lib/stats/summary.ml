type t = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  sum : float;
}

let of_array xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Summary.of_array: empty sample";
  let sum = Array.fold_left ( +. ) 0. xs in
  let mean = sum /. float_of_int n in
  let sq_dev = Array.fold_left (fun acc x -> acc +. ((x -. mean) *. (x -. mean))) 0. xs in
  let stddev = if n < 2 then 0. else sqrt (sq_dev /. float_of_int (n - 1)) in
  let mn = Array.fold_left min xs.(0) xs in
  let mx = Array.fold_left max xs.(0) xs in
  { n; mean; stddev; min = mn; max = mx; sum }

let of_list xs =
  if xs = [] then invalid_arg "Summary.of_list: empty sample";
  of_array (Array.of_list xs)

let sorted_copy xs =
  let ys = Array.copy xs in
  Array.sort compare ys;
  ys

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Summary.percentile: empty sample";
  if p < 0. || p > 100. then invalid_arg "Summary.percentile: p out of range";
  let ys = sorted_copy xs in
  let n = Array.length ys in
  if n = 1 then ys.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    let frac = rank -. float_of_int lo in
    (ys.(lo) *. (1. -. frac)) +. (ys.(hi) *. frac)
  end

let median xs = percentile xs 50.

let coefficient_of_variation t = if t.mean = 0. then 0. else t.stddev /. t.mean

let spread t = if t.min = 0. then 0. else (t.max -. t.min) /. t.min

let pp fmt t =
  Format.fprintf fmt "mean=%.6f s=%.6f n=%d" t.mean t.stddev t.n
