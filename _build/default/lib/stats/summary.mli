(** Summary statistics over a sample of floats.

    Used to aggregate repeated simulation runs into the averages and
    standard deviations the paper reports (e.g. "23.280357 s, s=0.005543"). *)

type t = {
  n : int;            (** sample size *)
  mean : float;
  stddev : float;     (** sample standard deviation (n-1 denominator) *)
  min : float;
  max : float;
  sum : float;
}

val of_list : float list -> t
(** [of_list xs] summarizes a non-empty sample. Raises
    [Invalid_argument] on the empty list. *)

val of_array : float array -> t

val median : float array -> float
(** Median of a non-empty sample (does not modify the input). *)

val percentile : float array -> float -> float
(** [percentile xs p] for [p] in [\[0, 100\]], by linear interpolation
    between closest ranks. Does not modify the input. *)

val coefficient_of_variation : t -> float
(** stddev / mean; 0 when the mean is 0. *)

val spread : t -> float
(** (max - min) / min — the paper's "relative difference between the
    minimum and maximum" metric from section 5.2. 0 when min is 0. *)

val pp : Format.formatter -> t -> unit
(** Prints ["mean=... s=... n=..."] in the paper's style. *)
