(** Labeled (x, y) data series — the unit of exchange between workloads,
    experiment harnesses, plots, and CSV export. A figure in the paper is a
    list of series sharing an x axis. *)

type point = {
  x : float;
  y : float;          (** the headline value (typically a mean) *)
  err : float;        (** error bar half-height, e.g. a standard deviation *)
}

type t = {
  label : string;
  points : point list;
}

val make : label:string -> (float * float) list -> t
(** Series with zero error bars. *)

val make_err : label:string -> (float * float * float) list -> t
(** Series from (x, y, err) triples. *)

val of_summaries : label:string -> (float * Summary.t) list -> t
(** Each point takes y = mean and err = stddev of its summary. *)

val xs : t -> float list
val ys : t -> float list

val y_at : t -> float -> float
(** [y_at t x] is the y of the point with the given x.
    @raise Not_found if absent. *)

val map_y : (float -> float) -> t -> t

val max_y : t -> float
(** Largest y in the series. Raises [Invalid_argument] on empty series. *)

val min_y : t -> float
