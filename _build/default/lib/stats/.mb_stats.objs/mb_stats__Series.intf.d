lib/stats/series.mli: Summary
