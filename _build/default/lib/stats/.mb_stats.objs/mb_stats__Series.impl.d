lib/stats/series.ml: List Summary
