type t = {
  slope : float;
  intercept : float;
  r2 : float;
  n : int;
}

let fit points =
  let n = List.length points in
  if n < 2 then invalid_arg "Regression.fit: need at least two points";
  let nf = float_of_int n in
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0. points in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0. points in
  let mx = sx /. nf and my = sy /. nf in
  let sxx = List.fold_left (fun a (x, _) -> a +. ((x -. mx) *. (x -. mx))) 0. points in
  let sxy = List.fold_left (fun a (x, y) -> a +. ((x -. mx) *. (y -. my))) 0. points in
  let syy = List.fold_left (fun a (_, y) -> a +. ((y -. my) *. (y -. my))) 0. points in
  if sxx = 0. then invalid_arg "Regression.fit: all x values identical";
  let slope = sxy /. sxx in
  let intercept = my -. (slope *. mx) in
  let r2 =
    if syy = 0. then 1.0
    else begin
      let ss_res =
        List.fold_left
          (fun a (x, y) ->
            let e = y -. ((slope *. x) +. intercept) in
            a +. (e *. e))
          0. points
      in
      1.0 -. (ss_res /. syy)
    end
  in
  { slope; intercept; r2; n }

let predict t x = (t.slope *. x) +. t.intercept

let pp fmt t =
  Format.fprintf fmt "y = %.4f x + %.4f (r2=%.4f, n=%d)" t.slope t.intercept t.r2 t.n
