lib/prng/rng.mli:
