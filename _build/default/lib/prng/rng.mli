(** Deterministic pseudo-random number generation for the simulator.

    Every stochastic decision in the reproduction flows from one of these
    generators, so identical seeds yield bit-identical experiment results.
    The core generator is SplitMix64 (Steele, Lea & Flood 2014): tiny state,
    excellent statistical quality for simulation purposes, and cheap
    splitting into independent streams. *)

type t
(** Mutable generator state. Not thread-safe; each simulated thread takes
    its own split stream. *)

val create : seed:int -> t
(** [create ~seed] makes a generator from a 63-bit seed. Equal seeds give
    equal streams. *)

val split : t -> t
(** [split t] derives a statistically independent generator and advances
    [t]. Used to give each simulated thread or run its own stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. Requires
    [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. Requires [bound > 0.]. *)

val bool : t -> bool
(** Fair coin. *)

val jitter : t -> float -> float
(** [jitter t pct] is a multiplicative noise factor uniform in
    [\[1 -. pct, 1 +. pct\]]; used to perturb per-operation costs so that
    different seeds explore different event interleavings. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean; used by the
    server workload's inter-arrival times. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
