(* SplitMix64. Reference: Steele, Lea & Flood, "Fast Splittable
   Pseudorandom Number Generators", OOPSLA 2014. The mix function is the
   finalizer from MurmurHash3 with Stafford's "variant 13" constants. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }

let positive_bits t =
  (* 62 random bits, always non-negative as an OCaml int. *)
  Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  assert (bound > 0);
  positive_bits t mod bound

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t bound =
  assert (bound > 0.);
  let scale = 1.0 /. 9007199254740992.0 (* 2^53 *) in
  let bits = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int bits *. scale *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let jitter t pct =
  if pct <= 0. then 1.0 else 1.0 -. pct +. float t (2.0 *. pct)

let exponential t ~mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0. then epsilon_float else u in
  -.mean *. log u

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))
