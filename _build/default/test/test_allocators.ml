(* Black-box tests run against every allocator implementation, plus
   white-box tests of ptmalloc's arena protocol, the per-thread caches,
   the slab allocator, and the aligning wrapper. *)

module M = Core.Machine
module A = Core.Allocator

let config = { M.default_config with M.cpus = 2; op_jitter = 0. }

let factories =
  [ Core.Factory.ptmalloc ();
    Core.Factory.serial_glibc ();
    Core.Factory.serial_solaris ();
    Core.Factory.perthread ();
    Core.Factory.slab ();
    Core.Factory.hoard ();
    Core.Factory.aligned ~line_size:32 (Core.Factory.ptmalloc ());
  ]

let in_thread body =
  let m = M.create ~seed:1 config in
  let p = M.create_proc m () in
  ignore (M.spawn p (fun ctx -> body p ctx));
  M.run m

let check_valid (alloc : A.t) =
  match alloc.A.validate () with
  | Ok () -> ()
  | Error msg -> Alcotest.fail (alloc.A.name ^ ": " ^ msg)

(* --- generic black-box battery --------------------------------------- *)

let generic_roundtrip factory () =
  in_thread (fun p ctx ->
      let alloc = factory.Core.Factory.create p in
      let blocks = List.init 100 (fun i -> alloc.A.malloc ctx (8 + (i mod 60 * 8))) in
      (* all distinct *)
      Alcotest.(check int) "distinct addresses" 100 (List.length (List.sort_uniq compare blocks));
      List.iter (fun u -> M.write_mem ctx u) blocks;
      List.iter (fun u -> alloc.A.free ctx u) blocks;
      check_valid alloc;
      Alcotest.(check int) "live zero" 0 alloc.A.stats.Core.Astats.live_bytes;
      Alcotest.(check int) "balanced ops" alloc.A.stats.Core.Astats.mallocs
        alloc.A.stats.Core.Astats.frees)

let generic_usable_size factory () =
  in_thread (fun p ctx ->
      let alloc = factory.Core.Factory.create p in
      List.iter
        (fun size ->
          let u = alloc.A.malloc ctx size in
          Alcotest.(check bool)
            (Printf.sprintf "usable(%d) covers request" size)
            true
            (alloc.A.usable_size u >= size);
          alloc.A.free ctx u)
        [ 1; 7; 8; 40; 100; 512; 4000 ])

let generic_no_overlap factory =
  QCheck.Test.make
    ~name:(Printf.sprintf "%s: live blocks never overlap" factory.Core.Factory.label)
    ~count:30
    QCheck.(list_of_size Gen.(int_range 1 80) (pair bool (int_range 1 2000)))
    (fun ops ->
      let ok = ref true in
      in_thread (fun p ctx ->
          let alloc = factory.Core.Factory.create p in
          let live = ref [] in
          List.iter
            (fun (do_alloc, size) ->
              if do_alloc || !live = [] then begin
                let u = alloc.A.malloc ctx size in
                let ulen = size in
                if List.exists (fun (v, vlen) -> not (u + ulen <= v || v + vlen <= u)) !live then
                  ok := false;
                live := (u, size) :: !live
              end
              else
                match !live with
                | (u, _) :: rest ->
                    alloc.A.free ctx u;
                    live := rest
                | [] -> ())
            ops;
          List.iter (fun (u, _) -> alloc.A.free ctx u) !live;
          match alloc.A.validate () with Ok () -> () | Error _ -> ok := false);
      !ok)

(* calloc/realloc/memalign round-trips must work on every implementation. *)
let generic_derived_api factory () =
  in_thread (fun p ctx ->
      let alloc = factory.Core.Factory.create p in
      let z = Core.Allocator.calloc alloc ctx ~count:10 ~size:13 in
      Alcotest.(check bool) "calloc covers" true (alloc.Core.Allocator.usable_size z >= 130);
      let grown = Core.Allocator.realloc alloc ctx z 1_000 in
      Alcotest.(check bool) "realloc covers" true (alloc.Core.Allocator.usable_size grown >= 1_000);
      let a = Core.Allocator.memalign alloc ctx ~alignment:64 77 in
      Alcotest.(check int) "memalign aligns" 0 (a mod 64);
      Core.Allocator.free_aligned alloc ctx a;
      alloc.Core.Allocator.free ctx grown;
      check_valid alloc;
      Alcotest.(check int) (factory.Core.Factory.label ^ " drains") 0
        alloc.Core.Allocator.stats.Core.Astats.live_bytes)

(* Multithreaded churn with a cross-thread hand-off at the end: every
   allocator must survive contention, route foreign frees correctly, and
   leave a structurally valid empty heap. *)
let generic_concurrent_stress factory () =
  let m = M.create ~seed:17 { config with M.cpus = 4 } in
  let p = M.create_proc m () in
  let alloc = factory.Core.Factory.create p in
  let leftovers = Array.make 3 [] in
  let workers =
    List.init 3 (fun w ->
        M.spawn p ~name:(string_of_int w) (fun ctx ->
            let rng = M.ctx_rng ctx in
            let live = ref [] in
            for _ = 1 to 400 do
              if Core.Rng.bool rng || !live = [] then begin
                let size = 1 + Core.Rng.int rng 700 in
                let u = alloc.A.malloc ctx size in
                M.write_mem ctx u;
                live := u :: !live
              end
              else
                match !live with
                | u :: rest ->
                    alloc.A.free ctx u;
                    live := rest
                | [] -> ()
            done;
            leftovers.(w) <- !live))
  in
  (* A final thread frees everything the workers left behind. *)
  ignore
    (M.spawn p ~name:"reaper" (fun ctx ->
         List.iter (fun w -> M.join ctx w) workers;
         Array.iter (List.iter (fun u -> alloc.A.free ctx u)) leftovers));
  M.run m;
  check_valid alloc;
  Alcotest.(check int) "live zero after reaping" 0 alloc.A.stats.Core.Astats.live_bytes;
  Alcotest.(check int) "balanced ops" alloc.A.stats.Core.Astats.mallocs
    alloc.A.stats.Core.Astats.frees

let generic_cases =
  List.concat_map
    (fun f ->
      [ Alcotest.test_case (f.Core.Factory.label ^ ": roundtrip") `Quick (generic_roundtrip f);
        Alcotest.test_case (f.Core.Factory.label ^ ": usable size") `Quick (generic_usable_size f);
        Alcotest.test_case (f.Core.Factory.label ^ ": derived C API") `Quick (generic_derived_api f);
        Alcotest.test_case
          (f.Core.Factory.label ^ ": concurrent stress")
          `Quick (generic_concurrent_stress f);
        QCheck_alcotest.to_alcotest (generic_no_overlap f);
      ])
    factories

(* --- ptmalloc arena protocol ------------------------------------------ *)

let test_ptmalloc_single_thread_one_arena () =
  in_thread (fun p ctx ->
      let pt = Core.Ptmalloc.make p () in
      let alloc = Core.Ptmalloc.allocator pt in
      for _ = 1 to 200 do
        let u = alloc.A.malloc ctx 128 in
        alloc.A.free ctx u
      done;
      Alcotest.(check int) "no contention, one arena" 1 (Core.Ptmalloc.arena_count pt))

let test_ptmalloc_arena_growth_under_contention () =
  let m = M.create ~seed:1 config in
  let p = M.create_proc m () in
  let pt = Core.Ptmalloc.make p () in
  let alloc = Core.Ptmalloc.allocator pt in
  let workers =
    List.init 2 (fun i ->
        M.spawn p ~name:(string_of_int i) (fun ctx ->
            for _ = 1 to 2_000 do
              let u = alloc.A.malloc ctx 128 in
              alloc.A.free ctx u
            done))
  in
  ignore workers;
  M.run m;
  Alcotest.(check bool) "arena created for second thread" true (Core.Ptmalloc.arena_count pt >= 2);
  check_valid alloc

let test_ptmalloc_max_arenas_cap () =
  let m = M.create ~seed:1 { config with M.cpus = 4 } in
  let p = M.create_proc m () in
  let pt = Core.Ptmalloc.make p ~max_arenas:2 () in
  let alloc = Core.Ptmalloc.allocator pt in
  ignore
    (List.init 4 (fun i ->
         M.spawn p ~name:(string_of_int i) (fun ctx ->
             for _ = 1 to 1_000 do
               let u = alloc.A.malloc ctx 128 in
               alloc.A.free ctx u
             done)));
  M.run m;
  Alcotest.(check bool) "capped" true (Core.Ptmalloc.arena_count pt <= 2);
  check_valid alloc

let test_ptmalloc_foreign_free_routing () =
  let m = M.create ~seed:1 config in
  let p = M.create_proc m () in
  let pt = Core.Ptmalloc.make p () in
  let alloc = Core.Ptmalloc.allocator pt in
  let handover = ref [] in
  let producer =
    M.spawn p ~name:"producer" (fun ctx ->
        (* force a private arena by colliding once *)
        handover := List.init 50 (fun _ -> alloc.A.malloc ctx 64))
  in
  ignore
    (M.spawn p ~name:"consumer" (fun ctx ->
         M.join ctx producer;
         (* allocate to establish this thread's own arena usage *)
         let mine = alloc.A.malloc ctx 64 in
         List.iter (fun u -> alloc.A.free ctx u) !handover;
         alloc.A.free ctx mine));
  M.run m;
  check_valid alloc;
  Alcotest.(check int) "all storage drained" 0 alloc.A.stats.Core.Astats.live_bytes

let test_ptmalloc_arena_of_thread () =
  let m = M.create ~seed:1 config in
  let p = M.create_proc m () in
  let pt = Core.Ptmalloc.make p () in
  let alloc = Core.Ptmalloc.allocator pt in
  let tid_box = ref (-1) in
  ignore
    (M.spawn p (fun ctx ->
         tid_box := M.tid ctx;
         let u = alloc.A.malloc ctx 64 in
         alloc.A.free ctx u));
  M.run m;
  Alcotest.(check (option int)) "cached arena recorded" (Some 0) (Core.Ptmalloc.arena_of_thread pt !tid_box)

let test_ptmalloc_usable_and_wild_free () =
  in_thread (fun p ctx ->
      let alloc = Core.Ptmalloc.allocator (Core.Ptmalloc.make p ()) in
      let u = alloc.A.malloc ctx 100 in
      Alcotest.(check bool) "usable" true (alloc.A.usable_size u >= 100);
      Alcotest.check_raises "wild free"
        (Invalid_argument "ptmalloc.free: address not owned by any arena") (fun () ->
          alloc.A.free ctx 0x99);
      alloc.A.free ctx u)

(* --- perthread --------------------------------------------------------- *)

let test_perthread_lock_amortization () =
  in_thread (fun p ctx ->
      let pt = Core.Perthread.make p ~batch:16 () in
      let alloc = Core.Perthread.allocator pt in
      for _ = 1 to 320 do
        let u = alloc.A.malloc ctx 40 in
        alloc.A.free ctx u
      done;
      (* one refill of 16 serves the whole loop: far fewer lock trips than ops *)
      Alcotest.(check bool) "global lock rarely touched" true
        (Core.Perthread.global_lock_acquisitions pt < 20);
      Alcotest.(check bool) "objects parked in cache" true (Core.Perthread.cached_objects pt > 0))

let test_perthread_cache_limit_flush () =
  in_thread (fun p ctx ->
      let pt = Core.Perthread.make p ~batch:8 ~cache_limit:16 () in
      let alloc = Core.Perthread.allocator pt in
      let blocks = List.init 100 (fun _ -> alloc.A.malloc ctx 40) in
      List.iter (fun u -> alloc.A.free ctx u) blocks;
      (* the magazine was capped, flushing overflow back to the heap *)
      Alcotest.(check bool) "cache bounded" true (Core.Perthread.cached_objects pt <= 17);
      check_valid (Core.Perthread.allocator pt))

let test_perthread_large_objects_bypass () =
  in_thread (fun p ctx ->
      let pt = Core.Perthread.make p () in
      let alloc = Core.Perthread.allocator pt in
      let u = alloc.A.malloc ctx 4096 in
      alloc.A.free ctx u;
      Alcotest.(check int) "nothing cached" 0 (Core.Perthread.cached_objects pt);
      Alcotest.(check int) "fully drained" 0 alloc.A.stats.Core.Astats.live_bytes)

(* --- slab --------------------------------------------------------------- *)

let test_slab_size_classes () =
  in_thread (fun p ctx ->
      let slab = Core.Slab.make p () in
      let alloc = Core.Slab.allocator slab in
      let a = alloc.A.malloc ctx 10 in
      let b = alloc.A.malloc ctx 100 in
      let c = alloc.A.malloc ctx 1000 in
      Alcotest.(check int) "three power-of-two caches" 3 (Core.Slab.cache_count slab);
      Alcotest.(check int) "10 -> 16" 16 (alloc.A.usable_size a);
      Alcotest.(check int) "100 -> 128" 128 (alloc.A.usable_size b);
      Alcotest.(check int) "1000 -> 1024" 1024 (alloc.A.usable_size c);
      List.iter (fun u -> alloc.A.free ctx u) [ a; b; c ];
      check_valid alloc)

let test_slab_reclaims_empty_slabs () =
  in_thread (fun p ctx ->
      let slab = Core.Slab.make p ~slab_pages:1 () in
      let alloc = Core.Slab.allocator slab in
      (* two slabs' worth of 512B objects: 8 per slab *)
      let blocks = List.init 24 (fun _ -> alloc.A.malloc ctx 512) in
      let high = Core.Slab.slab_count slab in
      Alcotest.(check int) "three slabs" 3 high;
      List.iter (fun u -> alloc.A.free ctx u) blocks;
      Alcotest.(check bool) "empties reclaimed" true (Core.Slab.slab_count slab < high);
      check_valid alloc)

(* --- aligned wrapper ----------------------------------------------------- *)

let test_aligned_addresses () =
  in_thread (fun p ctx ->
      let inner = Core.Ptmalloc.allocator (Core.Ptmalloc.make p ()) in
      let alloc = Core.Aligned.make ~line_size:32 inner in
      List.iter
        (fun size ->
          let u = alloc.A.malloc ctx size in
          Alcotest.(check int) (Printf.sprintf "%dB aligned" size) 0 (u mod 32);
          Alcotest.(check bool) "usable covers" true (alloc.A.usable_size u >= size);
          alloc.A.free ctx u)
        [ 3; 17; 32; 40; 52; 100 ])

let test_aligned_objects_own_their_lines () =
  in_thread (fun p ctx ->
      let inner = Core.Ptmalloc.allocator (Core.Ptmalloc.make p ()) in
      let alloc = Core.Aligned.make ~line_size:32 inner in
      let blocks = List.init 16 (fun _ -> alloc.A.malloc ctx 24) in
      let lines u = [ u / 32; (u + 23) / 32 ] in
      let all_lines = List.concat_map lines blocks in
      (* each block's lines appear for no other block *)
      let module IS = Set.Make (Int) in
      Alcotest.(check int) "no shared lines" (IS.cardinal (IS.of_list all_lines))
        (List.length (List.sort_uniq compare all_lines));
      List.iter
        (fun u ->
          List.iter
            (fun v ->
              if u <> v then
                List.iter (fun l -> if List.mem l (lines v) then Alcotest.fail "line shared") (lines u))
            blocks)
        blocks;
      List.iter (fun u -> alloc.A.free ctx u) blocks)

let test_aligned_wild_free () =
  in_thread (fun p ctx ->
      let inner = Core.Ptmalloc.allocator (Core.Ptmalloc.make p ()) in
      let alloc = Core.Aligned.make ~line_size:32 inner in
      Alcotest.check_raises "unknown address"
        (Invalid_argument "Aligned.free: address was not allocated through this wrapper") (fun () ->
          alloc.A.free ctx 320))

let test_padding_overhead () =
  Alcotest.(check bool) "40B pays at most 56 extra" true
    (Core.Aligned.padding_overhead ~line_size:32 40 <= 56);
  Alcotest.check_raises "power of two required"
    (Invalid_argument "Aligned.make: line_size not a power of two") (fun () ->
      in_thread (fun p _ ->
          ignore (Core.Aligned.make ~line_size:33 (Core.Ptmalloc.allocator (Core.Ptmalloc.make p ())))))

(* --- serial -------------------------------------------------------------- *)

let test_serial_lock_counts () =
  in_thread (fun p ctx ->
      let s = Core.Serial.make p () in
      let alloc = Core.Serial.allocator s in
      for _ = 1 to 50 do
        let u = alloc.A.malloc ctx 64 in
        alloc.A.free ctx u
      done;
      Alcotest.(check int) "every op takes the one lock" 100 (Core.Serial.lock_acquisitions s);
      Alcotest.(check int) "no contention single-threaded" 0 (Core.Serial.lock_contentions s))

let suite =
  generic_cases
  @ [ Alcotest.test_case "ptmalloc: 1 thread, 1 arena" `Quick test_ptmalloc_single_thread_one_arena;
      Alcotest.test_case "ptmalloc: arenas grow on contention" `Quick
        test_ptmalloc_arena_growth_under_contention;
      Alcotest.test_case "ptmalloc: max_arenas cap" `Quick test_ptmalloc_max_arenas_cap;
      Alcotest.test_case "ptmalloc: foreign free routing" `Quick test_ptmalloc_foreign_free_routing;
      Alcotest.test_case "ptmalloc: arena_of_thread" `Quick test_ptmalloc_arena_of_thread;
      Alcotest.test_case "ptmalloc: usable size / wild free" `Quick test_ptmalloc_usable_and_wild_free;
      Alcotest.test_case "perthread: lock amortization" `Quick test_perthread_lock_amortization;
      Alcotest.test_case "perthread: cache limit flush" `Quick test_perthread_cache_limit_flush;
      Alcotest.test_case "perthread: large bypass" `Quick test_perthread_large_objects_bypass;
      Alcotest.test_case "slab: size classes" `Quick test_slab_size_classes;
      Alcotest.test_case "slab: reclaims empties" `Quick test_slab_reclaims_empty_slabs;
      Alcotest.test_case "aligned: addresses" `Quick test_aligned_addresses;
      Alcotest.test_case "aligned: exclusive lines" `Quick test_aligned_objects_own_their_lines;
      Alcotest.test_case "aligned: wild free" `Quick test_aligned_wild_free;
      Alcotest.test_case "aligned: padding overhead" `Quick test_padding_overhead;
      Alcotest.test_case "serial: lock counts" `Quick test_serial_lock_counts;
    ]
