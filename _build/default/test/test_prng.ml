(* Unit and property tests for the SplitMix64 generator. *)

module Rng = Core.Rng

let test_determinism () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:8 in
  Alcotest.(check bool) "different seeds diverge" true (Rng.bits64 a <> Rng.bits64 b)

let test_split_independence () =
  let parent = Rng.create ~seed:3 in
  let child = Rng.split parent in
  let xs = List.init 16 (fun _ -> Rng.bits64 parent) in
  let ys = List.init 16 (fun _ -> Rng.bits64 child) in
  Alcotest.(check bool) "split stream differs" true (xs <> ys)

let test_split_deterministic () =
  let mk () =
    let parent = Rng.create ~seed:3 in
    let child = Rng.split parent in
    (Rng.bits64 parent, Rng.bits64 child)
  in
  Alcotest.(check bool) "split is reproducible" true (mk () = mk ())

let test_int_in_bounds () =
  let r = Rng.create ~seed:1 in
  for _ = 1 to 1000 do
    let v = Rng.int_in r 5 9 in
    Alcotest.(check bool) "in [5,9]" true (v >= 5 && v <= 9)
  done

let test_int_covers_range () =
  let r = Rng.create ~seed:1 in
  let seen = Array.make 8 false in
  for _ = 1 to 1000 do
    seen.(Rng.int r 8) <- true
  done;
  Alcotest.(check bool) "all 8 values appear in 1000 draws" true (Array.for_all Fun.id seen)

let test_float_bounds () =
  let r = Rng.create ~seed:2 in
  for _ = 1 to 1000 do
    let v = Rng.float r 2.5 in
    Alcotest.(check bool) "in [0, 2.5)" true (v >= 0. && v < 2.5)
  done

let test_jitter_range () =
  let r = Rng.create ~seed:4 in
  for _ = 1 to 1000 do
    let v = Rng.jitter r 0.05 in
    Alcotest.(check bool) "within +/-5%" true (v >= 0.95 && v <= 1.05)
  done

let test_jitter_zero () =
  let r = Rng.create ~seed:4 in
  Alcotest.(check (float 0.)) "no jitter" 1.0 (Rng.jitter r 0.)

let test_exponential_mean () =
  let r = Rng.create ~seed:5 in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    let v = Rng.exponential r ~mean:3.0 in
    Alcotest.(check bool) "positive" true (v > 0.);
    sum := !sum +. v
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 3" true (abs_float (mean -. 3.0) < 0.15)

let test_shuffle_is_permutation () =
  let r = Rng.create ~seed:6 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 Fun.id) sorted

let test_pick_membership () =
  let r = Rng.create ~seed:8 in
  let a = [| 3; 1; 4; 1; 5 |] in
  for _ = 1 to 100 do
    Alcotest.(check bool) "member" true (Array.exists (( = ) (Rng.pick r a)) a)
  done

let prop_int_bounds =
  QCheck.Test.make ~name:"int always in [0, bound)" ~count:500
    QCheck.(pair small_int (int_range 1 10_000))
    (fun (seed, bound) ->
      let r = Rng.create ~seed in
      let v = Rng.int r bound in
      v >= 0 && v < bound)

let prop_mod_uniformity =
  (* crude chi-square-free uniformity sanity: every residue class of a
     small modulus is hit *)
  QCheck.Test.make ~name:"small modulus residues all covered" ~count:20 QCheck.small_int
    (fun seed ->
      let r = Rng.create ~seed in
      let seen = Array.make 4 0 in
      for _ = 1 to 400 do
        seen.(Rng.int r 4) <- seen.(Rng.int r 4) + 1
      done;
      Array.for_all (fun c -> c > 0) seen)

let suite =
  [ Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
    Alcotest.test_case "split independence" `Quick test_split_independence;
    Alcotest.test_case "split deterministic" `Quick test_split_deterministic;
    Alcotest.test_case "int_in bounds" `Quick test_int_in_bounds;
    Alcotest.test_case "int covers range" `Quick test_int_covers_range;
    Alcotest.test_case "float bounds" `Quick test_float_bounds;
    Alcotest.test_case "jitter range" `Quick test_jitter_range;
    Alcotest.test_case "jitter zero" `Quick test_jitter_zero;
    Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
    Alcotest.test_case "pick membership" `Quick test_pick_membership;
    QCheck_alcotest.to_alcotest prop_int_bounds;
    QCheck_alcotest.to_alcotest prop_mod_uniformity;
  ]
