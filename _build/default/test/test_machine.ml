(* Tests for the SMP machine: scheduling, mutexes, paging charges. *)

module M = Core.Machine

let two_cpu = { M.default_config with M.cpus = 2; op_jitter = 0. }

let uni = { M.default_config with M.cpus = 1; op_jitter = 0. }

let run_workers ?(config = two_cpu) ?(seed = 1) n body =
  let m = M.create ~seed config in
  let p = M.create_proc m ~name:"t" () in
  let threads = List.init n (fun i -> M.spawn p ~name:(Printf.sprintf "w%d" i) (body i)) in
  M.run m;
  (m, p, threads)

let cycles config n = M.cycles_to_ns (M.create config) (float_of_int n)

let test_single_thread_work_time () =
  let _, _, threads = run_workers 1 (fun _ ctx -> M.work_exact ctx 100_000) in
  let elapsed = M.elapsed_ns (List.hd threads) in
  let expected = cycles two_cpu (100_000 + M.default_config.M.ctx_switch_cycles) in
  (* plus thread startup: spawn cycles + stack fault *)
  Alcotest.(check bool) "close to work + startup" true
    (elapsed >= expected && elapsed < expected *. 1.2)

let test_parallel_speedup () =
  let _, _, two = run_workers 2 (fun _ ctx -> M.work_exact ctx 200_000) in
  let _, _, four = run_workers 4 (fun _ ctx -> M.work_exact ctx 200_000) in
  let mean ths = List.fold_left (fun a t -> a +. M.elapsed_ns t) 0. ths /. float_of_int (List.length ths) in
  let r = mean four /. mean two in
  (* 4 threads on 2 CPUs: each CPU runs two of the threads back to back
     (the work fits in one quantum), so mean elapsed is about 1.5x the
     2-thread case and the last finishers take 2x. *)
  Alcotest.(check bool) "T/P scaling" true (r > 1.3 && r < 2.3)

let test_round_robin_fairness () =
  let _, _, threads = run_workers ~config:uni 3 (fun _ ctx -> M.work_exact ctx 300_000) in
  let times = List.map M.elapsed_ns threads in
  let mx = List.fold_left max 0. times and mn = List.fold_left min infinity times in
  Alcotest.(check bool) "within 25%" true (mx /. mn < 1.25)

let test_work_conservation () =
  let m, _, _ = run_workers ~config:uni 3 (fun _ ctx -> M.work_exact ctx 100_000) in
  (* All work must be accounted as busy cycles (plus switches/startup). *)
  Alcotest.(check bool) "busy >= total work" true (M.busy_cycles m >= 300_000.)

let test_mutual_exclusion () =
  let m = M.create ~seed:3 two_cpu in
  let p = M.create_proc m () in
  let mu = M.Mutex.create m () in
  let inside = ref 0 in
  let max_inside = ref 0 in
  let ths =
    List.init 4 (fun i ->
        M.spawn p ~name:(string_of_int i) (fun ctx ->
            for _ = 1 to 200 do
              M.Mutex.lock mu ctx;
              incr inside;
              if !inside > !max_inside then max_inside := !inside;
              M.work ctx 50;
              decr inside;
              M.Mutex.unlock mu ctx;
              M.work ctx 30
            done))
  in
  ignore ths;
  M.run m;
  Alcotest.(check int) "never two inside" 1 !max_inside;
  Alcotest.(check int) "all acquisitions" 800 (M.Mutex.acquisitions mu)

let test_mutual_exclusion_handoff () =
  let config = { two_cpu with M.spin_cycles = 0; mutex_handoff = true } in
  let m = M.create ~seed:3 config in
  let p = M.create_proc m () in
  let mu = M.Mutex.create m () in
  let inside = ref 0 and bad = ref false in
  let ths =
    List.init 3 (fun i ->
        M.spawn p ~name:(string_of_int i) (fun ctx ->
            for _ = 1 to 100 do
              M.Mutex.lock mu ctx;
              incr inside;
              if !inside > 1 then bad := true;
              M.work ctx 50;
              decr inside;
              M.Mutex.unlock mu ctx
            done))
  in
  ignore ths;
  M.run m;
  Alcotest.(check bool) "exclusion holds under handoff" false !bad

let test_trylock () =
  let m = M.create two_cpu in
  let p = M.create_proc m () in
  let mu = M.Mutex.create m () in
  let observed = ref [] in
  ignore
    (M.spawn p (fun ctx ->
         Alcotest.(check bool) "free trylock succeeds" true (M.Mutex.try_lock mu ctx);
         Alcotest.(check bool) "held trylock fails" false (M.Mutex.try_lock mu ctx);
         observed := [ M.Mutex.contentions mu ];
         M.Mutex.unlock mu ctx));
  M.run m;
  Alcotest.(check (list int)) "contention counted" [ 1 ] !observed

let test_unlock_not_owner () =
  let m = M.create two_cpu in
  let p = M.create_proc m () in
  let mu = M.Mutex.create m () in
  ignore
    (M.spawn p (fun ctx ->
         Alcotest.check_raises "unlock unowned" (Invalid_argument "Mutex.unlock: not the owner")
           (fun () -> M.Mutex.unlock mu ctx)));
  M.run m

let test_blocking_and_wakeup () =
  let config = { two_cpu with M.spin_cycles = 0 } in
  let m = M.create config in
  let p = M.create_proc m () in
  let mu = M.Mutex.create m () in
  let order = ref [] in
  let a =
    M.spawn p ~name:"a" (fun ctx ->
        M.Mutex.lock mu ctx;
        M.work_exact ctx 50_000;
        order := "a-unlock" :: !order;
        M.Mutex.unlock mu ctx)
  in
  ignore a;
  let b =
    M.spawn p ~name:"b" (fun ctx ->
        M.work_exact ctx 100;  (* lose the race for the lock *)
        M.Mutex.lock mu ctx;
        order := "b-locked" :: !order;
        M.Mutex.unlock mu ctx)
  in
  M.run m;
  Alcotest.(check (list string)) "blocked until unlock" [ "a-unlock"; "b-locked" ] (List.rev !order);
  Alcotest.(check bool) "b blocked" true ((M.thread_stats b).M.blocks >= 1)

let test_join () =
  let m = M.create two_cpu in
  let p = M.create_proc m () in
  let child = M.spawn p ~name:"child" (fun ctx -> M.work_exact ctx 70_000) in
  let joined_at = ref 0. in
  ignore
    (M.spawn p ~name:"parent" (fun ctx ->
         M.join ctx child;
         joined_at := M.now ctx));
  M.run m;
  Alcotest.(check bool) "join waited" true (!joined_at >= M.elapsed_ns child)

let test_join_finished_thread () =
  let m = M.create two_cpu in
  let p = M.create_proc m () in
  let child = M.spawn p (fun _ -> ()) in
  ignore
    (M.spawn p (fun ctx ->
         M.work_exact ctx 500_000;
         (* child long gone: join must not block *)
         M.join ctx child));
  M.run m;
  Alcotest.(check bool) "completed" true true

let test_latch () =
  let m = M.create two_cpu in
  let p = M.create_proc m () in
  let latch = M.Latch.create m in
  let woke = ref 0. in
  ignore
    (M.spawn p (fun ctx ->
         M.Latch.wait latch ctx;
         woke := M.now ctx));
  ignore
    (M.spawn p (fun ctx ->
         M.work_exact ctx 90_000;
         M.Latch.signal latch ctx;
         (* idempotent and non-blocking after set *)
         M.Latch.signal latch ctx;
         M.Latch.wait latch ctx));
  M.run m;
  Alcotest.(check bool) "latch released waiter" true (!woke > 0.);
  Alcotest.(check bool) "set" true (M.Latch.is_set latch)

let test_multithreaded_flag () =
  let m = M.create two_cpu in
  let p = M.create_proc m () in
  Alcotest.(check bool) "fresh proc single-threaded" false (M.proc_multithreaded p);
  ignore (M.spawn p (fun _ -> ()));
  Alcotest.(check bool) "one thread still single" false (M.proc_multithreaded p);
  ignore (M.spawn p (fun _ -> ()));
  Alcotest.(check bool) "two threads multi" true (M.proc_multithreaded p);
  M.run m;
  (* sticky even after both exit *)
  Alcotest.(check bool) "sticky" true (M.proc_multithreaded p)

let test_stub_vs_atomic_lock_cost () =
  let time_locked multi =
    let m = M.create two_cpu in
    let p = M.create_proc m () in
    if multi then ignore (M.spawn p (fun _ -> ()));
    let mu = M.Mutex.create m () in
    let th =
      M.spawn p (fun ctx ->
          for _ = 1 to 1000 do
            M.Mutex.lock mu ctx;
            M.Mutex.unlock mu ctx
          done)
    in
    M.run m;
    M.elapsed_ns th
  in
  Alcotest.(check bool) "atomic locks cost more than stubs" true (time_locked true > time_locked false)

let test_spawn_faults_stack_page () =
  let m = M.create two_cpu in
  let p = M.create_proc m () in
  let base = Core.Address_space.minor_faults (M.proc_vm p) in
  let th = M.spawn p (fun _ -> ()) in
  M.run m;
  Alcotest.(check int) "one stack page" 1 (Core.Address_space.minor_faults (M.proc_vm p) - base);
  Alcotest.(check int) "charged to the thread" 1 (M.thread_stats th).M.page_faults

let test_mem_ops_fault_and_cost () =
  let m = M.create two_cpu in
  let p = M.create_proc m () in
  ignore
    (M.spawn p (fun ctx ->
         let addr = Option.get (M.mmap ctx ~len:4096) in
         let t0 = M.now ctx in
         M.write_mem ctx addr;  (* page fault + cache miss *)
         let t1 = M.now ctx in
         M.write_mem ctx addr;  (* pure cache hit *)
         let t2 = M.now ctx in
         Alcotest.(check bool) "first access much dearer" true (t1 -. t0 > 10. *. (t2 -. t1))));
  M.run m

let test_asid_isolation () =
  (* Two processes using the same virtual address must not create
     coherence traffic between each other. *)
  let m = M.create two_cpu in
  let body _ ctx =
    let addr = Option.get (M.sbrk ctx 4096) in
    for _ = 1 to 100 do
      M.write_mem ctx addr
    done
  in
  let p1 = M.create_proc m ~name:"p1" () in
  let p2 = M.create_proc m ~name:"p2" () in
  ignore (M.spawn p1 (body 1));
  ignore (M.spawn p2 (body 2));
  M.run m;
  Alcotest.(check int) "no cross-process transfers" 0 (Core.Coherence.transfers (M.cache m))

let test_touch_range_counts () =
  let m = M.create two_cpu in
  let p = M.create_proc m () in
  let th =
    M.spawn p (fun ctx ->
        let addr = Option.get (M.mmap ctx ~len:(8 * 4096)) in
        M.touch_range ctx addr ~len:(8 * 4096))
  in
  M.run m;
  Alcotest.(check bool) "8 pages + stack" true ((M.thread_stats th).M.page_faults >= 8)

let test_elapsed_requires_finish () =
  let m = M.create two_cpu in
  let p = M.create_proc m () in
  let th = M.spawn p (fun _ -> ()) in
  Alcotest.check_raises "unfinished" (Invalid_argument "Machine.elapsed_ns: thread still running")
    (fun () -> ignore (M.elapsed_ns th));
  M.run m;
  Alcotest.(check bool) "finished now" true (M.elapsed_ns th >= 0.)

let test_exit_hook_runs () =
  let m = M.create two_cpu in
  let p = M.create_proc m () in
  let ran = ref [] in
  ignore
    (M.spawn p (fun ctx ->
         M.exit_hook ctx (fun () -> ran := "first" :: !ran);
         M.exit_hook ctx (fun () -> ran := "second" :: !ran)));
  M.run m;
  Alcotest.(check (list string)) "registration order" [ "first"; "second" ] (List.rev !ran)

(* Scheduler conservation laws under random workloads. *)
let prop_conservation =
  QCheck.Test.make ~name:"elapsed >= own work; busy >= total work; makespan >= work/cpus" ~count:40
    QCheck.(triple (int_range 1 4) (int_range 1 6) (list_of_size Gen.(int_range 1 6) (int_range 1_000 80_000)))
    (fun (cpus, extra_threads, works) ->
      let works = works @ List.init extra_threads (fun i -> 10_000 + (i * 1_000)) in
      let cfg = { M.default_config with M.cpus; op_jitter = 0. } in
      let m = M.create ~seed:9 cfg in
      let p = M.create_proc m () in
      let threads = List.map (fun w -> (w, M.spawn p (fun ctx -> M.work_exact ctx w))) works in
      M.run m;
      let cycle_ns = M.cycles_to_ns m 1.0 in
      let total_work = float_of_int (List.fold_left ( + ) 0 works) in
      let own_ok =
        List.for_all
          (fun (w, th) -> M.elapsed_ns th >= (float_of_int w *. cycle_ns) -. 1e-6)
          threads
      in
      let busy_ok = M.busy_cycles m >= total_work -. 1e-6 in
      let makespan = M.now_ns m /. cycle_ns in
      let makespan_ok = makespan >= (total_work /. float_of_int cpus) -. 1e-6 in
      own_ok && busy_ok && makespan_ok)

let prop_exclusion_both_policies =
  QCheck.Test.make ~name:"mutual exclusion under random contention (both unlock policies)" ~count:20
    QCheck.(triple bool (int_range 2 5) (int_range 1 60))
    (fun (handoff, nthreads, iters) ->
      let cfg =
        { M.default_config with
          M.cpus = 2;
          op_jitter = 0.;
          mutex_handoff = handoff;
          spin_cycles = (if handoff then 0 else 200);
        }
      in
      let m = M.create ~seed:11 cfg in
      let p = M.create_proc m () in
      let mu = M.Mutex.create m () in
      let inside = ref 0 and bad = ref false in
      let ths =
        List.init nthreads (fun i ->
            M.spawn p ~name:(string_of_int i) (fun ctx ->
                for _ = 1 to iters do
                  M.Mutex.lock mu ctx;
                  incr inside;
                  if !inside > 1 then bad := true;
                  M.work ctx 40;
                  decr inside;
                  M.Mutex.unlock mu ctx;
                  M.work ctx 25
                done))
      in
      ignore ths;
      M.run m;
      (not !bad) && M.Mutex.acquisitions mu = nthreads * iters)

let prop_deterministic_replay =
  QCheck.Test.make ~name:"identical seeds give identical simulations" ~count:10
    QCheck.(pair small_int (int_range 2 5))
    (fun (seed, threads) ->
      let run () =
        let m = M.create ~seed { M.default_config with M.cpus = 2 } in
        let p = M.create_proc m () in
        let mu = M.Mutex.create m () in
        let ths =
          List.init threads (fun i ->
              M.spawn p ~name:(string_of_int i) (fun ctx ->
                  for _ = 1 to 40 do
                    M.Mutex.lock mu ctx;
                    M.work ctx 120;
                    M.Mutex.unlock mu ctx;
                    M.work ctx 60
                  done))
        in
        M.run m;
        (M.now_ns m, List.map M.elapsed_ns ths)
      in
      run () = run ())

let suite =
  [ Alcotest.test_case "single thread work time" `Quick test_single_thread_work_time;
    QCheck_alcotest.to_alcotest prop_conservation;
    QCheck_alcotest.to_alcotest prop_exclusion_both_policies;
    QCheck_alcotest.to_alcotest prop_deterministic_replay;
    Alcotest.test_case "parallel speedup" `Quick test_parallel_speedup;
    Alcotest.test_case "round-robin fairness" `Quick test_round_robin_fairness;
    Alcotest.test_case "work conservation" `Quick test_work_conservation;
    Alcotest.test_case "mutual exclusion (barging)" `Quick test_mutual_exclusion;
    Alcotest.test_case "mutual exclusion (handoff)" `Quick test_mutual_exclusion_handoff;
    Alcotest.test_case "trylock" `Quick test_trylock;
    Alcotest.test_case "unlock not owner" `Quick test_unlock_not_owner;
    Alcotest.test_case "blocking and wakeup" `Quick test_blocking_and_wakeup;
    Alcotest.test_case "join" `Quick test_join;
    Alcotest.test_case "join finished thread" `Quick test_join_finished_thread;
    Alcotest.test_case "latch" `Quick test_latch;
    Alcotest.test_case "multithreaded flag" `Quick test_multithreaded_flag;
    Alcotest.test_case "stub vs atomic lock cost" `Quick test_stub_vs_atomic_lock_cost;
    Alcotest.test_case "spawn faults stack page" `Quick test_spawn_faults_stack_page;
    Alcotest.test_case "memory access costs" `Quick test_mem_ops_fault_and_cost;
    Alcotest.test_case "asid isolation" `Quick test_asid_isolation;
    Alcotest.test_case "touch_range counts" `Quick test_touch_range_counts;
    Alcotest.test_case "elapsed requires finish" `Quick test_elapsed_requires_finish;
    Alcotest.test_case "exit hooks" `Quick test_exit_hook_runs;
  ]
