(* Integration: every paper artifact and extension regenerates with its
   shape checks passing, in quick mode. This is the executable form of
   EXPERIMENTS.md's claims. *)

let opts = Core.Exp_common.quick_opts

let case (id, runner) =
  Alcotest.test_case id `Slow (fun () ->
      let outcome = runner opts in
      List.iter
        (fun (c : Core.Outcome.check) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: %s (%s)" id c.Core.Outcome.label c.Core.Outcome.detail)
            true c.Core.Outcome.pass)
        outcome.Core.Outcome.checks)

let suite = List.map case Core.Experiments.all
