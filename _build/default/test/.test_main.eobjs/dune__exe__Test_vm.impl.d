test/test_vm.ml: Alcotest Core Gen List Option QCheck QCheck_alcotest
