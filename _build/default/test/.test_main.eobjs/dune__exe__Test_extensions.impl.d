test/test_extensions.ml: Alcotest Core List Printf
