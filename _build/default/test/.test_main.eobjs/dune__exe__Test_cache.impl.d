test/test_cache.ml: Alcotest Core Gen List QCheck QCheck_alcotest
