test/test_prng.ml: Alcotest Array Core Fun List QCheck QCheck_alcotest
