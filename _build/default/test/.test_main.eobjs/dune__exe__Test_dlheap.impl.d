test/test_dlheap.ml: Alcotest Core List Option Printf QCheck QCheck_alcotest String
