test/test_workload.ml: Alcotest Array Core List QCheck QCheck_alcotest
