test/test_machine.ml: Alcotest Core Gen List Option Printf QCheck QCheck_alcotest
