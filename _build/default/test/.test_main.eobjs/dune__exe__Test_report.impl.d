test/test_report.ml: Alcotest Core String
