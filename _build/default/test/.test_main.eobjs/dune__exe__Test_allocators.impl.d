test/test_allocators.ml: Alcotest Array Core Gen Int List Printf QCheck QCheck_alcotest Set
