test/test_sim.ml: Alcotest Core Gen List Mb_sim Option QCheck QCheck_alcotest
