(* Tests for the MESI-style coherence cost model. *)

module C = Core.Coherence

let config =
  { C.line_size = 32;
    hit_cycles = 1;
    miss_cycles = 30;
    transfer_cycles = 40;
    upgrade_cycles = 12;
    ping_pong_burst = 4;
  }

let make () = C.create config ~cpus:4

let test_line_of () =
  let t = make () in
  Alcotest.(check int) "same line" (C.line_of t 0) (C.line_of t 31);
  Alcotest.(check bool) "next line" true (C.line_of t 32 <> C.line_of t 31)

let test_cold_read_then_hit () =
  let t = make () in
  Alcotest.(check int) "cold miss" 30 (C.read t ~cpu:0 100);
  Alcotest.(check int) "warm hit" 1 (C.read t ~cpu:0 101)

let test_shared_read () =
  let t = make () in
  ignore (C.read t ~cpu:0 100);
  Alcotest.(check int) "other cpu fills" 30 (C.read t ~cpu:1 100);
  Alcotest.(check int) "both now hit" 1 (C.read t ~cpu:0 100)

let test_write_paths () =
  let t = make () in
  Alcotest.(check int) "cold write misses" 30 (C.write t ~cpu:0 200);
  Alcotest.(check int) "owned write hits" 1 (C.write t ~cpu:0 201);
  Alcotest.(check int) "dirty elsewhere transfers" 40 (C.write t ~cpu:1 200);
  Alcotest.(check int) "ownership moved" 1 (C.write t ~cpu:1 202)

let test_read_of_dirty_line () =
  let t = make () in
  ignore (C.write t ~cpu:0 300);
  Alcotest.(check int) "reader pays transfer" 40 (C.read t ~cpu:1 300);
  Alcotest.(check int) "then both share" 1 (C.read t ~cpu:0 300)

let test_upgrade () =
  let t = make () in
  ignore (C.read t ~cpu:0 400);
  ignore (C.read t ~cpu:1 400);
  Alcotest.(check int) "shared holder upgrades" 12 (C.write t ~cpu:0 400);
  Alcotest.(check int) "invalidated peer transfers" 40 (C.write t ~cpu:1 400)

let test_exclusive_upgrade_is_hit () =
  let t = make () in
  ignore (C.read t ~cpu:0 500);
  Alcotest.(check int) "sole sharer writes for a hit" 1 (C.write t ~cpu:0 500)

let test_write_repeated_uncontended () =
  let t = make () in
  let cost = C.write_repeated t ~cpu:0 600 ~count:10 in
  Alcotest.(check int) "miss + 9 hits" (30 + 9) cost;
  Alcotest.(check int) "subsequent batch all hits" 10 (C.write_repeated t ~cpu:0 600 ~count:10)

let test_write_repeated_pingpong () =
  let t = make () in
  ignore (C.write t ~cpu:0 700);
  let before = C.transfers t in
  (* 8 stores with burst 4: 2 ownership transfers + 6 buffered hits *)
  let cost = C.write_repeated t ~cpu:1 700 ~count:8 in
  Alcotest.(check int) "2 transfers + 6 hits" ((2 * 40) + 6) cost;
  Alcotest.(check int) "transfer count" 2 (C.transfers t - before)

let test_flush_line () =
  let t = make () in
  ignore (C.write t ~cpu:0 800);
  C.flush_line t 800;
  Alcotest.(check int) "cold again" 30 (C.read t ~cpu:0 800)

let test_stats_counters () =
  let t = make () in
  ignore (C.read t ~cpu:0 900);   (* miss *)
  ignore (C.read t ~cpu:0 900);   (* hit *)
  ignore (C.write t ~cpu:1 900);  (* upgrade of shared *)
  ignore (C.write t ~cpu:0 900);  (* transfer *)
  Alcotest.(check int) "misses" 1 (C.misses t);
  Alcotest.(check int) "hits" 1 (C.hits t);
  Alcotest.(check int) "upgrades" 1 (C.upgrades t);
  Alcotest.(check int) "transfers" 1 (C.transfers t)

let test_cpu_validation () =
  let t = make () in
  Alcotest.check_raises "cpu range" (Invalid_argument "Coherence: cpu out of range") (fun () ->
      ignore (C.read t ~cpu:7 0))

let prop_single_cpu_never_transfers =
  QCheck.Test.make ~name:"one CPU alone never ping-pongs" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 100) (pair bool (int_bound 4096)))
    (fun ops ->
      let t = make () in
      List.iter (fun (w, addr) -> ignore (if w then C.write t ~cpu:0 addr else C.read t ~cpu:0 addr)) ops;
      C.transfers t = 0 && C.upgrades t = 0)

let prop_costs_are_known_values =
  QCheck.Test.make ~name:"every access costs one of the configured values" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 80) (triple bool (int_bound 3) (int_bound 512)))
    (fun ops ->
      let t = make () in
      List.for_all
        (fun (w, cpu, addr) ->
          let c = if w then C.write t ~cpu addr else C.read t ~cpu addr in
          List.mem c [ 1; 12; 30; 40 ])
        ops)

let suite =
  [ Alcotest.test_case "line_of" `Quick test_line_of;
    Alcotest.test_case "cold read then hit" `Quick test_cold_read_then_hit;
    Alcotest.test_case "shared read" `Quick test_shared_read;
    Alcotest.test_case "write paths" `Quick test_write_paths;
    Alcotest.test_case "read of dirty line" `Quick test_read_of_dirty_line;
    Alcotest.test_case "upgrade from shared" `Quick test_upgrade;
    Alcotest.test_case "exclusive upgrade is hit" `Quick test_exclusive_upgrade_is_hit;
    Alcotest.test_case "repeated writes uncontended" `Quick test_write_repeated_uncontended;
    Alcotest.test_case "repeated writes ping-pong" `Quick test_write_repeated_pingpong;
    Alcotest.test_case "flush line" `Quick test_flush_line;
    Alcotest.test_case "stats counters" `Quick test_stats_counters;
    Alcotest.test_case "cpu validation" `Quick test_cpu_validation;
    QCheck_alcotest.to_alcotest prop_single_cpu_never_transfers;
    QCheck_alcotest.to_alcotest prop_costs_are_known_values;
  ]
