(* Tests for the tables, plots and CSV export. *)

module Table = Core.Table
module Plot = Core.Plot
module Csv = Core.Csv
module Series = Core.Series

let contains haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  nl = 0 || scan 0

let test_table_renders () =
  let t = Table.make ~title:"T" ~header:[ "a"; "b" ] in
  Table.row t [ "1"; "2" ];
  Table.rowf t "a note: %d" 42;
  let s = Table.to_string t in
  Alcotest.(check bool) "title" true (contains s "T");
  Alcotest.(check bool) "header" true (contains s "| a ");
  Alcotest.(check bool) "row" true (contains s "| 1 ");
  Alcotest.(check bool) "note" true (contains s "a note: 42")

let test_table_width_fits_content () =
  let t = Table.make ~title:"T" ~header:[ "x" ] in
  Table.row t [ "wide-cell-content" ];
  let s = Table.to_string t in
  Alcotest.(check bool) "content not truncated" true (contains s "wide-cell-content")

let test_table_arity_check () =
  let t = Table.make ~title:"T" ~header:[ "a"; "b" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.row: cell count does not match header")
    (fun () -> Table.row t [ "only-one" ])

let test_cell_formats () =
  Alcotest.(check string) "6 decimals" "23.280357" (Table.cell_f 23.280357);
  Alcotest.(check string) "2 decimals" "23.28" (Table.cell_f2 23.28)

let test_plot_renders_data () =
  let s = Series.make ~label:"curve" [ (1., 1.); (2., 4.); (3., 9.) ] in
  let out = Plot.render ~title:"P" ~x_label:"x" ~y_label:"y" [ s ] in
  Alcotest.(check bool) "title" true (contains out "P");
  Alcotest.(check bool) "legend" true (contains out "* = curve");
  Alcotest.(check bool) "x label" true (contains out "(x)");
  Alcotest.(check bool) "has points" true (contains out "*")

let test_plot_empty () =
  let out = Plot.render ~title:"E" ~x_label:"x" ~y_label:"y" [] in
  Alcotest.(check bool) "graceful" true (contains out "no data")

let test_plot_multi_series_glyphs () =
  let a = Series.make ~label:"a" [ (1., 1.) ] in
  let b = Series.make ~label:"b" [ (2., 2.) ] in
  let out = Plot.render ~title:"M" ~x_label:"x" ~y_label:"y" [ a; b ] in
  Alcotest.(check bool) "first glyph" true (contains out "* = a");
  Alcotest.(check bool) "second glyph" true (contains out "o = b")

let test_csv_escape () =
  Alcotest.(check string) "plain" "abc" (Csv.escape "abc");
  Alcotest.(check string) "comma quoted" "\"a,b\"" (Csv.escape "a,b");
  Alcotest.(check string) "quote doubled" "\"a\"\"b\"" (Csv.escape "a\"b")

let test_csv_of_rows () =
  Alcotest.(check string) "rows" "a,b\n1,2\n" (Csv.of_rows [ [ "a"; "b" ]; [ "1"; "2" ] ])

let test_csv_of_series () =
  let a = Series.make ~label:"a" [ (1., 10.); (2., 20.) ] in
  let b = Series.make ~label:"b" [ (2., 7.) ] in
  let out = Csv.of_series [ a; b ] in
  Alcotest.(check bool) "header" true (contains out "x,a,a_err,b,b_err");
  Alcotest.(check bool) "joined row" true (contains out "2,20,0,7,0");
  Alcotest.(check bool) "missing empty" true (contains out "1,10,0,,")

let suite =
  [ Alcotest.test_case "table renders" `Quick test_table_renders;
    Alcotest.test_case "table width fits" `Quick test_table_width_fits_content;
    Alcotest.test_case "table arity" `Quick test_table_arity_check;
    Alcotest.test_case "cell formats" `Quick test_cell_formats;
    Alcotest.test_case "plot renders" `Quick test_plot_renders_data;
    Alcotest.test_case "plot empty" `Quick test_plot_empty;
    Alcotest.test_case "plot glyphs" `Quick test_plot_multi_series_glyphs;
    Alcotest.test_case "csv escape" `Quick test_csv_escape;
    Alcotest.test_case "csv rows" `Quick test_csv_of_rows;
    Alcotest.test_case "csv series" `Quick test_csv_of_series;
  ]
