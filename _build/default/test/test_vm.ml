(* Tests for the simulated address space: brk, mmap, demand paging. *)

module As = Core.Address_space

let small_config =
  { As.page_size = 4096;
    brk_base = 0x1_0000;
    brk_ceiling = 0x8_0000;
    mmap_base = 0x10_0000;
    mmap_top = 0x40_0000;
  }

let make () = As.create small_config

let test_sbrk_grow () =
  let t = make () in
  Alcotest.(check (option int)) "returns old brk" (Some 0x1_0000) (As.sbrk t 4096);
  Alcotest.(check int) "brk moved" 0x1_1000 (As.brk t);
  Alcotest.(check (option int)) "second grow" (Some 0x1_1000) (As.sbrk t 8192)

let test_sbrk_shrink () =
  let t = make () in
  ignore (As.sbrk t 8192);
  ignore (As.touch t 0x1_0000 ~len:8192);
  Alcotest.(check int) "2 pages resident" 2 (As.resident_pages t);
  Alcotest.(check bool) "shrink ok" true (As.sbrk t (-4096) <> None);
  Alcotest.(check int) "vacated page dropped" 1 (As.resident_pages t);
  Alcotest.(check (option int)) "below base fails" None (As.sbrk t (-2 * 4096))

let test_sbrk_ceiling () =
  let t = make () in
  Alcotest.(check (option int)) "past ceiling" None (As.sbrk t 0x10_0000);
  Alcotest.(check int) "brk unmoved" 0x1_0000 (As.brk t)

let test_sbrk_blocked_by_mapping () =
  let t = make () in
  (* A fixed mapping in the middle of the heap range, like a shared
     library the paper says sbrk cannot allocate around. *)
  As.map_fixed t 0x2_0000 ~len:4096;
  Alcotest.(check (option int)) "grow into mapping fails" None (As.sbrk t 0x1_8000);
  Alcotest.(check bool) "small grow ok" true (As.sbrk t 4096 <> None)

let test_mmap_first_fit () =
  let t = make () in
  let a = Option.get (As.mmap t ~len:4096) in
  let b = Option.get (As.mmap t ~len:4096) in
  Alcotest.(check int) "first at base" small_config.As.mmap_base a;
  Alcotest.(check int) "second right after" (a + 4096) b

let test_mmap_rounds_to_pages () =
  let t = make () in
  let a = Option.get (As.mmap t ~len:100) in
  let b = Option.get (As.mmap t ~len:100) in
  Alcotest.(check int) "page granularity" 4096 (b - a)

let test_munmap_reuse () =
  let t = make () in
  let a = Option.get (As.mmap t ~len:8192) in
  let b = Option.get (As.mmap t ~len:4096) in
  As.munmap t a ~len:8192;
  let c = Option.get (As.mmap t ~len:4096) in
  Alcotest.(check int) "gap reused first-fit" a c;
  Alcotest.(check bool) "b untouched" true (As.is_mapped t b)

let test_munmap_validation () =
  let t = make () in
  let a = Option.get (As.mmap t ~len:8192) in
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Address_space.munmap: length or kind mismatch") (fun () ->
      As.munmap t a ~len:4096);
  Alcotest.check_raises "no mapping" (Invalid_argument "Address_space.munmap: no mapping at address")
    (fun () -> As.munmap t 0x30_0000 ~len:4096)

let test_map_fixed_overlap () =
  let t = make () in
  As.map_fixed t 0x20_0000 ~len:8192;
  Alcotest.check_raises "overlap" (Invalid_argument "Address_space.map_fixed: overlap") (fun () ->
      As.map_fixed t 0x20_1000 ~len:4096)

let test_touch_counts_faults () =
  let t = make () in
  ignore (As.sbrk t (4 * 4096));
  Alcotest.(check int) "two pages" 2 (As.touch t 0x1_0000 ~len:8192);
  Alcotest.(check int) "already resident" 0 (As.touch t 0x1_0000 ~len:8192);
  Alcotest.(check int) "straddles into third" 1 (As.touch t 0x1_1ff0 ~len:32);
  Alcotest.(check int) "total" 3 (As.minor_faults t)

let test_segfault () =
  let t = make () in
  Alcotest.(check bool) "unmapped" false (As.is_mapped t 0x30_0000);
  (try
     ignore (As.touch t 0x30_0000 ~len:1);
     Alcotest.fail "expected segfault"
   with As.Segfault a -> Alcotest.(check int) "faulting address" 0x30_0000 a)

let test_munmap_drops_residency () =
  let t = make () in
  let a = Option.get (As.mmap t ~len:8192) in
  ignore (As.touch t a ~len:8192);
  Alcotest.(check int) "resident" 2 (As.resident_pages t);
  As.munmap t a ~len:8192;
  Alcotest.(check int) "dropped" 0 (As.resident_pages t);
  (* Remapping the same range faults again: how thread stacks re-fault in
     benchmark 2. *)
  let b = Option.get (As.mmap t ~len:8192) in
  Alcotest.(check int) "same address" a b;
  Alcotest.(check int) "refaults" 2 (As.touch t b ~len:8192)

let test_mapped_bytes () =
  let t = make () in
  ignore (As.sbrk t 4096);
  ignore (As.mmap t ~len:8192);
  Alcotest.(check int) "brk + mappings" (4096 + 8192) (As.mapped_bytes t)

let test_syscall_counters () =
  let t = make () in
  ignore (As.sbrk t 4096);
  ignore (As.sbrk t 4096);
  let a = Option.get (As.mmap t ~len:4096) in
  As.munmap t a ~len:4096;
  Alcotest.(check int) "sbrk calls" 2 (As.sbrk_calls t);
  Alcotest.(check int) "mmap calls" 1 (As.mmap_calls t);
  Alcotest.(check int) "munmap calls" 1 (As.munmap_calls t)

let test_mmap_exhaustion () =
  let t = make () in
  let zone = small_config.As.mmap_top - small_config.As.mmap_base in
  Alcotest.(check bool) "fill the zone" true (As.mmap t ~len:zone <> None);
  Alcotest.(check (option int)) "exhausted" None (As.mmap t ~len:4096)

(* Random mmap/munmap sequences keep live regions disjoint. *)
let prop_mmap_disjoint =
  QCheck.Test.make ~name:"live mappings never overlap" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 60) (pair bool (int_range 1 5)))
    (fun ops ->
      let t = make () in
      let live = ref [] in
      List.iter
        (fun (do_map, pages) ->
          if do_map || !live = [] then begin
            match As.mmap t ~len:(pages * 4096) with
            | Some a -> live := (a, pages * 4096) :: !live
            | None -> ()
          end
          else begin
            match !live with
            | (a, len) :: rest ->
                As.munmap t a ~len;
                live := rest
            | [] -> ()
          end)
        ops;
      (* pairwise disjoint *)
      let rec disjoint = function
        | [] -> true
        | (a, la) :: rest ->
            List.for_all (fun (b, lb) -> a + la <= b || b + lb <= a) rest && disjoint rest
      in
      disjoint !live)

let prop_fault_count_matches_pages =
  QCheck.Test.make ~name:"touching n pages faults n times" ~count:100
    QCheck.(int_range 1 32)
    (fun pages ->
      let t = make () in
      match As.mmap t ~len:(pages * 4096) with
      | None -> true
      | Some a -> As.touch t a ~len:(pages * 4096) = pages && As.touch t a ~len:(pages * 4096) = 0)

let suite =
  [ Alcotest.test_case "sbrk grow" `Quick test_sbrk_grow;
    Alcotest.test_case "sbrk shrink" `Quick test_sbrk_shrink;
    Alcotest.test_case "sbrk ceiling" `Quick test_sbrk_ceiling;
    Alcotest.test_case "sbrk blocked by mapping" `Quick test_sbrk_blocked_by_mapping;
    Alcotest.test_case "mmap first fit" `Quick test_mmap_first_fit;
    Alcotest.test_case "mmap page rounding" `Quick test_mmap_rounds_to_pages;
    Alcotest.test_case "munmap reuse" `Quick test_munmap_reuse;
    Alcotest.test_case "munmap validation" `Quick test_munmap_validation;
    Alcotest.test_case "map_fixed overlap" `Quick test_map_fixed_overlap;
    Alcotest.test_case "touch counts faults" `Quick test_touch_counts_faults;
    Alcotest.test_case "segfault on unmapped" `Quick test_segfault;
    Alcotest.test_case "munmap drops residency" `Quick test_munmap_drops_residency;
    Alcotest.test_case "mapped bytes" `Quick test_mapped_bytes;
    Alcotest.test_case "syscall counters" `Quick test_syscall_counters;
    Alcotest.test_case "mmap exhaustion" `Quick test_mmap_exhaustion;
    QCheck_alcotest.to_alcotest prop_mmap_disjoint;
    QCheck_alcotest.to_alcotest prop_fault_count_matches_pages;
  ]
