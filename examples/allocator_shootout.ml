(* Replay one allocation trace against every allocator, single-threaded
   and multithreaded, and print a comparison table — a miniature of the
   study the paper says simple benchmarks enable: "uncover basic
   architectural limitations that make an allocator inappropriate for
   use with network server applications".

     dune exec examples/allocator_shootout.exe *)

module M = Core.Machine
module A = Core.Allocator

let trace_time factory threads =
  let machine = M.create ~seed:7 Core.Configs.quad_xeon in
  let proc = M.create_proc machine ~name:"shootout" () in
  let alloc = factory.Core.Factory.create proc in
  let slots = 600 in
  let rng = Core.Rng.create ~seed:99 in
  (* Each thread gets its own slice of slots and its own trace. *)
  let traces =
    List.init threads (fun _ -> Core.Trace.generate ~rng ~ops:8_000 ~slots ())
  in
  let workers =
    List.map (fun trace -> M.spawn proc (fun ctx -> ignore (Core.Trace.replay alloc ctx trace ~slots))) traces
  in
  M.run machine;
  (match alloc.A.validate () with
  | Ok () -> ()
  | Error msg -> failwith (factory.Core.Factory.label ^ ": " ^ msg));
  List.fold_left (fun acc w -> max acc (M.elapsed_ns w /. 1e6)) 0. workers

let () =
  let factories =
    [ Core.Factory.ptmalloc ();
      Core.Factory.serial_glibc ();
      Core.Factory.perthread ();
      Core.Factory.slab ();
    ]
  in
  let thread_counts = [ 1; 2; 4 ] in
  Printf.printf "%-14s" "allocator";
  List.iter (fun t -> Printf.printf "%12s" (Printf.sprintf "%d thread%s" t (if t > 1 then "s" else ""))) thread_counts;
  print_newline ();
  List.iter
    (fun f ->
      Printf.printf "%-14s" f.Core.Factory.label;
      List.iter (fun t -> Printf.printf "%10.2fms" (trace_time f t)) thread_counts;
      print_newline ())
    factories;
  print_newline ();
  print_endline "(simulated makespan of a server-like allocation trace on a 4-way 500MHz Xeon)"
