let () =
  Alcotest.run "malloc-repro"
    [ ("prng", Test_prng.suite);
      ("stats", Test_stats.suite);
      ("sim", Test_sim.suite);
      ("pqueue", Test_pqueue.suite);
      ("timing_wheel", Test_timing_wheel.suite);
      ("int_table", Test_int_table.suite);
      ("parallel", Test_parallel.suite);
      ("conservative", Test_conservative.suite);
      ("vm", Test_vm.suite);
      ("cache", Test_cache.suite);
      ("machine", Test_machine.suite);
      ("dlheap", Test_dlheap.suite);
      ("dlheap_props", Test_dlheap_props.suite);
      ("allocators", Test_allocators.suite);
      ("workload", Test_workload.suite);
      ("report", Test_report.suite);
      ("obs", Test_obs.suite);
      ("check", Test_check.suite);
      ("fault", Test_fault.suite);
      ("extensions", Test_extensions.suite);
      ("experiments", Test_experiments.suite);
      ("suite", Test_suite.suite);
      ("compare", Test_compare.suite);
    ]
