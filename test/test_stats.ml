(* Tests for summaries, regression, histograms and series. *)

module Summary = Core.Summary
module Regression = Core.Regression
module Histogram = Core.Histogram
module Series = Core.Series

let feq = Alcotest.float 1e-9

let test_summary_known () =
  let s = Summary.of_list [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ] in
  Alcotest.(check feq) "mean" 5.0 s.Summary.mean;
  Alcotest.(check int) "n" 8 s.Summary.n;
  Alcotest.(check feq) "min" 2.0 s.Summary.min;
  Alcotest.(check feq) "max" 9.0 s.Summary.max;
  (* sample stddev with n-1: sqrt(32/7) *)
  Alcotest.(check (Alcotest.float 1e-6)) "stddev" (sqrt (32. /. 7.)) s.Summary.stddev

let test_summary_singleton () =
  let s = Summary.of_list [ 3.5 ] in
  Alcotest.(check feq) "mean" 3.5 s.Summary.mean;
  Alcotest.(check feq) "stddev" 0.0 s.Summary.stddev

let test_summary_empty () =
  Alcotest.check_raises "empty raises" (Invalid_argument "Summary.of_list: empty sample") (fun () ->
      ignore (Summary.of_list []))

let test_median () =
  Alcotest.(check feq) "odd" 3. (Summary.median [| 5.; 3.; 1. |]);
  Alcotest.(check feq) "even interpolates" 2.5 (Summary.median [| 1.; 2.; 3.; 4. |])

let test_percentile () =
  let xs = [| 10.; 20.; 30.; 40. |] in
  Alcotest.(check feq) "p0 is min" 10. (Summary.percentile xs 0.);
  Alcotest.(check feq) "p100 is max" 40. (Summary.percentile xs 100.);
  Alcotest.(check feq) "p50 interpolates" 25. (Summary.percentile xs 50.)

let test_percentile_edges () =
  (* n = 1: every percentile is the lone sample. *)
  let one = [| 7.5 |] in
  Alcotest.(check feq) "n=1 p0" 7.5 (Summary.percentile one 0.);
  Alcotest.(check feq) "n=1 p50" 7.5 (Summary.percentile one 50.);
  Alcotest.(check feq) "n=1 p100" 7.5 (Summary.percentile one 100.);
  (* n = 2: interior percentiles interpolate on the (n-1) rank scale. *)
  let two = [| 10.; 30. |] in
  Alcotest.(check feq) "n=2 p25" 15. (Summary.percentile two 25.);
  Alcotest.(check feq) "n=2 p75" 25. (Summary.percentile two 75.);
  (* Ties: interpolation between equal neighbours stays put. *)
  let ties = [| 5.; 5.; 5.; 9. |] in
  Alcotest.(check feq) "ties p50" 5. (Summary.percentile ties 50.);
  Alcotest.(check feq) "all-equal p99" 4. (Summary.percentile [| 4.; 4.; 4. |] 99.);
  (* Unsorted input is sorted internally. *)
  Alcotest.(check feq) "unsorted p100" 40. (Summary.percentile [| 40.; 10.; 20. |] 100.)

let test_spread () =
  let s = Summary.of_list [ 10.; 12. ] in
  Alcotest.(check feq) "(max-min)/min" 0.2 (Summary.spread s)

let test_cov () =
  let s = Summary.of_list [ 1.; 1.; 1. ] in
  Alcotest.(check feq) "no variation" 0.0 (Summary.coefficient_of_variation s)

let test_regression_exact () =
  let pts = List.map (fun x -> (float_of_int x, (2.5 *. float_of_int x) +. 1.)) [ 1; 2; 3; 4; 5 ] in
  let r = Regression.fit pts in
  Alcotest.(check (Alcotest.float 1e-9)) "slope" 2.5 r.Regression.slope;
  Alcotest.(check (Alcotest.float 1e-9)) "intercept" 1.0 r.Regression.intercept;
  Alcotest.(check (Alcotest.float 1e-9)) "r2" 1.0 r.Regression.r2

let test_regression_predict () =
  let r = Regression.fit [ (0., 0.); (1., 2.) ] in
  Alcotest.(check feq) "prediction" 6.0 (Regression.predict r 3.)

let test_regression_degenerate () =
  Alcotest.check_raises "one point" (Invalid_argument "Regression.fit: need at least two points")
    (fun () -> ignore (Regression.fit [ (1., 1.) ]));
  Alcotest.check_raises "vertical" (Invalid_argument "Regression.fit: all x values identical")
    (fun () -> ignore (Regression.fit [ (1., 1.); (1., 2.) ]))

let test_regression_r2_noise () =
  let r = Regression.fit [ (0., 0.); (1., 1.5); (2., 1.7); (3., 3.4) ] in
  Alcotest.(check bool) "r2 below 1 with noise" true (r.Regression.r2 < 1.0 && r.Regression.r2 > 0.8)

let test_histogram_counts () =
  let h = Histogram.create ~lo:0. ~hi:10. ~bins:5 in
  (* bins are 2 wide: [0,2) [2,4) [4,6) [6,8) [8,10) *)
  List.iter (Histogram.add h) [ 0.5; 1.5; 2.5; 2.6; 9.9 ];
  Alcotest.(check int) "total" 5 (Histogram.count h);
  Alcotest.(check int) "bin0" 2 (Histogram.bin_count h 0);
  Alcotest.(check int) "bin1" 2 (Histogram.bin_count h 1);
  Alcotest.(check int) "bin4" 1 (Histogram.bin_count h 4)

(* Out-of-range samples used to be clamped into the edge bins (and NaN
   landed in bin 0), silently distorting tail percentiles; they are now
   tracked separately. *)
let test_histogram_out_of_range () =
  let h = Histogram.create ~lo:0. ~hi:10. ~bins:5 in
  Histogram.add h (-3.);
  Histogram.add h 42.;
  Histogram.add h 10.;  (* hi itself is outside the half-open range *)
  Histogram.add h 5.;
  Alcotest.(check int) "bin0 untouched" 0 (Histogram.bin_count h 0);
  Alcotest.(check int) "bin4 untouched" 0 (Histogram.bin_count h 4);
  Alcotest.(check int) "underflow" 1 (Histogram.underflow h);
  Alcotest.(check int) "overflow" 2 (Histogram.overflow h);
  Alcotest.(check int) "count includes out-of-range" 4 (Histogram.count h);
  Alcotest.(check int) "binned excludes them" 1 (Histogram.binned h)

let test_histogram_rejects_nan () =
  let h = Histogram.create ~lo:0. ~hi:10. ~bins:5 in
  Alcotest.check_raises "NaN raises" (Invalid_argument "Histogram.add: NaN sample") (fun () ->
      Histogram.add h Float.nan);
  Alcotest.(check int) "nothing recorded" 0 (Histogram.count h)

let test_histogram_percentile () =
  let h = Histogram.create ~lo:0. ~hi:100. ~bins:100 in
  for i = 0 to 99 do
    Histogram.add h (float_of_int i +. 0.5)
  done;
  (* 1-wide bins, one sample each: the estimate lands mid-bin. *)
  Alcotest.(check (Alcotest.float 1.0)) "p50 mid" 50. (Histogram.percentile h 50.);
  Alcotest.(check (Alcotest.float 1.0)) "p99 tail" 99. (Histogram.percentile h 99.);
  (* A rank that falls among overflow samples must refuse, not lie. *)
  Histogram.add h 1e9;
  Histogram.add h 1e9;
  Alcotest.check_raises "overflow rank raises"
    (Invalid_argument "Histogram.percentile: rank falls in the overflow region") (fun () ->
      ignore (Histogram.percentile h 99.9))

let test_histogram_modes () =
  let h = Histogram.create ~lo:0. ~hi:10. ~bins:10 in
  (* two clusters: near 1.5 and near 7.5 *)
  List.iter (Histogram.add h) [ 1.1; 1.2; 1.3; 7.1; 7.2; 7.3; 7.4 ];
  Alcotest.(check (list int)) "two modes" [ 1; 7 ] (Histogram.modes h)

let test_histogram_bounds_validation () =
  Alcotest.check_raises "lo >= hi" (Invalid_argument "Histogram.create: lo >= hi") (fun () ->
      ignore (Histogram.create ~lo:1. ~hi:1. ~bins:3))

let test_series_accessors () =
  let s = Series.make ~label:"s" [ (1., 10.); (2., 20.); (3., 15.) ] in
  Alcotest.(check feq) "y_at" 20. (Series.y_at s 2.);
  Alcotest.(check feq) "max_y" 20. (Series.max_y s);
  Alcotest.(check feq) "min_y" 10. (Series.min_y s);
  Alcotest.(check (list (Alcotest.float 0.))) "xs" [ 1.; 2.; 3. ] (Series.xs s);
  let doubled = Series.map_y (fun y -> 2. *. y) s in
  Alcotest.(check feq) "map_y" 40. (Series.y_at doubled 2.)

let test_series_missing () =
  let s = Series.make ~label:"s" [ (1., 10.) ] in
  Alcotest.check_raises "absent x" Not_found (fun () -> ignore (Series.y_at s 9.))

let test_series_of_summaries () =
  let s = Series.of_summaries ~label:"s" [ (1., Summary.of_list [ 2.; 4. ]) ] in
  match s.Series.points with
  | [ p ] ->
      Alcotest.(check feq) "y is mean" 3.0 p.Series.y;
      Alcotest.(check bool) "err is stddev" true (p.Series.err > 0.)
  | _ -> Alcotest.fail "expected one point"

let prop_summary_bounds =
  QCheck.Test.make ~name:"mean within [min, max]" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 40) (float_bound_exclusive 1000.))
    (fun xs ->
      QCheck.assume (xs <> []);
      let s = Summary.of_list xs in
      s.Summary.min <= s.Summary.mean +. 1e-9 && s.Summary.mean <= s.Summary.max +. 1e-9)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile monotone in p" ~count:200
    QCheck.(pair (list_of_size Gen.(int_range 2 30) (float_bound_exclusive 100.)) (pair (int_bound 100) (int_bound 100)))
    (fun (xs, (p1, p2)) ->
      QCheck.assume (xs <> []);
      let a = Array.of_list xs in
      let lo = min p1 p2 and hi = max p1 p2 in
      Summary.percentile a (float_of_int lo) <= Summary.percentile a (float_of_int hi) +. 1e-9)

let prop_regression_recovers_line =
  QCheck.Test.make ~name:"regression recovers exact lines" ~count:200
    QCheck.(pair (float_range (-5.) 5.) (float_range (-5.) 5.))
    (fun (slope, intercept) ->
      let pts = List.map (fun x -> (float_of_int x, (slope *. float_of_int x) +. intercept)) [ 0; 1; 2; 5 ] in
      let r = Regression.fit pts in
      abs_float (r.Regression.slope -. slope) < 1e-6
      && abs_float (r.Regression.intercept -. intercept) < 1e-6)

let suite =
  [ Alcotest.test_case "summary known values" `Quick test_summary_known;
    Alcotest.test_case "summary singleton" `Quick test_summary_singleton;
    Alcotest.test_case "summary empty" `Quick test_summary_empty;
    Alcotest.test_case "median" `Quick test_median;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "percentile edges" `Quick test_percentile_edges;
    Alcotest.test_case "spread" `Quick test_spread;
    Alcotest.test_case "coefficient of variation" `Quick test_cov;
    Alcotest.test_case "regression exact" `Quick test_regression_exact;
    Alcotest.test_case "regression predict" `Quick test_regression_predict;
    Alcotest.test_case "regression degenerate" `Quick test_regression_degenerate;
    Alcotest.test_case "regression r2 with noise" `Quick test_regression_r2_noise;
    Alcotest.test_case "histogram counts" `Quick test_histogram_counts;
    Alcotest.test_case "histogram out-of-range" `Quick test_histogram_out_of_range;
    Alcotest.test_case "histogram rejects NaN" `Quick test_histogram_rejects_nan;
    Alcotest.test_case "histogram percentile" `Quick test_histogram_percentile;
    Alcotest.test_case "histogram modes" `Quick test_histogram_modes;
    Alcotest.test_case "histogram validation" `Quick test_histogram_bounds_validation;
    Alcotest.test_case "series accessors" `Quick test_series_accessors;
    Alcotest.test_case "series missing x" `Quick test_series_missing;
    Alcotest.test_case "series of summaries" `Quick test_series_of_summaries;
    QCheck_alcotest.to_alcotest prop_summary_bounds;
    QCheck_alcotest.to_alcotest prop_percentile_monotone;
    QCheck_alcotest.to_alcotest prop_regression_recovers_line;
  ]
