(* Tests for the deterministic fault-injection layer: the plan DSL, the
   seeded injector's reproducibility, the instrument-layer retry/backoff
   bounds, and graceful degradation of the workloads under pressure. *)

module M = Core.Machine
module A = Core.Allocator
module Fault = Core.Fault.Injector
module Plan = Core.Fault.Plan
module B2 = Core.Bench2

(* --- plan parsing ------------------------------------------------------- *)

let test_plan_parse () =
  let check_ok s expected =
    match Plan.parse s with
    | Ok v -> Alcotest.(check string) s expected (Plan.to_string v)
    | Error msg -> Alcotest.failf "%s: unexpected parse error %s" s msg
  in
  check_ok "none" "none";
  check_ok "oom-pressure" "oom-pressure:1";
  check_ok "flaky-reserve:9" "flaky-reserve:9";
  check_ok "preempt-storm:0" "preempt-storm:0";
  check_ok "slow-lock:123" "slow-lock:123";
  let check_err s =
    match Plan.parse s with
    | Error _ -> ()
    | Ok v -> Alcotest.failf "%s: expected an error, parsed %s" s (Plan.to_string v)
  in
  check_err "oom";
  check_err "oom-pressure:abc";
  check_err "oom-pressure:-3";
  check_err ""

let test_plan_all_labels_round_trip () =
  List.iter
    (fun (name, plan) ->
      Alcotest.(check string) name name (Plan.label plan);
      match Plan.parse name with
      | Ok (Some (p, 1)) when p = plan -> ()
      | _ -> Alcotest.failf "%s does not parse back to its plan" name)
    Plan.all

(* --- injector basics ---------------------------------------------------- *)

let test_null_injector_is_inert () =
  let i = Fault.null in
  Alcotest.(check bool) "disarmed" false (Fault.armed i);
  for _ = 1 to 100 do
    assert (not (Fault.veto_reserve i ~now_ns:0. ~load:max_int ~len:4096));
    assert (not (Fault.preempt_now i));
    assert (Fault.stretch_cycles i = 0)
  done;
  Alcotest.(check int) "nothing injected" 0 (Fault.injected i)

let test_collect_sorts_and_skips_disarmed () =
  ignore (Core.Fault.Collect.drain ());
  Core.Fault.Collect.publish ~label:"ignored" Fault.null;
  Alcotest.(check int) "disarmed not kept" 0 (Core.Fault.Collect.pending ());
  Core.Fault.Collect.publish ~label:"b-run" (Fault.create ~plan:Plan.Slow_lock ~seed:1);
  Core.Fault.Collect.publish ~label:"a-run" (Fault.create ~plan:Plan.Slow_lock ~seed:2);
  let labels = List.map fst (Core.Fault.Collect.drain ()) in
  Alcotest.(check (list string)) "drain sorted by label" [ "a-run"; "b-run" ] labels

(* --- qcheck: same plan+seed => identical injected-event sequence -------- *)

(* A query script drives the injector's three decision hooks; replaying
   the same script against two injectors built from the same plan and
   seed must produce the same decision at every step. *)
let replay_decisions plan seed script =
  let i = Fault.create ~plan ~seed in
  List.map
    (fun (tag, a, b) ->
      match tag mod 3 with
      | 0 ->
          if Fault.veto_reserve i ~now_ns:(float_of_int (a * 1000)) ~load:(a * 4096) ~len:(b + 1)
          then 1
          else 0
      | 1 -> if Fault.preempt_now i then 1 else 0
      | _ -> Fault.stretch_cycles i)
    script

let prop_same_seed_same_schedule =
  QCheck.Test.make ~name:"same plan+seed replays the same fault schedule" ~count:200
    QCheck.(
      triple (int_bound 3) (int_bound 1000)
        (list_of_size Gen.(int_range 1 200) (triple small_nat small_nat small_nat)))
    (fun (plan_ix, seed, script) ->
      let plan = snd (List.nth Plan.all plan_ix) in
      replay_decisions plan seed script = replay_decisions plan seed script)

(* --- retry/backoff bounds ----------------------------------------------- *)

(* An allocator whose malloc always fails lets us count exactly how many
   attempts the instrument layer makes and how much simulated time the
   backoff consumes. *)
let always_failing_allocator attempts =
  A.instrument
    { A.name = "failing";
      malloc =
        (fun _ctx size ->
          incr attempts;
          A.out_of_memory ~bytes:size "failing");
      free = (fun _ctx _addr -> ());
      usable_size = (fun size -> size);
      stats = Core.Astats.create ();
      validate = (fun () -> Ok ());
      origins = Hashtbl.create 8;
    }

let test_retry_bounds_when_armed () =
  let fault = Fault.create ~plan:Plan.Flaky_reserve ~seed:5 in
  let m = M.create ~seed:3 ~fault M.default_config in
  let p = M.create_proc m () in
  let attempts = ref 0 in
  let alloc = always_failing_allocator attempts in
  let raised = ref false in
  let elapsed = ref 0. in
  ignore
    (M.spawn p (fun ctx ->
         let t0 = M.now ctx in
         (try ignore (alloc.A.malloc ctx 64)
          with Fault.Alloc_failure _ -> raised := true);
         elapsed := M.now ctx -. t0));
  M.run m;
  Alcotest.(check bool) "failure surfaced after retries" true !raised;
  Alcotest.(check int) "initial try + max_retries" (Fault.max_retries + 1) !attempts;
  (* Backoff runs in simulated time: at least the sum of the exponential
     delays (cycles scale to >= 1 ns/cycle on the default machine). *)
  let min_backoff_cycles = ref 0 in
  for i = 0 to Fault.max_retries - 1 do
    min_backoff_cycles := !min_backoff_cycles + Fault.backoff_cycles i
  done;
  Alcotest.(check bool) "backoff consumed simulated time" true (!elapsed > 0.);
  Alcotest.(check bool)
    (Printf.sprintf "backoff grows exponentially (%d cycles total)" !min_backoff_cycles)
    true
    (Fault.backoff_cycles 3 = 8 * Fault.backoff_cycles 0)

let test_no_retry_when_disarmed () =
  let m = M.create ~seed:3 M.default_config in
  let p = M.create_proc m () in
  let attempts = ref 0 in
  let alloc = always_failing_allocator attempts in
  let raised = ref false in
  ignore
    (M.spawn p (fun ctx ->
         try ignore (alloc.A.malloc ctx 64) with Fault.Alloc_failure _ -> raised := true));
  M.run m;
  Alcotest.(check bool) "failure surfaced" true !raised;
  Alcotest.(check int) "single attempt, no retry loop" 1 !attempts

(* --- workloads degrade gracefully under pressure ------------------------ *)

let with_plan plan seed f =
  ignore (Core.Fault.Collect.drain ());
  Core.Fault.Ctl.arm (Some (plan, seed));
  Fun.protect ~finally:(fun () -> Core.Fault.Ctl.arm None) f

let quick_bench2 factory =
  { B2.default with
    B2.threads = 3;
    rounds = 2;
    objects_per_thread = 10_000;
    replacements_per_round = 800;
    factory;
  }

let all_factories =
  [ Core.Factory.ptmalloc ();
    Core.Factory.serial_solaris ();
    Core.Factory.perthread ();
    Core.Factory.slab ();
    Core.Factory.hoard ();
  ]

(* Bench2.run validates the heap before returning, so completing at all
   asserts the invariants survived the injected failures. *)
let test_bench2_survives_oom_pressure () =
  List.iter
    (fun (factory : Core.Factory.t) ->
      with_plan Plan.Oom_pressure 1 (fun () ->
          let r = B2.run (quick_bench2 factory) in
          let published = Core.Fault.Collect.drain () in
          let injected =
            List.fold_left (fun acc (_, i) -> acc + Fault.injected i) 0 published
          in
          Alcotest.(check bool)
            (factory.Core.Factory.label ^ ": pressure actually injected")
            true (injected > 0);
          Alcotest.(check bool)
            (factory.Core.Factory.label ^ ": degradation counted, not crashed")
            true (r.B2.degraded_ops >= 0)))
    all_factories

let test_faults_off_results_unchanged () =
  let baseline = B2.run (quick_bench2 (Core.Factory.ptmalloc ())) in
  let again = B2.run (quick_bench2 (Core.Factory.ptmalloc ())) in
  Alcotest.(check int) "minor faults reproducible" baseline.B2.minor_faults again.B2.minor_faults;
  Alcotest.(check int) "no degradation without a plan" 0 baseline.B2.degraded_ops

let test_spawn_survives_flaky_reserve () =
  with_plan Plan.Flaky_reserve 11 (fun () ->
      let m = M.create ~seed:4 M.default_config in
      let p = M.create_proc m () in
      let finished = ref 0 in
      for _ = 1 to 32 do
        ignore (M.spawn p (fun ctx -> M.work_exact ctx 1_000; incr finished))
      done;
      M.run m;
      ignore (Core.Fault.Collect.drain ());
      Alcotest.(check int) "every thread ran despite vetoed stack maps" 32 !finished)

let suite =
  [ Alcotest.test_case "plan: parse syntax" `Quick test_plan_parse;
    Alcotest.test_case "plan: labels round-trip" `Quick test_plan_all_labels_round_trip;
    Alcotest.test_case "injector: null is inert" `Quick test_null_injector_is_inert;
    Alcotest.test_case "collect: sorts, skips disarmed" `Quick test_collect_sorts_and_skips_disarmed;
    QCheck_alcotest.to_alcotest prop_same_seed_same_schedule;
    Alcotest.test_case "retry: bounded with backoff when armed" `Quick test_retry_bounds_when_armed;
    Alcotest.test_case "retry: absent when disarmed" `Quick test_no_retry_when_disarmed;
    Alcotest.test_case "bench2: survives oom-pressure on all allocators" `Quick
      test_bench2_survives_oom_pressure;
    Alcotest.test_case "bench2: faults-off results unchanged" `Quick
      test_faults_off_results_unchanged;
    Alcotest.test_case "spawn: survives flaky-reserve" `Quick test_spawn_survives_flaky_reserve;
  ]
