(* The domain pool and the harness's determinism guarantee: whatever the
   pool width, results come back in submission order and run_all's
   output is byte-identical. *)

module Pool = Core.Pool

let squares pool = Pool.map_list pool ~key:"sq" ~f:(fun _ x -> x * x) [ 0; 1; 2; 3; 4; 5; 6 ]

let test_map_list_order () =
  Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.(check (list int)) "submission order" [ 0; 1; 4; 9; 16; 25; 36 ] (squares pool))

let test_width1_matches_width4 () =
  let seq = Pool.with_pool ~jobs:1 squares in
  let par = Pool.with_pool ~jobs:4 squares in
  Alcotest.(check (list int)) "same results" seq par

let test_nested_submit () =
  (* Width 2 = one worker: outer tasks must help run their sub-tasks or
     this deadlocks. *)
  Pool.with_pool ~jobs:2 (fun pool ->
      let outer =
        Pool.map_list pool ~key:"outer"
          ~f:(fun _ n ->
            let inner = Pool.map_list pool ~key:"inner" ~f:(fun _ i -> (n * 10) + i) [ 0; 1; 2 ] in
            List.fold_left ( + ) 0 inner)
          [ 1; 2; 3 ]
      in
      Alcotest.(check (list int)) "nested sums" [ 33; 63; 93 ] outer)

let test_exception_propagates () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let ok = Pool.submit pool ~key:"ok" (fun () -> 41) in
      let bad = Pool.submit pool ~key:"bad" (fun () -> failwith "boom") in
      Alcotest.(check int) "healthy future unaffected" 41 (Pool.await pool ok + 0);
      Alcotest.check_raises "await re-raises" (Failure "boom") (fun () ->
          ignore (Pool.await pool bad)))

let test_jobs_width () =
  Pool.with_pool ~jobs:3 (fun pool -> Alcotest.(check int) "width" 3 (Pool.jobs pool))

(* --- determinism: the harness output is independent of pool width ------ *)

let opts = Core.Exp_common.quick_opts

let bench1_params =
  { Core.Bench1.default with Core.Bench1.workers = 3; iterations = 2_000; paper_iterations = 2_000 }

let test_bench1_runs_deterministic () =
  let run jobs =
    Pool.with_pool ~jobs (fun pool ->
        let summaries, results = Core.Exp_common.bench1_runs ~pool bench1_params ~runs:4 in
        ( List.map (fun (s : Core.Summary.t) -> (s.Core.Summary.mean, s.Core.Summary.stddev)) summaries,
          List.map (fun (r : Core.Bench1.result) -> r.Core.Bench1.scaled_s) results ))
  in
  let seq = run 1 and par = run 4 in
  Alcotest.(check bool) "summaries and raw runs identical" true (seq = par)

let test_run_all_deterministic () =
  (* The issue's acceptance bar: summary lines and the full printed text
     of every outcome are byte-identical between 1 and 4 jobs. *)
  let render outcomes =
    ( List.map Core.Outcome.to_string outcomes,
      List.map Core.Outcome.summary_line outcomes )
  in
  let text1, lines1 = render (Core.Experiments.run_all ~jobs:1 ~echo:false opts) in
  let text4, lines4 = render (Core.Experiments.run_all ~jobs:4 ~echo:false opts) in
  Alcotest.(check (list string)) "summary lines" lines1 lines4;
  Alcotest.(check (list string)) "full outcome text" text1 text4

let suite =
  [ Alcotest.test_case "map_list keeps submission order" `Quick test_map_list_order;
    Alcotest.test_case "width 1 = width 4 results" `Quick test_width1_matches_width4;
    Alcotest.test_case "nested submit on narrow pool" `Quick test_nested_submit;
    Alcotest.test_case "exceptions re-raised at await" `Quick test_exception_propagates;
    Alcotest.test_case "jobs reports width" `Quick test_jobs_width;
    Alcotest.test_case "bench1_runs deterministic across widths" `Slow test_bench1_runs_deterministic;
    Alcotest.test_case "run_all byte-identical across widths" `Slow test_run_all_deterministic;
  ]
