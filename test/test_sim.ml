(* Tests for the event queue and the effects-based engine. *)

module Engine = Core.Engine
module Pqueue = Mb_sim.Pqueue

let test_pqueue_orders_by_time () =
  let q = Pqueue.create () in
  List.iter (fun t -> Pqueue.push q ~time:t t) [ 5.; 1.; 3.; 2.; 4. ];
  let popped = List.init 5 (fun _ -> match Pqueue.pop q with Some (_, v) -> v | None -> -1.) in
  Alcotest.(check (list (float 0.))) "sorted" [ 1.; 2.; 3.; 4.; 5. ] popped

let test_pqueue_fifo_at_equal_times () =
  let q = Pqueue.create () in
  List.iter (fun v -> Pqueue.push q ~time:1. v) [ "a"; "b"; "c" ];
  let popped = List.init 3 (fun _ -> match Pqueue.pop q with Some (_, v) -> v | None -> "?") in
  Alcotest.(check (list string)) "insertion order" [ "a"; "b"; "c" ] popped

let test_pqueue_peek_and_length () =
  let q = Pqueue.create () in
  Alcotest.(check bool) "empty" true (Pqueue.is_empty q);
  Pqueue.push q ~time:2. ();
  Pqueue.push q ~time:1. ();
  Alcotest.(check int) "length" 2 (Pqueue.length q);
  Alcotest.(check (option (float 0.))) "peek" (Some 1.) (Pqueue.peek_time q)

let prop_pqueue_sorted =
  QCheck.Test.make ~name:"pqueue pops in nondecreasing time order" ~count:200
    QCheck.(list_of_size Gen.(int_range 0 200) (float_bound_exclusive 1000.))
    (fun times ->
      let q = Pqueue.create () in
      List.iter (fun t -> Pqueue.push q ~time:t t) times;
      let rec drain last =
        match Pqueue.pop q with
        | None -> true
        | Some (t, _) -> t >= last && drain t
      in
      drain neg_infinity)

let test_delay_accumulates () =
  let e = Engine.create () in
  let finish = ref 0. in
  ignore
    (Engine.spawn e (fun () ->
         Engine.delay 5.;
         Engine.delay 7.;
         finish := Engine.now e));
  Engine.run e;
  Alcotest.(check (float 0.)) "12 ns" 12. !finish

let test_interleaving_order () =
  let e = Engine.create () in
  let log = ref [] in
  let say s = log := s :: !log in
  ignore (Engine.spawn e (fun () -> say "a0"; Engine.delay 10.; say "a1"));
  ignore (Engine.spawn e (fun () -> say "b0"; Engine.delay 5.; say "b1"));
  Engine.run e;
  Alcotest.(check (list string)) "time order" [ "a0"; "b0"; "b1"; "a1" ] (List.rev !log)

let test_park_resume () =
  let e = Engine.create () in
  let resume = ref None in
  let woke_at = ref 0. in
  ignore
    (Engine.spawn e (fun () ->
         Engine.park (fun r -> resume := Some r);
         woke_at := Engine.now e));
  ignore
    (Engine.spawn e (fun () ->
         Engine.delay 42.;
         match !resume with Some r -> r () | None -> Alcotest.fail "resume not registered"));
  Engine.run e;
  Alcotest.(check (float 0.)) "woken at resume time" 42. !woke_at

let test_double_resume_raises () =
  let e = Engine.create () in
  let resume = ref None in
  ignore (Engine.spawn e (fun () -> Engine.park (fun r -> resume := Some r)));
  ignore
    (Engine.spawn e (fun () ->
         Engine.delay 1.;
         let r = Option.get !resume in
         r ();
         Alcotest.check_raises "second resume"
           (Invalid_argument "Engine: process proc-0 resumed twice") (fun () -> r ())));
  Engine.run e

let test_stalled_detection () =
  let e = Engine.create () in
  let pid = Engine.spawn e ~name:"stuck" (fun () -> Engine.park (fun _ -> ())) in
  match Engine.run e with
  | () -> Alcotest.fail "expected Stalled"
  | exception Engine.Stalled st -> (
      match st.Engine.waiters with
      | [ w ] ->
          Alcotest.(check int) "waiter pid" pid w.Engine.wpid;
          Alcotest.(check string) "waiter name" "stuck" w.Engine.wname;
          Alcotest.(check string) "default why" "parked" w.Engine.wwhy;
          Alcotest.(check int) "no wait target" (-1) w.Engine.wwaits_on;
          Alcotest.(check int) "no cycle" 0 (List.length st.Engine.cycle)
      | ws -> Alcotest.fail (Printf.sprintf "expected 1 waiter, got %d" (List.length ws)))

let test_spawn_from_process () =
  let e = Engine.create () in
  let child_ran = ref false in
  ignore
    (Engine.spawn e (fun () ->
         Engine.delay 3.;
         ignore (Engine.spawn e (fun () -> child_ran := true))));
  Engine.run e;
  Alcotest.(check bool) "child ran" true !child_ran;
  Alcotest.(check int) "all finished" 0 (Engine.live e)

let test_at_callback () =
  let e = Engine.create () in
  let fired = ref 0. in
  Engine.at e 9. (fun () -> fired := Engine.now e);
  Engine.run e;
  Alcotest.(check (float 0.)) "at time" 9. !fired

let test_at_past_raises () =
  let e = Engine.create () in
  Engine.at e 5. (fun () ->
      Alcotest.check_raises "past" (Invalid_argument "Engine.at: time in the past") (fun () ->
          Engine.at e 1. ignore));
  Engine.run e

let test_negative_delay_raises () =
  let e = Engine.create () in
  ignore
    (Engine.spawn e (fun () ->
         Alcotest.check_raises "negative" (Invalid_argument "Engine.delay: negative delay")
           (fun () -> Engine.delay (-1.))));
  Engine.run e

let test_yield_lets_peers_run () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.spawn e (fun () -> log := "a0" :: !log; Engine.yield (); log := "a1" :: !log));
  ignore (Engine.spawn e (fun () -> log := "b0" :: !log));
  Engine.run e;
  Alcotest.(check (list string)) "b interleaves" [ "a0"; "b0"; "a1" ] (List.rev !log)

let test_exception_propagates () =
  let e = Engine.create () in
  ignore (Engine.spawn e (fun () -> failwith "boom"));
  Alcotest.check_raises "propagates" (Failure "boom") (fun () -> Engine.run e)

let suite =
  [ Alcotest.test_case "pqueue time order" `Quick test_pqueue_orders_by_time;
    Alcotest.test_case "pqueue FIFO ties" `Quick test_pqueue_fifo_at_equal_times;
    Alcotest.test_case "pqueue peek/length" `Quick test_pqueue_peek_and_length;
    QCheck_alcotest.to_alcotest prop_pqueue_sorted;
    Alcotest.test_case "delay accumulates" `Quick test_delay_accumulates;
    Alcotest.test_case "interleaving order" `Quick test_interleaving_order;
    Alcotest.test_case "park/resume" `Quick test_park_resume;
    Alcotest.test_case "double resume raises" `Quick test_double_resume_raises;
    Alcotest.test_case "stalled detection" `Quick test_stalled_detection;
    Alcotest.test_case "spawn from process" `Quick test_spawn_from_process;
    Alcotest.test_case "bare callback" `Quick test_at_callback;
    Alcotest.test_case "at in the past raises" `Quick test_at_past_raises;
    Alcotest.test_case "negative delay raises" `Quick test_negative_delay_raises;
    Alcotest.test_case "yield interleaves" `Quick test_yield_lets_peers_run;
    Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
  ]
