(* Tests for the suite layer: the declarative spec (parse/print
   round-trip, line-numbered rejection, deterministic expansion), the
   session history file, the trend-aware gate, and the runner. *)

module Spec = Core.Suite.Spec
module History = Core.Suite.History
module Gate = Core.Suite.Gate
module Report = Core.Suite.Report
module Runner = Core.Suite.Runner
module Json = Core.Suite.Json
module Plan = Core.Fault.Plan

(* Substring search, so the tests don't pull in Str. *)
let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* --- spec: parse/print round-trip ---------------------------------------- *)

let spec_gen =
  let open QCheck.Gen in
  (* Distinct picks from a pool, in pool order — the parser rejects
     duplicate axis entries, and order only matters within an axis. *)
  let subset pool =
    let* keep = list_repeat (List.length pool) bool in
    let chosen = List.filteri (fun i _ -> List.nth keep i) pool in
    return (if chosen = [] then [ List.hd pool ] else chosen)
  in
  let* name =
    oneofl [ "ci"; "quick-registry"; "a.b-c_d"; "N1" ]
  in
  let* mode = oneofl [ `Quick; `Full ] in
  let* seed = int_range 1 999 in
  let* machines = subset Core.Configs.names in
  let* allocators = subset Core.Factory.names in
  let* workloads =
    subset
      [ Spec.Exp "fig8"; Spec.Exp_all; Spec.Bench1; Spec.Bench2; Spec.Bench3;
        Spec.Server_open ]
  in
  let* faults =
    subset
      (None
      :: List.map (fun (_, p) -> Some (p, 7)) Plan.all)
  in
  let* envs =
    subset
      [ Spec.default_env;
        { Spec.shards = Some 2; domains = None; window_batch = None };
        { Spec.shards = None; domains = Some 4; window_batch = Some 8 };
      ]
  in
  let* repeats = int_range 1 5 in
  return { Spec.name; mode; seed; machines; allocators; workloads; faults; envs; repeats }

let prop_round_trip =
  QCheck.Test.make ~name:"of_string (to_string t) = Ok t" ~count:200
    (QCheck.make spec_gen)
    (fun spec ->
      match Spec.of_string (Spec.to_string spec) with
      | Ok spec' when spec' = spec -> true
      | Ok spec' ->
          QCheck.Test.fail_reportf "round-trip drift:\n%s\nvs\n%s" (Spec.to_string spec)
            (Spec.to_string spec')
      | Error e -> QCheck.Test.fail_reportf "round-trip rejected:\n%s\n%s" (Spec.to_string spec) e)

let test_parse_defaults () =
  match Spec.of_string "suite s\nworkloads exp:*\n" with
  | Error e -> Alcotest.failf "minimal spec rejected: %s" e
  | Ok t ->
      Alcotest.(check string) "name" "s" t.Spec.name;
      Alcotest.(check bool) "quick" true (t.Spec.mode = `Quick);
      Alcotest.(check int) "seed" 1 t.Spec.seed;
      Alcotest.(check (list string)) "machines" [ "quad_xeon" ] t.Spec.machines;
      Alcotest.(check (list string)) "allocators" [ "ptmalloc" ] t.Spec.allocators;
      Alcotest.(check bool) "faults off" true (t.Spec.faults = [ None ]);
      Alcotest.(check bool) "env default" true (t.Spec.envs = [ Spec.default_env ]);
      Alcotest.(check int) "repeats" 1 t.Spec.repeats

let test_parse_comments_and_blanks () =
  let text = "# header\n\nsuite s\n  # indented comment\nworkloads bench2\n\n" in
  match Spec.of_string text with
  | Ok t -> Alcotest.(check bool) "bench2" true (t.Spec.workloads = [ Spec.Bench2 ])
  | Error e -> Alcotest.failf "comments rejected: %s" e

let test_parse_errors_carry_line_numbers () =
  let expect_line n text =
    match Spec.of_string text with
    | Ok _ -> Alcotest.failf "expected a parse error for %S" text
    | Error e ->
        let prefix = Printf.sprintf "line %d:" n in
        if not (String.length e >= String.length prefix
                && String.sub e 0 (String.length prefix) = prefix)
        then Alcotest.failf "expected %S prefix, got %S" prefix e
  in
  expect_line 3 "suite s\nworkloads exp:*\nbogus directive\n";
  expect_line 2 "suite s\nworkloads exp:* nonsense\n";
  expect_line 4 "suite s\nworkloads exp:*\nseed 1\nseed 2\n";
  expect_line 2 "suite s\nmachines quad_xeon quad_xeon\nworkloads exp:*\n";
  expect_line 3 "suite s\nworkloads exp:*\nenv shards=zero\n";
  expect_line 2 "suite s\nfaults maybe\nworkloads exp:*\n";
  expect_line 1 "suite two words\nworkloads exp:*\n";
  (* missing required directives report against the end of the file
     (the trailing newline counts: "a\n" splits into two lines) *)
  expect_line 3 "suite s\nseed 3\n";
  expect_line 2 "workloads exp:*\n"

let test_exp_all_requires_registry_membership () =
  match Spec.of_string "suite s\nworkloads exp:nope\n" with
  | Error e -> Alcotest.failf "exp ids are resolved at expansion, not parse: %s" e
  | Ok t -> (
      match Spec.expand t ~exp_ids:[ "fig8"; "table1" ] with
      | Ok _ -> Alcotest.fail "unknown experiment id accepted"
      | Error e -> Alcotest.(check bool) "names the id" true (contains e "nope"))

(* --- spec: expansion ------------------------------------------------------ *)

let expand_exn text ~exp_ids =
  match Spec.of_string text with
  | Error e -> Alcotest.failf "spec rejected: %s" e
  | Ok t -> (
      match Spec.expand t ~exp_ids with
      | Ok cells -> (t, cells)
      | Error e -> Alcotest.failf "expansion failed: %s" e)

let test_expansion_order_and_keys () =
  let text =
    "suite s\nseed 10\nmachines quad_xeon uni_k6\nallocators ptmalloc\n\
     workloads bench2 exp:*\nfaults none oom-pressure:7\nenv default shards=2\n"
  in
  let t, cells = expand_exn text ~exp_ids:[ "table1"; "fig8" ] in
  let keys = List.map (fun c -> c.Spec.key) cells in
  (* bench2: machines x allocators x faults x envs, innermost fastest;
     exp:*: registry order x faults x envs, machine axis ignored. *)
  let expected =
    [ "bench2@quad_xeon/ptmalloc";
      "bench2@quad_xeon/ptmalloc+shards2";
      "bench2@quad_xeon/ptmalloc+oom-pressure:7";
      "bench2@quad_xeon/ptmalloc+oom-pressure:7+shards2";
      "bench2@uni_k6/ptmalloc";
      "bench2@uni_k6/ptmalloc+shards2";
      "bench2@uni_k6/ptmalloc+oom-pressure:7";
      "bench2@uni_k6/ptmalloc+oom-pressure:7+shards2";
      "exp:table1";
      "exp:table1+shards2";
      "exp:table1+oom-pressure:7";
      "exp:table1+oom-pressure:7+shards2";
      "exp:fig8";
      "exp:fig8+shards2";
      "exp:fig8+oom-pressure:7";
      "exp:fig8+oom-pressure:7+shards2";
    ]
  in
  Alcotest.(check (list string)) "expansion order" expected keys;
  List.iter
    (fun c ->
      match c.Spec.workload with
      | Spec.Exp _ ->
          Alcotest.(check bool) "exp cells carry no machine axis" true
            (c.Spec.machine = None && c.Spec.allocator = None);
          Alcotest.(check int) "exp cells use the spec seed" t.Spec.seed c.Spec.cell_seed
      | Spec.Exp_all -> Alcotest.fail "exp:* survived expansion"
      | _ ->
          Alcotest.(check bool) "bench cells carry both axes" true
            (c.Spec.machine <> None && c.Spec.allocator <> None))
    cells;
  (* bench cell seeds: seed + 101*k within the workload block *)
  let bench_seeds =
    List.filter_map
      (fun c -> match c.Spec.workload with Spec.Bench2 -> Some c.Spec.cell_seed | _ -> None)
      cells
  in
  Alcotest.(check (list int)) "bench seeds derive from the ordinal"
    (List.init 8 (fun k -> 10 + (101 * k)))
    bench_seeds

let test_expansion_is_deterministic () =
  let text = "suite s\nworkloads exp:* bench1 bench3\nmachines quad_xeon\n" in
  let _, a = expand_exn text ~exp_ids:[ "x"; "y"; "z" ] in
  let _, b = expand_exn text ~exp_ids:[ "x"; "y"; "z" ] in
  Alcotest.(check (list string)) "same cells twice"
    (List.map (fun c -> c.Spec.key) a)
    (List.map (fun c -> c.Spec.key) b)

let test_duplicate_cells_rejected () =
  match Spec.of_string "suite s\nworkloads exp:fig8 exp:*\n" with
  | Error e -> Alcotest.failf "parse should pass, expansion should fail: %s" e
  | Ok t -> (
      match Spec.expand t ~exp_ids:[ "fig8" ] with
      | Ok _ -> Alcotest.fail "duplicate cell keys accepted"
      | Error _ -> ())

(* --- history -------------------------------------------------------------- *)

let sample_host = { History.cores = 4; cpu_model = "test cpu"; domains = 1 }

let cell ?(ok = true) ?(pct = []) ns words =
  { History.ok;
    ns_per_run = ns;
    minor_words_per_run = words;
    counters = [ ("alloc.mallocs", 42); ("vm.sbrk_calls", 3) ];
    percentiles = pct;
  }

let session ?(host = sample_host) id cells =
  { History.id; time_s = 1000.; suite = "s"; mode = "quick"; seed = 1; host; cells }

let with_tmp f =
  let path = Filename.temp_file "mb_history" ".json" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let test_history_round_trip () =
  with_tmp @@ fun path ->
  let t =
    { History.sessions =
        [ session "a" [ ("k1", cell 100. 10.); ("k2", cell ~pct:[ ("p50_ns", 5.) ] 200. 20.) ];
          session "b" [ ("k1", cell ~ok:false 110. 11.) ];
        ]
    }
  in
  History.save path t;
  match History.load path with
  | Error e -> Alcotest.failf "reload failed: %s" e
  | Ok t' ->
      Alcotest.(check bool) "round-trips structurally" true (t = t');
      Alcotest.(check int) "two sessions" 2 (List.length t'.History.sessions)

let test_history_missing_and_future () =
  (match History.load "/nonexistent/dir/h.json" with
  | Ok t -> Alcotest.(check int) "missing file is empty history" 0 (List.length t.History.sessions)
  | Error e -> Alcotest.failf "missing file should be Ok empty: %s" e);
  with_tmp @@ fun path ->
  Out_channel.with_open_text path (fun oc ->
      output_string oc "{\"schema\": 99, \"sessions\": []}");
  match History.load path with
  | Ok _ -> Alcotest.fail "future schema accepted"
  | Error _ -> ()

let test_history_append () =
  with_tmp @@ fun path ->
  Sys.remove path;
  (match History.append path (session "a" [ ("k", cell 1. 1.) ]) with
  | Error e -> Alcotest.failf "first append: %s" e
  | Ok t -> Alcotest.(check int) "one session" 1 (List.length t.History.sessions));
  match History.append path (session "b" [ ("k", cell 2. 2.) ]) with
  | Error e -> Alcotest.failf "second append: %s" e
  | Ok t ->
      Alcotest.(check (list string)) "chronological ids" [ "a"; "b" ]
        (List.map (fun s -> s.History.id) t.History.sessions)

(* --- gate ----------------------------------------------------------------- *)

let gate_exn ?last ?threshold ?gc_threshold ?scale_first sessions =
  match Gate.check ?last ?threshold ?gc_threshold ?scale_first { History.sessions } with
  | Ok v -> v
  | Error e -> Alcotest.failf "gate errored: %s" e

let four_cells f =
  [ ("k1", cell (f 100.) 10.); ("k2", cell (f 200.) 10.); ("k3", cell (f 300.) 10.);
    ("k4", cell (f 400.) 10.) ]

let test_gate_passes_on_flat_trend () =
  let v = gate_exn [ session "a" (four_cells Fun.id); session "b" (four_cells (fun x -> x *. 1.05)) ] in
  Alcotest.(check bool) "ok" true v.Gate.ok;
  Alcotest.(check (list string)) "no regressions" [] v.Gate.regressions

let test_gate_fails_on_25pc_regression () =
  let fresh =
    [ ("k1", cell 100. 10.); ("k2", cell 200. 10.); ("k3", cell 300. 10.);
      ("k4", cell 520. 10.) ]  (* k4 regressed 30%, the rest are flat *)
  in
  let v = gate_exn [ session "a" (four_cells Fun.id); session "b" fresh ] in
  Alcotest.(check bool) "fails" false v.Gate.ok;
  Alcotest.(check (list string)) "names k4" [ "k4" ] v.Gate.regressions

let test_gate_normalizes_host_factor () =
  (* Uniform 2x slowdown (a slower runner) is cancelled by the median;
     the same 2x on a single cell is a regression. *)
  let v = gate_exn [ session "a" (four_cells Fun.id); session "b" (four_cells (fun x -> x *. 2.)) ] in
  Alcotest.(check bool) "uniform slowdown passes" true v.Gate.ok

let test_gate_median_baseline_rides_out_noise () =
  (* One noisy session inside the window must not poison the baseline. *)
  let v =
    gate_exn
      [ session "a" (four_cells Fun.id);
        session "noisy" (four_cells (fun x -> x *. 10.));
        session "c" (four_cells Fun.id);
        session "fresh" (four_cells (fun x -> x *. 1.02));
      ]
  in
  Alcotest.(check bool) "ok" true v.Gate.ok

let test_gate_fresh_only_warns () =
  let fresh = ("new", cell 999. 10.) :: four_cells Fun.id in
  let v = gate_exn [ session "a" (four_cells Fun.id); session "b" fresh ] in
  Alcotest.(check bool) "ok" true v.Gate.ok;
  Alcotest.(check bool) "warned about the fresh-only cell" true
    (List.exists (fun w -> contains w "new") v.Gate.warnings)

let test_gate_no_same_host_baseline_is_vacuous_pass () =
  let other = { History.cores = 64; cpu_model = "other cpu"; domains = 4 } in
  let v = gate_exn [ session ~host:other "a" (four_cells Fun.id); session "b" (four_cells Fun.id) ] in
  Alcotest.(check bool) "vacuous pass" true v.Gate.ok;
  Alcotest.(check bool) "warns" true (v.Gate.warnings <> [])

let test_gate_singleton_shared_set_uses_raw_ratios () =
  (* One shared cell: median normalization would hide any regression
     (ratio/median = 1.0 always); the guard gates on raw ratios. *)
  let v =
    gate_exn
      [ session "a" [ ("k1", cell 100. 10.) ];
        session "b" [ ("k1", cell 200. 10.) ];
      ]
  in
  Alcotest.(check bool) "raw 2x fails" false v.Gate.ok;
  Alcotest.(check bool) "warns about the degenerate set" true (v.Gate.warnings <> [])

let test_gate_gc_regression_is_raw () =
  let fresh =
    [ ("k1", cell 100. 20.); ("k2", cell 200. 10.); ("k3", cell 300. 10.);
      ("k4", cell 400. 10.) ]  (* k1 doubles its minor words *)
  in
  let v = gate_exn [ session "a" (four_cells Fun.id); session "b" fresh ] in
  Alcotest.(check bool) "fails" false v.Gate.ok;
  Alcotest.(check (list string)) "gc regression on k1" [ "k1" ] v.Gate.gc_regressions

let test_gate_self_test_scales_first_cell () =
  let sessions = [ session "a" (four_cells Fun.id); session "b" (four_cells Fun.id) ] in
  Alcotest.(check bool) "passes unscaled" true (gate_exn sessions).Gate.ok;
  let v = gate_exn ~scale_first:3.0 sessions in
  Alcotest.(check bool) "fails under self-test" false v.Gate.ok;
  Alcotest.(check (list string)) "first cell flagged" [ "k1" ] v.Gate.regressions

let test_gate_empty_history_errors () =
  match Gate.check { History.sessions = [] } with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty history should be a usage error"

(* --- report ---------------------------------------------------------------- *)

let test_report_renders_all_cells () =
  let h = { History.sessions = [ session "a" (four_cells Fun.id); session "b" (four_cells Fun.id) ] } in
  let text = Report.render h in
  List.iter
    (fun k ->
      if not (contains text k) then Alcotest.failf "report lost cell %s:\n%s" k text)
    [ "k1"; "k2"; "k3"; "k4"; "s0"; "s-1" ];
  let csv = Report.to_csv h in
  Alcotest.(check int) "csv rows: header + 2 sessions x 4 cells" 9
    (List.length (String.split_on_char '\n' (String.trim csv)))

(* --- runner ---------------------------------------------------------------- *)

let fake_registry ?(ok = fun _ -> true) ids =
  { Runner.exp_ids = ids;
    exp_run =
      (fun id ~quick:_ ~seed:_ ->
        if List.mem id ids then Some (fun () -> { Runner.print = (fun () -> ()); ok = ok id })
        else None);
  }

let spec_of_exn text =
  match Spec.of_string text with Ok t -> t | Error e -> Alcotest.failf "spec: %s" e

let test_runner_pure_suite_runs_cells () =
  let spec = spec_of_exn "suite s\nworkloads exp:*\n" in
  match Runner.run ~jobs:2 ~registry:(fake_registry [ "a"; "b"; "c" ]) spec with
  | Error e -> Alcotest.failf "runner: %s" e
  | Ok data ->
      Alcotest.(check (list string)) "registry order"
        [ "exp:a"; "exp:b"; "exp:c" ]
        (List.map (fun (c, _) -> c.Spec.key) data);
      List.iter
        (fun (_, (d : History.cell_data)) ->
          Alcotest.(check bool) "ok" true d.History.ok;
          Alcotest.(check bool) "timed" true (d.History.ns_per_run >= 0.);
          Alcotest.(check (list (pair string (float 0.)))) "no percentiles" [] d.History.percentiles)
        data

let test_runner_forces_ok_under_faults () =
  let spec = spec_of_exn "suite s\nworkloads exp:a\nfaults oom-pressure:7\n" in
  match Runner.run ~registry:(fake_registry ~ok:(fun _ -> false) [ "a" ]) spec with
  | Error e -> Alcotest.failf "runner: %s" e
  | Ok [ (_, d) ] -> Alcotest.(check bool) "graceful completion is the bar" true d.History.ok
  | Ok _ -> Alcotest.fail "expected one cell"

let test_runner_reports_failing_checks () =
  let spec = spec_of_exn "suite s\nworkloads exp:a exp:b\n" in
  match Runner.run ~jobs:1 ~registry:(fake_registry ~ok:(fun id -> id = "a") [ "a"; "b" ]) spec with
  | Error e -> Alcotest.failf "runner: %s" e
  | Ok data ->
      Alcotest.(check (list bool)) "per-cell ok" [ true; false ]
        (List.map (fun (_, (d : History.cell_data)) -> d.History.ok) data)

let test_runner_env_cell_restores_knobs () =
  let spec = spec_of_exn "suite s\nworkloads exp:a\nenv domains=2,window-batch=4\n" in
  match Runner.run ~registry:(fake_registry [ "a" ]) spec with
  | Error e -> Alcotest.failf "runner: %s" e
  | Ok _ ->
      (* after the run, the engine defaults are back in force *)
      (match Sys.getenv_opt "MALLOC_REPRO_DOMAINS" with
      | Some "1" | None -> ()
      | Some v -> Alcotest.failf "MALLOC_REPRO_DOMAINS left at %S" v);
      (match Sys.getenv_opt "MALLOC_REPRO_WINDOW_BATCH" with
      | Some v when v = string_of_int Mb_parallel.Conservative.default_batch -> ()
      | None -> ()
      | Some v -> Alcotest.failf "MALLOC_REPRO_WINDOW_BATCH left at %S" v)

let test_runner_unknown_exp_id_errors () =
  let spec = spec_of_exn "suite s\nworkloads exp:zzz\n" in
  match Runner.run ~registry:(fake_registry [ "a" ]) spec with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown id accepted"

(* --- json ------------------------------------------------------------------ *)

let test_json_round_trip () =
  let t =
    Json.Obj
      [ ("s", Json.Str "a\"b\\c\ns"); ("n", Json.Num 1.5); ("i", Json.Num 42.);
        ("b", Json.Bool true); ("z", Json.Null);
        ("a", Json.Arr [ Json.Num 1.; Json.Str "x" ]);
      ]
  in
  match Json.of_string (Json.to_string t) with
  | Ok t' -> Alcotest.(check bool) "round-trips" true (t = t')
  | Error e -> Alcotest.failf "json: %s" e

let test_json_rejects_garbage () =
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ ""; "{"; "{\"a\": }"; "[1, ]"; "tru"; "\"unterminated"; "{\"a\": 1} trailing" ]

let suite =
  [ QCheck_alcotest.to_alcotest prop_round_trip;
    Alcotest.test_case "parse defaults" `Quick test_parse_defaults;
    Alcotest.test_case "comments and blanks" `Quick test_parse_comments_and_blanks;
    Alcotest.test_case "errors carry line numbers" `Quick test_parse_errors_carry_line_numbers;
    Alcotest.test_case "unknown exp id fails expansion" `Quick test_exp_all_requires_registry_membership;
    Alcotest.test_case "expansion order and keys" `Quick test_expansion_order_and_keys;
    Alcotest.test_case "expansion is deterministic" `Quick test_expansion_is_deterministic;
    Alcotest.test_case "duplicate cells rejected" `Quick test_duplicate_cells_rejected;
    Alcotest.test_case "history round-trip" `Quick test_history_round_trip;
    Alcotest.test_case "history missing/future schema" `Quick test_history_missing_and_future;
    Alcotest.test_case "history append" `Quick test_history_append;
    Alcotest.test_case "gate passes flat trend" `Quick test_gate_passes_on_flat_trend;
    Alcotest.test_case "gate fails 25% regression" `Quick test_gate_fails_on_25pc_regression;
    Alcotest.test_case "gate normalizes host factor" `Quick test_gate_normalizes_host_factor;
    Alcotest.test_case "gate medians out a noisy session" `Quick test_gate_median_baseline_rides_out_noise;
    Alcotest.test_case "gate warns on fresh-only cells" `Quick test_gate_fresh_only_warns;
    Alcotest.test_case "gate vacuous pass on new host" `Quick test_gate_no_same_host_baseline_is_vacuous_pass;
    Alcotest.test_case "gate singleton shared set" `Quick test_gate_singleton_shared_set_uses_raw_ratios;
    Alcotest.test_case "gate GC regression is raw" `Quick test_gate_gc_regression_is_raw;
    Alcotest.test_case "gate self-test scales first cell" `Quick test_gate_self_test_scales_first_cell;
    Alcotest.test_case "gate empty history errors" `Quick test_gate_empty_history_errors;
    Alcotest.test_case "report renders all cells" `Quick test_report_renders_all_cells;
    Alcotest.test_case "runner pure suite" `Quick test_runner_pure_suite_runs_cells;
    Alcotest.test_case "runner forces ok under faults" `Quick test_runner_forces_ok_under_faults;
    Alcotest.test_case "runner reports failing checks" `Quick test_runner_reports_failing_checks;
    Alcotest.test_case "runner restores env knobs" `Quick test_runner_env_cell_restores_knobs;
    Alcotest.test_case "runner unknown exp id" `Quick test_runner_unknown_exp_id_errors;
    Alcotest.test_case "json round-trip" `Quick test_json_round_trip;
    Alcotest.test_case "json rejects garbage" `Quick test_json_rejects_garbage;
  ]
