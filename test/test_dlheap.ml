(* Tests for the dlmalloc-style heap: boundary tags, bins, top chunk,
   growth, trim, the mmap threshold, and structural invariants. *)

module M = Core.Machine
module Dlheap = Core.Dlheap
module As = Core.Address_space

let config = { M.default_config with M.cpus = 1; op_jitter = 0. }

(* Run [body] in a fresh machine with a fresh main heap. *)
let with_heap ?(params = Dlheap.default_params) body =
  let m = M.create ~seed:1 config in
  let p = M.create_proc m () in
  let stats = Core.Astats.create () in
  let heap = Dlheap.create_main p ~costs:Core.Costs.glibc ~params ~stats in
  ignore (M.spawn p (fun ctx -> body heap stats ctx p));
  M.run m

let alloc heap ctx size =
  match Dlheap.malloc heap ctx size with
  | Some user -> user
  | None -> Alcotest.fail "unexpected allocation failure"

let check_valid heap =
  match Dlheap.validate heap with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("invariant violation: " ^ msg)

let test_basic_alloc_free () =
  with_heap (fun heap _ ctx _ ->
      let a = alloc heap ctx 100 in
      let b = alloc heap ctx 100 in
      Alcotest.(check bool) "distinct" true (a <> b);
      Alcotest.(check bool) "aligned" true (a mod 8 = 0 && b mod 8 = 0);
      Alcotest.(check bool) "usable >= request" true (Dlheap.usable_size heap a >= 100);
      Dlheap.free heap ctx a;
      Dlheap.free heap ctx b;
      check_valid heap;
      Alcotest.(check int) "all coalesced into top" 0 (Dlheap.live_chunks heap))

let test_exact_reuse () =
  with_heap (fun heap _ ctx _ ->
      let a = alloc heap ctx 256 in
      let _pin = alloc heap ctx 64 in
      Dlheap.free heap ctx a;
      let b = alloc heap ctx 256 in
      Alcotest.(check int) "free chunk reused exactly" a b)

let test_split_and_remainder () =
  with_heap (fun heap _ ctx _ ->
      let big = alloc heap ctx 1000 in
      let _pin = alloc heap ctx 16 in
      Dlheap.free heap ctx big;
      (* A smaller request splits the binned 1008-byte chunk. *)
      let small = alloc heap ctx 100 in
      Alcotest.(check int) "reuses the front" big small;
      check_valid heap;
      Alcotest.(check bool) "remainder binned" true (Dlheap.free_bytes heap > 0))

let test_coalesce_three_way () =
  with_heap (fun heap _ ctx _ ->
      let a = alloc heap ctx 64 in
      let b = alloc heap ctx 64 in
      let c = alloc heap ctx 64 in
      let _pin = alloc heap ctx 64 in
      Dlheap.free heap ctx a;
      Dlheap.free heap ctx c;
      check_valid heap;
      (* freeing b must merge with both neighbours *)
      Dlheap.free heap ctx b;
      check_valid heap;
      let merged = alloc heap ctx 200 in
      Alcotest.(check int) "merged region starts at a" a merged)

let test_no_adjacent_free_chunks () =
  with_heap (fun heap _ ctx _ ->
      let blocks = List.init 20 (fun _ -> alloc heap ctx 48) in
      List.iteri (fun i u -> if i mod 2 = 0 then Dlheap.free heap ctx u) blocks;
      check_valid heap;
      List.iteri (fun i u -> if i mod 2 = 1 then Dlheap.free heap ctx u) blocks;
      check_valid heap)

let test_double_free_raises () =
  with_heap (fun heap _ ctx _ ->
      let a = alloc heap ctx 32 in
      let _pin = alloc heap ctx 32 in
      Dlheap.free heap ctx a;
      Alcotest.check_raises "double free" (Invalid_argument "Dlheap.free: double free") (fun () ->
          Dlheap.free heap ctx a))

let test_bad_free_raises () =
  with_heap (fun heap _ ctx _ ->
      let _a = alloc heap ctx 32 in
      Alcotest.check_raises "wild pointer"
        (Invalid_argument "Dlheap.free: address not owned by this heap") (fun () ->
          Dlheap.free heap ctx 0xDEAD00))

let test_top_growth_uses_sbrk () =
  with_heap (fun heap _ ctx p ->
      let before = As.sbrk_calls (M.proc_vm p) in
      let _a = alloc heap ctx 512 in
      Alcotest.(check bool) "sbrk called" true (As.sbrk_calls (M.proc_vm p) > before);
      let before2 = As.sbrk_calls (M.proc_vm p) in
      let _b = alloc heap ctx 512 in
      (* top_pad means nearby allocations reuse the grown top *)
      Alcotest.(check int) "no extra sbrk" before2 (As.sbrk_calls (M.proc_vm p)))

let test_trim_returns_memory () =
  let params = { Dlheap.default_params with Dlheap.trim_threshold = 16 * 1024 } in
  with_heap ~params (fun heap _ ctx p ->
      let blocks = List.init 64 (fun _ -> alloc heap ctx 1024) in
      let high = As.brk (M.proc_vm p) in
      List.iter (fun u -> Dlheap.free heap ctx u) blocks;
      check_valid heap;
      Alcotest.(check bool) "brk released" true (As.brk (M.proc_vm p) < high);
      Alcotest.(check bool) "top under threshold" true (Dlheap.top_bytes heap <= 16 * 1024))

let test_mmap_threshold () =
  with_heap (fun heap stats ctx p ->
      let big = alloc heap ctx (Dlheap.default_params.Dlheap.mmap_threshold + 100) in
      Alcotest.(check int) "mmapped chunk counted" 1 stats.Core.Astats.mmapped_chunks;
      Alcotest.(check bool) "usable covers request" true
        (Dlheap.usable_size heap big >= Dlheap.default_params.Dlheap.mmap_threshold + 100);
      let mmaps = As.munmap_calls (M.proc_vm p) in
      Dlheap.free heap ctx big;
      Alcotest.(check bool) "munmapped on free" true (As.munmap_calls (M.proc_vm p) > mmaps);
      check_valid heap)

let test_sbrk_blocked_falls_back_to_mmap () =
  (* Squeeze the brk zone so growth hits the ceiling immediately. *)
  let vm =
    { As.linux_x86 with
      As.brk_base = 0x0810_0000;
      brk_ceiling = 0x0810_0000 + (16 * 4096);
    }
  in
  let m = M.create ~seed:1 { config with M.vm } in
  let p = M.create_proc m () in
  let stats = Core.Astats.create () in
  let heap = Dlheap.create_main p ~costs:Core.Costs.glibc ~params:Dlheap.default_params ~stats in
  ignore
    (M.spawn p (fun ctx ->
         (* Exhaust the sixteen brk pages, then keep allocating. *)
         let blocks = ref [] in
         for _ = 1 to 40 do
           blocks := alloc heap ctx 4000 :: !blocks
         done;
         Alcotest.(check bool) "grow failures recorded" true (stats.Core.Astats.grow_failures > 0);
         Alcotest.(check bool) "mmap fallback used" true (stats.Core.Astats.mmapped_chunks > 0);
         List.iter (fun u -> Dlheap.free heap ctx u) !blocks;
         check_valid heap));
  M.run m

let test_sub_heap_bounded () =
  let params = { Dlheap.default_params with Dlheap.sub_heap_bytes = 64 * 1024 } in
  let m = M.create ~seed:1 config in
  let p = M.create_proc m () in
  let stats = Core.Astats.create () in
  ignore
    (M.spawn p (fun ctx ->
         let heap = Option.get (Dlheap.create_sub ctx ~costs:Core.Costs.glibc ~params ~stats) in
         Alcotest.(check bool) "is sub" true (Dlheap.is_sub heap);
         let rec fill acc =
           match Dlheap.malloc heap ctx 4096 with
           | Some u -> fill (u :: acc)
           | None -> acc
         in
         let blocks = fill [] in
         Alcotest.(check bool) "held about 64KB worth" true
           (List.length blocks >= 13 && List.length blocks <= 16);
         check_valid heap;
         List.iter (fun u -> Dlheap.free heap ctx u) blocks;
         check_valid heap;
         (* after freeing everything it can serve again *)
         Alcotest.(check bool) "reusable after drain" true (Dlheap.malloc heap ctx 4096 <> None)));
  M.run m

let test_giant_coalesced_chunk_binned () =
  (* Regression: freeing adjacent blocks can coalesce into a region
     larger than the mmap threshold; it must land in the catch-all bin,
     not outside the bin array. *)
  with_heap (fun heap _ ctx _ ->
      let blocks = List.init 40 (fun _ -> alloc heap ctx 4096) in
      let pin = alloc heap ctx 64 in
      List.iter (fun u -> Dlheap.free heap ctx u) blocks;
      check_valid heap;
      Alcotest.(check bool) "giant chunk binned" true (Dlheap.free_bytes heap > 128 * 1024);
      (* and it is reusable *)
      let again = alloc heap ctx 100_000 in
      Dlheap.free heap ctx again;
      Dlheap.free heap ctx pin;
      check_valid heap)

let test_owns () =
  with_heap (fun heap _ ctx _ ->
      let a = alloc heap ctx 64 in
      Alcotest.(check bool) "owns its block" true (Dlheap.owns heap a);
      Alcotest.(check bool) "does not own wild" false (Dlheap.owns heap 0x7777_0000))

let test_segment_bounds () =
  with_heap (fun heap _ ctx _ ->
      let base0, end0 = Dlheap.segment_bounds heap in
      Alcotest.(check int) "empty before first alloc" 0 (end0 - base0);
      let _a = alloc heap ctx 64 in
      let base, stop = Dlheap.segment_bounds heap in
      Alcotest.(check bool) "covers the allocation" true (base <= _a - 8 && _a + 64 <= stop))

(* Property: random malloc/free interleavings preserve every invariant
   and never hand out overlapping live blocks. *)
let prop_random_ops =
  let gen =
    QCheck.make
      ~print:(fun ops -> String.concat ";" (List.map (fun (a, s) -> Printf.sprintf "%b/%d" a s) ops))
      QCheck.Gen.(list_size (int_range 1 120) (pair bool (int_range 1 3000)))
  in
  QCheck.Test.make ~name:"random op sequences keep heap invariants" ~count:60 gen (fun ops ->
      let result = ref true in
      with_heap (fun heap _ ctx _ ->
          let live = ref [] in
          List.iter
            (fun (do_alloc, size) ->
              if do_alloc || !live = [] then begin
                let u = alloc heap ctx size in
                (* no overlap with any live block *)
                let ulen = Dlheap.usable_size heap u in
                if
                  List.exists
                    (fun v ->
                      let vlen = Dlheap.usable_size heap v in
                      not (u + ulen <= v - 8 || v + vlen <= u - 8))
                    !live
                then result := false;
                live := u :: !live
              end
              else begin
                match !live with
                | u :: rest ->
                    Dlheap.free heap ctx u;
                    live := rest
                | [] -> ()
              end;
              match Dlheap.validate heap with Ok () -> () | Error _ -> result := false)
            ops;
          List.iter (fun u -> Dlheap.free heap ctx u) !live;
          (match Dlheap.validate heap with Ok () -> () | Error _ -> result := false);
          if Dlheap.live_chunks heap <> 0 then result := false);
      !result)

let prop_usable_size_covers_request =
  QCheck.Test.make ~name:"usable_size >= request, bounded overhead" ~count:60
    QCheck.(int_range 1 200_000)
    (fun size ->
      let out = ref true in
      with_heap (fun heap _ ctx _ ->
          let u = alloc heap ctx size in
          let usable = Dlheap.usable_size heap u in
          (* never less than asked; never more than a page of slack + 16 *)
          out := usable >= size && usable <= size + 4096 + 16;
          Dlheap.free heap ctx u);
      !out)

(* Golden address stream: the digest below was captured from this exact
   op sequence while the heap still indexed chunks with [Hashtbl], i.e.
   before the open-addressing [Int_table] swap. The allocator's
   placement decisions never consult index iteration order, so the
   malloc/free address stream must be bit-for-bit unchanged by the swap
   (and by any future index change). *)
let test_index_swap_stream () =
  let stream = Buffer.create 256 in
  let final_live = ref (-1) in
  with_heap (fun heap _ ctx _ ->
      let lcg = ref 12345 in
      let next_size () =
        lcg := ((!lcg * 1103515245) + 12345) land 0x3FFFFFFF;
        1 + (!lcg mod 3000)
      in
      let live = ref [] in
      for i = 0 to 199 do
        if i mod 3 <> 2 || !live = [] then begin
          let size = next_size () in
          match Dlheap.malloc heap ctx size with
          | Some u ->
              Buffer.add_string stream (Printf.sprintf "a%x;" u);
              live := u :: !live
          | None -> Buffer.add_string stream "a!;"
        end
        else begin
          match !live with
          | u :: rest ->
              Dlheap.free heap ctx u;
              Buffer.add_string stream (Printf.sprintf "f%x;" u);
              live := rest
          | [] -> ()
        end
      done;
      (* One mmapped chunk through the threshold path, so the stream also
         pins the mm_chunks index behaviour. *)
      (match Dlheap.malloc heap ctx 200_000 with
      | Some u ->
          Buffer.add_string stream (Printf.sprintf "a%x;" u);
          Dlheap.free heap ctx u;
          Buffer.add_string stream (Printf.sprintf "f%x;" u)
      | None -> Buffer.add_string stream "a!;");
      List.iter
        (fun u ->
          Dlheap.free heap ctx u;
          Buffer.add_string stream (Printf.sprintf "f%x;" u))
        !live;
      final_live := Dlheap.live_chunks heap);
  let s = Buffer.contents stream in
  Alcotest.(check int) "stream length" 2432 (String.length s);
  Alcotest.(check string) "stream digest" "4aa7f5505159bdae6f3e0862a4b99a17"
    (Digest.to_hex (Digest.string s));
  Alcotest.(check int) "all freed" 0 !final_live

let suite =
  [ Alcotest.test_case "basic alloc/free" `Quick test_basic_alloc_free;
    Alcotest.test_case "index swap keeps address stream" `Quick test_index_swap_stream;
    Alcotest.test_case "exact reuse" `Quick test_exact_reuse;
    Alcotest.test_case "split and remainder" `Quick test_split_and_remainder;
    Alcotest.test_case "coalesce three-way" `Quick test_coalesce_three_way;
    Alcotest.test_case "no adjacent free chunks" `Quick test_no_adjacent_free_chunks;
    Alcotest.test_case "double free raises" `Quick test_double_free_raises;
    Alcotest.test_case "bad free raises" `Quick test_bad_free_raises;
    Alcotest.test_case "top growth uses sbrk" `Quick test_top_growth_uses_sbrk;
    Alcotest.test_case "trim returns memory" `Quick test_trim_returns_memory;
    Alcotest.test_case "mmap threshold" `Quick test_mmap_threshold;
    Alcotest.test_case "sbrk blocked -> mmap fallback" `Quick test_sbrk_blocked_falls_back_to_mmap;
    Alcotest.test_case "sub heap bounded" `Quick test_sub_heap_bounded;
    Alcotest.test_case "giant coalesced chunk binned" `Quick test_giant_coalesced_chunk_binned;
    Alcotest.test_case "owns" `Quick test_owns;
    Alcotest.test_case "segment bounds" `Quick test_segment_bounds;
    QCheck_alcotest.to_alcotest prop_random_ops;
    QCheck_alcotest.to_alcotest prop_usable_size_covers_request;
  ]
