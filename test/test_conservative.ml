(* The conservative parallel executor's one promise: the schedule is
   byte-identical to the serial engine at any domain count. Checked at
   engine level (randomized programs fuzzed across domain counts,
   barrier starvation, cross-domain wakeups, deadlock reporting) and at
   machine level (full workloads timed under 1/2/4 domains, via both
   the [?domains] parameter and the MALLOC_REPRO_DOMAINS variable). *)

module Engine = Mb_sim.Engine
module Conservative = Mb_parallel.Conservative
module M = Core.Machine

(* --- engine level ------------------------------------------------------ *)

(* Run a little process program — process [i] on shard [i mod shards]
   performs its list of delays, logging a stamp after each — and return
   the full log. [mode] selects the serial loop or the conservative
   executor at a given width. *)
let run_prog ?(shards = 4) ~mode progs =
  let e = Engine.create ~shards () in
  let log = Buffer.create 256 in
  List.iteri
    (fun i delays ->
      ignore
        (Engine.spawn e ~shard:(i mod shards) ~name:(Printf.sprintf "p%d" i)
           (fun () ->
             List.iteri
               (fun j d ->
                 Engine.delay (float_of_int d);
                 Buffer.add_string log
                   (Printf.sprintf "p%d.%d@%.17g;" i j (Engine.now e)))
               delays)))
    progs;
  (match mode with
  | `Serial -> Engine.run e
  | `Domains d ->
      (* A tiny lookahead and window target force many windows, so the
         merge, the adaptation and the barrier all actually cycle. *)
      ignore (Conservative.run e ~domains:d ~lookahead_ns:2. ~target:4));
  Buffer.contents log

let progs_gen =
  QCheck.(
    list_of_size Gen.(int_range 1 12)
      (list_of_size Gen.(int_range 0 20) (int_bound 50)))

let prop_domain_count_invariance =
  QCheck.Test.make ~name:"schedule invariant under domain count" ~count:150
    progs_gen
    (fun progs ->
      let serial = run_prog ~mode:`Serial progs in
      run_prog ~mode:(`Domains 1) progs = serial
      && run_prog ~mode:(`Domains 2) progs = serial
      && run_prog ~mode:(`Domains 4) progs = serial)

(* All events on shard 0 of 4, four domains: three crew members drain
   nothing every window and just cross the barrier. The run must still
   terminate with the serial schedule, and the per-domain split must
   show the starvation. *)
let test_barrier_starvation () =
  let progs = List.init 6 (fun i -> List.init 10 (fun j -> (i * 7 + j * 3) mod 41)) in
  let run mode =
    let e = Engine.create ~shards:4 () in
    let log = Buffer.create 256 in
    List.iteri
      (fun i delays ->
        ignore
          (Engine.spawn e ~shard:0 ~name:(Printf.sprintf "p%d" i) (fun () ->
               List.iter
                 (fun d ->
                   Engine.delay (float_of_int d);
                   Buffer.add_string log
                     (Printf.sprintf "p%d@%.17g;" i (Engine.now e)))
                 delays)))
      progs;
    let stats =
      match mode with
      | `Serial -> Engine.run e; None
      | `Domains d -> Some (Conservative.run e ~domains:d ~lookahead_ns:2. ~target:4)
    in
    (Buffer.contents log, stats)
  in
  let serial, _ = run `Serial in
  let parallel, stats = run (`Domains 4) in
  Alcotest.(check string) "starved crew still serial schedule" serial parallel;
  let st = Option.get stats in
  Alcotest.(check int) "full crew" 4 st.Conservative.domains;
  Array.iteri
    (fun i n ->
      if i > 0 then
        Alcotest.(check int) (Printf.sprintf "domain %d drained nothing" i) 0 n)
    st.Conservative.per_domain_drained;
  Alcotest.(check int) "all drains on domain 0" st.Conservative.drained
    st.Conservative.per_domain_drained.(0);
  Alcotest.(check int) "barrier crossed every window" (st.Conservative.windows * 3)
    st.Conservative.barrier_waits

(* Parked processes resumed from shards owned by *other* domains: the
   wakeup event lands mid-window on a foreign shard, which is exactly
   the interleave (residue) path. Ordering must match the serial run. *)
let test_cross_domain_wakeup_order () =
  let run mode =
    let e = Engine.create ~shards:4 () in
    let log = ref [] in
    let resumers = Array.make 4 (fun () -> ()) in
    for i = 0 to 3 do
      ignore
        (Engine.spawn e ~shard:i ~name:(Printf.sprintf "sleeper%d" i) (fun () ->
             Engine.delay (float_of_int i);
             Engine.park (fun resume -> resumers.(i) <- resume);
             log := Printf.sprintf "woke%d@%.0f" i (Engine.now e) :: !log))
    done;
    ignore
      (Engine.spawn e ~shard:3 ~name:"waker" (fun () ->
           (* wake in an order that crosses the shard->domain split both
              ways, with ties at equal times *)
           List.iter
             (fun (d, i) ->
               Engine.delay d;
               log := Printf.sprintf "wake%d@%.0f" i (Engine.now e) :: !log;
               resumers.(i) ())
             [ (10., 2); (0., 0); (7., 3); (0., 1) ]));
    (match mode with
    | `Serial -> Engine.run e
    | `Domains d -> ignore (Conservative.run e ~domains:d ~lookahead_ns:2. ~target:4));
    List.rev !log
  in
  let serial = run `Serial in
  Alcotest.(check (list string)) "2 domains = serial" serial (run (`Domains 2));
  Alcotest.(check (list string)) "4 domains = serial" serial (run (`Domains 4))

(* Deadlock diagnosis must survive the window protocol: the drained
   queue + parked process stall raises the same structured report. *)
let test_stall_report_matches_serial () =
  let stall mode =
    let e = Engine.create ~shards:4 () in
    ignore
      (Engine.spawn e ~shard:1 ~name:"stuck" (fun () ->
           Engine.delay 5.;
           Engine.park (fun _ -> ())));
    match mode with
    | `Serial -> ( try Engine.run e; None with Engine.Stalled s -> Some s)
    | `Domains d -> (
        try
          ignore (Conservative.run e ~domains:d ~lookahead_ns:2.);
          None
        with Engine.Stalled s -> Some s)
  in
  let serial = Option.get (stall `Serial) in
  let parallel = Option.get (stall (`Domains 4)) in
  Alcotest.(check string) "same stall message"
    (Engine.stall_message serial)
    (Engine.stall_message parallel)

(* --- machine level ----------------------------------------------------- *)

let config = { M.default_config with M.cpus = 2; op_jitter = 0. }

(* A contended workload, observed through every per-thread number the
   machine exposes. Identical floats — not approximately, exactly — at
   every domain width. *)
let machine_fingerprint ?domains () =
  let m = M.create ~seed:11 ?domains config in
  let p = M.create_proc m ~name:"t" () in
  let mu = M.Mutex.create m () in
  let threads =
    List.init 4 (fun i ->
        M.spawn p ~name:(Printf.sprintf "w%d" i) (fun ctx ->
            for _ = 1 to 50 do
              M.Mutex.lock mu ctx;
              M.work ctx 60;
              M.Mutex.unlock mu ctx;
              M.work ctx 40
            done))
  in
  M.run m;
  let b = Buffer.create 128 in
  List.iter
    (fun th ->
      Buffer.add_string b
        (Printf.sprintf "%.17g/%d;" (M.elapsed_ns th) (M.thread_stats th).M.ctx_switches))
    threads;
  Buffer.add_string b
    (Printf.sprintf "ctx=%d acq=%d cont=%d now=%.17g" (M.total_ctx_switches m)
       (M.Mutex.acquisitions mu) (M.Mutex.contentions mu) (M.now_ns m));
  (Buffer.contents b, M.domain_stats m)

let test_machine_identical_across_domains () =
  let serial, no_stats = machine_fingerprint () in
  Alcotest.(check bool) "serial run has no domain stats" true (no_stats = None);
  let two, st2 = machine_fingerprint ~domains:2 () in
  let four, st4 = machine_fingerprint ~domains:4 () in
  Alcotest.(check string) "2 domains = serial" serial two;
  Alcotest.(check string) "4 domains = serial" serial four;
  let st2 = Option.get st2 and st4 = Option.get st4 in
  Alcotest.(check int) "width 2 honored" 2 st2.Conservative.domains;
  (* 2 CPUs -> 3 event shards: a wider request is capped at the shard
     count rather than spinning idle domains. *)
  Alcotest.(check int) "width 4 capped at shards" 3 st4.Conservative.domains;
  Alcotest.(check bool) "windows advanced" true (st2.Conservative.windows > 0);
  Alcotest.(check int) "drain split sums"
    st2.Conservative.drained
    (Array.fold_left ( + ) 0 st2.Conservative.per_domain_drained)

let test_env_var_selects_domains () =
  let fingerprint_env v =
    Unix.putenv "MALLOC_REPRO_DOMAINS" v;
    Fun.protect
      ~finally:(fun () -> Unix.putenv "MALLOC_REPRO_DOMAINS" "1")
      (fun () -> machine_fingerprint ())
  in
  let serial, _ = machine_fingerprint ~domains:1 () in
  let via_env, stats = fingerprint_env "2" in
  Alcotest.(check string) "MALLOC_REPRO_DOMAINS=2 = serial" serial via_env;
  Alcotest.(check int) "env width honored" 2 (Option.get stats).Conservative.domains;
  Alcotest.check_raises "garbage rejected"
    (Invalid_argument "MALLOC_REPRO_DOMAINS: expected a positive integer")
    (fun () -> ignore (fingerprint_env "zero"))

let suite =
  [ QCheck_alcotest.to_alcotest prop_domain_count_invariance;
    Alcotest.test_case "barrier starvation" `Quick test_barrier_starvation;
    Alcotest.test_case "cross-domain wakeup order" `Quick test_cross_domain_wakeup_order;
    Alcotest.test_case "stall report matches serial" `Quick test_stall_report_matches_serial;
    Alcotest.test_case "machine identical across domains" `Quick test_machine_identical_across_domains;
    Alcotest.test_case "MALLOC_REPRO_DOMAINS selects width" `Quick test_env_var_selects_domains;
  ]
