(* Tests for the dynamic correctness checker: seeded defects (unlocked
   shared writes, lock-order deadlock, allocator misuse) must be caught,
   properly synchronized code must stay clean, and arming the checker
   must never perturb a run. *)

module M = Core.Machine
module Engine = Core.Engine
module Checker = Core.Check.Checker
module B1 = Core.Bench1

let two_cpu = { M.default_config with M.cpus = 2; op_jitter = 0. }

let kinds c = List.map (fun f -> f.Checker.kind) (Checker.findings c)

let armed_machine ?(seed = 7) config =
  let check = Checker.create () in
  (M.create ~seed ~check config, check)

(* A mapped, thread-shareable address every process has. *)
let shared_addr = M.libc_data_address + 0x400

(* --- checker unit behaviour -------------------------------------------- *)

let test_null_checker_records_nothing () =
  let c = Checker.null in
  Alcotest.(check bool) "disarmed" false (Checker.armed c);
  Checker.lock_acquired c ~tid:0 ~mid:0 ~name:"l";
  Checker.on_access c ~tid:0 ~asid:0 ~addr:64 ~write:true;
  Checker.on_access c ~tid:1 ~asid:0 ~addr:64 ~write:true;
  Alcotest.(check bool) "free proceeds" true (Checker.on_free c ~tid:0 ~asid:0 ~addr:64);
  Alcotest.(check int) "no findings" 0 (Checker.finding_count c);
  Alcotest.(check int) "empty list" 0 (List.length (Checker.findings c))

let test_collect_sorts_and_skips_disarmed () =
  ignore (Core.Check.Collect.drain ());
  Core.Check.Collect.publish ~label:"ignored" Checker.null;
  Alcotest.(check int) "disarmed not kept" 0 (Core.Check.Collect.pending ());
  Core.Check.Collect.publish ~label:"b-run" (Checker.create ());
  Core.Check.Collect.publish ~label:"a-run" (Checker.create ());
  let labels = List.map fst (Core.Check.Collect.drain ()) in
  Alcotest.(check (list string)) "drain sorted by label" [ "a-run"; "b-run" ] labels

(* --- race detection ----------------------------------------------------- *)

let test_unlocked_shared_write_is_a_race () =
  let m, check = armed_machine two_cpu in
  let p = M.create_proc m () in
  let body _ ctx =
    for _ = 1 to 50 do
      M.write_mem ctx shared_addr;
      M.work_exact ctx 200
    done
  in
  ignore (M.spawn p ~name:"w0" (body 0));
  ignore (M.spawn p ~name:"w1" (body 1));
  M.run m;
  Alcotest.(check int) "one finding" 1 (Checker.finding_count check);
  match Checker.findings check with
  | [ f ] ->
      Alcotest.(check string) "kind" "race" (Checker.kind_label f.Checker.kind);
      Alcotest.(check int) "address" shared_addr f.Checker.addr
  | fs -> Alcotest.failf "expected 1 finding, got %d" (List.length fs)

let test_common_lock_suppresses_race () =
  let m, check = armed_machine two_cpu in
  let p = M.create_proc m () in
  let mu = M.Mutex.create m ~name:"guard" () in
  let body _ ctx =
    for _ = 1 to 50 do
      M.Mutex.lock mu ctx;
      M.write_mem ctx shared_addr;
      M.Mutex.unlock mu ctx;
      M.work_exact ctx 200
    done
  in
  ignore (M.spawn p ~name:"w0" (body 0));
  ignore (M.spawn p ~name:"w1" (body 1));
  M.run m;
  Alcotest.(check int) "clean" 0 (Checker.finding_count check)

let test_lockset_refinement () =
  (* Eraser seeds the candidate lockset when an address goes shared and
     refines it by intersection on every later access. [common] is
     always protected by [l2] (w0 sometimes also holds [l1]), so its
     candidate set never empties. [disjoint] is touched under [l1] by
     one thread and [l2] by the other: the third access empties the
     set and must be flagged. *)
  let m, check = armed_machine two_cpu in
  let p = M.create_proc m () in
  let l1 = M.Mutex.create m ~name:"l1" () in
  let l2 = M.Mutex.create m ~name:"l2" () in
  let common = shared_addr and disjoint = shared_addr + 0x40 in
  ignore
    (M.spawn p ~name:"w0" (fun ctx ->
         M.Mutex.lock l1 ctx;
         M.Mutex.lock l2 ctx;
         M.write_mem ctx common;
         M.write_mem ctx disjoint;
         M.Mutex.unlock l2 ctx;
         M.Mutex.unlock l1 ctx;
         M.work_exact ctx 100_000;
         M.Mutex.lock l1 ctx;
         M.write_mem ctx disjoint;
         M.Mutex.unlock l1 ctx;
         M.Mutex.lock l2 ctx;
         M.write_mem ctx common;
         M.Mutex.unlock l2 ctx));
  ignore
    (M.spawn p ~name:"w1" (fun ctx ->
         M.work_exact ctx 30_000;
         M.Mutex.lock l2 ctx;
         M.write_mem ctx common;
         M.write_mem ctx disjoint;
         M.Mutex.unlock l2 ctx));
  M.run m;
  Alcotest.(check (list string)) "only the disjoint address races" [ "race" ]
    (List.map Checker.kind_label (kinds check));
  match Checker.findings check with
  | [ f ] -> Alcotest.(check int) "racy address" disjoint f.Checker.addr
  | _ -> Alcotest.fail "expected exactly one finding"

(* --- deadlock diagnosis ------------------------------------------------- *)

let test_two_mutex_deadlock_reports_cycle () =
  let m = M.create ~seed:5 two_cpu in
  let p = M.create_proc m () in
  let a = M.Mutex.create m ~name:"lock-a" () in
  let b = M.Mutex.create m ~name:"lock-b" () in
  let grab first second ctx =
    M.Mutex.lock first ctx;
    M.work_exact ctx 20_000;
    M.Mutex.lock second ctx;
    M.Mutex.unlock second ctx;
    M.Mutex.unlock first ctx
  in
  ignore (M.spawn p ~name:"fwd" (grab a b));
  ignore (M.spawn p ~name:"rev" (grab b a));
  match M.run m with
  | () -> Alcotest.fail "expected a deadlock"
  | exception Engine.Stalled st ->
      Alcotest.(check int) "both threads stuck" 2 (List.length st.Engine.waiters);
      Alcotest.(check int) "cycle of two" 2 (List.length st.Engine.cycle);
      List.iter
        (fun w ->
          Alcotest.(check bool)
            (Printf.sprintf "%s waits on a mutex" w.Engine.wname)
            true
            (String.length w.Engine.wwhy > 16
            && String.sub w.Engine.wwhy 0 16 = "blocked on mutex");
          Alcotest.(check bool) "waits on a real pid" true (w.Engine.wwaits_on >= 0))
        st.Engine.cycle;
      let msg = Engine.stall_message st in
      let contains needle =
        let nl = String.length needle and ml = String.length msg in
        let rec find i =
          i + nl <= ml && (String.sub msg i nl = needle || find (i + 1))
        in
        find 0
      in
      Alcotest.(check bool) "message names the cycle" true (contains "deadlock cycle:");
      Alcotest.(check bool) "message names lock-a" true (contains "lock-a");
      Alcotest.(check bool) "message names lock-b" true (contains "lock-b")

(* --- allocation sanitizer ----------------------------------------------- *)

let with_serial_alloc f =
  let m, check = armed_machine two_cpu in
  let p = M.create_proc m () in
  let alloc = Mb_alloc.Serial.(allocator (make p ())) in
  ignore (M.spawn p ~name:"w" (fun ctx -> f alloc ctx));
  M.run m;
  check

let test_double_free_detected_and_survived () =
  let check =
    with_serial_alloc (fun a ctx ->
        let user = a.Core.Allocator.malloc ctx 64 in
        a.Core.Allocator.free ctx user;
        (* The second free must be recorded and suppressed, not crash
           the simulated heap. *)
        a.Core.Allocator.free ctx user;
        ignore (a.Core.Allocator.malloc ctx 64))
  in
  Alcotest.(check (list string)) "double-free" [ "double-free" ]
    (List.map Checker.kind_label (kinds check))

let test_use_after_free_detected () =
  let check =
    with_serial_alloc (fun a ctx ->
        let user = a.Core.Allocator.malloc ctx 64 in
        a.Core.Allocator.free ctx user;
        M.write_mem ctx user)
  in
  Alcotest.(check (list string)) "use-after-free" [ "use-after-free" ]
    (List.map Checker.kind_label (kinds check))

let test_out_of_bounds_touch_detected () =
  let check =
    with_serial_alloc (fun a ctx ->
        let user = a.Core.Allocator.malloc ctx 64 in
        let usable = a.Core.Allocator.usable_size user in
        M.touch_range ctx user ~len:(usable + 128);
        a.Core.Allocator.free ctx user)
  in
  Alcotest.(check (list string)) "out-of-bounds" [ "out-of-bounds" ]
    (List.map Checker.kind_label (kinds check))

let test_clean_reuse_stays_clean () =
  (* Malloc/write/free/realloc churn with blocks recycled across
     iterations: the reset-on-alloc rule must keep reuse from reading
     as a race or a stale sanitizer state. *)
  let check =
    with_serial_alloc (fun a ctx ->
        for _ = 1 to 100 do
          let u = a.Core.Allocator.malloc ctx 48 in
          M.write_mem ctx u;
          let u' = Core.Allocator.realloc a ctx u 200 in
          M.write_mem ctx u';
          a.Core.Allocator.free ctx u'
        done)
  in
  Alcotest.(check int) "clean" 0 (Checker.finding_count check)

(* --- non-perturbation --------------------------------------------------- *)

let test_checking_does_not_perturb () =
  let params =
    { B1.default with B1.workers = 3; iterations = 400; paper_iterations = 400 }
  in
  let dark = B1.run params in
  let lit =
    Core.Check.Ctl.arm true;
    Fun.protect
      ~finally:(fun () -> Core.Check.Ctl.arm false)
      (fun () -> B1.run params)
  in
  (match Core.Check.Collect.drain () with
  | [ (_, c) ] -> Alcotest.(check int) "bench1 is clean" 0 (Checker.finding_count c)
  | runs -> Alcotest.failf "expected 1 checked run, got %d" (List.length runs));
  List.iter2
    (fun a b -> Alcotest.(check (float 0.)) "identical elapsed" a b)
    dark.B1.elapsed_s lit.B1.elapsed_s;
  Alcotest.(check int) "identical ctx switches" dark.B1.ctx_switches lit.B1.ctx_switches;
  Alcotest.(check int) "identical contention" dark.B1.lock_contended_ops
    lit.B1.lock_contended_ops

let suite =
  [ Alcotest.test_case "null checker records nothing" `Quick test_null_checker_records_nothing;
    Alcotest.test_case "collect sorts, skips disarmed" `Quick
      test_collect_sorts_and_skips_disarmed;
    Alcotest.test_case "unlocked shared write is a race" `Quick
      test_unlocked_shared_write_is_a_race;
    Alcotest.test_case "common lock suppresses race" `Quick test_common_lock_suppresses_race;
    Alcotest.test_case "lockset refinement" `Quick test_lockset_refinement;
    Alcotest.test_case "two-mutex deadlock reports cycle" `Quick
      test_two_mutex_deadlock_reports_cycle;
    Alcotest.test_case "double-free detected and survived" `Quick
      test_double_free_detected_and_survived;
    Alcotest.test_case "use-after-free detected" `Quick test_use_after_free_detected;
    Alcotest.test_case "out-of-bounds touch detected" `Quick test_out_of_bounds_touch_detected;
    Alcotest.test_case "clean reuse stays clean" `Quick test_clean_reuse_stays_clean;
    Alcotest.test_case "checking does not perturb runs" `Quick test_checking_does_not_perturb
  ]
