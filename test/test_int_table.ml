(* Property tests for the open-addressing int-keyed table: an arbitrary
   interleaving of set/remove/find must match a Hashtbl reference model,
   including after backward-shift deletions and growth. Key ranges are
   kept small so chains of colliding and re-colliding keys are common. *)

module T = Mb_sim.Int_table

type op = Set of int * int | Remove of int | Find of int

let op_gen =
  QCheck.Gen.(
    (* Small keys collide after masking; the occasional huge or negative
       key exercises the full hash range. *)
    let key =
      frequency
        [ (8, int_range (-20) 20);
          (1, map (fun k -> k * 0x1_0000_0001) (int_range (-1000) 1000));
          (1, int_range (min_int + 1) max_int);
        ]
    in
    frequency
      [ (5, map2 (fun k v -> Set (k, v)) key (int_bound 1000));
        (3, map (fun k -> Remove k) key);
        (2, map (fun k -> Find k) key);
      ])

let ops_arb =
  QCheck.make
    ~print:(fun ops ->
      String.concat ";"
        (List.map
           (function
             | Set (k, v) -> Printf.sprintf "set %d %d" k v
             | Remove k -> Printf.sprintf "rm %d" k
             | Find k -> Printf.sprintf "find %d" k)
           ops))
    QCheck.Gen.(list_size (int_range 0 500) op_gen)

let prop_fuzz_vs_hashtbl =
  QCheck.Test.make ~name:"set/remove/find fuzz matches Hashtbl" ~count:300 ops_arb (fun ops ->
      let t = T.create ~initial:8 () in
      let h = Hashtbl.create 8 in
      List.for_all
        (fun op ->
          (match op with
          | Set (k, v) ->
              T.set t k v;
              Hashtbl.replace h k v
          | Remove k ->
              T.remove t k;
              Hashtbl.remove h k
          | Find _ -> ());
          match op with
          | Find k | Set (k, _) | Remove k ->
              T.find_opt t k = Hashtbl.find_opt h k
              && T.mem t k = Hashtbl.mem h k
              && T.length t = Hashtbl.length h)
        ops)

let prop_fold_matches_hashtbl =
  QCheck.Test.make ~name:"iter/fold see exactly the live bindings" ~count:200 ops_arb
    (fun ops ->
      let t = T.create () in
      let h = Hashtbl.create 8 in
      List.iter
        (function
          | Set (k, v) ->
              T.set t k v;
              Hashtbl.replace h k v
          | Remove k ->
              T.remove t k;
              Hashtbl.remove h k
          | Find _ -> ())
        ops;
      let sorted l = List.sort compare l in
      let via_fold = T.fold (fun k v acc -> (k, v) :: acc) t [] in
      let via_iter = ref [] in
      T.iter (fun k v -> via_iter := (k, v) :: !via_iter) t;
      let reference = Hashtbl.fold (fun k v acc -> (k, v) :: acc) h [] in
      sorted via_fold = sorted reference && sorted !via_iter = sorted reference)

(* Backward-shift deletion: at 3/4 load a small table is dense with
   probe chains, so removing every other key exercises hole-filling in
   the middle of chains; every survivor must stay reachable with its
   value, and re-inserting the removed keys must still work. *)
let test_delete_from_chain () =
  let t = T.create ~initial:8 () in
  let n = 96 in
  for k = 1 to n do
    T.set t k (k * 10)
  done;
  for k = 1 to n do
    if k mod 2 = 0 then T.remove t k
  done;
  for k = 1 to n do
    Alcotest.(check (option int))
      (Printf.sprintf "key %d after deletions" k)
      (if k mod 2 = 0 then None else Some (k * 10))
      (T.find_opt t k)
  done;
  for k = 1 to n do
    if k mod 2 = 0 then T.set t k (k * 100)
  done;
  for k = 1 to n do
    Alcotest.(check (option int))
      (Printf.sprintf "key %d after reinsert" k)
      (Some (if k mod 2 = 0 then k * 100 else k * 10))
      (T.find_opt t k)
  done

let test_reserved_key () =
  let t = T.create () in
  Alcotest.check_raises "min_int rejected" (Invalid_argument "Int_table.set: reserved key")
    (fun () -> T.set t min_int 1);
  (* Lookups and removals of the sentinel are simply misses. *)
  Alcotest.(check bool) "mem min_int" false (T.mem t min_int);
  Alcotest.(check (option int)) "find min_int" None (T.find_opt t min_int);
  T.remove t min_int;
  Alcotest.(check int) "length untouched" 0 (T.length t)

let test_find_exn () =
  let t = T.create () in
  T.set t 7 42;
  Alcotest.(check int) "hit" 42 (T.find_exn t 7);
  Alcotest.check_raises "miss" Not_found (fun () -> ignore (T.find_exn t 8))

let test_clear () =
  let t = T.create () in
  for i = 0 to 99 do
    T.set t i i
  done;
  T.clear t;
  Alcotest.(check int) "empty after clear" 0 (T.length t);
  Alcotest.(check bool) "no stale binding" false (T.mem t 5);
  T.set t 5 1;
  Alcotest.(check (option int)) "usable after clear" (Some 1) (T.find_opt t 5)

let suite =
  [ QCheck_alcotest.to_alcotest prop_fuzz_vs_hashtbl;
    QCheck_alcotest.to_alcotest prop_fold_matches_hashtbl;
    Alcotest.test_case "delete from probe chain" `Quick test_delete_from_chain;
    Alcotest.test_case "reserved key" `Quick test_reserved_key;
    Alcotest.test_case "find_exn" `Quick test_find_exn;
    Alcotest.test_case "clear" `Quick test_clear;
  ]
