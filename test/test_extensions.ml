(* Tests for the extensions beyond the paper's core systems: the derived
   C API (calloc/realloc/memalign), Hoard, ptmalloc's mallopt/mallinfo,
   glibc-2.3-style fastbins, and the kernel-lock model for VM syscalls. *)

module M = Core.Machine
module A = Core.Allocator

let config = { M.default_config with M.cpus = 2; op_jitter = 0. }

let in_thread ?(config = config) body =
  let m = M.create ~seed:1 config in
  let p = M.create_proc m () in
  ignore (M.spawn p (fun ctx -> body m p ctx));
  M.run m

let ptmalloc_of p = Core.Ptmalloc.make p ()

(* --- derived C API ------------------------------------------------------ *)

let test_calloc_zeroes_and_pages () =
  in_thread (fun _ p ctx ->
      let alloc = Core.Ptmalloc.allocator (ptmalloc_of p) in
      let before = Core.Address_space.minor_faults (M.proc_vm p) in
      let user = A.calloc alloc ctx ~count:100 ~size:41 in
      Alcotest.(check bool) "usable covers" true (alloc.A.usable_size user >= 4100);
      (* zeroing demand-pages the whole block *)
      Alcotest.(check bool) "pages touched" true
        (Core.Address_space.minor_faults (M.proc_vm p) - before >= 1);
      alloc.A.free ctx user)

let test_calloc_overflow () =
  in_thread (fun _ p ctx ->
      let alloc = Core.Ptmalloc.allocator (ptmalloc_of p) in
      Alcotest.check_raises "overflow" (Invalid_argument "Allocator.calloc: overflow") (fun () ->
          ignore (A.calloc alloc ctx ~count:max_int ~size:16)))

let test_realloc_in_place_and_move () =
  in_thread (fun _ p ctx ->
      let alloc = Core.Ptmalloc.allocator (ptmalloc_of p) in
      let user = alloc.A.malloc ctx 100 in
      let shrunk = A.realloc alloc ctx user 50 in
      Alcotest.(check int) "shrink in place" user shrunk;
      let same = A.realloc alloc ctx user (alloc.A.usable_size user) in
      Alcotest.(check int) "fitting growth in place" user same;
      let moved = A.realloc alloc ctx user 10_000 in
      Alcotest.(check bool) "large growth moves" true (moved <> user);
      Alcotest.(check bool) "new block big enough" true (alloc.A.usable_size moved >= 10_000);
      alloc.A.free ctx moved;
      (match alloc.A.validate () with Ok () -> () | Error m -> Alcotest.fail m);
      Alcotest.(check int) "old block was freed" 0 alloc.A.stats.Core.Astats.live_bytes)

let test_realloc_null_and_zero () =
  in_thread (fun _ p ctx ->
      let alloc = Core.Ptmalloc.allocator (ptmalloc_of p) in
      let user = A.realloc alloc ctx 0 64 in
      Alcotest.(check bool) "realloc(0,n) mallocs" true (user <> 0);
      Alcotest.(check int) "realloc(p,0) frees" 0 (A.realloc alloc ctx user 0);
      Alcotest.(check int) "drained" 0 alloc.A.stats.Core.Astats.live_bytes)

let test_realloc_cost_charged () =
  in_thread (fun _ p ctx ->
      let alloc = Core.Ptmalloc.allocator (ptmalloc_of p) in
      let user = alloc.A.malloc ctx 4096 in
      M.touch_range ctx user ~len:4096;
      let t0 = M.now ctx in
      let moved = A.realloc alloc ctx user 20_000 in
      let elapsed_cycles = (M.now ctx -. t0) /. M.cycles_to_ns (M.machine ctx) 1.0 in
      Alcotest.(check bool) "copy cost visible" true
        (elapsed_cycles >= float_of_int (A.copy_cost_cycles 4096));
      alloc.A.free ctx moved)

let test_memalign () =
  in_thread (fun _ p ctx ->
      let alloc = Core.Ptmalloc.allocator (ptmalloc_of p) in
      List.iter
        (fun align ->
          let user = A.memalign alloc ctx ~alignment:align 100 in
          Alcotest.(check int) (Printf.sprintf "aligned to %d" align) 0 (user mod align);
          A.free_aligned alloc ctx user)
        [ 16; 64; 256; 4096 ];
      Alcotest.check_raises "bad alignment"
        (Invalid_argument "Allocator.memalign: alignment not a power of two") (fun () ->
          ignore (A.memalign alloc ctx ~alignment:48 10));
      Alcotest.(check int) "all drained" 0 alloc.A.stats.Core.Astats.live_bytes)

let test_cost_helpers () =
  Alcotest.(check int) "zero cost" 512 (A.zero_cost_cycles 4096);
  Alcotest.(check int) "copy cost" 1024 (A.copy_cost_cycles 4096)

(* --- memalign x realloc x free interleavings ----------------------------- *)

(* Random op sequences mixing memalign, realloc (including realloc of a
   memalign'd block — the aligned user address is not a chunk start, so
   it must be resolved through the origins table), raw [free] of aligned
   blocks, and [free_aligned]. After draining everything the heap must
   still validate, the origins table must hold no leaked entries, and no
   bytes may remain live. *)

type heap_op =
  | Op_memalign of int * int  (* alignment exponent, size *)
  | Op_malloc of int
  | Op_realloc of int * int   (* victim index hint, new size *)
  | Op_free_raw of int
  | Op_free_aligned of int

let heap_op_gen =
  QCheck.Gen.(
    frequency
      [ (3, map2 (fun a s -> Op_memalign (a, s)) (int_range 4 9) (int_range 1 600));
        (2, map (fun s -> Op_malloc s) (int_range 1 600));
        (3, map2 (fun i s -> Op_realloc (i, s)) nat (int_range 1 2000));
        (2, map (fun i -> Op_free_raw i) nat);
        (2, map (fun i -> Op_free_aligned i) nat) ])

let show_heap_op = function
  | Op_memalign (a, s) -> Printf.sprintf "memalign(%d,%d)" (1 lsl a) s
  | Op_malloc s -> Printf.sprintf "malloc(%d)" s
  | Op_realloc (i, s) -> Printf.sprintf "realloc(#%d,%d)" i s
  | Op_free_raw i -> Printf.sprintf "free(#%d)" i
  | Op_free_aligned i -> Printf.sprintf "free_aligned(#%d)" i

let heap_ops_arb =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map show_heap_op ops))
    QCheck.Gen.(list_size (int_range 1 80) heap_op_gen)

let run_heap_ops mk ops =
  let failure = ref None in
  in_thread (fun _ p ctx ->
      let alloc = mk p in
      let live = ref [] in
      let pick i =
        match !live with [] -> None | l -> Some (List.nth l (i mod List.length l))
      in
      let drop u = live := List.filter (fun v -> v <> u) !live in
      List.iter
        (fun op ->
          match op with
          | Op_memalign (a, s) ->
              live := A.memalign alloc ctx ~alignment:(1 lsl a) s :: !live
          | Op_malloc s -> live := alloc.A.malloc ctx s :: !live
          | Op_realloc (i, s) -> (
              match pick i with
              | None -> live := alloc.A.malloc ctx s :: !live
              | Some u ->
                  drop u;
                  live := A.realloc alloc ctx u s :: !live)
          | Op_free_raw i -> (
              match pick i with
              | None -> ()
              | Some u ->
                  drop u;
                  alloc.A.free ctx u)
          | Op_free_aligned i -> (
              match pick i with
              | None -> ()
              | Some u ->
                  drop u;
                  A.free_aligned alloc ctx u))
        ops;
      List.iter (fun u -> alloc.A.free ctx u) !live;
      match alloc.A.validate () with
      | Error m -> failure := Some ("heap invalid: " ^ m)
      | Ok () ->
          if Hashtbl.length alloc.A.origins <> 0 then
            failure :=
              Some (Printf.sprintf "origins leaked %d entries" (Hashtbl.length alloc.A.origins))
          else if alloc.A.stats.Core.Astats.live_bytes <> 0 then
            failure :=
              Some (Printf.sprintf "%d bytes still live" alloc.A.stats.Core.Astats.live_bytes));
  match !failure with None -> true | Some m -> QCheck.Test.fail_report m

let prop_memalign_realloc_free =
  QCheck.Test.make ~name:"memalign x realloc x free: heap valid, origins drained" ~count:60
    heap_ops_arb
    (fun ops ->
      run_heap_ops (fun p -> Core.Ptmalloc.allocator (ptmalloc_of p)) ops
      && run_heap_ops (fun p -> Core.Serial.allocator (Core.Serial.make p ())) ops)

(* --- Hoard --------------------------------------------------------------- *)

let test_hoard_heap_hashing () =
  in_thread (fun m p _ ->
      ignore m;
      let h = Core.Hoard.make p ~heap_count:3 () in
      Alcotest.(check int) "tid 0" 1 (Core.Hoard.heap_of_thread h 0);
      Alcotest.(check int) "tid 2" 3 (Core.Hoard.heap_of_thread h 2);
      Alcotest.(check int) "tid 3 wraps" 1 (Core.Hoard.heap_of_thread h 3))

let test_hoard_superblock_reuse () =
  in_thread (fun _ p ctx ->
      let h = Core.Hoard.make p () in
      let alloc = Core.Hoard.allocator h in
      let blocks = List.init 50 (fun _ -> alloc.A.malloc ctx 40) in
      let sbs = Core.Hoard.superblock_count h in
      List.iter (fun u -> alloc.A.free ctx u) blocks;
      let again = List.init 50 (fun _ -> alloc.A.malloc ctx 40) in
      Alcotest.(check int) "no new superblocks on reuse" sbs (Core.Hoard.superblock_count h);
      List.iter (fun u -> alloc.A.free ctx u) again;
      match alloc.A.validate () with Ok () -> () | Error m -> Alcotest.fail m)

let test_hoard_emptiness_invariant () =
  (* Fill a thread heap with many superblocks, free everything: the
     emptiness invariant must ship superblocks to the global heap. *)
  in_thread (fun _ p ctx ->
      let h = Core.Hoard.make p ~slack:2 () in
      let alloc = Core.Hoard.allocator h in
      let blocks = List.init 2_000 (fun _ -> alloc.A.malloc ctx 64) in
      Alcotest.(check int) "nothing global while full" 0 (Core.Hoard.global_superblocks h);
      List.iter (fun u -> alloc.A.free ctx u) blocks;
      Alcotest.(check bool) "superblocks recycled to heap 0" true
        (Core.Hoard.global_superblocks h > 0);
      Alcotest.(check bool) "transfers recorded" true (Core.Hoard.transfers_to_global h > 0);
      match alloc.A.validate () with Ok () -> () | Error m -> Alcotest.fail m)

let test_hoard_blowup_bound () =
  (* Producer/consumer churn across threads must not grow held memory
     beyond O(live + slack): the failure mode benchmark 2 shows for
     ptmalloc cannot happen here. *)
  let m = M.create ~seed:3 { config with M.cpus = 2 } in
  let p = M.create_proc m () in
  let h = Core.Hoard.make p ~slack:2 () in
  let alloc = Core.Hoard.allocator h in
  let mailbox = ref [] in
  let producer =
    M.spawn p ~name:"producer" (fun ctx ->
        for _ = 1 to 20 do
          let batch = List.init 100 (fun _ -> alloc.A.malloc ctx 64) in
          mailbox := batch :: !mailbox;
          M.work ctx 20_000
        done)
  in
  ignore
    (M.spawn p ~name:"consumer" (fun ctx ->
         M.join ctx producer;
         List.iter (fun batch -> List.iter (fun u -> alloc.A.free ctx u) batch) !mailbox));
  M.run m;
  let heap_count = (M.config m).M.cpus in
  let bound = (2 + 1) * 8192 * (heap_count + 1) * 14 in
  Alcotest.(check bool) "held bytes bounded after full drain" true (Core.Hoard.held_bytes h <= bound);
  Alcotest.(check int) "nothing live" 0 alloc.A.stats.Core.Astats.live_bytes

let test_hoard_foreign_free_counts () =
  let m = M.create ~seed:3 config in
  let p = M.create_proc m () in
  let h = Core.Hoard.make p ~heap_count:4 () in
  let alloc = Core.Hoard.allocator h in
  let handoff = ref [] in
  let producer = M.spawn p (fun ctx -> handoff := List.init 30 (fun _ -> alloc.A.malloc ctx 48)) in
  ignore
    (M.spawn p (fun ctx ->
         M.join ctx producer;
         List.iter (fun u -> alloc.A.free ctx u) !handoff));
  M.run m;
  Alcotest.(check bool) "foreign frees counted" true (alloc.A.stats.Core.Astats.foreign_frees > 0)

(* --- mallopt / mallinfo ---------------------------------------------------- *)

let test_mallopt_mmap_threshold () =
  in_thread (fun _ p ctx ->
      let pt = ptmalloc_of p in
      let alloc = Core.Ptmalloc.allocator pt in
      let u1 = alloc.A.malloc ctx 8192 in
      Alcotest.(check int) "8KB from the arena by default" 0
        alloc.A.stats.Core.Astats.mmapped_chunks;
      Core.Ptmalloc.mallopt pt (Core.Ptmalloc.Mmap_threshold 4096);
      let u2 = alloc.A.malloc ctx 8192 in
      Alcotest.(check int) "rerouted to mmap" 1 alloc.A.stats.Core.Astats.mmapped_chunks;
      alloc.A.free ctx u1;
      alloc.A.free ctx u2)

let test_mallopt_validation () =
  in_thread (fun _ p _ ->
      let pt = ptmalloc_of p in
      Alcotest.check_raises "bad threshold" (Invalid_argument "mallopt: M_MMAP_THRESHOLD <= 0")
        (fun () -> Core.Ptmalloc.mallopt pt (Core.Ptmalloc.Mmap_threshold 0)))

let test_mallinfo_accounting () =
  in_thread (fun _ p ctx ->
      let pt = ptmalloc_of p in
      let alloc = Core.Ptmalloc.allocator pt in
      let blocks = List.init 10 (fun _ -> alloc.A.malloc ctx 100) in
      let big = alloc.A.malloc ctx 200_000 in
      let info = Core.Ptmalloc.mallinfo pt in
      Alcotest.(check int) "one arena" 1 info.Core.Ptmalloc.narenas;
      Alcotest.(check int) "one mmapped block" 1 info.Core.Ptmalloc.hblks;
      Alcotest.(check bool) "mmapped bytes cover request" true (info.Core.Ptmalloc.hblkhd >= 200_000);
      Alcotest.(check bool) "used covers the small blocks" true
        (info.Core.Ptmalloc.uordblks >= 10 * 100);
      Alcotest.(check bool) "segment = used + free" true
        (info.Core.Ptmalloc.arena = info.Core.Ptmalloc.uordblks + info.Core.Ptmalloc.fordblks);
      List.iter (fun u -> alloc.A.free ctx u) (big :: blocks);
      let drained = Core.Ptmalloc.mallinfo pt in
      Alcotest.(check int) "nothing used after drain" 0 drained.Core.Ptmalloc.uordblks;
      Alcotest.(check int) "mmap returned" 0 drained.Core.Ptmalloc.hblks)

(* --- fastbins ---------------------------------------------------------------- *)

let fast_params = { Core.Dlheap.default_params with Core.Dlheap.use_fastbins = true }

let with_fast_heap body =
  in_thread (fun _ p ctx ->
      let stats = Core.Astats.create () in
      let heap = Core.Dlheap.create_main p ~costs:Core.Costs.glibc ~params:fast_params ~stats in
      body heap ctx)

let falloc heap ctx size =
  match Core.Dlheap.malloc heap ctx size with
  | Some u -> u
  | None -> Alcotest.fail "allocation failed"

let test_fastbin_lifo_reuse () =
  with_fast_heap (fun heap ctx ->
      let a = falloc heap ctx 40 in
      let _pin = falloc heap ctx 40 in
      Core.Dlheap.free heap ctx a;
      Alcotest.(check int) "parked in fastbin" 1 (Core.Dlheap.fastbin_chunks heap);
      let b = falloc heap ctx 40 in
      Alcotest.(check int) "LIFO same address" a b;
      Alcotest.(check int) "fastbin drained" 0 (Core.Dlheap.fastbin_chunks heap);
      match Core.Dlheap.validate heap with Ok () -> () | Error m -> Alcotest.fail m)

let test_fastbin_no_coalescing () =
  with_fast_heap (fun heap ctx ->
      let a = falloc heap ctx 40 in
      let b = falloc heap ctx 40 in
      let _pin = falloc heap ctx 40 in
      Core.Dlheap.free heap ctx a;
      Core.Dlheap.free heap ctx b;
      (* adjacent frees stay separate in fastbins *)
      Alcotest.(check int) "both parked, unmerged" 2 (Core.Dlheap.fastbin_chunks heap);
      match Core.Dlheap.validate heap with Ok () -> () | Error m -> Alcotest.fail m)

let test_fastbin_double_free_detected () =
  with_fast_heap (fun heap ctx ->
      let a = falloc heap ctx 40 in
      let _pin = falloc heap ctx 40 in
      Core.Dlheap.free heap ctx a;
      Alcotest.check_raises "double free" (Invalid_argument "Dlheap.free: double free (fastbin)")
        (fun () -> Core.Dlheap.free heap ctx a))

let test_fastbin_consolidation () =
  with_fast_heap (fun heap ctx ->
      let blocks = List.init 20 (fun _ -> falloc heap ctx 40) in
      List.iter (fun u -> Core.Dlheap.free heap ctx u) blocks;
      Alcotest.(check int) "all parked" 20 (Core.Dlheap.fastbin_chunks heap);
      let drained = Core.Dlheap.consolidate heap ctx in
      Alcotest.(check int) "all drained" 20 drained;
      Alcotest.(check int) "fastbins empty" 0 (Core.Dlheap.fastbin_chunks heap);
      Alcotest.(check int) "coalesced into top" 0 (Core.Dlheap.live_chunks heap);
      match Core.Dlheap.validate heap with Ok () -> () | Error m -> Alcotest.fail m)

let test_fastbin_large_sizes_bypass () =
  with_fast_heap (fun heap ctx ->
      let a = falloc heap ctx 500 in
      let _pin = falloc heap ctx 40 in
      Core.Dlheap.free heap ctx a;
      Alcotest.(check int) "large chunk not fastbinned" 0 (Core.Dlheap.fastbin_chunks heap))

(* --- kernel lock on VM syscalls ---------------------------------------------- *)

let bkl_blocks with_bkl =
  let cfg = { config with M.cpus = 4; vm_syscalls_take_bkl = with_bkl; spin_cycles = 0 } in
  let m = M.create ~seed:5 cfg in
  let machine_for_stats = m in
  let blocks = ref 0 in
  let procs = List.init 4 (fun i -> M.create_proc m ~name:(string_of_int i) ()) in
  let threads =
    List.map
      (fun p ->
        M.spawn p (fun ctx ->
            for _ = 1 to 50 do
              match M.mmap ctx ~len:8192 with
              | Some a -> M.munmap ctx a ~len:8192
              | None -> Alcotest.fail "mmap failed"
            done))
      procs
  in
  M.run m;
  List.iter (fun th -> blocks := !blocks + (M.thread_stats th).M.blocks) threads;
  (!blocks, M.kernel_lock_contentions machine_for_stats)

let test_bkl_serializes_across_processes () =
  let blocks_on, contended_on = bkl_blocks true in
  let blocks_off, contended_off = bkl_blocks false in
  Alcotest.(check bool) "BKL causes blocking" true (blocks_on > 0);
  Alcotest.(check bool) "contention counted" true (contended_on > 0);
  Alcotest.(check int) "no BKL, no blocking" 0 blocks_off;
  Alcotest.(check int) "no BKL, no contention" 0 contended_off

let suite =
  [ Alcotest.test_case "calloc zeroes and pages" `Quick test_calloc_zeroes_and_pages;
    Alcotest.test_case "calloc overflow" `Quick test_calloc_overflow;
    Alcotest.test_case "realloc in place / move" `Quick test_realloc_in_place_and_move;
    Alcotest.test_case "realloc null/zero" `Quick test_realloc_null_and_zero;
    Alcotest.test_case "realloc copy cost" `Quick test_realloc_cost_charged;
    Alcotest.test_case "memalign" `Quick test_memalign;
    Alcotest.test_case "cost helpers" `Quick test_cost_helpers;
    QCheck_alcotest.to_alcotest prop_memalign_realloc_free;
    Alcotest.test_case "hoard: heap hashing" `Quick test_hoard_heap_hashing;
    Alcotest.test_case "hoard: superblock reuse" `Quick test_hoard_superblock_reuse;
    Alcotest.test_case "hoard: emptiness invariant" `Quick test_hoard_emptiness_invariant;
    Alcotest.test_case "hoard: blowup bound" `Quick test_hoard_blowup_bound;
    Alcotest.test_case "hoard: foreign frees" `Quick test_hoard_foreign_free_counts;
    Alcotest.test_case "mallopt: mmap threshold" `Quick test_mallopt_mmap_threshold;
    Alcotest.test_case "mallopt: validation" `Quick test_mallopt_validation;
    Alcotest.test_case "mallinfo accounting" `Quick test_mallinfo_accounting;
    Alcotest.test_case "fastbin: LIFO reuse" `Quick test_fastbin_lifo_reuse;
    Alcotest.test_case "fastbin: no coalescing" `Quick test_fastbin_no_coalescing;
    Alcotest.test_case "fastbin: double free" `Quick test_fastbin_double_free_detected;
    Alcotest.test_case "fastbin: consolidation" `Quick test_fastbin_consolidation;
    Alcotest.test_case "fastbin: large bypass" `Quick test_fastbin_large_sizes_bypass;
    Alcotest.test_case "kernel lock serializes VM syscalls" `Quick test_bkl_serializes_across_processes;
  ]
