(* Property tests for the event heap (now 4-ary): pop order must be
   exactly (time, seq) — earliest time first, FIFO among equal times —
   and interleaved push/pop must track a sorted-list reference model.
   The payloads are insertion indices so the checks see the seq order. *)

module Pq = Mb_sim.Pqueue

(* Coarse times (multiples of 1.0 from a small range) force plenty of
   ties, which is where the seq tie-break earns its keep. *)
let coarse_times = QCheck.(list_of_size Gen.(int_range 0 300) (map float_of_int (int_bound 20)))

let drain q =
  let rec go acc =
    match Pq.pop q with Some (time, v) -> go ((time, v) :: acc) | None -> List.rev acc
  in
  go []

let prop_pop_is_time_seq_sorted =
  QCheck.Test.make ~name:"pop order is sorted by (time, seq)" ~count:500 coarse_times
    (fun times ->
      let q = Pq.create () in
      List.iteri (fun i time -> Pq.push q ~time i) times;
      let popped = drain q in
      (* Reference: stable sort by time keeps insertion order among ties,
         which is exactly the (time, seq) total order. *)
      let expected =
        List.stable_sort
          (fun (t1, _) (t2, _) -> compare t1 t2)
          (List.mapi (fun i time -> (time, i)) times)
      in
      popped = expected)

(* The reference model for the fuzz: a list kept sorted by (time, seq),
   with a running seq counter mirroring the queue's. *)
module Model = struct
  type t = { mutable entries : (float * int * int) list; mutable next_seq : int }

  let create () = { entries = []; next_seq = 0 }

  let push m time payload =
    let seq = m.next_seq in
    m.next_seq <- seq + 1;
    let rec insert = function
      | [] -> [ (time, seq, payload) ]
      | ((t, s, _) as hd) :: tl ->
          if time < t || (time = t && seq < s) then (time, seq, payload) :: hd :: tl
          else hd :: insert tl
    in
    m.entries <- insert m.entries

  let pop m =
    match m.entries with
    | [] -> None
    | (t, _, payload) :: tl ->
        m.entries <- tl;
        Some (t, payload)
end

let ops_gen =
  (* true -> push at the given time; false -> pop (time ignored) *)
  QCheck.(list_of_size Gen.(int_range 0 400) (pair bool (map float_of_int (int_bound 10))))

let prop_fuzz_vs_model =
  QCheck.Test.make ~name:"push/pop fuzz matches sorted-list model" ~count:300 ops_gen
    (fun ops ->
      let q = Pq.create () in
      let m = Model.create () in
      let payload = ref 0 in
      List.for_all
        (fun (is_push, time) ->
          if is_push then begin
            Pq.push q ~time !payload;
            Model.push m time !payload;
            incr payload;
            Pq.length q = List.length m.Model.entries
          end
          else begin
            let got = Pq.pop q and want = Model.pop m in
            got = want && Pq.peek_time q = (match m.Model.entries with
                                            | [] -> None
                                            | (t, _, _) :: _ -> Some t)
          end)
        ops)

let test_peek_matches_pop () =
  let q = Pq.create () in
  List.iter (fun t -> Pq.push q ~time:t ()) [ 5.; 1.; 3.; 1.; 9. ];
  let rec go () =
    match Pq.peek_time q with
    | None -> Alcotest.(check bool) "drained" true (Pq.is_empty q)
    | Some t -> (
        match Pq.pop q with
        | Some (t', ()) ->
            Alcotest.(check (float 0.)) "peek equals pop time" t t';
            go ()
        | None -> Alcotest.fail "peek said non-empty but pop returned None")
  in
  go ()

let suite =
  [ QCheck_alcotest.to_alcotest prop_pop_is_time_seq_sorted;
    QCheck_alcotest.to_alcotest prop_fuzz_vs_model;
    Alcotest.test_case "peek/pop agree" `Quick test_peek_matches_pop;
  ]
