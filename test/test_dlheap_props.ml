(* Property suite for the dlheap small-bin fast path and the parallel
   drain offload.

   Front A's contract is transparency: the exact-fit LIFO stacks and
   the bin-occupancy bitmap may only change host-side work, never the
   addresses handed out or the simulated time charged. Front B's
   contract is the executor's usual one: staging trace serialization
   and checker growth on crew domains must leave every observable —
   trace bytes, counters, findings — identical at any domain count.
   Both are checked here over randomized inputs, plus one golden
   scripted address stream pinning the exact-fit layout. *)

module M = Core.Machine
module Dlheap = Core.Dlheap
module A = Core.Allocator
module R = Core.Obs.Recorder
module Checker = Core.Check.Checker

let config = { M.default_config with M.cpus = 1; op_jitter = 0. }

(* --- random alloc/free/realloc/memalign mixes -------------------------- *)

type op =
  | Malloc of int
  | Free of int             (* index into the live list *)
  | Realloc of int * int    (* index, new size *)
  | Memalign of int * int   (* log2 alignment, size *)

let op_gen =
  QCheck.Gen.(
    (* sizes biased into the 62 exact-spacing bins (requests < ~504
       bytes), with a tail of larger requests that take the general
       first-fit / top path *)
    let size = oneof [ int_range 1 500; int_range 1 40; int_range 500 4000 ] in
    frequency
      [ (5, map (fun n -> Malloc n) size);
        (4, map (fun i -> Free i) (int_bound 1000));
        (2, map2 (fun i n -> Realloc (i, n)) (int_bound 1000) size);
        (1, map2 (fun k n -> Memalign (k, n)) (int_range 3 9) size);
      ])

let print_op = function
  | Malloc n -> Printf.sprintf "malloc %d" n
  | Free i -> Printf.sprintf "free #%d" i
  | Realloc (i, n) -> Printf.sprintf "realloc #%d %d" i n
  | Memalign (k, n) -> Printf.sprintf "memalign 2^%d %d" k n

let ops_arb =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map print_op ops))
    QCheck.Gen.(list_size (int_range 1 120) op_gen)

(* Replay [ops] against a fresh ptmalloc over a dlheap with [params].
   The model is the live list: every block's request size, usable size
   and alignment are checked as it appears, and the whole set is
   checked pairwise-disjoint after every operation. Returns the
   fingerprint the transparency property compares: every address the
   allocator returned, in order, plus the simulated clock at the end
   (so a fast path that charged even one cycle differently fails). *)
let run_ops ~params ops =
  let out = Buffer.create 512 in
  let m = M.create ~seed:1 config in
  let p = M.create_proc m () in
  let pt = Core.Ptmalloc.make p ~params () in
  let alloc = Core.Ptmalloc.allocator pt in
  let fail = ref None in
  let check cond msg = if !fail = None && not cond then fail := Some msg in
  ignore
    (M.spawn p (fun ctx ->
         (* (addr, span) newest first; [span] is the usable size for
            plain blocks and the request size for blocks that may sit
            at a memalign offset ([usable_size] only answers for raw
            chunk addresses, and user spans are subsets of their chunk
            either way, so disjointness stays sound) *)
         let live = ref [] in
         let disjoint () =
           let spans =
             List.map (fun (a, sp) -> (a, a + sp)) !live |> List.sort compare
           in
           let rec walk = function
             | (_, e1) :: ((s2, _) :: _ as rest) ->
                 check (e1 <= s2) "live blocks overlap";
                 walk rest
             | _ -> ()
           in
           walk spans
         in
         let note addr =
           Buffer.add_string out (string_of_int addr);
           Buffer.add_char out ';'
         in
         (* plain = certainly a raw chunk address (safe to usable_size);
            memalign results, and realloc results derived from them,
            may sit at an offset inside their chunk *)
         let plain = Hashtbl.create 64 in
         let pick i = List.nth !live (i mod List.length !live) in
         let drop addr =
           Hashtbl.remove plain addr;
           live := List.filter (fun (a, _) -> a <> addr) !live
         in
         List.iter
           (fun op ->
             (match op with
             | Malloc n ->
                 let a = alloc.A.malloc ctx n in
                 note a;
                 check (a mod 8 = 0) "malloc misaligned";
                 check (alloc.A.usable_size a >= n) "usable < request";
                 Hashtbl.replace plain a ();
                 live := (a, alloc.A.usable_size a) :: !live
             | Free i ->
                 if !live <> [] then begin
                   let a, _ = pick i in
                   drop a;
                   A.free_aligned alloc ctx a
                 end
             | Realloc (i, n) ->
                 if !live <> [] then begin
                   let a, _ = pick i in
                   let was_plain = Hashtbl.mem plain a in
                   drop a;
                   let b = A.realloc alloc ctx a n in
                   note b;
                   if was_plain || b <> a then begin
                     check (alloc.A.usable_size b >= n) "realloc usable < request";
                     Hashtbl.replace plain b ();
                     live := (b, alloc.A.usable_size b) :: !live
                   end
                   else live := (b, n) :: !live
                 end
             | Memalign (k, n) ->
                 let align = 1 lsl k in
                 let a = A.memalign alloc ctx ~alignment:align n in
                 note a;
                 check (a mod align = 0) "memalign misaligned";
                 live := (a, n) :: !live);
             disjoint ();
             (match alloc.A.validate () with
             | Ok () -> ()
             | Error msg -> check false ("validate: " ^ msg)))
           ops;
         (* Drain everything: the empty heap must validate too, which
            in deferred mode forces binned-free bookkeeping to agree
            with the bitmap all the way down. *)
         List.iter (fun (a, _) -> A.free_aligned alloc ctx a) !live;
         (match alloc.A.validate () with
         | Ok () -> ()
         | Error msg -> check false ("final validate: " ^ msg));
         Buffer.add_string out (Printf.sprintf "t=%.17g" (M.now_ns m))));
  M.run m;
  (match !fail with
  | Some msg -> QCheck.Test.fail_reportf "%s" msg
  | None -> ());
  Buffer.contents out

let prop_exact_fit_transparent =
  QCheck.Test.make ~name:"exact-fit fast path is address- and cost-transparent"
    ~count:60 ops_arb (fun ops ->
      let fast = run_ops ~params:{ Dlheap.default_params with exact_fit = true } ops in
      let slow = run_ops ~params:{ Dlheap.default_params with exact_fit = false } ops in
      if fast <> slow then
        QCheck.Test.fail_reportf "streams diverge:\n  on : %s\n  off: %s" fast slow;
      true)

let prop_deferred_mode_valid =
  QCheck.Test.make ~name:"deferred coalescing keeps the heap valid" ~count:60
    ops_arb (fun ops ->
      (* run_ops validates after every op and after the final drain;
         reaching the end is the property *)
      ignore
        (run_ops ~params:{ Dlheap.default_params with defer_coalescing = true } ops);
      true)

(* --- golden address stream (exact mode) -------------------------------- *)

(* A scripted small-bin workout with pinned addresses: first-touch
   carving from top, LIFO reuse out of the 48-byte bin, exact binmap
   hit after a double free, and a split once the bin is empty again.
   Any change to bin indexing, LIFO order or the bitmap that leaks
   into placement moves one of these constants. *)
let test_golden_stream () =
  let seen = ref [] in
  let m = M.create ~seed:1 config in
  let p = M.create_proc m () in
  let stats = Core.Astats.create () in
  let heap =
    Dlheap.create_main p ~costs:Core.Costs.glibc ~params:Dlheap.default_params ~stats
  in
  ignore
    (M.spawn p (fun ctx ->
         let alloc n =
           match Dlheap.malloc heap ctx n with
           | Some a ->
               seen := a :: !seen;
               a
           | None -> Alcotest.fail "unexpected allocation failure"
         in
         let a = alloc 40 in
         let b = alloc 40 in
         let c = alloc 40 in
         let _pin = alloc 40 in
         Dlheap.free heap ctx a;
         Dlheap.free heap ctx c;
         (* 48-byte bin now holds c then a (LIFO): exact-fit pops c first *)
         Alcotest.(check int) "LIFO head is the last free" c (alloc 40);
         Alcotest.(check int) "then the earlier free" a (alloc 40);
         Dlheap.free heap ctx b;
         Alcotest.(check int) "exact binmap hit" b (alloc 40);
         (match Dlheap.validate heap with
         | Ok () -> ()
         | Error msg -> Alcotest.fail ("invariant violation: " ^ msg))));
  M.run m;
  let base, _ = Dlheap.segment_bounds heap in
  Alcotest.(check (list int))
    "golden address stream"
    [ 8; 56; 104; 152; 104; 8; 56 ]
    (List.rev_map (fun a -> a - base) !seen)

(* --- drain-offload determinism fuzz ------------------------------------ *)

(* The documented exception to byte-identity across domain counts: at
   domains > 1 the engine annotates park/unpark instants with the
   draining domain. Strip exactly that annotation before comparing. *)
let strip_domain_args s =
  let needle = ",\"domain\":\"" in
  let nn = String.length needle and n = String.length s in
  let b = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    if !i + nn <= n && String.sub s !i nn = needle then begin
      let j = ref (!i + nn) in
      while !j < n && s.[!j] <> '"' do
        incr j
      done;
      i := !j + 1
    end
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  Buffer.contents b

(* A traced, checked, contended workload at a given domain width. The
   shared unlocked write gives the checker a real finding to reproduce;
   the mutex traffic exercises the parallel windows (and so the trace-
   staging and checker-preflight side jobs). Fingerprint = normalized
   trace JSON + non-wall-clock counters + findings + final clock. *)
let offload_fingerprint ~domains progs =
  let obs = R.create ~trace:true ~metrics:true () in
  let check = Checker.create () in
  let m =
    M.create ~seed:11 ~obs ~check ~domains
      { M.default_config with M.cpus = 2; op_jitter = 0. }
  in
  let p = M.create_proc m ~name:"t" () in
  let mu = M.Mutex.create m ~name:"guard" () in
  let shared = M.libc_data_address + 0x400 in
  List.iteri
    (fun i segs ->
      ignore
        (M.spawn p ~name:(Printf.sprintf "w%d" i) (fun ctx ->
             List.iter
               (fun (locked, cycles) ->
                 if locked then begin
                   M.Mutex.lock mu ctx;
                   M.work_exact ctx (60 + cycles);
                   M.Mutex.unlock mu ctx
                 end
                 else begin
                   (* unlocked shared write: a deterministic race *)
                   M.write_mem ctx shared;
                   M.work_exact ctx (40 + cycles)
                 end)
               segs)))
    progs;
  M.run m;
  let trace = strip_domain_args (Core.Obs.Trace_json.to_string [ ("fuzz", obs) ]) in
  let counters =
    R.counters obs
    |> List.filter (fun (k, _) ->
           (* sched.domain.* only exists at domains > 1, and its _ns
              members are host wall-clock — both excluded by design *)
           not (String.length k >= 12 && String.sub k 0 12 = "sched.domain"))
    |> List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v)
    |> String.concat ";"
  in
  let findings =
    Checker.findings check
    |> List.map (fun f ->
           Printf.sprintf "%s@%d" (Checker.kind_label f.Checker.kind) f.Checker.addr)
    |> String.concat ";"
  in
  Printf.sprintf "%s|%s|%s|%.17g" trace counters findings (M.now_ns m)

let progs_gen =
  QCheck.make
    ~print:(fun progs ->
      String.concat " / "
        (List.map
           (fun segs ->
             String.concat ","
               (List.map (fun (l, c) -> Printf.sprintf "%c%d" (if l then 'L' else 'u') c) segs))
           progs))
    QCheck.Gen.(
      list_size (int_range 2 4)
        (list_size (int_range 5 40) (pair bool (int_bound 100))))

let prop_offload_deterministic =
  QCheck.Test.make
    ~name:"trace/check byte-identical at domains 1/2/4 under drain offload"
    ~count:12 progs_gen
    (fun progs ->
      let serial = offload_fingerprint ~domains:1 progs in
      let two = offload_fingerprint ~domains:2 progs in
      let four = offload_fingerprint ~domains:4 progs in
      if two <> serial then
        QCheck.Test.fail_reportf "domains=2 diverges from serial";
      if four <> serial then
        QCheck.Test.fail_reportf "domains=4 diverges from serial";
      true)

(* The fuzz above strips the annotation; make sure the staged-rendering
   path really ran under it at least once, so the property is not
   vacuously passing through the unstaged flush path. *)
let test_offload_actually_stages () =
  let progs = List.init 3 (fun i -> List.init 30 (fun j -> (j mod 3 <> 0, (i * 13 + j * 7) mod 90))) in
  let obs = R.create ~trace:true ~metrics:true () in
  let m =
    M.create ~seed:11 ~obs ~domains:2
      { M.default_config with M.cpus = 2; op_jitter = 0. }
  in
  let p = M.create_proc m ~name:"t" () in
  let mu = M.Mutex.create m () in
  List.iteri
    (fun i segs ->
      ignore
        (M.spawn p ~name:(Printf.sprintf "w%d" i) (fun ctx ->
             List.iter
               (fun (locked, cycles) ->
                 if locked then begin
                   M.Mutex.lock mu ctx;
                   M.work_exact ctx (60 + cycles);
                   M.Mutex.unlock mu ctx
                 end
                 else M.work_exact ctx (40 + cycles))
               segs)))
    progs;
  M.run m;
  Alcotest.(check bool) "side jobs staged events during the run" true
    (R.staged obs <> [])

let suite =
  [ QCheck_alcotest.to_alcotest prop_exact_fit_transparent;
    QCheck_alcotest.to_alcotest prop_deferred_mode_valid;
    Alcotest.test_case "golden exact-fit address stream" `Quick test_golden_stream;
    QCheck_alcotest.to_alcotest prop_offload_deterministic;
    Alcotest.test_case "drain offload stages trace events" `Quick
      test_offload_actually_stages;
  ]
