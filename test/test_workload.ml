(* Tests for the benchmark drivers, trace machinery, latency probe and
   the server workload. *)

module M = Core.Machine
module B1 = Core.Bench1
module B2 = Core.Bench2
module B3 = Core.Bench3

let small_b1 =
  { B1.default with B1.iterations = 2_000; workers = 2; paper_iterations = 2_000 }

let test_bench1_structure () =
  let r = B1.run small_b1 in
  Alcotest.(check int) "one time per worker" 2 (List.length r.B1.elapsed_s);
  Alcotest.(check bool) "positive" true (List.for_all (fun s -> s > 0.) r.B1.elapsed_s);
  (* paper_iterations = iterations, so scaled = raw *)
  List.iter2
    (fun a b -> Alcotest.(check (float 1e-9)) "unscaled" a b)
    r.B1.elapsed_s r.B1.scaled_s;
  Alcotest.(check bool) "utilization sane" true (r.B1.utilization > 0. && r.B1.utilization <= 1.01)

let test_bench1_scaling_math () =
  let r = B1.run { small_b1 with B1.paper_iterations = 20_000 } in
  List.iter2
    (fun raw scaled -> Alcotest.(check (float 1e-6)) "10x scale" (raw *. 10.) scaled)
    r.B1.elapsed_s r.B1.scaled_s

let test_bench1_process_mode () =
  let r = B1.run { small_b1 with B1.mode = B1.Processes } in
  Alcotest.(check int) "one allocator per process" 2 r.B1.arenas;
  Alcotest.(check int) "workers" 2 (List.length r.B1.scaled_s)

let test_bench1_more_threads_take_longer () =
  let t2 = B1.mean_scaled (B1.run { small_b1 with B1.workers = 2 }) in
  let t6 = B1.mean_scaled (B1.run { small_b1 with B1.workers = 6 }) in
  Alcotest.(check bool) "6 threads ~3x of 2 on 2 CPUs" true (t6 > 2. *. t2)

let test_bench1_validates_params () =
  Alcotest.check_raises "workers" (Invalid_argument "Bench1.run: workers <= 0") (fun () ->
      ignore (B1.run { small_b1 with B1.workers = 0 }))

let small_b2 =
  { B2.default with B2.objects_per_thread = 500; replacements_per_round = 150; threads = 2; rounds = 2 }

let test_bench2_runs_and_counts () =
  let r = B2.run small_b2 in
  Alcotest.(check bool) "faults counted" true (r.B2.minor_faults > 0);
  Alcotest.(check bool) "resident pages sane" true (r.B2.resident_pages > 0);
  Alcotest.(check bool) "some sbrk traffic" true (r.B2.sbrk_calls > 0)

let test_bench2_deterministic () =
  let a = B2.run small_b2 and b = B2.run small_b2 in
  Alcotest.(check int) "same faults same seed" a.B2.minor_faults b.B2.minor_faults

let test_bench2_more_threads_more_faults () =
  let f1 = (B2.run { small_b2 with B2.threads = 1 }).B2.minor_faults in
  let f3 = (B2.run { small_b2 with B2.threads = 3 }).B2.minor_faults in
  (* two extra threads add at least their object pages on top of the
     process-startup constant *)
  let per_thread_pages = small_b2.B2.objects_per_thread * 48 / 4096 in
  Alcotest.(check bool) "object pages scale with threads" true
    (f3 - f1 >= 2 * per_thread_pages * 8 / 10)

let test_paper_predictor_formula () =
  Alcotest.(check (float 1e-9)) "t=1,r=1" (14. +. 1.1 +. 127.6) (B2.paper_predictor ~threads:1 ~rounds:1);
  Alcotest.(check (float 1e-9)) "t=7,r=80" (14. +. (1.1 *. 560.) +. (127.6 *. 7.))
    (B2.paper_predictor ~threads:7 ~rounds:80)

let test_fit_predictor_recovers () =
  (* synthesize y = 14 + 2*t*r + 100*t exactly *)
  let samples =
    List.concat_map
      (fun t -> List.map (fun r -> (t, r, 14 + (2 * t * r) + (100 * t))) [ 1; 2; 5 ])
      [ 1; 3; 7 ]
  in
  let a, b = B2.fit_predictor samples ~base:14. in
  Alcotest.(check (float 1e-6)) "per round per thread" 2.0 a;
  Alcotest.(check (float 1e-6)) "per thread" 100.0 b

let small_b3 = { B3.default with B3.writes = 50_000; paper_writes = 50_000 }

let test_bench3_aligned_is_clean () =
  let r = B3.run { small_b3 with B3.aligned = true; threads = 4 } in
  Alcotest.(check int) "no shared lines" 0 r.B3.shared_lines;
  Alcotest.(check int) "no ping-pong" 0 r.B3.transfers

let test_bench3_small_objects_share () =
  (* 8-byte objects pack four to a 32-byte line: sharing is certain. *)
  let r = B3.run { small_b3 with B3.aligned = false; threads = 4; object_size = 8 } in
  Alcotest.(check bool) "lines shared" true (r.B3.shared_lines > 0);
  Alcotest.(check bool) "transfers observed" true (r.B3.transfers > 0)

let test_bench3_sharing_costs_time () =
  (* four 8-byte objects pack into at most two 32-byte lines, so at
     least one line is shared whatever the base phase *)
  let aligned = B3.run { small_b3 with B3.aligned = true; threads = 4; object_size = 8 } in
  let normal = B3.run { small_b3 with B3.aligned = false; threads = 4; object_size = 8 } in
  Alcotest.(check bool) "normal slower" true (normal.B3.scaled_s > aligned.B3.scaled_s *. 1.3)

let test_bench3_addresses_returned () =
  let r = B3.run { small_b3 with B3.threads = 3 } in
  Alcotest.(check int) "one object per thread" 3 (List.length r.B3.addresses)

let test_bench3_sweep () =
  let results = B3.sweep { small_b3 with B3.writes = 20_000 } ~sizes:[ 8; 40 ] ~runs:2 in
  Alcotest.(check int) "two sizes" 2 (List.length results);
  List.iter (fun (_, s) -> Alcotest.(check int) "two runs" 2 s.Core.Summary.n) results

(* --- traces ------------------------------------------------------------ *)

let test_trace_generation_valid () =
  let rng = Core.Rng.create ~seed:11 in
  let t = Core.Trace.generate ~rng ~ops:5_000 ~slots:64 () in
  (match Core.Trace.validate t ~slots:64 with
  | Ok () -> ()
  | Error m -> Alcotest.fail m);
  Alcotest.(check int) "requested length" 5_000 (Array.length t)

let test_trace_live_at_end () =
  let t = [| Core.Trace.Alloc { slot = 0; size = 8 }; Alloc { slot = 1; size = 8 }; Free { slot = 0 } |] in
  Alcotest.(check int) "one live" 1 (Core.Trace.live_at_end t ~slots:2)

let test_trace_validate_rejects () =
  let bad = [| Core.Trace.Free { slot = 0 } |] in
  (match Core.Trace.validate bad ~slots:1 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "free of empty slot accepted")

let prop_trace_always_valid =
  QCheck.Test.make ~name:"generated traces are well-formed" ~count:50
    QCheck.(pair small_int (int_range 1 40))
    (fun (seed, slots) ->
      let rng = Core.Rng.create ~seed in
      let t = Core.Trace.generate ~rng ~ops:400 ~slots () in
      Core.Trace.validate t ~slots = Ok ())

let test_trace_replay_drains () =
  let m = M.create ~seed:1 { M.default_config with M.cpus = 1 } in
  let p = M.create_proc m () in
  let alloc = (Core.Factory.ptmalloc ()).Core.Factory.create p in
  let rng = Core.Rng.create ~seed:12 in
  let trace = Core.Trace.generate ~rng ~ops:2_000 ~slots:100 () in
  ignore (M.spawn p (fun ctx -> ignore (Core.Trace.replay alloc ctx trace ~slots:100)));
  M.run m;
  Alcotest.(check int) "live zero after replay" 0 alloc.Core.Allocator.stats.Core.Astats.live_bytes

(* --- latency probe ------------------------------------------------------ *)

let test_latency_probe_counts () =
  let m = M.create ~seed:1 { M.default_config with M.cpus = 1 } in
  let p = M.create_proc m () in
  let inner = (Core.Factory.ptmalloc ()).Core.Factory.create p in
  let probe, alloc = Core.Latency.wrap inner in
  ignore
    (M.spawn p (fun ctx ->
         for _ = 1 to 50 do
           let u = alloc.Core.Allocator.malloc ctx 64 in
           alloc.Core.Allocator.free ctx u
         done));
  M.run m;
  Alcotest.(check int) "malloc and free both sampled" 100 (Core.Latency.count probe);
  Alcotest.(check int) "mallocs tagged" 50 (Core.Latency.count_by probe Core.Latency.Malloc);
  Alcotest.(check int) "frees tagged" 50 (Core.Latency.count_by probe Core.Latency.Free);
  Alcotest.(check bool) "durations positive" true
    (List.for_all (fun (_, d) -> d > 0.) (Core.Latency.samples probe));
  let windows = Core.Latency.windows probe ~window_ns:1e6 in
  Alcotest.(check bool) "windows nonempty" true (windows <> []);
  let d = Core.Latency.drift probe ~window_ns:1e6 in
  Alcotest.(check bool) "drift finite" true (d > 0.)

(* Regression for the probe only seeing malloc: calloc and realloc are
   timed end to end as single tagged samples, with the inner malloc/free
   they perform suppressed — not double-counted, not mis-tagged. *)
let test_latency_probe_tags_derived_ops () =
  let m = M.create ~seed:2 { M.default_config with M.cpus = 1 } in
  let p = M.create_proc m () in
  let inner = (Core.Factory.ptmalloc ()).Core.Factory.create p in
  let probe, alloc = Core.Latency.wrap inner in
  ignore
    (M.spawn p (fun ctx ->
         let a = Core.Latency.calloc probe alloc ctx ~count:4 ~size:32 in
         let a = Core.Latency.realloc probe alloc ctx a 512 in
         alloc.Core.Allocator.free ctx a));
  M.run m;
  Alcotest.(check int) "one calloc sample" 1 (Core.Latency.count_by probe Core.Latency.Calloc);
  Alcotest.(check int) "one realloc sample" 1 (Core.Latency.count_by probe Core.Latency.Realloc);
  Alcotest.(check int) "inner malloc suppressed" 0 (Core.Latency.count_by probe Core.Latency.Malloc);
  (* the one visible free is the caller's own; realloc's internal free
     (if the block moved) must not be recorded *)
  Alcotest.(check int) "only the caller's free" 1 (Core.Latency.count_by probe Core.Latency.Free);
  let calloc_ns = List.map snd (Core.Latency.samples_by probe Core.Latency.Calloc) in
  Alcotest.(check bool) "calloc includes zeroing cost" true (List.for_all (fun d -> d > 0.) calloc_ns)

(* --- arrivals ------------------------------------------------------------ *)

let arrival_times process ~seed ~n =
  let gen = Core.Arrivals.create ~rng:(Core.Rng.create ~seed) process in
  List.init n (fun _ -> Core.Arrivals.next gen)

let test_arrivals_deterministic () =
  List.iter
    (fun process ->
      let a = arrival_times process ~seed:42 ~n:500 in
      let b = arrival_times process ~seed:42 ~n:500 in
      Alcotest.(check (list (float 0.))) "same seed, same stream" a b;
      let c = arrival_times process ~seed:43 ~n:500 in
      Alcotest.(check bool) "different seed, different stream" true (a <> c);
      Alcotest.(check bool) "strictly increasing" true
        (fst (List.fold_left (fun (ok, prev) t -> (ok && t > prev, t)) (true, -1.) a)))
    [ Core.Arrivals.Poisson { rate_rps = 50_000. };
      Core.Arrivals.Bursty { base_rps = 10_000.; burst_rps = 100_000.; on_s = 0.001; off_s = 0.004 };
      Core.Arrivals.Diurnal { low_rps = 10_000.; high_rps = 80_000.; period_s = 0.01 };
    ]

let test_arrivals_mean_rate () =
  (* Long-run empirical rate n / t_last within 5% of the configured
     mean for every process shape. *)
  List.iter
    (fun process ->
      let n = 40_000 in
      let times = arrival_times process ~seed:7 ~n in
      let t_last = List.nth times (n - 1) in
      let measured = float_of_int n /. (t_last /. 1e9) in
      let expected = Core.Arrivals.mean_rps process in
      let err = Float.abs (measured -. expected) /. expected in
      Alcotest.(check bool)
        (Printf.sprintf "%s: measured %.0f within 5%% of %.0f"
           (Core.Arrivals.to_string process) measured expected)
        true (err < 0.05))
    [ Core.Arrivals.Poisson { rate_rps = 50_000. };
      Core.Arrivals.Bursty { base_rps = 20_000.; burst_rps = 80_000.; on_s = 0.002; off_s = 0.002 };
      Core.Arrivals.Diurnal { low_rps = 20_000.; high_rps = 60_000.; period_s = 0.02 };
    ]

let test_arrivals_parse_roundtrip () =
  List.iter
    (fun s ->
      let p = Core.Arrivals.of_string s in
      Alcotest.(check string) "roundtrip" s (Core.Arrivals.to_string p))
    [ "poisson:50000"; "bursty:10000:100000:0.001:0.004"; "diurnal:10000:80000:0.01" ];
  Alcotest.(check bool) "scale multiplies rate" true
    (Core.Arrivals.mean_rps
       (Core.Arrivals.scale (Core.Arrivals.Poisson { rate_rps = 100. }) 2.5)
    = 250.);
  (match Core.Arrivals.of_string "nonesuch:1" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad spec accepted")

(* --- server -------------------------------------------------------------- *)

let test_server_runs_and_drains () =
  let r =
    Core.Server.run
      { Core.Server.default with
        Core.Server.threads = 3;
        requests_per_thread = 150;
        connections = 32;
        probe_latency = true;
      }
  in
  Alcotest.(check bool) "throughput positive" true (r.Core.Server.requests_per_second > 0.);
  Alcotest.(check int) "three workers" 3 (List.length r.Core.Server.per_thread_s);
  Alcotest.(check bool) "cross-thread frees happen" true (r.Core.Server.foreign_frees > 0);
  match r.Core.Server.latency with
  | Some probe ->
      Alcotest.(check bool) "latency measured" true (probe.Core.Server.malloc_mean_ns > 0.);
      Alcotest.(check bool) "per-op stats include the derived ops" true
        (List.exists (fun o -> o.Core.Server.op = "calloc") probe.Core.Server.op_stats
        && List.exists (fun o -> o.Core.Server.op = "free") probe.Core.Server.op_stats)
  | None -> Alcotest.fail "latency probe requested"

(* --- open-loop server ----------------------------------------------------- *)

let small_open ?(rate = 150_000.) ?(model = Core.Server.Thread_pool { queue_capacity = 256 }) () =
  { Core.Server.default with
    Core.Server.threads = 3;
    connections = 32;
    open_loop =
      Some
        { Core.Server.default_open with
          Core.Server.process = Core.Arrivals.Poisson { rate_rps = rate };
          total_requests = 1_200;
          model;
          churn_mean_requests = 20;
        };
  }

let request_stats r =
  match r.Core.Server.requests with
  | Some s -> s
  | None -> Alcotest.fail "open-loop run must report request stats"

let test_server_open_loop_pool () =
  let r = Core.Server.run (small_open ()) in
  let s = request_stats r in
  Alcotest.(check int) "all arrivals accounted" 1_200 (s.Core.Server.completed + s.Core.Server.dropped);
  Alcotest.(check bool) "some completions" true (s.Core.Server.completed > 0);
  Alcotest.(check bool) "throughput positive" true (s.Core.Server.throughput_rps > 0.);
  Alcotest.(check bool) "offered rate near configured" true
    (Float.abs (s.Core.Server.offered_rps -. 150_000.) /. 150_000. < 0.25);
  Alcotest.(check bool) "percentiles ordered" true
    (s.Core.Server.p50_ns <= s.Core.Server.p95_ns
    && s.Core.Server.p95_ns <= s.Core.Server.p99_ns
    && s.Core.Server.p99_ns <= s.Core.Server.max_ns);
  Alcotest.(check bool) "connections churn" true (s.Core.Server.churned > 0);
  Alcotest.(check int) "histogram holds every completion" s.Core.Server.completed
    (Core.Histogram.count s.Core.Server.hist);
  Alcotest.(check int) "class counts sum to completions" s.Core.Server.completed
    (List.fold_left (fun acc (_, n) -> acc + n) 0 s.Core.Server.by_class);
  Alcotest.(check bool) "cross-thread frees happen" true (r.Core.Server.foreign_frees > 0)

let test_server_open_loop_deterministic () =
  let a = Core.Server.run (small_open ()) in
  let b = Core.Server.run (small_open ()) in
  let sa = request_stats a and sb = request_stats b in
  Alcotest.(check int) "same completions" sa.Core.Server.completed sb.Core.Server.completed;
  Alcotest.(check (float 0.)) "same p99" sa.Core.Server.p99_ns sb.Core.Server.p99_ns;
  Alcotest.(check (float 0.)) "same makespan" a.Core.Server.elapsed_s b.Core.Server.elapsed_s

let test_server_thread_per_connection () =
  let r = Core.Server.run (small_open ~model:Core.Server.Thread_per_connection ()) in
  let s = request_stats r in
  Alcotest.(check int) "nothing dropped without a bounded queue" 0 s.Core.Server.dropped;
  Alcotest.(check int) "all arrivals served" 1_200 s.Core.Server.completed;
  Alcotest.(check bool) "churn replaces threads" true (s.Core.Server.churned > 0);
  Alcotest.(check bool) "p99 positive" true (s.Core.Server.p99_ns > 0.)

let test_server_overload_raises_tail () =
  (* Same workload far below and far beyond capacity: the open loop
     must show queueing delay — the closed loop never could. *)
  let light = request_stats (Core.Server.run (small_open ~rate:30_000. ())) in
  let heavy = request_stats (Core.Server.run (small_open ~rate:2_000_000. ())) in
  Alcotest.(check bool)
    (Printf.sprintf "overloaded p99 (%.0f ns) well above light-load p99 (%.0f ns)"
       heavy.Core.Server.p99_ns light.Core.Server.p99_ns)
    true
    (heavy.Core.Server.p99_ns > 3. *. light.Core.Server.p99_ns)

(* --- Larson -------------------------------------------------------------- *)

let small_larson =
  { Core.Larson.default with
    Core.Larson.threads = 2;
    rounds = 2;
    slots_per_thread = 200;
    ops_per_round = 300;
  }

let test_larson_runs_and_drains () =
  let r = Core.Larson.run small_larson in
  Alcotest.(check int) "drains" 0 r.Core.Larson.live_bytes;
  Alcotest.(check bool) "throughput positive" true (r.Core.Larson.throughput_ops_s > 0.);
  Alcotest.(check bool) "faults counted" true (r.Core.Larson.minor_faults > 0)

let test_larson_deterministic () =
  let a = Core.Larson.run small_larson and b = Core.Larson.run small_larson in
  Alcotest.(check int) "same faults" a.Core.Larson.minor_faults b.Core.Larson.minor_faults;
  Alcotest.(check (float 1e-9)) "same elapsed" a.Core.Larson.elapsed_s b.Core.Larson.elapsed_s

let test_larson_size_range_respected () =
  (* sizes beyond the dlheap small-bin limit exercise large bins too *)
  let r =
    Core.Larson.run { small_larson with Core.Larson.min_size = 600; max_size = 3_000 }
  in
  Alcotest.(check int) "drains with large sizes" 0 r.Core.Larson.live_bytes

let test_larson_validates_params () =
  Alcotest.check_raises "size range" (Invalid_argument "Larson.run: bad size range") (fun () ->
      ignore (Core.Larson.run { small_larson with Core.Larson.min_size = 10; max_size = 5 }))

let test_factory_by_name () =
  List.iter
    (fun name ->
      match Core.Factory.by_name name with
      | Some f -> Alcotest.(check string) "label matches" name f.Core.Factory.label
      | None -> Alcotest.fail ("missing factory " ^ name))
    Core.Factory.names;
  Alcotest.(check bool) "unknown rejected" true (Core.Factory.by_name "nonesuch" = None)

let suite =
  [ Alcotest.test_case "bench1 structure" `Quick test_bench1_structure;
    Alcotest.test_case "bench1 scaling math" `Quick test_bench1_scaling_math;
    Alcotest.test_case "bench1 process mode" `Quick test_bench1_process_mode;
    Alcotest.test_case "bench1 thread scaling" `Quick test_bench1_more_threads_take_longer;
    Alcotest.test_case "bench1 validates params" `Quick test_bench1_validates_params;
    Alcotest.test_case "bench2 runs" `Quick test_bench2_runs_and_counts;
    Alcotest.test_case "bench2 deterministic" `Quick test_bench2_deterministic;
    Alcotest.test_case "bench2 thread scaling" `Quick test_bench2_more_threads_more_faults;
    Alcotest.test_case "paper predictor formula" `Quick test_paper_predictor_formula;
    Alcotest.test_case "fit predictor" `Quick test_fit_predictor_recovers;
    Alcotest.test_case "bench3 aligned clean" `Quick test_bench3_aligned_is_clean;
    Alcotest.test_case "bench3 small objects share" `Quick test_bench3_small_objects_share;
    Alcotest.test_case "bench3 sharing costs" `Quick test_bench3_sharing_costs_time;
    Alcotest.test_case "bench3 addresses" `Quick test_bench3_addresses_returned;
    Alcotest.test_case "bench3 sweep" `Quick test_bench3_sweep;
    Alcotest.test_case "trace generation valid" `Quick test_trace_generation_valid;
    Alcotest.test_case "trace live_at_end" `Quick test_trace_live_at_end;
    Alcotest.test_case "trace validate rejects" `Quick test_trace_validate_rejects;
    QCheck_alcotest.to_alcotest prop_trace_always_valid;
    Alcotest.test_case "trace replay drains" `Quick test_trace_replay_drains;
    Alcotest.test_case "latency probe" `Quick test_latency_probe_counts;
    Alcotest.test_case "latency probe derived ops" `Quick test_latency_probe_tags_derived_ops;
    Alcotest.test_case "arrivals deterministic" `Quick test_arrivals_deterministic;
    Alcotest.test_case "arrivals mean rate" `Quick test_arrivals_mean_rate;
    Alcotest.test_case "arrivals parse roundtrip" `Quick test_arrivals_parse_roundtrip;
    Alcotest.test_case "server workload" `Quick test_server_runs_and_drains;
    Alcotest.test_case "server open loop (pool)" `Quick test_server_open_loop_pool;
    Alcotest.test_case "server open loop deterministic" `Quick test_server_open_loop_deterministic;
    Alcotest.test_case "server thread-per-connection" `Quick test_server_thread_per_connection;
    Alcotest.test_case "server overload raises tail" `Quick test_server_overload_raises_tail;
    Alcotest.test_case "larson runs and drains" `Quick test_larson_runs_and_drains;
    Alcotest.test_case "larson deterministic" `Quick test_larson_deterministic;
    Alcotest.test_case "larson size range" `Quick test_larson_size_range_respected;
    Alcotest.test_case "larson validates params" `Quick test_larson_validates_params;
    Alcotest.test_case "factory by name" `Quick test_factory_by_name;
  ]
