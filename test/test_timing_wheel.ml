(* Property tests for the hierarchical timing wheel and the sharded
   merge frontier: pop order must be exactly (time, seq) — identical to
   a sorted-list reference — under random push/pop interleavings that
   cross bucket boundaries, cascade L2 epochs, and spill to the
   far-future heap; the shard frontier must produce the same global
   order for any shard count; and engine-level cancellation must skip
   exactly the cancelled events without disturbing the rest. *)

module Tw = Mb_sim.Timing_wheel
module Shard = Mb_sim.Shard
module Pqueue = Mb_sim.Pqueue
module Engine = Mb_sim.Engine

(* Times that stress every layer: heavy ties, exact L1 (2^10 ns) and
   L2 (2^18 ns) bucket edges and their neighbours, multi-epoch wraps,
   far-heap spills, and the 2^52 precision cliff. *)
let time_gen =
  QCheck.Gen.(
    oneof
      [ map float_of_int (int_bound 50);
        map (fun k -> float_of_int (k * 1024)) (int_bound 600);
        map (fun k -> float_of_int ((k * 1024) + 1)) (int_bound 600);
        map (fun k -> float_of_int ((k * 1024) - 1)) (int_range 1 600);
        map (fun k -> float_of_int (k * 262144)) (int_bound 600);
        map (fun k -> float_of_int ((k * 262144) + 1)) (int_bound 600);
        map (fun k -> float_of_int k *. 1048576.) (int_bound 2000);
        map (fun k -> float_of_int k *. 1e8) (int_bound 100);
        map (fun k -> 4503599627370496. +. (float_of_int k *. 1e10)) (int_bound 10);
        map (fun f -> Float.of_int (int_of_float (f *. 1e7))) (float_bound_inclusive 1.);
      ])

let time_arb = QCheck.make ~print:string_of_float time_gen

(* --- timing wheel vs sorted (key, pk) list --------------------------- *)

let wheel_ops_gen =
  (* true -> push at the given time; false -> pop (time ignored) *)
  QCheck.(list_of_size Gen.(int_range 0 500) (pair bool time_arb))

let prop_wheel_fuzz_vs_model =
  QCheck.Test.make ~name:"wheel push/pop fuzz matches sorted model" ~count:300 wheel_ops_gen
    (fun ops ->
      let w = Tw.create () in
      let model = ref [] in
      let seq = ref 0 in
      List.for_all
        (fun (is_push, time) ->
          if is_push then begin
            let key = Tw.key_of_time time and pk = !seq in
            incr seq;
            Tw.push w key pk;
            let rec insert = function
              | [] -> [ (key, pk) ]
              | ((k, p) as hd) :: tl ->
                  if key < k || (key = k && pk < p) then (key, pk) :: hd :: tl
                  else hd :: insert tl
            in
            model := insert !model;
            Tw.length w = List.length !model
          end
          else
            match !model with
            | [] -> Tw.is_empty w && Tw.peek_key w = max_int && Tw.peek_pk w = max_int
            | (k, p) :: tl ->
                let ok = Tw.peek_key w = k && Tw.peek_pk w = p in
                Tw.pop w;
                model := tl;
                ok)
        ops)

let prop_wheel_drain_sorted =
  QCheck.Test.make ~name:"wheel full drain is (time, seq) sorted" ~count:300
    QCheck.(list_of_size Gen.(int_range 0 400) time_arb)
    (fun times ->
      let w = Tw.create () in
      List.iteri (fun i time -> Tw.push w (Tw.key_of_time time) i) times;
      let expected =
        List.stable_sort (fun (t1, _) (t2, _) -> compare t1 t2)
          (List.mapi (fun i time -> (time, i)) times)
      in
      let rec drain acc =
        if Tw.is_empty w then List.rev acc
        else begin
          let k = Tw.peek_key w and p = Tw.peek_pk w in
          Tw.pop w;
          drain ((Tw.time_of_key k, p) :: acc)
        end
      in
      drain [] = expected)

(* Counters split pushes into exactly three destinations: ascending
   appends fill the ring to its target size, then overflow into the
   wheels; a far-future time spills to the heap. *)
let test_wheel_counters () =
  let w = Tw.create () in
  let n = Tw.ring_target + 16 in
  for i = 0 to n - 1 do
    Tw.push w (Tw.key_of_time (float_of_int (i * 1024))) i
  done;
  Tw.push w (Tw.key_of_time (4503599627370496. +. 1e10)) n;
  Alcotest.(check int) "all pushes counted" (n + 1)
    (Tw.ring_hits w + Tw.wheel_hits w + Tw.heap_spills w);
  Alcotest.(check int) "ring absorbed up to its target" Tw.ring_target (Tw.ring_hits w);
  Alcotest.(check bool) "overflow went to the wheels" true (Tw.wheel_hits w >= 1);
  Alcotest.(check bool) "far time spilled to heap" true (Tw.heap_spills w >= 1);
  let rec drain n = if Tw.is_empty w then n else (Tw.pop w; drain (n + 1)) in
  Alcotest.(check int) "drains fully" (n + 1) (drain 0)

(* --- shard frontier vs global sorted model ---------------------------- *)

(* Ops: Some (shard_pick, time) -> push on shard_pick mod shards;
   None -> pop. The model is one global (time, seq) sorted list — the
   shard assignment must never matter. *)
let shard_ops_gen =
  QCheck.(
    pair (int_range 1 8)
      (list_of_size Gen.(int_range 0 500) (option (pair (int_bound 31) time_arb))))

let prop_shard_frontier_vs_model =
  QCheck.Test.make ~name:"shard frontier pops the global (time, seq) order" ~count:300
    shard_ops_gen
    (fun (shards, ops) ->
      let q = Shard.create ~shards in
      let cell = Pqueue.make_cell () in
      let model = ref [] in
      let seq = ref 0 in
      List.for_all
        (fun op ->
          match op with
          | Some (pick, time) ->
              let v = !seq land ((1 lsl Shard.vbits) - 1) in
              let s = !seq in
              incr seq;
              Shard.push_at q ~shard:(pick mod shards) ~time ~v;
              let rec insert = function
                | [] -> [ (time, s, v) ]
                | ((t, s', _) as hd) :: tl ->
                    if time < t || (time = t && s < s') then (time, s, v) :: hd :: tl
                    else hd :: insert tl
              in
              model := insert !model;
              Shard.length q = List.length !model
          | None -> (
              match !model with
              | [] -> Shard.is_empty q && Shard.min_key q = max_int
              | (t, _, v) :: tl ->
                  let got = Shard.pop q cell in
                  model := tl;
                  got = v && cell.Pqueue.cell_time = t))
        ops)

(* The same pushes distributed over 1, 2 and 8 shards pop identically. *)
let prop_shard_count_invariance =
  QCheck.Test.make ~name:"pop order invariant under shard count" ~count:200
    QCheck.(list_of_size Gen.(int_range 0 300) (pair (int_bound 31) time_arb))
    (fun pushes ->
      let drain_with shards =
        let q = Shard.create ~shards in
        let cell = Pqueue.make_cell () in
        List.iteri
          (fun i (pick, time) ->
            Shard.push_at q ~shard:(pick mod shards) ~time ~v:(i land 0xFFFF))
          pushes;
        let rec go acc =
          if Shard.is_empty q then List.rev acc
          else begin
            let v = Shard.pop q cell in
            go ((cell.Pqueue.cell_time, v) :: acc)
          end
        in
        go []
      in
      let one = drain_with 1 in
      drain_with 2 = one && drain_with 8 = one)

(* --- engine-level: cancellation and shard routing ---------------------- *)

let test_at_cancel () =
  let e = Engine.create () in
  let log = ref [] in
  let fire tag = fun () -> log := tag :: !log in
  Engine.at e 10. (fire "a");
  let cancel_b = Engine.at_cancel e 20. (fire "b") in
  let cancel_c = Engine.at_cancel e 30. (fire "c") in
  Engine.at e 40. (fire "d");
  cancel_b ();
  cancel_b ();  (* idempotent *)
  Engine.run e;
  cancel_c ();  (* after firing: harmless no-op *)
  Alcotest.(check (list string)) "cancelled event skipped, rest fire in order"
    [ "a"; "c"; "d" ] (List.rev !log)

let prop_engine_cancel_fuzz =
  (* Events at random times; a random subset is cancellable and
     cancelled up front. Fired order must equal the (time, insertion)
     order of the survivors. *)
  QCheck.Test.make ~name:"random cancellations leave survivors' schedule intact" ~count:200
    QCheck.(list_of_size Gen.(int_range 0 60) (pair bool (map float_of_int (int_bound 20))))
    (fun events ->
      let e = Engine.create ~shards:3 () in
      let log = ref [] in
      let cancels = ref [] in
      List.iteri
        (fun i (cancelled, time) ->
          if cancelled then
            cancels := Engine.at_cancel e ~shard:(i mod 3) time (fun () -> log := i :: !log) :: !cancels
          else Engine.at e ~shard:(i mod 3) time (fun () -> log := i :: !log))
        events;
      List.iter (fun cancel -> cancel ()) !cancels;
      Engine.run e;
      let expected =
        List.stable_sort (fun (t1, _) (t2, _) -> compare t1 t2)
          (List.filteri (fun _ (c, _) -> not c) (List.mapi (fun i (c, t) -> (c, (t, i))) events)
          |> List.map snd)
        |> List.map snd
      in
      List.rev !log = expected)

(* One multi-process program, three engines with different shard counts
   and assignments: the logs must match event for event. *)
let test_engine_shard_determinism () =
  let run shards =
    let e = Engine.create ~shards () in
    let log = ref [] in
    let say who = log := Printf.sprintf "%s@%.0f" who (Engine.now e) :: !log in
    for i = 0 to 5 do
      ignore
        (Engine.spawn e ~shard:(i mod shards) ~name:(Printf.sprintf "p%d" i) (fun () ->
             let name = Printf.sprintf "p%d" i in
             say (name ^ ".start");
             Engine.delay (float_of_int ((i * 7) mod 11));
             say (name ^ ".mid");
             Engine.delay (float_of_int ((13 - i) mod 9));
             say (name ^ ".end")))
    done;
    Engine.run e;
    List.rev !log
  in
  let one = run 1 in
  Alcotest.(check (list string)) "2 shards = 1 shard" one (run 2);
  Alcotest.(check (list string)) "8 shards = 1 shard" one (run 8)

let suite =
  [ QCheck_alcotest.to_alcotest prop_wheel_fuzz_vs_model;
    QCheck_alcotest.to_alcotest prop_wheel_drain_sorted;
    Alcotest.test_case "push counters cover all destinations" `Quick test_wheel_counters;
    QCheck_alcotest.to_alcotest prop_shard_frontier_vs_model;
    QCheck_alcotest.to_alcotest prop_shard_count_invariance;
    Alcotest.test_case "at_cancel skips exactly the cancelled" `Quick test_at_cancel;
    QCheck_alcotest.to_alcotest prop_engine_cancel_fuzz;
    Alcotest.test_case "engine schedule invariant under shards" `Quick test_engine_shard_determinism;
  ]
