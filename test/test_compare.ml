(* Tests for the kernel regression gate (Mb_suite.Compare) against
   synthetic BENCH_kernels.json pairs: pass, regression, fresh-only
   tolerated, missing fails, host-block warnings across schemas, the
   degenerate shared-set guards, the raw GC gate, and the CLI exit
   codes. *)

module Compare = Core.Suite.Compare

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let contains_any lines needle = List.exists (fun l -> contains l needle) lines

(* Render a synthetic kernels file. [gc] adds a kernel_gc block,
   [host] a schema-3 host block. *)
let kernels_json ?host ?(gc = []) kernels =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\n  \"schema\": 3,\n";
  (match host with
  | Some (cores, model) ->
      Buffer.add_string b
        (Printf.sprintf "  \"host\": {\"cores\": %d, \"cpu_model\": \"%s\", \"domains\": 1},\n"
           cores model)
  | None -> ());
  Buffer.add_string b "  \"kernels_ns_per_run\": {";
  Buffer.add_string b
    (String.concat ", "
       (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %.1f" k v) kernels));
  Buffer.add_string b "}";
  if gc <> [] then begin
    Buffer.add_string b ",\n  \"kernel_gc\": {";
    Buffer.add_string b
      (String.concat ", "
         (List.map
            (fun (k, v) -> Printf.sprintf "\"%s\": {\"minor_words_per_run\": %.1f}" k v)
            gc));
    Buffer.add_string b "}"
  end;
  Buffer.add_string b "\n}\n";
  Buffer.contents b

let with_pair base fresh f =
  let wfile text =
    let path = Filename.temp_file "mb_compare" ".json" in
    Out_channel.with_open_text path (fun oc -> output_string oc text);
    path
  in
  let b = wfile base and fr = wfile fresh in
  Fun.protect
    ~finally:(fun () -> List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) [ b; fr ])
    (fun () -> f b fr)

let compare_exn ?threshold ?gc_threshold base fresh =
  with_pair base fresh (fun b f ->
      match Compare.compare_files ?threshold ?gc_threshold ~baseline:b ~fresh:f () with
      | Ok r -> r
      | Error e -> Alcotest.failf "compare errored: %s" e)

let four = [ ("sim", 100.); ("vm", 200.); ("alloc", 300.); ("cache", 400.) ]

let scaled factor = List.map (fun (k, v) -> (k, v *. factor)) four

let test_identical_files_pass () =
  let t = kernels_json four in
  let r = compare_exn t t in
  Alcotest.(check bool) "ok" true r.Compare.ok;
  Alcotest.(check (list string)) "no regressions" [] r.Compare.regressions;
  Alcotest.(check (list string)) "no warnings" [] r.Compare.warnings

let test_uniform_slowdown_passes () =
  (* 2x across the board is a host factor, not a regression. *)
  let r = compare_exn (kernels_json four) (kernels_json (scaled 2.0)) in
  Alcotest.(check bool) "ok" true r.Compare.ok

let test_single_kernel_regression_fails () =
  let fresh = [ ("sim", 100.); ("vm", 200.); ("alloc", 300.); ("cache", 520.) ] in
  let r = compare_exn (kernels_json four) (kernels_json fresh) in
  Alcotest.(check bool) "fails" false r.Compare.ok;
  Alcotest.(check (list string)) "names cache" [ "cache" ] r.Compare.regressions;
  Alcotest.(check bool) "report flags it" true (contains_any r.Compare.lines "<-- REGRESSION")

let test_threshold_is_respected () =
  let fresh = [ ("sim", 100.); ("vm", 200.); ("alloc", 300.); ("cache", 520.) ] in
  let r = compare_exn ~threshold:1.5 (kernels_json four) (kernels_json fresh) in
  Alcotest.(check bool) "30%% passes a 50%% threshold" true r.Compare.ok

let test_fresh_only_kernel_tolerated () =
  let r = compare_exn (kernels_json four) (kernels_json (("new", 50.) :: four)) in
  Alcotest.(check bool) "ok" true r.Compare.ok;
  Alcotest.(check (list string)) "added" [ "new" ] r.Compare.added

let test_missing_kernel_fails () =
  let r = compare_exn (kernels_json four) (kernels_json (List.tl four)) in
  Alcotest.(check bool) "fails" false r.Compare.ok;
  Alcotest.(check (list string)) "missing" [ "sim" ] r.Compare.missing

let test_empty_common_fails () =
  let r = compare_exn (kernels_json [ ("a", 1.) ]) (kernels_json [ ("b", 1.) ]) in
  Alcotest.(check bool) "fails" false r.Compare.ok;
  Alcotest.(check bool) "says so" true (contains_any r.Compare.lines "no kernels in common")

let test_singleton_common_uses_raw_ratios () =
  (* One shared kernel: normalization would always yield 1.0; the
     guard gates on the raw 2x and warns. *)
  let r = compare_exn (kernels_json [ ("a", 100.) ]) (kernels_json [ ("a", 200.) ]) in
  Alcotest.(check bool) "raw 2x fails" false r.Compare.ok;
  Alcotest.(check bool) "warns" true (contains_any r.Compare.warnings "too few")

let test_pair_common_uses_raw_ratios () =
  (* Two shared kernels regressing together would cancel in the
     median; below three the gate stays raw. *)
  let base = kernels_json [ ("a", 100.); ("b", 100.) ] in
  let fresh = kernels_json [ ("a", 200.); ("b", 200.) ] in
  let r = compare_exn base fresh in
  Alcotest.(check bool) "fails" false r.Compare.ok;
  Alcotest.(check int) "both flagged" 2 (List.length r.Compare.regressions)

let test_host_mismatch_warns_with_both_blocks () =
  let base = kernels_json ~host:(4, "xeon") four in
  let fresh = kernels_json ~host:(64, "epyc") four in
  let r = compare_exn base fresh in
  Alcotest.(check bool) "still ok" true r.Compare.ok;
  let w = String.concat "\n" r.Compare.warnings in
  Alcotest.(check bool) "mentions mismatch" true (contains w "host mismatch");
  Alcotest.(check bool) "carries baseline block" true (contains w "xeon");
  Alcotest.(check bool) "carries fresh block" true (contains w "epyc")

let test_matching_hosts_stay_silent () =
  let t = kernels_json ~host:(4, "xeon") four in
  let r = compare_exn t t in
  Alcotest.(check (list string)) "no warnings" [] r.Compare.warnings

let test_schema_2_vs_3_warns_one_sided () =
  let r = compare_exn (kernels_json ~host:(4, "xeon") four) (kernels_json four) in
  Alcotest.(check bool) "ok" true r.Compare.ok;
  Alcotest.(check bool) "names the schema-2 side" true
    (contains_any r.Compare.warnings "fresh file has no host block");
  let r' = compare_exn (kernels_json four) (kernels_json ~host:(4, "xeon") four) in
  Alcotest.(check bool) "other side too" true
    (contains_any r'.Compare.warnings "baseline has no host block")

let test_gc_regression_fails_raw () =
  let base = kernels_json ~gc:[ ("sim", 1000.); ("vm", 500.) ] four in
  let fresh = kernels_json ~gc:[ ("sim", 2000.); ("vm", 500.) ] four in
  let r = compare_exn base fresh in
  Alcotest.(check bool) "fails" false r.Compare.ok;
  Alcotest.(check (list string)) "gc regression on sim" [ "sim" ] r.Compare.gc_regressions;
  (* and the gc gate has its own threshold *)
  let r' = compare_exn ~gc_threshold:3.0 base fresh in
  Alcotest.(check bool) "looser gc threshold passes" true r'.Compare.ok

let test_malformed_files_error () =
  (match with_pair "{ not json" (kernels_json four) (fun b f ->
       Compare.compare_files ~baseline:b ~fresh:f ())
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed baseline accepted");
  match with_pair "{\"schema\": 3}" (kernels_json four) (fun b f ->
      Compare.compare_files ~baseline:b ~fresh:f ())
  with
  | Error e ->
      Alcotest.(check bool) "names the missing field" true (contains e "kernels_ns_per_run")
  | Ok _ -> Alcotest.fail "kernel-less baseline accepted"

(* main: argv in, exit status out (stdout is captured by alcotest). *)
let test_main_exit_codes () =
  let code ?(threshold = []) base fresh =
    with_pair base fresh (fun b f -> Compare.main (("compare" :: b :: f :: threshold) @ []))
  in
  Alcotest.(check int) "ok -> 0" 0 (code (kernels_json four) (kernels_json four));
  Alcotest.(check int) "regression -> 1" 1
    (code (kernels_json four)
       (kernels_json [ ("sim", 100.); ("vm", 200.); ("alloc", 300.); ("cache", 520.) ]));
  Alcotest.(check int) "parse error -> 2" 2 (code "{" (kernels_json four));
  Alcotest.(check int) "bad threshold -> 2" 2
    (code ~threshold:[ "0.5" ] (kernels_json four) (kernels_json four));
  Alcotest.(check int) "usage -> 2" 2 (Compare.main [ "compare" ])

let suite =
  [ Alcotest.test_case "identical files pass" `Quick test_identical_files_pass;
    Alcotest.test_case "uniform slowdown passes" `Quick test_uniform_slowdown_passes;
    Alcotest.test_case "25% regression fails" `Quick test_single_kernel_regression_fails;
    Alcotest.test_case "threshold respected" `Quick test_threshold_is_respected;
    Alcotest.test_case "fresh-only kernel tolerated" `Quick test_fresh_only_kernel_tolerated;
    Alcotest.test_case "missing kernel fails" `Quick test_missing_kernel_fails;
    Alcotest.test_case "empty common fails" `Quick test_empty_common_fails;
    Alcotest.test_case "singleton common is raw" `Quick test_singleton_common_uses_raw_ratios;
    Alcotest.test_case "pair common is raw" `Quick test_pair_common_uses_raw_ratios;
    Alcotest.test_case "host mismatch warns" `Quick test_host_mismatch_warns_with_both_blocks;
    Alcotest.test_case "matching hosts silent" `Quick test_matching_hosts_stay_silent;
    Alcotest.test_case "schema 2 vs 3 warns" `Quick test_schema_2_vs_3_warns_one_sided;
    Alcotest.test_case "GC regression fails raw" `Quick test_gc_regression_fails_raw;
    Alcotest.test_case "malformed files error" `Quick test_malformed_files_error;
    Alcotest.test_case "main exit codes" `Quick test_main_exit_codes;
  ]
