(* Tests for the observability layer: recorder semantics, counter
   correctness on hand-computable workloads, trace JSON well-formedness,
   and the guarantee that observation never perturbs a run. *)

module Obs = Core.Obs
module R = Obs.Recorder
module B1 = Core.Bench1

(* Run [f] with the process-wide observation mode set, then restore the
   disabled default and discard anything left in the collector so tests
   cannot leak state into each other. *)
let with_mode mode f =
  Obs.Ctl.set mode;
  Fun.protect
    ~finally:(fun () ->
      Obs.Ctl.set Obs.Ctl.off;
      ignore (Obs.Collect.drain ()))
    f

let drain_one () =
  match Obs.Collect.drain () with
  | [ run ] -> run
  | runs -> Alcotest.failf "expected exactly one published run, got %d" (List.length runs)

(* --- recorder unit behaviour ------------------------------------------- *)

let test_null_records_nothing () =
  let r = R.null in
  Alcotest.(check bool) "disabled" false (R.enabled r);
  R.incr r "x";
  R.add r "x" 5;
  R.span r ~lane:0 ~name:"s" ~ts_ns:0. ~dur_ns:1. ();
  R.instant r ~lane:0 ~name:"i" ~ts_ns:0. ();
  Alcotest.(check int) "no counter" 0 (R.counter r "x");
  Alcotest.(check int) "no events" 0 (R.event_count r);
  Alcotest.(check (list (pair string int))) "empty counters" [] (R.counters r)

let test_counter_arithmetic () =
  let r = R.create () in
  R.incr r "b";
  R.add r "a" 41;
  R.incr r "a";
  R.set r "c" 7;
  R.set r "c" 9;
  Alcotest.(check (list (pair string int)))
    "sorted counters"
    [ ("a", 42); ("b", 1); ("c", 9) ]
    (R.counters r);
  let totals = R.totals [ ("x", r); ("y", r) ] in
  Alcotest.(check (list (pair string int)))
    "totals sum across runs"
    [ ("a", 84); ("b", 2); ("c", 18) ]
    totals

let test_collect_sorts_and_skips_disabled () =
  with_mode Obs.Ctl.off @@ fun () ->
  Obs.Collect.publish ~label:"ignored" R.null;
  Alcotest.(check int) "disabled not kept" 0 (Obs.Collect.pending ());
  let b = R.create () and a = R.create () in
  Obs.Collect.publish ~label:"b-run" b;
  Obs.Collect.publish ~label:"a-run" a;
  let labels = List.map fst (Obs.Collect.drain ()) in
  Alcotest.(check (list string)) "drain sorted by label" [ "a-run"; "b-run" ] labels

(* --- hand-computed counters -------------------------------------------- *)

(* One worker hammering the serial allocator: every malloc and every free
   takes the single heap lock exactly once and nobody competes for it, so
   each counter is computable on paper. *)
let test_serial_bench1_counters () =
  let iterations = 500 in
  with_mode { Obs.Ctl.trace = false; metrics = true } @@ fun () ->
  let _ =
    B1.run
      { B1.default with
        B1.workers = 1;
        iterations;
        paper_iterations = iterations;
        factory = Core.Factory.serial_solaris ();
      }
  in
  let _, r = drain_one () in
  let check name expected = Alcotest.(check int) name expected (R.counter r name) in
  check "alloc.mallocs" iterations;
  check "alloc.frees" iterations;
  check "alloc.arena.created" 1;
  check "alloc.lock.acquired" (2 * iterations);
  check "alloc.lock.contended" 0;
  check "alloc.lock.uncontended" (2 * iterations);
  check "alloc.free.foreign" 0;
  Alcotest.(check int)
    "per-name mirror of the aggregate"
    (2 * iterations)
    (R.counter r "lock.malloc-lock.acquired")

let test_contended_run_splits_acquisitions () =
  (* Two workers against one serial lock: heavy contention, but however it
     resolves, contended + uncontended must partition all acquisitions. *)
  with_mode { Obs.Ctl.trace = false; metrics = true } @@ fun () ->
  let _ =
    B1.run
      { B1.default with
        B1.workers = 2;
        iterations = 400;
        paper_iterations = 400;
        factory = Core.Factory.serial_solaris ();
      }
  in
  let _, r = drain_one () in
  let acq = R.counter r "alloc.lock.acquired" in
  Alcotest.(check int) "every op locks once" 1600 acq;
  Alcotest.(check bool) "some contention" true (R.counter r "alloc.lock.contended" > 0);
  Alcotest.(check int) "contended + uncontended = acquired" acq
    (R.counter r "alloc.lock.contended" + R.counter r "alloc.lock.uncontended")

(* --- trace sink --------------------------------------------------------- *)

(* Recursive-descent checker for the JSON subset the sink can emit; raises
   on the first syntax error. *)
exception Bad_json of int

let check_json s =
  let n = String.length s in
  let pos = ref 0 in
  let bad () = raise (Bad_json !pos) in
  let peek () = if !pos >= n then bad () else s.[!pos] in
  let next () =
    let c = peek () in
    incr pos;
    c
  in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let keyword k = String.iter (fun c -> if next () <> c then bad ()) k in
  let string_lit () =
    if next () <> '"' then bad ();
    let rec loop () =
      match next () with
      | '"' -> ()
      | '\\' ->
          ignore (next ());
          loop ()
      | c ->
          if Char.code c < 0x20 then bad ();
          loop ()
    in
    loop ()
  in
  let number () =
    let start = !pos in
    while
      !pos < n
      && (match s.[!pos] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false)
    do
      incr pos
    done;
    if !pos = start then bad ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' ->
        incr pos;
        skip_ws ();
        if peek () = '}' then incr pos
        else
          let rec members () =
            skip_ws ();
            string_lit ();
            skip_ws ();
            if next () <> ':' then bad ();
            value ();
            skip_ws ();
            match next () with ',' -> members () | '}' -> () | _ -> bad ()
          in
          members ()
    | '[' ->
        incr pos;
        skip_ws ();
        if peek () = ']' then incr pos
        else
          let rec elements () =
            value ();
            skip_ws ();
            match next () with ',' -> elements () | ']' -> () | _ -> bad ()
          in
          elements ()
    | '"' -> string_lit ()
    | 't' -> keyword "true"
    | 'f' -> keyword "false"
    | 'n' -> keyword "null"
    | _ -> number ()
  in
  value ();
  skip_ws ();
  if !pos <> n then bad ()

let traced_bench1 () =
  let _ =
    B1.run
      { B1.default with B1.workers = 2; iterations = 300; paper_iterations = 300 }
  in
  drain_one ()

let test_trace_json_parses () =
  with_mode { Obs.Ctl.trace = true; metrics = false } @@ fun () ->
  let label, r = traced_bench1 () in
  let doc = Obs.Trace_json.to_string [ (label, r) ] in
  (try check_json doc
   with Bad_json p -> Alcotest.failf "trace JSON syntax error at byte %d" p);
  Alcotest.(check bool)
    "run label becomes the trace process name" true
    (let quoted = Printf.sprintf "%S" label in
     let needle = Printf.sprintf "{\"name\":%s}" quoted in
     let rec find i =
       i + String.length needle <= String.length doc
       && (String.sub doc i (String.length needle) = needle || find (i + 1))
     in
     find 0);
  Alcotest.(check int)
    "event_total matches the recorder" (R.event_count r)
    (Obs.Trace_json.event_total [ (label, r) ])

(* Pull a numeric field like ["tid":3] out of one event line; [None] when
   the key is absent or its value is not a number. *)
let field_of line key =
  let needle = Printf.sprintf "\"%s\":" key in
  let ln = String.length line and nn = String.length needle in
  let rec find i =
    if i + nn > ln then None
    else if String.sub line i nn = needle then Some (i + nn)
    else find (i + 1)
  in
  Option.bind (find 0) (fun start ->
      let stop = ref start in
      while
        !stop < ln && (match line.[!stop] with '0' .. '9' | '-' | '.' -> true | _ -> false)
      do
        incr stop
      done;
      if !stop = start then None else Some (float_of_string (String.sub line start (!stop - start))))

let test_trace_timestamps_monotone_per_lane () =
  with_mode { Obs.Ctl.trace = true; metrics = false } @@ fun () ->
  let label, r = traced_bench1 () in
  Alcotest.(check bool) "traced something" true (R.event_count r > 0);
  Alcotest.(check bool) "both workers have lanes" true (List.length (R.lanes r) >= 2);
  (* The sink writes one event per line, sorted by start time within each
     lane — walk the document and check that property directly. *)
  let doc = Obs.Trace_json.to_string [ (label, r) ] in
  let last = Hashtbl.create 8 in
  let checked = ref 0 in
  List.iter
    (fun line ->
      (* Metadata lines carry no "ts"; every line with both fields is an
         event on some lane. *)
      match (field_of line "tid", field_of line "ts") with
      | Some tid, Some ts ->
          (match Hashtbl.find_opt last tid with
          | Some prev when ts < prev ->
              Alcotest.failf "lane %g goes backwards: %g after %g" tid ts prev
          | _ -> ());
          Hashtbl.replace last tid ts;
          incr checked
      | _ -> ())
    (String.split_on_char '\n' doc);
  Alcotest.(check bool) "checked several events" true (!checked > 3)

(* --- hostile names ------------------------------------------------------- *)

(* Run labels, lane names, event names, and span args are all
   user-controlled strings that end up inside JSON string literals. Fuzz
   them with quotes, backslashes, newlines, and raw control characters:
   the serialized trace must always parse. *)

let hostile_string =
  QCheck.Gen.(
    let hostile_char =
      oneof
        [ return '"'; return '\\'; return '\n'; return '\t'; return '\x00';
          return '\x1b'; return '{'; char_range 'a' 'z' ]
    in
    string_size ~gen:hostile_char (int_range 0 24))

let prop_hostile_names_stay_json =
  QCheck.Test.make ~name:"hostile run/thread/event names still serialize to JSON" ~count:200
    (QCheck.make
       ~print:(fun (a, b, c) -> Printf.sprintf "label=%S lane=%S event=%S" a b c)
       QCheck.Gen.(triple hostile_string hostile_string hostile_string))
    (fun (label, lane_name, event_name) ->
      let r = R.create ~metrics:false () in
      R.set_lane r 0 lane_name;
      R.instant r ~lane:0 ~name:event_name ~ts_ns:1. ();
      R.span r ~lane:0 ~name:event_name ~ts_ns:2. ~dur_ns:3.
        ~args:[ (lane_name, label); (event_name, lane_name) ]
        ();
      let doc = Obs.Trace_json.to_string [ (label, r) ] in
      match check_json doc with
      | () -> true
      | exception Bad_json p -> QCheck.Test.fail_reportf "JSON syntax error at byte %d" p)

(* --- non-perturbation --------------------------------------------------- *)

let test_observation_does_not_perturb () =
  let params =
    { B1.default with B1.workers = 3; iterations = 400; paper_iterations = 400 }
  in
  let dark = B1.run params in
  let lit =
    with_mode { Obs.Ctl.trace = true; metrics = true } @@ fun () ->
    let r = B1.run params in
    Alcotest.(check int) "run was observed" 1 (Obs.Collect.pending ());
    r
  in
  List.iter2
    (fun a b -> Alcotest.(check (float 0.)) "identical elapsed" a b)
    dark.B1.elapsed_s lit.B1.elapsed_s;
  Alcotest.(check int) "identical ctx switches" dark.B1.ctx_switches lit.B1.ctx_switches;
  Alcotest.(check int) "identical contention" dark.B1.lock_contended_ops
    lit.B1.lock_contended_ops

let suite =
  [ Alcotest.test_case "null recorder records nothing" `Quick test_null_records_nothing;
    Alcotest.test_case "counter arithmetic" `Quick test_counter_arithmetic;
    Alcotest.test_case "collect sorts, skips disabled" `Quick test_collect_sorts_and_skips_disabled;
    Alcotest.test_case "serial bench1 counters by hand" `Quick test_serial_bench1_counters;
    Alcotest.test_case "contended split partitions acquisitions" `Quick
      test_contended_run_splits_acquisitions;
    Alcotest.test_case "trace JSON parses" `Quick test_trace_json_parses;
    Alcotest.test_case "timestamps monotone per lane" `Quick
      test_trace_timestamps_monotone_per_lane;
    QCheck_alcotest.to_alcotest prop_hostile_names_stay_json;
    Alcotest.test_case "observation does not perturb runs" `Quick
      test_observation_does_not_perturb
  ]
