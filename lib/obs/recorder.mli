(** Per-run observation recorder: named counters plus trace events.

    A recorder is the sink every instrumented layer (simulation engine,
    machine, allocators) writes into during one simulated run. Each
    {!Mb_machine.Machine} owns exactly one recorder, so a pool of
    domains running independent machines needs no locking: a recorder
    is only ever written from the task that owns its machine.

    Disabled recorders are branch-cheap: every emission function first
    loads one immutable boolean field and returns immediately when the
    corresponding channel is off. {!null} is the shared always-disabled
    recorder; instrumented code can call emission functions
    unconditionally against it without consuming memory or time beyond
    that single branch, which is what keeps un-observed runs
    byte-identical to an un-instrumented build.

    Recording never consumes {e simulated} time or randomness, so
    enabling a recorder cannot perturb a run's results either. *)

type t
(** A recorder: two independent channels (trace events and metrics
    counters), either of which may be disabled. *)

type event = {
  lane : int;       (** trace lane, one per simulated thread (engine pid) *)
  name : string;    (** short event label, e.g. ["run"] or ["park"] *)
  ts_ns : float;    (** start time in simulated nanoseconds *)
  dur_ns : float;   (** span duration; negative for instant events *)
  args : (string * string) list;  (** free-form key/value annotations *)
}
(** One trace event. Spans ([dur_ns >= 0]) render as boxes on their
    lane in a Chrome/Perfetto timeline; instants render as markers. *)

val null : t
(** The shared disabled recorder: both channels off, never records. *)

val create : ?trace:bool -> ?metrics:bool -> unit -> t
(** Fresh recorder with the given channels enabled (both default to
    [true]). [create ~trace:false ~metrics:false ()] is functionally
    {!null} but distinct. *)

val enabled : t -> bool
(** [true] iff at least one channel is on. *)

val tracing : t -> bool
(** [true] iff the event channel is on. *)

val metering : t -> bool
(** [true] iff the counter channel is on. *)

(** {1 Counters (metrics channel)} *)

val incr : t -> string -> unit
(** [incr t key] adds 1 to counter [key] (created at 0 on first use).
    No-op when metrics are off. *)

val add : t -> string -> int -> unit
(** [add t key n] adds [n] to counter [key]. No-op when metrics are
    off. *)

val set : t -> string -> int -> unit
(** [set t key v] overwrites counter [key] — used to snapshot counters
    maintained elsewhere (cache statistics, mutex acquisition counts)
    into the recorder at end of run; idempotent. No-op when metrics
    are off. *)

val counter : t -> string -> int
(** Current value of a counter; 0 if never written. *)

val counters : t -> (string * int) list
(** All counters, sorted by key. *)

(** {1 Events (trace channel)} *)

val span : t -> lane:int -> name:string -> ts_ns:float -> dur_ns:float ->
  ?args:(string * string) list -> unit -> unit
(** Record a completed span. No-op when tracing is off. *)

val instant : t -> lane:int -> name:string -> ts_ns:float ->
  ?args:(string * string) list -> unit -> unit
(** Record an instant event. No-op when tracing is off. *)

val set_lane : t -> int -> string -> unit
(** [set_lane t lane name] names a trace lane (shown as the thread name
    in trace viewers). Last writer wins. No-op when tracing is off. *)

val events : t -> event list
(** All recorded events not yet handed to a staging pass, in emission
    order. *)

val lanes : t -> (int * string) list
(** Lane names, sorted by lane id. *)

val event_count : t -> int
(** Number of recorded events, staged ones included (cheaper than
    [List.length (events t)]). *)

(** {1 Staged events}

    The conservative parallel executor serializes trace events to their
    JSON lines {e during} its drain phases, on a crew domain, instead
    of at flush time: the owner calls {!take_events} at a window
    boundary, a crew task renders the batch
    ({!Trace_json.stage_events}) and files the result back with
    {!add_staged}. {!Trace_json.to_string} merges staged lines with any
    remaining unstaged events, producing byte-identical output whether
    or not staging ran. *)

type staged = { g_lane : int; g_ts : float; g_pre : string; g_post : string }
(** A pre-rendered event line, split where the flush-time process id is
    spliced in: the full line is [g_pre ^ ",\"pid\":" ^ pid ^ g_post].
    [g_lane]/[g_ts] feed the flush-time per-lane sort. *)

val has_pending : t -> bool
(** [true] iff some recorded events have not been staged yet. O(1). *)

val take_events : t -> event list
(** Remove and return the pending (unstaged) events, in emission order.
    Must be called from the domain that owns the recorder, with no
    concurrent emission (the conservative executor's window boundaries
    satisfy both). {!event_count} is unaffected. *)

val add_staged : t -> staged list -> unit
(** File one rendered chunk (in emission order). Chunks must be filed
    in the order their events were taken; the executor's one-side-task-
    per-barrier discipline guarantees that. *)

val staged : t -> staged list
(** All staged lines filed so far, in emission order. *)

(** {1 Aggregation} *)

val totals : (string * t) list -> (string * int) list
(** [totals runs] sums the counters of several labeled recorders into
    one sorted counter list — the cross-run metrics table. *)
