(** Process-wide observation control.

    The CLI (or a test) turns observation on {e before} any machine is
    built; {!Mb_machine.Machine.create} then asks {!recorder} for a
    fresh per-machine {!Recorder.t}. With observation off (the
    default), {!recorder} returns {!Recorder.null} and every run stays
    on the branch-cheap disabled path.

    The state is one atomic record, set once per process invocation
    before worker domains spawn, so cross-domain reads are safe. A
    stale read in a racing domain can only yield a disabled recorder
    (or an enabled one whose output is simply dropped) — never a
    perturbed simulation. *)

type mode = {
  trace : bool;    (** record scheduling/lock events for the trace sink *)
  metrics : bool;  (** record named counters for the metrics sink *)
}

val off : mode
(** Both channels disabled — the process default. *)

val set : mode -> unit
(** Replace the process-wide observation mode. Call before starting the
    runs to be observed. *)

val current : unit -> mode

val active : unit -> bool
(** [true] iff either channel is on. *)

val recorder : unit -> Recorder.t
(** A recorder for one new machine: {!Recorder.null} when observation
    is off, otherwise a fresh enabled recorder matching {!current}. *)
