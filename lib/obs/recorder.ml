type event = {
  lane : int;
  name : string;
  ts_ns : float;
  dur_ns : float;
  args : (string * string) list;
}

(* A trace event whose JSON rendering has been precomputed (by
   {!Trace_json.stage_events}, typically on a crew domain during a
   conservative drain phase). The line is split around the process id,
   which is only known at flush time: the full line is
   [g_pre ^ ",\"pid\":" ^ pid ^ g_post]. (lane, ts) are kept for the
   flush-time per-lane sort. *)
type staged = { g_lane : int; g_ts : float; g_pre : string; g_post : string }

type t = {
  trace : bool;
  metrics : bool;
  counters : (string, int ref) Hashtbl.t;
  mutable events : event list;  (* reversed; not yet staged *)
  mutable n_events : int;
  mutable staged_chunks : staged list list;  (* reversed chunk list,
                                                each chunk chronological *)
  lane_names : (int, string) Hashtbl.t;
}

let make ~trace ~metrics =
  { trace;
    metrics;
    counters = Hashtbl.create (if metrics then 32 else 1);
    events = [];
    n_events = 0;
    staged_chunks = [];
    lane_names = Hashtbl.create (if trace then 16 else 1);
  }

let null = make ~trace:false ~metrics:false

let create ?(trace = true) ?(metrics = true) () = make ~trace ~metrics

let enabled t = t.trace || t.metrics

let tracing t = t.trace

let metering t = t.metrics

(* --- counters --------------------------------------------------------- *)

let cell t key =
  match Hashtbl.find_opt t.counters key with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.replace t.counters key r;
      r

let incr t key = if t.metrics then Stdlib.incr (cell t key)

let add t key n = if t.metrics then (cell t key) := !(cell t key) + n

let set t key v = if t.metrics then (cell t key) := v

let counter t key = match Hashtbl.find_opt t.counters key with Some r -> !r | None -> 0

let counters t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* --- events ----------------------------------------------------------- *)

let push t ev =
  t.events <- ev :: t.events;
  t.n_events <- t.n_events + 1

let span t ~lane ~name ~ts_ns ~dur_ns ?(args = []) () =
  if t.trace then push t { lane; name; ts_ns; dur_ns = (if dur_ns < 0. then 0. else dur_ns); args }

let instant t ~lane ~name ~ts_ns ?(args = []) () =
  if t.trace then push t { lane; name; ts_ns; dur_ns = -1.; args }

let set_lane t lane name = if t.trace then Hashtbl.replace t.lane_names lane name

let events t = List.rev t.events

(* Hand the pending (unstaged) events to a staging pass and clear them;
   [n_events] stays cumulative. Call from the domain that owns the
   recorder — the conservative executor does this at a window boundary,
   then renders the batch on a crew domain via Trace_json.stage_events. *)
let has_pending t = t.events <> []

let take_events t =
  let evs = List.rev t.events in
  t.events <- [];
  evs

let add_staged t chunk = t.staged_chunks <- chunk :: t.staged_chunks

let staged t = List.concat (List.rev t.staged_chunks)

let lanes t =
  Hashtbl.fold (fun lane name acc -> (lane, name) :: acc) t.lane_names []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let event_count t = t.n_events

(* --- aggregation ------------------------------------------------------ *)

let totals runs =
  let table = Hashtbl.create 64 in
  List.iter
    (fun (_label, r) ->
      Hashtbl.iter
        (fun k v ->
          let cur = match Hashtbl.find_opt table k with Some c -> c | None -> 0 in
          Hashtbl.replace table k (cur + !v))
        r.counters)
    runs;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
