let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let us_of_ns ns = ns /. 1000.

let add_args b args =
  Buffer.add_string b ",\"args\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "\"%s\":\"%s\"" (escape k) (escape v))
    args;
  Buffer.add_char b '}'

(* One event object per line; [sep] handles the comma of the previous
   line so the array never ends with a trailing comma. *)
let emit b ~sep line =
  if !sep then Buffer.add_string b ",\n" else Buffer.add_string b "\n";
  sep := true;
  Buffer.add_string b line

let meta_line ~pid ?tid ~name ~value () =
  let b = Buffer.create 96 in
  Printf.bprintf b "{\"name\":\"%s\",\"ph\":\"M\",\"pid\":%d" (escape name) pid;
  (match tid with Some t -> Printf.bprintf b ",\"tid\":%d" t | None -> ());
  Printf.bprintf b ",\"args\":{\"name\":\"%s\"}}" (escape value);
  Buffer.contents b

let event_line ~pid (ev : Recorder.event) =
  let b = Buffer.create 128 in
  if ev.Recorder.dur_ns < 0. then
    Printf.bprintf b "{\"name\":\"%s\",\"cat\":\"sim\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,\"pid\":%d,\"tid\":%d"
      (escape ev.Recorder.name) (us_of_ns ev.Recorder.ts_ns) pid ev.Recorder.lane
  else
    Printf.bprintf b
      "{\"name\":\"%s\",\"cat\":\"sim\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":%d,\"tid\":%d"
      (escape ev.Recorder.name) (us_of_ns ev.Recorder.ts_ns) (us_of_ns ev.Recorder.dur_ns) pid
      ev.Recorder.lane;
  if ev.Recorder.args <> [] then add_args b ev.Recorder.args;
  Buffer.add_char b '}';
  Buffer.contents b

let to_string runs =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  let sep = ref false in
  List.iteri
    (fun pid (label, r) ->
      emit b ~sep (meta_line ~pid ~name:"process_name" ~value:label ());
      List.iter
        (fun (lane, name) -> emit b ~sep (meta_line ~pid ~tid:lane ~name:"thread_name" ~value:name ()))
        (Recorder.lanes r);
      (* Stable sort by (lane, start time): per-lane monotonicity in file
         order, and equal-time events keep emission order. *)
      let events =
        List.stable_sort
          (fun (a : Recorder.event) (b : Recorder.event) ->
            if a.Recorder.lane <> b.Recorder.lane then compare a.Recorder.lane b.Recorder.lane
            else compare a.Recorder.ts_ns b.Recorder.ts_ns)
          (Recorder.events r)
      in
      List.iter (fun ev -> emit b ~sep (event_line ~pid ev)) events)
    runs;
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ns\"}\n";
  Buffer.contents b

let write_file path runs =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string runs))

let event_total runs = List.fold_left (fun acc (_, r) -> acc + Recorder.event_count r) 0 runs
