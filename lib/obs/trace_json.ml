let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let us_of_ns ns = ns /. 1000.

let add_args b args =
  Buffer.add_string b ",\"args\":{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Printf.bprintf b "\"%s\":\"%s\"" (escape k) (escape v))
    args;
  Buffer.add_char b '}'

(* One event object per line; [sep] handles the comma of the previous
   line so the array never ends with a trailing comma. *)
let emit b ~sep line =
  if !sep then Buffer.add_string b ",\n" else Buffer.add_string b "\n";
  sep := true;
  Buffer.add_string b line

let meta_line ~pid ?tid ~name ~value () =
  let b = Buffer.create 96 in
  Printf.bprintf b "{\"name\":\"%s\",\"ph\":\"M\",\"pid\":%d" (escape name) pid;
  (match tid with Some t -> Printf.bprintf b ",\"tid\":%d" t | None -> ());
  Printf.bprintf b ",\"args\":{\"name\":\"%s\"}}" (escape value);
  Buffer.contents b

(* Render one event into the pid-agnostic split form (Recorder.staged):
   the pid is only known at flush time, so the line is cut where
   [",\"pid\":<pid>"] belongs. Concatenating the three pieces yields
   exactly the line this module always wrote — which is what makes the
   staged (crew-domain) and flush-time render paths byte-identical. *)
let render (ev : Recorder.event) =
  let pre = Buffer.create 96 in
  if ev.Recorder.dur_ns < 0. then
    Printf.bprintf pre "{\"name\":\"%s\",\"cat\":\"sim\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f"
      (escape ev.Recorder.name) (us_of_ns ev.Recorder.ts_ns)
  else
    Printf.bprintf pre "{\"name\":\"%s\",\"cat\":\"sim\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f"
      (escape ev.Recorder.name) (us_of_ns ev.Recorder.ts_ns) (us_of_ns ev.Recorder.dur_ns);
  let post = Buffer.create 32 in
  Printf.bprintf post ",\"tid\":%d" ev.Recorder.lane;
  if ev.Recorder.args <> [] then add_args post ev.Recorder.args;
  Buffer.add_char post '}';
  { Recorder.g_lane = ev.Recorder.lane;
    g_ts = ev.Recorder.ts_ns;
    g_pre = Buffer.contents pre;
    g_post = Buffer.contents post;
  }

let stage_events r evs = Recorder.add_staged r (List.map render evs)

let staged_line ~pid (g : Recorder.staged) =
  Printf.sprintf "%s,\"pid\":%d%s" g.Recorder.g_pre pid g.Recorder.g_post

let to_string runs =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  let sep = ref false in
  List.iteri
    (fun pid (label, r) ->
      emit b ~sep (meta_line ~pid ~name:"process_name" ~value:label ());
      List.iter
        (fun (lane, name) -> emit b ~sep (meta_line ~pid ~tid:lane ~name:"thread_name" ~value:name ()))
        (Recorder.lanes r);
      (* Staged lines come first — staging always takes a chronological
         prefix of the stream — then whatever was never staged, rendered
         here. Stable sort by (lane, start time) on the combined list:
         per-lane monotonicity in file order, and equal-time events keep
         emission order, exactly as when nothing was staged. *)
      let lines = Recorder.staged r @ List.map render (Recorder.events r) in
      let lines =
        List.stable_sort
          (fun (a : Recorder.staged) (b : Recorder.staged) ->
            if a.Recorder.g_lane <> b.Recorder.g_lane then
              compare a.Recorder.g_lane b.Recorder.g_lane
            else compare a.Recorder.g_ts b.Recorder.g_ts)
          lines
      in
      List.iter (fun g -> emit b ~sep (staged_line ~pid g)) lines)
    runs;
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ns\"}\n";
  Buffer.contents b

let write_file path runs =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string runs))

let event_total runs = List.fold_left (fun acc (_, r) -> acc + Recorder.event_count r) 0 runs
