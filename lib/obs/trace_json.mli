(** Chrome [trace_event] JSON sink.

    Serializes one or more labeled recorders into the JSON Object
    Format understood by [chrome://tracing] and {{:https://ui.perfetto.dev}
    Perfetto}: each run becomes one trace "process" (named by its
    label) and each simulated thread one lane inside it, so a
    multi-machine experiment renders as parallel swim-lane groups.

    Timestamps are converted from simulated nanoseconds to the
    format's microseconds. Within a lane, events are emitted sorted by
    start time, and each event occupies exactly one line of output —
    both properties the test suite relies on. *)

val to_string : (string * Recorder.t) list -> string
(** Render labeled recorders (as returned by {!Collect.drain}) to a
    complete JSON document. Events pre-rendered by {!stage_events} and
    events still pending in the recorder produce byte-identical
    documents. *)

val stage_events : Recorder.t -> Recorder.event list -> unit
(** [stage_events r evs] renders [evs] (a batch obtained from
    {!Recorder.take_events}) to their JSON lines and files them back
    into [r] via {!Recorder.add_staged}. Pure rendering plus one list
    cons onto state nothing reads until flush: safe to run on a crew
    domain during a conservative drain phase, which is the point — the
    serialization cost leaves the serial execute path. *)

val write_file : string -> (string * Recorder.t) list -> unit
(** [write_file path runs] writes {!to_string}[ runs] to [path]. *)

val event_total : (string * Recorder.t) list -> int
(** Total event count across runs (for the CLI's summary line). *)
