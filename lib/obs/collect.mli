(** Cross-run collection of completed recorders.

    Workload drivers publish their machine's recorder here when a run
    finishes; after all experiments are joined, the CLI drains the
    registry once to build the trace file and metrics table. Publication
    happens at most once per simulated machine (cold path), so the
    mutex guarding the registry is uncontended in practice — the hot
    paths stay inside per-task recorders and need no locking. *)

val publish : label:string -> Recorder.t -> unit
(** [publish ~label r] registers a completed recorder under a
    human-readable run label (workload name plus distinguishing
    parameters). Disabled recorders are ignored, so callers may publish
    unconditionally. Thread/domain-safe. *)

val drain : unit -> (string * Recorder.t) list
(** Remove and return everything published so far, sorted by label
    (ties keep arrival order). Labels double as trace "process" names,
    so the sort makes sink output deterministic for a deterministic
    label set regardless of which pool domain ran which task. *)

val pending : unit -> int
(** Number of published, not-yet-drained recorders. *)
