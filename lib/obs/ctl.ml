type mode = { trace : bool; metrics : bool }

let off = { trace = false; metrics = false }

let state = Atomic.make off

let set mode = Atomic.set state mode

let current () = Atomic.get state

let active () =
  let m = Atomic.get state in
  m.trace || m.metrics

let recorder () =
  let m = Atomic.get state in
  if m.trace || m.metrics then Recorder.create ~trace:m.trace ~metrics:m.metrics ()
  else Recorder.null
