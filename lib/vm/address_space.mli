(** A simulated per-process virtual address space.

    Models the facilities the paper's section 3 discusses: a [brk] line
    grown by {!sbrk}, anonymous mappings placed by {!mmap}, pre-existing
    fixed mappings (shared libraries) that {!sbrk} cannot grow past, and
    demand paging with first-touch minor-fault accounting — the statistic
    benchmark 2 reports.

    Addresses are plain [int]s; there is no backing store, only layout and
    residency bookkeeping. All sizes are in bytes. *)

type t

type addr = int

exception Segfault of addr
(** Raised when {!touch} hits an unmapped address. *)

type config = {
  page_size : int;        (** bytes per page; Linux x86 uses 4096 *)
  brk_base : addr;        (** bottom of the heap segment *)
  brk_ceiling : addr;     (** hard limit for [sbrk] growth (next mapping) *)
  mmap_base : addr;       (** where anonymous mapping placement starts *)
  mmap_top : addr;        (** exclusive upper bound of the mmap zone *)
}

val linux_x86 : config
(** Layout echoing 1999 Linux/x86: heap at 0x08xxxxxx growing up toward
    shared libraries at 0x40000000, mmap zone above the libraries. *)

val create : config -> t

val config : t -> config

val page_size : t -> int

(** {1 The brk segment} *)

val brk : t -> addr
(** Current break (end of the heap segment). Starts at [brk_base]. *)

val sbrk : t -> int -> addr option
(** [sbrk t delta] grows (or, negative [delta], shrinks) the heap segment.
    On success returns the {e previous} break — the base of the newly
    valid region, like the C call. Returns [None] if growth would pass
    [brk_ceiling] or collide with a mapping placed in the way, or if a
    shrink would go below [brk_base]. *)

(** {1 Anonymous mappings} *)

val mmap : t -> len:int -> addr option
(** [mmap t ~len] reserves a page-aligned anonymous region of at least
    [len] bytes (rounded up to pages), first-fit from [mmap_base].
    Returns [None] when the mmap zone is exhausted. *)

val munmap : t -> addr -> len:int -> unit
(** Releases a region previously returned by {!mmap} with the same
    (rounded) length, discarding residency of its pages.
    @raise Invalid_argument if no such mapping exists. *)

val map_fixed : t -> addr -> len:int -> unit
(** Installs a fixed mapping (e.g. a shared library) that occupies address
    space; used to model the paper's observation that [sbrk] cannot
    allocate around pre-existing maps.
    @raise Invalid_argument on overlap with an existing region. *)

(** {1 Demand paging} *)

val touch : t -> addr -> len:int -> int
(** [touch t addr ~len] simulates the CPU accessing [len] bytes at [addr]:
    every page in the range that is mapped but not yet resident takes a
    minor fault and becomes resident. Returns the number of faults
    incurred by this call. @raise Segfault on unmapped addresses. *)

val is_mapped : t -> addr -> bool

val is_resident : t -> addr -> bool

(** {1 Accounting} *)

val minor_faults : t -> int
(** Total minor faults since creation — the paper's benchmark 2 metric. *)

val resident_pages : t -> int

val mapped_bytes : t -> int
(** Bytes covered by the brk segment plus all live mappings. *)

val dynamic_bytes : t -> int
(** Bytes the process acquired at runtime: brk extent plus live
    anonymous mappings, {e excluding} fixed maps (shared libraries).
    This is the footprint the fault layer's [oom-pressure] plan
    budgets against — fixed maps are loader baggage, not allocator
    demand. *)

val sbrk_calls : t -> int

val mmap_calls : t -> int

val munmap_calls : t -> int
