module Int_map = Map.Make (Int)
module Int_table = Mb_sim.Int_table

type addr = int

exception Segfault of addr

type config = {
  page_size : int;
  brk_base : addr;
  brk_ceiling : addr;
  mmap_base : addr;
  mmap_top : addr;
}

type region_kind = Anon | Fixed

type region = { len : int; kind : region_kind }

type t = {
  config : config;
  mutable brk : addr;
  mutable anon_bytes : int;            (* total length of live Anon regions *)
  mutable regions : region Int_map.t;  (* keyed by region start address *)
  resident : unit Int_table.t;         (* page-index set: probed once per
                                          simulated page touch, so open
                                          addressing, not Hashtbl buckets *)
  mutable minor_faults : int;
  mutable sbrk_calls : int;
  mutable mmap_calls : int;
  mutable munmap_calls : int;
}

let linux_x86 =
  { page_size = 4096;
    brk_base = 0x0804_8000 + 0x0010_0000;  (* text+data below, heap above *)
    brk_ceiling = 0x4000_0000;             (* ld.so / shared libraries *)
    mmap_base = 0x4020_0000;               (* above the library maps *)
    mmap_top = 0xC000_0000;                (* 3 GB user space limit *)
  }

let create config =
  if config.page_size <= 0 then invalid_arg "Address_space.create: page_size";
  if config.brk_base >= config.brk_ceiling then invalid_arg "Address_space.create: brk range";
  if config.mmap_base >= config.mmap_top then invalid_arg "Address_space.create: mmap range";
  { config;
    brk = config.brk_base;
    anon_bytes = 0;
    regions = Int_map.empty;
    resident = Int_table.create ~initial:1024 ();
    minor_faults = 0;
    sbrk_calls = 0;
    mmap_calls = 0;
    munmap_calls = 0;
  }

let config t = t.config

let page_size t = t.config.page_size

let brk t = t.brk

let round_up_pages t len =
  let p = t.config.page_size in
  (len + p - 1) / p * p

(* Regions strictly below [hi] whose extent may overlap [lo, hi). *)
let overlaps t lo hi =
  (* Candidate 1: the region starting at or after lo but before hi. *)
  let starts_inside =
    match Int_map.find_first_opt (fun start -> start >= lo) t.regions with
    | Some (start, _) when start < hi -> true
    | _ -> false
  in
  if starts_inside then true
  else
    (* Candidate 2: the last region starting before lo may extend into it. *)
    match Int_map.find_last_opt (fun start -> start < lo) t.regions with
    | Some (start, r) -> start + r.len > lo
    | None -> false

let sbrk t delta =
  t.sbrk_calls <- t.sbrk_calls + 1;
  let old_brk = t.brk in
  let new_brk = old_brk + delta in
  if new_brk < t.config.brk_base then None
  else if new_brk > t.config.brk_ceiling then None
  else if delta > 0 && overlaps t old_brk new_brk then None
  else begin
    t.brk <- new_brk;
    if delta < 0 then begin
      (* Shrinking releases residency of the vacated pages. *)
      let p = t.config.page_size in
      let first = (new_brk + p - 1) / p and last = (old_brk + p - 1) / p in
      for page = first to last - 1 do
        Int_table.remove t.resident page
      done
    end;
    Some old_brk
  end

let find_gap t len =
  (* First-fit scan of the mmap zone. Regions are sorted by start, so we
     walk them in order tracking the end of the previous one. *)
  let cfg = t.config in
  let result = ref None in
  let cursor = ref cfg.mmap_base in
  (try
     Int_map.iter
       (fun start r ->
         let stop = start + r.len in
         if start >= cfg.mmap_top then raise Exit;
         if stop <= !cursor then ()
         else if start >= !cursor + len && !cursor + len <= cfg.mmap_top then begin
           result := Some !cursor;
           raise Exit
         end
         else cursor := max !cursor stop)
       t.regions
   with Exit -> ());
  match !result with
  | Some _ as found -> found
  | None ->
      if !cursor >= cfg.mmap_base && !cursor + len <= cfg.mmap_top then Some !cursor else None

let mmap t ~len =
  t.mmap_calls <- t.mmap_calls + 1;
  if len <= 0 then invalid_arg "Address_space.mmap: len <= 0";
  let len = round_up_pages t len in
  match find_gap t len with
  | None -> None
  | Some start ->
      t.regions <- Int_map.add start { len; kind = Anon } t.regions;
      t.anon_bytes <- t.anon_bytes + len;
      Some start

let munmap t addr ~len =
  t.munmap_calls <- t.munmap_calls + 1;
  let len = round_up_pages t len in
  (match Int_map.find_opt addr t.regions with
  | Some r when r.kind = Anon && r.len = len -> ()
  | Some _ -> invalid_arg "Address_space.munmap: length or kind mismatch"
  | None -> invalid_arg "Address_space.munmap: no mapping at address");
  t.regions <- Int_map.remove addr t.regions;
  t.anon_bytes <- t.anon_bytes - len;
  let p = t.config.page_size in
  for page = addr / p to (addr + len - 1) / p do
    Int_table.remove t.resident page
  done

let map_fixed t addr ~len =
  if len <= 0 then invalid_arg "Address_space.map_fixed: len <= 0";
  let len = round_up_pages t len in
  if overlaps t addr (addr + len) then invalid_arg "Address_space.map_fixed: overlap";
  t.regions <- Int_map.add addr { len; kind = Fixed } t.regions

let is_mapped t addr =
  (addr >= t.config.brk_base && addr < t.brk)
  ||
  match Int_map.find_last_opt (fun start -> start <= addr) t.regions with
  | Some (start, r) -> addr < start + r.len
  | None -> false

(* Page walk for [touch], as a top-level function (a local [rec] would
   be a closure allocation per call, and touch runs on every simulated
   memory access). *)
let rec touch_pages t addr p last page faults =
  if page > last then faults
  else if Int_table.mem t.resident page then touch_pages t addr p last (page + 1) faults
  else begin
    (* Check the first unmapped byte of the page range we access. *)
    let probe = if addr > page * p then addr else page * p in
    if not (is_mapped t probe) then raise (Segfault probe);
    Int_table.set t.resident page ();
    t.minor_faults <- t.minor_faults + 1;
    touch_pages t addr p last (page + 1) (faults + 1)
  end

let touch t addr ~len =
  if len <= 0 then invalid_arg "Address_space.touch: len <= 0";
  let p = t.config.page_size in
  let first = addr / p in
  let last = (addr + len - 1) / p in
  (* Fast path: the access stays on one already-resident page — the
     overwhelmingly common case once a benchmark's working set is warm. *)
  if first = last && Int_table.mem t.resident first then 0
  else touch_pages t addr p last first 0

let is_resident t addr = Int_table.mem t.resident (addr / t.config.page_size)

let minor_faults t = t.minor_faults

let resident_pages t = Int_table.length t.resident

let mapped_bytes t =
  let region_bytes = Int_map.fold (fun _ r acc -> acc + r.len) t.regions 0 in
  region_bytes + (t.brk - t.config.brk_base)

let dynamic_bytes t = (t.brk - t.config.brk_base) + t.anon_bytes

let sbrk_calls t = t.sbrk_calls

let mmap_calls t = t.mmap_calls

let munmap_calls t = t.munmap_calls
