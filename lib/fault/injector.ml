module Rng = Mb_prng.Rng

type t = {
  plan : Plan.t option;
  seed : int;
  rng : Rng.t;  (* private stream: decisions never touch workload rngs *)
  mutable injected_reserve : int;
  mutable injected_preempt : int;
  mutable injected_slowlock : int;
  mutable survived : int;
  mutable degraded : int;
}

exception Alloc_failure of { who : string; bytes : int }

let () =
  Printexc.register_printer (function
    | Alloc_failure { who; bytes } ->
        Some (Printf.sprintf "Alloc_failure(%s, %d bytes)" who bytes)
    | _ -> None)

let make plan seed =
  {
    plan;
    seed;
    rng = Rng.create ~seed:(seed * 2 + 1);
    injected_reserve = 0;
    injected_preempt = 0;
    injected_slowlock = 0;
    survived = 0;
    degraded = 0;
  }

let null = make None 0

let create ~plan ~seed = make (Some plan) seed

let armed t = t.plan <> None

let plan t = t.plan

let seed t = t.seed

(* oom-pressure budget: the usable dynamic footprint starts at [base]
   and decays by [decay] bytes per simulated millisecond down to
   [floor]. Reservations that would push the footprint past the budget
   fail. Constants are sized against the quick bench2 configuration:
   its initial populations fit under [base], while per-round thread
   stacks and leak-driven growth late in the run cross the shrunk
   budget and exercise the retry/degradation paths. *)
let oom_base = 1_048_576 (* 1 MiB *)

let oom_floor = 262_144 (* 256 KiB *)

let oom_decay_per_ms = 65_536 (* 64 KiB *)

let oom_budget ~now_ns =
  let ms = now_ns /. 1e6 in
  let shrunk = float_of_int oom_base -. (float_of_int oom_decay_per_ms *. ms) in
  let floor_f = float_of_int oom_floor in
  if shrunk > floor_f then int_of_float shrunk else oom_floor

let veto_reserve t ~now_ns ~load ~len =
  match t.plan with
  | Some Plan.Oom_pressure ->
      let veto = load + len > oom_budget ~now_ns in
      if veto then t.injected_reserve <- t.injected_reserve + 1;
      veto
  | Some Plan.Flaky_reserve ->
      let veto = Rng.int t.rng 8 = 0 in
      if veto then t.injected_reserve <- t.injected_reserve + 1;
      veto
  | _ -> false

let preempt_now t =
  match t.plan with
  | Some Plan.Preempt_storm ->
      let fire = Rng.int t.rng 64 = 0 in
      if fire then t.injected_preempt <- t.injected_preempt + 1;
      fire
  | _ -> false

let slowlock_stretch = 1_200

let stretch_cycles t =
  match t.plan with
  | Some Plan.Slow_lock ->
      if Rng.int t.rng 8 = 0 then begin
        t.injected_slowlock <- t.injected_slowlock + 1;
        slowlock_stretch
      end
      else 0
  | _ -> 0

let note_survived t = t.survived <- t.survived + 1

let note_degraded t = t.degraded <- t.degraded + 1

let max_retries = 4

let backoff_cycles i = 2_000 lsl i

let injected t = t.injected_reserve + t.injected_preempt + t.injected_slowlock

let injected_reserve t = t.injected_reserve

let injected_preempt t = t.injected_preempt

let injected_slowlock t = t.injected_slowlock

let survived t = t.survived

let degraded t = t.degraded
