let state : (Plan.t * int) option Atomic.t = Atomic.make None

let arm p = Atomic.set state p

let armed () = Atomic.get state

let injector () =
  match Atomic.get state with
  | None -> Injector.null
  | Some (plan, seed) -> Injector.create ~plan ~seed
