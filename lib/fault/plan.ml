type t = Oom_pressure | Flaky_reserve | Preempt_storm | Slow_lock

let all =
  [ ("oom-pressure", Oom_pressure);
    ("flaky-reserve", Flaky_reserve);
    ("preempt-storm", Preempt_storm);
    ("slow-lock", Slow_lock);
  ]

let label = function
  | Oom_pressure -> "oom-pressure"
  | Flaky_reserve -> "flaky-reserve"
  | Preempt_storm -> "preempt-storm"
  | Slow_lock -> "slow-lock"

let describe = function
  | Oom_pressure ->
      "usable address space shrinks over simulated time; reservations past the budget fail"
  | Flaky_reserve -> "a seeded fraction of page reservations (sbrk/mmap/stacks) fail"
  | Preempt_storm -> "extra context switches injected at lock acquisition sites"
  | Slow_lock -> "heap-mutex hold times stretched by a seeded extra delay"

let default_seed = 1

let parse s =
  if s = "none" then Ok None
  else begin
    let name, seed =
      match String.index_opt s ':' with
      | None -> (s, Ok default_seed)
      | Some i ->
          let tail = String.sub s (i + 1) (String.length s - i - 1) in
          ( String.sub s 0 i,
            match int_of_string_opt tail with
            | Some n when n >= 0 -> Ok n
            | Some _ | None -> Error (Printf.sprintf "bad fault seed %S" tail) )
    in
    match (List.assoc_opt name all, seed) with
    | _, Error msg -> Error msg
    | Some plan, Ok seed -> Ok (Some (plan, seed))
    | None, Ok _ ->
        Error
          (Printf.sprintf "unknown fault plan %S (try: none, %s)" name
             (String.concat ", " (List.map fst all)))
  end

let to_string = function
  | None -> "none"
  | Some (plan, seed) -> Printf.sprintf "%s:%d" (label plan) seed
