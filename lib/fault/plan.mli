(** Named fault scenarios and the [--faults PLAN[:SEED]] syntax.

    A plan names {e what} to break; the seed fixes {e when}. Together
    they make an injected-fault schedule a reproducible artifact: the
    same plan and seed against the same workload produce byte-identical
    output, which is what lets CI gate on fault runs at all. *)

type t =
  | Oom_pressure   (** shrink the usable address space over simulated
                       time: reservations past a decaying budget fail *)
  | Flaky_reserve  (** fail a seeded fraction of page reservations
                       (sbrk growth, mmap, thread-stack maps) *)
  | Preempt_storm  (** inject extra context switches at lock
                       acquisition sites *)
  | Slow_lock      (** stretch heap-mutex hold times by a seeded
                       extra delay before release *)

val all : (string * t) list
(** Plan names in parse order: ["oom-pressure"], ["flaky-reserve"],
    ["preempt-storm"], ["slow-lock"]. *)

val label : t -> string

val describe : t -> string
(** One-line description for [--help] and reports. *)

val parse : string -> ((t * int) option, string) result
(** [parse s] reads [PLAN[:SEED]]. ["none"] parses to [Ok None] —
    faults stay disarmed and the run is byte-identical to a plain one.
    The seed defaults to 1. [Error msg] on an unknown plan or a
    malformed seed. *)

val to_string : (t * int) option -> string
(** Round-trips {!parse}: [None] prints as ["none"]. *)
