let lock = Mutex.create ()

let published : (string * Injector.t) list ref = ref []  (* reversed arrival order *)

let publish ~label inj =
  if Injector.armed inj then begin
    Mutex.lock lock;
    published := (label, inj) :: !published;
    Mutex.unlock lock
  end

let drain () =
  Mutex.lock lock;
  let runs = List.rev !published in
  published := [];
  Mutex.unlock lock;
  List.stable_sort (fun (a, _) (b, _) -> String.compare a b) runs

let pending () =
  Mutex.lock lock;
  let n = List.length !published in
  Mutex.unlock lock;
  n
