(** Per-machine fault injector: seeded decisions plus outcome counters.

    One injector is attached to each simulated machine (like
    {!Mb_check}'s checker). All of its decisions come from a private
    SplitMix64 stream seeded from the plan seed, {e independent} of the
    machine's workload RNG — so arming a plan never perturbs workload
    randomness, and the same plan+seed against the same workload yields
    an identical injected-event sequence.

    Every decision hook is branch-cheap when disarmed: {!null} answers
    "no fault" without drawing from any stream, which is what keeps the
    faults-off byte-identity guarantee. *)

type t

exception Alloc_failure of { who : string; bytes : int }
(** Structured allocation failure: [who] names the allocator (or
    ["Machine.spawn"] for thread stacks), [bytes] the request size.
    Replaces the historical [failwith "...: out of memory"] crash
    paths; raised by {!Mb_alloc.Allocator.out_of_memory} and caught by
    the instrument-layer retry loop and by workload degradation
    guards. A registered [Printexc] printer renders it readably. *)

val null : t
(** The disarmed injector: never injects, counts nothing. *)

val create : plan:Plan.t -> seed:int -> t
(** A fresh armed injector for one machine/run. *)

val armed : t -> bool

val plan : t -> Plan.t option
(** [None] for {!null}. *)

val seed : t -> int
(** The plan seed ([0] for {!null}). *)

(** {1 Decision hooks}

    Called from {!Mb_machine.Machine} at the instrumented sites. Each
    hook only draws from the stream when its own plan is armed, so
    scenarios stay independent across seeds. *)

val veto_reserve : t -> now_ns:float -> load:int -> len:int -> bool
(** Should this page reservation (sbrk growth, anonymous mmap, thread
    stack) fail?  [load] is the current dynamic footprint in bytes
    ({!Mb_vm.Address_space.dynamic_bytes}), [len] the requested bytes,
    [now_ns] the simulated clock. [oom-pressure] vetoes when
    [load + len] exceeds a budget decaying over simulated time;
    [flaky-reserve] vetoes a seeded 1/8 of calls. Increments the
    injected-reserve counter when it answers [true]. *)

val preempt_now : t -> bool
(** Should an extra context switch fire at this lock-acquisition site?
    [preempt-storm] answers [true] for a seeded 1/64 of calls. *)

val stretch_cycles : t -> int
(** Extra cycles to hold a heap mutex before release. [slow-lock]
    stretches a seeded 1/8 of releases by ~1200 cycles; everyone else
    answers [0]. *)

(** {1 Outcome notes} *)

val note_survived : t -> unit
(** An injected failure was absorbed by retry/backoff (the caller got
    its memory after all). *)

val note_degraded : t -> unit
(** An injected failure exhausted retries and the workload degraded
    gracefully (skipped the operation) instead of crashing. *)

(** {1 Retry policy}

    Exposed so tests can assert the bounds. *)

val max_retries : int
(** Attempts made by {!Mb_alloc.Allocator.instrument}'s resilient
    malloc after the first failure (currently 4). *)

val backoff_cycles : int -> int
(** [backoff_cycles i] is the simulated-cycle delay before retry [i]
    (0-based): exponential, [2000 lsl i]. *)

(** {1 Counters} *)

val injected : t -> int
(** Total injected events: reserve vetoes + preempts + slow-lock
    stretches. *)

val injected_reserve : t -> int

val injected_preempt : t -> int

val injected_slowlock : t -> int

val survived : t -> int

val degraded : t -> int
