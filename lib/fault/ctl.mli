(** Process-wide fault-injection control.

    The CLI (or a test) arms a plan {e before} any machine is built;
    {!Mb_machine.Machine.create} then asks {!injector} for a fresh
    per-machine {!Injector.t}. With no plan armed (the default),
    {!injector} returns {!Injector.null} and every instrumentation
    site stays on the branch-cheap disabled path — output is
    byte-identical to a build without the fault layer.

    The state is one atomic cell, set once per process invocation
    before worker domains spawn, so cross-domain reads are safe. *)

val arm : (Plan.t * int) option -> unit
(** Arm a plan (with its seed) or disarm with [None]. Call before
    starting the runs to be stormed. *)

val armed : unit -> (Plan.t * int) option

val injector : unit -> Injector.t
(** An injector for one new machine: {!Injector.null} when no plan is
    armed, otherwise a fresh armed injector for the current plan and
    seed. *)
