(** Cross-run registry of armed injectors for end-of-invocation
    reporting.

    Workload runs publish their machine's injector (labelled by run)
    after completion; the CLI drains once per invocation and prints
    one [fault:] line per run plus a [degraded:] summary. Disarmed
    injectors are ignored so faults-off runs publish nothing. Labels
    are sorted for deterministic output under the parallel pool. *)

val publish : label:string -> Injector.t -> unit
(** Record one run's injector. No-op when the injector is disarmed. *)

val drain : unit -> (string * Injector.t) list
(** All published injectors since the last drain, stably sorted by
    label. Clears the registry. *)

val pending : unit -> int
(** Number of published-but-undrained injectors (for tests). *)
