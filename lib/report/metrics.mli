(** Rendering of observed counters ({!Mb_obs.Recorder} metrics) as a
    fixed-width table or CSV.

    The input is what {!Mb_obs.Collect.drain} returns: labelled recorders,
    one per observed run, already sorted by label. *)

val to_table : (string * Mb_obs.Recorder.t) list -> Table.t
(** One row per (run, counter) pair in drain order, followed by a totals
    section summing each counter across runs (the cross-run view of e.g.
    [alloc.lock.contended]). *)

val to_csv : (string * Mb_obs.Recorder.t) list -> string
(** Same rows as {!to_table} (without totals) with header
    [run,counter,value]. *)

val print : (string * Mb_obs.Recorder.t) list -> unit
(** [to_table] straight to stdout. *)

val gc_table : before:Gc.stat -> after:Gc.stat -> Table.t
(** Deltas of the allocation-pressure fields of two [Gc.quick_stat]
    snapshots (minor/promoted/major words, collection counts): how hard
    the simulator itself leaned on the host GC between the snapshots. *)

val print_gc : before:Gc.stat -> after:Gc.stat -> unit
(** [gc_table] straight to stdout. *)
