let counters recorders =
  List.concat_map
    (fun (label, r) ->
      List.map (fun (k, v) -> (label, k, v)) (Mb_obs.Recorder.counters r))
    recorders

let to_table recorders =
  let t = Table.make ~title:"Observed counters" ~header:[ "run"; "counter"; "value" ] in
  List.iter
    (fun (label, key, v) -> Table.row t [ label; key; string_of_int v ])
    (counters recorders);
  (match Mb_obs.Recorder.totals recorders with
  | [] -> ()
  | totals ->
      Table.rowf t "totals over %d runs:" (List.length recorders);
      List.iter (fun (key, v) -> Table.row t [ "(all)"; key; string_of_int v ]) totals);
  t

let to_csv recorders =
  Csv.of_rows
    ([ "run"; "counter"; "value" ]
    :: List.map
         (fun (label, key, v) -> [ label; key; string_of_int v ])
         (counters recorders))

let print recorders = Table.print (to_table recorders)
