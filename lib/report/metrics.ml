let counters recorders =
  List.concat_map
    (fun (label, r) ->
      List.map (fun (k, v) -> (label, k, v)) (Mb_obs.Recorder.counters r))
    recorders

let to_table recorders =
  let t = Table.make ~title:"Observed counters" ~header:[ "run"; "counter"; "value" ] in
  List.iter
    (fun (label, key, v) -> Table.row t [ label; key; string_of_int v ])
    (counters recorders);
  (match Mb_obs.Recorder.totals recorders with
  | [] -> ()
  | totals ->
      Table.rowf t "totals over %d runs:" (List.length recorders);
      List.iter (fun (key, v) -> Table.row t [ "(all)"; key; string_of_int v ]) totals);
  t

let to_csv recorders =
  Csv.of_rows
    ([ "run"; "counter"; "value" ]
    :: List.map
         (fun (label, key, v) -> [ label; key; string_of_int v ])
         (counters recorders))

let print recorders = Table.print (to_table recorders)

let gc_table ~(before : Gc.stat) ~(after : Gc.stat) =
  let t =
    Table.make ~title:"Host GC pressure (Gc.quick_stat deltas)"
      ~header:[ "metric"; "delta" ]
  in
  let words name f = Table.row t [ name; Printf.sprintf "%.0f" f ] in
  let count name n = Table.row t [ name; string_of_int n ] in
  words "minor_words" (after.Gc.minor_words -. before.Gc.minor_words);
  words "promoted_words" (after.Gc.promoted_words -. before.Gc.promoted_words);
  words "major_words" (after.Gc.major_words -. before.Gc.major_words);
  count "minor_collections" (after.Gc.minor_collections - before.Gc.minor_collections);
  count "major_collections" (after.Gc.major_collections - before.Gc.major_collections);
  t

let print_gc ~before ~after = Table.print (gc_table ~before ~after)
