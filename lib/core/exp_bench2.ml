module Bench2 = Mb_workload.Bench2
module Factory = Mb_workload.Factory
module Configs = Mb_machine.Configs
module Summary = Mb_stats.Summary
module Series = Mb_stats.Series
module Regression = Mb_stats.Regression
module Table = Mb_report.Table
module Plot = Mb_report.Plot
open Exp_common

let base_params opts machine =
  (* Quick mode shrinks the work per round; shrink the scheduler quantum
     with it so preemption still lands mid-round (the collision source
     behind arena creation) at the same rate as in the full runs. *)
  let machine =
    if opts.quick then
      { machine with Mb_machine.Machine.quantum_us = machine.Mb_machine.Machine.quantum_us /. 2.9 }
    else machine
  in
  { Bench2.default with
    Bench2.machine;
    seed = opts.seed;
    replacements_per_round = pick opts ~full:2_200 ~quick:750;
    objects_per_thread = pick opts ~full:6_000 ~quick:2_000;
  }

let fault_summary results =
  Summary.of_list (List.map (fun r -> float_of_int r.Bench2.minor_faults) results)

let fault_cell params ~threads ~rounds i =
  Bench2.run { params with Bench2.threads; rounds; seed = params.Bench2.seed + (i * 211) }

(* Sweep rounds for a fixed thread count: the shape of figures 5-8.
   Every (rounds, seed) cell is an independent simulation, so the whole
   grid goes to the pool at once — the long 80-round runs of figure 8 no
   longer serialize behind each other — and the flat result list is
   regrouped in submission order, keeping the output byte-identical to
   the sequential nested loops. *)
let rounds_sweep params ~runs ~threads ~rounds_list =
  let pool = Mb_parallel.Pool.global () in
  let cells =
    List.concat_map (fun rounds -> List.init runs (fun i -> (rounds, i))) rounds_list
  in
  let results =
    Mb_parallel.Pool.map_list pool ~key:"bench2-cell"
      ~f:(fun _ (rounds, i) -> fault_cell params ~threads ~rounds i)
      cells
  in
  let rec take n xs =
    if n = 0 then ([], xs)
    else
      match xs with
      | x :: tl ->
          let a, b = take (n - 1) tl in
          (x :: a, b)
      | [] -> invalid_arg "rounds_sweep: result list shorter than the grid"
  in
  let rec regroup acc results = function
    | [] -> List.rev acc
    | rounds :: rest ->
        let group, results = take runs results in
        regroup ((rounds, (fault_summary group, group)) :: acc) results rest
  in
  regroup [] results rounds_list

let sweep_series label data =
  [ Series.of_summaries ~label:(label ^ " avg")
      (List.map (fun (r, (s, _)) -> (float_of_int r, s)) data);
    Series.make ~label:(label ^ " min")
      (List.map (fun (r, ((s : Summary.t), _)) -> (float_of_int r, s.Summary.min)) data);
    Series.make ~label:(label ^ " max")
      (List.map (fun (r, ((s : Summary.t), _)) -> (float_of_int r, s.Summary.max)) data);
  ]

(* Our own lower-bound predictor, fitted like the paper's: the per-round
   term is the slope of the single-thread rounds sweep (no contention, so
   deterministic — figure 5's line), and the per-thread term is the
   minimum across seeds of the one-round cost of adding a thread (the
   minimum filters out runs where a leak event fired, since the paper's
   predictor is explicitly a lower bound). *)
let fit_our_predictor params =
  let faults ?(seed = params.Bench2.seed) ~threads ~rounds () =
    (Bench2.run { params with Bench2.threads; rounds; seed }).Bench2.minor_faults
  in
  let single = List.map (fun r -> (float_of_int r, float_of_int (faults ~threads:1 ~rounds:r ()))) [ 1; 3; 5; 8 ] in
  let a = (Regression.fit single).Regression.slope in
  let one_thread = faults ~threads:1 ~rounds:1 () in
  let two_threads =
    List.fold_left
      (fun acc i -> min acc (faults ~seed:(params.Bench2.seed + (i * 389)) ~threads:2 ~rounds:1 ()))
      max_int [ 0; 1; 2 ]
  in
  let b = float_of_int (two_threads - one_thread) in
  (a, b)

let predictor opts =
  let params = base_params opts Configs.uni_k6 in
  let a, b = fit_our_predictor params in
  let title = "Benchmark 2 fault predictor: base + a*t*r + b*t" in
  let tbl = Table.make ~title ~header:[ "coefficient"; "ours"; "paper" ] in
  Table.row tbl [ "per round per thread (a)"; Table.cell_f2 a; Table.cell_f2 Paper_data.predictor_per_round_thread ];
  Table.row tbl [ "per thread (b)"; Table.cell_f2 b; Table.cell_f2 Paper_data.predictor_per_thread ];
  Table.rowf tbl "paper: mpf = 14 + 1.1*t*r + 127.6*t  (t threads, r rounds)";
  let expected_b =
    (* Our deterministic floor: the object pages + the address array +
       the sub-heap top page, with 48-byte chunks for 40-byte objects. *)
    float_of_int params.Bench2.objects_per_thread *. 48. /. 4096.
  in
  { Outcome.id = "predictor";
    title;
    text = Table.to_string tbl;
    series = [];
    checks =
      [ Outcome.check "per-round term ~ 1 page per pthread_create" (a >= 0.8 && a <= 2.5)
          "a = %.2f (paper 1.1)" a;
        Outcome.check "per-thread term ~ object+array pages" (abs_float (b -. expected_b) /. expected_b < 0.25)
          "b = %.1f vs expected %.1f (paper %.1f at 10k objects)" b expected_b
          Paper_data.predictor_per_thread;
      ];
  }

let fig_outcome ~id ~title ~machine ~threads ~rounds_list ~checks_of opts =
  let params = base_params opts machine in
  let runs = pick opts ~full:5 ~quick:2 in
  let data = rounds_sweep params ~runs ~threads ~rounds_list in
  let series = sweep_series (Printf.sprintf "%d-thread" threads) data in
  let plot = Plot.render ~title ~x_label:"number of rounds" ~y_label:"minor page faults" series in
  let tbl =
    Table.make ~title:"data" ~header:[ "rounds"; "avg"; "min"; "max"; "spread%"; "predictor(paper)" ]
  in
  List.iter
    (fun (r, ((s : Summary.t), _)) ->
      Table.row tbl
        [ string_of_int r; Printf.sprintf "%.0f" s.Summary.mean; Printf.sprintf "%.0f" s.Summary.min;
          Printf.sprintf "%.0f" s.Summary.max;
          Printf.sprintf "%.0f%%" (Summary.spread s *. 100.);
          Printf.sprintf "%.0f" (Bench2.paper_predictor ~threads ~rounds:r);
        ])
    data;
  { Outcome.id;
    title;
    text = plot ^ "\n" ^ Table.to_string tbl;
    series;
    checks = checks_of data;
  }

let fig5 opts =
  fig_outcome ~id:"fig5"
    ~title:"Figure 5: rounds vs minor page faults, single thread (uniprocessor K6)"
    ~machine:Configs.uni_k6 ~threads:1
    ~rounds_list:[ 1; 2; 3; 4; 5; 6; 7; 8 ]
    ~checks_of:(fun data ->
      let pts =
        List.map (fun (r, ((s : Summary.t), _)) -> (float_of_int r, s.Summary.mean)) data
      in
      let reg = Regression.fit pts in
      [ Outcome.check "deterministic (no contention => no variance)"
          (List.for_all (fun (_, ((s : Summary.t), _)) -> Summary.spread s < 0.02) data)
          "max spread %.2f%%"
          (List.fold_left (fun m (_, (s, _)) -> max m (Summary.spread s *. 100.)) 0. data);
        Outcome.check "about one extra page per round" (reg.Regression.slope >= 0.8 && reg.Regression.slope <= 2.5)
          "slope %.2f faults/round (paper 1.1)" reg.Regression.slope;
        Outcome.check "linear in rounds" (reg.Regression.r2 > 0.97) "r2=%.4f" reg.Regression.r2;
      ])
    opts

let fig6 opts =
  fig_outcome ~id:"fig6"
    ~title:"Figure 6: rounds vs minor page faults, three threads (uniprocessor K6)"
    ~machine:Configs.uni_k6 ~threads:3
    ~rounds_list:[ 1; 2; 3; 4; 5; 6; 7; 8 ]
    ~checks_of:(fun data ->
      let spreads = List.map (fun (_, (s, _)) -> Summary.spread s) data in
      let max_spread = List.fold_left max 0. spreads in
      let min_at r = (fst (List.assoc r data)).Summary.min in
      [ Outcome.check "leakage variance appears under contention" (max_spread > 0.03)
          "max spread %.1f%% (paper 25-50%%)" (max_spread *. 100.);
        Outcome.check "minimum faults grow about a page per thread per round"
          (min_at 8 >= min_at 1 +. (0.5 *. 3. *. 7.))
          "min at 1 round %.0f, at 8 rounds %.0f (paper: 399 + 3/round)" (min_at 1) (min_at 8);
      ])
    opts

let fig7 opts =
  let params = base_params opts Configs.uni_k6 in
  let runs = pick opts ~full:5 ~quick:2 in
  let rounds_list = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let data3 = rounds_sweep params ~runs ~threads:3 ~rounds_list in
  let data7 = rounds_sweep params ~runs ~threads:7 ~rounds_list in
  let title = "Figure 7: rounds vs minor page faults, seven threads (uniprocessor K6)" in
  let series = sweep_series "7-thread" data7 in
  let plot = Plot.render ~title ~x_label:"number of rounds" ~y_label:"minor page faults" series in
  let avg_spread data =
    let spreads = List.map (fun (_, (s, _)) -> Summary.spread s) data in
    List.fold_left ( +. ) 0. spreads /. float_of_int (List.length spreads)
  in
  let s3 = avg_spread data3 and s7 = avg_spread data7 in
  { Outcome.id = "fig7";
    title;
    text = plot;
    series;
    checks =
      [ Outcome.check "relative variance shrinks with more threads" (s7 <= s3 +. 0.02)
          "avg spread: 7 threads %.1f%% vs 3 threads %.1f%% (paper: 9-18%% vs 25-50%%)"
          (s7 *. 100.) (s3 *. 100.);
      ];
  }

let fig8 opts =
  let machine = Configs.quad_xeon in
  let params = base_params opts machine in
  let runs = pick opts ~full:3 ~quick:1 in
  let threads = 7 in
  let rounds_list = pick opts ~full:[ 10; 20; 40; 80 ] ~quick:[ 4; 8 ] in
  let data = rounds_sweep params ~runs ~threads ~rounds_list in
  let title = "Figure 8: rounds vs minor page faults, seven threads on the 4-way Xeon" in
  let predictor_series =
    Series.make ~label:"paper predictor"
      (List.map
         (fun r -> (float_of_int r, Bench2.paper_predictor ~threads ~rounds:r))
         rounds_list)
  in
  let series = sweep_series "7-thread/4-cpu" data @ [ predictor_series ] in
  let plot = Plot.render ~title ~x_label:"number of rounds" ~y_label:"minor page faults" series in
  let pts = List.map (fun (r, ((s : Summary.t), _)) -> (float_of_int r, s.Summary.mean)) data in
  let reg = Regression.fit pts in
  let per_round_per_thread = reg.Regression.slope /. float_of_int threads in
  let last_rounds = List.nth rounds_list (List.length rounds_list - 1) in
  let last_mean = (fst (List.assoc last_rounds data)).Summary.mean in
  let floor_estimate =
    (* our chunks are 48B; arrays and startup add the rest *)
    float_of_int (threads * params.Bench2.objects_per_thread) *. 48. /. 4096.
  in
  { Outcome.id = "fig8";
    title;
    text = plot;
    series;
    checks =
      [ Outcome.check "fault growth linear in rounds" (reg.Regression.r2 > 0.85) "r2=%.4f" reg.Regression.r2;
        Outcome.check "slope ~ a page per thread-round" (per_round_per_thread >= 0.5 && per_round_per_thread <= 4.)
          "%.2f faults/round/thread (paper ~1.1)" per_round_per_thread;
        Outcome.check "growth bounded (no pathological leak)"
          (last_mean < 3. *. (floor_estimate +. reg.Regression.slope *. float_of_int last_rounds))
          "faults at %d rounds = %.0f, floor %.0f" last_rounds last_mean floor_estimate;
      ];
  }
