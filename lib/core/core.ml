(** malloc-repro: reproduction of Lever & Boreham, "malloc() Performance
    in a Multithreaded Linux Environment" (USENIX FREENIX 2000).

    This module is the library facade: it re-exports the experiment
    registry plus aliases for every layer of the stack, so applications
    can use [Core.Machine], [Core.Ptmalloc], ... without depending on the
    individual [mb_*] libraries. *)

(* The experiment harness. *)
module Outcome = Outcome
module Exp_common = Exp_common
module Exp_bench1 = Exp_bench1
module Exp_bench2 = Exp_bench2
module Exp_bench3 = Exp_bench3
module Exp_extra = Exp_extra
module Experiments = Experiments
module Paper_data = Paper_data

(* The simulated platform. *)
module Engine = Mb_sim.Engine
module Pqueue = Mb_sim.Pqueue
module Int_table = Mb_sim.Int_table
module Machine = Mb_machine.Machine
module Configs = Mb_machine.Configs
module Address_space = Mb_vm.Address_space
module Coherence = Mb_cache.Coherence

(* The allocators. *)
module Allocator = Mb_alloc.Allocator
module Astats = Mb_alloc.Astats
module Costs = Mb_alloc.Costs
module Dlheap = Mb_alloc.Dlheap
module Ptmalloc = Mb_alloc.Ptmalloc
module Serial = Mb_alloc.Serial
module Perthread = Mb_alloc.Perthread
module Slab = Mb_alloc.Slab
module Hoard = Mb_alloc.Hoard
module Aligned = Mb_alloc.Aligned

(* The workloads. *)
module Factory = Mb_workload.Factory
module Bench1 = Mb_workload.Bench1
module Bench2 = Mb_workload.Bench2
module Bench3 = Mb_workload.Bench3
module Server = Mb_workload.Server
module Arrivals = Mb_workload.Arrivals
module Latency = Mb_workload.Latency
module Trace = Mb_workload.Trace
module Larson = Mb_workload.Larson

(* The suite layer: declarative benchmark suites, session history and
   the trend-aware regression gate. *)
module Suite = Mb_suite

(* Observability. *)
module Obs = Mb_obs
module Check = Mb_check
module Fault = Mb_fault
module Metrics = Mb_report.Metrics

(* Support. *)
module Pool = Mb_parallel.Pool
module Rng = Mb_prng.Rng
module Summary = Mb_stats.Summary
module Series = Mb_stats.Series
module Regression = Mb_stats.Regression
module Histogram = Mb_stats.Histogram
module Table = Mb_report.Table
module Plot = Mb_report.Plot
module Csv = Mb_report.Csv
