type check = {
  label : string;
  pass : bool;
  detail : string;
}

type t = {
  id : string;
  title : string;
  text : string;
  series : Mb_stats.Series.t list;
  checks : check list;
}

let check label pass fmt = Printf.ksprintf (fun detail -> { label; pass; detail }) fmt

let passed t = List.for_all (fun c -> c.pass) t.checks

let summary_line t =
  let pass = List.length (List.filter (fun c -> c.pass) t.checks) in
  let total = List.length t.checks in
  Printf.sprintf "%-16s %s (%d/%d checks)" t.id (if pass = total then "OK  " else "FAIL") pass total

let to_string t =
  let b = Buffer.create 256 in
  Printf.bprintf b "=== %s: %s ===\n%s\n" t.id t.title t.text;
  List.iter
    (fun c ->
      Printf.bprintf b "  [%s] %s: %s\n" (if c.pass then "pass" else "FAIL") c.label c.detail)
    t.checks;
  Buffer.add_char b '\n';
  Buffer.contents b

let print t = print_string (to_string t)
