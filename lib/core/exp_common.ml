module Bench1 = Mb_workload.Bench1
module Summary = Mb_stats.Summary
module Pool = Mb_parallel.Pool

type opts = { quick : bool; seed : int }

let default_opts = { quick = false; seed = 1 }

let quick_opts = { quick = true; seed = 1 }

let pick opts ~full ~quick = if opts.quick then quick else full

let bench1_runs ?pool params ~runs =
  let pool = match pool with Some p -> p | None -> Pool.global () in
  (* Each repeat is seeded independently, so the repeats are embarrassingly
     parallel; joining in submission order keeps the result list identical
     to the sequential List.init it replaces. *)
  let results =
    Pool.map_list pool ~key:"bench1-run"
      ~f:(fun i () -> Bench1.run { params with Bench1.seed = params.Bench1.seed + (i * 101) })
      (List.init runs (fun _ -> ()))
  in
  let workers = params.Bench1.workers in
  (* Single-pass transpose: materialize each run's per-worker times once
     (O(runs * workers)) instead of List.nth per cell (O(runs * workers^2)). *)
  let rows = List.map (fun r -> Array.of_list r.Bench1.scaled_s) results in
  let per_position =
    List.init workers (fun pos -> Summary.of_list (List.map (fun row -> row.(pos)) rows))
  in
  (per_position, results)

let mean_of summaries =
  let total = List.fold_left (fun acc s -> acc +. s.Summary.mean) 0. summaries in
  total /. float_of_int (List.length summaries)

let single_thread_time params =
  let r = Bench1.run { params with Mb_workload.Bench1.workers = 1 } in
  List.hd r.Bench1.scaled_s

let paper_series ~label pts = Mb_stats.Series.make ~label pts
