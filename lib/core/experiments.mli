(** The experiment registry: every table and figure of the paper, plus
    the ablations and future-work extensions, addressable by id. *)

type runner = Exp_common.opts -> Outcome.t

val paper_artifacts : (string * runner) list
(** In paper order: table1, fig1, fig2, table2, fig3, table3, fig4,
    table4, predictor, fig5..fig8, bench3-baseline, fig9..fig11. *)

val extensions : (string * runner) list
(** ablate-spin, ablate-arenas, ablate-atomics, shootout,
    latency-uptime, trace-replay, slab. *)

val all : (string * runner) list

val find : string -> runner option

val ids : string list

val suite_registry : Mb_suite.Runner.exp_registry
(** The registry as {!Mb_suite.Runner} consumes it: ids in registry
    order, plus a quiet runner per id whose [print] emits exactly what
    {!run_all} would echo for that experiment. *)

val run_all :
  ?jobs:int -> ?echo:bool -> ?only:string list -> Exp_common.opts -> Outcome.t list
(** Runs (a subset of) the registry, printing each outcome (unless
    [~echo:false]) and returning them in registry order.

    Experiments execute on a domain pool: [?jobs] forces a dedicated
    pool of that width for this call; otherwise the global pool is used
    (width [MALLOC_REPRO_JOBS], default
    [Domain.recommended_domain_count ()]). Results and printed output
    are byte-identical for every width — parallelism only changes wall
    clock. *)
