module Bench1 = Mb_workload.Bench1
module Server = Mb_workload.Server
module Trace = Mb_workload.Trace
module Factory = Mb_workload.Factory
module Configs = Mb_machine.Configs
module Machine = Mb_machine.Machine
module Summary = Mb_stats.Summary
module Series = Mb_stats.Series
module Table = Mb_report.Table
module Plot = Mb_report.Plot
module A = Mb_alloc.Allocator
module Fault = Mb_fault.Injector
open Exp_common

let ablate_spin opts =
  (* The same single-lock dlmalloc, on the same 2-CPU hardware, with the
     only difference being whether contended mutexes spin before
     blocking. *)
  let machine_spin = Configs.dual_pentium_pro in
  let machine_nospin = { machine_spin with Machine.spin_cycles = 0; mutex_handoff = true } in
  let params machine =
    { Bench1.default with
      Bench1.machine;
      seed = opts.seed;
      iterations = pick opts ~full:30_000 ~quick:6_000;
      workers = 2;
      size = 512;
      factory = Factory.serial_glibc ();
    }
  in
  let spin, _ = bench1_runs (params machine_spin) ~runs:(pick opts ~full:3 ~quick:1) in
  let nospin, _ = bench1_runs (params machine_nospin) ~runs:(pick opts ~full:3 ~quick:1) in
  let s = mean_of spin and n = mean_of nospin in
  let title = "Ablation: adaptive spin vs immediate block (single-lock allocator, 2 threads, 2 CPUs)" in
  let tbl = Table.make ~title ~header:[ "mutex policy"; "mean elapsed (s)" ] in
  Table.row tbl [ "spin then block (Linux-like)"; Table.cell_f2 s ];
  Table.row tbl [ "block immediately (Solaris 2.6-like)"; Table.cell_f2 n ];
  { Outcome.id = "ablate-spin";
    title;
    text = Table.to_string tbl;
    series = [];
    checks =
      [ Outcome.check "blocking convoy costs more than spinning" (n > s *. 1.5)
          "no-spin %.1f s vs spin %.1f s (%.1fx)" n s (n /. s);
      ];
  }

let ablate_arenas opts =
  let machine = Configs.quad_xeon in
  let params factory =
    { Bench1.default with
      Bench1.machine;
      seed = opts.seed;
      iterations = pick opts ~full:30_000 ~quick:6_000;
      workers = 4;
      size = 512;
      factory;
    }
  in
  let costs = Mb_alloc.Costs.scaled Mb_alloc.Costs.glibc Exp_bench1.xeon_cost_scale in
  let unlimited, _ =
    bench1_runs (params (Factory.ptmalloc ~costs ())) ~runs:(pick opts ~full:3 ~quick:1)
  in
  let capped, capped_results =
    bench1_runs (params (Factory.ptmalloc ~costs ~max_arenas:1 ())) ~runs:(pick opts ~full:3 ~quick:1)
  in
  let u = mean_of unlimited and c = mean_of capped in
  let blocks = List.fold_left (fun acc r -> acc + r.Bench1.blocks) 0 capped_results in
  let title = "Ablation: ptmalloc with unlimited arenas vs capped at one (4 threads, 4 CPUs)" in
  let tbl = Table.make ~title ~header:[ "arena policy"; "mean elapsed (s)"; "mutex blocks" ] in
  Table.row tbl [ "grow on contention (glibc)"; Table.cell_f2 u; "-" ];
  Table.row tbl [ "single arena"; Table.cell_f2 c; string_of_int blocks ];
  { Outcome.id = "ablate-arenas";
    title;
    text = Table.to_string tbl;
    series = [];
    checks =
      [ Outcome.check "arena growth is what buys scalability" (c > u *. 1.4)
          "capped %.1f s vs unlimited %.1f s (%.1fx)" c u (c /. u);
      ];
  }

let ablate_atomics opts =
  let base = Configs.quad_xeon in
  let costs = Mb_alloc.Costs.scaled Mb_alloc.Costs.glibc Exp_bench1.xeon_cost_scale in
  let gap atomic_cycles =
    let machine = { base with Machine.atomic_cycles } in
    let params =
      { Bench1.default with
        Bench1.machine;
        seed = opts.seed;
        iterations = pick opts ~full:25_000 ~quick:6_000;
        workers = 2;
        size = 512;
        factory = Factory.ptmalloc ~costs ();
      }
    in
    let thr, _ = bench1_runs { params with Bench1.mode = Bench1.Threads } ~runs:1 in
    let prc, _ = bench1_runs { params with Bench1.mode = Bench1.Processes } ~runs:1 in
    mean_of thr /. mean_of prc
  in
  let points = List.map (fun a -> (a, gap a)) [ 2; 14; 26; 50 ] in
  let title = "Ablation: thread-vs-process gap as a function of atomic lock cost (Tables 1/3 mechanism)" in
  let tbl = Table.make ~title ~header:[ "atomic cycles"; "threads/processes ratio" ] in
  List.iter (fun (a, g) -> Table.row tbl [ string_of_int a; Printf.sprintf "%.3f" g ]) points;
  let monotone =
    let rec inc = function
      | (_, g1) :: ((_, g2) :: _ as rest) -> g2 >= g1 -. 0.01 && inc rest
      | _ -> true
    in
    inc points
  in
  { Outcome.id = "ablate-atomics";
    title;
    text = Table.to_string tbl;
    series = [ Series.make ~label:"gap" (List.map (fun (a, g) -> (float_of_int a, g)) points) ];
    checks =
      [ Outcome.check "gap grows with atomic cost" monotone "%s"
          (String.concat " " (List.map (fun (a, g) -> Printf.sprintf "%d:%.3f" a g) points));
        Outcome.check "stub-cost locks close the gap" (snd (List.hd points) < 1.05)
          "gap at 2 cycles = %.3f" (snd (List.hd points));
      ];
  }

let shootout opts =
  let machine = Configs.dual_pentium_pro in
  let factories =
    [ Factory.ptmalloc (); Factory.serial_glibc (); Factory.serial_solaris (); Factory.perthread ();
      Factory.slab (); Factory.hoard ();
    ]
  in
  let threads = pick opts ~full:[ 1; 2; 4; 8 ] ~quick:[ 1; 2; 4 ] in
  let time factory workers =
    let params =
      { Bench1.default with
        Bench1.machine;
        seed = opts.seed;
        iterations = pick opts ~full:20_000 ~quick:5_000;
        workers;
        size = 512;
        factory;
      }
    in
    Bench1.mean_scaled (Bench1.run params)
  in
  let rows = List.map (fun f -> (f.Factory.label, List.map (time f) threads)) factories in
  let title = "Allocator shootout: mean scaled time (s), 512B pairs, dual Pentium Pro" in
  let tbl =
    Table.make ~title ~header:("allocator" :: List.map (fun t -> Printf.sprintf "%dT" t) threads)
  in
  List.iter (fun (label, times) -> Table.row tbl (label :: List.map Table.cell_f2 times)) rows;
  let at label t =
    let times = List.assoc label rows in
    List.nth times (match List.find_index (( = ) t) threads with Some i -> i | None -> 0)
  in
  let last = List.nth threads (List.length threads - 1) in
  { Outcome.id = "shootout";
    title;
    text = Table.to_string tbl;
    series =
      List.map
        (fun (label, times) ->
          Series.make ~label (List.map2 (fun t v -> (float_of_int t, v)) threads times))
        rows;
    checks =
      [ Outcome.check "single lock loses to ptmalloc under concurrency"
          (at "serial-glibc" last > at "ptmalloc" last *. 1.3)
          "serial %.1f s vs ptmalloc %.1f s at %d threads" (at "serial-glibc" last)
          (at "ptmalloc" last) last;
        Outcome.check "per-thread caches win at scale" (at "perthread" last < at "ptmalloc" last *. 1.05)
          "perthread %.1f s vs ptmalloc %.1f s at %d threads" (at "perthread" last)
          (at "ptmalloc" last) last;
        Outcome.check "hoard scales past the shared-arena design"
          (at "hoard" last < at "ptmalloc" last)
          "hoard %.1f s vs ptmalloc %.1f s at %d threads" (at "hoard" last) (at "ptmalloc" last) last;
      ];
  }

(* The paper's section 3: pre-2.3.5 kernels serialized VM syscalls behind
   the big kernel lock; the authors patched sbrk to avoid it. A
   syscall-heavy load (requests above the mmap threshold, so every
   operation is an mmap+munmap pair) shows what the lock costs. *)
let ablate_bkl opts =
  let time with_bkl =
    let machine = { Configs.quad_xeon with Machine.vm_syscalls_take_bkl = with_bkl } in
    let m = Machine.create ~seed:opts.seed machine in
    let proc = Machine.create_proc m ~name:"bkl" () in
    let alloc = (Factory.ptmalloc ()).Factory.create proc in
    let iters = pick opts ~full:2_000 ~quick:500 in
    let workers =
      List.init 4 (fun i ->
          Machine.spawn proc ~name:(string_of_int i) (fun ctx ->
              let fault = Machine.ctx_fault ctx in
              for _ = 1 to iters do
                match alloc.A.malloc ctx (256 * 1024) with
                | u -> alloc.A.free ctx u
                | exception Fault.Alloc_failure _ -> Fault.note_degraded fault
              done))
    in
    Machine.run m;
    List.fold_left (fun acc w -> acc +. (Machine.elapsed_ns w /. 1e6)) 0. workers
      /. float_of_int (List.length workers)
  in
  let locked = time true and unlocked = time false in
  let title = "Ablation: VM syscalls behind the big kernel lock (4 threads of mmap-heavy malloc)" in
  let tbl = Table.make ~title ~header:[ "kernel"; "mean elapsed (ms, simulated)" ] in
  Table.row tbl [ "BKL on every mmap/munmap (pre-2.3.5)"; Table.cell_f2 locked ];
  Table.row tbl [ "lock-free VM path (the paper's patch)"; Table.cell_f2 unlocked ];
  { Outcome.id = "ablate-bkl";
    title;
    text = Table.to_string tbl;
    series = [];
    checks =
      [ Outcome.check "kernel lock serializes allocation syscalls" (locked > unlocked *. 1.15)
          "with BKL %.1f ms vs without %.1f ms (%.2fx)" locked unlocked (locked /. unlocked);
      ];
  }

(* Section 3's address-space story: "sbrk is not smart enough to allocate
   around pre-existing mappings ... later versions (post 2.1.3) of glibc
   have special logic to retry an arena allocation with mmap if sbrk
   fails." We crowd the brk zone with a library mapping and compare the
   two libc generations. *)
let ablate_crowding opts =
  let crowded_vm =
    (* Leave the heap only 24 pages before it runs into a mapping. *)
    { Mb_vm.Address_space.linux_x86 with
      Mb_vm.Address_space.brk_ceiling =
        Mb_vm.Address_space.linux_x86.Mb_vm.Address_space.brk_base + (24 * 4096);
    }
  in
  let machine = { Configs.dual_pentium_pro with Machine.vm = crowded_vm } in
  let live_blocks = pick opts ~full:3_000 ~quick:800 in
  let run_generation ~mmap_fallback =
    let m = Machine.create ~seed:opts.seed machine in
    let proc = Machine.create_proc m ~name:"crowded" () in
    let params = { Mb_alloc.Dlheap.default_params with Mb_alloc.Dlheap.mmap_fallback } in
    (* One arena: growing a subheap list is ptmalloc's own escape hatch;
       the generations differ in what the *main* heap does when sbrk is
       blocked. *)
    let pt = Mb_alloc.Ptmalloc.make proc ~params ~max_arenas:1 () in
    let alloc = Mb_alloc.Ptmalloc.allocator pt in
    let outcome = ref `Ok in
    let th =
      Machine.spawn proc (fun ctx ->
          (try
             (* A server-like footprint well past the 96KB brk window. *)
             let blocks = List.init live_blocks (fun _ -> alloc.A.malloc ctx 512) in
             List.iter (fun u -> alloc.A.free ctx u) blocks
           with Fault.Alloc_failure { who; bytes } ->
             outcome := `Oom (Printf.sprintf "%s: out of memory (%d bytes)" who bytes));
          ())
    in
    Machine.run m;
    let grew = alloc.A.stats.Mb_alloc.Astats.grow_failures in
    let mmapped = alloc.A.stats.Mb_alloc.Astats.mmapped_chunks in
    (!outcome, grew, mmapped, Machine.elapsed_ns th /. 1e6)
  in
  let modern, m_grew, m_mmapped, m_ms = run_generation ~mmap_fallback:true in
  let old, o_grew, _, _ = run_generation ~mmap_fallback:false in
  let title =
    "Ablation: crowded address space — post-2.1.3 mmap retry vs the older libc (96KB brk window)"
  in
  let tbl = Table.make ~title ~header:[ "libc"; "result"; "sbrk failures"; "mmap fallbacks" ] in
  Table.row tbl
    [ "post-2.1.3 (retry with mmap)";
      (match modern with `Ok -> Printf.sprintf "completes in %.1f ms" m_ms | `Oom _ -> "OOM");
      string_of_int m_grew; string_of_int m_mmapped;
    ];
  Table.row tbl
    [ "pre-2.1.3 (sbrk only)";
      (match old with `Ok -> "completes" | `Oom _ -> "out of memory");
      string_of_int o_grew; "-";
    ];
  { Outcome.id = "ablate-crowding";
    title;
    text = Table.to_string tbl;
    series = [];
    checks =
      [ Outcome.check "modern libc survives a crowded brk zone"
          (modern = `Ok && m_mmapped > 0)
          "completed with %d sbrk failures bridged by %d mmaps" m_grew m_mmapped;
        Outcome.check "older libc fails where the paper says it does"
          (match old with `Oom _ -> true | `Ok -> false)
          "sbrk-only allocation aborts after %d growth failures" o_grew;
      ];
  }

(* The glibc-2.3 evolution: fastbins skip coalescing for small chunks.
   Measured on the paper's benchmark-1 loop at the server-typical 40-byte
   size. *)
let ablate_fastbins opts =
  let time use_fastbins =
    let params = { Mb_alloc.Dlheap.default_params with Mb_alloc.Dlheap.use_fastbins } in
    let m = Machine.create ~seed:opts.seed Configs.dual_pentium_pro in
    let proc = Machine.create_proc m ~name:"fb" () in
    let pt = Mb_alloc.Ptmalloc.make proc ~params () in
    let alloc = Mb_alloc.Ptmalloc.allocator pt in
    let iters = pick opts ~full:30_000 ~quick:6_000 in
    let th =
      Machine.spawn proc (fun ctx ->
          let fault = Machine.ctx_fault ctx in
          for _ = 1 to iters do
            match alloc.A.malloc ctx 40 with
            | u -> alloc.A.free ctx u
            | exception Fault.Alloc_failure _ -> Fault.note_degraded fault
          done)
    in
    Machine.run m;
    (match alloc.A.validate () with
    | Ok () -> ()
    | Error msg -> failwith ("ablate-fastbins: " ^ msg));
    Machine.elapsed_ns th /. float_of_int iters
  in
  let classic = time false and fast = time true in
  let title = "Ablation: glibc-2.3-style fastbins on the 40-byte malloc/free loop (dual PPro)" in
  let tbl = Table.make ~title ~header:[ "allocator"; "ns per malloc/free pair (simulated)" ] in
  Table.row tbl [ "glibc 2.0/2.1 (study subject)"; Printf.sprintf "%.0f" classic ];
  Table.row tbl [ "with fastbins"; Printf.sprintf "%.0f" fast ];
  { Outcome.id = "ablate-fastbins";
    title;
    text = Table.to_string tbl;
    series = [];
    checks =
      [ Outcome.check "fastbins shorten the small-chunk path" (fast < classic *. 0.9)
          "%.0f ns vs %.0f ns per pair (%.0f%% saved)" fast classic
          ((classic -. fast) /. classic *. 100.);
      ];
  }

let latency_uptime opts =
  let params =
    { Server.default with
      Server.seed = opts.seed;
      threads = 4;
      requests_per_thread = pick opts ~full:4_000 ~quick:800;
      probe_latency = true;
    }
  in
  let r = Server.run params in
  let probe = match r.Server.latency with Some p -> p | None -> assert false in
  let title = "Future work: malloc latency over server uptime (ptmalloc, 4-thread server)" in
  let series =
    [ Series.make ~label:"window mean latency (ns)"
        (List.map (fun (t, v) -> (t /. 1e6, v)) probe.Server.window_means);
    ]
  in
  let plot = Plot.render ~title ~x_label:"uptime (ms)" ~y_label:"malloc latency (ns)" series in
  { Outcome.id = "latency-uptime";
    title;
    text =
      plot
      ^ Printf.sprintf "\nmean=%.0f ns  p99=%.0f ns  drift(last/first)=%.2f\n"
          probe.Server.malloc_mean_ns probe.Server.malloc_p99_ns probe.Server.drift;
    series;
    checks =
      [ Outcome.check "latency does not drift with uptime"
          (probe.Server.drift < 1.5 && probe.Server.drift > 0.5)
          "drift %.2f (paper expects ~no change)" probe.Server.drift;
      ];
  }

(* The paper's Table 2 collapse, rediscovered as a latency cliff: drive
   the server open loop at a rising fraction of its measured closed-loop
   capacity and watch p99 walk off a cliff as each allocator saturates.
   All five allocators face the *same* offered loads (calibrated once,
   with ptmalloc), so the sweep is an apples-to-apples race: the
   allocator that saturates first shows the cliff at a lower load. *)
let server_knee opts =
  let machine = Configs.quad_xeon in
  let threads = 4 in
  let connections = 128 in
  (* Capacity calibration: a closed-loop run can never overshoot the
     server, so its throughput is (a slight underestimate of) the
     saturation rate. Deterministic, so the derived offered loads are
     too. *)
  let calib =
    Server.run
      { Server.default with
        Server.machine;
        seed = opts.seed;
        threads;
        connections;
        requests_per_thread = pick opts ~full:2_000 ~quick:500;
      }
  in
  let capacity_rps = calib.Server.requests_per_second in
  let loads = pick opts ~full:[ 0.3; 0.6; 0.9; 1.2; 1.5 ] ~quick:[ 0.4; 0.9; 1.4 ] in
  let total_requests = pick opts ~full:40_000 ~quick:1_500 in
  let factories =
    [ Factory.ptmalloc (); Factory.serial_glibc (); Factory.perthread (); Factory.slab ();
      Factory.hoard ();
    ]
  in
  let cell factory load =
    let r =
      Server.run
        { Server.default with
          Server.machine;
          seed = opts.seed;
          threads;
          connections;
          factory;
          open_loop =
            Some
              { Server.process = Mb_workload.Arrivals.Poisson { rate_rps = capacity_rps *. load };
                total_requests;
                model = Server.Thread_pool { queue_capacity = 2_048 };
                churn_mean_requests = 64;
                read_pct = 60;
                write_pct = 25;
              };
        }
    in
    match r.Server.requests with Some s -> s | None -> assert false
  in
  let rows = List.map (fun f -> (f.Factory.label, List.map (cell f) loads)) factories in
  let title =
    Printf.sprintf
      "Server saturation knee: open-loop Poisson sweep at fractions of closed-loop capacity \
       (%.0f req/s, 4 threads, quad Xeon)"
      capacity_rps
  in
  let tbl =
    Table.make ~title
      ~header:
        [ "allocator"; "load"; "offered rps"; "tput rps"; "drop%"; "p50 us"; "p95 us"; "p99 us" ]
  in
  List.iter
    (fun (label, cells) ->
      List.iter2
        (fun load (s : Server.request_stats) ->
          Table.row tbl
            [ label;
              Printf.sprintf "%.1fx" load;
              Printf.sprintf "%.0f" s.Server.offered_rps;
              Printf.sprintf "%.0f" s.Server.throughput_rps;
              Printf.sprintf "%.1f"
                (100. *. float_of_int s.Server.dropped
                /. float_of_int (max 1 (s.Server.completed + s.Server.dropped)));
              Table.cell_f2 (s.Server.p50_ns /. 1e3);
              Table.cell_f2 (s.Server.p95_ns /. 1e3);
              Table.cell_f2 (s.Server.p99_ns /. 1e3);
            ])
        loads cells)
    rows;
  let p99s cells = List.map (fun (s : Server.request_stats) -> s.Server.p99_ns /. 1e3) cells in
  let first xs = List.hd xs and last xs = List.nth xs (List.length xs - 1) in
  let cliff_ratio cells =
    let ps = p99s cells in
    last ps /. Float.max 1e-9 (first ps)
  in
  let cliffs = List.map (fun (label, cells) -> (label, cliff_ratio cells)) rows in
  let heaviest = List.map (fun (label, cells) -> (label, last cells)) rows in
  let pt_light = List.hd (List.assoc "ptmalloc" rows) in
  { Outcome.id = "server-knee";
    title;
    text = Table.to_string tbl;
    series =
      List.map
        (fun (label, cells) ->
          Series.make ~label (List.map2 (fun l p -> (l, p)) loads (p99s cells)))
        rows;
    checks =
      [ Outcome.check "a latency cliff is visible past the knee"
          (List.exists (fun (_, r) -> r > 4.) cliffs)
          "p99 growth lightest->heaviest: %s"
          (String.concat ", " (List.map (fun (l, r) -> Printf.sprintf "%s %.1fx" l r) cliffs));
        Outcome.check "below the knee the server keeps up with the offered load"
          (pt_light.Server.throughput_rps > 0.9 *. pt_light.Server.offered_rps
          && pt_light.Server.dropped = 0)
          "ptmalloc at %.1fx: %.0f rps served of %.0f offered" (first loads)
          pt_light.Server.throughput_rps pt_light.Server.offered_rps;
        Outcome.check "past the knee at least one allocator falls behind the offered load"
          (List.exists
             (fun (_, (s : Server.request_stats)) ->
               s.Server.throughput_rps < 0.95 *. s.Server.offered_rps || s.Server.dropped > 0)
             heaviest)
          "heaviest load %.1fx capacity" (last loads);
      ];
  }

let trace_replay opts =
  let machine = Configs.quad_xeon in
  let ops = pick opts ~full:30_000 ~quick:6_000 in
  let factories =
    [ Factory.ptmalloc (); Factory.serial_glibc (); Factory.perthread (); Factory.slab () ]
  in
  let replay_with factory =
    let m = Machine.create ~seed:opts.seed machine in
    let proc = Machine.create_proc m ~name:"replay" () in
    let alloc = factory.Factory.create proc in
    let rng = Mb_prng.Rng.create ~seed:(opts.seed + 5) in
    let trace = Trace.generate ~rng ~ops ~slots:1_000 () in
    let th =
      Machine.spawn proc (fun ctx -> ignore (Trace.replay alloc ctx trace ~slots:1_000))
    in
    Machine.run m;
    (match alloc.A.validate () with
    | Ok () -> ()
    | Error msg -> failwith (factory.Factory.label ^ ": " ^ msg));
    (factory.Factory.label, Machine.elapsed_ns th /. 1e9, alloc.A.stats.Mb_alloc.Astats.live_bytes)
  in
  let rows = List.map replay_with factories in
  let title = "Future work: one server allocation trace replayed on each allocator (1 thread)" in
  let tbl = Table.make ~title ~header:[ "allocator"; "elapsed (s)"; "live bytes at end" ] in
  List.iter (fun (l, s, live) -> Table.row tbl [ l; Table.cell_f s; string_of_int live ]) rows;
  { Outcome.id = "trace-replay";
    title;
    text = Table.to_string tbl;
    series = [];
    checks =
      [ Outcome.check "every allocator drains the trace to zero live bytes"
          (List.for_all (fun (_, _, live) -> live = 0) rows)
          "%s"
          (String.concat ", " (List.map (fun (l, _, live) -> Printf.sprintf "%s:%d" l live) rows));
      ];
  }

(* The original Larson & Krishnan benchmark (the paper's reference [5]),
   of which benchmark 2 is the simplified form: random request sizes,
   thread recycling, slot churn. Checks the paper's justification for
   the simplification — fixing the size doesn't change the leak story —
   and gives the allocators a mixed-size contest. *)
let larson opts =
  let module L = Mb_workload.Larson in
  let base =
    { L.default with
      L.seed = opts.seed;
      rounds = pick opts ~full:3 ~quick:2;
      ops_per_round = pick opts ~full:2_000 ~quick:600;
      slots_per_thread = pick opts ~full:1_000 ~quick:400;
    }
  in
  let run_with factory = L.run { base with L.factory } in
  let rows =
    List.map
      (fun f -> (f.Factory.label, run_with f))
      [ Factory.ptmalloc (); Factory.serial_glibc (); Factory.perthread (); Factory.hoard () ]
  in
  let title = "Larson & Krishnan benchmark (the paper's [5], unsimplified: random 10-500B sizes)" in
  let tbl =
    Table.make ~title
      ~header:[ "allocator"; "ops/s (simulated)"; "minor faults"; "mapped KB"; "foreign frees" ]
  in
  List.iter
    (fun (label, (r : L.result)) ->
      Table.row tbl
        [ label; Printf.sprintf "%.0f" r.L.throughput_ops_s; string_of_int r.L.minor_faults;
          string_of_int (r.L.mapped_bytes / 1024); string_of_int r.L.foreign_frees;
        ])
    rows;
  let get label = List.assoc label rows in
  let pt = get "ptmalloc" and serial = get "serial-glibc" and hoard = get "hoard" in
  (* rough footprint floor: live slots x mean chunk size *)
  let floor_bytes =
    base.L.slots_per_thread * base.L.threads * ((base.L.min_size + base.L.max_size / 2) + 8)
  in
  { Outcome.id = "larson";
    title;
    text = Table.to_string tbl;
    series = [];
    checks =
      [ Outcome.check "all allocators drain to zero live bytes"
          (List.for_all (fun (_, (r : L.result)) -> r.L.live_bytes = 0) rows)
          "%s"
          (String.concat ", "
             (List.map (fun (l, (r : L.result)) -> Printf.sprintf "%s:%d" l r.L.live_bytes) rows));
        Outcome.check "random sizes keep growth bounded too (benchmark 2's simplification holds)"
          (* resident pages, the paper's metric — mapped_bytes would count
             each arena's full 1MB address-space reservation *)
          (pt.L.minor_faults * 4096 < 6 * floor_bytes)
          "ptmalloc touches %d KB for a ~%d KB working set" (pt.L.minor_faults * 4096 / 1024)
          (floor_bytes / 1024);
        Outcome.check "scalable allocators beat the single lock on mixed sizes"
          (hoard.L.throughput_ops_s > serial.L.throughput_ops_s *. 1.5)
          "hoard %.0f ops/s vs serial %.0f ops/s" hoard.L.throughput_ops_s
          serial.L.throughput_ops_s;
      ];
  }

let slab_contention opts =
  let machine = Configs.quad_xeon in
  let params factory =
    { Bench1.default with
      Bench1.machine;
      seed = opts.seed;
      iterations = pick opts ~full:20_000 ~quick:5_000;
      workers = 4;
      size = 512;
      factory;
    }
  in
  let slab = Bench1.run (params (Factory.slab ())) in
  let pt = Bench1.run (params (Factory.ptmalloc ())) in
  let title = "Future work: kernel slab allocator's per-cache lock under a same-size SMP load" in
  let tbl = Table.make ~title ~header:[ "allocator"; "mean elapsed (s)"; "contended ops" ] in
  Table.row tbl
    [ "slab"; Table.cell_f2 (Bench1.mean_scaled slab);
      string_of_int slab.Bench1.lock_contended_ops ];
  Table.row tbl
    [ "ptmalloc"; Table.cell_f2 (Bench1.mean_scaled pt); string_of_int pt.Bench1.lock_contended_ops ];
  { Outcome.id = "slab";
    title;
    text = Table.to_string tbl;
    series = [];
    checks =
      [ Outcome.check "one cache lock serializes a same-size workload"
          (slab.Bench1.lock_contended_ops > pt.Bench1.lock_contended_ops * 5
          || Bench1.mean_scaled slab > Bench1.mean_scaled pt *. 1.3)
          "slab: %.1f s / %d contended; ptmalloc: %.1f s / %d contended"
          (Bench1.mean_scaled slab) slab.Bench1.lock_contended_ops (Bench1.mean_scaled pt)
          pt.Bench1.lock_contended_ops;
      ];
  }

(* Deferred coalescing: bin small frees without merging neighbours and
   consolidate in bulk when a search comes up empty.  Same loop shape as
   the fastbins ablation so the two variants are directly comparable. *)
let ablate_deferred opts =
  let time defer_coalescing =
    let params =
      { Mb_alloc.Dlheap.default_params with Mb_alloc.Dlheap.defer_coalescing }
    in
    let m = Machine.create ~seed:opts.seed Configs.dual_pentium_pro in
    let proc = Machine.create_proc m ~name:"dc" () in
    let pt = Mb_alloc.Ptmalloc.make proc ~params () in
    let alloc = Mb_alloc.Ptmalloc.allocator pt in
    let iters = pick opts ~full:30_000 ~quick:6_000 in
    let th =
      Machine.spawn proc (fun ctx ->
          let fault = Machine.ctx_fault ctx in
          for _ = 1 to iters do
            match alloc.A.malloc ctx 40 with
            | u -> alloc.A.free ctx u
            | exception Fault.Alloc_failure _ -> Fault.note_degraded fault
          done)
    in
    Machine.run m;
    (match alloc.A.validate () with
    | Ok () -> ()
    | Error msg -> failwith ("ablate-deferred: " ^ msg));
    Machine.elapsed_ns th /. float_of_int iters
  in
  let classic = time false and deferred = time true in
  let title =
    "Ablation: deferred coalescing on the 40-byte malloc/free loop (dual PPro)"
  in
  let tbl =
    Table.make ~title ~header:[ "allocator"; "ns per malloc/free pair (simulated)" ]
  in
  Table.row tbl [ "eager coalescing (study subject)"; Printf.sprintf "%.0f" classic ];
  Table.row tbl [ "deferred coalescing"; Printf.sprintf "%.0f" deferred ];
  { Outcome.id = "ablate-deferred";
    title;
    text = Table.to_string tbl;
    series = [];
    checks =
      [ Outcome.check "deferred coalescing shortens the small-chunk free path"
          (deferred < classic *. 0.95)
          "%.0f ns vs %.0f ns per pair (%.0f%% saved)" deferred classic
          ((classic -. deferred) /. classic *. 100.);
      ];
  }
