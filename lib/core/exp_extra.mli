(** Ablations and extensions beyond the paper's printed artifacts:
    mechanism isolations for the effects DESIGN.md calls out, plus the
    future-work experiments of section 6. *)

val ablate_spin : Exp_common.opts -> Outcome.t
(** Single-lock allocator with vs without adaptive mutex spinning —
    isolates why Solaris (Figure 3) collapses where Linux would not. *)

val ablate_arenas : Exp_common.opts -> Outcome.t
(** ptmalloc capped at one arena vs unlimited arenas — isolates how much
    of Figure 4's scalability is arena creation. *)

val ablate_atomics : Exp_common.opts -> Outcome.t
(** The thread-vs-process gap (Tables 1/3) as a function of the atomic
    lock-operation cost. *)

val shootout : Exp_common.opts -> Outcome.t
(** All five allocators across a thread sweep: reproduces section 2's
    qualitative claims (single-lock penalty; per-thread allocator winning
    at scale). *)

val latency_uptime : Exp_common.opts -> Outcome.t
(** Future work: malloc latency across server uptime windows. *)

val server_knee : Exp_common.opts -> Outcome.t
(** Open-loop Poisson load sweep over all five allocators at rising
    fractions of the server's measured closed-loop capacity, reporting
    p50/p95/p99 and throughput per cell — the paper's Table 2 collapse
    rediscovered as a latency cliff under realistic traffic. *)

val trace_replay : Exp_common.opts -> Outcome.t
(** Future work: one recorded allocation trace replayed against every
    allocator. *)

val slab_contention : Exp_common.opts -> Outcome.t
(** Future work: the kernel slab allocator's per-cache lock behaves like
    a user-level single lock on a same-size workload. *)

val ablate_bkl : Exp_common.opts -> Outcome.t
(** Section 3: what serializing VM syscalls behind the big kernel lock
    costs an mmap-heavy allocation load (the paper patched sbrk to avoid
    it in kernels 2.3.5-2.3.7). *)

val ablate_fastbins : Exp_common.opts -> Outcome.t
(** What the glibc-2.3 fastbin evolution buys the small-chunk path. *)

val ablate_deferred : Exp_common.opts -> Outcome.t
(** What deferring small-chunk coalescing ({!Mb_alloc.Dlheap.params}'
    [defer_coalescing]) buys the free path on the same 40-byte loop. *)

val larson : Exp_common.opts -> Outcome.t
(** The unsimplified Larson & Krishnan benchmark (the paper's [5]):
    random sizes and thread recycling across the allocators; checks the
    paper's claim that benchmark 2's fixed size loses nothing. *)

val ablate_crowding : Exp_common.opts -> Outcome.t
(** Section 3: a crowded address space blocks [sbrk]; post-2.1.3 glibc
    retries arena growth with [mmap], the older libc just fails. *)
