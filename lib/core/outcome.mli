(** The result of reproducing one paper artifact (table or figure):
    rendered text for the harness output, the underlying data series, and
    machine-checkable shape assertions ("who wins, by roughly what
    factor") that the test suite also runs. *)

type check = {
  label : string;
  pass : bool;
  detail : string;  (** the numbers behind the verdict *)
}

type t = {
  id : string;             (** "table1", "fig9", "ablate-spin", ... *)
  title : string;
  text : string;           (** tables and ASCII plots, ready to print *)
  series : Mb_stats.Series.t list;
  checks : check list;
}

val check : string -> bool -> ('a, unit, string, check) format4 -> 'a
(** [check label pass fmt ...] builds a check with a formatted detail. *)

val passed : t -> bool
(** All checks pass. *)

val summary_line : t -> string
(** One line: id, pass/fail counts. *)

val to_string : t -> string
(** The exact text {!print} emits: header, rendered body, check lines,
    trailing blank line. Lets callers compare harness output without
    capturing stdout. *)

val print : t -> unit
