type runner = Exp_common.opts -> Outcome.t

let paper_artifacts =
  [ ("table1", Exp_bench1.table1);
    ("fig1", Exp_bench1.fig1);
    ("fig2", Exp_bench1.fig2);
    ("table2", Exp_bench1.table2);
    ("fig3", Exp_bench1.fig3);
    ("table3", Exp_bench1.table3);
    ("fig4", Exp_bench1.fig4);
    ("table4", Exp_bench1.table4);
    ("predictor", Exp_bench2.predictor);
    ("fig5", Exp_bench2.fig5);
    ("fig6", Exp_bench2.fig6);
    ("fig7", Exp_bench2.fig7);
    ("fig8", Exp_bench2.fig8);
    ("bench3-baseline", Exp_bench3.single_thread_baseline);
    ("fig9", Exp_bench3.fig9);
    ("fig10", Exp_bench3.fig10);
    ("fig11", Exp_bench3.fig11);
  ]

let extensions =
  [ ("ablate-spin", Exp_extra.ablate_spin);
    ("ablate-arenas", Exp_extra.ablate_arenas);
    ("ablate-atomics", Exp_extra.ablate_atomics);
    ("shootout", Exp_extra.shootout);
    ("latency-uptime", Exp_extra.latency_uptime);
    ("server-knee", Exp_extra.server_knee);
    ("trace-replay", Exp_extra.trace_replay);
    ("slab", Exp_extra.slab_contention);
    ("ablate-bkl", Exp_extra.ablate_bkl);
    ("ablate-fastbins", Exp_extra.ablate_fastbins);
    ("ablate-crowding", Exp_extra.ablate_crowding);
    ("larson", Exp_extra.larson);
    ("ablate-deferred", Exp_extra.ablate_deferred);
  ]

let all = paper_artifacts @ extensions

let find id = List.assoc_opt id all

let ids = List.map fst all

(* The suite layer (lib/suite) sits below this library, so it sees the
   registry only through this adapter record: ids in registry order plus
   a quiet per-id runner whose result carries its own printer. A suite
   cell printed through [print] is byte-identical to [run_all]'s echo of
   the same experiment. *)
let suite_registry =
  { Mb_suite.Runner.exp_ids = ids;
    exp_run =
      (fun id ~quick ~seed ->
        match find id with
        | None -> None
        | Some runner ->
            Some
              (fun () ->
                let outcome = runner { Exp_common.quick; seed } in
                { Mb_suite.Runner.print = (fun () -> Outcome.print outcome);
                  ok = Outcome.passed outcome;
                }));
  }

(* Every experiment is an independent deterministic computation, so the
   registry fans out across a domain pool. Futures are joined — and
   outcomes printed — in registry order from the calling domain, which
   makes the output byte-identical for any pool width (including the
   sequential width-1 pool). *)
let run_all ?jobs ?(echo = true) ?only opts =
  let selected =
    match only with
    | None -> all
    | Some wanted -> List.filter (fun (id, _) -> List.mem id wanted) all
  in
  let run pool =
    let futures =
      List.map
        (fun (id, runner) -> Mb_parallel.Pool.submit pool ~key:id (fun () -> runner opts))
        selected
    in
    List.map
      (fun future ->
        let outcome = Mb_parallel.Pool.await pool future in
        if echo then Outcome.print outcome;
        outcome)
      futures
  in
  match jobs with
  | Some jobs -> Mb_parallel.Pool.with_pool ~jobs run
  | None -> run (Mb_parallel.Pool.global ())
