(** Shared machinery for the experiment harness. *)

type opts = {
  quick : bool;  (** shrink iteration counts for the test suite *)
  seed : int;
}

val default_opts : opts

val quick_opts : opts

val pick : opts -> full:'a -> quick:'a -> 'a

val bench1_runs :
  ?pool:Mb_parallel.Pool.t ->
  Mb_workload.Bench1.params ->
  runs:int ->
  Mb_stats.Summary.t list * Mb_workload.Bench1.result list
(** Repeats a benchmark-1 configuration over [runs] seeds and summarizes
    each worker position's scaled time across runs (position 0 = first
    worker, etc.), plus the raw results. The repeats run on [pool]
    (default {!Mb_parallel.Pool.global}) and are joined in submission
    order, so the result is independent of pool width. *)

val mean_of : Mb_stats.Summary.t list -> float
(** Grand mean across the per-worker summaries. *)

val single_thread_time : Mb_workload.Bench1.params -> float
(** Scaled single-worker run with the same configuration — the paper's
    "single thread timing" baseline. *)

val paper_series : label:string -> (float * float) list -> Mb_stats.Series.t
