module Bench1 = Mb_workload.Bench1
module Factory = Mb_workload.Factory
module Configs = Mb_machine.Configs
module Summary = Mb_stats.Summary
module Series = Mb_stats.Series
module Regression = Mb_stats.Regression
module Histogram = Mb_stats.Histogram
module Table = Mb_report.Table
module Plot = Mb_report.Plot
module Costs = Mb_alloc.Costs
open Exp_common

let xeon_cost_scale = 1.115

let glibc_on machine =
  if machine == Configs.quad_xeon then
    Factory.ptmalloc ~costs:(Costs.scaled Costs.glibc xeon_cost_scale) ()
  else Factory.ptmalloc ()

let base_params opts machine factory size =
  { Bench1.default with
    Bench1.machine;
    seed = opts.seed;
    iterations = pick opts ~full:40_000 ~quick:8_000;
    size;
    factory;
  }

(* --- threads vs processes tables (1, 2, 3 share this shape) ---------- *)

let thread_vs_process ~id ~title ~machine ~factory ~paper_single ~paper_threads ~paper_processes
    ~gap_band opts =
  let params = base_params opts machine factory 512 in
  let runs = pick opts ~full:3 ~quick:1 in
  let single = single_thread_time params in
  let thr_sum, _ = bench1_runs { params with Bench1.workers = 2; mode = Bench1.Threads } ~runs in
  let prc_sum, _ = bench1_runs { params with Bench1.workers = 2; mode = Bench1.Processes } ~runs in
  let tbl = Table.make ~title ~header:[ "run"; "worker 1 (s)"; "worker 2 (s)"; "source" ] in
  let row_of label summaries source =
    Table.row tbl
      (label
       :: List.map (fun (s : Summary.t) -> Printf.sprintf "%s s=%s" (Table.cell_f s.Summary.mean) (Table.cell_f s.Summary.stddev)) summaries
      @ [ source ])
  in
  row_of "threads" thr_sum "simulated";
  Table.row tbl
    ("threads" :: List.map Table.cell_f paper_threads @ [ "paper" ]);
  row_of "processes" prc_sum "simulated";
  Table.row tbl
    ("processes" :: List.map Table.cell_f paper_processes @ [ "paper" ]);
  Table.rowf tbl "single thread: %.6f s simulated vs %.6f s paper" single paper_single;
  let thr = mean_of thr_sum and prc = mean_of prc_sum in
  let gap = thr /. prc in
  let paper_gap =
    List.fold_left ( +. ) 0. paper_threads
    /. List.fold_left ( +. ) 0. paper_processes
  in
  let lo, hi = gap_band in
  { Outcome.id;
    title;
    text = Table.to_string tbl;
    series =
      [ Series.of_summaries ~label:"threads" (List.mapi (fun i s -> (float_of_int (i + 1), s)) thr_sum);
        Series.of_summaries ~label:"processes" (List.mapi (fun i s -> (float_of_int (i + 1), s)) prc_sum);
      ];
    checks =
      [ Outcome.check "single-thread calibration"
          (abs_float (single -. paper_single) /. paper_single < 0.12)
          "simulated %.2f s vs paper %.2f s" single paper_single;
        Outcome.check "thread/process gap in band"
          (gap >= lo && gap <= hi)
          "gap %.3f (paper %.3f), band [%.2f, %.2f]" gap paper_gap lo hi;
        Outcome.check "workers balanced"
          (let ss = List.map (fun (s : Summary.t) -> s.Summary.mean) thr_sum in
           List.fold_left max 0. ss /. List.fold_left min infinity ss < 1.10)
          "thread times %s" (String.concat ", " (List.map (fun (s : Summary.t) -> Table.cell_f2 s.Summary.mean) thr_sum));
      ];
  }

let table1 opts =
  thread_vs_process ~id:"table1"
    ~title:"Table 1: single heap per process vs multiple heaps, dual 200MHz Pentium Pro (512B)"
    ~machine:Configs.dual_pentium_pro ~factory:(glibc_on Configs.dual_pentium_pro)
    ~paper_single:Paper_data.ppro_single_thread_s ~paper_threads:Paper_data.table1_threads_s
    ~paper_processes:Paper_data.table1_processes_s ~gap_band:(1.02, 1.35) opts

let table2 opts =
  thread_vs_process ~id:"table2"
    ~title:"Table 2: threads vs processes under the Solaris single-lock allocator (512B)"
    ~machine:Configs.dual_ultrasparc ~factory:(Factory.serial_solaris ())
    ~paper_single:Paper_data.sparc_single_thread_s ~paper_threads:Paper_data.table2_threads_s
    ~paper_processes:Paper_data.table2_processes_s ~gap_band:(5.0, 14.0) opts

let table3 opts =
  thread_vs_process ~id:"table3"
    ~title:"Table 3: threads vs processes, 4-way 500MHz Xeon (512B)"
    ~machine:Configs.quad_xeon ~factory:(glibc_on Configs.quad_xeon)
    ~paper_single:Paper_data.xeon_single_thread_s ~paper_threads:Paper_data.table3_threads_s
    ~paper_processes:Paper_data.table3_processes_s ~gap_band:(1.05, 1.40) opts

(* --- thread-count sweeps (figures 1-4) -------------------------------- *)

let sweep_params opts machine factory size = base_params opts machine factory size

(* One pool task per (thread-count, seed) cell: submitting the whole
   sweep grid at once lets the expensive high-thread-count runs overlap
   instead of serializing point by point. Joined in submission order, so
   the summaries match the sequential sweep exactly. *)
let thread_sweep ~params ~threads ~runs =
  let pool = Mb_parallel.Pool.global () in
  let cells = List.concat_map (fun t -> List.init runs (fun i -> (t, i))) threads in
  let results =
    Mb_parallel.Pool.map_list pool ~key:"bench1-cell"
      ~f:(fun _ (t, i) ->
        Bench1.run
          { params with
            Bench1.workers = t;
            mode = Mb_workload.Bench1.Threads;
            seed = params.Bench1.seed + (i * 101);
          })
      cells
  in
  let rec take n xs =
    if n = 0 then ([], xs)
    else
      match xs with
      | x :: tl ->
          let a, b = take (n - 1) tl in
          (x :: a, b)
      | [] -> invalid_arg "thread_sweep: result list shorter than the grid"
  in
  let rec regroup acc results = function
    | [] -> List.rev acc
    | t :: rest ->
        let group, results = take runs results in
        let all = Summary.of_list (List.concat_map (fun r -> r.Bench1.scaled_s) group) in
        regroup ((t, all) :: acc) results rest
  in
  regroup [] results threads

let sweep_outcome ~id ~title ~machine ~factory ~size ~threads ~paper ~checks_of opts =
  let params = sweep_params opts machine factory size in
  let runs = pick opts ~full:3 ~quick:1 in
  let data = thread_sweep ~params ~threads ~runs in
  let series =
    Series.of_summaries ~label:"simulated"
      (List.map (fun (t, s) -> (float_of_int t, s)) data)
  in
  let all_series = series :: (match paper with Some p -> [ p ] | None -> []) in
  let plot =
    Plot.render ~title ~x_label:"concurrent threads" ~y_label:"elapsed seconds (scaled to 10M ops)"
      all_series
  in
  let tbl = Table.make ~title:"data" ~header:[ "threads"; "mean (s)"; "stddev"; "min"; "max" ] in
  List.iter
    (fun (t, (s : Summary.t)) ->
      Table.row tbl
        [ string_of_int t; Table.cell_f2 s.Summary.mean; Table.cell_f2 s.Summary.stddev;
          Table.cell_f2 s.Summary.min; Table.cell_f2 s.Summary.max ])
    data;
  { Outcome.id;
    title;
    text = plot ^ "\n" ^ Table.to_string tbl;
    series = all_series;
    checks = checks_of data;
  }

let fig1 opts =
  let machine = Configs.dual_pentium_pro in
  sweep_outcome ~id:"fig1" ~title:"Figure 1: elapsed run-time vs thread count (dual PPro, 8192B)"
    ~machine ~factory:(glibc_on machine) ~size:8192
    ~threads:[ 1; 2; 3; 4; 5; 6 ]
    ~paper:(Some (paper_series ~label:"paper (derived slope m/n)" Paper_data.fig1_derived))
    ~checks_of:(fun data ->
      let single = (List.assoc 1 data).Summary.mean in
      let beyond = List.filter (fun (t, _) -> t >= 2) data in
      let reg =
        Regression.fit (List.map (fun (t, s) -> (float_of_int t, s.Summary.mean)) beyond)
      in
      let expected_slope = single /. 2. in
      (* quick mode averages a single run per point, so scheduler timer
         phase adds a few percent of per-point noise *)
      let r2_floor = pick opts ~full:0.97 ~quick:0.90 in
      [ Outcome.check "linear past CPU count" (reg.Regression.r2 > r2_floor) "r2=%.4f" reg.Regression.r2;
        Outcome.check "slope ~ single/cpus"
          (abs_float (reg.Regression.slope -. expected_slope) /. expected_slope < 0.35)
          "slope %.2f vs m/n %.2f" reg.Regression.slope expected_slope;
      ])
    opts

let fig2 opts =
  let machine = Configs.dual_pentium_pro in
  let threads = pick opts ~full:Paper_data.fig2_threads ~quick:[ 8; 16; 32 ] in
  let params0 = sweep_params opts machine (glibc_on machine) 4100 in
  let params = { params0 with Bench1.iterations = pick opts ~full:6_000 ~quick:1_500 } in
  let runs = pick opts ~full:2 ~quick:1 in
  let data = thread_sweep ~params ~threads ~runs in
  let series =
    Series.of_summaries ~label:"simulated" (List.map (fun (t, s) -> (float_of_int t, s)) data)
  in
  let title = "Figure 2: elapsed run-time with larger thread counts (dual PPro, 4100B)" in
  let plot = Plot.render ~title ~x_label:"concurrent threads" ~y_label:"elapsed s (scaled)" [ series ] in
  let reg = Regression.fit (List.map (fun (t, s) -> (float_of_int t, s.Summary.mean)) data) in
  { Outcome.id = "fig2";
    title;
    text = plot;
    series = [ series ];
    checks =
      [ Outcome.check "linearity far past CPU count" (reg.Regression.r2 > 0.985) "r2=%.4f"
          reg.Regression.r2;
      ];
  }

let fig3 opts =
  let machine = Configs.dual_ultrasparc in
  sweep_outcome ~id:"fig3"
    ~title:"Figure 3: thread scalability under the Solaris allocator (dual UltraSPARC, 8192B)"
    ~machine ~factory:(Factory.serial_solaris ()) ~size:8192
    ~threads:[ 1; 2; 3; 4; 5 ] ~paper:None
    ~checks_of:(fun data ->
      let single = (List.assoc 1 data).Summary.mean in
      let five = (List.assoc 5 data).Summary.mean in
      let slope_factor = five /. single in
      [ Outcome.check "5-thread collapse >= 10x single" (slope_factor >= 10.)
          "t5/t1 = %.1f (paper ~20x)" slope_factor;
        Outcome.check "slope far exceeds m/n"
          (let two = (List.assoc 2 data).Summary.mean in
           two /. single > 4.)
          "t2/t1 = %.1f (ideal would be 1.0)" ((List.assoc 2 data).Summary.mean /. single);
      ])
    opts

let fig4 opts =
  let machine = Configs.quad_xeon in
  sweep_outcome ~id:"fig4"
    ~title:"Figure 4: elapsed run-time vs thread count (4-way Xeon, 8192B)"
    ~machine ~factory:(glibc_on machine) ~size:8192
    ~threads:[ 1; 2; 3; 4; 5; 6 ] ~paper:None
    ~checks_of:(fun data ->
      let m t = (List.assoc t data).Summary.mean in
      [ Outcome.check "jump from 1 to 2 threads (stub->atomic locks)" (m 2 > m 1 *. 1.04)
          "t1=%.2f t2=%.2f" (m 1) (m 2);
        Outcome.check "plateau while threads <= CPUs" (m 4 < m 1 *. 1.6) "t4=%.2f vs t1=%.2f" (m 4) (m 1);
        Outcome.check "second jump past 4 CPUs" (m 5 > m 4 *. 1.12) "t4=%.2f t5=%.2f" (m 4) (m 5);
      ])
    opts

let table4 opts =
  let machine = Configs.quad_xeon in
  let params = base_params opts machine (glibc_on machine) 8192 in
  let nruns = pick opts ~full:5 ~quick:3 in
  let runs =
    List.init nruns (fun i ->
        Bench1.run
          { params with
            Bench1.workers = 3;
            mode = Mb_workload.Bench1.Threads;
            seed = opts.seed + (i * 173);
          })
  in
  let values = List.concat_map (fun r -> r.Bench1.scaled_s) runs in
  let title = "Table 4: variance in elapsed run time, 3 threads on the 4-way Xeon (8192B)" in
  let tbl = Table.make ~title ~header:[ "run"; "elapsed (s)"; "paper row" ] in
  List.iteri
    (fun i v ->
      let paper =
        if i < List.length Paper_data.table4_runs_s then
          Table.cell_f (List.nth Paper_data.table4_runs_s i)
        else "-"
      in
      Table.row tbl [ string_of_int (i + 1); Table.cell_f v; paper ])
    values;
  let summary = Summary.of_list values in
  let lo = summary.Summary.min and hi = summary.Summary.max in
  let hist = Histogram.create ~lo:(lo *. 0.99) ~hi:(hi *. 1.01 +. 0.001) ~bins:8 in
  List.iter (Histogram.add hist) values;
  let hist_text = Format.asprintf "%a" Histogram.pp hist in
  let spread = Summary.spread summary in
  let slow = List.filter (fun v -> v > lo *. 1.08) values in
  { Outcome.id = "table4";
    title;
    text = Table.to_string tbl ^ "\nhistogram:\n" ^ hist_text;
    series = [ Series.make ~label:"run times" (List.mapi (fun i v -> (float_of_int (i + 1), v)) values) ];
    checks =
      [ Outcome.check "sloshing spread present" (spread > 0.08)
          "max/min spread %.1f%% (paper ~18%%)" (spread *. 100.);
        Outcome.check "slow mode is a minority"
          (slow <> [] && List.length slow * 2 <= List.length values)
          "%d of %d runs in the slow mode (paper 5 of 15)" (List.length slow) (List.length values);
      ];
  }
