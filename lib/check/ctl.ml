let state = Atomic.make false

let arm on = Atomic.set state on

let armed () = Atomic.get state

let checker () = if Atomic.get state then Checker.create () else Checker.null
