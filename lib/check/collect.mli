(** Cross-run collection of completed checkers.

    Workload drivers publish their machine's checker here when a run
    finishes; after all experiments are joined, the CLI drains the
    registry once to build the findings report. Publication happens at
    most once per simulated machine (cold path), so the mutex guarding
    the registry is uncontended in practice — the hot paths stay inside
    per-machine checkers and need no locking. *)

val publish : label:string -> Checker.t -> unit
(** [publish ~label c] registers a completed checker under a
    human-readable run label (workload name plus distinguishing
    parameters). Disabled checkers are ignored, so callers may publish
    unconditionally. Thread/domain-safe. *)

val drain : unit -> (string * Checker.t) list
(** Remove and return everything published so far, sorted by label
    (ties keep arrival order), making the findings report deterministic
    for a deterministic label set regardless of which pool domain ran
    which task. *)

val pending : unit -> int
(** Number of published, not-yet-drained checkers. *)
