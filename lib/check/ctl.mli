(** Process-wide checking control.

    The CLI (or a test) arms checking {e before} any machine is built;
    {!Mb_machine.Machine.create} then asks {!checker} for a fresh
    per-machine {!Checker.t}. With checking off (the default),
    {!checker} returns {!Checker.null} and every instrumentation site
    stays on the branch-cheap disabled path.

    The state is one atomic boolean, set once per process invocation
    before worker domains spawn, so cross-domain reads are safe. A
    stale read in a racing domain can only yield a disabled checker —
    never a perturbed simulation. *)

val arm : bool -> unit
(** Turn checking on or off process-wide. Call before starting the
    runs to be checked. *)

val armed : unit -> bool

val checker : unit -> Checker.t
(** A checker for one new machine: {!Checker.null} when checking is
    off, otherwise a fresh armed checker. *)
