module T = Mb_sim.Int_table

type kind = Race | Double_free | Use_after_free | Out_of_bounds

type finding = { kind : kind; addr : int; message : string }

(* Eraser's per-address state machine, simplified to the two states the
   transitions actually need: exclusive to the first accessing thread,
   then shared with a candidate lockset. The virgin state is the
   absence of a shadow entry. *)
type shared = {
  s_first : int;                (* thread that owned the exclusive phase *)
  mutable s_locks : int list;   (* candidate lockset (mutex ids) *)
  mutable s_written : bool;
  mutable s_reported : bool;
}

type shadow =
  | Excl of { e_tid : int; mutable e_written : bool }
  | Shared of shared

type block = {
  blen : int;        (* usable bytes *)
  alloc_tid : int;
  mutable freed_by : int;       (* -1 while live *)
  mutable reported : bool;      (* one sanitizer finding per block *)
}

type t = {
  on : bool;
  shadows : shadow T.t;       (* folded address -> race shadow *)
  blocks : block T.t;         (* folded user base -> sanitizer state *)
  holds : int list T.t;       (* tid -> mutex ids currently held *)
  lock_names : string T.t;    (* mutex id -> name, for race reports *)
  depth : int T.t;            (* tid -> runtime-suppression nesting *)
  mutable findings : finding list;  (* newest first *)
  mutable nfindings : int;
}

let retention_cap = 200

let make on =
  { on;
    shadows = T.create ~initial:(if on then 1024 else 1) ();
    blocks = T.create ~initial:(if on then 1024 else 1) ();
    holds = T.create ~initial:16 ();
    lock_names = T.create ~initial:16 ();
    depth = T.create ~initial:16 ();
    findings = [];
    nfindings = 0;
  }

let null = make false

let create () = make true

let armed t = t.on

let kind_label = function
  | Race -> "race"
  | Double_free -> "double-free"
  | Use_after_free -> "use-after-free"
  | Out_of_bounds -> "out-of-bounds"

let findings t = List.rev t.findings

let finding_count t = t.nfindings

let report t kind addr message =
  t.nfindings <- t.nfindings + 1;
  if t.nfindings <= retention_cap then t.findings <- { kind; addr; message } :: t.findings

(* Same folding as the machine's physically-indexed cache: equal virtual
   addresses of different processes must not collide. *)
let key ~asid ~addr = (asid lsl 40) lor addr

let holdset t tid = match T.find_exn t.holds tid with l -> l | exception Not_found -> []

let suppressed t tid = match T.find_exn t.depth tid with d -> d > 0 | exception Not_found -> false

let lock_acquired t ~tid ~mid ~name =
  if t.on then begin
    if not (T.mem t.lock_names mid) then T.set t.lock_names mid name;
    T.set t.holds tid (mid :: holdset t tid)
  end

let lock_released t ~tid ~mid =
  if t.on then begin
    (* Unlock order need not be LIFO; drop the first matching id. *)
    let rec drop = function
      | [] -> []
      | m :: rest -> if m = mid then rest else m :: drop rest
    in
    T.set t.holds tid (drop (holdset t tid))
  end

let lock_name t mid =
  match T.find_exn t.lock_names mid with n -> n | exception Not_found -> Printf.sprintf "mutex-%d" mid

let intersect l1 l2 = List.filter (fun m -> List.mem m l2) l1

let maybe_report_race t s ~addr ~tid =
  if s.s_written && s.s_locks = [] && not s.s_reported then begin
    s.s_reported <- true;
    let held =
      match holdset t tid with
      | [] -> "none"
      | ms -> String.concat ", " (List.map (lock_name t) ms)
    in
    report t Race addr
      (Printf.sprintf
         "unsynchronized write to 0x%x: threads %d and %d hold no common lock \
          (lockset intersection is empty; thread %d holds: %s)"
         addr s.s_first tid tid held)
  end

(* The lockset state machine for one checked access. [addr] is the user
   view (for messages); [k] the folded key. *)
let race_access t k ~tid ~addr ~write =
  match T.find_opt t.shadows k with
  | None -> T.set t.shadows k (Excl { e_tid = tid; e_written = write })
  | Some (Excl e) when e.e_tid = tid -> if write then e.e_written <- true
  | Some (Excl e) ->
      let s =
        { s_first = e.e_tid;
          s_locks = holdset t tid;
          s_written = e.e_written || write;
          s_reported = false;
        }
      in
      T.set t.shadows k (Shared s);
      maybe_report_race t s ~addr ~tid
  | Some (Shared s) ->
      s.s_locks <- intersect s.s_locks (holdset t tid);
      if write then s.s_written <- true;
      maybe_report_race t s ~addr ~tid

(* Sanitizer view of one touch: [len] bytes starting at a tracked block
   base (word accesses pass len = 1). *)
let sanitize_access t k ~tid ~addr ~len =
  match T.find_opt t.blocks k with
  | None -> ()
  | Some b ->
      if b.freed_by >= 0 then begin
        if not b.reported then begin
          b.reported <- true;
          report t Use_after_free addr
            (Printf.sprintf
               "use after free at 0x%x: block allocated by thread %d, freed by thread %d, touched by thread %d"
               addr b.alloc_tid b.freed_by tid)
        end
      end
      else if len > b.blen && not b.reported then begin
        b.reported <- true;
        report t Out_of_bounds addr
          (Printf.sprintf
             "out-of-bounds touch at 0x%x: %d bytes into a %d-byte block allocated by thread %d (touching thread %d)"
             addr len b.blen b.alloc_tid tid)
      end

let on_access t ~tid ~asid ~addr ~write =
  if t.on && not (suppressed t tid) then begin
    let k = key ~asid ~addr in
    race_access t k ~tid ~addr ~write;
    sanitize_access t k ~tid ~addr ~len:1
  end

let on_range t ~tid ~asid ~addr ~len =
  if t.on && len > 0 && not (suppressed t tid) then begin
    let k = key ~asid ~addr in
    race_access t k ~tid ~addr ~write:true;
    sanitize_access t k ~tid ~addr ~len
  end

let on_alloc t ~tid ~asid ~addr ~len =
  if t.on then begin
    let k = key ~asid ~addr in
    T.set t.blocks k { blen = len; alloc_tid = tid; freed_by = -1; reported = false };
    (* Fresh memory starts over: without this, a block recycled to
       another thread would read as a data race. *)
    T.remove t.shadows k
  end

let on_free t ~tid ~asid ~addr =
  if not t.on then true
  else begin
    let k = key ~asid ~addr in
    match T.find_opt t.blocks k with
    | Some b when b.freed_by < 0 ->
        b.freed_by <- tid;
        T.remove t.shadows k;
        true
    | Some b ->
        report t Double_free addr
          (Printf.sprintf
             "double free of 0x%x: block allocated by thread %d, freed by thread %d, freed again by thread %d"
             addr b.alloc_tid b.freed_by tid);
        false
    | None -> true
  end

let enter_runtime t ~tid =
  if t.on then
    T.set t.depth tid (1 + (match T.find_exn t.depth tid with d -> d | exception Not_found -> 0))

let exit_runtime t ~tid =
  if t.on then
    T.set t.depth tid (max 0 ((match T.find_exn t.depth tid with d -> d | exception Not_found -> 0) - 1))

(* Pre-grow the shadow tables while the simulation is quiescent (the
   conservative executor calls this from its drain phases): the next
   window's inserts then never pay a rehash mid-execution. Headroom is
   a quarter of the current population — the organic growth rate of a
   steadily allocating workload — plus a floor for cold tables. *)
let preflight t =
  if t.on then begin
    T.reserve t.shadows ((T.length t.shadows / 4) + 64);
    T.reserve t.blocks ((T.length t.blocks / 4) + 64)
  end
