(** Dynamic correctness checker for one simulated machine.

    A checker is the sink the instrumented layers (machine mutexes,
    simulated memory accesses, allocator entry points) feed while a run
    executes. It hosts three detectors:

    - an Eraser-style {e lockset race detector}: every thread's current
      mutex hold-set is tracked, and every checked memory address keeps
      a shadow state (exclusive to its first thread, then shared with a
      candidate lockset refined by intersection on each access). A
      write to a shared address whose candidate lockset has become
      empty is reported as a race, with the address, both thread ids
      and the (empty) intersection's history;
    - an {e allocation sanitizer}: live blocks are tracked by user base
      address in an {!Mb_sim.Int_table}, so double-frees, touches of
      freed blocks and touches that overrun a block's usable size are
      reported with the allocating and freeing thread ids;
    - bookkeeping that the machine's structured stall report
      ({!Mb_sim.Engine.Stalled}) builds on — the checker itself stays
      address/integer-typed and knows nothing about machine records.

    Granularity: the race detector shadows the exact addresses the
    simulation touches — word accesses shadow their address, bulk
    range touches shadow the range's base — which matches the
    simulation's block-granular memory model. Allocator-internal
    accesses (chunk headers, arena descriptors) run inside
    {!enter_runtime}/{!exit_runtime} brackets and are exempt from both
    detectors: allocators legitimately migrate metadata between locks,
    and the detectors target the workload-level protocol above them.

    A disabled checker ({!null}) is branch-cheap: every hook loads one
    immutable boolean and returns. Checking consumes no simulated time
    and no randomness, so an armed run computes byte-identical results
    to an unarmed one. Like a recorder, a checker is confined to the
    domain that owns its machine and needs no locking. *)

type t
(** A checker instance; create one per simulated machine. *)

(** What a finding is about. *)
type kind =
  | Race            (** unsynchronized conflicting accesses *)
  | Double_free     (** [free] of an already-freed block *)
  | Use_after_free  (** touch of a freed block *)
  | Out_of_bounds   (** touch overrunning a block's usable size *)

type finding = {
  kind : kind;
  addr : int;       (** the offending simulated address (user view) *)
  message : string; (** human-readable one-liner with thread ids *)
}
(** One reported defect. Messages are deterministic for a
    deterministic run, so finding lists are stable across invocations
    and pool widths. *)

val null : t
(** The shared disabled checker: never records, never reports. *)

val create : unit -> t
(** A fresh armed checker. *)

val armed : t -> bool
(** [true] iff this checker records; instrumentation sites branch on
    this before paying any hook cost. *)

val kind_label : kind -> string
(** Short label for report lines: ["race"], ["double-free"],
    ["use-after-free"], ["out-of-bounds"]. *)

(** {1 Lock hooks (machine mutexes)} *)

val lock_acquired : t -> tid:int -> mid:int -> name:string -> unit
(** The thread now holds mutex [mid] ([name] is remembered for race
    reports). Called on every successful acquisition, including
    direct hand-offs. *)

val lock_released : t -> tid:int -> mid:int -> unit
(** The thread no longer holds mutex [mid]. *)

(** {1 Memory hooks (simulated accesses)} *)

val on_access : t -> tid:int -> asid:int -> addr:int -> write:bool -> unit
(** A one-word access at [addr] in address space [asid]. Runs the
    lockset state machine and the freed-block check. *)

val on_range : t -> tid:int -> asid:int -> addr:int -> len:int -> unit
(** A bulk touch of [\[addr, addr+len)] (treated as a write at the
    range's base for the race detector), plus the sanitizer's
    bounds/freedness checks when [addr] is a tracked block base. *)

(** {1 Allocation hooks} *)

val on_alloc : t -> tid:int -> asid:int -> addr:int -> len:int -> unit
(** A block of [len] usable bytes now lives at [addr]: (re)arms the
    sanitizer entry and resets the race shadow at the base — freshly
    allocated memory starts over as virgin, which is what keeps
    cross-thread block reuse (the paper's foreign frees) from reading
    as a race. *)

val on_free : t -> tid:int -> asid:int -> addr:int -> bool
(** A free of [addr] is about to run. Returns [true] when the real
    free should proceed; on a double-free it records the finding and
    returns [false] so the simulated heap survives to the end of the
    run (the way a hardened allocator would refuse). Unknown addresses
    return [true] and are left to the allocator's own validation. *)

(** {1 Runtime suppression} *)

val enter_runtime : t -> tid:int -> unit
(** Mark the thread as executing allocator-internal code: its memory
    accesses are exempt from both detectors until the matching
    {!exit_runtime}. Brackets nest. *)

val exit_runtime : t -> tid:int -> unit

(** {1 Findings} *)

val findings : t -> finding list
(** All findings in report order (capped; see {!finding_count} for the
    true total). *)

val finding_count : t -> int
(** Number of findings recorded, including any beyond the retention
    cap. *)

val preflight : t -> unit
(** Pre-size the per-address shadow tables for the next burst of
    tracked accesses. Purely mechanical (no state machine transitions,
    no findings) and therefore invisible to results; intended to run
    during the conservative parallel executor's drain phases, when no
    simulation code executes and the checker is quiescent. Safe to call
    from a crew domain in that window — the tables are touched by
    nothing else until the next execute phase. *)
