(** Shared post-run observation hook for the workload drivers.

    Every workload calls {!publish} once after {!Mb_machine.Machine.run}
    returns: it folds the allocators' {!Mb_alloc.Astats} counters into the
    machine's recorder and hands the recorder to {!Mb_obs.Collect} under a
    label describing the run's parameters; if the machine's dynamic
    checker is armed, the checker is likewise handed to
    {!Mb_check.Collect} under the same label, and an armed fault
    injector to {!Mb_fault.Collect}. A no-op when the machine is
    unobserved, unchecked and unstormed, so workloads stay oblivious to
    whether anyone is watching. *)

val publish :
  label:string -> Mb_machine.Machine.t -> Mb_alloc.Allocator.t list -> unit
(** [publish ~label m allocators] — see above. [label] should encode the
    workload name and distinguishing parameters; the collector sorts by it
    when draining, which is what keeps sink output deterministic under the
    parallel experiment pool. *)
