(** Benchmark 3 — cache-conscious data placement (paper section 4.3).

    Allocates [threads] objects of [object_size] bytes back to back, hands
    one to each thread, and has every thread write a byte at the front and
    a byte at the back of its object [writes] times. If the allocator lets
    two objects overlap a cache line, the line ping-pongs between the
    writers' CPUs and the run slows down 2–4x; a line-aligning allocator
    avoids it. The per-run nondeterminism of malloc's returned addresses
    is modelled with a few random warm-up allocations before the objects
    (the paper: "addresses … are somewhat nondeterministic"). *)

type params = {
  machine : Mb_machine.Machine.config;
  seed : int;
  threads : int;
  object_size : int;       (** 3–52 bytes in the paper's sweep *)
  writes : int;            (** per thread; 100 million in the paper *)
  aligned : bool;          (** wrap the allocator in {!Mb_alloc.Aligned} *)
  factory : Factory.t;
  paper_writes : int;      (** scale reference, 100 million *)
  loop_cycles : int;       (** non-memory work per write iteration *)
}

val default : params
(** 2 threads, 40 B objects, 1M writes on the quad Xeon, not aligned. *)

type result = {
  params : params;
  elapsed_s : float;       (** time until all threads finished, unscaled *)
  scaled_s : float;        (** scaled to [paper_writes] *)
  transfers : int;         (** cache-to-cache transfers (ping-pongs) observed *)
  shared_lines : int;      (** lines written by more than one thread *)
  addresses : int list;    (** the object addresses handed out *)
  degraded_ops : int;      (** allocations skipped after the fault
                               layer's retries ran out; 0 unless a
                               [--faults] plan is armed *)
}

val run : params -> result

val sweep :
  params -> sizes:int list -> runs:int -> (int * Mb_stats.Summary.t) list
(** [sweep params ~sizes ~runs] runs [runs] seeds per size and summarizes
    scaled elapsed time — one curve of the paper's figures 9–11. *)
