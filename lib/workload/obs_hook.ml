module M = Mb_machine.Machine
module A = Mb_alloc.Allocator

let publish ~label m allocators =
  let obs = M.observer m in
  if Mb_obs.Recorder.enabled obs then begin
    List.iter (fun a -> Mb_alloc.Astats.publish a.A.stats obs) allocators;
    Mb_obs.Collect.publish ~label obs
  end;
  let chk = M.checker m in
  if Mb_check.Checker.armed chk then Mb_check.Collect.publish ~label chk;
  Mb_fault.Collect.publish ~label (M.fault m)
