(** Allocation traces: generation and replay (paper section 6 future
    work: "test our assumptions about the allocation patterns of
    large-scale network servers by instrumenting heavily used servers to
    generate trace data").

    A trace is a well-formed sequence of slot-based operations: an
    [Alloc] fills an empty slot, a [Free] empties a full one. Replaying
    the same trace against different allocators gives an
    apples-to-apples comparison driven by one allocation pattern. *)

type op =
  | Alloc of { slot : int; size : int }
  | Free of { slot : int }

type t = op array

val server_size_dist : Mb_prng.Rng.t -> int
(** The paper's observation (after [4, 5]) that servers use few sizes
    near 40 bytes: 70% exactly 40 B, 20% small strings (16–128 B), 9%
    medium (128–2 KB), 1% 8 KB buffers. *)

type req_class = Read | Write | Update
(** Mixed request classes for the open-loop server: reads allocate
    scratch buffers ({!server_size_dist}), writes carry larger payloads
    ({!write_size_dist}) with the realloc response-growth pattern, and
    updates swap the per-connection state object under the table lock —
    the foreign-free path ({!update_size_dist}). *)

val class_label : req_class -> string

val write_size_dist : Mb_prng.Rng.t -> int
(** Write-payload sizes: 40% 128 B–1 KB, 45% 1–4 KB, 15% 8 KB. *)

val update_size_dist : Mb_prng.Rng.t -> int
(** Update scratch sizes: 60% exactly 40 B, 35% 16–64 B, 5% 256–512 B. *)

val class_size_dist : req_class -> Mb_prng.Rng.t -> int
(** The size distribution a class draws its work buffers from. *)

val generate :
  rng:Mb_prng.Rng.t ->
  ops:int ->
  slots:int ->
  ?size_of:(Mb_prng.Rng.t -> int) ->
  unit ->
  t
(** Random well-formed trace over [slots] concurrent objects, roughly
    balanced between allocation and release, using [size_of] (default
    {!server_size_dist}) for request sizes. *)

val validate : t -> slots:int -> (unit, string) result
(** Checks well-formedness (no double alloc/free, slots in range). *)

val live_at_end : t -> slots:int -> int
(** Number of slots left allocated when the trace ends. *)

val replay : Mb_alloc.Allocator.t -> Mb_machine.Machine.ctx -> t -> slots:int -> int
(** Runs the trace on an allocator, touching each allocation, and frees
    any slots still live at the end. Returns the number of trace
    allocations skipped after the fault layer's retries ran out (the
    matching frees are skipped too); always 0 unless a [--faults] plan
    is armed. *)
