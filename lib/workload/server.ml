module M = Mb_machine.Machine
module A = Mb_alloc.Allocator
module Rng = Mb_prng.Rng
module Fault = Mb_fault.Injector

type params = {
  machine : M.config;
  seed : int;
  threads : int;
  requests_per_thread : int;
  connections : int;
  think_cycles : int;
  factory : Factory.t;
  probe_latency : bool;
}

let default =
  { machine = Mb_machine.Configs.quad_xeon;
    seed = 1;
    threads = 4;
    requests_per_thread = 2_000;
    connections = 256;
    think_cycles = 1_500;
    factory = Factory.ptmalloc ();
    probe_latency = false;
  }

type result = {
  params : params;
  elapsed_s : float;
  requests_per_second : float;
  per_thread_s : float list;
  foreign_frees : int;
  arenas : int;
  contended_ops : int;
  latency : probe_result option;
  degraded_ops : int;
}

and probe_result = {
  malloc_mean_ns : float;
  malloc_p99_ns : float;
  drift : float;
  window_means : (float * float) list;
}

let state_bytes = 40  (* per-connection state: the paper's typical size *)

let run params =
  if params.threads <= 0 || params.connections <= 0 then invalid_arg "Server.run: bad params";
  let m = M.create ~seed:params.seed params.machine in
  let proc = M.create_proc m ~name:"server" () in
  let raw_alloc = params.factory.Factory.create proc in
  let probe, alloc =
    if params.probe_latency then
      let p, a = Latency.wrap raw_alloc in
      (Some p, a)
    else (None, raw_alloc)
  in
  (* The connection table: slot i holds the address of connection i's
     current state object, installed by whichever worker served it last. *)
  let conn_lock = M.Mutex.create m ~name:"conntab" () in
  let conns = Array.make params.connections 0 in
  let workers = ref [] in
  let degraded = Array.make params.threads 0 in
  (* Each allocation in a request degrades independently under a fault
     plan: a failed state swap keeps the old state, a failed buffer is
     skipped, a failed realloc keeps the original response — the
     request itself always completes. *)
  let handle_request ctx rng i =
    let fault = M.ctx_fault ctx in
    let note () =
      Fault.note_degraded fault;
      degraded.(i) <- degraded.(i) + 1
    in
    let c = Rng.int rng params.connections in
    (* Swap the connection's state object: free the old one (allocated by
       some other thread) and install a fresh, zeroed one. *)
    (match A.calloc alloc ctx ~count:1 ~size:state_bytes with
    | fresh ->
        M.Mutex.lock conn_lock ctx;
        let old = conns.(c) in
        conns.(c) <- fresh;
        M.Mutex.unlock conn_lock ctx;
        if old <> 0 then alloc.A.free ctx old
    | exception Fault.Alloc_failure _ -> note ());
    (* Short-lived request buffers. *)
    let nbufs = 2 + Rng.int rng 3 in
    let bufs =
      List.filter_map
        (fun (_ : int) ->
          let size = Trace.server_size_dist rng in
          match alloc.A.malloc ctx size with
          | user ->
              M.touch_range ctx user ~len:(min size 256);
              Some user
          | exception Fault.Alloc_failure _ ->
              note ();
              None)
        (List.init nbufs Fun.id)
    in
    (* A response buffer that sometimes outgrows its first estimate, the
       classic realloc pattern. *)
    let response =
      match alloc.A.malloc ctx 128 with
      | user -> user
      | exception Fault.Alloc_failure _ ->
          note ();
          0
    in
    let response =
      if response <> 0 && Rng.int rng 4 = 0 then
        match A.realloc alloc ctx response (256 + Rng.int rng 2048) with
        | moved -> moved
        | exception Fault.Alloc_failure _ ->
            note ();
            response
      else response
    in
    M.work ctx params.think_cycles;
    if response <> 0 then alloc.A.free ctx response;
    List.iter (fun user -> alloc.A.free ctx user) bufs
  in
  let main =
    M.spawn proc ~name:"acceptor" (fun ctx ->
        let ws =
          List.init params.threads (fun i ->
              M.spawn proc ~name:(Printf.sprintf "worker-%d" i) (fun wctx ->
                  let rng = M.ctx_rng wctx in
                  for _ = 1 to params.requests_per_thread do
                    handle_request wctx rng i
                  done))
        in
        workers := ws;
        List.iter (fun w -> M.join ctx w) ws;
        (* Drain the connection table so the heap can be validated empty. *)
        Array.iteri
          (fun i addr ->
            if addr <> 0 then begin
              alloc.A.free ctx addr;
              conns.(i) <- 0
            end)
          conns)
  in
  ignore main;
  M.run m;
  (match alloc.A.validate () with
  | Ok () -> ()
  | Error msg -> failwith (Printf.sprintf "Server: heap invariant broken: %s" msg));
  Obs_hook.publish m [ raw_alloc ]
    ~label:
      (Printf.sprintf "server %s t=%d req=%d conn=%d seed=%d" params.factory.Factory.label
         params.threads params.requests_per_thread params.connections params.seed);
  let per_thread_s = List.map (fun w -> M.elapsed_ns w /. 1e9) !workers in
  let elapsed_s = List.fold_left max 0. per_thread_s in
  let total_requests = params.threads * params.requests_per_thread in
  let latency =
    match probe with
    | None -> None
    | Some p ->
        let all = Array.of_list (List.map snd (Latency.samples p)) in
        let window_ns = M.elapsed_ns (List.hd !workers) /. 8. in
        let windows = Latency.windows p ~window_ns in
        Some
          { malloc_mean_ns = (Mb_stats.Summary.of_array all).Mb_stats.Summary.mean;
            malloc_p99_ns = Mb_stats.Summary.percentile all 99.;
            drift = Latency.drift p ~window_ns;
            window_means =
              List.map (fun (t, s) -> (t, s.Mb_stats.Summary.mean)) windows;
          }
  in
  { params;
    elapsed_s;
    requests_per_second = (if elapsed_s > 0. then float_of_int total_requests /. elapsed_s else 0.);
    per_thread_s;
    foreign_frees = alloc.A.stats.Mb_alloc.Astats.foreign_frees;
    arenas = alloc.A.stats.Mb_alloc.Astats.arenas_created;
    contended_ops = alloc.A.stats.Mb_alloc.Astats.contended_ops;
    latency;
    degraded_ops = Array.fold_left ( + ) 0 degraded;
  }
