module M = Mb_machine.Machine
module A = Mb_alloc.Allocator
module Rng = Mb_prng.Rng
module Fault = Mb_fault.Injector
module Summary = Mb_stats.Summary
module Histogram = Mb_stats.Histogram

type server_model =
  | Thread_pool of { queue_capacity : int }
  | Thread_per_connection

type open_loop = {
  process : Arrivals.process;
  total_requests : int;
  model : server_model;
  churn_mean_requests : int;
  read_pct : int;
  write_pct : int;
}

type params = {
  machine : M.config;
  seed : int;
  threads : int;
  requests_per_thread : int;
  connections : int;
  think_cycles : int;
  factory : Factory.t;
  probe_latency : bool;
  open_loop : open_loop option;
}

let default =
  { machine = Mb_machine.Configs.quad_xeon;
    seed = 1;
    threads = 4;
    requests_per_thread = 2_000;
    connections = 256;
    think_cycles = 1_500;
    factory = Factory.ptmalloc ();
    probe_latency = false;
    open_loop = None;
  }

let default_open =
  { process = Arrivals.Poisson { rate_rps = 200_000. };
    total_requests = 10_000;
    model = Thread_pool { queue_capacity = 1_024 };
    churn_mean_requests = 64;
    read_pct = 60;
    write_pct = 25;
  }

let model_label = function
  | Thread_pool { queue_capacity } -> Printf.sprintf "pool(queue %d)" queue_capacity
  | Thread_per_connection -> "thread-per-connection"

type request_stats = {
  completed : int;
  dropped : int;
  churned : int;
  offered_rps : float;
  throughput_rps : float;
  mean_ns : float;
  p50_ns : float;
  p95_ns : float;
  p99_ns : float;
  max_ns : float;
  hist : Histogram.t;
  by_class : (string * int) list;
}

type result = {
  params : params;
  elapsed_s : float;
  requests_per_second : float;
  per_thread_s : float list;
  foreign_frees : int;
  arenas : int;
  contended_ops : int;
  latency : probe_result option;
  degraded_ops : int;
  requests : request_stats option;
}

and probe_result = {
  malloc_mean_ns : float;
  malloc_p99_ns : float;
  drift : float;
  window_means : (float * float) list;
  op_stats : op_stat list;
}

and op_stat = {
  op : string;
  op_count : int;
  op_mean_ns : float;
  op_p99_ns : float;
}

let state_bytes = 40  (* per-connection state: the paper's typical size *)

(* An accepted request travelling from the arrival stream to a worker. *)
type request = { arrival_ns : float; cls : Trace.req_class; conn : int }

(* Probe-completed latency summary. The probe's malloc_* fields keep
   their historic malloc-only meaning (the uptime-drift experiment
   compares them across windows); the per-op table is where the newly
   visible calloc/realloc/free paths report. [window_basis_ns] is the
   slowest worker's elapsed time (closed loop / pool) or the last
   completion time (thread-per-connection) — never worker 0's alone,
   which skewed drift whenever worker 0 finished early, and divided by
   zero samples when a fault plan degraded worker 0 to nothing. *)
let finish_probe probe ~window_basis_ns =
  match probe with
  | None -> None
  | Some p when Latency.count p = 0 -> None
  | Some p ->
      let window_ns = if window_basis_ns > 0. then window_basis_ns /. 8. else 1. in
      let durations samples = Array.of_list (List.map snd samples) in
      let mallocs = durations (Latency.samples_by p Latency.Malloc) in
      let base = if Array.length mallocs > 0 then mallocs else durations (Latency.samples p) in
      let op_stats =
        List.filter_map
          (fun o ->
            let ds = durations (Latency.samples_by p o) in
            if Array.length ds = 0 then None
            else
              Some
                { op = Latency.op_label o;
                  op_count = Array.length ds;
                  op_mean_ns = (Summary.of_array ds).Summary.mean;
                  op_p99_ns = Summary.percentile ds 99.;
                })
          Latency.ops
      in
      Some
        { malloc_mean_ns = (Summary.of_array base).Summary.mean;
          malloc_p99_ns = Summary.percentile base 99.;
          drift = Latency.drift p ~window_ns;
          window_means =
            List.map (fun (t, s) -> (t, s.Summary.mean)) (Latency.windows p ~window_ns);
          op_stats;
        }

(* Latency percentiles over the collected per-request samples. The
   histogram spans [0, max); percentiles come from the exact sample
   array (the histogram is for shape and for the report layer). *)
let finish_requests ~completed ~dropped ~churned ~offered_rps ~last_completion_ns ~lat ~lat_n
    ~class_counts =
  let samples = Array.sub lat 0 lat_n in
  let pct p = if lat_n = 0 then 0. else Summary.percentile samples p in
  let mean_ns = if lat_n = 0 then 0. else (Summary.of_array samples).Summary.mean in
  let max_ns = Array.fold_left Float.max 0. samples in
  let hist = Histogram.create ~lo:0. ~hi:(if max_ns > 0. then max_ns *. 1.0001 else 1.) ~bins:64 in
  Array.iter (Histogram.add hist) samples;
  { completed;
    dropped;
    churned;
    offered_rps;
    throughput_rps =
      (if last_completion_ns > 0. then float_of_int completed /. (last_completion_ns /. 1e9) else 0.);
    mean_ns;
    p50_ns = pct 50.;
    p95_ns = pct 95.;
    p99_ns = pct 99.;
    max_ns;
    hist;
    by_class = List.map (fun c -> (Trace.class_label c, class_counts c)) [ Trace.Read; Trace.Write; Trace.Update ];
  }

let publish_request_counters m (rs : request_stats) =
  let obs = M.observer m in
  if Mb_obs.Recorder.enabled obs then begin
    let set k v = Mb_obs.Recorder.set obs k v in
    set "server.req.completed" rs.completed;
    set "server.req.dropped" rs.dropped;
    set "server.conn.churned" rs.churned;
    set "server.req.offered_rps" (int_of_float rs.offered_rps);
    set "server.req.throughput_rps" (int_of_float rs.throughput_rps);
    set "server.req.p50_ns" (int_of_float rs.p50_ns);
    set "server.req.p95_ns" (int_of_float rs.p95_ns);
    set "server.req.p99_ns" (int_of_float rs.p99_ns);
    List.iter (fun (c, n) -> set ("server.req." ^ c) n) rs.by_class
  end

let run params =
  if params.threads <= 0 || params.connections <= 0 then invalid_arg "Server.run: bad params";
  (match params.open_loop with
  | None -> ()
  | Some op ->
      if op.total_requests <= 0 then invalid_arg "Server.run: total_requests <= 0";
      if op.churn_mean_requests < 0 then invalid_arg "Server.run: churn_mean_requests < 0";
      if op.read_pct < 0 || op.write_pct < 0 || op.read_pct + op.write_pct > 100 then
        invalid_arg "Server.run: request-class mix must be percentages summing to <= 100";
      (match op.model with
      | Thread_pool { queue_capacity } ->
          if queue_capacity <= 0 then invalid_arg "Server.run: queue_capacity <= 0"
      | Thread_per_connection -> ()));
  let m = M.create ~seed:params.seed params.machine in
  let proc = M.create_proc m ~name:"server" () in
  let raw_alloc = params.factory.Factory.create proc in
  let probe, alloc =
    if params.probe_latency then
      let p, a = Latency.wrap raw_alloc in
      (Some p, a)
    else (None, raw_alloc)
  in
  (* Derived allocator entry points, routed through the probe when armed
     so calloc/realloc are timed end to end rather than only their inner
     malloc (or, before the probe also wrapped free, not at all). *)
  let calloc ctx ~count ~size =
    match probe with
    | Some p -> Latency.calloc p alloc ctx ~count ~size
    | None -> A.calloc alloc ctx ~count ~size
  in
  let realloc ctx addr size =
    match probe with
    | Some p -> Latency.realloc p alloc ctx addr size
    | None -> A.realloc alloc ctx addr size
  in
  (* The connection table: slot i holds the address of connection i's
     current state object, installed by whichever worker served it last. *)
  let conn_lock = M.Mutex.create m ~name:"conntab" () in
  let conns = Array.make params.connections 0 in
  let workers = ref [] in
  let degraded_ops = ref 0 in
  (* Each allocation in a request degrades independently under a fault
     plan: a failed state swap keeps the old state, a failed buffer is
     skipped, a failed realloc keeps the original response — the
     request itself always completes. *)
  let note ctx =
    Fault.note_degraded (M.ctx_fault ctx);
    incr degraded_ops
  in
  (* Swap a connection's state object: free the old one (allocated by
     some other thread) and install a fresh, zeroed one. Shared by the
     closed-loop request body, the update class, and connection churn. *)
  let swap_state ctx c =
    match calloc ctx ~count:1 ~size:state_bytes with
    | fresh ->
        M.Mutex.lock conn_lock ctx;
        let old = conns.(c) in
        conns.(c) <- fresh;
        M.Mutex.unlock conn_lock ctx;
        if old <> 0 then alloc.A.free ctx old
    | exception Fault.Alloc_failure _ -> note ctx
  in
  let alloc_buf ctx rng dist =
    let size = dist rng in
    match alloc.A.malloc ctx size with
    | user ->
        M.touch_range ctx user ~len:(min size 256);
        Some user
    | exception Fault.Alloc_failure _ ->
        note ctx;
        None
  in
  let alloc_bufs ctx rng dist n =
    List.filter_map (fun (_ : int) -> alloc_buf ctx rng dist) (List.init n Fun.id)
  in
  (* A response buffer that sometimes outgrows its first estimate, the
     classic realloc pattern. [grow_1_in] is the growth probability. *)
  let response_buf ctx rng ~grow_1_in =
    let response =
      match alloc.A.malloc ctx 128 with
      | user -> user
      | exception Fault.Alloc_failure _ ->
          note ctx;
          0
    in
    if response <> 0 && Rng.int rng grow_1_in = 0 then
      match realloc ctx response (256 + Rng.int rng 2048) with
      | moved -> moved
      | exception Fault.Alloc_failure _ ->
          note ctx;
          response
    else response
  in
  (* The closed-loop request body: state swap + scratch buffers +
     response, unchanged from the original workload. *)
  let handle_request ctx rng =
    let c = Rng.int rng params.connections in
    swap_state ctx c;
    let bufs = alloc_bufs ctx rng Trace.server_size_dist (2 + Rng.int rng 3) in
    let response = response_buf ctx rng ~grow_1_in:4 in
    M.work ctx params.think_cycles;
    if response <> 0 then alloc.A.free ctx response;
    List.iter (fun user -> alloc.A.free ctx user) bufs
  in
  (* The open-loop request body: behaviour depends on the request class. *)
  let handle_open ctx rng (req : request) =
    match req.cls with
    | Trace.Read ->
        let bufs = alloc_bufs ctx rng Trace.server_size_dist (1 + Rng.int rng 3) in
        M.work ctx params.think_cycles;
        List.iter (fun user -> alloc.A.free ctx user) bufs
    | Trace.Write ->
        let bufs = alloc_bufs ctx rng Trace.write_size_dist 2 in
        let response = response_buf ctx rng ~grow_1_in:2 in
        M.work ctx (2 * params.think_cycles);
        if response <> 0 then alloc.A.free ctx response;
        List.iter (fun user -> alloc.A.free ctx user) bufs
    | Trace.Update ->
        swap_state ctx req.conn;
        let bufs = alloc_bufs ctx rng Trace.update_size_dist (1 + Rng.int rng 2) in
        M.work ctx params.think_cycles;
        List.iter (fun user -> alloc.A.free ctx user) bufs
  in
  let drain_conns ctx =
    Array.iteri
      (fun i addr ->
        if addr <> 0 then begin
          alloc.A.free ctx addr;
          conns.(i) <- 0
        end)
      conns
  in
  (* --- per-run accounting shared by both open-loop models ------------- *)
  let completed = ref 0 in
  let dropped = ref 0 in
  let churned = ref 0 in
  let last_arrival_ns = ref 0. in
  let last_completion_ns = ref 0. in
  let class_counts = Array.make 3 0 in
  let class_index = function Trace.Read -> 0 | Trace.Write -> 1 | Trace.Update -> 2 in
  let lat = ref (Array.make 4_096 0.) in
  let lat_n = ref 0 in
  let push_latency d =
    if !lat_n = Array.length !lat then begin
      let bigger = Array.make (2 * !lat_n) 0. in
      Array.blit !lat 0 bigger 0 !lat_n;
      lat := bigger
    end;
    !lat.(!lat_n) <- d;
    incr lat_n
  in
  let complete ctx (req : request) =
    let now = M.now ctx in
    push_latency (now -. req.arrival_ns);
    incr completed;
    class_counts.(class_index req.cls) <- class_counts.(class_index req.cls) + 1;
    last_completion_ns := now
  in
  (* Connection-churn budgets: how many more requests a connection
     serves before it closes and a fresh one reuses the slot. Budgets
     are sampled uniformly on [1, 2*mean] so churn spreads instead of
     synchronizing. *)
  let open_cfg = params.open_loop in
  let churn_mean = match open_cfg with Some o -> o.churn_mean_requests | None -> 0 in
  let sample_budget rng = 1 + Rng.int rng (2 * churn_mean) in
  let budgets =
    if churn_mean > 0 then
      let brng = Rng.create ~seed:((params.seed * 31) + 7) in
      Array.init params.connections (fun _ -> sample_budget brng)
    else Array.make (max params.connections 1) max_int
  in
  (* Decrement the connection's budget; when it runs out the connection
     closes: its state is released and a fresh zeroed state takes the
     slot. Returns true when the connection churned. *)
  let churn_step ctx rng c =
    if churn_mean = 0 then false
    else begin
      budgets.(c) <- budgets.(c) - 1;
      if budgets.(c) > 0 then false
      else begin
        budgets.(c) <- sample_budget rng;
        incr churned;
        swap_state ctx c;
        true
      end
    end
  in
  let sample_class rng op =
    let p = Rng.int rng 100 in
    if p < op.read_pct then Trace.Read
    else if p < op.read_pct + op.write_pct then Trace.Write
    else Trace.Update
  in
  (* --- drivers --------------------------------------------------------- *)
  let closed_driver ctx =
    let ws =
      List.init params.threads (fun i ->
          M.spawn proc ~name:(Printf.sprintf "worker-%d" i) (fun wctx ->
              let rng = M.ctx_rng wctx in
              for _ = 1 to params.requests_per_thread do
                handle_request wctx rng
              done))
    in
    workers := ws;
    List.iter (fun w -> M.join ctx w) ws;
    (* Drain the connection table so the heap can be validated empty. *)
    drain_conns ctx
  in
  (* Thread pool: a bounded FIFO between the acceptor and a fixed pool.
     The acceptor paces itself with [sleep_until] — open loop: arrivals
     keep coming at the process's rate no matter how far behind the
     pool is. A full queue sheds load (the request is dropped, counted,
     and never seen by a worker). *)
  let pool_driver op queue_capacity ctx =
    let reqq : request Queue.t = Queue.create () in
    let wq = M.Waitq.create m ~name:"request queue" () in
    let accepting = ref true in
    let ws =
      List.init params.threads (fun i ->
          M.spawn proc ~name:(Printf.sprintf "worker-%d" i) (fun wctx ->
              let rng = M.ctx_rng wctx in
              let rec loop () =
                match Queue.take_opt reqq with
                | Some req ->
                    handle_open wctx rng req;
                    complete wctx req;
                    ignore (churn_step wctx rng req.conn : bool);
                    loop ()
                | None ->
                    (* No simulated-time op between this check and the
                       park: a wake cannot be lost. *)
                    if !accepting then begin
                      M.Waitq.wait wq wctx;
                      loop ()
                    end
              in
              loop ()))
    in
    workers := ws;
    let arr = Arrivals.create ~rng:(M.ctx_rng ctx) op.process in
    let arng = M.ctx_rng ctx in
    for _ = 1 to op.total_requests do
      let t = Arrivals.next arr in
      M.sleep_until ctx t;
      last_arrival_ns := t;
      let req = { arrival_ns = t; cls = sample_class arng op; conn = Rng.int arng params.connections } in
      if Queue.length reqq >= queue_capacity then incr dropped
      else begin
        Queue.push req reqq;
        ignore (M.Waitq.wake_one wq ctx : bool)
      end
    done;
    accepting := false;
    ignore (M.Waitq.wake_all wq ctx : int);
    List.iter (fun w -> M.join ctx w) ws;
    drain_conns ctx
  in
  (* Thread per connection: each slot has its own queue and a dedicated
     thread. When a connection churns, its thread exits and a freshly
     spawned thread takes over the slot — so thread create/teardown
     costs (stack mmap, first-touch faults) ride the churn rate, which
     is exactly the per-connection lifecycle cost this model exists to
     expose. *)
  let tpc_driver op ctx =
    let queues = Array.init params.connections (fun _ -> (Queue.create () : request Queue.t)) in
    let waitqs = Array.init params.connections (fun _ -> M.Waitq.create m ~name:"connection" ()) in
    let accepting = ref true in
    let active = ref params.connections in
    let all_done = M.Latch.create m in
    let rec serve slot wctx =
      let rng = M.ctx_rng wctx in
      match Queue.take_opt queues.(slot) with
      | Some req ->
          handle_open wctx rng req;
          complete wctx req;
          if churn_step wctx rng slot then begin
            (* Hand the slot to a successor thread and retire. *)
            ignore (M.spawn proc ~name:"conn" (fun c -> serve slot c) : M.thread)
          end
          else serve slot wctx
      | None ->
          if !accepting then begin
            M.Waitq.wait waitqs.(slot) wctx;
            serve slot wctx
          end
          else begin
            decr active;
            if !active = 0 then M.Latch.signal all_done wctx
          end
    in
    for slot = 0 to params.connections - 1 do
      ignore (M.spawn proc ~name:"conn" (fun c -> serve slot c) : M.thread)
    done;
    let arr = Arrivals.create ~rng:(M.ctx_rng ctx) op.process in
    let arng = M.ctx_rng ctx in
    for _ = 1 to op.total_requests do
      let t = Arrivals.next arr in
      M.sleep_until ctx t;
      last_arrival_ns := t;
      let conn = Rng.int arng params.connections in
      let req = { arrival_ns = t; cls = sample_class arng op; conn } in
      Queue.push req queues.(conn);
      ignore (M.Waitq.wake_one waitqs.(conn) ctx : bool)
    done;
    accepting := false;
    Array.iter (fun q -> ignore (M.Waitq.wake_all q ctx : int)) waitqs;
    M.Latch.wait all_done ctx;
    drain_conns ctx
  in
  let main =
    M.spawn proc ~name:"acceptor" (fun ctx ->
        match params.open_loop with
        | None -> closed_driver ctx
        | Some ({ model = Thread_pool { queue_capacity }; _ } as op) ->
            pool_driver op queue_capacity ctx
        | Some ({ model = Thread_per_connection; _ } as op) -> tpc_driver op ctx)
  in
  ignore main;
  M.run m;
  (match alloc.A.validate () with
  | Ok () -> ()
  | Error msg -> failwith (Printf.sprintf "Server: heap invariant broken: %s" msg));
  let requests =
    match params.open_loop with
    | None -> None
    | Some op ->
        let offered_rps =
          if !last_arrival_ns > 0. then
            float_of_int op.total_requests /. (!last_arrival_ns /. 1e9)
          else 0.
        in
        Some
          (finish_requests ~completed:!completed ~dropped:!dropped ~churned:!churned
             ~offered_rps ~last_completion_ns:!last_completion_ns ~lat:!lat ~lat_n:!lat_n
             ~class_counts:(fun c -> class_counts.(class_index c)))
  in
  (match requests with None -> () | Some rs -> publish_request_counters m rs);
  let label =
    match params.open_loop with
    | None ->
        Printf.sprintf "server %s t=%d req=%d conn=%d seed=%d" params.factory.Factory.label
          params.threads params.requests_per_thread params.connections params.seed
    | Some op ->
        Printf.sprintf "server %s %s %s req=%d conn=%d seed=%d" params.factory.Factory.label
          (Arrivals.to_string op.process) (model_label op.model) op.total_requests
          params.connections params.seed
  in
  Obs_hook.publish m [ raw_alloc ] ~label;
  let per_thread_s = List.map (fun w -> M.elapsed_ns w /. 1e9) !workers in
  let slowest_worker_ns = List.fold_left (fun acc w -> Float.max acc (M.elapsed_ns w)) 0. !workers in
  let elapsed_s =
    match params.open_loop with
    | None -> slowest_worker_ns /. 1e9
    | Some _ -> !last_completion_ns /. 1e9
  in
  let requests_per_second =
    match requests with
    | Some rs -> rs.throughput_rps
    | None ->
        let total = params.threads * params.requests_per_thread in
        if elapsed_s > 0. then float_of_int total /. elapsed_s else 0.
  in
  let window_basis_ns =
    match params.open_loop with
    | None | Some { model = Thread_pool _; _ } ->
        if slowest_worker_ns > 0. then slowest_worker_ns else !last_completion_ns
    | Some { model = Thread_per_connection; _ } -> !last_completion_ns
  in
  { params;
    elapsed_s;
    requests_per_second;
    per_thread_s;
    foreign_frees = alloc.A.stats.Mb_alloc.Astats.foreign_frees;
    arenas = alloc.A.stats.Mb_alloc.Astats.arenas_created;
    contended_ops = alloc.A.stats.Mb_alloc.Astats.contended_ops;
    latency = finish_probe probe ~window_basis_ns;
    degraded_ops = !degraded_ops;
    requests;
  }
