(** The Larson & Krishnan benchmark (ISMM 1998), the paper's reference
    [5] — benchmark 2 is its "simplified form". This is the original
    shape: worker threads each own a slot array; in a loop, a worker
    picks a random slot, frees whatever is there, and allocates a
    replacement of a {e random} size drawn uniformly from
    [\[min_size, max_size\]]; periodically workers exit and hand their
    arrays to fresh threads. The metric is throughput (operations per
    simulated second) plus the memory the heap holds at the end —
    Larson's "multiple simultaneous stresses" on an allocator.

    Including it lets us check the paper's claim that fixing the request
    size (benchmark 2) does not change the leak story, and gives the
    shootout a mixed-size workload. *)

type params = {
  machine : Mb_machine.Machine.config;
  seed : int;
  threads : int;
  rounds : int;               (** thread generations, as in benchmark 2 *)
  slots_per_thread : int;
  ops_per_round : int;
  min_size : int;
  max_size : int;             (** uniform random request sizes *)
  factory : Factory.t;
}

val default : params
(** 4 threads, 2 rounds, 1000 slots, 10–500 bytes (Larson's classic
    range), ptmalloc on the 4-way Xeon. *)

type result = {
  params : params;
  elapsed_s : float;             (** makespan *)
  throughput_ops_s : float;      (** total alloc+free pairs per simulated second *)
  minor_faults : int;
  mapped_bytes : int;            (** address space held at the end *)
  live_bytes : int;              (** user bytes still allocated at the end *)
  arenas : int;
  foreign_frees : int;
  degraded_ops : int;            (** slot replacements left empty after
                                     the fault layer's retries ran out;
                                     0 unless a [--faults] plan is armed *)
}

val run : params -> result
(** Runs to completion, validates the heap, and frees all remaining
    slots before measuring [live_bytes] (which should then be 0). *)
