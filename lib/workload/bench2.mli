(** Benchmark 2 — unbounded memory consumption (paper section 4.2).

    The main thread allocates [objects_per_thread] fixed-size objects per
    chain into address arrays, then starts one worker per chain. A worker
    replaces a random subset of its array's objects one at a time (each
    replacement frees an object allocated by an *earlier thread* and
    allocates a new one from whatever arena the worker lands on), then
    creates its successor and exits. Each generation is a "round".

    Because the total number of live objects is fixed, a perfect
    allocator touches a constant number of pages regardless of rounds;
    a real one leaks pages into arenas the current threads no longer
    allocate from. The reported metric is the process's minor-fault
    count, exactly what the paper reads from [time]. *)

type params = {
  machine : Mb_machine.Machine.config;
  seed : int;
  threads : int;                 (** concurrent replacement chains *)
  rounds : int;                  (** generations per chain *)
  objects_per_thread : int;      (** 10_000 in the paper *)
  replacements_per_round : int;  (** size of the "random subset" *)
  size : int;                    (** 40 bytes in the paper *)
  factory : Factory.t;
}

val default : params
(** 1 thread, 1 round, 10k objects of 40 B, 2k replacements, ptmalloc on
    the uniprocessor K6. *)

type result = {
  params : params;
  minor_faults : int;
  resident_pages : int;
  mapped_bytes : int;
  sbrk_calls : int;
  mmap_calls : int;
  arenas_created : int;
  foreign_frees : int;
  elapsed_s : float;
  degraded_ops : int;  (** replacements/populations skipped after the
                           fault layer's retries ran out; 0 unless a
                           [--faults] plan is armed *)
}

val run : params -> result

val paper_predictor : threads:int -> rounds:int -> float
(** The paper's fitted lower bound: [14 + 1.1*t*r + 127.6*t]. *)

val fit_predictor : (int * int * int) list -> base:float -> float * float
(** [fit_predictor samples ~base] takes [(threads, rounds, faults)]
    observations and returns [(per_round_per_thread, per_thread)] for a
    model [base + a*t*r + b*t] by least squares on the two slopes. *)
