module M = Mb_machine.Machine
module A = Mb_alloc.Allocator
module Fault = Mb_fault.Injector

type mode = Threads | Processes

type params = {
  machine : M.config;
  seed : int;
  workers : int;
  mode : mode;
  iterations : int;
  size : int;
  factory : Factory.t;
  paper_iterations : int;
}

let default =
  { machine = Mb_machine.Configs.dual_pentium_pro;
    seed = 1;
    workers = 2;
    mode = Threads;
    iterations = 50_000;
    size = 512;
    factory = Factory.ptmalloc ();
    paper_iterations = 10_000_000;
  }

type result = {
  params : params;
  elapsed_s : float list;
  scaled_s : float list;
  ctx_switches : int;
  lock_contended_ops : int;
  arenas : int;
  blocks : int;
  utilization : float;
  degraded_ops : int;
}

(* A malloc that still fails after the instrument layer's retries is
   skipped (no free to balance) and counted, so the run completes under
   an armed fault plan instead of dying — the degradation the fault
   layer exists to measure. [degraded.(i)] is host-side bookkeeping;
   the guard consumes no simulated time, so faults-off runs are
   byte-identical. *)
let worker_body alloc iterations size degraded i ctx =
  let fault = M.ctx_fault ctx in
  for _ = 1 to iterations do
    match alloc.A.malloc ctx size with
    | user -> alloc.A.free ctx user
    | exception Fault.Alloc_failure _ ->
        Fault.note_degraded fault;
        degraded.(i) <- degraded.(i) + 1
  done

let run params =
  if params.workers <= 0 then invalid_arg "Bench1.run: workers <= 0";
  if params.iterations <= 0 then invalid_arg "Bench1.run: iterations <= 0";
  let m = M.create ~seed:params.seed params.machine in
  let degraded = Array.make params.workers 0 in
  let allocators, threads =
    match params.mode with
    | Threads ->
        let proc = M.create_proc m ~name:"shared" () in
        let alloc = params.factory.Factory.create proc in
        let threads =
          List.init params.workers (fun i ->
              M.spawn proc ~name:(Printf.sprintf "worker-%d" i)
                (worker_body alloc params.iterations params.size degraded i))
        in
        ([ alloc ], threads)
    | Processes ->
        let pairs =
          List.init params.workers (fun i ->
              let proc = M.create_proc m ~name:(Printf.sprintf "proc-%d" i) () in
              let alloc = params.factory.Factory.create proc in
              let th =
                M.spawn proc ~name:(Printf.sprintf "worker-%d" i)
                  (worker_body alloc params.iterations params.size degraded i)
              in
              (alloc, th))
        in
        (List.map fst pairs, List.map snd pairs)
  in
  M.run m;
  List.iter
    (fun alloc ->
      match alloc.A.validate () with
      | Ok () -> ()
      | Error msg -> failwith (Printf.sprintf "Bench1: heap invariant broken: %s" msg))
    allocators;
  Obs_hook.publish m allocators
    ~label:
      (Printf.sprintf "bench1 %s %s w=%d it=%d sz=%d seed=%d" params.factory.Factory.label
         (match params.mode with Threads -> "threads" | Processes -> "processes")
         params.workers params.iterations params.size params.seed);
  let elapsed_s = List.map (fun th -> M.elapsed_ns th /. 1e9) threads in
  let scale = float_of_int params.paper_iterations /. float_of_int params.iterations in
  let makespan_cycles = M.now_ns m /. M.cycles_to_ns m 1.0 in
  { params;
    elapsed_s;
    scaled_s = List.map (fun s -> s *. scale) elapsed_s;
    ctx_switches = M.total_ctx_switches m;
    lock_contended_ops =
      List.fold_left (fun acc a -> acc + a.A.stats.Mb_alloc.Astats.contended_ops) 0 allocators;
    arenas =
      List.fold_left (fun acc a -> acc + a.A.stats.Mb_alloc.Astats.arenas_created) 0 allocators;
    blocks = List.fold_left (fun acc th -> acc + (M.thread_stats th).M.blocks) 0 threads;
    utilization =
      (if makespan_cycles > 0. then
         M.busy_cycles m /. (float_of_int params.machine.M.cpus *. makespan_cycles)
       else 0.);
    degraded_ops = Array.fold_left ( + ) 0 degraded;
  }

let mean_scaled r = List.fold_left ( +. ) 0. r.scaled_s /. float_of_int (List.length r.scaled_s)

let max_scaled r = List.fold_left max 0. r.scaled_s
