module Rng = Mb_prng.Rng

type process =
  | Poisson of { rate_rps : float }
  | Bursty of { base_rps : float; burst_rps : float; on_s : float; off_s : float }
  | Diurnal of { low_rps : float; high_rps : float; period_s : float }

let validate = function
  | Poisson { rate_rps } ->
      if rate_rps <= 0. then invalid_arg "Arrivals: Poisson rate must be positive"
  | Bursty { base_rps; burst_rps; on_s; off_s } ->
      if base_rps <= 0. || burst_rps <= 0. then invalid_arg "Arrivals: Bursty rates must be positive";
      if on_s <= 0. || off_s <= 0. then invalid_arg "Arrivals: Bursty phases must be positive"
  | Diurnal { low_rps; high_rps; period_s } ->
      if low_rps <= 0. || high_rps <= 0. then invalid_arg "Arrivals: Diurnal rates must be positive";
      if period_s <= 0. then invalid_arg "Arrivals: Diurnal period must be positive"

type t = { rng : Rng.t; process : process; mutable clock_ns : float }

let create ~rng process =
  validate process;
  { rng; process; clock_ns = 0. }

(* Instantaneous rate at absolute time [t_ns]. Bursty alternates between
   a burst phase and a base phase; diurnal ramps linearly low -> high ->
   low over each period (a triangle wave — the knee experiments need the
   load to cross the saturation point smoothly, not jump over it). *)
let rate_at p t_ns =
  match p with
  | Poisson { rate_rps } -> rate_rps
  | Bursty { base_rps; burst_rps; on_s; off_s } ->
      let period_ns = (on_s +. off_s) *. 1e9 in
      let phase = Float.rem t_ns period_ns in
      if phase < on_s *. 1e9 then burst_rps else base_rps
  | Diurnal { low_rps; high_rps; period_s } ->
      let period_ns = period_s *. 1e9 in
      let phase = Float.rem t_ns period_ns /. period_ns in
      let frac = 1. -. Float.abs ((2. *. phase) -. 1.) in
      low_rps +. ((high_rps -. low_rps) *. frac)

(* Exponential gap at the rate in force when the previous arrival
   happened — a piecewise-constant thinning-free approximation, exact
   for Poisson and accurate for the others whenever the phase length is
   long against the mean gap (the regimes the workloads use). *)
let next t =
  let rate = rate_at t.process t.clock_ns in
  let gap = Rng.exponential t.rng ~mean:(1e9 /. rate) in
  t.clock_ns <- t.clock_ns +. gap;
  t.clock_ns

let now_ns t = t.clock_ns

let mean_rps = function
  | Poisson { rate_rps } -> rate_rps
  | Bursty { base_rps; burst_rps; on_s; off_s } ->
      ((burst_rps *. on_s) +. (base_rps *. off_s)) /. (on_s +. off_s)
  | Diurnal { low_rps; high_rps; _ } -> (low_rps +. high_rps) /. 2.

let scale p f =
  if f <= 0. then invalid_arg "Arrivals.scale: factor must be positive";
  match p with
  | Poisson { rate_rps } -> Poisson { rate_rps = rate_rps *. f }
  | Bursty b -> Bursty { b with base_rps = b.base_rps *. f; burst_rps = b.burst_rps *. f }
  | Diurnal d -> Diurnal { d with low_rps = d.low_rps *. f; high_rps = d.high_rps *. f }

let to_string = function
  | Poisson { rate_rps } -> Printf.sprintf "poisson:%g" rate_rps
  | Bursty { base_rps; burst_rps; on_s; off_s } ->
      Printf.sprintf "bursty:%g:%g:%g:%g" base_rps burst_rps on_s off_s
  | Diurnal { low_rps; high_rps; period_s } ->
      Printf.sprintf "diurnal:%g:%g:%g" low_rps high_rps period_s

let of_string s =
  let num field v =
    match float_of_string_opt v with
    | Some f -> f
    | None -> invalid_arg (Printf.sprintf "Arrivals.of_string: bad %s %S" field v)
  in
  let p =
    match String.split_on_char ':' (String.lowercase_ascii (String.trim s)) with
    | [ "poisson"; r ] -> Poisson { rate_rps = num "rate" r }
    | [ "bursty"; base; burst; on_s; off_s ] ->
        Bursty
          { base_rps = num "base rate" base;
            burst_rps = num "burst rate" burst;
            on_s = num "on seconds" on_s;
            off_s = num "off seconds" off_s;
          }
    | [ "diurnal"; low; high; period ] ->
        Diurnal
          { low_rps = num "low rate" low;
            high_rps = num "high rate" high;
            period_s = num "period seconds" period;
          }
    | _ ->
        invalid_arg
          (Printf.sprintf
             "Arrivals.of_string: %S (expected poisson:RATE, bursty:BASE:BURST:ON_S:OFF_S, or \
              diurnal:LOW:HIGH:PERIOD_S)"
             s)
  in
  validate p;
  p
