(** Allocation-latency instrumentation (paper section 6 future work:
    "heap allocator latency should show little or no change as network
    servers remain up over time. We plan to create a benchmark to
    measure latency changes over server uptime").

    Wraps an allocator so every heap operation records (simulated start
    time, duration, op); the samples can then be sliced into uptime
    windows to detect drift, or split by op to see which entry point is
    the contended one. Historically the probe only saw [malloc], which
    made the server's calloc state-swap and realloc response-growth
    paths — the contended ones — invisible. *)

type op = Malloc | Calloc | Realloc | Free

val op_label : op -> string

type probe

val wrap : Mb_alloc.Allocator.t -> probe * Mb_alloc.Allocator.t
(** The returned allocator behaves identically (and shares stats) but
    feeds the probe from its [malloc] and [free] entry points. For the
    derived entry points, route calls through {!calloc} / {!realloc}
    below — calling [Allocator.calloc] on the wrapped allocator directly
    would record only the inner [malloc], not the zeroing/copying the
    caller actually waits for. *)

val calloc : probe -> Mb_alloc.Allocator.t -> Mb_machine.Machine.ctx -> count:int -> size:int -> int
(** [Allocator.calloc] timed end to end and recorded as one [Calloc]
    sample; the inner [malloc] record is suppressed so the operation is
    not double-counted. *)

val realloc : probe -> Mb_alloc.Allocator.t -> Mb_machine.Machine.ctx -> int -> int -> int
(** [Allocator.realloc] timed end to end as one [Realloc] sample, with
    inner malloc/free records suppressed. *)

val samples : probe -> (float * float) list
(** All (start_ns, duration_ns) pairs across every op, in collection
    order. *)

val samples_by : probe -> op -> (float * float) list
(** Like {!samples}, restricted to one op. *)

val count : probe -> int

val count_by : probe -> op -> int

val ops : op list
(** All ops, in a fixed report order. *)

val windows : probe -> window_ns:float -> (float * Mb_stats.Summary.t) list
(** Latency summaries per uptime window: [(window_start_ns, summary)] for
    each non-empty window, ascending. All ops pooled. *)

val drift : probe -> window_ns:float -> float
(** Mean latency of the last non-empty window divided by the first —
    1.0 means no drift. Requires at least one sample. *)
