module M = Mb_machine.Machine
module A = Mb_alloc.Allocator

type op = Malloc | Calloc | Realloc | Free

let op_label = function
  | Malloc -> "malloc"
  | Calloc -> "calloc"
  | Realloc -> "realloc"
  | Free -> "free"

type sample = { s_start : float; s_dur : float; s_op : op }

type probe = {
  mutable samples : sample list; (* newest first *)
  mutable n : int;
  (* Set while timing a derived op (calloc/realloc) as a whole, so the
     malloc/free calls it makes internally are not double-counted. *)
  mutable suppress : bool;
}

let record probe op t0 t1 =
  if not probe.suppress then begin
    probe.samples <- { s_start = t0; s_dur = t1 -. t0; s_op = op } :: probe.samples;
    probe.n <- probe.n + 1
  end

let wrap (inner : A.t) =
  let probe = { samples = []; n = 0; suppress = false } in
  let malloc ctx size =
    let t0 = M.now ctx in
    let user = inner.A.malloc ctx size in
    record probe Malloc t0 (M.now ctx);
    user
  in
  let free ctx addr =
    let t0 = M.now ctx in
    inner.A.free ctx addr;
    record probe Free t0 (M.now ctx)
  in
  (probe, { inner with A.name = inner.A.name ^ "+latency"; malloc; free })

(* Derived ops are timed end to end — the zeroing/copying cost is part
   of what the caller waits for — with the inner malloc/free records
   suppressed for the duration. The suppress flag must be cleared even
   when the allocation faults ([Alloc_failure] escapes to the caller). *)
let timed probe op ctx f =
  let t0 = M.now ctx in
  probe.suppress <- true;
  match f () with
  | user ->
      probe.suppress <- false;
      record probe op t0 (M.now ctx);
      user
  | exception e ->
      probe.suppress <- false;
      raise e

let calloc probe alloc ctx ~count ~size =
  timed probe Calloc ctx (fun () -> A.calloc alloc ctx ~count ~size)

let realloc probe alloc ctx addr new_size =
  timed probe Realloc ctx (fun () -> A.realloc alloc ctx addr new_size)

let samples probe = List.rev_map (fun s -> (s.s_start, s.s_dur)) probe.samples

let samples_by probe op =
  List.rev_map (fun s -> (s.s_start, s.s_dur))
    (List.filter (fun s -> s.s_op = op) probe.samples)

let count probe = probe.n

let count_by probe op =
  List.fold_left (fun acc s -> if s.s_op = op then acc + 1 else acc) 0 probe.samples

let ops = [ Malloc; Calloc; Realloc; Free ]

let windows probe ~window_ns =
  if window_ns <= 0. then invalid_arg "Latency.windows: window_ns <= 0";
  let table = Hashtbl.create 64 in
  List.iter
    (fun s ->
      let w = int_of_float (s.s_start /. window_ns) in
      Hashtbl.replace table w (s.s_dur :: (try Hashtbl.find table w with Not_found -> [])))
    probe.samples;
  Hashtbl.fold (fun w ds acc -> (float_of_int w *. window_ns, Mb_stats.Summary.of_list ds) :: acc) table []
  |> List.sort compare

let drift probe ~window_ns =
  match windows probe ~window_ns with
  | [] -> invalid_arg "Latency.drift: no samples"
  | [ (_, only) ] -> ignore only; 1.0
  | (_, first) :: rest ->
      let _, last = List.nth rest (List.length rest - 1) in
      last.Mb_stats.Summary.mean /. first.Mb_stats.Summary.mean
