module M = Mb_machine.Machine
module A = Mb_alloc.Allocator
module Rng = Mb_prng.Rng
module Coherence = Mb_cache.Coherence
module Fault = Mb_fault.Injector

type params = {
  machine : M.config;
  seed : int;
  threads : int;
  object_size : int;
  writes : int;
  aligned : bool;
  factory : Factory.t;
  paper_writes : int;
  loop_cycles : int;
}

let default =
  { machine = Mb_machine.Configs.quad_xeon;
    seed = 1;
    threads = 2;
    object_size = 40;
    writes = 1_000_000;
    aligned = false;
    factory = Factory.ptmalloc ();
    paper_writes = 100_000_000;
    loop_cycles = 8;
  }

type result = {
  params : params;
  elapsed_s : float;
  scaled_s : float;
  transfers : int;
  shared_lines : int;
  addresses : int list;
  degraded_ops : int;
}

let batch = 1_000

let writer_body params obj ctx =
  let front = obj in
  let back = obj + params.object_size - 1 in
  let remaining = ref params.writes in
  while !remaining > 0 do
    let n = min batch !remaining in
    M.write_mem_repeated ctx front ~count:n;
    M.write_mem_repeated ctx back ~count:n;
    M.work ctx (params.loop_cycles * n);
    remaining := !remaining - n
  done

let run params =
  if params.threads <= 0 then invalid_arg "Bench3.run: threads <= 0";
  if params.object_size <= 0 then invalid_arg "Bench3.run: object_size <= 0";
  let m = M.create ~seed:params.seed params.machine in
  let proc = M.create_proc m ~name:"bench3" () in
  let factory =
    if params.aligned then
      Factory.aligned ~line_size:params.machine.M.cache.Coherence.line_size params.factory
    else params.factory
  in
  let alloc = factory.Factory.create proc in
  let objects = ref [] in
  let workers = ref [] in
  let degraded = ref 0 in
  let main =
    M.spawn proc ~name:"main" (fun ctx ->
        let fault = M.ctx_fault ctx in
        (* Model malloc's run-to-run address nondeterminism: a random
           amount of start-up allocation shifts where the objects land. *)
        let rng = M.ctx_rng ctx in
        let warmups = Rng.int rng 8 in
        for _ = 1 to warmups do
          match alloc.A.malloc ctx (8 + Rng.int rng 248) with
          | (_ : int) -> ()
          | exception Fault.Alloc_failure _ ->
              Fault.note_degraded fault;
              incr degraded
        done;
        (* A thread whose object allocation fails under a fault plan has
           nothing to write: it is skipped (and counted), and the
           sharing analysis below sees only the objects that exist. *)
        let objs =
          List.filter_map
            (fun (_ : int) ->
              match alloc.A.malloc ctx params.object_size with
              | user -> Some user
              | exception Fault.Alloc_failure _ ->
                  Fault.note_degraded fault;
                  incr degraded;
                  None)
            (List.init params.threads Fun.id)
        in
        objects := objs;
        let ws = List.map (fun obj -> M.spawn proc (writer_body params obj)) objs in
        workers := ws;
        List.iter (fun w -> M.join ctx w) ws)
  in
  ignore main;
  M.run m;
  Obs_hook.publish m [ alloc ]
    ~label:
      (Printf.sprintf "bench3 %s t=%d sz=%d aligned=%b seed=%d" factory.Factory.label
         params.threads params.object_size params.aligned params.seed);
  let elapsed_s =
    List.fold_left (fun acc w -> max acc (M.elapsed_ns w /. 1e9)) 0. !workers
  in
  let line_size = params.machine.M.cache.Coherence.line_size in
  let shared_lines =
    (* Lines written by more than one thread, from the object layout. *)
    let table = Hashtbl.create 16 in
    List.iteri
      (fun i obj ->
        List.iter
          (fun addr ->
            let line = addr / line_size in
            let owners = match Hashtbl.find_opt table line with Some s -> s | None -> [] in
            if not (List.mem i owners) then Hashtbl.replace table line (i :: owners))
          [ obj; obj + params.object_size - 1 ])
      !objects;
    Hashtbl.fold (fun _ owners acc -> if List.length owners > 1 then acc + 1 else acc) table 0
  in
  { params;
    elapsed_s;
    scaled_s = elapsed_s *. (float_of_int params.paper_writes /. float_of_int params.writes);
    transfers = Coherence.transfers (M.cache m);
    shared_lines;
    addresses = !objects;
    degraded_ops = !degraded;
  }

let sweep params ~sizes ~runs =
  List.map
    (fun size ->
      let samples =
        List.init runs (fun i ->
            let r = run { params with object_size = size; seed = params.seed + (i * 7919) } in
            r.scaled_s)
      in
      (size, Mb_stats.Summary.of_list samples))
    sizes
