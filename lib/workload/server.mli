(** A network-server-shaped workload, modelled on the paper's iPlanet
    directory server description (section 2): a single multithreaded
    process handling many small requests, keeping per-connection state
    that any worker may later release — so storage is routinely freed by
    a different thread than allocated it, under lock contention.

    Each request: pick a connection; replace its state object (freeing
    whatever some other worker installed); allocate a few short-lived
    work buffers with server-like sizes; compute; release the buffers.

    Used by the examples, the allocator shootout, and the
    latency-over-uptime extension. *)

type params = {
  machine : Mb_machine.Machine.config;
  seed : int;
  threads : int;
  requests_per_thread : int;
  connections : int;
  think_cycles : int;        (** non-allocator work per request *)
  factory : Factory.t;
  probe_latency : bool;      (** wrap the allocator with {!Latency} *)
}

val default : params

type result = {
  params : params;
  elapsed_s : float;              (** makespan of the worker threads *)
  requests_per_second : float;    (** aggregate simulated throughput *)
  per_thread_s : float list;
  foreign_frees : int;
  arenas : int;
  contended_ops : int;
  latency : probe_result option;  (** when [probe_latency] *)
  degraded_ops : int;             (** request allocations skipped or kept
                                      in place after the fault layer's
                                      retries ran out; 0 unless a
                                      [--faults] plan is armed *)
}

and probe_result = {
  malloc_mean_ns : float;
  malloc_p99_ns : float;
  drift : float;                  (** last-window mean / first-window mean *)
  window_means : (float * float) list;  (** (uptime_ns, mean latency ns) *)
}

val run : params -> result
