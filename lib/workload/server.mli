(** A network-server-shaped workload, modelled on the paper's iPlanet
    directory server description (section 2): a single multithreaded
    process handling many small requests, keeping per-connection state
    that any worker may later release — so storage is routinely freed by
    a different thread than allocated it, under lock contention.

    Two drive modes:

    - {b Closed loop} (the original workload, [open_loop = None]): a
      fixed set of worker threads each issue a fixed number of requests
      back to back. Throughput is whatever the allocator allows — the
      offered load politely slows down with the server, so saturation is
      invisible.
    - {b Open loop} ([open_loop = Some _]): an acceptor thread issues
      requests on its own clock from a deterministic {!Arrivals}
      process, regardless of how the server is doing. Requests carry
      mixed classes (read/write/update), connections churn (close and
      reopen with per-connection alloc/free lifecycles), and per-request
      latency — enqueue to completion in simulated ns — feeds
      percentiles and a {!Mb_stats.Histogram}. Push the offered rate
      past capacity and the latency cliff (the paper's Table 2 collapse
      under realistic traffic) appears in p95/p99.

    Used by the examples, the allocator shootout, the latency-over-uptime
    extension, and the server-knee load sweep. *)

type server_model =
  | Thread_pool of { queue_capacity : int }
      (** A fixed pool of [threads] workers pulling from one bounded
          FIFO; a full queue sheds (drops) arrivals. *)
  | Thread_per_connection
      (** One dedicated thread per connection slot; when a connection
          churns, its thread exits and a freshly spawned one takes over,
          so thread create/teardown costs ride the churn rate. *)

type open_loop = {
  process : Arrivals.process;      (** the arrival stream *)
  total_requests : int;            (** arrivals to generate *)
  model : server_model;
  churn_mean_requests : int;       (** mean requests per connection
                                       lifetime; 0 disables churn *)
  read_pct : int;                  (** percent of requests that are reads *)
  write_pct : int;                 (** percent writes; the remainder are
                                       updates (state swaps) *)
}

type params = {
  machine : Mb_machine.Machine.config;
  seed : int;
  threads : int;             (** pool size (ignored by [Thread_per_connection]) *)
  requests_per_thread : int; (** closed loop only *)
  connections : int;
  think_cycles : int;        (** non-allocator work per request *)
  factory : Factory.t;
  probe_latency : bool;      (** wrap the allocator with {!Latency} *)
  open_loop : open_loop option;
}

val default : params

val default_open : open_loop
(** A mid-load Poisson pool configuration to build on with record
    update syntax. *)

val model_label : server_model -> string

type request_stats = {
  completed : int;
  dropped : int;             (** arrivals shed by a full pool queue *)
  churned : int;             (** connection close/reopen cycles *)
  offered_rps : float;       (** generated arrival rate over the stream *)
  throughput_rps : float;    (** completions over the time to last completion *)
  mean_ns : float;
  p50_ns : float;
  p95_ns : float;
  p99_ns : float;
  max_ns : float;
  hist : Mb_stats.Histogram.t;  (** latency distribution, 64 bins over [0, max) *)
  by_class : (string * int) list;  (** completions per request class *)
}
(** Per-request latency (enqueue to completion) and throughput for an
    open-loop run. Percentiles are computed from the exact sample array;
    the histogram carries the shape. *)

type result = {
  params : params;
  elapsed_s : float;              (** makespan: slowest worker (closed) or
                                      last completion (open) *)
  requests_per_second : float;    (** aggregate simulated throughput *)
  per_thread_s : float list;      (** fixed workers only; empty for
                                      [Thread_per_connection] *)
  foreign_frees : int;
  arenas : int;
  contended_ops : int;
  latency : probe_result option;  (** when [probe_latency] and at least
                                      one sample was recorded *)
  degraded_ops : int;             (** request allocations skipped or kept
                                      in place after the fault layer's
                                      retries ran out; 0 unless a
                                      [--faults] plan is armed *)
  requests : request_stats option;  (** when [open_loop] *)
}

and probe_result = {
  malloc_mean_ns : float;         (** malloc-tagged samples only *)
  malloc_p99_ns : float;
  drift : float;                  (** last-window mean / first-window mean,
                                      all ops pooled; windows are 1/8 of
                                      the slowest worker's elapsed time *)
  window_means : (float * float) list;  (** (uptime_ns, mean latency ns) *)
  op_stats : op_stat list;        (** per-op latency, ops with samples only *)
}

and op_stat = {
  op : string;                    (** malloc / calloc / realloc / free *)
  op_count : int;
  op_mean_ns : float;
  op_p99_ns : float;
}

val run : params -> result
