module M = Mb_machine.Machine
module A = Mb_alloc.Allocator
module Rng = Mb_prng.Rng
module Fault = Mb_fault.Injector

type op =
  | Alloc of { slot : int; size : int }
  | Free of { slot : int }

type t = op array

let server_size_dist rng =
  let p = Rng.int rng 100 in
  if p < 70 then 40
  else if p < 90 then 16 + Rng.int rng 113
  else if p < 99 then 128 + Rng.int rng (2048 - 128)
  else 8192

type req_class = Read | Write | Update

let class_label = function Read -> "read" | Write -> "write" | Update -> "update"

(* Writes carry payloads: mostly medium buffers, a tail of full 8 KB
   blocks — the large end of the paper's size observation. *)
let write_size_dist rng =
  let p = Rng.int rng 100 in
  if p < 40 then 128 + Rng.int rng (1024 - 128)
  else if p < 85 then 1024 + Rng.int rng (4096 - 1024)
  else 8192

(* Updates mutate existing per-connection state in place: the 40-byte
   state record size dominates, plus small scratch strings. *)
let update_size_dist rng =
  let p = Rng.int rng 100 in
  if p < 60 then 40
  else if p < 95 then 16 + Rng.int rng 49
  else 256 + Rng.int rng 256

let class_size_dist = function
  | Read -> server_size_dist
  | Write -> write_size_dist
  | Update -> update_size_dist

let generate ~rng ~ops ~slots ?(size_of = server_size_dist) () =
  if ops <= 0 || slots <= 0 then invalid_arg "Trace.generate: bad params";
  let full = Array.make slots false in
  let nfull = ref 0 in
  (* Track an empty and a full slot cheaply by rejection sampling; slot
     counts are small so this stays fast. *)
  let rec find_with state =
    let s = Rng.int rng slots in
    if full.(s) = state then s else find_with state
  in
  Array.init ops (fun _ ->
      let do_alloc =
        if !nfull = 0 then true else if !nfull = slots then false else Rng.bool rng
      in
      if do_alloc then begin
        let slot = find_with false in
        full.(slot) <- true;
        incr nfull;
        Alloc { slot; size = size_of rng }
      end
      else begin
        let slot = find_with true in
        full.(slot) <- false;
        decr nfull;
        Free { slot }
      end)

let validate t ~slots =
  let full = Array.make slots false in
  let bad = ref None in
  Array.iteri
    (fun i op ->
      if !bad = None then
        match op with
        | Alloc { slot; size } ->
            if slot < 0 || slot >= slots then bad := Some (Printf.sprintf "op %d: slot out of range" i)
            else if size <= 0 then bad := Some (Printf.sprintf "op %d: non-positive size" i)
            else if full.(slot) then bad := Some (Printf.sprintf "op %d: double alloc of slot %d" i slot)
            else full.(slot) <- true
        | Free { slot } ->
            if slot < 0 || slot >= slots then bad := Some (Printf.sprintf "op %d: slot out of range" i)
            else if not full.(slot) then bad := Some (Printf.sprintf "op %d: free of empty slot %d" i slot)
            else full.(slot) <- false)
    t;
  match !bad with Some msg -> Error msg | None -> Ok ()

let live_at_end t ~slots =
  let full = Array.make slots false in
  Array.iter
    (function Alloc { slot; _ } -> full.(slot) <- true | Free { slot } -> full.(slot) <- false)
    t;
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 full

let replay alloc ctx t ~slots =
  let fault = M.ctx_fault ctx in
  let degraded = ref 0 in
  let addrs = Array.make slots 0 in
  Array.iter
    (function
      | Alloc { slot; size } -> (
          match alloc.A.malloc ctx size with
          | user ->
              M.touch_range ctx user ~len:size;
              addrs.(slot) <- user
          | exception Fault.Alloc_failure _ ->
              Fault.note_degraded fault;
              incr degraded;
              addrs.(slot) <- 0)
      | Free { slot } ->
          (* The slot's alloc may itself have been skipped under faults. *)
          if addrs.(slot) <> 0 then alloc.A.free ctx addrs.(slot);
          addrs.(slot) <- 0)
    t;
  Array.iteri (fun slot addr -> if addr <> 0 then alloc.A.free ctx addrs.(slot)) addrs;
  !degraded
