module M = Mb_machine.Machine
module A = Mb_alloc.Allocator
module As = Mb_vm.Address_space
module Rng = Mb_prng.Rng
module Fault = Mb_fault.Injector

type params = {
  machine : M.config;
  seed : int;
  threads : int;
  rounds : int;
  objects_per_thread : int;
  replacements_per_round : int;
  size : int;
  factory : Factory.t;
}

let default =
  { machine = Mb_machine.Configs.uni_k6;
    seed = 1;
    threads = 1;
    rounds = 1;
    objects_per_thread = 10_000;
    replacements_per_round = 2_000;
    size = 40;
    factory = Factory.ptmalloc ();
  }

type result = {
  params : params;
  minor_faults : int;
  resident_pages : int;
  mapped_bytes : int;
  sbrk_calls : int;
  mmap_calls : int;
  arenas_created : int;
  foreign_frees : int;
  elapsed_s : float;
  degraded_ops : int;
}

let run params =
  if params.threads <= 0 || params.rounds <= 0 then invalid_arg "Bench2.run: bad params";
  let m = M.create ~seed:params.seed params.machine in
  let proc = M.create_proc m ~name:"bench2" () in
  let alloc = params.factory.Factory.create proc in
  let latch = M.Latch.create m in
  let chains_left = ref params.threads in
  (* Per-chain degradation counters (slot [threads] belongs to the main
     thread's population phase). A slot holding 0 in an address array
     marks an object whose allocation was skipped under faults: frees
     of such slots are skipped too. *)
  let degraded = Array.make (params.threads + 1) 0 in
  (* A worker replaces objects (freeing storage allocated by its
     predecessor thread while the heap is under contention — the paper's
     two conditions for leakage), then hands the array to a fresh thread. *)
  let rec worker chain round arr ctx =
    let rng = M.ctx_rng ctx in
    let fault = M.ctx_fault ctx in
    for _ = 1 to params.replacements_per_round do
      let j = Rng.int rng (Array.length arr) in
      if arr.(j) <> 0 then alloc.A.free ctx arr.(j);
      match alloc.A.malloc ctx params.size with
      | user ->
          M.touch_range ctx user ~len:params.size;
          arr.(j) <- user
      | exception Fault.Alloc_failure _ ->
          Fault.note_degraded fault;
          degraded.(chain) <- degraded.(chain) + 1;
          arr.(j) <- 0
    done;
    if round < params.rounds then
      ignore (M.spawn (M.proc ctx) ~name:(Printf.sprintf "c%d-r%d" chain (round + 1)) (worker chain (round + 1) arr))
    else begin
      decr chains_left;
      if !chains_left = 0 then M.Latch.signal latch ctx
    end
  in
  let main =
    M.spawn proc ~name:"main" (fun ctx ->
        let fault = M.ctx_fault ctx in
        let degraded_alloc size =
          match alloc.A.malloc ctx size with
          | user ->
              M.touch_range ctx user ~len:size;
              user
          | exception Fault.Alloc_failure _ ->
              Fault.note_degraded fault;
              degraded.(params.threads) <- degraded.(params.threads) + 1;
              0
        in
        let arrays =
          Array.init params.threads (fun _ ->
              Array.init params.objects_per_thread (fun _ -> degraded_alloc params.size))
        in
        (* The address arrays themselves live on the heap too. *)
        let array_bytes = params.objects_per_thread * 4 in
        let array_blocks = Array.map (fun _ -> degraded_alloc array_bytes) arrays in
        Array.iteri
          (fun i arr -> ignore (M.spawn proc ~name:(Printf.sprintf "c%d-r1" i) (worker i 1 arr)))
          arrays;
        M.Latch.wait latch ctx;
        Array.iter (fun user -> if user <> 0 then alloc.A.free ctx user) array_blocks)
  in
  M.run m;
  (match alloc.A.validate () with
  | Ok () -> ()
  | Error msg -> failwith (Printf.sprintf "Bench2: heap invariant broken: %s" msg));
  Obs_hook.publish m [ alloc ]
    ~label:
      (Printf.sprintf "bench2 %s t=%d r=%d obj=%d seed=%d" params.factory.Factory.label
         params.threads params.rounds params.objects_per_thread params.seed);
  let vm = M.proc_vm proc in
  { params;
    minor_faults = As.minor_faults vm;
    resident_pages = As.resident_pages vm;
    mapped_bytes = As.mapped_bytes vm;
    sbrk_calls = As.sbrk_calls vm;
    mmap_calls = As.mmap_calls vm;
    arenas_created = alloc.A.stats.Mb_alloc.Astats.arenas_created;
    foreign_frees = alloc.A.stats.Mb_alloc.Astats.foreign_frees;
    elapsed_s = M.elapsed_ns main /. 1e9;
    degraded_ops = Array.fold_left ( + ) 0 degraded;
  }

let paper_predictor ~threads ~rounds =
  14. +. (1.1 *. float_of_int threads *. float_of_int rounds) +. (127.6 *. float_of_int threads)

(* Least squares for y = base + a*(t*r) + b*t with [base] fixed. *)
let fit_predictor samples ~base =
  let s11 = ref 0. and s12 = ref 0. and s22 = ref 0. and sy1 = ref 0. and sy2 = ref 0. in
  List.iter
    (fun (t, r, y) ->
      let x1 = float_of_int (t * r) and x2 = float_of_int t in
      let y = float_of_int y -. base in
      s11 := !s11 +. (x1 *. x1);
      s12 := !s12 +. (x1 *. x2);
      s22 := !s22 +. (x2 *. x2);
      sy1 := !sy1 +. (x1 *. y);
      sy2 := !sy2 +. (x2 *. y))
    samples;
  let det = (!s11 *. !s22) -. (!s12 *. !s12) in
  if det = 0. then invalid_arg "Bench2.fit_predictor: degenerate sample";
  let a = ((!sy1 *. !s22) -. (!sy2 *. !s12)) /. det in
  let b = ((!sy2 *. !s11) -. (!sy1 *. !s12)) /. det in
  (a, b)
