(** Open-loop arrival processes for the server workload.

    A closed-loop driver (fixed threads, next request issued when the
    previous one finishes) can never push an allocator past saturation:
    when the server slows down, the offered load politely slows with it.
    An open-loop process issues requests on its own clock regardless of
    how the server is doing — which is what makes the saturation knee
    (the paper's Table 2 collapse, rediscovered as a latency cliff)
    visible at all.

    Streams are deterministic: the same seeded {!Mb_prng.Rng.t} and
    process produce the same arrival times, so sweeps are reproducible
    and byte-identical across shard/domain counts. *)

type process =
  | Poisson of { rate_rps : float }
      (** Memoryless arrivals at a constant mean rate (requests/s). *)
  | Bursty of { base_rps : float; burst_rps : float; on_s : float; off_s : float }
      (** On/off modulation: [burst_rps] for [on_s] seconds, then
          [base_rps] for [off_s] seconds, repeating. *)
  | Diurnal of { low_rps : float; high_rps : float; period_s : float }
      (** Triangle-wave ramp between [low_rps] and [high_rps] over each
          [period_s]-second cycle — a whole diurnal load curve
          compressed into simulated seconds. *)

type t
(** A generator: a process plus the RNG state and current stream time. *)

val create : rng:Mb_prng.Rng.t -> process -> t
(** Stream time starts at 0 ns. Raises [Invalid_argument] on
    non-positive rates or phase lengths. *)

val next : t -> float
(** Absolute simulated time (ns) of the next arrival; strictly
    increasing. Gaps are exponential at the rate in force when the
    previous arrival happened. *)

val now_ns : t -> float
(** Stream time of the most recent arrival (0 before the first). *)

val mean_rps : process -> float
(** Long-run mean rate: the configured rate for Poisson, the
    duty-cycle-weighted mean for bursty, the midpoint for diurnal. *)

val scale : process -> float -> process
(** All rates multiplied by a positive factor — the load-sweep lever. *)

val to_string : process -> string
(** [poisson:RATE], [bursty:BASE:BURST:ON_S:OFF_S],
    [diurnal:LOW:HIGH:PERIOD_S] — accepted back by {!of_string}. *)

val of_string : string -> process
(** Parses the {!to_string} forms (case-insensitive). Raises
    [Invalid_argument] with a usage hint on anything else. *)
