module M = Mb_machine.Machine
module A = Mb_alloc.Allocator
module As = Mb_vm.Address_space
module Rng = Mb_prng.Rng
module Fault = Mb_fault.Injector

type params = {
  machine : M.config;
  seed : int;
  threads : int;
  rounds : int;
  slots_per_thread : int;
  ops_per_round : int;
  min_size : int;
  max_size : int;
  factory : Factory.t;
}

let default =
  { machine = Mb_machine.Configs.quad_xeon;
    seed = 1;
    threads = 4;
    rounds = 2;
    slots_per_thread = 1_000;
    ops_per_round = 2_000;
    min_size = 10;
    max_size = 500;
    factory = Factory.ptmalloc ();
  }

type result = {
  params : params;
  elapsed_s : float;
  throughput_ops_s : float;
  minor_faults : int;
  mapped_bytes : int;
  live_bytes : int;
  arenas : int;
  foreign_frees : int;
  degraded_ops : int;
}

let run params =
  if params.threads <= 0 || params.rounds <= 0 then invalid_arg "Larson.run: bad params";
  if params.min_size <= 0 || params.max_size < params.min_size then
    invalid_arg "Larson.run: bad size range";
  let m = M.create ~seed:params.seed params.machine in
  let proc = M.create_proc m ~name:"larson" () in
  let alloc = params.factory.Factory.create proc in
  let latch = M.Latch.create m in
  let chains_left = ref params.threads in
  let random_size rng = Rng.int_in rng params.min_size params.max_size in
  (* Per-chain degradation counters; slot [threads] is the main thread's
     pre-population phase. Empty slots are already encoded as 0, so a
     failed replacement just leaves the slot empty. *)
  let degraded = Array.make (params.threads + 1) 0 in
  (* A worker churns random slots with random sizes, then hands its array
     to a successor — Larson's thread-recycling stress. *)
  let rec worker chain round (slots : int array) ctx =
    let rng = M.ctx_rng ctx in
    let fault = M.ctx_fault ctx in
    for _ = 1 to params.ops_per_round do
      let j = Rng.int rng (Array.length slots) in
      if slots.(j) <> 0 then alloc.A.free ctx slots.(j);
      let size = random_size rng in
      match alloc.A.malloc ctx size with
      | user ->
          M.touch_range ctx user ~len:size;
          slots.(j) <- user
      | exception Fault.Alloc_failure _ ->
          Fault.note_degraded fault;
          degraded.(chain) <- degraded.(chain) + 1;
          slots.(j) <- 0
    done;
    if round < params.rounds then
      ignore
        (M.spawn (M.proc ctx)
           ~name:(Printf.sprintf "larson-%d-%d" chain (round + 1))
           (worker chain (round + 1) slots))
    else begin
      decr chains_left;
      if !chains_left = 0 then M.Latch.signal latch ctx
    end
  in
  let arrays = Array.init params.threads (fun _ -> Array.make params.slots_per_thread 0) in
  let main =
    M.spawn proc ~name:"main" (fun ctx ->
        let rng = M.ctx_rng ctx in
        let fault = M.ctx_fault ctx in
        (* Pre-populate every slot, Larson-style. *)
        Array.iter
          (fun slots ->
            Array.iteri
              (fun j _ ->
                let size = random_size rng in
                match alloc.A.malloc ctx size with
                | user ->
                    M.touch_range ctx user ~len:size;
                    slots.(j) <- user
                | exception Fault.Alloc_failure _ ->
                    Fault.note_degraded fault;
                    degraded.(params.threads) <- degraded.(params.threads) + 1)
              slots)
          arrays;
        Array.iteri
          (fun i slots ->
            ignore (M.spawn proc ~name:(Printf.sprintf "larson-%d-1" i) (worker i 1 slots)))
          arrays;
        M.Latch.wait latch ctx;
        (* Drain everything so the heap can be checked empty. *)
        Array.iter
          (fun slots ->
            Array.iteri
              (fun j user ->
                if user <> 0 then begin
                  alloc.A.free ctx user;
                  slots.(j) <- 0
                end)
              slots)
          arrays)
  in
  M.run m;
  (match alloc.A.validate () with
  | Ok () -> ()
  | Error msg -> failwith (Printf.sprintf "Larson: heap invariant broken: %s" msg));
  Obs_hook.publish m [ alloc ]
    ~label:
      (Printf.sprintf "larson %s t=%d r=%d seed=%d" params.factory.Factory.label params.threads
         params.rounds params.seed);
  let vm = M.proc_vm proc in
  let elapsed_s = M.elapsed_ns main /. 1e9 in
  let total_ops = params.threads * params.rounds * params.ops_per_round in
  { params;
    elapsed_s;
    throughput_ops_s = (if elapsed_s > 0. then float_of_int total_ops /. elapsed_s else 0.);
    minor_faults = As.minor_faults vm;
    mapped_bytes = As.mapped_bytes vm;
    live_bytes = alloc.A.stats.Mb_alloc.Astats.live_bytes;
    arenas = alloc.A.stats.Mb_alloc.Astats.arenas_created;
    foreign_frees = alloc.A.stats.Mb_alloc.Astats.foreign_frees;
    degraded_ops = Array.fold_left ( + ) 0 degraded;
  }
