(** Benchmark 1 — multithread scalability (paper section 4.1).

    Each worker performs a balanced [malloc]/[free] loop of one request
    size and times itself. Two deployment modes mirror the paper's
    comparison: [Threads] share one C library (one process, one
    allocator); [Processes] give each worker its own process and
    allocator instance.

    The paper runs 10 million pairs per worker; simulating that many is
    pointless (the loop is steady-state), so [iterations] is typically
    50k and results are reported scaled to [paper_iterations]. *)

type mode = Threads | Processes

type params = {
  machine : Mb_machine.Machine.config;
  seed : int;
  workers : int;
  mode : mode;
  iterations : int;        (** per worker *)
  size : int;              (** request bytes *)
  factory : Factory.t;
  paper_iterations : int;  (** scale reference, 10_000_000 in the paper *)
}

val default : params
(** 2 threads, 512 B, ptmalloc on the dual Pentium Pro, 50k iterations. *)

type result = {
  params : params;
  elapsed_s : float list;        (** per worker, simulated seconds, unscaled *)
  scaled_s : float list;         (** per worker, scaled to [paper_iterations] *)
  ctx_switches : int;
  lock_contended_ops : int;      (** allocator ops that hit a busy lock *)
  arenas : int;                  (** subheaps at the end (threads mode; summed in process mode) *)
  blocks : int;                  (** mutex blocks summed over workers *)
  utilization : float;           (** busy cycles / (cpus * makespan) *)
  degraded_ops : int;            (** mallocs skipped after exhausting the
                                     fault layer's retries; 0 unless a
                                     [--faults] plan is armed *)
}

val run : params -> result

val mean_scaled : result -> float

val max_scaled : result -> float
