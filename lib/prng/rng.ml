(* SplitMix64. Reference: Steele, Lea & Flood, "Fast Splittable
   Pseudorandom Number Generators", OOPSLA 2014. The mix function is the
   finalizer from MurmurHash3 with Stafford's "variant 13" constants.

   The 64-bit state lives in a one-element int64 Bigarray rather than a
   [mutable int64] record field: an int64 record field is a pointer to a
   boxed custom block, so every state step would allocate, while Bigarray
   loads and stores move the raw 64 bits. With the mix inlined into each
   drawing function, all int64 temporaries stay local (the compiler keeps
   them unboxed), and drawing a number allocates nothing. The generated
   streams are bit-identical to the boxed implementation.

   The [(t : t)] parameter annotations below are load-bearing: without a
   syntactically concrete Bigarray type at the access site, the compiler
   emits caml_ba_get/set C calls with boxed int64s instead of inline
   loads and stores. *)

type t = (int64, Bigarray.int64_elt, Bigarray.c_layout) Bigarray.Array1.t

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let make state =
  let a = Bigarray.Array1.create Bigarray.Int64 Bigarray.c_layout 1 in
  Bigarray.Array1.unsafe_set a 0 state;
  a

let create ~seed = make (mix64 (Int64.of_int seed))

(* Advance the state and return the raw mixed output. Kept as the single
   definition of the step so every caller below inlines the same
   arithmetic; do not hoist the mix into a helper that returns int64
   across a call boundary (it would box). *)
let bits64 (t : t) =
  let s = Int64.add (Bigarray.Array1.unsafe_get t 0) golden_gamma in
  Bigarray.Array1.unsafe_set t 0 s;
  let z = Int64.mul (Int64.logxor s (Int64.shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = make (bits64 t)

let positive_bits (t : t) =
  (* 62 random bits, always non-negative as an OCaml int. *)
  let s = Int64.add (Bigarray.Array1.unsafe_get t 0) golden_gamma in
  Bigarray.Array1.unsafe_set t 0 s;
  let z = Int64.mul (Int64.logxor s (Int64.shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int (Int64.shift_right_logical z 2)

let int t bound =
  assert (bound > 0);
  positive_bits t mod bound

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let scale_53 = 1.0 /. 9007199254740992.0 (* 2^53 *)

let float (t : t) bound =
  assert (bound > 0.);
  let s = Int64.add (Bigarray.Array1.unsafe_get t 0) golden_gamma in
  Bigarray.Array1.unsafe_set t 0 s;
  let z = Int64.mul (Int64.logxor s (Int64.shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  let bits = Int64.to_int (Int64.shift_right_logical z 11) in
  float_of_int bits *. scale_53 *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

(* [1.0 -. pct +. float t (2.0 *. pct)] with the draw inlined so the
   only allocation left is boxing the returned float. The float
   arithmetic reproduces [float]'s exact operation order, so the result
   is bit-identical to the composed version. *)
let jitter (t : t) pct =
  if pct <= 0. then 1.0
  else begin
    let s = Int64.add (Bigarray.Array1.unsafe_get t 0) golden_gamma in
    Bigarray.Array1.unsafe_set t 0 s;
    let z = Int64.mul (Int64.logxor s (Int64.shift_right_logical s 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    let z = Int64.logxor z (Int64.shift_right_logical z 31) in
    let bits = Int64.to_int (Int64.shift_right_logical z 11) in
    1.0 -. pct +. (float_of_int bits *. scale_53 *. (2.0 *. pct))
  end

let exponential t ~mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0. then epsilon_float else u in
  -.mean *. log u

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))
