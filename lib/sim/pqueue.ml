(* Array-backed implicit 4-ary min-heap ordered by (time, seq). The
   sequence number makes event order total and deterministic.

   4-ary rather than binary: the tree is half as deep, so a sift touches
   fewer (likely cache-missing) levels, and the four children of node i
   sit in adjacent slots 4i+1..4i+4 — one cache line in the common case.
   Sifts move a hole instead of swapping, halving array writes. *)

type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;  (* heap.(0 .. size-1) is the live heap *)
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

(* Place [entry] by walking the hole at [i] toward the root. *)
let rec sift_up heap i entry =
  if i = 0 then heap.(0) <- entry
  else begin
    let parent = (i - 1) lsr 2 in
    let p = heap.(parent) in
    if lt entry p then begin
      heap.(i) <- p;
      sift_up heap parent entry
    end
    else heap.(i) <- entry
  end

(* Place [entry] by walking the hole at [i] toward the leaves. *)
let sift_down heap size i entry =
  let rec go i =
    let c = (i lsl 2) + 1 in
    if c >= size then heap.(i) <- entry
    else begin
      let last = min (c + 3) (size - 1) in
      let m = ref c in
      for j = c + 1 to last do
        if lt heap.(j) heap.(!m) then m := j
      done;
      let best = heap.(!m) in
      if lt best entry then begin
        heap.(i) <- best;
        go !m
      end
      else heap.(i) <- entry
    end
  in
  go i

let grow t entry =
  let cap = Array.length t.heap in
  if t.size = cap then begin
    let ncap = max 16 (2 * cap) in
    let nheap = Array.make ncap entry in
    Array.blit t.heap 0 nheap 0 t.size;
    t.heap <- nheap
  end

let push t ~time payload =
  let entry = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  grow t entry;
  t.size <- t.size + 1;
  sift_up t.heap (t.size - 1) entry

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then sift_down t.heap t.size 0 t.heap.(t.size);
    Some (top.time, top.payload)
  end

let peek_time t = if t.size = 0 then None else Some t.heap.(0).time

let length t = t.size

let is_empty t = t.size = 0
