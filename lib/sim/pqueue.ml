(* Array-backed implicit 4-ary min-heap ordered by (time, seq). The
   sequence number makes event order total and deterministic.

   4-ary rather than binary: the tree is half as deep, so a sift touches
   fewer (likely cache-missing) levels, and the four children of node i
   sit in adjacent slots 4i+1..4i+4 — one cache line in the common case.
   Sifts move a hole instead of swapping, halving array writes.

   The heap proper is two [int array]s — no pointers, no floats:

   - [keys.(i)] is the event time as an order-preserving integer: the
     IEEE-754 bits of the (non-negative) double with the top bit
     flipped, so plain signed [<] gives unsigned — hence float — order.
     For non-negative doubles the bit pattern is strictly monotone in
     the value, so ordering and equality are preserved exactly.
   - [packed.(i)] is [(seq lsl slot_bits) lor slot]. Sequence numbers
     are unique, so comparing packed values compares sequence numbers,
     and the slot index rides along for free.

   Payloads never move: they sit in the [slots] arena at the index
   carried by [packed], managed by a free-list stack. A sift therefore
   moves raw immediates only — no allocation, no [caml_modify] write
   barrier (the cost that sank the two rejected designs below), and a
   push's only barriered store is parking the payload in its slot.

   Rejected by measurement: an array of entry records (one barriered
   pointer store per sift level, plus the float time boxed inside the
   mixed record — a pointer chase per comparison) and a struct-of-arrays
   float/int/payload layout (payload moves still hit the barrier, and a
   sift drags three arrays through the cache). Sift loops live at top
   level — a local [let rec] would close over the arrays and allocate
   on every push/pop, and these run once per simulated event. *)

(* 2^slot_bits bounds the number of *pending* events (the sequence
   counter above it has 42 bits before an OCaml int overflows — engine
   lifetimes are nowhere near either limit). *)
let slot_bits = 20
let slot_mask = (1 lsl slot_bits) - 1
let max_pending = 1 lsl slot_bits

type 'a t = {
  mutable keys : int array;    (* heap: time keys, slots 0 .. size-1 live *)
  mutable packed : int array;  (* heap: (seq lsl slot_bits) lor slot *)
  mutable slots : 'a array;    (* payload arena, indexed by slot *)
  mutable free : int array;    (* stack of free arena slots *)
  mutable free_top : int;
  mutable size : int;
  mutable next_seq : int;
}

(* Caller-visible cell for passing times across module boundaries
   without boxing a float argument or return: an all-float record field
   is stored unboxed, and writing one allocates nothing. *)
type cell = { mutable cell_time : float }

let make_cell () = { cell_time = 0. }

(* Inverse of the key mapping: undo the flip and clear bit 63 again
   (set by sign extension when the low 62 bits encode a double
   >= 2.0). Inlined at the hot [read_top_time] use — a float-returning
   helper boxes at the call boundary. *)
let time_of_key key =
  Int64.float_of_bits (Int64.logand (Int64.of_int (key lxor min_int)) 0x7FFF_FFFF_FFFF_FFFFL)

(* Initial arena-slot filler. Never compared or returned. *)
let dummy : 'a. unit -> 'a = fun () -> Obj.magic 0

let create () =
  { keys = [||]; packed = [||]; slots = [||]; free = [||]; free_top = 0; size = 0; next_seq = 0 }

(* Place (key, pk) by walking the hole at [i] toward the root. *)
let rec sift_up (keys : int array) (packed : int array) i (key : int) (pk : int) =
  if i = 0 then begin
    Array.unsafe_set keys 0 key;
    Array.unsafe_set packed 0 pk
  end
  else begin
    let parent = (i - 1) lsr 2 in
    let pkey = Array.unsafe_get keys parent in
    if key < pkey || (key = pkey && pk < Array.unsafe_get packed parent) then begin
      Array.unsafe_set keys i pkey;
      Array.unsafe_set packed i (Array.unsafe_get packed parent);
      sift_up keys packed parent key pk
    end
    else begin
      Array.unsafe_set keys i key;
      Array.unsafe_set packed i pk
    end
  end

(* Index of the smallest of the children [c .. last]. *)
let rec min_child (keys : int array) (packed : int array) last m j =
  if j > last then m
  else begin
    let jk = Array.unsafe_get keys j and mk = Array.unsafe_get keys m in
    let m' =
      if jk < mk || (jk = mk && Array.unsafe_get packed j < Array.unsafe_get packed m) then j
      else m
    in
    min_child keys packed last m' (j + 1)
  end

(* Place (key, pk) by walking the hole at [i] toward the leaves. *)
let rec sift_down (keys : int array) (packed : int array) size i (key : int) (pk : int) =
  let c = (i lsl 2) + 1 in
  if c >= size then begin
    Array.unsafe_set keys i key;
    Array.unsafe_set packed i pk
  end
  else begin
    let last = let l = c + 3 in if l < size then l else size - 1 in
    let m = min_child keys packed last c (c + 1) in
    let bkey = Array.unsafe_get keys m in
    if bkey < key || (bkey = key && Array.unsafe_get packed m < pk) then begin
      Array.unsafe_set keys i bkey;
      Array.unsafe_set packed i (Array.unsafe_get packed m);
      sift_down keys packed size m key pk
    end
    else begin
      Array.unsafe_set keys i key;
      Array.unsafe_set packed i pk
    end
  end

let grow t =
  let cap = Array.length t.keys in
  let ncap = if cap = 0 then 16 else 2 * cap in
  if ncap > max_pending then invalid_arg "Pqueue: too many pending events";
  let nkeys = Array.make ncap 0 in
  let npacked = Array.make ncap 0 in
  let nslots = Array.make ncap (dummy ()) in
  let nfree = Array.make ncap 0 in
  Array.blit t.keys 0 nkeys 0 t.size;
  Array.blit t.packed 0 npacked 0 t.size;
  Array.blit t.slots 0 nslots 0 cap;
  (* All live entries sit in arena slots < cap (every slot below cap is
     either live or on the free stack), so the new slots cap .. ncap-1
     plus the surviving free stack form the new free list. *)
  Array.blit t.free 0 nfree 0 t.free_top;
  for s = cap to ncap - 1 do
    nfree.(t.free_top + s - cap) <- s
  done;
  t.keys <- nkeys;
  t.packed <- npacked;
  t.slots <- nslots;
  t.free <- nfree;
  t.free_top <- t.free_top + (ncap - cap)

(* The shared tail of push/push_cell, after the caller computed the
   integer time key. *)
let push_key t key payload =
  if t.size = Array.length t.keys then grow t;
  let ft = t.free_top - 1 in
  t.free_top <- ft;
  let slot = Array.unsafe_get t.free ft in
  Array.unsafe_set t.slots slot payload;
  let pk = (t.next_seq lsl slot_bits) lor slot in
  t.next_seq <- t.next_seq + 1;
  let i = t.size in
  t.size <- i + 1;
  sift_up t.keys t.packed i key pk

let push t ~time payload =
  push_key t (Int64.to_int (Int64.bits_of_float time) lxor min_int) payload

(* Same as {!push} with the time read out of [cell]: a float argument
   to a non-inlined call is boxed by the caller, so the hottest push
   path (one per simulated delay) hands the time over in an all-float
   cell instead, and nothing here allocates. *)
let push_cell t cell payload =
  push_key t (Int64.to_int (Int64.bits_of_float cell.cell_time) lxor min_int) payload

(* Remove the root and return its payload; [read_top_time] first if the
   time is needed. The vacated arena slot is deliberately not cleared:
   the write (and its barrier) costs more than it saves, and it only
   retains the most recently popped payload per slot — bounded by the
   arena capacity, and slots are reused on the next push. *)
let pop_payload t =
  if t.size = 0 then invalid_arg "Pqueue.pop_payload: empty";
  let slot = Array.unsafe_get t.packed 0 land slot_mask in
  let payload = Array.unsafe_get t.slots slot in
  Array.unsafe_set t.free t.free_top slot;
  t.free_top <- t.free_top + 1;
  let n = t.size - 1 in
  t.size <- n;
  if n > 0 then
    sift_down t.keys t.packed n 0 (Array.unsafe_get t.keys n) (Array.unsafe_get t.packed n);
  payload

let read_top_time t cell =
  if t.size = 0 then invalid_arg "Pqueue.read_top_time: empty";
  let key = Array.unsafe_get t.keys 0 in
  cell.cell_time <-
    Int64.float_of_bits (Int64.logand (Int64.of_int (key lxor min_int)) 0x7FFF_FFFF_FFFF_FFFFL)

let pop t =
  if t.size = 0 then None
  else begin
    let time = time_of_key t.keys.(0) in
    Some (time, pop_payload t)
  end

let peek_time t = if t.size = 0 then None else Some (time_of_key t.keys.(0))

let length t = t.size

let is_empty t = t.size = 0
