(** Sharded event queues merged by a deterministic frontier.

    One {!Timing_wheel} per simulated CPU, one *global* sequence
    counter across all of them: the frontier pops by lexicographic
    (time, seq), which is exactly the order a single global queue
    would produce. The shard argument therefore never affects the
    schedule — only locality and the per-shard counters.

    Payload values ride in the low {!vbits} bits of the packed
    tie-break; callers keep [v] below [2^vbits]. *)

type t

val vbits : int
(** Number of low bits of the tie-break reserved for the payload. *)

val create : shards:int -> t
(** [create ~shards] makes an empty frontier over [shards] (>= 1)
    wheels. *)

val shards : t -> int
val length : t -> int
val is_empty : t -> bool

val push : t -> shard:int -> Pqueue.cell -> v:int -> unit
(** [push t ~shard cell ~v] files value [v] at time [cell.cell_time]
    on [shard]. The cell hand-off keeps the hot path free of float
    boxing, as in {!Pqueue.push_cell}. *)

val push_at : t -> shard:int -> time:float -> v:int -> unit
(** [push] with an ordinary float time, for cold call sites. *)

val min_key : t -> int
(** Time key of the global minimum, [max_int] when empty — compared
    directly by the engine's delay fast path. *)

val pop : t -> Pqueue.cell -> int
(** Remove the global minimum: its time is written into the cell (an
    unboxed store) and its payload value returned. Precondition: not
    empty. *)

val min_pk : t -> int
(** Packed tie-break of the global minimum, [max_int] when empty —
    paired with {!min_key} for lexicographic comparison against a
    drained plan head (see {!drain_shard}). *)

val popped_shard : t -> int
(** Shard the most recent {!pop} came from. *)

val drain_shard : t -> shard:int -> horizon_key:int -> emit:(int -> int -> unit) -> int
(** [drain_shard t ~shard ~horizon_key ~emit] retires every event of
    [shard] with [key < horizon_key], in (key, pk) order, calling
    [emit key pk] for each, and returns how many it drained. It touches
    only that shard's wheel: the frontier caches go stale, so after a
    round of drains — which may run for {e different} shards on
    different domains concurrently — the caller must {!resync} before
    the next {!push} or {!pop}. This is the parallel half of the
    conservative window protocol (see [Mb_parallel.Conservative]). *)

val resync : t -> unit
(** Rebuild the per-shard head caches, the cached global minimum and
    the total length from the wheels. Serial: call once per drain
    round, after all {!drain_shard}s of the round have completed. *)

val shard_pushes : t -> int -> int
(** Pushes filed on shard [i] so far. *)

val ring_hits : t -> int
val wheel_hits : t -> int
val heap_spills : t -> int
(** Push-path counters summed over shards (see {!Timing_wheel}). *)

val presort : t -> shard:int -> buckets:int -> unit
(** Presort the next occupied L1 buckets of [shard]'s wheel (see
    {!Timing_wheel.presort_l1}): ordering-invisible, touches only that
    shard's wheel, safe wherever {!drain_shard} is. *)
