(** Open-addressing hash table with native [int] keys.

    A drop-in replacement for [(int, 'a) Hashtbl.t] on simulation hot
    paths. Three properties matter there:

    - no key boxing and no generic hashing: keys are immediates mixed
      with one multiply-and-shift (Fibonacci hashing), so a probe is a
      handful of arithmetic ops and one array load;
    - linear probing in a flat array: a lookup touches consecutive
      slots of one [int array] instead of walking a bucket list;
    - tombstone-free deletion: {!remove} backward-shifts the following
      probe chain, so tables that see heavy add/remove churn (the
      allocator's chunk index) never degrade or need periodic rehash.

    Lookups via {!find_exn} and membership tests allocate nothing;
    {!find_opt} is provided for cold paths that want an option.

    Any key except [min_int] is valid (negative keys included).
    The table is not thread-safe; like the rest of the simulation it is
    confined to the domain that owns the run. *)

type 'a t
(** A mutable table mapping [int] keys to ['a] values. *)

val create : ?initial:int -> unit -> 'a t
(** Fresh empty table. [initial] (default [16]) is a capacity hint;
    the table grows automatically past it. *)

val length : 'a t -> int
(** Number of bindings. *)

val mem : 'a t -> int -> bool
(** [mem t key] is [true] iff [key] is bound. Does not allocate. *)

val find_exn : 'a t -> int -> 'a
(** [find_exn t key] returns the binding of [key]. Does not allocate.
    @raise Not_found if [key] is unbound. *)

val find_opt : 'a t -> int -> 'a option
(** Option-returning lookup (allocates the [Some]); prefer
    {!find_exn} on hot paths. *)

val set : 'a t -> int -> 'a -> unit
(** [set t key v] binds [key] to [v], replacing any previous binding
    (i.e. [Hashtbl.replace] semantics). *)

val remove : 'a t -> int -> unit
(** Remove the binding of [key], if any. The vacated probe chain is
    compacted in place — no tombstones are left behind. *)

val iter : (int -> 'a -> unit) -> 'a t -> unit
(** Apply to every binding, in unspecified order. *)

val fold : (int -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b
(** Fold over every binding, in unspecified order. *)

val clear : 'a t -> unit
(** Drop every binding, keeping the current capacity. *)

val reserve : 'a t -> int -> unit
(** [reserve t extra] grows the table until [extra] additional bindings
    fit under the load-factor ceiling, so the next [extra] inserts pay
    no rehash. Observable behaviour is unchanged (growth never affects
    which keys are bound); use it to move rehash work to a convenient
    moment — e.g. the conservative executor's drain phases, when the
    simulation is quiescent. *)
