(* Open-addressing int-keyed table: linear probing over a flat pair of
   arrays, Fibonacci hashing, backward-shift deletion (no tombstones).

   The value array is a uniform ['a array] created from an immediate
   dummy, so it is never specialized to a flat float array and every
   access stays a safe generic read/write; slots are reset to the dummy
   on removal so the table never keeps dead values alive. *)

let empty_key = min_int

(* 2^63 / phi, forced odd: multiplying by it diffuses low-entropy keys
   (8-byte-aligned addresses, page indexes) across the high bits, which
   is where [slot] takes its bits from. *)
let fib_mult = 0x2545F4914F6CDD1D

type 'a t = {
  mutable keys : int array;    (* empty_key marks a free slot *)
  mutable vals : 'a array;     (* valid only where keys.(i) <> empty_key *)
  mutable size : int;
  mutable shift : int;         (* 63 - log2 capacity *)
}

let dummy : 'a. unit -> 'a = fun () -> Obj.magic 0

let capacity_for hint =
  let rec go cap = if cap >= hint then cap else go (cap * 2) in
  go 8

let log2 cap =
  let rec lg n a = if n <= 1 then a else lg (n / 2) (a + 1) in
  lg cap 0

let create ?(initial = 16) () =
  let cap = capacity_for (max 8 initial) in
  { keys = Array.make cap empty_key;
    vals = Array.make cap (dummy ());
    size = 0;
    shift = 63 - log2 cap;
  }

let length t = t.size

(* Home slot of [key] in the current array. *)
let slot t key = (key * fib_mult) lsr t.shift

(* Probe loops live at top level: a local [let rec] would close over
   the arrays and allocate on every lookup, and lookups are the whole
   point of this module. *)
let rec probe_loop keys mask key i =
  let k = Array.unsafe_get keys i in
  if k = key then i
  else if k = empty_key then -1
  else probe_loop keys mask key ((i + 1) land mask)

(* Find the slot holding [key], or -1. The sentinel itself must miss
   explicitly — probing for it would "find" the first free slot. *)
let index t key =
  if key = empty_key then -1
  else
    let keys = t.keys in
    let mask = Array.length keys - 1 in
    probe_loop keys mask key (slot t key land mask)

let mem t key = index t key >= 0

let find_exn t key =
  let i = index t key in
  if i >= 0 then Array.unsafe_get t.vals i else raise Not_found

let find_opt t key =
  let i = index t key in
  if i >= 0 then Some (Array.unsafe_get t.vals i) else None

let rec free_slot_loop keys mask i =
  if Array.unsafe_get keys i = empty_key then i else free_slot_loop keys mask ((i + 1) land mask)

(* Insert into a table known to have a free slot and no binding for
   [key]. *)
let insert_fresh keys vals shift key v =
  let mask = Array.length keys - 1 in
  let i = free_slot_loop keys mask (((key * fib_mult) lsr shift) land mask) in
  Array.unsafe_set keys i key;
  Array.unsafe_set vals i v

let grow t =
  let cap = Array.length t.keys in
  let ncap = cap * 2 in
  let nshift = t.shift - 1 in
  let nkeys = Array.make ncap empty_key in
  let nvals = Array.make ncap (dummy ()) in
  for i = 0 to cap - 1 do
    let k = Array.unsafe_get t.keys i in
    if k <> empty_key then insert_fresh nkeys nvals nshift k (Array.unsafe_get t.vals i)
  done;
  t.keys <- nkeys;
  t.vals <- nvals;
  t.shift <- nshift

let set t key v =
  if key = empty_key then invalid_arg "Int_table.set: reserved key";
  let i = index t key in
  if i >= 0 then Array.unsafe_set t.vals i v
  else begin
    (* Keep load factor under 3/4 so probe chains stay short. *)
    if 4 * (t.size + 1) > 3 * Array.length t.keys then grow t;
    insert_fresh t.keys t.vals t.shift key v;
    t.size <- t.size + 1
  end

(* Backward-shift: walk the chain after the hole; any entry whose
   home slot lies at or before the hole (in cyclic probe distance)
   moves back into it, leaving no tombstone behind. *)
let rec shift_loop keys vals shift mask hole j =
  let k = Array.unsafe_get keys j in
  if k = empty_key then begin
    Array.unsafe_set keys hole empty_key;
    Array.unsafe_set vals hole (dummy ())
  end
  else begin
    let home = ((k * fib_mult) lsr shift) land mask in
    if (j - home) land mask >= (j - hole) land mask then begin
      Array.unsafe_set keys hole k;
      Array.unsafe_set vals hole (Array.unsafe_get vals j);
      shift_loop keys vals shift mask j ((j + 1) land mask)
    end
    else shift_loop keys vals shift mask hole ((j + 1) land mask)
  end

let remove t key =
  let i = index t key in
  if i >= 0 then begin
    t.size <- t.size - 1;
    let keys = t.keys and vals = t.vals in
    let mask = Array.length keys - 1 in
    shift_loop keys vals t.shift mask i ((i + 1) land mask)
  end

let iter f t =
  let keys = t.keys and vals = t.vals in
  for i = 0 to Array.length keys - 1 do
    let k = Array.unsafe_get keys i in
    if k <> empty_key then f k (Array.unsafe_get vals i)
  done

let fold f t init =
  let keys = t.keys and vals = t.vals in
  let acc = ref init in
  for i = 0 to Array.length keys - 1 do
    let k = Array.unsafe_get keys i in
    if k <> empty_key then acc := f k (Array.unsafe_get vals i) !acc
  done;
  !acc

let clear t =
  Array.fill t.keys 0 (Array.length t.keys) empty_key;
  Array.fill t.vals 0 (Array.length t.vals) (dummy ());
  t.size <- 0

(* Pre-grow so [extra] more bindings fit without tripping [set]'s load
   check: the rehash happens here, on the caller's schedule, instead of
   in the middle of a hot insert burst. Semantically a no-op — growth
   only changes slot layout, never the bindings. *)
let reserve t extra =
  while 4 * (t.size + extra) > 3 * Array.length t.keys do
    grow t
  done
