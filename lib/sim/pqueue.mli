(** Priority queue of timestamped events for the discrete-event engine.

    Orders by time; ties are broken by insertion sequence number so the
    simulation is deterministic regardless of heap internals. *)

type 'a t
(** A mutable queue of ['a] events, each tagged with a time. *)

val create : unit -> 'a t
(** An empty queue. *)

val push : 'a t -> time:float -> 'a -> unit
(** Insert an event at the given simulated time. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event (FIFO among equal times). *)

val peek_time : 'a t -> float option
(** Time of the earliest event without removing it. *)

val length : 'a t -> int
(** Number of events pending. *)

val is_empty : 'a t -> bool
(** [length t = 0], without the count. *)
