(** Priority queue of timestamped events for the discrete-event engine.

    Orders by time; ties are broken by insertion sequence number so the
    simulation is deterministic regardless of heap internals.

    The heap proper holds only integers (times as order-preserving
    int keys, sequence/slot packed into one word) while payloads sit
    in a stationary slot arena: pushes allocate nothing and sifts move
    raw immediates — no write barrier — the cheapest layout measured
    for the engine's event loop. The
    {!read_top_time}/{!pop_payload} pair pops without boxing the time;
    {!pop} and {!peek_time} are option-returning conveniences for tests
    and cold callers. *)

type 'a t
(** A mutable queue of ['a] events, each tagged with a time. *)

type cell = { mutable cell_time : float }
(** A single-float record: all-float records store their fields unboxed,
    so writing one allocates nothing — which is why {!read_top_time}
    writes into a caller-owned cell instead of returning a [float]
    (a cross-module [float] return would box). *)

val make_cell : unit -> cell
(** A fresh cell at time 0. *)

val create : unit -> 'a t
(** An empty queue. *)

val push : 'a t -> time:float -> 'a -> unit
(** Insert an event at the given simulated time. Allocates nothing
    (beyond amortized capacity growth). Times must be non-negative and
    finite (simulated timestamps); at most [2^20] events may be pending
    at once. *)

val push_cell : 'a t -> cell -> 'a -> unit
(** [push t cell payload] with the time taken from [cell.cell_time]:
    unlike a [float] argument (boxed by the caller at a non-inlined
    call), the cell hand-off allocates nothing at all. For the
    per-event hot path; [cell] is not retained. *)

val read_top_time : 'a t -> cell -> unit
(** Store the earliest event's time into [cell] without removing it.
    @raise Invalid_argument if the queue is empty. *)

val pop_payload : 'a t -> 'a
(** Remove the earliest event (FIFO among equal times) and return its
    payload. Does not allocate. The internal arena may keep the popped
    payload reachable until its slot is reused by a later push.
    @raise Invalid_argument if the queue is empty. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event (FIFO among equal times). *)

val peek_time : 'a t -> float option
(** Time of the earliest event without removing it. *)

val length : 'a t -> int
(** Number of events pending. *)

val is_empty : 'a t -> bool
(** [length t = 0], without the count. *)
