(* Hierarchical timing wheel over (key, pk) pairs — one per event shard.
   [key] is the event time as the order-preserving integer used by
   {!Pqueue} (IEEE-754 bits with the sign bit flipped); [pk] carries the
   sequence number in its high bits, so comparing [(key, pk)] pairs
   lexicographically is exactly the engine's (time, seq) total order.

   Layout, nearest first:

   - A sorted circular *ring* holds the earliest items. Pop and peek
     read its head — O(1), two array loads. Most pushes binary-search
     into it (the simulated machines keep only a handful of events
     pending, so the ring usually holds the whole queue and a push
     shifts a couple of words — measured ~4x cheaper than the 4-ary
     heap's sift on the same workload).
   - Two wheel levels catch items beyond the ring's gate: L1 buckets
     [bucket_ns] wide and L2 buckets [bucket_ns * wheel_size] wide,
     each a [wheel_size]-slot array indexed by bucket modulo size,
     with an occupancy bitmap for find-next-nonempty. Slots are
     unsorted append arrays; a bucket is sorted only when it is
     harvested into the ring, so push stays O(1) amortized.
   - A bare 4-ary min-heap takes the far future (beyond L2's span, or
     beyond 2^52 ns where bucket arithmetic would lose precision).

   Cursors [c1]/[c2] are *absolute* bucket indices (never wrapped), so
   a slot can legally hold items from several epochs: harvesting
   filters the slot, keeping later-epoch items in place.

   Ordering invariants (the tests in test_timing_wheel.ml fuzz these):
   - Every item in L1/L2/heap is >= every item in the ring, so popping
     the ring head is globally minimal.
   - The ring is non-empty whenever the structure is ([advance]
     restores this after any push or pop that strands the ring empty).
   - L1 items sit in buckets >= c1; L2/heap items sit in epochs that
     [advance] will cascade before c1 reaches them. *)

(* L1 buckets are 2^10 ns = ~1us wide; 256 of them span ~262us. L2
   buckets are 2^18 ns wide; 256 of them span ~67ms. *)
let w1_bits = 10
let w2_bits = 18
let wheel_size = 256
let wheel_mask = wheel_size - 1

(* Times at or past 2^52 ns go straight to the far heap: above that,
   int_of_float truncation is no longer exact enough to trust bucket
   arithmetic (and infinity has no buckets at all). *)
let far_time = 4503599627370496.  (* 2^52 *)

(* While the wheels are empty the ring absorbs appends up to this many
   items, so small pending sets — the simulator's common regime is a
   handful of events — never pay wheel filing at all. Beyond it,
   appends past the gate overflow into the wheels, bounding the ring's
   shift cost. (Gate-mandated inserts may still grow the ring past the
   target; ordering requires them there.) *)
let ring_target = 64

let key_of_time time = Int64.to_int (Int64.bits_of_float time) lxor min_int

let time_of_key key =
  Int64.float_of_bits (Int64.logand (Int64.of_int (key lxor min_int)) 0x7FFF_FFFF_FFFF_FFFFL)

let far_key = key_of_time far_time

type t = {
  (* Sorted ring of the earliest items; [rhead] is the physical index
     of the logical head, capacity a power of two. *)
  mutable rkeys : int array;
  mutable rpks : int array;
  mutable rhead : int;
  mutable rsize : int;
  (* Pushes with [key < gate] belong in the ring: gate is
     max(horizon key, ring-tail key + 1), where the horizon is the
     time already swept past by c1 (such items' buckets are gone) and
     anything at or before the ring tail must keep sorted order. *)
  mutable gate : int;
  (* L1 wheel: per-slot unsorted (key, pk) append arrays. *)
  l1k : int array array;
  l1p : int array array;
  l1n : int array;
  l1occ : int array;  (* 256-bit occupancy, 8 words of 32 bits *)
  mutable c1 : int;   (* absolute L1 bucket cursor: buckets < c1 are swept *)
  mutable l1_count : int;
  (* L2 wheel, same shape, one level coarser. *)
  l2k : int array array;
  l2p : int array array;
  l2n : int array;
  l2occ : int array;
  mutable c2 : int;   (* absolute L2 epoch cursor *)
  mutable l2_count : int;
  (* Far-future 4-ary min-heap on (key, pk). *)
  mutable hkeys : int array;
  mutable hpks : int array;
  mutable hsize : int;
  mutable size : int;
  (* Push-path counters, reported as sched.shard.* observations. *)
  mutable ring_hits : int;
  mutable wheel_hits : int;
  mutable heap_spills : int;
}

let empty_bucket : int array = [||]

let create () =
  { rkeys = [||];
    rpks = [||];
    rhead = 0;
    rsize = 0;
    gate = min_int;
    l1k = Array.make wheel_size empty_bucket;
    l1p = Array.make wheel_size empty_bucket;
    l1n = Array.make wheel_size 0;
    l1occ = Array.make 8 0;
    c1 = 0;
    l1_count = 0;
    l2k = Array.make wheel_size empty_bucket;
    l2p = Array.make wheel_size empty_bucket;
    l2n = Array.make wheel_size 0;
    l2occ = Array.make 8 0;
    c2 = 0;
    l2_count = 0;
    hkeys = [||];
    hpks = [||];
    hsize = 0;
    size = 0;
    ring_hits = 0;
    wheel_hits = 0;
    heap_spills = 0;
  }

let length t = t.size
let is_empty t = t.size = 0

(* max_int sentinels when empty let the shard merge frontier compare
   heads without an emptiness branch. *)
let peek_key t = if t.rsize = 0 then max_int else Array.unsafe_get t.rkeys t.rhead
let peek_pk t = if t.rsize = 0 then max_int else Array.unsafe_get t.rpks t.rhead

(* --- ring ------------------------------------------------------------ *)

let ring_grow t =
  let cap = Array.length t.rkeys in
  let ncap = if cap = 0 then 16 else 2 * cap in
  let nk = Array.make ncap 0 and np = Array.make ncap 0 in
  let mask = cap - 1 in
  for j = 0 to t.rsize - 1 do
    let src = (t.rhead + j) land mask in
    nk.(j) <- t.rkeys.(src);
    np.(j) <- t.rpks.(src)
  done;
  t.rkeys <- nk;
  t.rpks <- np;
  t.rhead <- 0

(* Sorted insert: binary-search the logical position, then shift
   whichever side is shorter (the ring is circular, so the head can
   move down as cheaply as the tail moves up). Appends — the common
   case for a monotone event stream — shift nothing. *)
let ring_insert t key pk =
  if t.rsize = Array.length t.rkeys then ring_grow t;
  let mask = Array.length t.rkeys - 1 in
  let rkeys = t.rkeys and rpks = t.rpks in
  let head = t.rhead and size = t.rsize in
  (* Find the count of entries strictly below (key, pk). *)
  let lo = ref 0 and hi = ref size in
  while !lo < !hi do
    let mid = (!lo + !hi) lsr 1 in
    let ph = (head + mid) land mask in
    let mk = Array.unsafe_get rkeys ph in
    if mk < key || (mk = key && Array.unsafe_get rpks ph < pk) then lo := mid + 1 else hi := mid
  done;
  let i = !lo in
  if 2 * i >= size then begin
    (* Shift the tail side [i, size) up one slot. *)
    let j = ref (size - 1) in
    while !j >= i do
      let src = (head + !j) land mask in
      let dst = (head + !j + 1) land mask in
      Array.unsafe_set rkeys dst (Array.unsafe_get rkeys src);
      Array.unsafe_set rpks dst (Array.unsafe_get rpks src);
      decr j
    done;
    let ph = (head + i) land mask in
    Array.unsafe_set rkeys ph key;
    Array.unsafe_set rpks ph pk
  end
  else begin
    (* Shift the head side [0, i) down one slot. *)
    let nh = (head - 1) land mask in
    for j = 0 to i - 1 do
      let src = (head + j) land mask in
      let dst = (nh + j) land mask in
      Array.unsafe_set rkeys dst (Array.unsafe_get rkeys src);
      Array.unsafe_set rpks dst (Array.unsafe_get rpks src)
    done;
    let ph = (nh + i) land mask in
    Array.unsafe_set rkeys ph key;
    Array.unsafe_set rpks ph pk;
    t.rhead <- nh
  end;
  t.rsize <- size + 1;
  if i = size && key >= t.gate then t.gate <- key + 1

(* --- occupancy bitmaps ----------------------------------------------- *)

let occ_set occ slot = occ.(slot lsr 5) <- occ.(slot lsr 5) lor (1 lsl (slot land 31))
let occ_clear occ slot = occ.(slot lsr 5) <- occ.(slot lsr 5) land lnot (1 lsl (slot land 31))

let ctz32 v =
  let n = ref 0 and v = ref v in
  if !v land 0xFFFF = 0 then begin n := 16; v := !v lsr 16 end;
  if !v land 0xFF = 0 then begin n := !n + 8; v := !v lsr 8 end;
  if !v land 0xF = 0 then begin n := !n + 4; v := !v lsr 4 end;
  if !v land 0x3 = 0 then begin n := !n + 2; v := !v lsr 2 end;
  if !v land 0x1 = 0 then incr n;
  !n

(* First occupied *absolute* bucket index in the window [c, c + 256),
   or max_int if the wheel is empty. Because slots can hold items from
   later epochs, the result is a lower bound — the caller re-checks
   after filtering. *)
let next_occupied occ c =
  let s0 = c land wheel_mask in
  let rec scan step =
    if step > 8 then max_int
    else begin
      let w = ((s0 lsr 5) + step) land 7 in
      let bits = occ.(w) in
      let bits = if step = 0 then bits land ((-1) lsl (s0 land 31)) else bits in
      if bits <> 0 then begin
        let s = (w lsl 5) lor ctz32 bits in
        c + ((s - s0) land wheel_mask)
      end
      else scan (step + 1)
    end
  in
  scan 0

(* --- far heap (bare 4-ary min-heap on (key, pk)) ---------------------- *)

let rec hsift_up (keys : int array) (pks : int array) i key pk =
  if i = 0 then begin
    Array.unsafe_set keys 0 key;
    Array.unsafe_set pks 0 pk
  end
  else begin
    let parent = (i - 1) lsr 2 in
    let pkey = Array.unsafe_get keys parent in
    if key < pkey || (key = pkey && pk < Array.unsafe_get pks parent) then begin
      Array.unsafe_set keys i pkey;
      Array.unsafe_set pks i (Array.unsafe_get pks parent);
      hsift_up keys pks parent key pk
    end
    else begin
      Array.unsafe_set keys i key;
      Array.unsafe_set pks i pk
    end
  end

let rec hmin_child (keys : int array) (pks : int array) last m j =
  if j > last then m
  else begin
    let jk = Array.unsafe_get keys j and mk = Array.unsafe_get keys m in
    let m' =
      if jk < mk || (jk = mk && Array.unsafe_get pks j < Array.unsafe_get pks m) then j else m
    in
    hmin_child keys pks last m' (j + 1)
  end

let rec hsift_down (keys : int array) (pks : int array) size i key pk =
  let c = (i lsl 2) + 1 in
  if c >= size then begin
    Array.unsafe_set keys i key;
    Array.unsafe_set pks i pk
  end
  else begin
    let last = let l = c + 3 in if l < size then l else size - 1 in
    let m = hmin_child keys pks last c (c + 1) in
    let bkey = Array.unsafe_get keys m in
    if bkey < key || (bkey = key && Array.unsafe_get pks m < pk) then begin
      Array.unsafe_set keys i bkey;
      Array.unsafe_set pks i (Array.unsafe_get pks m);
      hsift_down keys pks size m key pk
    end
    else begin
      Array.unsafe_set keys i key;
      Array.unsafe_set pks i pk
    end
  end

let hpush t key pk =
  if t.hsize = Array.length t.hkeys then begin
    let cap = Array.length t.hkeys in
    let ncap = if cap = 0 then 16 else 2 * cap in
    let nk = Array.make ncap 0 and np = Array.make ncap 0 in
    Array.blit t.hkeys 0 nk 0 t.hsize;
    Array.blit t.hpks 0 np 0 t.hsize;
    t.hkeys <- nk;
    t.hpks <- np
  end;
  let i = t.hsize in
  t.hsize <- i + 1;
  hsift_up t.hkeys t.hpks i key pk

(* Remove the heap root (caller read it already). *)
let hpop t =
  let n = t.hsize - 1 in
  t.hsize <- n;
  if n > 0 then hsift_down t.hkeys t.hpks n 0 t.hkeys.(n) t.hpks.(n)

(* The heap root's L2 epoch; far/infinite times report max_int so the
   cascade loop never tries to give them a bucket. *)
let heap_min_epoch t =
  if t.hsize = 0 then max_int
  else begin
    let key = t.hkeys.(0) in
    if key >= far_key then max_int else int_of_float (time_of_key key) lsr w2_bits
  end

(* --- wheel buckets ---------------------------------------------------- *)

let bucket_append ks ps ns slot key pk =
  let n = ns.(slot) in
  let arr = ks.(slot) in
  let cap = Array.length arr in
  if n = cap then begin
    let ncap = if cap = 0 then 4 else 2 * cap in
    let nk = Array.make ncap 0 and np = Array.make ncap 0 in
    Array.blit arr 0 nk 0 n;
    Array.blit ps.(slot) 0 np 0 n;
    ks.(slot) <- nk;
    ps.(slot) <- np
  end;
  ks.(slot).(n) <- key;
  ps.(slot).(n) <- pk;
  ns.(slot) <- n + 1

(* Route an item that is known not to belong in the ring (key >= gate,
   wheel non-empty) — or a cascaded item being re-filed. [it] is the
   integer time. *)
let file t key pk it =
  let ab1 = it lsr w1_bits in
  if ab1 < t.c1 then
    (* Bucket already swept (only reachable from a cascade): the item
       goes straight to the ring — by the cascade invariant it is
       still >= the ring tail or slots into place correctly. *)
    ring_insert t key pk
  else if ab1 - t.c1 < wheel_size then begin
    let slot = ab1 land wheel_mask in
    bucket_append t.l1k t.l1p t.l1n slot key pk;
    occ_set t.l1occ slot;
    t.l1_count <- t.l1_count + 1
  end
  else begin
    let ab2 = it lsr w2_bits in
    if ab2 - t.c2 < wheel_size then begin
      let slot = ab2 land wheel_mask in
      bucket_append t.l2k t.l2p t.l2n slot key pk;
      occ_set t.l2occ slot;
      t.l2_count <- t.l2_count + 1
    end
    else hpush t key pk
  end

(* Recompute the ring gate from the cursor horizon and the ring tail.
   Called when [advance] moves c1 (the horizon only ever grows there,
   but harvesting may also have rebuilt the ring). *)
let reset_gate t =
  let horizon = key_of_time (float_of_int (t.c1 lsl w1_bits)) in
  let tail =
    if t.rsize = 0 then min_int
    else Array.unsafe_get t.rkeys ((t.rhead + t.rsize - 1) land (Array.length t.rkeys - 1)) + 1
  in
  t.gate <- (if horizon > tail then horizon else tail)

(* Filter one L1 slot: items of bucket [abs] move to the ring, items of
   later epochs stay compacted in place. *)
let harvest_l1 t abs =
  let slot = abs land wheel_mask in
  let ks = t.l1k.(slot) and ps = t.l1p.(slot) in
  let n = t.l1n.(slot) in
  let kept = ref 0 in
  for i = 0 to n - 1 do
    let key = Array.unsafe_get ks i in
    if int_of_float (time_of_key key) lsr w1_bits = abs then
      ring_insert t key (Array.unsafe_get ps i)
    else begin
      Array.unsafe_set ks !kept key;
      Array.unsafe_set ps !kept (Array.unsafe_get ps i);
      incr kept
    end
  done;
  t.l1n.(slot) <- !kept;
  t.l1_count <- t.l1_count - (n - !kept);
  if !kept = 0 then occ_clear t.l1occ slot

(* Cascade L2 epoch [e]: drain matching heap items and filter the L2
   slot, re-filing everything one level down. Cursors move first so
   [file] routes into the fresh L1 window. *)
let cascade t e =
  let nc1 = e lsl (w2_bits - w1_bits) in
  if nc1 > t.c1 then t.c1 <- nc1;
  t.c2 <- e + 1;
  while t.hsize > 0 && heap_min_epoch t = e do
    let key = t.hkeys.(0) and pk = t.hpks.(0) in
    hpop t;
    file t key pk (int_of_float (time_of_key key))
  done;
  let slot = e land wheel_mask in
  let ks = t.l2k.(slot) and ps = t.l2p.(slot) in
  let n = t.l2n.(slot) in
  if n > 0 then begin
    let kept = ref 0 in
    for i = 0 to n - 1 do
      let key = Array.unsafe_get ks i in
      let it = int_of_float (time_of_key key) in
      if it lsr w2_bits = e then file t key (Array.unsafe_get ps i) it
      else begin
        Array.unsafe_set ks !kept key;
        Array.unsafe_set ps !kept (Array.unsafe_get ps i);
        incr kept
      end
    done;
    t.l2n.(slot) <- !kept;
    t.l2_count <- t.l2_count - (n - !kept);
    if !kept = 0 then occ_clear t.l2occ slot
  end

(* Refill the ring from the wheels/heap. Precondition: size > 0.
   Postcondition: rsize > 0 and the gate reflects the new horizon. *)
let rec advance t =
  let abs1 = if t.l1_count = 0 then max_int else next_occupied t.l1occ t.c1 in
  let e2 =
    let l2 = if t.l2_count = 0 then max_int else next_occupied t.l2occ t.c2 in
    let he = heap_min_epoch t in
    if he < l2 then he else l2
  in
  if e2 <> max_int && (abs1 = max_int || e2 <= abs1 lsr (w2_bits - w1_bits)) then begin
    (* The earliest remaining work might live in L2/heap epoch e2:
       cascade it down, then look again. *)
    cascade t e2;
    advance t
  end
  else if abs1 <> max_int then begin
    harvest_l1 t abs1;
    t.c1 <- abs1 + 1;
    if t.rsize = 0 then advance t  (* slot held only later-epoch items *)
    else reset_gate t
  end
  else begin
    (* Only far/infinite items remain: hand the root to the ring. *)
    let key = t.hkeys.(0) and pk = t.hpks.(0) in
    hpop t;
    ring_insert t key pk;
    reset_gate t
  end

(* --- public push/pop -------------------------------------------------- *)

(* Overflow filing for callers that already handled the ring fast path
   themselves (Shard does, with direct field access): key >= gate and
   the wheels/heap hold something. Does not touch [size]. *)
let push_overflow t key pk =
  if key >= far_key then begin
    t.heap_spills <- t.heap_spills + 1;
    hpush t key pk
  end
  else begin
    t.wheel_hits <- t.wheel_hits + 1;
    file t key pk (int_of_float (time_of_key key))
  end

let push t key pk =
  if key < t.gate || (t.rsize = t.size && t.rsize < ring_target) then begin
    (* Below the gate (ordering demands the ring), or the wheels are
       empty and the ring is still small — sorted-insert directly. *)
    t.ring_hits <- t.ring_hits + 1;
    t.size <- t.size + 1;
    ring_insert t key pk
  end
  else begin
    t.size <- t.size + 1;
    push_overflow t key pk;
    if t.rsize = 0 then advance t
  end

(* Remove the ring head. Precondition: size > 0 (so rsize > 0). *)
let pop t =
  t.rhead <- (t.rhead + 1) land (Array.length t.rkeys - 1);
  t.rsize <- t.rsize - 1;
  t.size <- t.size - 1;
  if t.rsize = 0 && t.size > 0 then advance t

let ring_hits t = t.ring_hits
let wheel_hits t = t.wheel_hits
let heap_spills t = t.heap_spills

(* --- drain-phase presorting ------------------------------------------- *)

(* Binary-insertion sort of one bucket's parallel (key, pk) arrays.
   Buckets are small (a handful of items between two harvests), so a
   quadratic-move sort beats allocating a scratch array. *)
let sort_bucket ks ps n =
  for i = 1 to n - 1 do
    let key = Array.unsafe_get ks i and pk = Array.unsafe_get ps i in
    let lo = ref 0 and hi = ref i in
    while !lo < !hi do
      let mid = (!lo + !hi) lsr 1 in
      let mk = Array.unsafe_get ks mid in
      if mk < key || (mk = key && Array.unsafe_get ps mid < pk) then lo := mid + 1 else hi := mid
    done;
    let j = ref i in
    while !j > !lo do
      Array.unsafe_set ks !j (Array.unsafe_get ks (!j - 1));
      Array.unsafe_set ps !j (Array.unsafe_get ps (!j - 1));
      decr j
    done;
    Array.unsafe_set ks !lo key;
    Array.unsafe_set ps !lo pk
  done

(* Sort the next [buckets] occupied L1 slots in place, so the coming
   harvests feed [ring_insert] an ascending stream (appends instead of
   mid-ring shifts). Ordering-invisible: harvesting filters a bucket by
   epoch (order-preserving) and sorted-inserts every kept item, so the
   bucket's internal order never reaches an observable surface — this
   only relocates the sort work, e.g. into a conservative drain phase
   where a crew domain owns the wheel exclusively. *)
let presort_l1 t ~buckets =
  if t.l1_count > 0 then begin
    let c = ref t.c1 and left = ref buckets in
    while !left > 0 && !c < t.c1 + wheel_size do
      let abs = next_occupied t.l1occ !c in
      if abs = max_int || abs >= t.c1 + wheel_size then left := 0
      else begin
        let slot = abs land wheel_mask in
        sort_bucket t.l1k.(slot) t.l1p.(slot) t.l1n.(slot);
        decr left;
        c := abs + 1
      end
    done
  end
