module Obs = Mb_obs.Recorder

type pid = int

(* A pending event. Suspended computations are stored as bare
   continuations rather than [fun () -> continue k ()] closures: the
   hot Delay path then allocates one two-word variant per event instead
   of a closure, and the run loop resumes the continuation directly. *)
type task =
  | Thunk of (unit -> unit)
  | Resume of (unit, unit) Effect.Deep.continuation

type t = {
  clock : Pqueue.cell;  (* all-float cell: advancing the clock never boxes *)
  scratch : Pqueue.cell;  (* resume-time scratch for the Delay hot path *)
  peek : Pqueue.cell;  (* scratch for reading the queue top in delay_pending *)
  queue : task Pqueue.t;
  mutable next_pid : int;
  mutable live : int;
  (* Processes currently suspended, indexed by pid: a flat array beats a
     Hashtbl on the park/resume hot path (no hashing, no bucket walk). *)
  mutable parked : bool array;
  mutable parked_count : int;
  (* Process names, indexed by pid; "" means "never named", and the
     default "proc-<pid>" is materialized only when something actually
     needs the string (a trace lane, an error message) — unobserved runs
     skip the Printf entirely. *)
  mutable names : string array;
  (* Wait-for bookkeeping, indexed by pid and meaningful only while
     parked: what the process is waiting for (free-form, set by the
     layer that parked it) and which pid it waits on (-1 when the
     target is not a process, e.g. a cpu). Feeds the structured
     [Stalled] report; costs one store per park on layers that opt in. *)
  mutable whys : string array;
  mutable waits : int array;
  (* Hand-off slot between [effc] and the preallocated Park handler
     closure (see [start]); holds [no_register] outside a perform. *)
  mutable pending_register : (unit -> unit) -> unit;
  obs : Obs.t;  (* trace sink; Obs.null unless the run is observed *)
}

let no_register : (unit -> unit) -> unit = fun _ -> ()

type waiter = {
  wpid : pid;
  wname : string;
  wwhy : string;
  wwaits_on : pid;
}

type stall = {
  waiters : waiter list;
  cycle : waiter list;
}

exception Stalled of stall

let stall_message st =
  let b = Buffer.create 256 in
  Printf.bprintf b "simulation stalled: %d process(es) parked with no runnable event"
    (List.length st.waiters);
  List.iter
    (fun w ->
      Printf.bprintf b "\n  %s (pid %d): %s" w.wname w.wpid w.wwhy;
      if w.wwaits_on >= 0 then Printf.bprintf b " [waits on pid %d]" w.wwaits_on)
    st.waiters;
  (match st.cycle with
  | [] -> ()
  | first :: _ as c ->
      Printf.bprintf b "\n  deadlock cycle: %s"
        (String.concat " -> " (List.map (fun w -> w.wname) c @ [ first.wname ])));
  Buffer.contents b

let () =
  Printexc.register_printer (function
    | Stalled st -> Some ("Engine.Stalled: " ^ stall_message st)
    | _ -> None)

type _ Effect.t += Delay : float -> unit Effect.t
type _ Effect.t += Park : ((unit -> unit) -> unit) -> unit Effect.t

(* Constant-constructor twin of [Delay]: the duration travels through
   the engine's [scratch] cell instead of the effect value, so a
   perform allocates no effect block and no float box. This is the
   machine layer's hot path — see [delay_cell]/[delay_pending]. *)
type _ Effect.t += Tick : unit Effect.t

let create ?(obs = Obs.null) () =
  { clock = Pqueue.make_cell ();
    scratch = Pqueue.make_cell ();
    peek = Pqueue.make_cell ();
    queue = Pqueue.create ();
    next_pid = 0;
    live = 0;
    parked = Array.make 16 false;
    parked_count = 0;
    names = Array.make 16 "";
    whys = Array.make 16 "";
    waits = Array.make 16 (-1);
    pending_register = no_register;
    obs;
  }

let observer t = t.obs

let now t = t.clock.Pqueue.cell_time

let name_of t pid =
  let n = t.names.(pid) in
  if n = "" then Printf.sprintf "proc-%d" pid else n

let at t time thunk =
  if time < t.clock.Pqueue.cell_time then invalid_arg "Engine.at: time in the past";
  Pqueue.push t.queue ~time (Thunk thunk)

let delay d = Effect.perform (Delay d)

let delay_cell t = t.scratch

(* Immediate-resume fast path: if the delayed process would be the next
   event popped anyway — its wake-up time is strictly earlier than
   everything queued — the suspend/enqueue/pop/resume round trip is pure
   overhead: nothing else runs in between and no per-event observation
   exists, so advancing the clock and returning is observationally
   identical (a tie must go through the queue: the queued event's lower
   sequence number wins FIFO order). Skipping the push leaves sequence
   numbers smaller than they would have been, which is invisible — seqs
   only order events relative to each other and stay monotonic. This
   skips the effect perform and the runtime's continuation capture, by
   far the most expensive parts of a simulated delay. *)
let delay_pending t =
  let clock = t.clock.Pqueue.cell_time in
  let nt = clock +. t.scratch.Pqueue.cell_time in
  let fast =
    if Pqueue.is_empty t.queue then true
    else begin
      Pqueue.read_top_time t.queue t.peek;
      nt < t.peek.Pqueue.cell_time
    end
  in
  if fast then begin
    if nt < clock then invalid_arg "Engine.delay: negative delay";
    t.clock.Pqueue.cell_time <- nt
  end
  else Effect.perform Tick

let park register = Effect.perform (Park register)

let yield () = delay 0.

let set_parked t pid =
  if not t.parked.(pid) then begin
    t.parked_count <- t.parked_count + 1;
    t.parked.(pid) <- true
  end

let clear_parked t pid =
  if t.parked.(pid) then begin
    t.parked.(pid) <- false;
    t.parked_count <- t.parked_count - 1;
    t.whys.(pid) <- "";
    t.waits.(pid) <- -1
  end

let set_wait t pid ~why ~waits_on =
  t.whys.(pid) <- why;
  t.waits.(pid) <- waits_on

(* Run one step of a process body under the engine's effect handler. The
   handler is installed once per process; continuations captured by Delay
   and Park re-enter it automatically (deep handlers).

   Allocation discipline: a simulated thread performs Delay on every
   work item and memory access, so the per-perform cost here is the
   hottest path in the whole simulator. The [effc] callback therefore
   returns closures preallocated once per process ([on_delay]/[on_park]
   below) instead of building a [Some (fun k -> ...)] per perform; the
   effect's payload is handed from [effc] to the closure through the
   engine's unboxed [scratch] cell ([Delay]) or the [pending_register]
   field ([Park]) — both stores, not allocations. A Delay perform thus
   allocates only the effect value itself and the runtime's
   continuation. *)
let start t pid body =
  let open Effect.Deep in
  let finish () =
    t.live <- t.live - 1;
    clear_parked t pid;
    if Obs.tracing t.obs then
      Obs.instant t.obs ~lane:pid ~name:"exit" ~ts_ns:t.clock.Pqueue.cell_time ()
  in
  let on_delay : ((unit, unit) continuation -> unit) option =
    Some
      (fun k ->
        (* scratch already holds clock + d (written by effc below). *)
        if t.scratch.Pqueue.cell_time < t.clock.Pqueue.cell_time then
          discontinue k (Invalid_argument "Engine.delay: negative delay")
        else Pqueue.push_cell t.queue t.scratch (Resume k))
  in
  let on_park : ((unit, unit) continuation -> unit) option =
    Some
      (fun k ->
        let register = t.pending_register in
        t.pending_register <- no_register;
        set_parked t pid;
        if Obs.tracing t.obs then
          Obs.instant t.obs ~lane:pid ~name:"park" ~ts_ns:t.clock.Pqueue.cell_time ();
        let resumed = ref false in
        let resume () =
          if !resumed then
            invalid_arg (Printf.sprintf "Engine: process %s resumed twice" (name_of t pid));
          resumed := true;
          clear_parked t pid;
          if Obs.tracing t.obs then
            Obs.instant t.obs ~lane:pid ~name:"unpark" ~ts_ns:t.clock.Pqueue.cell_time ();
          Pqueue.push_cell t.queue t.clock (Resume k)
        in
        register resume)
  in
  let effc : type a. a Effect.t -> ((a, unit) continuation -> unit) option =
    fun eff ->
     match eff with
     | Tick ->
         (* scratch holds the duration, written by the performer. *)
         t.scratch.Pqueue.cell_time <- t.clock.Pqueue.cell_time +. t.scratch.Pqueue.cell_time;
         on_delay
     | Delay d ->
         t.scratch.Pqueue.cell_time <- t.clock.Pqueue.cell_time +. d;
         on_delay
     | Park register ->
         t.pending_register <- register;
         on_park
     | _ -> None
  in
  match_with
    (fun () ->
      body ();
      finish ())
    ()
    { retc = (fun () -> ());
      exnc =
        (fun e ->
          let bt = Printexc.get_raw_backtrace () in
          finish ();
          Printexc.raise_with_backtrace e bt);
      effc
    }

let spawn t ?name body =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  let cap = Array.length t.parked in
  if pid >= cap then begin
    let ncap = max (pid + 1) (2 * cap) in
    let nparked = Array.make ncap false in
    Array.blit t.parked 0 nparked 0 cap;
    t.parked <- nparked;
    let nnames = Array.make ncap "" in
    Array.blit t.names 0 nnames 0 cap;
    t.names <- nnames;
    let nwhys = Array.make ncap "" in
    Array.blit t.whys 0 nwhys 0 cap;
    t.whys <- nwhys;
    let nwaits = Array.make ncap (-1) in
    Array.blit t.waits 0 nwaits 0 cap;
    t.waits <- nwaits
  end;
  (match name with Some n -> t.names.(pid) <- n | None -> ());
  t.live <- t.live + 1;
  if Obs.tracing t.obs then begin
    Obs.set_lane t.obs pid (name_of t pid);
    Obs.instant t.obs ~lane:pid ~name:"spawn" ~ts_ns:t.clock.Pqueue.cell_time ()
  end;
  Pqueue.push t.queue ~time:t.clock.Pqueue.cell_time (Thunk (fun () -> start t pid body));
  pid

(* Build the structured stall report: every parked process with its
   recorded reason, plus one cycle of the wait-for graph if there is
   one. The graph has out-degree <= 1 (each parked process waits on at
   most one pid), so a stamped walk from each unvisited node finds a
   cycle in linear time: revisiting a node carrying the current walk's
   stamp means the chain bit its own tail. *)
let stall_report t =
  let n = Array.length t.parked in
  let waiter_of pid =
    { wpid = pid;
      wname = name_of t pid;
      wwhy = (let w = t.whys.(pid) in if w = "" then "parked" else w);
      wwaits_on = t.waits.(pid);
    }
  in
  let waiters = ref [] in
  for pid = n - 1 downto 0 do
    if t.parked.(pid) then waiters := waiter_of pid :: !waiters
  done;
  let mark = Array.make n 0 in
  let stamp = ref 0 in
  let cycle = ref [] in
  List.iter
    (fun w ->
      if !cycle = [] && mark.(w.wpid) = 0 then begin
        incr stamp;
        let s = !stamp in
        let rec walk pid =
          if pid >= 0 && pid < n && t.parked.(pid) then begin
            if mark.(pid) = s then begin
              (* [pid] starts the cycle: follow the chain back around. *)
              let rec collect p acc =
                let acc = waiter_of p :: acc in
                let next = t.waits.(p) in
                if next = pid then List.rev acc else collect next acc
              in
              cycle := collect pid []
            end
            else if mark.(pid) = 0 then begin
              mark.(pid) <- s;
              walk t.waits.(pid)
            end
            (* A positive foreign stamp means this chain merges into one
               already explored without finding a cycle: stop. *)
          end
        in
        walk w.wpid
      end)
    !waiters;
  { waiters = !waiters; cycle = !cycle }

let run t =
  let rec loop () =
    if Pqueue.is_empty t.queue then begin
      if t.parked_count > 0 then raise (Stalled (stall_report t))
    end
    else begin
      Pqueue.read_top_time t.queue t.clock;
      (match Pqueue.pop_payload t.queue with
      | Thunk f -> f ()
      | Resume k -> Effect.Deep.continue k ());
      loop ()
    end
  in
  loop ()

let live t = t.live
