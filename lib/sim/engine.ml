module Obs = Mb_obs.Recorder

type pid = int

type t = {
  mutable clock : float;
  queue : (unit -> unit) Pqueue.t;
  mutable next_pid : int;
  mutable live : int;
  (* Processes currently suspended, indexed by pid: a flat array beats a
     Hashtbl on the park/resume hot path (no hashing, no bucket walk).
     Slot [pid] holds the process name while it is parked. *)
  mutable parked : string option array;
  mutable parked_count : int;
  obs : Obs.t;  (* trace sink; Obs.null unless the run is observed *)
}

exception Stalled of string

type _ Effect.t += Delay : float -> unit Effect.t
type _ Effect.t += Park : ((unit -> unit) -> unit) -> unit Effect.t

let create ?(obs = Obs.null) () =
  { clock = 0.;
    queue = Pqueue.create ();
    next_pid = 0;
    live = 0;
    parked = Array.make 16 None;
    parked_count = 0;
    obs;
  }

let observer t = t.obs

let now t = t.clock

let at t time thunk =
  if time < t.clock then invalid_arg "Engine.at: time in the past";
  Pqueue.push t.queue ~time thunk

let delay d = Effect.perform (Delay d)

let park register = Effect.perform (Park register)

let yield () = delay 0.

let set_parked t pid name =
  (match t.parked.(pid) with
  | None -> t.parked_count <- t.parked_count + 1
  | Some _ -> ());
  t.parked.(pid) <- Some name

let clear_parked t pid =
  match t.parked.(pid) with
  | None -> ()
  | Some _ ->
      t.parked.(pid) <- None;
      t.parked_count <- t.parked_count - 1

(* Run one step of a process body under the engine's effect handler. The
   handler is installed once per process; continuations captured by Delay
   and Park re-enter it automatically (deep handlers). *)
let start t pid name body =
  let open Effect.Deep in
  let finish () =
    t.live <- t.live - 1;
    clear_parked t pid;
    Obs.instant t.obs ~lane:pid ~name:"exit" ~ts_ns:t.clock ()
  in
  let handler =
    { effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Delay d ->
              Some
                (fun (k : (a, unit) continuation) ->
                  if d < 0. then
                    discontinue k (Invalid_argument "Engine.delay: negative delay")
                  else at t (t.clock +. d) (fun () -> continue k ()))
          | Park register ->
              Some
                (fun (k : (a, unit) continuation) ->
                  set_parked t pid name;
                  Obs.instant t.obs ~lane:pid ~name:"park" ~ts_ns:t.clock ();
                  let resumed = ref false in
                  let resume () =
                    if !resumed then
                      invalid_arg (Printf.sprintf "Engine: process %s resumed twice" name);
                    resumed := true;
                    clear_parked t pid;
                    Obs.instant t.obs ~lane:pid ~name:"unpark" ~ts_ns:t.clock ();
                    at t t.clock (fun () -> continue k ())
                  in
                  register resume)
          | _ -> None)
    }
  in
  match_with
    (fun () ->
      body ();
      finish ())
    ()
    { retc = (fun () -> ());
      exnc =
        (fun e ->
          let bt = Printexc.get_raw_backtrace () in
          finish ();
          Printexc.raise_with_backtrace e bt);
      effc = handler.effc
    }

let spawn t ?name body =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  let cap = Array.length t.parked in
  if pid >= cap then begin
    let nparked = Array.make (max (pid + 1) (2 * cap)) None in
    Array.blit t.parked 0 nparked 0 cap;
    t.parked <- nparked
  end;
  let name = match name with Some n -> n | None -> Printf.sprintf "proc-%d" pid in
  t.live <- t.live + 1;
  if Obs.tracing t.obs then begin
    Obs.set_lane t.obs pid name;
    Obs.instant t.obs ~lane:pid ~name:"spawn" ~ts_ns:t.clock ()
  end;
  at t t.clock (fun () -> start t pid name body);
  pid

let run t =
  let rec loop () =
    match Pqueue.pop t.queue with
    | Some (time, thunk) ->
        t.clock <- time;
        thunk ();
        loop ()
    | None ->
        if t.parked_count > 0 then begin
          let names =
            Array.fold_left
              (fun acc name -> match name with Some n -> n :: acc | None -> acc)
              [] t.parked
          in
          raise (Stalled (String.concat ", " (List.sort compare names)))
        end
  in
  loop ()

let live t = t.live
