module Obs = Mb_obs.Recorder

type pid = int

(* Pending events live in per-CPU {!Shard} queues merged by a
   deterministic (time, seq) frontier; see shard.ml. The engine stores
   each event's payload — a bare continuation for a suspended process,
   a thunk for [at]/[spawn] — in its own arena and files only a small
   integer with the queue:

       v = (arena slot lsl 1) lor tag      tag 1 = thunk, 0 = continuation

   The [Obj.t] arena replaces the old two-word [Thunk]/[Resume] variant
   around every event: the hot Delay path now allocates nothing beyond
   the runtime's continuation, and its only barriered store is parking
   the payload in its slot. The tag bit keeps the decode honest — it is
   the single source of truth for what each slot holds, and the only
   two writers ([at]/[spawn] vs the Delay/Park handlers) each stamp
   their own kind. *)

(* 2^slot_bits bounds the number of *pending* events. slot_bits + 1
   (the tag) must stay <= Shard.vbits. *)
let slot_bits = 20
let max_slots = 1 lsl slot_bits

type t = {
  clock : Pqueue.cell;  (* all-float cell: advancing the clock never boxes *)
  scratch : Pqueue.cell;  (* resume-time scratch for the Delay hot path *)
  queue : Shard.t;
  (* Shard of the event being executed: pushes without an explicit
     [~shard] inherit it, so a process's delays stay on the CPU shard
     that dispatched it and migrate naturally with the dispatch. *)
  mutable cur_shard : int;
  shard_names : string array;
  mutable cross_wakeups : int;  (* explicit pushes onto a foreign shard *)
  (* Head of the *drained plan* while a conservative window executes
     (see Mb_parallel.Conservative): events the executor has pulled out
     of the shard queues but not yet run. The delay fast path must
     treat them as still queued — [max_int] outside a window, so the
     serial engine pays one predictable compare. *)
  mutable plan_min_key : int;
  mutable plan_min_pk : int;
  (* Domain count a conservative run will use; > 1 makes park/unpark
     trace instants carry the owning domain alongside the shard. *)
  mutable domains : int;
  mutable domain_names : string array;  (* per *shard*: name of its domain *)
  (* Event payload arena + free-list stack (same discipline the old
     Pqueue arena used: popped slots are not cleared — the write costs
     more than the bounded retention it avoids — and are reused by the
     next push). *)
  mutable slots : Obj.t array;
  mutable free : int array;
  mutable free_top : int;
  mutable next_pid : int;
  mutable live : int;
  (* Processes currently suspended, indexed by pid: a flat array beats a
     Hashtbl on the park/resume hot path (no hashing, no bucket walk). *)
  mutable parked : bool array;
  mutable parked_count : int;
  (* Process names, indexed by pid; "" means "never named", and the
     default "proc-<pid>" is materialized only when something actually
     needs the string (a trace lane, an error message) — unobserved runs
     skip the Printf entirely. *)
  mutable names : string array;
  (* Wait-for bookkeeping, indexed by pid and meaningful only while
     parked: what the process is waiting for (free-form, set by the
     layer that parked it) and which pid it waits on (-1 when the
     target is not a process, e.g. a cpu). Feeds the structured
     [Stalled] report; costs one store per park on layers that opt in. *)
  mutable whys : string array;
  mutable waits : int array;
  (* Hand-off slot between [effc] and the preallocated Park handler
     closure (see [start]); holds [no_register] outside a perform. *)
  mutable pending_register : (unit -> unit) -> unit;
  obs : Obs.t;  (* trace sink; Obs.null unless the run is observed *)
}

let no_register : (unit -> unit) -> unit = fun _ -> ()

type waiter = {
  wpid : pid;
  wname : string;
  wwhy : string;
  wwaits_on : pid;
}

type stall = {
  waiters : waiter list;
  cycle : waiter list;
}

exception Stalled of stall

let stall_message st =
  let b = Buffer.create 256 in
  Printf.bprintf b "simulation stalled: %d process(es) parked with no runnable event"
    (List.length st.waiters);
  List.iter
    (fun w ->
      Printf.bprintf b "\n  %s (pid %d): %s" w.wname w.wpid w.wwhy;
      if w.wwaits_on >= 0 then Printf.bprintf b " [waits on pid %d]" w.wwaits_on)
    st.waiters;
  (match st.cycle with
  | [] -> ()
  | first :: _ as c ->
      Printf.bprintf b "\n  deadlock cycle: %s"
        (String.concat " -> " (List.map (fun w -> w.wname) c @ [ first.wname ])));
  Buffer.contents b

let () =
  Printexc.register_printer (function
    | Stalled st -> Some ("Engine.Stalled: " ^ stall_message st)
    | _ -> None)

type _ Effect.t += Delay : float -> unit Effect.t
type _ Effect.t += Park : ((unit -> unit) -> unit) -> unit Effect.t

(* Constant-constructor twin of [Delay]: the duration travels through
   the engine's [scratch] cell instead of the effect value, so a
   perform allocates no effect block and no float box. This is the
   machine layer's hot path — see [delay_cell]/[delay_pending]. *)
type _ Effect.t += Tick : unit Effect.t

(* Constant-constructor twin of [Park] for engine-level pollers: the
   register callback travels through [pending_register] (a store, not
   an effect-block allocation), and the handler does none of Park's
   bookkeeping — no parked flags, no trace instants. The resume it
   hands out re-enters the process with a direct [continue], so it must
   be called exactly once, from an event context (a queued thunk). *)
type _ Effect.t += Suspend : unit Effect.t

let create ?(obs = Obs.null) ?(shards = 1) () =
  { clock = Pqueue.make_cell ();
    scratch = Pqueue.make_cell ();
    queue = Shard.create ~shards;
    cur_shard = 0;
    shard_names = Array.init shards string_of_int;
    cross_wakeups = 0;
    plan_min_key = max_int;
    plan_min_pk = max_int;
    domains = 1;
    domain_names = [||];
    slots = [||];
    free = [||];
    free_top = 0;
    next_pid = 0;
    live = 0;
    parked = Array.make 16 false;
    parked_count = 0;
    names = Array.make 16 "";
    whys = Array.make 16 "";
    waits = Array.make 16 (-1);
    pending_register = no_register;
    obs;
  }

let observer t = t.obs

let now t = t.clock.Pqueue.cell_time

let shards t = Shard.shards t.queue

let name_shard t i name = t.shard_names.(i) <- name

(* Record the domain count of the conservative run that will drive this
   engine: shard [i] belongs to domain [i mod domains], and park/unpark
   trace instants gain a "domain" argument so trace lanes carry domain
   ids. Purely observational — the schedule never depends on it. *)
let set_domains t domains =
  if domains < 1 then invalid_arg "Engine.set_domains: domains < 1";
  t.domains <- domains;
  t.domain_names <-
    (if domains > 1 then
       Array.init (Array.length t.shard_names) (fun i -> string_of_int (i mod domains))
     else [||])

let domains t = t.domains

let shard_args t =
  if t.domains > 1 then
    [ ("shard", t.shard_names.(t.cur_shard));
      ("domain", t.domain_names.(t.cur_shard)) ]
  else [ ("shard", t.shard_names.(t.cur_shard)) ]

let name_of t pid =
  let n = t.names.(pid) in
  if n = "" then Printf.sprintf "proc-%d" pid else n

(* --- event payload arena ---------------------------------------------- *)

let grow_arena t =
  let cap = Array.length t.slots in
  let ncap = if cap = 0 then 16 else 2 * cap in
  if ncap > max_slots then invalid_arg "Engine: too many pending events";
  let nslots = Array.make ncap (Obj.repr 0) in
  Array.blit t.slots 0 nslots 0 cap;
  (* Every slot below cap is live or on the free stack, so the fresh
     slots cap .. ncap-1 extend the surviving free stack. *)
  let nfree = Array.make ncap 0 in
  Array.blit t.free 0 nfree 0 t.free_top;
  for s = cap to ncap - 1 do
    nfree.(t.free_top + s - cap) <- s
  done;
  t.slots <- nslots;
  t.free <- nfree;
  t.free_top <- t.free_top + (ncap - cap)

let alloc_slot t payload =
  if t.free_top = 0 then grow_arena t;
  let ft = t.free_top - 1 in
  t.free_top <- ft;
  let slot = Array.unsafe_get t.free ft in
  Array.unsafe_set t.slots slot payload;
  slot

(* --- scheduling entry points ------------------------------------------ *)

let push_thunk t sh time thunk =
  if time < t.clock.Pqueue.cell_time then invalid_arg "Engine.at: time in the past";
  if sh <> t.cur_shard then t.cross_wakeups <- t.cross_wakeups + 1;
  let slot = alloc_slot t (Obj.repr (thunk : unit -> unit)) in
  Shard.push_at t.queue ~shard:sh ~time ~v:((slot lsl 1) lor 1)

let at t ?shard time thunk =
  let sh = match shard with Some s -> s | None -> t.cur_shard in
  push_thunk t sh time thunk

(* Cancellation is lazy: the event stays queued and checks its armed
   flag when it fires, so cancelling is O(1) and the queue never
   learns about removal. The closure pair costs two small allocations —
   cancellable timers are cold compared to delays. *)
let at_cancel t ?shard time thunk =
  let armed = ref true in
  let sh = match shard with Some s -> s | None -> t.cur_shard in
  push_thunk t sh time (fun () -> if !armed then thunk ());
  fun () -> armed := false

let delay d = Effect.perform (Delay d)

let delay_cell t = t.scratch

(* Immediate-resume fast path: if the delayed process would be the next
   event popped anyway — its wake-up time is strictly earlier than
   everything queued — the suspend/enqueue/pop/resume round trip is pure
   overhead: nothing else runs in between and no per-event observation
   exists, so advancing the clock and returning is observationally
   identical (a tie must go through the queue: the queued event's lower
   sequence number wins FIFO order). Skipping the push leaves sequence
   numbers smaller than they would have been, which is invisible — seqs
   only order events relative to each other and stay monotonic. This
   skips the effect perform and the runtime's continuation capture, by
   far the most expensive parts of a simulated delay.

   The comparison runs on integer time keys: the key image of floats
   is strictly monotone (see Pqueue), [Shard.min_key] is already a
   key, and [max_int] — the empty sentinel — is above every real key,
   so one branchless int compare covers the empty-queue case too. *)
let delay_pending t =
  let clock = t.clock.Pqueue.cell_time in
  let nt = clock +. t.scratch.Pqueue.cell_time in
  let key = Int64.to_int (Int64.bits_of_float nt) lxor min_int in
  if key < Shard.min_key t.queue && key < t.plan_min_key then begin
    if nt < clock then invalid_arg "Engine.delay: negative delay";
    t.clock.Pqueue.cell_time <- nt
  end
  else Effect.perform Tick

let park register = Effect.perform (Park register)

let suspend t register =
  t.pending_register <- register;
  Effect.perform Suspend

(* [at] relative to now, with the duration taken from the scratch cell:
   the caller stores it there (an unboxed float write) so none crosses
   the call boundary boxed. Built for self-re-arming poller thunks (see
   [suspend]); the duration must be non-negative — pollers step time
   forward by construction, so no past check on this path. *)
let after_pending t thunk =
  t.scratch.Pqueue.cell_time <- t.clock.Pqueue.cell_time +. t.scratch.Pqueue.cell_time;
  let slot = alloc_slot t (Obj.repr (thunk : unit -> unit)) in
  Shard.push t.queue ~shard:t.cur_shard t.scratch ~v:((slot lsl 1) lor 1)

let yield () = delay 0.

let set_parked t pid =
  if not t.parked.(pid) then begin
    t.parked_count <- t.parked_count + 1;
    t.parked.(pid) <- true
  end

let clear_parked t pid =
  if t.parked.(pid) then begin
    t.parked.(pid) <- false;
    t.parked_count <- t.parked_count - 1;
    t.whys.(pid) <- "";
    t.waits.(pid) <- -1
  end

let set_wait t pid ~why ~waits_on =
  t.whys.(pid) <- why;
  t.waits.(pid) <- waits_on

(* Run one step of a process body under the engine's effect handler. The
   handler is installed once per process; continuations captured by Delay
   and Park re-enter it automatically (deep handlers).

   Allocation discipline: a simulated thread performs Delay on every
   work item and memory access, so the per-perform cost here is the
   hottest path in the whole simulator. The [effc] callback therefore
   returns closures preallocated once per process ([on_delay]/[on_park]
   below) instead of building a [Some (fun k -> ...)] per perform; the
   effect's payload is handed from [effc] to the closure through the
   engine's unboxed [scratch] cell ([Delay]) or the [pending_register]
   field ([Park]) — both stores, not allocations. A Delay perform thus
   allocates only the effect value itself and the runtime's
   continuation; the continuation is filed in the event arena with no
   wrapper. *)
let start t pid body =
  let open Effect.Deep in
  let finish () =
    t.live <- t.live - 1;
    clear_parked t pid;
    if Obs.tracing t.obs then
      Obs.instant t.obs ~lane:pid ~name:"exit" ~ts_ns:t.clock.Pqueue.cell_time ()
  in
  let on_delay : ((unit, unit) continuation -> unit) option =
    Some
      (fun k ->
        (* scratch already holds clock + d (written by effc below). *)
        if t.scratch.Pqueue.cell_time < t.clock.Pqueue.cell_time then
          discontinue k (Invalid_argument "Engine.delay: negative delay")
        else begin
          let slot = alloc_slot t (Obj.repr k) in
          Shard.push t.queue ~shard:t.cur_shard t.scratch ~v:(slot lsl 1)
        end)
  in
  let on_park : ((unit, unit) continuation -> unit) option =
    Some
      (fun k ->
        let register = t.pending_register in
        t.pending_register <- no_register;
        set_parked t pid;
        if Obs.tracing t.obs then
          Obs.instant t.obs ~lane:pid ~name:"park" ~ts_ns:t.clock.Pqueue.cell_time
            ~args:(shard_args t) ();
        let resumed = ref false in
        let resume () =
          if !resumed then
            invalid_arg (Printf.sprintf "Engine: process %s resumed twice" (name_of t pid));
          resumed := true;
          clear_parked t pid;
          (* The continuation re-queues on the *waker's* shard: a
             cross-CPU wakeup thus lands in the mailbox of the CPU
             that issued it, and the frontier replays the global
             order. *)
          if Obs.tracing t.obs then
            Obs.instant t.obs ~lane:pid ~name:"unpark" ~ts_ns:t.clock.Pqueue.cell_time
              ~args:(shard_args t) ();
          let slot = alloc_slot t (Obj.repr k) in
          Shard.push t.queue ~shard:t.cur_shard t.clock ~v:(slot lsl 1)
        in
        register resume)
  in
  let on_suspend : ((unit, unit) continuation -> unit) option =
    Some
      (fun k ->
        (* Park minus all bookkeeping: the process is only ever gone
           for the lifetime of its own pending poller events, so the
           stall/trace machinery never needs to know. *)
        let register = t.pending_register in
        t.pending_register <- no_register;
        register (fun () -> Effect.Deep.continue k ()))
  in
  let effc : type a. a Effect.t -> ((a, unit) continuation -> unit) option =
    fun eff ->
     match eff with
     | Tick ->
         (* scratch holds the duration, written by the performer. *)
         t.scratch.Pqueue.cell_time <- t.clock.Pqueue.cell_time +. t.scratch.Pqueue.cell_time;
         on_delay
     | Delay d ->
         t.scratch.Pqueue.cell_time <- t.clock.Pqueue.cell_time +. d;
         on_delay
     | Park register ->
         t.pending_register <- register;
         on_park
     | Suspend -> on_suspend
     | _ -> None
  in
  match_with
    (fun () ->
      body ();
      finish ())
    ()
    { retc = (fun () -> ());
      exnc =
        (fun e ->
          let bt = Printexc.get_raw_backtrace () in
          finish ();
          Printexc.raise_with_backtrace e bt);
      effc
    }

let spawn t ?name ?shard body =
  let pid = t.next_pid in
  t.next_pid <- pid + 1;
  let cap = Array.length t.parked in
  if pid >= cap then begin
    let ncap = max (pid + 1) (2 * cap) in
    let nparked = Array.make ncap false in
    Array.blit t.parked 0 nparked 0 cap;
    t.parked <- nparked;
    let nnames = Array.make ncap "" in
    Array.blit t.names 0 nnames 0 cap;
    t.names <- nnames;
    let nwhys = Array.make ncap "" in
    Array.blit t.whys 0 nwhys 0 cap;
    t.whys <- nwhys;
    let nwaits = Array.make ncap (-1) in
    Array.blit t.waits 0 nwaits 0 cap;
    t.waits <- nwaits
  end;
  (match name with Some n -> t.names.(pid) <- n | None -> ());
  t.live <- t.live + 1;
  if Obs.tracing t.obs then begin
    Obs.set_lane t.obs pid (name_of t pid);
    Obs.instant t.obs ~lane:pid ~name:"spawn" ~ts_ns:t.clock.Pqueue.cell_time ()
  end;
  let sh = match shard with Some s -> s | None -> t.cur_shard in
  push_thunk t sh t.clock.Pqueue.cell_time (fun () -> start t pid body);
  pid

(* Build the structured stall report: every parked process with its
   recorded reason, plus one cycle of the wait-for graph if there is
   one. The graph has out-degree <= 1 (each parked process waits on at
   most one pid), so a stamped walk from each unvisited node finds a
   cycle in linear time: revisiting a node carrying the current walk's
   stamp means the chain bit its own tail. *)
let stall_report t =
  let n = Array.length t.parked in
  let waiter_of pid =
    { wpid = pid;
      wname = name_of t pid;
      wwhy = (let w = t.whys.(pid) in if w = "" then "parked" else w);
      wwaits_on = t.waits.(pid);
    }
  in
  let waiters = ref [] in
  for pid = n - 1 downto 0 do
    if t.parked.(pid) then waiters := waiter_of pid :: !waiters
  done;
  let mark = Array.make n 0 in
  let stamp = ref 0 in
  let cycle = ref [] in
  List.iter
    (fun w ->
      if !cycle = [] && mark.(w.wpid) = 0 then begin
        incr stamp;
        let s = !stamp in
        let rec walk pid =
          if pid >= 0 && pid < n && t.parked.(pid) then begin
            if mark.(pid) = s then begin
              (* [pid] starts the cycle: follow the chain back around. *)
              let rec collect p acc =
                let acc = waiter_of p :: acc in
                let next = t.waits.(p) in
                if next = pid then List.rev acc else collect next acc
              in
              cycle := collect pid []
            end
            else if mark.(pid) = 0 then begin
              mark.(pid) <- s;
              walk t.waits.(pid)
            end
            (* A positive foreign stamp means this chain merges into one
               already explored without finding a cycle: stop. *)
          end
        in
        walk w.wpid
      end)
    !waiters;
  { waiters = !waiters; cycle = !cycle }

(* Run one decoded event: the value carries (arena slot, tag); the slot
   returns to the free stack before the payload runs, so the event's
   own pushes can reuse it. *)
let[@inline] exec_event t v =
  let slot = v lsr 1 in
  let payload = Array.unsafe_get t.slots slot in
  Array.unsafe_set t.free t.free_top slot;
  t.free_top <- t.free_top + 1;
  if v land 1 = 0 then
    Effect.Deep.continue (Obj.obj payload : (unit, unit) Effect.Deep.continuation) ()
  else (Obj.obj payload : unit -> unit) ()

(* Pop and run the frontier event. Pop writes the event time straight
   into the clock cell. *)
let step_queue t =
  let v = Shard.pop t.queue t.clock in
  t.cur_shard <- Shard.popped_shard t.queue;
  exec_event t v

let run t =
  let rec loop () =
    if Shard.is_empty t.queue then begin
      if t.parked_count > 0 then raise (Stalled (stall_report t))
    end
    else begin
      step_queue t;
      loop ()
    end
  in
  loop ()

(* --- conservative-window entry points (Mb_parallel.Conservative) ----- *)

let queue t = t.queue

let check_stall t = if t.parked_count > 0 then raise (Stalled (stall_report t))

let set_plan_min t ~key ~pk =
  t.plan_min_key <- key;
  t.plan_min_pk <- pk

let plan_min_key t = t.plan_min_key

(* Run an event the conservative executor drained out of the shard
   queues: restore the clock from its key, restore the shard it was
   filed on (pushes without an explicit shard inherit it, exactly as a
   popped event's would), and decode the payload value from the low
   bits of the packed tie-break. *)
let execute_planned t ~key ~pk ~shard =
  t.clock.Pqueue.cell_time <- Timing_wheel.time_of_key key;
  t.cur_shard <- shard;
  exec_event t (pk land ((1 lsl Shard.vbits) - 1))

let live t = t.live

(* Snapshot scheduler counters into the recorder — called by the layer
   that owns the run (Machine.flush_observations), mirroring its
   discipline: everything here is maintained by the simulation anyway,
   so metering adds no hot-path cost. *)
let flush_observations t =
  if Obs.metering t.obs then begin
    let n = Shard.shards t.queue in
    Obs.set t.obs "sched.shards" n;
    let total = ref 0 in
    for i = 0 to n - 1 do
      let p = Shard.shard_pushes t.queue i in
      total := !total + p;
      Obs.set t.obs (Printf.sprintf "sched.shard.%s.pushes" t.shard_names.(i)) p
    done;
    Obs.set t.obs "sched.shard.pushes" !total;
    Obs.set t.obs "sched.shard.ring_hits" (Shard.ring_hits t.queue);
    Obs.set t.obs "sched.shard.wheel_hits" (Shard.wheel_hits t.queue);
    Obs.set t.obs "sched.shard.heap_spills" (Shard.heap_spills t.queue);
    Obs.set t.obs "sched.shard.cross_wakeups" t.cross_wakeups
  end
