(** Hierarchical timing wheel over [(key, pk)] pairs — the per-shard
    event store behind {!Shard}.

    [key] is a simulated time encoded with {!key_of_time} (an
    order-preserving integer image of the float, as in {!Pqueue});
    [pk] is an opaque tie-break whose integer order must encode the
    engine's sequence order. Pops deliver pairs in exact lexicographic
    [(key, pk)] order — identical to a sorted list, which is what the
    property tests check it against.

    Internally: a sorted ring buffer serves the near future in O(1)
    peek/pop and near-O(1) push; two wheel levels of 256 buckets
    (2^10 ns and 2^18 ns wide) absorb items past the ring's gate with
    O(1) amortized filing; a 4-ary heap takes everything beyond the
    wheels' ~67 ms span or past 2^52 ns. Buckets are only sorted when
    their time window is reached. *)

type t = {
  mutable rkeys : int array;  (** sorted ring: time keys *)
  mutable rpks : int array;   (** sorted ring: tie-breaks *)
  mutable rhead : int;        (** physical index of the ring head *)
  mutable rsize : int;
  mutable gate : int;  (** pushes with [key < gate] belong in the ring *)
  l1k : int array array;
  l1p : int array array;
  l1n : int array;
  l1occ : int array;
  mutable c1 : int;
  mutable l1_count : int;
  l2k : int array array;
  l2p : int array array;
  l2n : int array;
  l2occ : int array;
  mutable c2 : int;
  mutable l2_count : int;
  mutable hkeys : int array;
  mutable hpks : int array;
  mutable hsize : int;
  mutable size : int;
  mutable ring_hits : int;
  mutable wheel_hits : int;
  mutable heap_spills : int;
}
(** The representation is exposed for {!Shard}'s hot path: one push and
    one pop per simulated event cannot afford call boundaries, so the
    shard frontier reads the ring head and retires ring items with
    direct field access, calling into this module only to sort-insert
    ({!ring_insert}), to file past the gate ({!push_overflow}) and to
    refill an empty ring ({!advance}). Everyone else should treat the
    type as abstract and use {!push}/{!peek_key}/{!pop}. *)

val create : unit -> t

val ring_target : int
(** Soft ring-size bound: while the wheels are empty, appends grow the
    ring up to this size before overflowing into the wheel levels. *)

val key_of_time : float -> int
(** Order-preserving integer encoding of a non-negative time. *)

val time_of_key : int -> float
(** Inverse of {!key_of_time}. *)

val push : t -> int -> int -> unit
(** [push t key pk] files one item. *)

val ring_insert : t -> int -> int -> unit
(** Sorted-insert into the ring, growing it if full and bumping the
    gate on a tail append. Hot-path building block: the caller has
    already decided the item belongs in the ring ([key < gate], or the
    wheels and heap are empty) and has accounted for it in [size]. *)

val push_overflow : t -> int -> int -> unit
(** File an item the caller has ruled out of the ring ([key >= gate],
    wheels/heap non-empty) into L1/L2/heap. Does not touch [size];
    after it, callers must {!advance} if the ring is empty. *)

val advance : t -> unit
(** Refill an empty ring from the wheels/heap. Precondition:
    [size > 0]. Postcondition: [rsize > 0]. *)

val peek_key : t -> int
(** Key of the minimum item, or [max_int] when empty — the sentinel
    lets a merge frontier compare shard heads without an emptiness
    branch ([max_int] never encodes a real time: it would be a NaN). *)

val peek_pk : t -> int
(** Tie-break of the minimum item, or [max_int] when empty. *)

val pop : t -> unit
(** Drop the minimum item (read it first via the peeks). Precondition:
    not empty. *)

val length : t -> int
val is_empty : t -> bool

val ring_hits : t -> int
(** Pushes that went straight into the sorted ring (fast path). *)

val wheel_hits : t -> int
(** Pushes filed into an L1/L2 bucket. *)

val heap_spills : t -> int
(** Pushes that fell through to the far-future heap. *)

val presort_l1 : t -> buckets:int -> unit
(** [presort_l1 t ~buckets] sorts the next [buckets] occupied L1 slots
    in place by (key, pk). Harvesting preserves a bucket's internal
    order only among items it keeps and sorted-inserts the rest, so
    presorting cannot change any observable order — it just makes the
    upcoming harvests feed the ring an ascending (append-cheap) stream.
    Intended for the conservative executor's drain phases, where the
    draining domain owns the wheel exclusively. *)
