(** Discrete-event simulation engine.

    Simulated processes are ordinary OCaml functions run as coroutines via
    effect handlers: inside a process, {!delay} advances simulated time and
    {!park} suspends until something calls the supplied resume function.
    The engine is single-threaded and deterministic: events at equal times
    fire in scheduling order.

    Time is in simulated nanoseconds (a [float]); the engine itself attaches
    no meaning to the unit.

    When created with an enabled {!Mb_obs.Recorder.t}, the engine emits
    structured trace events — process spawn/exit and park/unpark — on one
    lane per process (the lane id is the {!pid}). Observation never
    consumes simulated time, so an observed run computes exactly the same
    schedule as an unobserved one. *)

type t
(** An engine instance: a clock plus a pending-event queue. *)

type pid = int
(** Process identifier, unique within an engine. *)

type waiter = {
  wpid : pid;            (** the parked process *)
  wname : string;        (** its display name *)
  wwhy : string;         (** what it waits for (see {!set_wait}); ["parked"]
                             when the parking layer recorded nothing *)
  wwaits_on : pid;       (** the pid it waits on, or [-1] if the target is
                             not a process (a cpu, an external event) *)
}
(** One stuck process in a stall report. *)

type stall = {
  waiters : waiter list;  (** every parked process, in pid order *)
  cycle : waiter list;    (** one cycle of the wait-for graph in following
                              order, or [[]] when the stall is not a
                              deadlock (e.g. a lost wakeup) *)
}
(** Structured diagnosis of a drained-queue-with-parked-processes
    stall. *)

exception Stalled of stall
(** Raised by {!run} when the event queue drains while parked processes
    remain — the simulation's notion of deadlock. A printer is
    registered, so an uncaught [Stalled] displays {!stall_message}. *)

val stall_message : stall -> string
(** Multi-line human-readable rendering of a stall report: a summary
    line, one line per waiter, and the deadlock cycle if one exists. *)

val create : ?obs:Mb_obs.Recorder.t -> ?shards:int -> unit -> t
(** [create ()] makes an idle engine at time 0. [obs] (default
    {!Mb_obs.Recorder.null}) receives the engine's trace events.
    [shards] (default 1) is the number of per-CPU event queues; the
    schedule is *identical* for every shard count (events are merged
    by a global (time, seq) frontier — see {!Shard}), so sharding only
    affects locality and the [sched.shard.*] counters. *)

val observer : t -> Mb_obs.Recorder.t
(** The recorder this engine traces into. *)

val now : t -> float
(** Current simulated time. *)

val shards : t -> int
(** Number of event shards this engine was created with. *)

val name_shard : t -> int -> string -> unit
(** [name_shard t i name] labels shard [i] in counters and trace
    arguments (the machine layer names them ["main"], ["cpu0"], ...).
    Defaults to the decimal index. *)

val set_domains : t -> int -> unit
(** [set_domains t d] records that a conservative run will execute this
    engine's shards across [d] domains (shard [i] belongs to domain
    [i mod d]). Purely observational: when [d > 1], park/unpark trace
    instants carry a ["domain"] argument next to ["shard"], so trace
    lanes show which domain owned the event. The schedule itself never
    depends on [d] — see [Mb_parallel.Conservative] and
    PARALLELISM.md. *)

val domains : t -> int
(** Domain count recorded by {!set_domains} (default 1). *)

val spawn : t -> ?name:string -> ?shard:int -> (unit -> unit) -> pid
(** [spawn t f] registers [f] as a process starting at the current time.
    May be called before {!run} or from within a running process. If [f]
    raises, the exception propagates out of {!run}. [name] labels the
    process in traces and error messages; when omitted, the default
    ["proc-<pid>"] is only materialized if something actually needs it,
    so unobserved runs never pay for the formatting. [shard] files the
    start event on a specific shard (default: the shard of the event
    that is spawning). *)

val at : t -> ?shard:int -> float -> (unit -> unit) -> unit
(** [at t time thunk] schedules a bare callback (not a process: it must not
    perform {!delay} or {!park}) at absolute [time]. [shard] routes the
    event to a specific per-CPU queue (default: the current event's
    shard); an explicit foreign shard counts as a cross-shard wakeup. *)

val at_cancel : t -> ?shard:int -> float -> (unit -> unit) -> (unit -> unit)
(** Like {!at}, but returns a cancel function. Cancellation is lazy:
    the event stays queued and is skipped when it fires, so cancelling
    costs O(1) and never perturbs the schedule of other events. Safe to
    call after the event fired (a no-op), and idempotent. *)

val run : t -> unit
(** Drain the event queue. Returns when no events remain and no process is
    parked. @raise Stalled on deadlock. *)

val live : t -> int
(** Number of spawned processes that have not finished. *)

val delay : float -> unit
(** Advance this process's simulated time. Only valid inside a process
    spawned on some engine; raises [Effect.Unhandled] elsewhere. *)

val delay_cell : t -> Pqueue.cell
(** The engine's delay hand-off cell, for the {!delay_pending} fast
    path. Fetch it once per engine and cache it. *)

val delay_pending : t -> unit
(** Exactly {!delay}, with the duration taken from the engine's
    {!delay_cell} instead of a [float] argument: writing an all-float
    cell field is an unboxed store, so the caller pays no float boxing
    and no effect-payload allocation — this is the simulator's single
    hottest operation. Write the duration, then perform:
    [(delay_cell e).cell_time <- ns; delay_pending e]. When the woken
    process would be the next event anyway (wake-up strictly earlier
    than everything queued), the engine skips the suspend/resume round
    trip entirely and just advances the clock — observationally
    identical, far cheaper. Only valid inside a process spawned on
    engine [e]. *)

val set_wait : t -> pid -> why:string -> waits_on:pid -> unit
(** [set_wait t pid ~why ~waits_on] records what a process is about to
    wait for, so a stall names it in the {!Stalled} report. Call just
    before parking; the record is cleared automatically when the
    process resumes. [waits_on] is the pid the process depends on
    ([-1] when the dependency is not a process) and is what the
    deadlock cycle finder follows. *)

val park : ((unit -> unit) -> unit) -> unit
(** [park register] suspends the calling process and passes its one-shot
    resume function to [register] (called before [park] returns control to
    the engine). Calling the resume function schedules the process to
    continue at the then-current simulated time; calling it twice raises
    [Invalid_argument]. *)

val suspend : t -> ((unit -> unit) -> unit) -> unit
(** Low-overhead {!park} for engine-level pollers: no parked-process
    bookkeeping, no trace instants, and the resume function re-enters
    the process with a direct continue instead of re-queueing it — so
    it must be called {e exactly once}, from a queued-thunk context
    (e.g. a callback scheduled with {!after_pending}), and the caller
    must keep at least one pending event alive until then (the stall
    detector does not know about suspended-but-unparked processes).
    The machine layer's lock spinner is the intended client. *)

val after_pending : t -> (unit -> unit) -> unit
(** {!at} relative to now, with the duration taken from the engine's
    {!delay_cell} — the unboxed hand-off twin of {!at} for hot poller
    re-arms: [(delay_cell e).cell_time <- ns; after_pending e thunk].
    The duration must be non-negative (not checked on this path). The
    event files on the current event's shard. *)

val yield : unit -> unit
(** Re-enter the event queue at the current time: lets other processes
    scheduled for "now" run first. Equivalent to [delay 0.] but conveys
    intent. *)

(** {1 Conservative-window entry points}

    Building blocks for [Mb_parallel.Conservative], which executes the
    shard queues across domains in horizon-bounded windows: worker
    domains {!Shard.drain_shard} their shards in parallel, then the
    coordinating domain executes the merged plan here, one event at a
    time, interleaving any newly pushed event that sorts before the
    remaining plan. Everything below runs on the coordinating domain
    only. *)

val queue : t -> Shard.t
(** The engine's sharded event queue. Exposed for the conservative
    executor; everyone else schedules through {!at}/{!spawn}/{!delay}. *)

val step_queue : t -> unit
(** Pop the frontier event off the shard queues and run it — one
    iteration of {!run}'s loop. Precondition: the queue is not empty. *)

val execute_planned : t -> key:int -> pk:int -> shard:int -> unit
(** [execute_planned t ~key ~pk ~shard] runs one event that
    {!Shard.drain_shard} handed out: restores the clock from [key], the
    current shard to [shard] (the shard the event was filed on), and
    runs the payload decoded from [pk]. Events must be fed back in
    exact global (key, pk) order, interleaved with {!step_queue} for
    any queued event that sorts earlier. *)

val set_plan_min : t -> key:int -> pk:int -> unit
(** Tell the delay fast path the (key, pk) of the earliest
    still-unexecuted planned event, so a delay never skips past it —
    drained events are morally still queued. Reset to
    [(max_int, max_int)] when no plan is outstanding. *)

val plan_min_key : t -> int
(** Current plan head key ([max_int] when no plan is outstanding). *)

val check_stall : t -> unit
(** Raise {!Stalled} if any process is parked — the conservative
    executor's equivalent of {!run}'s drained-queue check. Call when
    the queue and the plan are both exhausted. *)

val flush_observations : t -> unit
(** Snapshot scheduler counters ([sched.shards], [sched.shard.pushes],
    [sched.shard.<name>.pushes], [sched.shard.ring_hits],
    [sched.shard.wheel_hits], [sched.shard.heap_spills],
    [sched.shard.cross_wakeups]) into the recorder. No-op unless
    metering is on; call once at end of run (the machine layer does). *)
