(* Per-CPU event shards with a deterministic merge frontier.

   Each shard is a {!Timing_wheel}. A single *global* sequence counter
   stamps every push, and the frontier picks the next event by
   lexicographic (time key, packed seq) across shard heads — so the pop
   order is exactly the (time, seq) order a single global queue would
   produce, whatever the sharding. Sharding is pure mechanics: it keeps
   each simulated CPU's events in their own small, cache-friendly
   structure, and it is what the per-shard sched counters hang off.

   The head (key, pk) of every shard is cached in flat arrays, and the
   current minimum is cached again in [min_key]/[min_pk]/[min_shard]:
   a push only compares its shard's (possibly new) head against the
   cached minimum, and the engine's delay fast path reads [min_key]
   with no branching at all ([max_int] stands for "empty"). Only a pop
   rescans — over at most a handful of shards. *)

(* Low bits of pk carry the caller's payload value; the global sequence
   number lives above them. 2^vbits bounds the payload, and seq gets
   63 - vbits = 42 bits — engine lifetimes are nowhere near either. *)
let vbits = 21
let v_mask = (1 lsl vbits) - 1

type t = {
  wheels : Timing_wheel.t array;
  heads_key : int array;  (* cached head key per shard, max_int = empty *)
  heads_pk : int array;
  pushes : int array;     (* per-shard push counters, for sched.shard.* *)
  mutable min_shard : int;
  mutable min_key : int;  (* = heads_key.(min_shard) *)
  mutable min_pk : int;
  mutable next_seq : int;
  mutable size : int;
  mutable popped : int;   (* shard the last pop came from *)
}

let create ~shards =
  if shards < 1 then invalid_arg "Shard.create: need at least one shard";
  { wheels = Array.init shards (fun _ -> Timing_wheel.create ());
    heads_key = Array.make shards max_int;
    heads_pk = Array.make shards max_int;
    pushes = Array.make shards 0;
    min_shard = 0;
    min_key = max_int;
    min_pk = max_int;
    next_seq = 0;
    size = 0;
    popped = 0;
  }

let shards t = Array.length t.wheels
let length t = t.size
let is_empty t = t.size = 0
let min_key t = t.min_key
let popped_shard t = t.popped

module Tw = Timing_wheel

(* One push per simulated event: the wheel's record is exposed so the
   ring fast-path test and all bookkeeping are direct field accesses,
   with a single call into {!Timing_wheel} to do the actual insert.
   Head maintenance is *analytic* — the global sequence counter makes
   the fresh pk strictly greater than every pk already queued, so the
   new item is its shard's head iff [key < cached head key], and the
   global minimum iff additionally [key < min_key]; no peeks needed. *)
let push_key t ~shard key v =
  let w = Array.unsafe_get t.wheels shard in
  let pk = (t.next_seq lsl vbits) lor v in
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  Array.unsafe_set t.pushes shard (Array.unsafe_get t.pushes shard + 1);
  w.Tw.size <- w.Tw.size + 1;
  if key < w.Tw.gate
     || (w.Tw.rsize = w.Tw.size - 1 && w.Tw.rsize < Tw.ring_target) then begin
    w.Tw.ring_hits <- w.Tw.ring_hits + 1;
    Tw.ring_insert w key pk
  end
  else begin
    Tw.push_overflow w key pk;
    if w.Tw.rsize = 0 then Tw.advance w
  end;
  if key < Array.unsafe_get t.heads_key shard then begin
    Array.unsafe_set t.heads_key shard key;
    Array.unsafe_set t.heads_pk shard pk;
    if key < t.min_key then begin
      t.min_shard <- shard;
      t.min_key <- key;
      t.min_pk <- pk
    end
  end

(* The key conversion is spelled out here rather than calling
   {!Timing_wheel.key_of_time}: a float crossing a non-inlined call
   boundary is boxed, and this is one push per simulated event (same
   reasoning as Pqueue.push_cell). *)
let push t ~shard (cell : Pqueue.cell) ~v =
  push_key t ~shard (Int64.to_int (Int64.bits_of_float cell.Pqueue.cell_time) lxor min_int) v

let push_at t ~shard ~time ~v =
  push_key t ~shard (Int64.to_int (Int64.bits_of_float time) lxor min_int) v

(* Pop the frontier minimum: write its time into [cell] (unboxed store,
   as in Pqueue.read_top_time) and return the payload value. The losing
   shards' heads are untouched, so only the popped shard refreshes and
   one scan re-establishes the argmin. Precondition: not empty. *)
let pop t (cell : Pqueue.cell) =
  let s = t.min_shard in
  t.popped <- s;
  (* Inlined inverse key conversion (see push): writing the all-float
     cell is an unboxed store, but a float returned from a non-inlined
     helper call would be boxed first. *)
  cell.Pqueue.cell_time <-
    Int64.float_of_bits (Int64.logand (Int64.of_int (t.min_key lxor min_int)) 0x7FFF_FFFF_FFFF_FFFFL);
  let v = t.min_pk land v_mask in
  let w = Array.unsafe_get t.wheels s in
  (* Inlined ring pop: the head of a non-empty wheel always sits in
     the ring ([advance] restores that invariant whenever the ring
     drains), so retiring it and reading the next head are plain
     field/array accesses. *)
  let rsize = w.Tw.rsize - 1 in
  w.Tw.rhead <- (w.Tw.rhead + 1) land (Array.length w.Tw.rkeys - 1);
  w.Tw.rsize <- rsize;
  w.Tw.size <- w.Tw.size - 1;
  t.size <- t.size - 1;
  if rsize = 0 && w.Tw.size > 0 then Tw.advance w;
  if w.Tw.rsize = 0 then begin
    Array.unsafe_set t.heads_key s max_int;
    Array.unsafe_set t.heads_pk s max_int
  end
  else begin
    let h = w.Tw.rhead in
    Array.unsafe_set t.heads_key s (Array.unsafe_get w.Tw.rkeys h);
    Array.unsafe_set t.heads_pk s (Array.unsafe_get w.Tw.rpks h)
  end;
  let n = Array.length t.wheels in
  let mk = ref (Array.unsafe_get t.heads_key 0) in
  let mp = ref (Array.unsafe_get t.heads_pk 0) in
  let ms = ref 0 in
  for i = 1 to n - 1 do
    let k = Array.unsafe_get t.heads_key i in
    if k < !mk || (k = !mk && Array.unsafe_get t.heads_pk i < !mp) then begin
      mk := k;
      mp := Array.unsafe_get t.heads_pk i;
      ms := i
    end
  done;
  t.min_shard <- !ms;
  t.min_key <- !mk;
  t.min_pk <- !mp;
  v

let min_pk t = t.min_pk

(* --- conservative-window primitives (see Mb_parallel.Conservative) ----

   [drain_shard] and [resync] split a pop into a parallel phase and a
   serial phase: drain retires one shard's events below a horizon key
   while touching *only* that shard's wheel — the shared frontier caches
   ([heads_*], [min_*], [size]) go stale — and resync rebuilds those
   caches from the wheels afterwards. One domain per shard may drain
   concurrently (disjoint wheels, disjoint state); resync must run
   alone, after every drain of the phase has completed, and before any
   push or pop. *)

(* Pop events with [key < horizon_key] off shard [shard] in (key, pk)
   order, feeding each to [emit]. Replicates [pop]'s ring mechanics —
   the head of a non-empty wheel always sits in the ring — but leaves
   the frontier caches untouched, so it is safe to run for different
   shards on different domains at once. Returns the number drained. *)
let drain_shard t ~shard ~horizon_key ~emit =
  let w = Array.unsafe_get t.wheels shard in
  let n = ref 0 in
  let continue_ = ref true in
  while !continue_ && w.Tw.size > 0 do
    let h = w.Tw.rhead in
    let k = Array.unsafe_get w.Tw.rkeys h in
    if k >= horizon_key then continue_ := false
    else begin
      emit k (Array.unsafe_get w.Tw.rpks h);
      incr n;
      let rsize = w.Tw.rsize - 1 in
      w.Tw.rhead <- (h + 1) land (Array.length w.Tw.rkeys - 1);
      w.Tw.rsize <- rsize;
      w.Tw.size <- w.Tw.size - 1;
      if rsize = 0 && w.Tw.size > 0 then Tw.advance w
    end
  done;
  !n

(* Rebuild the head caches, the cached global minimum and the total
   size from the wheels, after a round of [drain_shard]s. *)
let resync t =
  let n = Array.length t.wheels in
  let size = ref 0 in
  for s = 0 to n - 1 do
    let w = Array.unsafe_get t.wheels s in
    size := !size + w.Tw.size;
    if w.Tw.rsize = 0 then begin
      (* drain maintains the ring invariant, so an empty ring here means
         an empty wheel *)
      Array.unsafe_set t.heads_key s max_int;
      Array.unsafe_set t.heads_pk s max_int
    end
    else begin
      let h = w.Tw.rhead in
      Array.unsafe_set t.heads_key s (Array.unsafe_get w.Tw.rkeys h);
      Array.unsafe_set t.heads_pk s (Array.unsafe_get w.Tw.rpks h)
    end
  done;
  t.size <- !size;
  let mk = ref (Array.unsafe_get t.heads_key 0) in
  let mp = ref (Array.unsafe_get t.heads_pk 0) in
  let ms = ref 0 in
  for i = 1 to n - 1 do
    let k = Array.unsafe_get t.heads_key i in
    if k < !mk || (k = !mk && Array.unsafe_get t.heads_pk i < !mp) then begin
      mk := k;
      mp := Array.unsafe_get t.heads_pk i;
      ms := i
    end
  done;
  t.min_shard <- !ms;
  t.min_key <- !mk;
  t.min_pk <- !mp

let shard_pushes t i = t.pushes.(i)
let ring_hits t = Array.fold_left (fun a w -> a + Timing_wheel.ring_hits w) 0 t.wheels
let wheel_hits t = Array.fold_left (fun a w -> a + Timing_wheel.wheel_hits w) 0 t.wheels
let heap_spills t = Array.fold_left (fun a w -> a + Timing_wheel.heap_spills w) 0 t.wheels

(* Drain-phase helper: presort the upcoming L1 buckets of one shard's
   wheel (see Timing_wheel.presort_l1). Touches only that wheel, like
   drain_shard, so it may run on the draining domain. *)
let presort t ~shard ~buckets = Timing_wheel.presort_l1 t.wheels.(shard) ~buckets
