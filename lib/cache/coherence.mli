(** Line-granularity cache-coherence cost model (simplified MESI).

    Tracks, for every cache line ever accessed, whether it is unowned,
    shared read-only among a set of CPUs, or modified (dirty) in exactly
    one CPU's cache. Each access returns its cost in CPU cycles; the
    machine layer charges that to the accessing thread.

    This is what makes false sharing (the paper's benchmark 3) and "cache
    sloshing" of allocator variables (Table 4) cost simulated time: a
    write to a line that is dirty in another CPU's cache pays
    [transfer_cycles] — the line "ping-pongs".

    Capacity and associativity are not modeled: the benchmarks' working
    sets are tiny, so coherence misses dominate, exactly as in the paper. *)

type t

type config = {
  line_size : int;          (** bytes per cache line (32 on the paper's CPUs) *)
  hit_cycles : int;         (** access to a line already owned appropriately *)
  miss_cycles : int;        (** fill from memory *)
  transfer_cycles : int;    (** line dirty in another CPU's cache: cache-to-cache transfer / RFO *)
  upgrade_cycles : int;     (** write to a line held shared: invalidate other copies *)
  ping_pong_burst : int;    (** stores a CPU retires per ownership interval when two CPUs
                                write one line in tight loops; only {!write_repeated} uses
                                it — store buffering makes sustained ping-pong cheaper than
                                one transfer per store. >= 1. *)
}

val default_config : config
(** Costs loosely modeled on late-1990s SMP x86. *)

val create : config -> cpus:int -> t

val config : t -> config

val line_of : t -> int -> int
(** [line_of t addr] is the cache-line index containing [addr]. *)

val read : t -> cpu:int -> int -> int
(** [read t ~cpu addr] performs a load and returns its cost in cycles. *)

val write : t -> cpu:int -> int -> int
(** [write t ~cpu addr] performs a store and returns its cost in cycles. *)

val write_repeated : t -> cpu:int -> int -> count:int -> int
(** [write_repeated t ~cpu addr ~count] models [count] stores to the same
    address issued by a tight loop, assuming any {e other} CPU that has
    the line dirty keeps writing it concurrently (the benchmark-3
    situation). If the line is dirty elsewhere at batch start, every
    store pays [transfer_cycles] (sustained ping-pong); otherwise the
    first store pays the usual cost and the rest are hits. Returns total
    cycles. *)

val flush_line : t -> int -> unit
(** Drop a line from all caches (e.g. when its page is unmapped). The
    argument is an address, not a line index. *)

(** {1 Statistics} *)

val hits : t -> int
(** Accesses served by a line already held in the right state. *)

val misses : t -> int
(** Fills from memory (cold or not-present lines). *)

val transfers : t -> int
(** Number of dirty cache-to-cache transfers (each is one "ping-pong"). *)

val upgrades : t -> int
(** Writes to shared lines that had to invalidate other CPUs' copies. *)

val invalidations : t -> int
(** Total cache-line invalidations suffered by remote CPUs:
    [transfers + upgrades]. This is the coherence-traffic figure the
    observability layer reports per run — benchmark 3's ping-pong and
    Table 4's allocator-descriptor sloshing both show up here. *)
