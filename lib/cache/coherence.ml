type config = {
  line_size : int;
  hit_cycles : int;
  miss_cycles : int;
  transfer_cycles : int;
  upgrade_cycles : int;
  ping_pong_burst : int;
}

let default_config =
  { line_size = 32;
    hit_cycles = 1;
    miss_cycles = 30;
    transfer_cycles = 40;
    upgrade_cycles = 12;
    ping_pong_burst = 4;
  }

module Int_table = Mb_sim.Int_table

(* A line's state is packed into one immediate [int] so that the table
   holds no heap blocks and a state transition allocates nothing (a
   [Shared of set] / [Modified of cpu] variant would allocate on every
   transition — there are thousands per benchmark run):

     bit 0 = 0:  shared; bits 1.. are a bitmask of the CPUs holding a
                 clean copy (CPU i -> bit i+1)
     bit 0 = 1:  modified; bits 1.. are the owning CPU's index

   The bitmask caps the model at [Sys.int_size - 1] CPUs — far beyond
   the paper's 4-way Xeon; [create] enforces it. *)
let shared_of_mask mask = mask lsl 1

let modified_of_cpu cpu = (cpu lsl 1) lor 1

let is_modified state = state land 1 = 1

let state_arg state = state asr 1  (* mask (shared) or owner (modified) *)

type t = {
  config : config;
  cpus : int;
  (* Line index -> packed state. Every simulated memory access probes
     this table, so it is the open-addressing [Int_table] (flat arrays,
     no bucket chains) and lookups go through [find_exn], which
     allocates nothing — [find_opt]'s [Some] box would be one
     allocation per access. *)
  lines : int Int_table.t;
  mutable hits : int;
  mutable misses : int;
  mutable transfers : int;
  mutable upgrades : int;
}

let create config ~cpus =
  if config.line_size <= 0 then invalid_arg "Coherence.create: line_size";
  if cpus <= 0 then invalid_arg "Coherence.create: cpus";
  if cpus >= Sys.int_size - 1 then invalid_arg "Coherence.create: too many cpus";
  { config; cpus; lines = Int_table.create ~initial:4096 (); hits = 0; misses = 0;
    transfers = 0; upgrades = 0 }

let config t = t.config

let line_of t addr = addr / t.config.line_size

let check_cpu t cpu =
  if cpu < 0 || cpu >= t.cpus then invalid_arg "Coherence: cpu out of range"

let read t ~cpu addr =
  check_cpu t cpu;
  let line = line_of t addr in
  match Int_table.find_exn t.lines line with
  | exception Not_found ->
      t.misses <- t.misses + 1;
      Int_table.set t.lines line (shared_of_mask (1 lsl cpu));
      t.config.miss_cycles
  | state ->
      if is_modified state then begin
        let owner = state_arg state in
        if owner = cpu then begin
          t.hits <- t.hits + 1;
          t.config.hit_cycles
        end
        else begin
          (* Dirty elsewhere: cache-to-cache transfer, both keep clean
             copies. *)
          t.transfers <- t.transfers + 1;
          Int_table.set t.lines line (shared_of_mask ((1 lsl owner) lor (1 lsl cpu)));
          t.config.transfer_cycles
        end
      end
      else begin
        let mask = state_arg state in
        if mask land (1 lsl cpu) <> 0 then begin
          t.hits <- t.hits + 1;
          t.config.hit_cycles
        end
        else begin
          t.misses <- t.misses + 1;
          Int_table.set t.lines line (shared_of_mask (mask lor (1 lsl cpu)));
          t.config.miss_cycles
        end
      end

let write t ~cpu addr =
  check_cpu t cpu;
  let line = line_of t addr in
  match Int_table.find_exn t.lines line with
  | exception Not_found ->
      t.misses <- t.misses + 1;
      Int_table.set t.lines line (modified_of_cpu cpu);
      t.config.miss_cycles
  | state ->
      if is_modified state then begin
        if state_arg state = cpu then begin
          t.hits <- t.hits + 1;
          t.config.hit_cycles
        end
        else begin
          t.transfers <- t.transfers + 1;
          Int_table.set t.lines line (modified_of_cpu cpu);
          t.config.transfer_cycles
        end
      end
      else begin
        let mask = state_arg state in
        Int_table.set t.lines line (modified_of_cpu cpu);
        if mask = 1 lsl cpu then begin
          (* Sole sharer: a silent E->M transition, no bus traffic. *)
          t.hits <- t.hits + 1;
          t.config.hit_cycles
        end
        else begin
          t.upgrades <- t.upgrades + 1;
          t.config.upgrade_cycles
        end
      end

let write_repeated t ~cpu addr ~count =
  check_cpu t cpu;
  if count <= 0 then invalid_arg "Coherence.write_repeated: count <= 0";
  let line = line_of t addr in
  let slow () =
    let first = write t ~cpu addr in
    t.hits <- t.hits + (count - 1);
    first + ((count - 1) * t.config.hit_cycles)
  in
  match Int_table.find_exn t.lines line with
  | state when is_modified state && state_arg state <> cpu ->
      (* The other CPU is writing this line too: sustained ping-pong, one
         ownership transfer per burst of [ping_pong_burst] stores. *)
      let burst = max 1 t.config.ping_pong_burst in
      let transfers = (count + burst - 1) / burst in
      t.transfers <- t.transfers + transfers;
      t.hits <- t.hits + (count - transfers);
      Int_table.set t.lines line (modified_of_cpu cpu);
      (transfers * t.config.transfer_cycles) + ((count - transfers) * t.config.hit_cycles)
  | _ -> slow ()
  | exception Not_found -> slow ()

let flush_line t addr = Int_table.remove t.lines (line_of t addr)

let hits t = t.hits

let misses t = t.misses

let transfers t = t.transfers

let upgrades t = t.upgrades

let invalidations t = t.transfers + t.upgrades
