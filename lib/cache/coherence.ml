type config = {
  line_size : int;
  hit_cycles : int;
  miss_cycles : int;
  transfer_cycles : int;
  upgrade_cycles : int;
  ping_pong_burst : int;
}

let default_config =
  { line_size = 32;
    hit_cycles = 1;
    miss_cycles = 30;
    transfer_cycles = 40;
    upgrade_cycles = 12;
    ping_pong_burst = 4;
  }

module Cpu_set = Set.Make (Int)

type line_state =
  | Shared of Cpu_set.t   (* clean copies in these CPUs' caches *)
  | Modified of int       (* dirty in exactly this CPU's cache *)

type t = {
  config : config;
  cpus : int;
  lines : (int, line_state) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable transfers : int;
  mutable upgrades : int;
}

let create config ~cpus =
  if config.line_size <= 0 then invalid_arg "Coherence.create: line_size";
  if cpus <= 0 then invalid_arg "Coherence.create: cpus";
  { config; cpus; lines = Hashtbl.create 4096; hits = 0; misses = 0; transfers = 0; upgrades = 0 }

let config t = t.config

let line_of t addr = addr / t.config.line_size

let check_cpu t cpu =
  if cpu < 0 || cpu >= t.cpus then invalid_arg "Coherence: cpu out of range"

let read t ~cpu addr =
  check_cpu t cpu;
  let line = line_of t addr in
  match Hashtbl.find_opt t.lines line with
  | None ->
      t.misses <- t.misses + 1;
      Hashtbl.replace t.lines line (Shared (Cpu_set.singleton cpu));
      t.config.miss_cycles
  | Some (Shared set) when Cpu_set.mem cpu set ->
      t.hits <- t.hits + 1;
      t.config.hit_cycles
  | Some (Shared set) ->
      t.misses <- t.misses + 1;
      Hashtbl.replace t.lines line (Shared (Cpu_set.add cpu set));
      t.config.miss_cycles
  | Some (Modified owner) when owner = cpu ->
      t.hits <- t.hits + 1;
      t.config.hit_cycles
  | Some (Modified owner) ->
      (* Dirty elsewhere: cache-to-cache transfer, both keep clean copies. *)
      t.transfers <- t.transfers + 1;
      Hashtbl.replace t.lines line (Shared (Cpu_set.of_list [ owner; cpu ]));
      t.config.transfer_cycles

let write t ~cpu addr =
  check_cpu t cpu;
  let line = line_of t addr in
  match Hashtbl.find_opt t.lines line with
  | None ->
      t.misses <- t.misses + 1;
      Hashtbl.replace t.lines line (Modified cpu);
      t.config.miss_cycles
  | Some (Modified owner) when owner = cpu ->
      t.hits <- t.hits + 1;
      t.config.hit_cycles
  | Some (Modified _) ->
      t.transfers <- t.transfers + 1;
      Hashtbl.replace t.lines line (Modified cpu);
      t.config.transfer_cycles
  | Some (Shared set) ->
      Hashtbl.replace t.lines line (Modified cpu);
      if Cpu_set.mem cpu set && Cpu_set.cardinal set = 1 then begin
        (* Sole sharer: a silent E->M transition, no bus traffic. *)
        t.hits <- t.hits + 1;
        t.config.hit_cycles
      end
      else begin
        t.upgrades <- t.upgrades + 1;
        t.config.upgrade_cycles
      end

let write_repeated t ~cpu addr ~count =
  check_cpu t cpu;
  if count <= 0 then invalid_arg "Coherence.write_repeated: count <= 0";
  let line = line_of t addr in
  match Hashtbl.find_opt t.lines line with
  | Some (Modified owner) when owner <> cpu ->
      (* The other CPU is writing this line too: sustained ping-pong, one
         ownership transfer per burst of [ping_pong_burst] stores. *)
      let burst = max 1 t.config.ping_pong_burst in
      let transfers = (count + burst - 1) / burst in
      t.transfers <- t.transfers + transfers;
      t.hits <- t.hits + (count - transfers);
      Hashtbl.replace t.lines line (Modified cpu);
      (transfers * t.config.transfer_cycles) + ((count - transfers) * t.config.hit_cycles)
  | _ ->
      let first = write t ~cpu addr in
      t.hits <- t.hits + (count - 1);
      first + ((count - 1) * t.config.hit_cycles)

let flush_line t addr = Hashtbl.remove t.lines (line_of t addr)

let hits t = t.hits

let misses t = t.misses

let transfers t = t.transfers

let upgrades t = t.upgrades

let invalidations t = t.transfers + t.upgrades
