module Engine = Mb_sim.Engine
module Coherence = Mb_cache.Coherence
module As = Mb_vm.Address_space
module Rng = Mb_prng.Rng
module Obs = Mb_obs.Recorder
module Check = Mb_check.Checker
module Fault = Mb_fault.Injector

type config = {
  cpus : int;
  mhz : float;
  quantum_us : float;
  ctx_switch_cycles : int;
  atomic_cycles : int;
  stub_lock_cycles : int;
  spin_cycles : int;
  mutex_handoff : bool;
  wake_cycles : int;
  syscall_cycles : int;
  vm_syscalls_take_bkl : bool;
  minor_fault_cycles : int;
  thread_spawn_cycles : int;
  op_jitter : float;
  cache : Coherence.config;
  vm : As.config;
}

let default_config =
  { cpus = 2;
    mhz = 200.;
    quantum_us = 2000.;
    ctx_switch_cycles = 900;
    atomic_cycles = 14;
    stub_lock_cycles = 2;
    spin_cycles = 400;
    mutex_handoff = false;
    wake_cycles = 300;
    syscall_cycles = 800;
    vm_syscalls_take_bkl = true;
    minor_fault_cycles = 900;
    thread_spawn_cycles = 1500;
    op_jitter = 0.02;
    cache = Coherence.default_config;
    vm = As.linux_x86;
  }

type thread_state = Starting | Ready | Running | Blocked | Finished

(* All-float record: its fields are stored unboxed, so the scheduler's
   per-slice updates (busy time) write a raw double instead of
   allocating a fresh box, which a float field in the mixed record below
   would do on every assignment. *)
type machine_hot = { mutable busy : float }

type t = {
  config : config;
  engine : Engine.t;
  dcell : Mb_sim.Pqueue.cell;
      (* engine's delay hand-off cell, cached so the hot path is
         [m.dcell.cell_time <- ns; Engine.delay_pending m.engine] — an
         unboxed store plus an allocation-free constant effect *)
  eng_shards : int;  (* event shards in the engine: shard 0 is "main"
                        (spawns, latches), shard 1+k belongs to cpu k *)
  cache : Coherence.t;
  root_rng : Rng.t;
  cycle_ns : float;
  quantum_cycles : float;
  cpus : cpu array;
  ready : thread Queue.t;
  mutable next_tid : int;
  mutable next_asid : int;
  mutable ctx_switches : int;
  mh : machine_hot;
  mutable bkl : mutex option;  (* the 2.2-era big kernel lock guarding VM
                                  syscalls (paper section 3); lazy *)
  obs : Obs.t;
  check : Check.t;
  check_on : bool;  (* Check.armed check, cached: the memory hot paths
                       branch on an immutable bool field instead of a
                       load through the checker record *)
  fault : Fault.t;
  fault_on : bool;  (* Fault.armed fault, cached like [check_on]: the
                       reservation/lock sites branch on an immutable
                       bool, so faults-off runs are byte-identical *)
  mutable next_mid : int;  (* machine-unique mutex ids for the checker's
                              lockset bookkeeping *)
  mutable mutexes : mutex list;  (* every mutex ever created on this
                                    machine, so the end-of-run metrics
                                    flush can report per-lock counts *)
  mutable sbrk_calls : int;
  mutable mmap_calls : int;
  mutable munmap_calls : int;
  domains : int;  (* conservative-executor crew width (1 = serial run) *)
  window_batch : int;  (* lookahead windows per merge barrier *)
  lookahead_ns : float;  (* conservative window floor: the cheapest
                            cross-CPU scheduling edge, in simulated ns *)
  mutable domain_stats : Mb_parallel.Conservative.stats option;
}

and cpu = { cpu_id : int; mutable current : thread option }

and mutex = {
  mname : string;
  mid : int;  (* machine-unique id, the checker's lockset element *)
  mblocked : string;  (* "blocked on mutex <name>", precomputed so the
                         contended path's Engine.set_wait concatenates
                         nothing *)
  mm : t;
  heap_lock : bool;  (* allocator heap lock, for the aggregated
                        contended-vs-uncontended metrics split *)
  mutable owner : thread option;
  waiters : thread Queue.t;
  mutable spinners : spinner list;  (* suspended spin-wait registrations,
                                       in spin-entry order; the release
                                       sites drive their wake-ups *)
  mutable contentions : int;
  mutable acquisitions : int;
}

(* One registration per spinner suspended in [spin_on]'s poller branch.
   [sbase] is the simulated time of the last probe boundary already
   accounted; [srem] the spin cycles still budgeted past it. Probe
   boundaries are materialized lazily — see the big comment at
   [spin_on]. *)
and spinner = {
  sth : thread;
  smu : mutex;
  mutable sbase : float;
  mutable srem : int;
  mutable salive : bool;
  mutable swake : bool;  (* a wake event is already queued at the next
                            boundary, so release sites must not queue a
                            second one *)
  mutable sresume : unit -> unit;
}

and proc = {
  pname : string;
  pasid : int;  (* address-space id: distinguishes equal virtual addresses
                   of different processes in the physically-indexed cache *)
  pm : t;
  pvm : As.t;
  prng : Rng.t;
  mutable live_threads : int;
  mutable ever_multi : bool;
}

(* The per-thread floats the scheduler touches on every dispatch, time
   slice and memory access live in their own all-float record: a float
   field in [thread] itself (a mixed record) is boxed, and each
   [th.cpu_cycles <- ...] would allocate. Split out, every update is an
   unboxed store. *)
and thread_hot = {
  mutable quantum_left : float;
  mutable spawn_ns : float;
  mutable finish_ns : float;
  mutable cpu_cycles : float;
  mutable run_start_ns : float;  (* dispatch time of the current CPU tenure *)
}

and thread = {
  tid : int;
  mutable tname : string;  (* "" until someone asks; see [thread_name] *)
  tproc : proc;
  trng : Rng.t;
  mutable state : thread_state;
  mutable resume : unit -> unit;  (* == no_resume while not parked *)
  mutable park_register : (unit -> unit) -> unit;
      (* preallocated closure handed to Engine.park, so parking for a
         CPU allocates nothing in the scheduler *)
  mutable on_cpu : int;  (* valid while Running *)
  hot : thread_hot;
  mutable switches : int;
  mutable blocks : int;
  mutable spin_wins : int;
  mutable faults : int;
  mutable stack_addr : int;
  mutable hooks : (unit -> unit) list;
  joiners : thread Queue.t;
  mutable lane : int;  (* engine pid: this thread's trace lane *)
}

type ctx = thread

type thread_stats = {
  cpu_cycles : float;
  ctx_switches : int;
  blocks : int;
  spins : int;
  page_faults : int;
}

(* Sentinel for "no stored resume": physical comparison against this
   shared closure replaces the [option] box a park used to allocate. *)
let no_resume : unit -> unit = fun () -> ()

let no_register : (unit -> unit) -> unit = fun _ -> ()

let thread_stack_bytes = 16 * 1024

let create ?(seed = 42) ?obs ?check ?fault ?domains (config : config) =
  if config.cpus <= 0 then invalid_arg "Machine.create: cpus <= 0";
  if config.mhz <= 0. then invalid_arg "Machine.create: mhz <= 0";
  let cycle_ns = 1000. /. config.mhz in
  let obs = match obs with Some r -> r | None -> Mb_obs.Ctl.recorder () in
  let check = match check with Some c -> c | None -> Mb_check.Ctl.checker () in
  let fault = match fault with Some f -> f | None -> Mb_fault.Ctl.injector () in
  (* One event shard per simulated CPU plus one for machine-level
     events (spawns, latch wakeups). The schedule is identical for any
     shard count — the engine merges shards by global (time, seq) — so
     MALLOC_REPRO_SHARDS exists purely to let tests and CI prove that. *)
  let eng_shards =
    match Sys.getenv_opt "MALLOC_REPRO_SHARDS" with
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n when n >= 1 -> n
        | _ -> invalid_arg "MALLOC_REPRO_SHARDS: expected a positive integer")
    | None -> config.cpus + 1
  in
  (* Crew width for the conservative parallel executor. 1 (the default)
     runs the serial engine exactly as before; higher counts drain the
     shard wheels on that many domains, with the schedule guaranteed
     byte-identical (see Mb_parallel.Conservative and PARALLELISM.md),
     so MALLOC_REPRO_DOMAINS — like MALLOC_REPRO_SHARDS — is something
     tests and CI can vary freely and diff against. *)
  let domains =
    match domains with
    | Some d -> if d >= 1 then d else invalid_arg "Machine.create: domains < 1"
    | None -> (
        match Sys.getenv_opt "MALLOC_REPRO_DOMAINS" with
        | Some s -> (
            match int_of_string_opt (String.trim s) with
            | Some n when n >= 1 -> n
            | _ -> invalid_arg "MALLOC_REPRO_DOMAINS: expected a positive integer")
        | None -> 1)
  in
  (* Lookahead windows per merge barrier (see Conservative.run ?batch):
     purely a mechanics knob, the schedule is identical at any value. *)
  let window_batch =
    match Sys.getenv_opt "MALLOC_REPRO_WINDOW_BATCH" with
    | Some s -> (
        match int_of_string_opt (String.trim s) with
        | Some n when n >= 1 -> n
        | _ -> invalid_arg "MALLOC_REPRO_WINDOW_BATCH: expected a positive integer")
    | None -> Mb_parallel.Conservative.default_batch
  in
  (* Conservative lookahead: no event scheduled by running code lands
     sooner after "now" than the machine's cheapest scheduling edge — a
     stub lock's uncontended acquire is the shortest delay any path
     performs — so a window at least that wide can always be drained
     without the executor ever having to look ahead of what is queued.
     Each cost is clamped to >= 1 cycle; the adaptive window in
     [Conservative.run] widens from this floor toward a useful batch. *)
  let lookahead_ns =
    let edge = max 1 (min (min config.ctx_switch_cycles config.wake_cycles)
                        (min config.atomic_cycles config.stub_lock_cycles)) in
    float_of_int edge *. cycle_ns
  in
  let engine = Engine.create ~obs ~shards:eng_shards () in
  Engine.name_shard engine 0 "main";
  for k = 1 to eng_shards - 1 do
    Engine.name_shard engine k ("cpu" ^ string_of_int (k - 1))
  done;
  { config;
    engine;
    dcell = Engine.delay_cell engine;
    eng_shards;
    cache = Coherence.create config.cache ~cpus:config.cpus;
    root_rng = Rng.create ~seed;
    cycle_ns;
    quantum_cycles = config.quantum_us *. 1000. /. cycle_ns;
    cpus = Array.init config.cpus (fun cpu_id -> { cpu_id; current = None });
    ready = Queue.create ();
    next_tid = 0;
    next_asid = 0;
    ctx_switches = 0;
    mh = { busy = 0. };
    bkl = None;
    obs;
    check;
    check_on = Check.armed check;
    fault;
    fault_on = Fault.armed fault;
    next_mid = 0;
    mutexes = [];
    sbrk_calls = 0;
    mmap_calls = 0;
    munmap_calls = 0;
    domains;
    window_batch;
    lookahead_ns;
    domain_stats = None;
  }

let config t = t.config

let domains t = t.domains

let domain_stats t = t.domain_stats

let engine t = t.engine

let cache t = t.cache

let rng t = t.root_rng

let observer t = t.obs

let cycles_to_ns t c = c *. t.cycle_ns

(* Snapshot machine-wide counters into the recorder once the run is
   over: cache-coherence traffic, scheduling, VM syscalls, and one
   acquired/contended pair per mutex name. All are [set]/summed from
   counters the simulation maintains anyway, so observation adds no
   hot-path cost beyond the disabled-recorder branches. *)
let flush_observations t =
  if Obs.metering t.obs then begin
    Obs.set t.obs "cache.hits" (Coherence.hits t.cache);
    Obs.set t.obs "cache.misses" (Coherence.misses t.cache);
    Obs.set t.obs "cache.line_transfers" (Coherence.transfers t.cache);
    Obs.set t.obs "cache.upgrades" (Coherence.upgrades t.cache);
    Obs.set t.obs "cache.invalidations" (Coherence.invalidations t.cache);
    Obs.set t.obs "sched.ctx_switches" t.ctx_switches;
    Obs.set t.obs "vm.sbrk_calls" t.sbrk_calls;
    Obs.set t.obs "vm.mmap_calls" t.mmap_calls;
    Obs.set t.obs "vm.munmap_calls" t.munmap_calls;
    if t.fault_on then begin
      Obs.set t.obs "fault.injected" (Fault.injected t.fault);
      Obs.set t.obs "fault.injected_reserve" (Fault.injected_reserve t.fault);
      Obs.set t.obs "fault.injected_preempt" (Fault.injected_preempt t.fault);
      Obs.set t.obs "fault.injected_slowlock" (Fault.injected_slowlock t.fault);
      Obs.set t.obs "fault.survived" (Fault.survived t.fault);
      Obs.set t.obs "fault.degraded" (Fault.degraded t.fault)
    end;
    (* Mutex names repeat across processes (each process-private ptmalloc
       has its own "arena-0"), so sum per name before writing. *)
    let acc = Hashtbl.create 16 in
    let bump key n =
      Hashtbl.replace acc key (n + (match Hashtbl.find_opt acc key with Some v -> v | None -> 0))
    in
    List.iter
      (fun mu ->
        if mu.acquisitions > 0 || mu.contentions > 0 then begin
          bump ("lock." ^ mu.mname ^ ".acquired") mu.acquisitions;
          bump ("lock." ^ mu.mname ^ ".contended") mu.contentions;
          if mu.heap_lock then begin
            bump "alloc.lock.acquired" mu.acquisitions;
            bump "alloc.lock.contended" mu.contentions;
            bump "alloc.lock.uncontended" (max 0 (mu.acquisitions - mu.contentions))
          end
        end)
      t.mutexes;
    Hashtbl.iter (fun key v -> Obs.set t.obs key v) acc;
    (match t.domain_stats with
     | None -> ()
     | Some (st : Mb_parallel.Conservative.stats) ->
         (* Every counter except the per-domain split (and the
            barrier count, which scales with the crew size) is
            domain-count-invariant — see Conservative. *)
         Obs.set t.obs "sched.domains" st.domains;
         Obs.set t.obs "sched.domain.horizon_advances" st.windows;
         Obs.set t.obs "sched.domain.window_batch" st.batch;
         Obs.set t.obs "sched.domain.drained" st.drained;
         Obs.set t.obs "sched.domain.sync_stalls" st.residue;
         Obs.set t.obs "sched.domain.barrier_waits" st.barrier_waits;
         (* Host wall-clock split between the serial execute phase and
            the parallel drain phase — the two sides of Amdahl's law
            for this executor. Wall-clock, hence host-dependent: the
            only sched.* counters that are not run-deterministic. *)
         Obs.set t.obs "sched.domain.exec_ns" (int_of_float st.exec_ns);
         Obs.set t.obs "sched.domain.drain_ns" (int_of_float st.drain_ns);
         Array.iteri
           (fun i n ->
             Obs.set t.obs
               ("sched.domain." ^ string_of_int i ^ ".drained") n)
           st.per_domain_drained)
  end;
  Engine.flush_observations t.engine

let run t =
  if t.domains = 1 then Engine.run t.engine
  else begin
    (* Mechanical side work for the crew's drain phases, one job per
       barrier, round-robin over whatever is enabled: serialize the
       trace events recorded so far (their JSON rendering otherwise
       lands on the flush path), or pre-grow the checker's shadow
       tables (the rehash otherwise lands mid-execute). Both jobs are
       observable-behaviour-free by contract, so the schedule and all
       outputs stay byte-identical to the serial run. *)
    let side_flip = ref false in
    let side () =
      side_flip := not !side_flip;
      let stage_trace =
        Obs.tracing t.obs
        && (!side_flip || not t.check_on)
        && Obs.has_pending t.obs
      in
      if stage_trace then begin
        let evs = Obs.take_events t.obs in
        Some (fun () -> Mb_obs.Trace_json.stage_events t.obs evs)
      end
      else if t.check_on then Some (fun () -> Check.preflight t.check)
      else None
    in
    t.domain_stats <-
      Some (Mb_parallel.Conservative.run t.engine ~domains:t.domains
              ~batch:t.window_batch ~side
              ~lookahead_ns:t.lookahead_ns)
  end;
  flush_observations t

let now_ns t = Engine.now t.engine

let total_ctx_switches (t : t) = t.ctx_switches

let busy_cycles t = t.mh.busy

let kernel_lock_contentions t = match t.bkl with Some mu -> mu.contentions | None -> 0

(* --- thread names ----------------------------------------------------- *)

(* Default names ("<proc>/t<tid>") are materialized on first use — an
   error message, a trace lane — so unobserved runs never pay the
   Printf or the string allocation. *)
let thread_name th =
  if th.tname = "" then begin
    let n = Printf.sprintf "%s/t%d" th.tproc.pname th.tid in
    th.tname <- n;
    n
  end
  else th.tname

(* --- scheduler ------------------------------------------------------- *)

(* Give an idle CPU to the first ready thread, paying the switch cost as
   CPU-busy time before the thread's continuation fires. *)
let dispatch m cpu =
  match cpu.current with
  | Some _ -> ()
  | None ->
      if not (Queue.is_empty m.ready) then begin
        let th = Queue.take m.ready in
        cpu.current <- Some th;
        th.state <- Running;
        th.on_cpu <- cpu.cpu_id;
        (* The first timer tick after a switch lands at a random phase of
           the quantum, as hardware timer interrupts do. *)
        th.hot.quantum_left <- m.quantum_cycles *. (0.5 +. (0.5 *. Rng.float m.root_rng 1.0));
        th.switches <- th.switches + 1;
        m.ctx_switches <- m.ctx_switches + 1;
        let switch = float_of_int m.config.ctx_switch_cycles in
        m.mh.busy <- m.mh.busy +. switch;
        th.hot.cpu_cycles <- th.hot.cpu_cycles +. switch;
        let resume = th.resume in
        if resume == no_resume then
          invalid_arg "Machine: dispatching a thread that never parked";
        th.resume <- no_resume;
        th.hot.run_start_ns <- Engine.now m.engine;
        (* The post-switch resume is this CPU's wakeup: route it to the
           CPU's own shard. When the waking event ran elsewhere (a
           remote unlock, the spawner's CPU) this is the cross-shard
           mailbox push the sched.shard.cross_wakeups counter sees. *)
        Engine.at m.engine
          ~shard:((cpu.cpu_id + 1) mod m.eng_shards)
          (Engine.now m.engine +. cycles_to_ns m switch)
          resume
      end

let kick m = Array.iter (fun cpu -> dispatch m cpu) m.cpus

let park_for_cpu th = Engine.park th.park_register

(* Release the CPU this thread is running on and let the scheduler hand it
   to someone else. Caller decides where the thread itself goes. *)
let release_cpu m th =
  if th.on_cpu < 0 || th.on_cpu >= Array.length m.cpus then
    invalid_arg (Printf.sprintf "Machine.release_cpu: thread %s has no CPU (state?)" (thread_name th));
  let cpu = m.cpus.(th.on_cpu) in
  (match cpu.current with
  | Some cur when cur == th -> cpu.current <- None
  | Some _ | None -> invalid_arg "Machine: thread releasing a CPU it does not hold");
  if Obs.tracing m.obs then begin
    let now = Engine.now m.engine in
    Obs.span m.obs ~lane:th.lane ~name:"run" ~ts_ns:th.hot.run_start_ns
      ~dur_ns:(now -. th.hot.run_start_ns)
      ~args:[ ("cpu", string_of_int cpu.cpu_id) ]
      ()
  end;
  dispatch m cpu

let make_ready m th =
  th.state <- Ready;
  Queue.push th m.ready;
  kick m

(* Quantum expiry with other work waiting: back of the ready queue. *)
let preempt m th =
  th.state <- Ready;
  Queue.push th m.ready;
  Engine.set_wait m.engine th.lane ~why:"waiting for a cpu" ~waits_on:(-1);
  release_cpu m th;
  park_for_cpu th

(* Consume CPU cycles, honoring quantum-based round-robin preemption.

   This runs for every simulated work item, lock operation and memory
   access, so the common case — the quantum does not expire — is kept
   to a single [Engine.delay] with all float arithmetic local (local
   float temporaries stay unboxed; only the delay's payload is boxed).
   The recursive quantum-boundary path is rare: a handful of context
   switches per million cycles. *)
let rec consume th cycles =
  if cycles > 0. then begin
    let m = th.tproc.pm in
    let q = th.hot.quantum_left in
    if cycles <= q then begin
      m.dcell.Mb_sim.Pqueue.cell_time <- cycles *. m.cycle_ns;
      Engine.delay_pending m.engine;
      th.hot.cpu_cycles <- th.hot.cpu_cycles +. cycles;
      m.mh.busy <- m.mh.busy +. cycles;
      let q' = q -. cycles in
      th.hot.quantum_left <- q';
      if q' <= 0. then begin
        if Queue.is_empty m.ready then th.hot.quantum_left <- m.quantum_cycles
        else preempt m th
      end
    end
    else begin
      m.dcell.Mb_sim.Pqueue.cell_time <- q *. m.cycle_ns;
      Engine.delay_pending m.engine;
      th.hot.cpu_cycles <- th.hot.cpu_cycles +. q;
      m.mh.busy <- m.mh.busy +. q;
      th.hot.quantum_left <- 0.;
      if Queue.is_empty m.ready then th.hot.quantum_left <- m.quantum_cycles
      else preempt m th;
      consume th (cycles -. q)
    end
  end

let find_idle_cpu m =
  let n = Array.length m.cpus in
  let rec scan i =
    if i >= n then None
    else
      match m.cpus.(i).current with
      | None -> Some m.cpus.(i)
      | Some _ -> scan (i + 1)
  in
  scan 0

(* First scheduling of a brand-new thread. *)
let acquire_cpu_initial m th =
  match find_idle_cpu m with
  | Some cpu ->
      cpu.current <- Some th;
      th.state <- Running;
      th.on_cpu <- cpu.cpu_id;
      th.hot.run_start_ns <- Engine.now m.engine;
      th.hot.quantum_left <- m.quantum_cycles *. (0.5 +. (0.5 *. Rng.float m.root_rng 1.0));
      th.switches <- th.switches + 1;
      m.ctx_switches <- m.ctx_switches + 1;
      let switch = float_of_int m.config.ctx_switch_cycles in
      m.mh.busy <- m.mh.busy +. switch;
      th.hot.cpu_cycles <- th.hot.cpu_cycles +. switch;
      Engine.delay (cycles_to_ns m switch)
  | None ->
      th.state <- Ready;
      Queue.push th m.ready;
      Engine.set_wait m.engine th.lane ~why:"waiting for a cpu" ~waits_on:(-1);
      park_for_cpu th

(* Integer-cycle entry point for the fixed-cost callers (lock ops,
   cache penalties, syscalls, faults). Duplicates [consume]'s common
   case so the cycle count never crosses a call boundary as a [float]
   (which would box it); the quantum-boundary path falls back. *)
let work_exact_cycles th cycles =
  if cycles > 0 then begin
    let fc = float_of_int cycles in
    let q = th.hot.quantum_left in
    if fc <= q then begin
      let m = th.tproc.pm in
      m.dcell.Mb_sim.Pqueue.cell_time <- fc *. m.cycle_ns;
      Engine.delay_pending m.engine;
      th.hot.cpu_cycles <- th.hot.cpu_cycles +. fc;
      m.mh.busy <- m.mh.busy +. fc;
      let q' = q -. fc in
      th.hot.quantum_left <- q';
      if q' <= 0. then begin
        if Queue.is_empty m.ready then th.hot.quantum_left <- m.quantum_cycles
        else preempt m th
      end
    end
    else consume th fc
  end

(* --- mutex mechanics (shared by Mutex and the kernel lock) ---------- *)

let mutex_make ?(heap = false) mm mname =
  let mid = mm.next_mid in
  mm.next_mid <- mid + 1;
  let mu =
    { mname;
      mid;
      mblocked = "blocked on mutex " ^ mname;
      mm;
      heap_lock = heap;
      owner = None;
      waiters = Queue.create ();
      spinners = [];
      contentions = 0;
      acquisitions = 0;
    }
  in
  mm.mutexes <- mu :: mm.mutexes;
  mu

let note_acquired mu th =
  if mu.mm.check_on then
    Check.lock_acquired mu.mm.check ~tid:th.tid ~mid:mu.mid ~name:mu.mname

let note_released mu th =
  if mu.mm.check_on then Check.lock_released mu.mm.check ~tid:th.tid ~mid:mu.mid

let lock_op_cost th =
  let cfg = th.tproc.pm.config in
  if th.tproc.ever_multi then cfg.atomic_cycles else cfg.stub_lock_cycles

let mutex_try_lock mu th =
  work_exact_cycles th (lock_op_cost th);
  match mu.owner with
  | None ->
      mu.owner <- Some th;
      mu.acquisitions <- mu.acquisitions + 1;
      note_acquired mu th;
      true
  | Some _ ->
      mu.contentions <- mu.contentions + 1;
      false

(* Spin-poll the lock word every 8 cycles until it looks free or the
   budget runs out; each probe is one simulated work item. Top-level so
   the recursion is a direct call, not a per-spin closure. *)
let rec spin_on_steps mu th budget =
  if budget > 0 && (match mu.owner with Some _ -> true | None -> false) then begin
    let step = if budget < 8 then budget else 8 in
    work_exact_cycles th step;
    spin_on_steps mu th (budget - step)
  end

(* The probes must land at exactly the simulated times the step loop
   above produces, but between two changes of [mu.owner] every probe is
   a no-op: it reads a word nothing wrote, accounts its cycles and
   re-arms. Owner changes only happen inside event executions, and the
   release sites are known — so instead of one queued event per 8-cycle
   step (under heavy contention ~90% of all events in the simulator),
   the thread suspends once, registers on the mutex, and the *release*
   site schedules its wake at the exact probe boundary that would have
   observed the release. Boundary times are reproduced bit-for-bit by
   iterating the same float arithmetic the chain used
   (t += float step *. cycle_ns), and the elided no-op probes' cycle
   accounting is applied in bulk when a boundary is materialized —
   nothing reads a suspended spinner's counters in between, so the
   laziness is invisible. One up-front event at the budget-exhaustion
   boundary bounds the spin when the lock is never released (or is
   handed off directly and never reads None).

   Schedule neutrality: a wake pushed from the releasing event gets its
   sequence number during that event's execution, before anything the
   releaser subsequently pushes and after everything already queued —
   exactly the relative order the surviving probe's push had in the
   chain (its predecessors executed in a window where no other event
   ran). Same-phase spinners on one mutex wake in registration order,
   which is the order their chains interleaved. A probe boundary that
   ties the releasing event's time exactly wakes at that same time: in
   the chain, the probe's push (8 cycles earlier) always followed the
   releaser's own wake-up push (≥ lock-op cost ≡ 14 cycles earlier), so
   the tied probe ran after the release and observed it.

   Each materialized probe replicates [work_exact_cycles]'s fast
   branch: account the cycles, then decide. The 64-cycle slack in the
   entry guard keeps the quantum strictly positive through every probe,
   so the fast branch is exact (no preempt, no quantum refresh); the
   rare spin that straddles a quantum boundary takes the step loop,
   which handles preemption. *)

let spin_step_account th m fc =
  th.hot.cpu_cycles <- th.hot.cpu_cycles +. fc;
  m.mh.busy <- m.mh.busy +. fc;
  th.hot.quantum_left <- th.hot.quantum_left -. fc

(* Materialize every probe boundary strictly below [t_lim]: each one is
   a no-op probe the chain would have run, so account its step and
   advance the phase. A boundary exactly at [t_lim] stays pending — a
   release at that time is observed *by* that probe (see above). *)
let spin_advance m sp t_lim =
  let continue_ = ref true in
  while !continue_ && sp.srem > 0 do
    let step = if sp.srem < 8 then sp.srem else 8 in
    let fc = float_of_int step in
    let nxt = sp.sbase +. (fc *. m.cycle_ns) in
    if nxt < t_lim then begin
      spin_step_account sp.sth m fc;
      sp.sbase <- nxt;
      sp.srem <- sp.srem - step
    end
    else continue_ := false
  done

let spin_finish sp =
  sp.salive <- false;
  let mu = sp.smu in
  mu.spinners <- List.filter (fun s -> s != sp) mu.spinners;
  let resume = sp.sresume in
  sp.sresume <- no_resume;
  resume ()

(* Wake event at one probe boundary: account this probe's step, then
   decide exactly as the chain's probe did — keep spinning (silently:
   the next release or the exhaustion event drives the next wake),
   or re-enter the thread. *)
let spin_wake sp () =
  if sp.salive then begin
    sp.swake <- false;
    let mu = sp.smu in
    let m = mu.mm in
    let step = if sp.srem < 8 then sp.srem else 8 in
    spin_step_account sp.sth m (float_of_int step);
    sp.sbase <- Engine.now m.engine;
    sp.srem <- sp.srem - step;
    if sp.srem > 0 && (match mu.owner with Some _ -> true | None -> false)
    then ()
    else spin_finish sp
  end

(* Up-front event at the final probe boundary: if no release resumed
   the spinner first, materialize the remaining no-op probes and
   re-enter the thread with the budget exhausted. *)
let spin_expire sp () =
  if sp.salive then begin
    let m = sp.smu.mm in
    let t_end = Engine.now m.engine in
    spin_advance m sp t_end;
    spin_step_account sp.sth m (float_of_int sp.srem);
    sp.sbase <- t_end;
    sp.srem <- 0;
    spin_finish sp
  end

(* Release hook, called right after [mu.owner <- None]: catch every
   registration up to now (all skipped boundaries were no-op probes —
   the lock was held through them) and queue its wake at the first
   boundary that observes the release. [swake] dedupes: a still-pending
   wake already lands on that exact boundary, because no boundary lies
   between two releases with no probe in between. *)
let wake_spinners mu =
  let m = mu.mm in
  let now = Engine.now m.engine in
  List.iter
    (fun sp ->
      if sp.salive then begin
        spin_advance m sp now;
        if (not sp.swake) && sp.srem > 0 then begin
          sp.swake <- true;
          let step = if sp.srem < 8 then sp.srem else 8 in
          let t_w = sp.sbase +. (float_of_int step *. m.cycle_ns) in
          Engine.at m.engine t_w (spin_wake sp)
        end
      end)
    mu.spinners

let spin_on mu th budget =
  if budget > 0 && (match mu.owner with Some _ -> true | None -> false) then begin
    let m = th.tproc.pm in
    if float_of_int (budget + 64) >= th.hot.quantum_left then spin_on_steps mu th budget
    else
      Engine.suspend m.engine (fun resume ->
          let sp =
            { sth = th;
              smu = mu;
              sbase = Engine.now m.engine;
              srem = budget;
              salive = true;
              swake = false;
              sresume = resume;
            }
          in
          mu.spinners <- mu.spinners @ [ sp ];
          (* Budget-exhaustion boundary, by the same iterated float
             arithmetic the probe chain accumulates. *)
          let t_end = ref sp.sbase and b = ref budget in
          while !b > 0 do
            let step = if !b < 8 then !b else 8 in
            t_end := !t_end +. (float_of_int step *. m.cycle_ns);
            b := !b - step
          done;
          Engine.at m.engine !t_end (spin_expire sp))
  end

(* Contended path: spin (on SMP, if configured), then either race a CAS
   for a freed lock or block. Any time consumed between observing the
   lock free and retiring the CAS can lose the race to another spinner,
   hence the retry loop. *)
let rec mutex_lock_slow mu th =
  let m = mu.mm in
  if m.config.spin_cycles > 0 && m.config.cpus > 1 then
    spin_on mu th m.config.spin_cycles;
  match mu.owner with
  | None -> begin
      work_exact_cycles th (lock_op_cost th);
      match mu.owner with
      | None ->
          mu.owner <- Some th;
          th.spin_wins <- th.spin_wins + 1;
          mu.acquisitions <- mu.acquisitions + 1;
          note_acquired mu th
      | Some _ -> mutex_lock_slow mu th
    end
  | Some owner ->
      th.blocks <- th.blocks + 1;
      th.state <- Blocked;
      if Obs.tracing m.obs then
        Obs.instant m.obs ~lane:th.lane ~name:("block " ^ mu.mname)
          ~ts_ns:(Engine.now m.engine)
          ~args:[ ("cpu", string_of_int th.on_cpu) ]
          ();
      Engine.set_wait m.engine th.lane ~why:mu.mblocked ~waits_on:owner.lane;
      Queue.push th mu.waiters;
      release_cpu m th;
      park_for_cpu th;
      if m.config.mutex_handoff then begin
        (* Woken by direct handoff: we already own the mutex. *)
        mu.acquisitions <- mu.acquisitions + 1;
        note_acquired mu th
      end
      else begin
        (* Futex-style: we were merely woken; the lock may already be
           gone to a barging spinner. Re-compete. *)
        work_exact_cycles th (lock_op_cost th);
        match mu.owner with
        | None ->
            mu.owner <- Some th;
            mu.acquisitions <- mu.acquisitions + 1;
            note_acquired mu th
        | Some _ -> mutex_lock_slow mu th
      end

let mutex_lock mu th =
  (* preempt-storm: a seeded fraction of lock acquisitions take an extra
     context switch first, as if the quantum expired at the worst moment
     (the paper's convoy-formation trigger). Only when another thread is
     ready — [preempt] hands the CPU to the head of the ready queue. *)
  if
    mu.mm.fault_on
    && (not (Queue.is_empty mu.mm.ready))
    && Fault.preempt_now mu.mm.fault
  then preempt mu.mm th;
  work_exact_cycles th (lock_op_cost th);
  match mu.owner with
  | None ->
      mu.owner <- Some th;
      mu.acquisitions <- mu.acquisitions + 1;
      note_acquired mu th
  | Some _ ->
      mu.contentions <- mu.contentions + 1;
      mutex_lock_slow mu th

let mutex_unlock mu th =
  (match mu.owner with
  | Some cur when cur == th -> ()
  | Some _ | None -> invalid_arg "Mutex.unlock: not the owner");
  (* slow-lock: stretch a seeded fraction of heap-mutex hold times, so
     waiters pile up behind an owner that "went away" holding the lock. *)
  if mu.mm.fault_on && mu.heap_lock then begin
    let extra = Fault.stretch_cycles mu.mm.fault in
    if extra > 0 then work_exact_cycles th extra
  end;
  note_released mu th;
  work_exact_cycles th (lock_op_cost th);
  match Queue.take_opt mu.waiters with
  | Some w ->
      if mu.mm.config.mutex_handoff then begin
        (* Direct handoff: the waiter owns the lock before it even runs,
           which is what produces lock convoys under heavy contention. *)
        mu.owner <- Some w;
        work_exact_cycles th mu.mm.config.wake_cycles;
        make_ready mu.mm w
      end
      else begin
        (* Barging: free the lock, wake the waiter, let it re-compete. *)
        mu.owner <- None;
        if mu.spinners <> [] then wake_spinners mu;
        work_exact_cycles th mu.mm.config.wake_cycles;
        make_ready mu.mm w
      end
  | None ->
      mu.owner <- None;
      if mu.spinners <> [] then wake_spinners mu

(* The 2.2-era kernel serialized VM syscalls behind the big kernel lock
   (the paper patched sbrk to avoid it, mm/mmap.c in 2.3.5-2.3.7). *)
let kernel_lock m =
  match m.bkl with
  | Some mu -> mu
  | None ->
      let mu = mutex_make m "kernel-bkl" in
      m.bkl <- Some mu;
      mu

(* --- processes -------------------------------------------------------- *)

let libc_base = 0x4000_0000

let libc_bytes = 0x0010_0000

let libc_data_address = libc_base + 0x8000

let startup_pages = 12

let create_proc m ?name () =
  let pname = match name with Some n -> n | None -> Printf.sprintf "proc-%d" m.next_tid in
  let pvm = As.create m.config.vm in
  (* Text, data and libc occupy fixed mappings; program startup touches a
     handful of their pages — the constant term of benchmark 2's fault
     predictor. *)
  As.map_fixed pvm libc_base ~len:libc_bytes;
  let page = As.page_size pvm in
  ignore (As.touch pvm libc_base ~len:(startup_pages * page));
  let pasid = m.next_asid in
  m.next_asid <- pasid + 1;
  { pname; pasid; pm = m; pvm; prng = Rng.split m.root_rng; live_threads = 0; ever_multi = false }

let proc_vm p = p.pvm

let proc_machine p = p.pm

let proc_multithreaded p = p.ever_multi

let proc_name p = p.pname

(* --- thread lifecycle -------------------------------------------------- *)

let elapsed_ns th =
  if th.state <> Finished then invalid_arg "Machine.elapsed_ns: thread still running";
  th.hot.finish_ns -. th.hot.spawn_ns

let thread_stats (th : thread) : thread_stats =
  { cpu_cycles = th.hot.cpu_cycles;
    ctx_switches = th.switches;
    blocks = th.blocks;
    spins = th.spin_wins;
    page_faults = th.faults;
  }

let page_in th addr ~len =
  let m = th.tproc.pm in
  let faults = As.touch th.tproc.pvm addr ~len in
  if faults > 0 then begin
    th.faults <- th.faults + faults;
    work_exact_cycles th (faults * m.config.minor_fault_cycles)
  end

let work_exact = work_exact_cycles

let work th cycles =
  if cycles > 0 then begin
    let j = Rng.jitter th.trng th.tproc.pm.config.op_jitter in
    consume th (float_of_int cycles *. j)
  end

(* Reserve a thread stack, riding the fault layer's retry policy: a
   vetoed (or genuinely exhausted) reservation backs off in simulated
   time and tries again, so transiently flaky reservations survive.
   Returns [None] only once the retry budget is spent. *)
let rec map_stack m th p attempt =
  let r =
    if
      m.fault_on
      && Fault.veto_reserve m.fault ~now_ns:(Engine.now m.engine)
           ~load:(As.dynamic_bytes p.pvm) ~len:thread_stack_bytes
    then None
    else As.mmap p.pvm ~len:thread_stack_bytes
  in
  match r with
  | Some _ as got ->
      if attempt > 0 && m.fault_on then Fault.note_survived m.fault;
      got
  | None ->
      if attempt < Fault.max_retries then begin
        work_exact_cycles th (Fault.backoff_cycles attempt);
        map_stack m th p (attempt + 1)
      end
      else None

let spawn p ?name body =
  let m = p.pm in
  let tid = m.next_tid in
  m.next_tid <- tid + 1;
  let th =
    { tid;
      tname = (match name with Some n -> n | None -> "");
      tproc = p;
      trng = Rng.split p.prng;
      state = Starting;
      resume = no_resume;
      park_register = no_register;
      on_cpu = -1;
      hot =
        { quantum_left = 0.;
          spawn_ns = Engine.now m.engine;
          finish_ns = nan;
          cpu_cycles = 0.;
          run_start_ns = 0.;
        };
      switches = 0;
      blocks = 0;
      spin_wins = 0;
      faults = 0;
      stack_addr = -1;
      hooks = [];
      joiners = Queue.create ();
      lane = 0;
    }
  in
  th.park_register <- (fun r -> th.resume <- r);
  p.live_threads <- p.live_threads + 1;
  if p.live_threads >= 2 then p.ever_multi <- true;
  (* The engine only needs a name string for trace lanes (and error
     messages, where it materializes its own default) — don't format one
     on unobserved runs. *)
  let ename = if Obs.tracing m.obs then Some (thread_name th) else name in
  th.lane <-
    (Engine.spawn m.engine ?name:ename (fun () ->
         acquire_cpu_initial m th;
         (* pthread_create: kernel work plus a freshly mapped stack whose
            first page faults in — the paper's ~1 page per thread. *)
         work_exact th m.config.thread_spawn_cycles;
         (match map_stack m th p 0 with
         | Some a ->
             th.stack_addr <- a;
             page_in th a ~len:1
         | None ->
             if m.fault_on then
               (* Degrade: run the thread without a modelled stack (its
                  pages and their faults simply aren't simulated) rather
                  than killing the whole run. *)
               Fault.note_degraded m.fault
             else
               raise
                 (Fault.Alloc_failure
                    { who = "Machine.spawn"; bytes = thread_stack_bytes }));
         body th;
         List.iter (fun hook -> hook ()) (List.rev th.hooks);
         if th.stack_addr >= 0 then
           As.munmap p.pvm th.stack_addr ~len:thread_stack_bytes;
         th.hot.finish_ns <- Engine.now m.engine;
         th.state <- Finished;
         p.live_threads <- p.live_threads - 1;
         Queue.iter (fun joiner -> make_ready m joiner) th.joiners;
         Queue.clear th.joiners;
         release_cpu m th));
  th

let exit_hook th hook = th.hooks <- hook :: th.hooks

let join th target =
  if target.state <> Finished then begin
    let m = th.tproc.pm in
    th.state <- Blocked;
    Queue.push th target.joiners;
    Engine.set_wait m.engine th.lane ~why:("joining " ^ thread_name target)
      ~waits_on:target.lane;
    release_cpu m th;
    park_for_cpu th
  end

(* --- ctx accessors ----------------------------------------------------- *)

let now th = Engine.now th.tproc.pm.engine

let tid th = th.tid

let cpu th = th.on_cpu

let proc th = th.tproc

let machine th = th.tproc.pm

let ctx_rng th = th.trng

let ctx_obs th = th.tproc.pm.obs

let checker t = t.check

let ctx_check th = th.tproc.pm.check

let fault t = t.fault

let ctx_fault th = th.tproc.pm.fault

let asid th = th.tproc.pasid

let lane th = th.lane

(* --- memory ------------------------------------------------------------ *)

(* The cache is physically indexed: identical virtual addresses in
   different processes must not collide, so fold the address-space id
   into the physical address. *)
let phys th addr = (th.tproc.pasid lsl 40) lor addr

let read_mem th addr =
  let m = th.tproc.pm in
  if m.check_on then
    Check.on_access m.check ~tid:th.tid ~asid:th.tproc.pasid ~addr ~write:false;
  page_in th addr ~len:1;
  let cost = Coherence.read m.cache ~cpu:th.on_cpu (phys th addr) in
  work_exact_cycles th cost

let write_mem th addr =
  let m = th.tproc.pm in
  if m.check_on then
    Check.on_access m.check ~tid:th.tid ~asid:th.tproc.pasid ~addr ~write:true;
  page_in th addr ~len:1;
  let cost = Coherence.write m.cache ~cpu:th.on_cpu (phys th addr) in
  work_exact_cycles th cost

let write_mem_repeated th addr ~count =
  let m = th.tproc.pm in
  if m.check_on then
    Check.on_access m.check ~tid:th.tid ~asid:th.tproc.pasid ~addr ~write:true;
  page_in th addr ~len:1;
  let cost = Coherence.write_repeated m.cache ~cpu:th.on_cpu (phys th addr) ~count in
  work_exact_cycles th cost

let touch_range th addr ~len =
  let m = th.tproc.pm in
  if m.check_on then
    Check.on_range m.check ~tid:th.tid ~asid:th.tproc.pasid ~addr ~len;
  page_in th addr ~len

(* VM syscalls: kernel entry cost, plus the big kernel lock when the
   config models a pre-2.3.5 kernel (paper section 3). *)
let with_vm_syscall th f =
  let m = th.tproc.pm in
  (* Entry/exit runs outside any kernel lock; the VM manipulation itself
     (the bulk of the cycles) is what pre-2.3.5 kernels serialized. *)
  let entry = m.config.syscall_cycles * 3 / 10 in
  let vm_work = m.config.syscall_cycles - entry in
  work_exact th entry;
  if m.config.vm_syscalls_take_bkl then begin
    let bkl = kernel_lock m in
    mutex_lock bkl th;
    work_exact th vm_work;
    let r = f () in
    mutex_unlock bkl th;
    r
  end
  else begin
    work_exact th vm_work;
    f ()
  end

(* Fault veto for a page reservation, evaluated inside the syscall body
   (after the kernel entry cost and any BKL acquisition, where the real
   kernel would discover exhaustion). Growth only: shrinks and releases
   always succeed. *)
let reserve_vetoed th ~len =
  let m = th.tproc.pm in
  m.fault_on && len > 0
  && Fault.veto_reserve m.fault ~now_ns:(Engine.now m.engine)
       ~load:(As.dynamic_bytes th.tproc.pvm) ~len

let sbrk th delta =
  th.tproc.pm.sbrk_calls <- th.tproc.pm.sbrk_calls + 1;
  with_vm_syscall th (fun () ->
      if reserve_vetoed th ~len:delta then None else As.sbrk th.tproc.pvm delta)

let mmap th ~len =
  th.tproc.pm.mmap_calls <- th.tproc.pm.mmap_calls + 1;
  with_vm_syscall th (fun () ->
      if reserve_vetoed th ~len then None else As.mmap th.tproc.pvm ~len)

let munmap th addr ~len =
  th.tproc.pm.munmap_calls <- th.tproc.pm.munmap_calls + 1;
  with_vm_syscall th (fun () -> As.munmap th.tproc.pvm addr ~len)

(* --- latches ------------------------------------------------------------ *)

module Latch = struct
  type machine = t

  type t = { lm : machine; mutable set : bool; waiters : thread Queue.t }

  let create lm = { lm; set = false; waiters = Queue.create () }

  let wait l th =
    if not l.set then begin
      th.state <- Blocked;
      Queue.push th l.waiters;
      Engine.set_wait l.lm.engine th.lane ~why:"waiting on a latch" ~waits_on:(-1);
      release_cpu l.lm th;
      park_for_cpu th
    end

  let signal l _ctx =
    if not l.set then begin
      l.set <- true;
      Queue.iter (fun w -> make_ready l.lm w) l.waiters;
      Queue.clear l.waiters
    end

  let is_set l = l.set
end

(* --- timed sleep -------------------------------------------------------- *)

(* Block until an absolute simulated time: release the CPU now, get
   pushed back on the ready queue by a timer event at [t]. The wake is
   a plain [make_ready], so the sleeper still competes for a CPU like
   any other ready thread — dispatch latency (up to a quantum under
   full load) is part of what the caller measures, exactly as a real
   nanosleep wake rides the run queue. Open-loop traffic generators
   use this to pace arrivals. *)
let sleep_until th t =
  let m = th.tproc.pm in
  if t > Engine.now m.engine then begin
    th.state <- Blocked;
    Engine.set_wait m.engine th.lane ~why:"sleeping" ~waits_on:(-1);
    Engine.at m.engine t (fun () -> make_ready m th);
    release_cpu m th;
    park_for_cpu th
  end

(* --- wait queues --------------------------------------------------------- *)

(* A bare FIFO wait queue (the condition-variable half of a producer /
   consumer handoff). Unlike [Latch] it is reusable: threads park with
   [wait] and are released one at a time by [wake_one] or en masse by
   [wake_all]. There is no predicate and no associated lock — event
   executions are atomic between simulated-time operations, so a caller
   that checks its condition and parks without an intervening
   time-consuming op cannot miss a wake. Wakers pay [wake_cycles] per
   thread released, like a mutex handoff does. *)
module Waitq = struct
  type machine = t

  type t = { qm : machine; qwhy : string; waiters : thread Queue.t }

  let create qm ?(name = "waitq") () =
    { qm; qwhy = "waiting on " ^ name; waiters = Queue.create () }

  let wait q th =
    th.state <- Blocked;
    Queue.push th q.waiters;
    Engine.set_wait q.qm.engine th.lane ~why:q.qwhy ~waits_on:(-1);
    release_cpu q.qm th;
    park_for_cpu th

  let wake_one q th =
    match Queue.take_opt q.waiters with
    | None -> false
    | Some w ->
        work_exact_cycles th q.qm.config.wake_cycles;
        make_ready q.qm w;
        true

  let wake_all q th =
    let n = Queue.length q.waiters in
    if n > 0 then begin
      (* Charge the whole batch before releasing anyone: the charge can
         yield (quantum expiry), and a half-woken queue would let a
         released waiter re-park behind its own wake. *)
      work_exact_cycles th (q.qm.config.wake_cycles * n);
      Queue.iter (fun w -> make_ready q.qm w) q.waiters;
      Queue.clear q.waiters
    end;
    n

  let waiting q = Queue.length q.waiters
end

(* --- mutexes ------------------------------------------------------------ *)

module Mutex = struct
  type t = mutex

  let create mm ?name ?(heap = false) () =
    let mname = match name with Some n -> n | None -> "mutex" in
    mutex_make ~heap mm mname

  let try_lock = mutex_try_lock

  let lock = mutex_lock

  let unlock = mutex_unlock

  let contentions mu = mu.contentions

  let acquisitions mu = mu.acquisitions

  let name mu = mu.mname
end
