(** A simulated shared-memory multiprocessor.

    Builds the paper's experimental platform out of the event engine:
    [cpus] processors scheduling simulated threads round-robin with a
    quantum, context-switch costs, processes with private address spaces,
    kernel-ish mutexes (try-lock, adaptive spin, block with direct
    handoff), demand paging charges, and a shared cache-coherence model.

    Thread bodies receive a {!ctx} capability; every operation on it
    consumes simulated time on the thread's current CPU. All
    nondeterminism comes from the machine's seed.

    Each machine owns one {!Mb_obs.Recorder.t}. When observation is on,
    the machine traces CPU tenures ("run" spans, one lane per thread)
    and mutex blocks, and flushes machine-wide counters (per-lock
    acquired/contended pairs, cache-coherence traffic, VM-syscall and
    context-switch counts) into the recorder when {!run} returns.
    Recording consumes no simulated time, so observed and unobserved
    runs produce identical results. *)

type t

type proc
(** A process: private address space, one or more threads. *)

type thread

type ctx
(** Capability handed to a running thread's body. *)

type config = {
  cpus : int;
  mhz : float;                  (** clock rate; 1 cycle = 1000/mhz ns *)
  quantum_us : float;           (** scheduler time slice *)
  ctx_switch_cycles : int;      (** charged whenever a CPU switches threads *)
  atomic_cycles : int;          (** lock/unlock atomic op in a multithreaded process *)
  stub_lock_cycles : int;       (** lock/unlock stub in a single-threaded process *)
  spin_cycles : int;            (** adaptive-mutex spin budget before blocking; 0 = block immediately (the Solaris 2.6 default-mutex behaviour); spinning is skipped on uniprocessors *)
  mutex_handoff : bool;         (** true: unlock hands the mutex directly to the first blocked waiter (Solaris-style, forms convoys). false: unlock frees the mutex and merely wakes a waiter, which must re-compete with spinners (futex-style barging). *)
  wake_cycles : int;            (** charged to a thread waking a blocked waiter *)
  syscall_cycles : int;         (** kernel entry/exit for sbrk/mmap/munmap *)
  vm_syscalls_take_bkl : bool;  (** serialize sbrk/mmap/munmap machine-wide behind the big kernel lock, as pre-2.3.5 Linux did (paper section 3) *)
  minor_fault_cycles : int;     (** servicing one minor page fault *)
  thread_spawn_cycles : int;    (** pthread_create work beyond paging *)
  op_jitter : float;            (** ± relative noise on {!work} durations *)
  cache : Mb_cache.Coherence.config;
  vm : Mb_vm.Address_space.config;
}

val default_config : config
(** A generic 2-CPU machine; presets for the paper's hosts live in
    {!Configs}. *)

val create :
  ?seed:int ->
  ?obs:Mb_obs.Recorder.t ->
  ?check:Mb_check.Checker.t ->
  ?fault:Mb_fault.Injector.t ->
  ?domains:int ->
  config ->
  t
(** Fresh machine. Equal seeds and programs give identical runs.
    [obs] is the machine's observation recorder; it defaults to
    {!Mb_obs.Ctl.recorder}[ ()], i.e. disabled unless the process-wide
    observation mode is on. [check] is the machine's dynamic
    correctness checker and likewise defaults to
    {!Mb_check.Ctl.checker}[ ()]. Neither consumes simulated time, so
    observed/checked runs compute the same results as bare ones.
    [fault] is the machine's fault injector, defaulting to
    {!Mb_fault.Ctl.injector}[ ()] ({!Mb_fault.Injector.null} unless a
    [--faults] plan is armed); when disarmed every injection site is a
    dead branch and output is byte-identical to a faultless build.
    [domains] (default: [MALLOC_REPRO_DOMAINS] if set, else 1) is the
    crew width for {!run}: 1 drains the event queue serially, exactly
    as before; higher counts execute the per-CPU event shards across
    that many OCaml domains via {!Mb_parallel.Conservative}, with a
    schedule that is byte-identical at every domain count (see
    PARALLELISM.md). *)

val config : t -> config

val engine : t -> Mb_sim.Engine.t

val cache : t -> Mb_cache.Coherence.t

val rng : t -> Mb_prng.Rng.t
(** The machine's root random stream (split it; don't share). *)

val observer : t -> Mb_obs.Recorder.t
(** This machine's observation recorder ({!Mb_obs.Recorder.null} when
    the run is unobserved). Workload drivers read it after {!run} to
    publish the run's counters and trace. *)

val checker : t -> Mb_check.Checker.t
(** This machine's dynamic checker ({!Mb_check.Checker.null} when
    checking is off). The machine feeds it mutex hold-set transitions
    and memory accesses; allocators feed it block lifetimes. Workload
    drivers read it after {!run} to publish findings. *)

val fault : t -> Mb_fault.Injector.t
(** This machine's fault injector ({!Mb_fault.Injector.null} when no
    plan is armed). The machine consults it at page-reservation and
    lock sites; allocators at retry sites; workload drivers read it
    after {!run} to publish injected/survived/degraded counts. *)

val cycles_to_ns : t -> float -> float

val run : t -> unit
(** Run the simulation until every spawned thread has finished: on the
    serial engine when the machine's domain count is 1, otherwise under
    the conservative parallel executor — same schedule either way.
    @raise Mb_sim.Engine.Stalled on deadlock. *)

val domains : t -> int
(** Crew width {!run} will use (from [?domains] or
    [MALLOC_REPRO_DOMAINS]; 1 means a plain serial run). *)

val domain_stats : t -> Mb_parallel.Conservative.stats option
(** Window statistics of the conservative executor, available after
    {!run} on a machine with [domains > 1] ([None] on serial runs).
    Also published as the [sched.domain.*] observations. *)

val now_ns : t -> float

val total_ctx_switches : t -> int

val busy_cycles : t -> float
(** Total cycles during which some thread held a CPU; utilization is
    [busy_cycles / (cpus * now / cycle_ns)]. *)

val kernel_lock_contentions : t -> int
(** VM syscalls that found the big kernel lock held (0 when
    [vm_syscalls_take_bkl] is off or never contended). *)

(** {1 Processes} *)

val create_proc : t -> ?name:string -> unit -> proc
(** Creates a process: sets up its address space (binary + libc mappings),
    touches the startup pages, and accounts their minor faults. No thread
    runs until {!spawn}ed. *)

val proc_vm : proc -> Mb_vm.Address_space.t

val proc_machine : proc -> t

val proc_multithreaded : proc -> bool
(** True once the process has ever had two or more live threads; real
    libc switches from stub to atomic locking at that point, and so does
    the simulated one (the flag is sticky). *)

val proc_name : proc -> string

val libc_data_address : int
(** Base address of the (fixed-mapped, touchable) libc data segment in
    every process; allocators place their global hot words here, which is
    what lets the cache model see "allocator variable" sloshing. *)

(** {1 Threads} *)

val spawn : proc -> ?name:string -> (ctx -> unit) -> thread
(** Create a thread of [proc]. The thread maps and touches a stack when it
    first runs (the paper's ~1 page per [pthread_create]), then executes
    the body. Callable from setup code or from inside another thread. *)

val elapsed_ns : thread -> float
(** Wall-clock (simulated) time from spawn to exit. Only meaningful after
    {!run} completes or the thread has exited.
    @raise Invalid_argument if the thread has not finished. *)

val thread_name : thread -> string

type thread_stats = {
  cpu_cycles : float;       (** cycles of CPU actually consumed *)
  ctx_switches : int;       (** times this thread was put on a CPU *)
  blocks : int;             (** times it blocked on a mutex *)
  spins : int;              (** contended acquisitions resolved by spinning *)
  page_faults : int;        (** minor faults it triggered *)
}

val thread_stats : thread -> thread_stats

(** {1 Operations inside a thread}

    All of these must be called from within the thread body that received
    the [ctx]. *)

val work : ctx -> int -> unit
(** Consume the given number of CPU cycles (perturbed by [op_jitter]).
    May be preempted at quantum boundaries. *)

val work_exact : ctx -> int -> unit
(** Like {!work} but without jitter; for calibration paths. *)

val now : ctx -> float
(** Simulated nanoseconds. *)

val tid : ctx -> int

val cpu : ctx -> int
(** CPU currently executing this thread. *)

val proc : ctx -> proc

val machine : ctx -> t

val ctx_rng : ctx -> Mb_prng.Rng.t
(** Per-thread random stream. *)

val ctx_obs : ctx -> Mb_obs.Recorder.t
(** The owning machine's recorder, for allocator emission sites. *)

val ctx_check : ctx -> Mb_check.Checker.t
(** The owning machine's checker, for allocator instrumentation. *)

val ctx_fault : ctx -> Mb_fault.Injector.t
(** The owning machine's fault injector, for the allocator retry
    loop's policy and bookkeeping. *)

val asid : ctx -> int
(** The owning process's address-space id; the checker folds it into
    addresses the same way the physically-indexed cache does. *)

val lane : ctx -> int
(** This thread's trace lane (its engine pid); allocators use it to
    place their own trace events on the right swim lane. *)

val read_mem : ctx -> int -> unit
(** Simulate a load: demand-page the address (charging fault cost if it is
    a first touch) and charge the coherence cost of the access. *)

val write_mem : ctx -> int -> unit
(** Simulate a store, as {!read_mem}. *)

val write_mem_repeated : ctx -> int -> count:int -> unit
(** [count] back-to-back stores to one address (benchmark 3's loop); cost
    comes from {!Mb_cache.Coherence.write_repeated} plus paging. *)

val touch_range : ctx -> int -> len:int -> unit
(** Demand-page a byte range without cache traffic (bulk initialization),
    charging fault service time per newly resident page. *)

val sbrk : ctx -> int -> int option
(** The [sbrk] system call: charges kernel entry cost and moves the
    process break. *)

val mmap : ctx -> len:int -> int option

val munmap : ctx -> int -> len:int -> unit

val join : ctx -> thread -> unit
(** Block until the target thread (of any process) exits. *)

val exit_hook : ctx -> (unit -> unit) -> unit
(** Register a callback to run (in simulation context) when the thread's
    body returns; used by the workloads to sample statistics at exit. *)

(** {1 Synchronization} *)

(** A one-shot latch: threads {!Latch.wait} until someone {!Latch.signal}s;
    after that, waits return immediately. The workloads use it to let a
    main thread sleep until the last of a set of dynamically created
    threads finishes (benchmark 2's thread chains). *)
module Latch : sig
  type machine := t

  type t

  val create : machine -> t

  val wait : t -> ctx -> unit

  val signal : t -> ctx -> unit
  (** Releases current and future waiters. Idempotent. *)

  val is_set : t -> bool
end

val sleep_until : ctx -> float -> unit
(** [sleep_until ctx t] blocks the calling thread until absolute
    simulated time [t] (ns), then re-competes for a CPU like any other
    ready thread — so the caller observes wake-to-dispatch latency under
    load, as a real timer sleep does. Returns immediately if [t] is not
    in the future. The open-loop traffic generators use it to pace
    arrivals. *)

(** A reusable FIFO wait queue — the condition-variable half of a
    producer/consumer handoff. Threads park with {!Waitq.wait}; wakers
    release one ({!Waitq.wake_one}) or all ({!Waitq.wake_all}) and pay
    {!field-wake_cycles} per thread released. There is no predicate and
    no lock: event executions are atomic between simulated-time
    operations, so checking a condition and parking without an
    intervening time-consuming op cannot miss a wake. *)
module Waitq : sig
  type machine := t

  type t

  val create : machine -> ?name:string -> unit -> t
  (** [name] labels the blocked state in traces ("waiting on [name]"). *)

  val wait : t -> ctx -> unit
  (** Park until released by a waker. Unconditional — callers check
      their own predicate first. *)

  val wake_one : t -> ctx -> bool
  (** Release the longest-parked waiter, charging the caller
      {!field-wake_cycles}. [false] if nobody was waiting (free). *)

  val wake_all : t -> ctx -> int
  (** Release every current waiter (charging {!field-wake_cycles} each);
      returns how many. *)

  val waiting : t -> int
  (** Number of currently parked threads. *)
end

module Mutex : sig
  type machine := t

  type t

  val create : machine -> ?name:string -> ?heap:bool -> unit -> t
  (** [heap] marks this mutex as an allocator heap lock (default
      [false]): the end-of-run metrics flush then folds its counts into
      the aggregated [alloc.lock.acquired] / [alloc.lock.contended] /
      [alloc.lock.uncontended] counters — the paper's central
      contended-vs-uncontended split. *)

  val lock : t -> ctx -> unit
  (** Charges the lock-op cost ({!field-atomic_cycles} or
      {!field-stub_lock_cycles} depending on the process), then acquires:
      immediately if free; after spinning if the config allows and the
      machine is an SMP; otherwise blocks until handed the lock. *)

  val try_lock : t -> ctx -> bool
  (** Non-blocking acquire; charges the lock-op cost either way. *)

  val unlock : t -> ctx -> unit
  (** Releases. If waiters are blocked: with [mutex_handoff] the lock is
      handed directly to the first waiter (convoy-forming); otherwise the
      lock is freed and the waiter merely woken to re-compete with any
      barging spinners. Either way the unlocker pays [wake_cycles].
      @raise Invalid_argument if not held by the calling thread. *)

  val contentions : t -> int
  (** Lock attempts that found the mutex held. *)

  val acquisitions : t -> int

  val name : t -> string
end
