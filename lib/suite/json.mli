(** A minimal JSON value: just enough for the suite layer's artifacts.

    The history file, the bench harness's [BENCH_kernels.json] and the
    gate reports are all plain JSON written by this repo, so the parser
    only has to be {e correct}, not lenient: it reads standard JSON
    (objects, arrays, strings with escapes, numbers, booleans, null)
    and rejects everything else with a character position. Object
    field order is preserved, which keeps appended history files
    diff-friendly. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val of_string : string -> (t, string) result
(** Parses one JSON value (surrounding whitespace allowed). [Error]
    messages carry the byte offset of the failure. *)

val to_string : ?indent:int -> t -> string
(** Renders the value. With [~indent] (spaces per level) objects and
    arrays are pretty-printed over multiple lines; without it the
    output is a single line. Numbers print with up to 12 significant
    digits — enough for the ns/run and word counts we store — and
    integral values print without a decimal point. *)

val member : string -> t -> t option
(** [member k (Obj ...)] is the field's value; [None] on a missing
    field or a non-object. *)

val to_float : t -> float option
(** [Num]s and nothing else. *)

val to_int : t -> int option
(** [Num]s with an integral value. *)

val to_str : t -> string option

val to_list : t -> t list option
(** [Arr]s and nothing else. *)
