type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* --- printing ----------------------------------------------------------- *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Integral values print as integers (counts, seeds, schema numbers);
   everything else gets 12 significant digits, which round-trips the
   measurements we store and stays readable in diffs. *)
let num_to_string v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let to_string ?indent t =
  let b = Buffer.create 256 in
  let pad level =
    match indent with
    | None -> ()
    | Some n ->
        Buffer.add_char b '\n';
        Buffer.add_string b (String.make (level * n) ' ')
  in
  let sep () = match indent with None -> "" | Some _ -> " " in
  let rec go level = function
    | Null -> Buffer.add_string b "null"
    | Bool v -> Buffer.add_string b (if v then "true" else "false")
    | Num v -> Buffer.add_string b (num_to_string v)
    | Str s ->
        Buffer.add_char b '"';
        Buffer.add_string b (escape s);
        Buffer.add_char b '"'
    | Arr [] -> Buffer.add_string b "[]"
    | Arr xs ->
        Buffer.add_char b '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char b ',';
            pad (level + 1);
            go (level + 1) x)
          xs;
        pad level;
        Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char b ',';
            pad (level + 1);
            Buffer.add_char b '"';
            Buffer.add_string b (escape k);
            Buffer.add_string b "\":";
            Buffer.add_string b (sep ());
            go (level + 1) v)
          fields;
        pad level;
        Buffer.add_char b '}'
  in
  go 0 t;
  Buffer.contents b

(* --- parsing ------------------------------------------------------------ *)

exception Fail of int * string

let of_string s =
  let n = String.length s in
  let fail i msg = raise (Fail (i, msg)) in
  let rec skip_ws i =
    if i < n then
      match s.[i] with ' ' | '\t' | '\n' | '\r' -> skip_ws (i + 1) | _ -> i
    else i
  in
  let expect i c =
    if i < n && s.[i] = c then i + 1
    else fail i (Printf.sprintf "expected %c" c)
  in
  let parse_lit i lit v =
    let ln = String.length lit in
    if i + ln <= n && String.sub s i ln = lit then (v, i + ln)
    else fail i (Printf.sprintf "expected %s" lit)
  in
  let parse_string i =
    let i = expect i '"' in
    let b = Buffer.create 16 in
    let rec go i =
      if i >= n then fail i "unterminated string"
      else
        match s.[i] with
        | '"' -> (Buffer.contents b, i + 1)
        | '\\' ->
            if i + 1 >= n then fail i "dangling escape"
            else (
              (match s.[i + 1] with
              | '"' -> Buffer.add_char b '"'
              | '\\' -> Buffer.add_char b '\\'
              | '/' -> Buffer.add_char b '/'
              | 'n' -> Buffer.add_char b '\n'
              | 'r' -> Buffer.add_char b '\r'
              | 't' -> Buffer.add_char b '\t'
              | 'b' -> Buffer.add_char b '\b'
              | 'f' -> Buffer.add_char b '\012'
              | 'u' ->
                  if i + 5 >= n then fail i "truncated \\u escape"
                  else begin
                    match int_of_string_opt ("0x" ^ String.sub s (i + 2) 4) with
                    | Some code when code < 0x80 -> Buffer.add_char b (Char.chr code)
                    | Some code ->
                        (* Non-ASCII escapes: emit UTF-8 (sufficient for the
                           cpu_model strings this repo writes). *)
                        if code < 0x800 then begin
                          Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
                          Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                        end
                        else begin
                          Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
                          Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                          Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
                        end
                    | None -> fail i "bad \\u escape"
                  end
              | c -> fail i (Printf.sprintf "bad escape \\%c" c));
              go (i + (if s.[i + 1] = 'u' then 6 else 2)))
        | c when Char.code c < 0x20 -> fail i "raw control character in string"
        | c ->
            Buffer.add_char b c;
            go (i + 1)
    in
    go i
  in
  let parse_number i =
    let j = ref i in
    while
      !j < n
      && (match s.[!j] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false)
    do
      incr j
    done;
    match float_of_string_opt (String.sub s i (!j - i)) with
    | Some v -> (Num v, !j)
    | None -> fail i "bad number"
  in
  let rec parse_value i =
    let i = skip_ws i in
    if i >= n then fail i "unexpected end of input"
    else
      match s.[i] with
      | 'n' -> parse_lit i "null" Null
      | 't' -> parse_lit i "true" (Bool true)
      | 'f' -> parse_lit i "false" (Bool false)
      | '"' ->
          let v, i = parse_string i in
          (Str v, i)
      | '{' -> parse_obj (i + 1)
      | '[' -> parse_arr (i + 1)
      | '-' | '0' .. '9' -> parse_number i
      | c -> fail i (Printf.sprintf "unexpected %c" c)
  and parse_obj i =
    let i = skip_ws i in
    if i < n && s.[i] = '}' then (Obj [], i + 1)
    else
      let rec fields acc i =
        let i = skip_ws i in
        let k, i = parse_string i in
        let i = expect (skip_ws i) ':' in
        let v, i = parse_value i in
        let i = skip_ws i in
        if i < n && s.[i] = ',' then fields ((k, v) :: acc) (i + 1)
        else
          let i = expect i '}' in
          (Obj (List.rev ((k, v) :: acc)), i)
      in
      fields [] i
  and parse_arr i =
    let i = skip_ws i in
    if i < n && s.[i] = ']' then (Arr [], i + 1)
    else
      let rec elems acc i =
        let v, i = parse_value i in
        let i = skip_ws i in
        if i < n && s.[i] = ',' then elems (v :: acc) (i + 1)
        else
          let i = expect i ']' in
          (Arr (List.rev (v :: acc)), i)
      in
      elems [] i
  in
  match parse_value 0 with
  | v, i ->
      let i = skip_ws i in
      if i = n then Ok v else Error (Printf.sprintf "json: trailing garbage at byte %d" i)
  | exception Fail (i, msg) -> Error (Printf.sprintf "json: %s at byte %d" msg i)

(* --- accessors ---------------------------------------------------------- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let to_float = function Num v -> Some v | _ -> None

let to_int = function
  | Num v when Float.is_integer v -> Some (int_of_float v)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_list = function Arr xs -> Some xs | _ -> None
