type exp_result = { print : unit -> unit; ok : bool }

type exp_registry = {
  exp_ids : string list;
  exp_run : string -> quick:bool -> seed:int -> (unit -> exp_result) option;
}

(* Keep in sync with the bench harness's headline set: the history file
   and BENCH_kernels.json should disagree about a counter's name never. *)
let headline_counters =
  [ "alloc.mallocs";
    "alloc.lock.acquired";
    "alloc.lock.contended";
    "alloc.arena.created";
    "alloc.free.foreign";
    "cache.invalidations";
    "sched.ctx_switches";
    "vm.sbrk_calls";
    "vm.mmap_calls"
  ]

(* --- env knobs ---------------------------------------------------------- *)

(* Unix has no unsetenv, so "restore" means: previous value if there was
   one, the engine's documented default otherwise. MALLOC_REPRO_SHARDS
   has no constant default (cpus + 1 per machine) — it stays set, which
   is observationally harmless because schedules are byte-identical at
   every shard count (determinism invariant 5). Restoring "" would be
   worse: Machine.create rejects malformed values with Invalid_argument. *)
let with_knob name value ~default f =
  match value with
  | None -> f ()
  | Some v ->
      let prev = Sys.getenv_opt name in
      Unix.putenv name (string_of_int v);
      Fun.protect
        ~finally:(fun () ->
          match (prev, default) with
          | Some p, _ -> Unix.putenv name p
          | None, Some d -> Unix.putenv name d
          | None, None -> ())
        f

let with_env (env : Spec.env) f =
  with_knob "MALLOC_REPRO_SHARDS" env.Spec.shards ~default:None (fun () ->
      with_knob "MALLOC_REPRO_DOMAINS" env.Spec.domains ~default:(Some "1") (fun () ->
          with_knob "MALLOC_REPRO_WINDOW_BATCH" env.Spec.window_batch
            ~default:(Some (string_of_int Mb_parallel.Conservative.default_batch))
            f))

(* Fault plans and env knobs are process-global, so a cell that uses
   either gets the whole context to itself (the serial path below). *)
let with_cell_ctx (cell : Spec.cell) f =
  with_env cell.Spec.env (fun () ->
      match cell.Spec.fault with
      | None -> f ()
      | Some _ as plan ->
          Mb_fault.Ctl.arm plan;
          Fun.protect
            ~finally:(fun () ->
              Mb_fault.Ctl.arm None;
              (* the storm's injectors are this cell's private business;
                 don't leak them into the caller's fault report *)
              ignore (Mb_fault.Collect.drain ()))
            f)

(* --- one compiled cell -------------------------------------------------- *)

type compiled = {
  exec : unit -> exp_result;
  (* phase A: run once, return the printable result (pool tasks must not
     print themselves — the joining domain prints, in expansion order) *)
  kernel : unit -> (string * float) list;
  (* phase B: run quietly, returning the request percentiles (open-loop
     server cells) or [] *)
}

let scale ~quick ~q ~f = if quick then q else f

let compile ~registry ~quick (cell : Spec.cell) =
  let seed = cell.Spec.cell_seed in
  let key = cell.Spec.key in
  let machine () =
    match cell.Spec.machine with
    | Some name -> (
        match Mb_machine.Configs.by_name name with
        | Some config -> Ok config
        | None -> Error (Printf.sprintf "suite: unknown machine %S in cell %s" name key))
    | None -> Error (Printf.sprintf "suite: cell %s carries no machine" key)
  in
  let factory () =
    match cell.Spec.allocator with
    | Some name -> (
        match Mb_workload.Factory.by_name name with
        | Some f -> Ok f
        | None -> Error (Printf.sprintf "suite: unknown allocator %S in cell %s" name key))
    | None -> Error (Printf.sprintf "suite: cell %s carries no allocator" key)
  in
  let bench run_and_print = Ok { exec = run_and_print; kernel = (fun () -> ignore (run_and_print ()); []) } in
  match cell.Spec.workload with
  | Spec.Exp_all -> Error (Printf.sprintf "suite: unexpanded exp:* cell %s" key)
  | Spec.Exp id -> (
      match registry.exp_run id ~quick ~seed with
      | None -> Error (Printf.sprintf "suite: unknown experiment id %S" id)
      | Some thunk ->
          Ok { exec = thunk; kernel = (fun () -> ignore (thunk ()); []) })
  | Spec.Bench1 -> (
      match (machine (), factory ()) with
      | Error e, _ | _, Error e -> Error e
      | Ok machine, Ok factory ->
          let module B1 = Mb_workload.Bench1 in
          let iterations = scale ~quick ~q:300 ~f:3000 in
          bench (fun () ->
              let r =
                B1.run
                  { B1.machine;
                    seed;
                    factory;
                    workers = 4;
                    mode = B1.Threads;
                    size = 512;
                    iterations;
                    paper_iterations = iterations;
                  }
              in
              { print =
                  (fun () ->
                    Printf.printf "%s: mean %.6f s, max %.6f s, ctx %d, arenas %d\n" key
                      (B1.mean_scaled r) (B1.max_scaled r) r.B1.ctx_switches r.B1.arenas);
                ok = true;
              }))
  | Spec.Bench2 -> (
      match (machine (), factory ()) with
      | Error e, _ | _, Error e -> Error e
      | Ok machine, Ok factory ->
          let module B2 = Mb_workload.Bench2 in
          bench (fun () ->
              let r =
                B2.run
                  { B2.machine;
                    seed;
                    factory;
                    threads = 3;
                    rounds = scale ~quick ~q:2 ~f:4;
                    objects_per_thread = scale ~quick ~q:400 ~f:2000;
                    replacements_per_round = scale ~quick ~q:150 ~f:800;
                    size = 40;
                  }
              in
              { print =
                  (fun () ->
                    Printf.printf "%s: faults %d, sbrk %d, mmap %d, arenas %d, foreign %d\n"
                      key r.B2.minor_faults r.B2.sbrk_calls r.B2.mmap_calls
                      r.B2.arenas_created r.B2.foreign_frees);
                ok = true;
              }))
  | Spec.Bench3 -> (
      match (machine (), factory ()) with
      | Error e, _ | _, Error e -> Error e
      | Ok machine, Ok factory ->
          let module B3 = Mb_workload.Bench3 in
          let writes = scale ~quick ~q:20_000 ~f:200_000 in
          bench (fun () ->
              let r =
                B3.run
                  { B3.default with
                    B3.machine;
                    seed;
                    factory;
                    threads = 2;
                    object_size = 40;
                    writes;
                    paper_writes = writes;
                    aligned = false;
                  }
              in
              { print =
                  (fun () ->
                    Printf.printf "%s: %.6f s, transfers %d, shared lines %d\n" key
                      r.B3.scaled_s r.B3.transfers r.B3.shared_lines);
                ok = true;
              }))
  | Spec.Server_open -> (
      match (machine (), factory ()) with
      | Error e, _ | _, Error e -> Error e
      | Ok machine, Ok factory ->
          let module S = Mb_workload.Server in
          let run () =
            S.run
              { S.default with
                S.machine;
                seed;
                factory;
                threads = 4;
                connections = 64;
                open_loop =
                  Some
                    { S.process = Mb_workload.Arrivals.Poisson { rate_rps = 450_000. };
                      total_requests = scale ~quick ~q:600 ~f:6000;
                      model = S.Thread_pool { queue_capacity = 256 };
                      churn_mean_requests = 32;
                      read_pct = 60;
                      write_pct = 25;
                    };
              }
          in
          let percentiles (r : S.result) =
            match r.S.requests with
            | None -> []
            | Some q -> [ ("p50_ns", q.S.p50_ns); ("p95_ns", q.S.p95_ns); ("p99_ns", q.S.p99_ns) ]
          in
          Ok
            { exec =
                (fun () ->
                  let r = run () in
                  { print =
                      (fun () ->
                        match r.S.requests with
                        | Some q ->
                            Printf.printf
                              "%s: %d completed, %d dropped, p50 %.0f ns, p99 %.0f ns\n" key
                              q.S.completed q.S.dropped q.S.p50_ns q.S.p99_ns
                        | None -> Printf.printf "%s: no request stats\n" key);
                    ok = true;
                  });
              kernel = (fun () -> percentiles (run ()));
            })

(* --- the run ------------------------------------------------------------ *)

let pure (cells : Spec.cell list) =
  List.for_all
    (fun c -> c.Spec.fault = None && c.Spec.env = Spec.default_env)
    cells

let rec compile_all ~registry ~quick = function
  | [] -> Ok []
  | cell :: rest -> (
      match compile ~registry ~quick cell with
      | Error e -> Error e
      | Ok compiled -> (
          match compile_all ~registry ~quick rest with
          | Error e -> Error e
          | Ok more -> Ok ((cell, compiled) :: more)))

let run ?jobs ~registry (spec : Spec.t) =
  match Spec.expand spec ~exp_ids:registry.exp_ids with
  | Error e -> Error e
  | Ok cells -> (
      let quick = spec.Spec.mode = `Quick in
      match compile_all ~registry ~quick cells with
      | Error e -> Error e
      | Ok pairs ->
          (* Phase A: execute and print every cell once. *)
          let oks =
            if pure cells then begin
              let fan pool =
                let futures =
                  List.map
                    (fun (cell, comp) ->
                      Mb_parallel.Pool.submit pool ~key:cell.Spec.key comp.exec)
                    pairs
                in
                List.map
                  (fun future ->
                    let r = Mb_parallel.Pool.await pool future in
                    r.print ();
                    r.ok)
                  futures
              in
              match jobs with
              | Some jobs -> Mb_parallel.Pool.with_pool ~jobs fan
              | None -> fan (Mb_parallel.Pool.global ())
            end
            else
              List.map
                (fun (cell, comp) ->
                  with_cell_ctx cell (fun () ->
                      let r = comp.exec () in
                      r.print ();
                      (* pass thresholds don't apply mid-storm; graceful
                         completion is the bar, as for experiment --faults *)
                      cell.Spec.fault <> None || r.ok))
                pairs
          in
          (* Phase B: meter serially, in expansion order. *)
          let reps = max 1 spec.Spec.repeats in
          let data =
            List.map2
              (fun (cell, comp) ok ->
                with_cell_ctx cell (fun () ->
                    ignore (comp.kernel ());  (* warm-up: first-run table growth *)
                    let pct = ref [] in
                    let t0 = Unix.gettimeofday () in
                    let w0 = Gc.minor_words () in
                    for _ = 1 to reps do
                      pct := comp.kernel ()
                    done;
                    let w1 = Gc.minor_words () in
                    let t1 = Unix.gettimeofday () in
                    Mb_obs.Ctl.set { Mb_obs.Ctl.trace = false; metrics = true };
                    ignore (comp.kernel ());
                    let totals = Mb_obs.Recorder.totals (Mb_obs.Collect.drain ()) in
                    Mb_obs.Ctl.set Mb_obs.Ctl.off;
                    ( cell,
                      { History.ok;
                        ns_per_run = (t1 -. t0) *. 1e9 /. float_of_int reps;
                        minor_words_per_run = (w1 -. w0) /. float_of_int reps;
                        counters =
                          List.filter (fun (k, _) -> List.mem k headline_counters) totals;
                        percentiles = !pct;
                      } )))
              pairs oks
          in
          Ok data)
