(** The kernel regression gate over a pair of [BENCH_kernels.json]
    files — the library half of [bench/compare.exe], factored out so
    the pass/fail logic is unit-testable against synthetic files.

    Absolute ns/run numbers are not comparable across hosts, so the
    gate works on per-kernel ratios fresh/baseline normalized by the
    {e median} ratio: the median cancels the overall host-speed factor
    (and most of a shared noise term), leaving each kernel's speed
    relative to the rest of the fleet. Degenerate shared sets are
    guarded: with fewer than three shared kernels there is no fleet to
    normalize against (a singleton would always normalize to exactly
    1.0 and hide any regression), so the gate falls back to raw ratios
    and says so; an empty shared set fails outright.

    Two further checks ride along: host provenance (schema 3) — a
    warning carrying both host blocks when they differ, or when only
    one side has one (schema-2 vs schema-3) — and an allocation-rate
    gate on [kernel_gc.minor_words_per_run], which is
    host-independent and therefore compared raw. *)

type report = {
  lines : string list;           (** the human-readable report, in order *)
  warnings : string list;        (** subset of [lines]: non-fatal notices *)
  regressions : string list;     (** kernels over the normalized threshold *)
  gc_regressions : string list;  (** kernels over the minor-words threshold *)
  missing : string list;         (** in baseline, absent from fresh — fails *)
  added : string list;           (** fresh-only kernels — tolerated *)
  ok : bool;
}

val compare_files :
  ?threshold:float ->
  ?gc_threshold:float ->
  baseline:string ->
  fresh:string ->
  unit ->
  (report, string) result
(** [?threshold] is the normalized ns/run ratio limit (default 1.10),
    [?gc_threshold] the raw minor-words ratio limit (default 1.25).
    [Error] on unreadable or malformed files (usage errors, exit 2 in
    the CLI); a comparison that ran but found regressions is
    [Ok { ok = false; _ }] (exit 1). *)

val main : string list -> int
(** The [compare.exe] entry point: argv in, exit status out
    (0 ok, 1 regressions/missing kernels, 2 usage or parse errors).
    Prints the report to stdout and errors to stderr. *)
