(** The trend-aware CI regression gate: {!Compare} generalized from a
    file pair to the session history.

    The fresh session (the newest in the history) is compared against
    a baseline built from the last [n] earlier sessions recorded {e on
    the same host} (equal {!History.host} blocks — wall-clock numbers
    from another machine are not a baseline). Each cell's baseline
    value is the median over those sessions, which rides out one noisy
    CI run; the per-cell ratios fresh/baseline are then normalized by
    their median across cells to cancel whatever uniform speed factor
    this particular run carried (a cold file cache, a busy neighbour).

    A cell whose normalized ns/run ratio exceeds [threshold] fails;
    a cell whose raw minor-words ratio exceeds [gc_threshold] fails
    (GC words are host-independent, so no normalization applies).
    Cells only present in the fresh session warn (new benchmarks land
    before their baseline does), as do cells that every baseline
    session had but the fresh one dropped. With no same-host earlier
    session there is nothing to gate against: the verdict passes with
    a warning, which is what lets the first session on a new CI image
    seed its own baseline. *)

type verdict = {
  lines : string list;        (** the printed report, in order *)
  warnings : string list;
  regressions : string list;  (** cell keys over [threshold] *)
  gc_regressions : string list;
  ok : bool;
}

val check :
  ?last:int ->
  ?threshold:float ->
  ?gc_threshold:float ->
  ?scale_first:float ->
  History.t ->
  (verdict, string) result
(** [check history] gates the newest session. [?last] is the baseline
    window (default 5 sessions); [?threshold] the normalized ns/run
    ratio limit and [?gc_threshold] the raw minor-words ratio limit
    (both default 1.25). [?scale_first] is the self-test hook: multiply
    the fresh session's first cell's ns/run by this factor before
    gating, so CI can assert the gate {e demonstrably fails} on a
    synthetic regression without doctoring the history file. [Error]
    when the history holds no sessions at all. *)
