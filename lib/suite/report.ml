let last_n n xs =
  let len = List.length xs in
  if len <= n then xs else List.filteri (fun i _ -> i >= len - n) xs

(* Every cell key that appears in any selected session, in first-seen
   order — a cell that joins the suite later appends to the bottom
   instead of reshuffling the table. *)
let all_keys sessions =
  List.fold_left
    (fun acc s ->
      List.fold_left
        (fun acc (key, _) -> if List.mem key acc then acc else key :: acc)
        acc s.History.cells)
    [] sessions
  |> List.rev

let render ?(last = 8) (history : History.t) =
  let sessions = last_n last history.History.sessions in
  if sessions = [] then "report: history holds no sessions\n"
  else begin
    let n = List.length sessions in
    (* Short relative labels: s-3 ... s-1, s0 (newest). *)
    let label i = if i = n - 1 then "s0" else Printf.sprintf "s-%d" (n - 1 - i) in
    let header metric = metric :: List.mapi (fun i _ -> label i) sessions in
    let table metric get fmt =
      let t = Mb_report.Table.make ~title:(Printf.sprintf "trend: %s" metric) ~header:(header metric) in
      List.iter
        (fun key ->
          Mb_report.Table.row t
            (key
            :: List.map
                 (fun s ->
                   match List.assoc_opt key s.History.cells with
                   | Some c -> Printf.sprintf fmt (get c)
                   | None -> "-")
                 sessions))
        (all_keys sessions);
      Mb_report.Table.to_string t
    in
    let b = Buffer.create 1024 in
    Buffer.add_string b (table "ns/run" (fun c -> c.History.ns_per_run) "%.0f");
    Buffer.add_char b '\n';
    Buffer.add_string b
      (table "minor words/run" (fun c -> c.History.minor_words_per_run) "%.0f");
    Buffer.add_string b "\nsessions:\n";
    List.iteri
      (fun i s ->
        let tm = Unix.gmtime s.History.time_s in
        Buffer.add_string b
          (Printf.sprintf "  %-4s %s  %04d-%02d-%02d %02d:%02d:%02d UTC  suite %s (%s, seed %d)  host %s\n"
             (label i) s.History.id (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
             tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec s.History.suite
             s.History.mode s.History.seed
             (History.host_to_string s.History.host)))
      sessions;
    Buffer.contents b
  end

let to_csv ?(last = 8) (history : History.t) =
  let sessions = last_n last history.History.sessions in
  let header =
    [ "session"; "time_s"; "suite"; "host_cores"; "host_domains"; "cell"; "ok";
      "ns_per_run"; "minor_words_per_run"; "p50_ns"; "p95_ns"; "p99_ns" ]
  in
  let pct c name =
    match List.assoc_opt name c.History.percentiles with
    | Some v -> Printf.sprintf "%.1f" v
    | None -> ""
  in
  let rows =
    List.concat_map
      (fun s ->
        List.map
          (fun (key, c) ->
            [ s.History.id;
              Printf.sprintf "%.0f" s.History.time_s;
              s.History.suite;
              string_of_int s.History.host.History.cores;
              string_of_int s.History.host.History.domains;
              key;
              (if c.History.ok then "1" else "0");
              Printf.sprintf "%.1f" c.History.ns_per_run;
              Printf.sprintf "%.1f" c.History.minor_words_per_run;
              pct c "p50_ns";
              pct c "p95_ns";
              pct c "p99_ns";
            ])
          s.History.cells)
      sessions
  in
  Mb_report.Csv.of_rows (header :: rows)
