(** The per-session result history: what turns the bench harness from a
    one-shot tool into a continuous-benchmarking system.

    Every suite run gets a session id; its per-cell results (host
    ns/run, host GC minor words/run, selected simulation counters, and
    the open-loop server's request percentiles) append to a JSON
    history file together with a schema version and a host block. The
    {!Report} module renders cross-session trend tables from the file
    and the {!Gate} module fails CI when the newest session regresses
    against the recorded trend on the same host. *)

val schema : int
(** Current history schema (1). {!load} rejects files from the
    future; older schemas would be migrated here. *)

type host = { cores : int; cpu_model : string; domains : int }
(** Provenance of a session's wall-clock numbers. ns/run values are
    only comparable between sessions whose host blocks match — the
    gate filters its baseline set on exactly this record. *)

val current_host : unit -> host
(** Cores from [Domain.recommended_domain_count], the cpu model from
    [/proc/cpuinfo] (["unknown"] where that fails), domains from
    [MALLOC_REPRO_DOMAINS] (default 1). *)

val host_to_string : host -> string
(** One-line canonical rendering for reports and warnings. *)

type cell_data = {
  ok : bool;                          (** experiment checks passed (forced
                                          true under an armed fault plan) *)
  ns_per_run : float;                 (** host wall clock per execution *)
  minor_words_per_run : float;        (** host GC pressure per execution *)
  counters : (string * int) list;     (** headline simulation counters *)
  percentiles : (string * float) list;
      (** open-loop server cells: [p50_ns]/[p95_ns]/[p99_ns]; empty
          for other workloads *)
}

type session = {
  id : string;
  time_s : float;  (** unix epoch seconds at session start *)
  suite : string;
  mode : string;   (** ["quick"] or ["full"] *)
  seed : int;
  host : host;
  cells : (string * cell_data) list;  (** keyed by {!Spec.cell}[.key], expansion order *)
}

type t = { sessions : session list }
(** Chronological: oldest first, newest last. *)

val empty : t

val load : string -> (t, string) result
(** Reads a history file. A missing file is [Ok empty] (the first
    session creates it); a malformed or future-schema file is
    [Error]. *)

val append : string -> session -> (t, string) result
(** [append path session] loads [path], appends [session] and
    rewrites the file atomically (write to [path ^ ".tmp"], rename).
    Returns the new history. *)

val save : string -> t -> unit

val generate_id : unit -> string
(** [YYYYMMDD-HHMMSS-PID] (UTC), overridable for reproducible tests
    with [MALLOC_REPRO_SESSION_ID]. *)
