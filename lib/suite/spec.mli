(** Declarative benchmark-suite specs (LMBench-style orchestration).

    A suite file declares the cartesian product the runner should
    expand — machines x allocators x workloads x fault plans x env
    knobs — once, instead of hand-wiring it through CLI flags. The
    format is line-based, one directive per line:

    {v
    # comments and blank lines are ignored
    suite quick-registry
    mode quick
    seed 1
    machines quad_xeon uni_k6
    allocators ptmalloc serial
    workloads exp:* bench2 server
    faults none oom-pressure:7
    env default shards=2,domains=2
    repeats 1
    v}

    [suite] and [workloads] are required; every other directive has a
    default ([mode quick], [seed 1], [machines quad_xeon],
    [allocators ptmalloc], [faults none], [env default], [repeats 1]).
    Directives may appear in any order but at most once, and the
    entries of each axis must be distinct (duplicate entries would
    expand to colliding cell keys in the history file).

    {!of_string} and {!to_string} round-trip: parsing the printed form
    of a spec yields the same spec, which is what lets a suite file be
    regenerated, diffed and property-tested. Parse errors carry the
    1-based line number of the offending directive. *)

type env = {
  shards : int option;        (** [MALLOC_REPRO_SHARDS] for the cell *)
  domains : int option;       (** [MALLOC_REPRO_DOMAINS] *)
  window_batch : int option;  (** [MALLOC_REPRO_WINDOW_BATCH] *)
}

val default_env : env
(** All [None]: the engine's own defaults, printed as [default]. *)

type workload =
  | Exp of string  (** one experiment-registry id, written [exp:ID] *)
  | Exp_all        (** the whole registry in registry order, [exp:*] *)
  | Bench1         (** the scalability microbenchmark at suite scale *)
  | Bench2         (** the heap-leak microbenchmark *)
  | Bench3         (** the false-sharing microbenchmark *)
  | Server_open    (** the open-loop server just past its knee *)

type t = {
  name : string;
  mode : [ `Quick | `Full ];
  seed : int;
  machines : string list;    (** {!Mb_machine.Configs} names *)
  allocators : string list;  (** {!Mb_workload.Factory} names *)
  workloads : workload list;
  faults : (Mb_fault.Plan.t * int) option list;  (** [None] = no faults *)
  envs : env list;
  repeats : int;  (** timed repetitions per cell in the metering phase *)
}

val of_string : string -> (t, string) result
(** Parses a suite file. [Error] messages are prefixed
    ["line N: ..."] for the directive that failed; missing required
    directives report against the end of the file. *)

val to_string : t -> string
(** Canonical form: every directive printed, fixed order, one per
    line. [of_string (to_string t) = Ok t]. *)

(** {1 Expansion} *)

type cell = {
  key : string;  (** canonical id, e.g. [bench2\@uni_k6/ptmalloc+oom-pressure:7+domains2] *)
  workload : workload;          (** never [Exp_all]; resolved to [Exp id] *)
  machine : string option;      (** [None] for experiment cells (baked in) *)
  allocator : string option;
  fault : (Mb_fault.Plan.t * int) option;
  env : env;
  cell_seed : int;              (** derived deterministically from the spec seed *)
}

val expand : t -> exp_ids:string list -> (cell list, string) result
(** Expands the product in a deterministic order: workloads in spec
    order (with [exp:*] replaced by [exp_ids] in registry order), then
    machines x allocators (bench workloads only — experiment cells
    carry their machines and allocators in the registry), then fault
    plans, then envs, each innermost axis varying fastest. Experiment
    cells use the spec seed unchanged so a faults-off, default-env
    suite reproduces a direct registry run byte-identically; bench
    cells get [seed + 101*k] with [k] the cell's ordinal within its
    workload block. [Error] on an [exp:ID] not present in [exp_ids]. *)

val env_to_string : env -> string
(** [default], or comma-joined [shards=N,domains=N,window-batch=N]
    with absent knobs omitted. *)
