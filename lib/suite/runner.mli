(** Expands a {!Spec} through the existing domain pool and meters each
    cell for the {!History} file.

    A run has two phases, mirroring the bench harness:

    {b Phase A — execute and print.} Every cell runs once and prints
    its result block. When the suite is {e pure} — every fault plan is
    [none] and every env entry is [default] — cells are fanned out
    over {!Mb_parallel.Pool} exactly like the experiment registry
    (tasks print nothing; the joining domain prints in expansion
    order), so a suite whose cells are the registry produces output
    byte-identical to a direct registry run at any pool width. Fault
    arming and the [MALLOC_REPRO_*] env knobs are process-global, so
    a suite that uses either runs its phase-A cells serially, each
    under its own settings.

    {b Phase B — meter.} Always serial, in expansion order: each cell
    re-runs [repeats] times under wall-clock and [Gc.minor_words]
    deltas, then once more with metrics observation armed to collect
    the headline simulation counters. Open-loop server cells also
    record their request-latency percentiles. Nothing prints; the
    results become the session's {!History.cell_data}.

    Note on env knobs: [MALLOC_REPRO_SHARDS] has no constant default
    (a machine defaults to [cpus + 1] shards), and the Unix
    environment cannot portably unset a variable, so after a cell that
    sets it the previous value is restored when there was one and the
    variable otherwise stays set. This is observationally harmless —
    schedules are byte-identical at any shard count (determinism
    invariant 5) — but a process that cares should set the variable
    explicitly. [MALLOC_REPRO_DOMAINS] and
    [MALLOC_REPRO_WINDOW_BATCH] restore to their documented defaults
    (1 and {!Mb_parallel.Conservative.default_batch}). *)

type exp_result = {
  print : unit -> unit;  (** prints the outcome block, e.g. [Outcome.print] *)
  ok : bool;             (** all of the experiment's checks passed *)
}

type exp_registry = {
  exp_ids : string list;
  (** registry order; [exp:*] expands to exactly this list *)
  exp_run : string -> quick:bool -> seed:int -> (unit -> exp_result) option;
  (** the per-id runner; [None] for an unknown id. The returned thunk
      performs the actual (pure, unprinted) computation. *)
}
(** The experiment registry, injected by the caller: the registry
    lives in [lib/core], which depends on this library, so the suite
    layer sees it only through this record
    ({!Core.Experiments.suite_registry} builds it). *)

val headline_counters : string list
(** The simulation counters phase B records per cell — the same
    headline set the bench harness embeds in [BENCH_kernels.json]. *)

val run :
  ?jobs:int ->
  registry:exp_registry ->
  Spec.t ->
  ((Spec.cell * History.cell_data) list, string) result
(** Runs the suite. [?jobs] forces a dedicated pool width for pure
    suites (default: the global pool). Cells under an armed fault
    plan report [ok = true] when they complete gracefully — the
    paper's pass thresholds don't apply mid-storm, matching the
    [experiment --faults] exit-gate rule. [Error] on expansion
    failures (unknown experiment ids, colliding cell keys). *)
