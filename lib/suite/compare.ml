type report = {
  lines : string list;
  warnings : string list;
  regressions : string list;
  gc_regressions : string list;
  missing : string list;
  added : string list;
  ok : bool;
}

let ( let* ) = Result.bind

let read_json path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Error (Printf.sprintf "compare: cannot read %s: %s" path e)
  | text -> Result.map_error (Printf.sprintf "compare: %s: %s" path) (Json.of_string text)

let kernels_of j path =
  match Json.member "kernels_ns_per_run" j with
  | Some (Json.Obj fields) ->
      List.fold_left
        (fun acc (k, v) ->
          let* acc = acc in
          match Json.to_float v with
          | Some v -> Ok ((k, v) :: acc)
          | None -> Error (Printf.sprintf "compare: %s: bad number for %s" path k))
        (Ok []) fields
      |> Result.map List.rev
  | Some _ -> Error (Printf.sprintf "compare: %s: malformed kernels_ns_per_run" path)
  | None -> Error (Printf.sprintf "compare: %s: no kernels_ns_per_run field" path)

(* The host block, rendered back to one canonical line for the
   mismatch warning. None for schema-2 files, which predate it. *)
let host_of j = Option.map (Json.to_string ?indent:None) (Json.member "host" j)

(* "kernel_gc": { "name": {"minor_words_per_run": X, ...}, ... } *)
let gc_minor_of j =
  match Json.member "kernel_gc" j with
  | Some (Json.Obj fields) ->
      List.filter_map
        (fun (k, v) ->
          Option.map (fun m -> (k, m)) (Option.bind (Json.member "minor_words_per_run" v) Json.to_float))
        fields
  | _ -> []

let median = function
  | [] -> invalid_arg "median of empty list"
  | xs ->
      let sorted = List.sort compare xs in
      let n = List.length sorted in
      if n mod 2 = 1 then List.nth sorted (n / 2)
      else (List.nth sorted ((n / 2) - 1) +. List.nth sorted (n / 2)) /. 2.

let compare_files ?(threshold = 1.10) ?(gc_threshold = 1.25) ~baseline ~fresh () =
  let* base_json = read_json baseline in
  let* fresh_json = read_json fresh in
  let* base = kernels_of base_json baseline in
  let* fresh_kernels = kernels_of fresh_json fresh in
  let lines = ref [] and warnings = ref [] in
  let say fmt = Printf.ksprintf (fun s -> lines := s :: !lines) fmt in
  let warn fmt =
    Printf.ksprintf
      (fun s ->
        lines := s :: !lines;
        warnings := s :: !warnings)
      fmt
  in
  (* Host provenance: warn whenever the two files don't carry the same
     block — including when only one carries one at all (schema-2 files
     have none), so a cross-schema comparison is never silent. *)
  (match (host_of base_json, host_of fresh_json) with
  | Some b, Some f when b <> f ->
      warn "compare: WARNING: host mismatch\n  baseline %s\n  fresh    %s" b f
  | Some b, None ->
      warn "compare: WARNING: fresh file has no host block (schema 2)\n  baseline %s" b
  | None, Some f ->
      warn "compare: WARNING: baseline has no host block (schema 2)\n  fresh    %s" f
  | Some _, Some _ | None, None -> ());
  let missing =
    List.filter (fun (k, _) -> not (List.mem_assoc k fresh_kernels)) base |> List.map fst
  in
  let added =
    List.filter (fun (k, _) -> not (List.mem_assoc k base)) fresh_kernels |> List.map fst
  in
  let common =
    List.filter_map
      (fun (k, b) ->
        match List.assoc_opt k fresh_kernels with
        | Some f when b > 0. -> Some (k, b, f, f /. b)
        | _ -> None)
      base
    |> List.sort compare
  in
  if common = [] then begin
    say "compare: FAIL (no kernels in common)";
    Ok
      { lines = List.rev !lines;
        warnings = List.rev !warnings;
        regressions = [];
        gc_regressions = [];
        missing;
        added;
        ok = false;
      }
  end
  else begin
    (* Median normalization needs a fleet: with one shared kernel the
       ratio normalizes to exactly 1.0 (hiding any regression), and
       with two the median is their mean (a shared regression cancels
       itself). Below three, gate on raw ratios and say so. *)
    let m =
      if List.length common >= 3 then median (List.map (fun (_, _, _, r) -> r) common)
      else begin
        warn
          "compare: WARNING: only %d shared kernel(s) — too few to estimate the host \
           factor, gating on raw ratios"
          (List.length common);
        1.0
      end
    in
    say "compare: %d kernels, host factor (median ratio) %.3f, threshold %.2f"
      (List.length common) m threshold;
    let regressions = ref [] in
    List.iter
      (fun (k, b, f, r) ->
        let norm = r /. m in
        let flag =
          if norm > threshold then begin
            regressions := k :: !regressions;
            "  <-- REGRESSION"
          end
          else ""
        in
        say "  %-16s %14.1f -> %14.1f ns/run  ratio %.3f  normalized %.3f%s" k b f r norm flag)
      common;
    List.iter (fun k -> say "  %-16s only in fresh run (no baseline yet)" k) added;
    List.iter (fun k -> say "  %-16s MISSING from fresh run" k) missing;
    let gc_regressions = ref [] in
    let base_gc = gc_minor_of base_json and fresh_gc = gc_minor_of fresh_json in
    List.iter
      (fun (k, b) ->
        match List.assoc_opt k fresh_gc with
        | Some f when b > 0. ->
            let r = f /. b in
            if r > gc_threshold then begin
              gc_regressions := k :: !gc_regressions;
              say "  %-16s minor words %.0f -> %.0f per run  ratio %.3f  <-- GC REGRESSION" k
                b f r
            end
        | _ -> ())
      base_gc;
    let ok = missing = [] && !regressions = [] && !gc_regressions = [] in
    if ok then say "compare: OK"
    else
      say "compare: FAIL (%d regression(s), %d GC regression(s), %d missing)"
        (List.length !regressions)
        (List.length !gc_regressions)
        (List.length missing);
    Ok
      { lines = List.rev !lines;
        warnings = List.rev !warnings;
        regressions = List.rev !regressions;
        gc_regressions = List.rev !gc_regressions;
        missing;
        added;
        ok;
      }
  end

let main argv =
  let usage () =
    prerr_endline "usage: compare BASELINE.json FRESH.json [THRESHOLD]";
    2
  in
  let run ~baseline ~fresh ~threshold =
    match compare_files ~threshold ~baseline ~fresh () with
    | Error msg ->
        prerr_endline msg;
        2
    | Ok report ->
        List.iter print_endline report.lines;
        if report.ok then 0 else 1
  in
  match argv with
  | [ _; b; f ] -> run ~baseline:b ~fresh:f ~threshold:1.10
  | [ _; b; f; t ] -> (
      match float_of_string_opt t with
      | Some t when t > 1.0 -> run ~baseline:b ~fresh:f ~threshold:t
      | _ ->
          prerr_endline "compare: threshold must be a float > 1.0";
          2)
  | _ -> usage ()
