(** Cross-session trend rendering over the {!History} file.

    The text report is two fixed-width tables — ns/run and GC minor
    words/run per cell, one column per session, oldest to newest, with
    a legend mapping the short column labels back to session ids,
    suites and hosts. The CSV export is long-format (one row per
    session x cell) so external tooling can pivot it however it
    likes. *)

val render : ?last:int -> History.t -> string
(** Text trend tables over the last [last] sessions (default 8). *)

val to_csv : ?last:int -> History.t -> string
(** [session,time_s,suite,host_cores,host_domains,cell,ok,ns_per_run,
    minor_words_per_run,p50_ns,p95_ns,p99_ns] — percentile fields are
    empty for cells that don't record them. *)
