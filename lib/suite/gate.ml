type verdict = {
  lines : string list;
  warnings : string list;
  regressions : string list;
  gc_regressions : string list;
  ok : bool;
}

let median = function
  | [] -> invalid_arg "median of empty list"
  | xs ->
      let sorted = List.sort compare xs in
      let n = List.length sorted in
      if n mod 2 = 1 then List.nth sorted (n / 2)
      else (List.nth sorted ((n / 2) - 1) +. List.nth sorted (n / 2)) /. 2.

let last_n n xs =
  let len = List.length xs in
  if len <= n then xs else List.filteri (fun i _ -> i >= len - n) xs

let check ?(last = 5) ?(threshold = 1.25) ?(gc_threshold = 1.25) ?scale_first
    (history : History.t) =
  match List.rev history.History.sessions with
  | [] -> Error "gate: history holds no sessions"
  | fresh :: earlier_rev ->
      let fresh =
        match (scale_first, fresh.History.cells) with
        | Some factor, (key, c) :: rest ->
            { fresh with
              History.cells =
                (key, { c with History.ns_per_run = c.History.ns_per_run *. factor }) :: rest
            }
        | _ -> fresh
      in
      let lines = ref [] and warnings = ref [] in
      let say fmt = Printf.ksprintf (fun s -> lines := s :: !lines) fmt in
      let warn fmt =
        Printf.ksprintf
          (fun s ->
            lines := s :: !lines;
            warnings := s :: !warnings)
          fmt
      in
      let earlier = List.rev earlier_rev in
      let same_host = List.filter (fun s -> s.History.host = fresh.History.host) earlier in
      (match List.filter (fun s -> s.History.host <> fresh.History.host) earlier with
      | [] -> ()
      | others ->
          warn "gate: note: ignoring %d session(s) from other hosts (fresh host %s)"
            (List.length others)
            (History.host_to_string fresh.History.host));
      let baselines = last_n last same_host in
      say "gate: fresh session %s (%s, %d cells) vs %d baseline session(s) on %s"
        fresh.History.id fresh.History.suite
        (List.length fresh.History.cells)
        (List.length baselines)
        (History.host_to_string fresh.History.host);
      if baselines = [] then begin
        warn
          "gate: WARNING: no earlier session on this host — nothing to gate against, \
           this session seeds the baseline";
        say "gate: OK (vacuous)";
        Ok
          { lines = List.rev !lines;
            warnings = List.rev !warnings;
            regressions = [];
            gc_regressions = [];
            ok = true;
          }
      end
      else begin
        let baseline_of key get =
          match
            List.filter_map
              (fun s ->
                match List.assoc_opt key s.History.cells with
                | Some c ->
                    let v = get c in
                    if v > 0. then Some v else None
                | None -> None)
              baselines
          with
          | [] -> None
          | vs -> Some (median vs)
        in
        (* Shared cells: fresh x (median of the same-host window). *)
        let shared =
          List.filter_map
            (fun (key, c) ->
              match baseline_of key (fun c -> c.History.ns_per_run) with
              | Some b when c.History.ns_per_run > 0. ->
                  Some (key, b, c.History.ns_per_run, c.History.ns_per_run /. b)
              | _ -> None)
            fresh.History.cells
        in
        let fresh_only =
          List.filter_map
            (fun (key, _) ->
              if List.exists (fun (k, _, _, _) -> k = key) shared then None else Some key)
            fresh.History.cells
        in
        (* A cell every baseline session recorded but the fresh one
           dropped: suite specs do change deliberately, so this warns
           rather than fails — unlike compare.exe, whose two files are
           supposed to describe the same kernel set. *)
        let dropped =
          match baselines with
          | [] -> []
          | b0 :: rest ->
              List.filter_map
                (fun (key, _) ->
                  if
                    List.for_all (fun s -> List.mem_assoc key s.History.cells) rest
                    && not (List.mem_assoc key fresh.History.cells)
                  then Some key
                  else None)
                b0.History.cells
        in
        if shared = [] then begin
          say "gate: FAIL (no cells in common with the baseline window)";
          Ok
            { lines = List.rev !lines;
              warnings = List.rev !warnings;
              regressions = [];
              gc_regressions = [];
              ok = false;
            }
        end
        else begin
          let m =
            if List.length shared >= 3 then median (List.map (fun (_, _, _, r) -> r) shared)
            else begin
              warn
                "gate: WARNING: only %d shared cell(s) — too few to estimate the host \
                 factor, gating on raw ratios"
                (List.length shared);
              1.0
            end
          in
          say "gate: %d shared cells, host factor (median ratio) %.3f, threshold %.2f"
            (List.length shared) m threshold;
          let regressions = ref [] in
          List.iter
            (fun (key, b, f, r) ->
              let norm = r /. m in
              let flag =
                if norm > threshold then begin
                  regressions := key :: !regressions;
                  "  <-- REGRESSION"
                end
                else ""
              in
              say "  %-40s %12.0f -> %12.0f ns/run  ratio %.3f  normalized %.3f%s" key b f r
                norm flag)
            shared;
          List.iter (fun k -> warn "  %-40s only in fresh session (no baseline yet)" k)
            fresh_only;
          List.iter (fun k -> warn "  %-40s dropped since the baseline window" k) dropped;
          let gc_regressions = ref [] in
          List.iter
            (fun (key, c) ->
              match baseline_of key (fun c -> c.History.minor_words_per_run) with
              | Some b when c.History.minor_words_per_run > 0. ->
                  let r = c.History.minor_words_per_run /. b in
                  if r > gc_threshold then begin
                    gc_regressions := key :: !gc_regressions;
                    say "  %-40s minor words %.0f -> %.0f per run  ratio %.3f  <-- GC REGRESSION"
                      key b c.History.minor_words_per_run r
                  end
              | _ -> ())
            fresh.History.cells;
          let ok = !regressions = [] && !gc_regressions = [] in
          if ok then say "gate: OK"
          else
            say "gate: FAIL (%d regression(s), %d GC regression(s))"
              (List.length !regressions)
              (List.length !gc_regressions);
          Ok
            { lines = List.rev !lines;
              warnings = List.rev !warnings;
              regressions = List.rev !regressions;
              gc_regressions = List.rev !gc_regressions;
              ok;
            }
        end
      end
