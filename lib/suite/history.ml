let schema = 1

type host = { cores : int; cpu_model : string; domains : int }

type cell_data = {
  ok : bool;
  ns_per_run : float;
  minor_words_per_run : float;
  counters : (string * int) list;
  percentiles : (string * float) list;
}

type session = {
  id : string;
  time_s : float;
  suite : string;
  mode : string;
  seed : int;
  host : host;
  cells : (string * cell_data) list;
}

type t = { sessions : session list }

let empty = { sessions = [] }

(* --- host block --------------------------------------------------------- *)

let host_cpu_model () =
  match
    In_channel.with_open_text "/proc/cpuinfo" (fun ic ->
        let rec scan () =
          match In_channel.input_line ic with
          | None -> None
          | Some line -> (
              match String.index_opt line ':' with
              | Some i when String.length line >= 10 && String.sub line 0 10 = "model name" ->
                  Some (String.trim (String.sub line (i + 1) (String.length line - i - 1)))
              | _ -> scan ())
        in
        scan ())
  with
  | Some model -> model
  | None | (exception Sys_error _) -> "unknown"

let current_host () =
  { cores = Domain.recommended_domain_count ();
    cpu_model = host_cpu_model ();
    domains =
      (match Sys.getenv_opt "MALLOC_REPRO_DOMAINS" with
      | Some v -> ( match int_of_string_opt v with Some d when d > 0 -> d | _ -> 1)
      | None -> 1);
  }

let host_to_string h =
  Printf.sprintf "{cores %d, domains %d, \"%s\"}" h.cores h.domains h.cpu_model

(* --- JSON mapping ------------------------------------------------------- *)

let json_of_host h =
  Json.Obj
    [ ("cores", Json.Num (float_of_int h.cores));
      ("cpu_model", Json.Str h.cpu_model);
      ("domains", Json.Num (float_of_int h.domains));
    ]

let json_of_cell c =
  Json.Obj
    [ ("ok", Json.Bool c.ok);
      ("ns_per_run", Json.Num c.ns_per_run);
      ("minor_words_per_run", Json.Num c.minor_words_per_run);
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Num (float_of_int v))) c.counters));
      ("percentiles", Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) c.percentiles));
    ]

let json_of_session s =
  Json.Obj
    [ ("id", Json.Str s.id);
      ("time_s", Json.Num s.time_s);
      ("suite", Json.Str s.suite);
      ("mode", Json.Str s.mode);
      ("seed", Json.Num (float_of_int s.seed));
      ("host", json_of_host s.host);
      ("cells", Json.Obj (List.map (fun (k, c) -> (k, json_of_cell c)) s.cells));
    ]

let json_of_t t =
  Json.Obj
    [ ("schema", Json.Num (float_of_int schema));
      ("sessions", Json.Arr (List.map json_of_session t.sessions));
    ]

(* Parsing is as strict as the writer: a field the writer always emits
   is required, so a hand-mangled history fails loudly instead of
   gating on garbage. *)
let field what name conv j =
  match Option.bind (Json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "history: %s: missing or malformed %S" what name)

let ( let* ) = Result.bind

let host_of_json j =
  let* cores = field "host" "cores" Json.to_int j in
  let* cpu_model = field "host" "cpu_model" Json.to_str j in
  let* domains = field "host" "domains" Json.to_int j in
  Ok { cores; cpu_model; domains }

let assoc_of_json what conv j =
  match j with
  | Json.Obj fields ->
      List.fold_left
        (fun acc (k, v) ->
          let* acc = acc in
          match conv v with
          | Some v -> Ok ((k, v) :: acc)
          | None -> Error (Printf.sprintf "history: %s: malformed entry %S" what k))
        (Ok []) fields
      |> Result.map List.rev
  | _ -> Error (Printf.sprintf "history: %s: expected an object" what)

let cell_of_json key j =
  let what = Printf.sprintf "cell %s" key in
  let* ok = field what "ok" (function Json.Bool b -> Some b | _ -> None) j in
  let* ns_per_run = field what "ns_per_run" Json.to_float j in
  let* minor_words_per_run = field what "minor_words_per_run" Json.to_float j in
  let* counters =
    match Json.member "counters" j with
    | Some c -> assoc_of_json what Json.to_int c
    | None -> Ok []
  in
  let* percentiles =
    match Json.member "percentiles" j with
    | Some p -> assoc_of_json what Json.to_float p
    | None -> Ok []
  in
  Ok { ok; ns_per_run; minor_words_per_run; counters; percentiles }

let session_of_json j =
  let* id = field "session" "id" Json.to_str j in
  let what = Printf.sprintf "session %s" id in
  let* time_s = field what "time_s" Json.to_float j in
  let* suite = field what "suite" Json.to_str j in
  let* mode = field what "mode" Json.to_str j in
  let* seed = field what "seed" Json.to_int j in
  let* host =
    match Json.member "host" j with
    | Some h -> host_of_json h
    | None -> Error (Printf.sprintf "history: %s: missing host block" what)
  in
  let* cells =
    match Json.member "cells" j with
    | Some (Json.Obj fields) ->
        List.fold_left
          (fun acc (k, v) ->
            let* acc = acc in
            let* c = cell_of_json k v in
            Ok ((k, c) :: acc))
          (Ok []) fields
        |> Result.map List.rev
    | _ -> Error (Printf.sprintf "history: %s: missing cells object" what)
  in
  Ok { id; time_s; suite; mode; seed; host; cells }

let of_json j =
  let* file_schema = field "history" "schema" Json.to_int j in
  if file_schema > schema then
    Error
      (Printf.sprintf "history: schema %d is newer than this binary understands (%d)"
         file_schema schema)
  else
    let* sessions =
      match Json.member "sessions" j with
      | Some (Json.Arr xs) ->
          List.fold_left
            (fun acc x ->
              let* acc = acc in
              let* s = session_of_json x in
              Ok (s :: acc))
            (Ok []) xs
          |> Result.map List.rev
      | _ -> Error "history: missing sessions array"
    in
    Ok { sessions }

(* --- file IO ------------------------------------------------------------ *)

let load path =
  if not (Sys.file_exists path) then Ok empty
  else
    match In_channel.with_open_bin path In_channel.input_all with
    | exception Sys_error e -> Error (Printf.sprintf "history: cannot read %s: %s" path e)
    | text ->
        let* j =
          Result.map_error (Printf.sprintf "history: %s: %s" path) (Json.of_string text)
        in
        of_json j

let save path t =
  let tmp = path ^ ".tmp" in
  Out_channel.with_open_bin tmp (fun oc ->
      Out_channel.output_string oc (Json.to_string ~indent:2 (json_of_t t));
      Out_channel.output_char oc '\n');
  Sys.rename tmp path

let append path session =
  let* t = load path in
  let t = { sessions = t.sessions @ [ session ] } in
  save path t;
  Ok t

let generate_id () =
  match Sys.getenv_opt "MALLOC_REPRO_SESSION_ID" with
  | Some id when id <> "" -> id
  | _ ->
      let tm = Unix.gmtime (Unix.gettimeofday ()) in
      Printf.sprintf "%04d%02d%02d-%02d%02d%02d-%d" (tm.Unix.tm_year + 1900)
        (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec
        (Unix.getpid ())
