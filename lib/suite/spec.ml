type env = { shards : int option; domains : int option; window_batch : int option }

let default_env = { shards = None; domains = None; window_batch = None }

type workload = Exp of string | Exp_all | Bench1 | Bench2 | Bench3 | Server_open

type t = {
  name : string;
  mode : [ `Quick | `Full ];
  seed : int;
  machines : string list;
  allocators : string list;
  workloads : workload list;
  faults : (Mb_fault.Plan.t * int) option list;
  envs : env list;
  repeats : int;
}

(* --- printing ----------------------------------------------------------- *)

let workload_to_string = function
  | Exp id -> "exp:" ^ id
  | Exp_all -> "exp:*"
  | Bench1 -> "bench1"
  | Bench2 -> "bench2"
  | Bench3 -> "bench3"
  | Server_open -> "server"

let env_to_string e =
  let parts =
    List.filter_map
      (fun (k, v) -> Option.map (Printf.sprintf "%s=%d" k) v)
      [ ("shards", e.shards); ("domains", e.domains); ("window-batch", e.window_batch) ]
  in
  if parts = [] then "default" else String.concat "," parts

let to_string t =
  let line k vs = Printf.sprintf "%s %s" k (String.concat " " vs) in
  String.concat "\n"
    [ line "suite" [ t.name ];
      line "mode" [ (match t.mode with `Quick -> "quick" | `Full -> "full") ];
      line "seed" [ string_of_int t.seed ];
      line "machines" t.machines;
      line "allocators" t.allocators;
      line "workloads" (List.map workload_to_string t.workloads);
      line "faults" (List.map Mb_fault.Plan.to_string t.faults);
      line "env" (List.map env_to_string t.envs);
      line "repeats" [ string_of_int t.repeats ];
    ]
  ^ "\n"

(* --- parsing ------------------------------------------------------------ *)

exception Parse_error of string

let failf lineno fmt =
  Printf.ksprintf (fun msg -> raise (Parse_error (Printf.sprintf "line %d: %s" lineno msg))) fmt

let parse_workload lineno = function
  | "bench1" -> Bench1
  | "bench2" -> Bench2
  | "bench3" -> Bench3
  | "server" -> Server_open
  | s when String.length s > 4 && String.sub s 0 4 = "exp:" ->
      let id = String.sub s 4 (String.length s - 4) in
      if id = "*" then Exp_all else Exp id
  | s ->
      failf lineno
        "unknown workload %S (try: exp:*, exp:ID, bench1, bench2, bench3, server)" s

let parse_env lineno s =
  if s = "default" then default_env
  else
    List.fold_left
      (fun acc part ->
        match String.split_on_char '=' part with
        | [ k; v ] -> (
            let v =
              match int_of_string_opt v with
              | Some n when n >= 1 -> n
              | Some _ | None -> failf lineno "env knob %s needs a positive integer, got %S" k v
            in
            match k with
            | "shards" -> { acc with shards = Some v }
            | "domains" -> { acc with domains = Some v }
            | "window-batch" -> { acc with window_batch = Some v }
            | _ -> failf lineno "unknown env knob %S (try: shards, domains, window-batch)" k)
        | _ -> failf lineno "malformed env entry %S (expected knob=N[,knob=N...] or default)" s)
      default_env
      (String.split_on_char ',' s)

let parse_fault lineno s =
  match Mb_fault.Plan.parse s with
  | Ok v -> v
  | Error msg -> failf lineno "%s" msg

let known lineno what names name =
  if List.mem name names then name
  else failf lineno "unknown %s %S (try: %s)" what name (String.concat ", " names)

let parse_pos_int lineno what = function
  | [ v ] -> (
      match int_of_string_opt v with
      | Some n -> n
      | None -> failf lineno "%s needs an integer, got %S" what v)
  | _ -> failf lineno "%s takes exactly one value" what

let check_distinct lineno what to_str entries =
  let rec go seen = function
    | [] -> ()
    | e :: rest ->
        let s = to_str e in
        if List.mem s seen then failf lineno "duplicate %s entry %S" what s
        else go (s :: seen) rest
  in
  go [] entries;
  entries

let of_string text =
  (* Split into (lineno, directive, values) triples, dropping comments
     and blank lines. *)
  let directives =
    String.split_on_char '\n' text
    |> List.mapi (fun i line -> (i + 1, line))
    |> List.filter_map (fun (lineno, line) ->
           let line =
             match String.index_opt line '#' with
             | Some i -> String.sub line 0 i
             | None -> line
           in
           match
             String.split_on_char ' ' (String.trim line)
             |> List.filter (fun s -> s <> "")
           with
           | [] -> None
           | keyword :: values -> Some (lineno, keyword, values))
  in
  try
    let seen = Hashtbl.create 8 in
    let take keyword =
      List.find_map
        (fun (lineno, k, values) -> if k = keyword then Some (lineno, values) else None)
        directives
    in
    List.iter
      (fun (lineno, k, _) ->
        if
          not
            (List.mem k
               [ "suite"; "mode"; "seed"; "machines"; "allocators"; "workloads"; "faults";
                 "env"; "repeats" ])
        then failf lineno "unknown directive %S" k;
        if Hashtbl.mem seen k then failf lineno "duplicate directive %S" k;
        Hashtbl.add seen k ())
      directives;
    let last_line = List.length (String.split_on_char '\n' text) in
    let required keyword =
      match take keyword with
      | Some v -> v
      | None -> failf last_line "missing required directive %S" keyword
    in
    let name =
      match required "suite" with
      | lineno, [ name ] ->
          String.iter
            (fun c ->
              match c with
              | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> ()
              | _ -> failf lineno "suite name %S: use [A-Za-z0-9._-] only" name)
            name;
          if name = "" then failf lineno "empty suite name" else name
      | lineno, _ -> failf lineno "suite takes exactly one name"
    in
    let mode =
      match take "mode" with
      | None -> `Quick
      | Some (_, [ "quick" ]) -> `Quick
      | Some (_, [ "full" ]) -> `Full
      | Some (lineno, v) -> failf lineno "mode must be quick or full, got %S" (String.concat " " v)
    in
    let seed = match take "seed" with None -> 1 | Some (l, v) -> parse_pos_int l "seed" v in
    let repeats =
      match take "repeats" with
      | None -> 1
      | Some (l, v) ->
          let n = parse_pos_int l "repeats" v in
          if n >= 1 then n else failf l "repeats must be >= 1, got %d" n
    in
    let axis keyword ~default ~parse ~to_str =
      match take keyword with
      | None -> default
      | Some (lineno, []) -> failf lineno "%s needs at least one entry" keyword
      | Some (lineno, values) ->
          check_distinct lineno keyword to_str (List.map (parse lineno) values)
    in
    let machines =
      axis "machines" ~default:[ "quad_xeon" ]
        ~parse:(fun l -> known l "machine" Mb_machine.Configs.names)
        ~to_str:Fun.id
    in
    let allocators =
      axis "allocators" ~default:[ "ptmalloc" ]
        ~parse:(fun l -> known l "allocator" Mb_workload.Factory.names)
        ~to_str:Fun.id
    in
    let workloads =
      match take "workloads" with
      | None -> failf last_line "missing required directive \"workloads\""
      | Some (lineno, []) -> failf lineno "workloads needs at least one entry"
      | Some (lineno, values) ->
          check_distinct lineno "workloads" workload_to_string
            (List.map (parse_workload lineno) values)
    in
    let faults = axis "faults" ~default:[ None ] ~parse:parse_fault ~to_str:Mb_fault.Plan.to_string in
    let envs = axis "env" ~default:[ default_env ] ~parse:parse_env ~to_str:env_to_string in
    Ok { name; mode; seed; machines; allocators; workloads; faults; envs; repeats }
  with Parse_error msg -> Error msg

(* --- expansion ---------------------------------------------------------- *)

type cell = {
  key : string;
  workload : workload;
  machine : string option;
  allocator : string option;
  fault : (Mb_fault.Plan.t * int) option;
  env : env;
  cell_seed : int;
}

(* The key doubles as the history-file identifier and the CSV row
   label, so it avoids spaces and commas: suffixes are '+'-joined and
   env knobs print as bare shardsN/domainsN/wbN. *)
let cell_key ~workload ~machine ~allocator ~fault ~env =
  let b = Buffer.create 32 in
  Buffer.add_string b (workload_to_string workload);
  (match (machine, allocator) with
  | Some m, Some a ->
      Buffer.add_char b '@';
      Buffer.add_string b m;
      Buffer.add_char b '/';
      Buffer.add_string b a
  | _ -> ());
  (match fault with
  | None -> ()
  | Some _ ->
      Buffer.add_char b '+';
      Buffer.add_string b (Mb_fault.Plan.to_string fault));
  List.iter
    (fun (tag, v) ->
      match v with
      | None -> ()
      | Some n -> Buffer.add_string b (Printf.sprintf "+%s%d" tag n))
    [ ("shards", env.shards); ("domains", env.domains); ("wb", env.window_batch) ];
  Buffer.contents b

let expand t ~exp_ids =
  let exception Unknown of string in
  try
    let cells =
      List.concat_map
        (fun workload ->
          let resolved =
            match workload with
            | Exp_all -> List.map (fun id -> Exp id) exp_ids
            | Exp id when not (List.mem id exp_ids) -> raise (Unknown id)
            | w -> [ w ]
          in
          List.concat_map
            (fun w ->
              let machine_axis, alloc_axis =
                match w with
                | Exp _ -> ([ None ], [ None ])  (* baked into the registry entry *)
                | _ ->
                    ( List.map Option.some t.machines,
                      List.map Option.some t.allocators )
              in
              let ordinal = ref 0 in
              List.concat_map
                (fun machine ->
                  List.concat_map
                    (fun allocator ->
                      List.concat_map
                        (fun fault ->
                          List.map
                            (fun env ->
                              let k = !ordinal in
                              incr ordinal;
                              { key = cell_key ~workload:w ~machine ~allocator ~fault ~env;
                                workload = w;
                                machine;
                                allocator;
                                fault;
                                env;
                                cell_seed =
                                  (match w with
                                  | Exp _ -> t.seed
                                  | _ -> t.seed + (101 * k));
                              })
                            t.envs)
                        t.faults)
                    alloc_axis)
                machine_axis)
            resolved)
        t.workloads
    in
    (* Colliding keys (e.g. the same exp listed both explicitly and via
       the exp wildcard) would overwrite each other in the history
       object; reject them here where the message can say which. *)
    let rec dup seen = function
      | [] -> None
      | c :: rest -> if List.mem c.key seen then Some c.key else dup (c.key :: seen) rest
    in
    match dup [] cells with
    | Some key -> Error (Printf.sprintf "suite %s: duplicate cell %s in expansion" t.name key)
    | None -> Ok cells
  with Unknown id ->
    Error
      (Printf.sprintf "suite %s: unknown experiment id %S (registry: %s)" t.name id
         (String.concat ", " exp_ids))
