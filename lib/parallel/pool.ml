(* Domain pool with helping joins.

   One shared FIFO protected by a mutex; [jobs - 1] worker domains drain
   it. The submitting domain is the remaining unit of width: while it
   waits in [await] it pops and runs queued tasks itself, which is what
   makes nested submission (pool task -> sub-tasks -> join) deadlock-free
   with any width.

   Determinism does not depend on scheduling: tasks are self-contained
   computations and callers join futures in submission order, so result
   order — and therefore all output printed by the joining domain — is
   independent of which domain ran what when. *)

type 'a state =
  | Pending
  | Done of 'a
  | Raised of exn * Printexc.raw_backtrace
  | Abandoned  (* pool shut down before the task ran *)

type 'a future = { key : string; mutable state : 'a state }

type task = Task : 'a future * (unit -> 'a) -> task

type t = {
  mutex : Mutex.t;
  work : Condition.t;   (* signalled on enqueue and shutdown *)
  done_ : Condition.t;  (* broadcast on every task completion *)
  queue : task Queue.t;
  mutable in_flight : int;  (* tasks popped but not yet published *)
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
  width : int;
}

(* Pop under the lock (caller holds it), marking the task in flight so
   shutdown/await can tell "still running" from "never will run". *)
let take_locked t =
  match Queue.take_opt t.queue with
  | Some task ->
      t.in_flight <- t.in_flight + 1;
      Some task
  | None -> None

(* Run a task outside the lock, then publish its result under it. *)
let run_task t (Task (fut, f)) =
  let result =
    try Done (f ()) with e -> Raised (e, Printexc.get_raw_backtrace ())
  in
  Mutex.lock t.mutex;
  fut.state <- result;
  t.in_flight <- t.in_flight - 1;
  Condition.broadcast t.done_;
  Mutex.unlock t.mutex

let rec worker_loop t =
  Mutex.lock t.mutex;
  let rec next () =
    match take_locked t with
    | Some task -> Some task
    | None ->
        if t.stopping then None
        else begin
          Condition.wait t.work t.mutex;
          next ()
        end
  in
  let task = next () in
  Mutex.unlock t.mutex;
  match task with
  | None -> ()
  | Some task ->
      run_task t task;
      worker_loop t

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs < 1";
  let t =
    { mutex = Mutex.create ();
      work = Condition.create ();
      done_ = Condition.create ();
      queue = Queue.create ();
      in_flight = 0;
      stopping = false;
      workers = [];
      width = jobs;
    }
  in
  t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let jobs t = t.width

let run_inline fut f =
  fut.state <- (try Done (f ()) with e -> Raised (e, Printexc.get_raw_backtrace ()))

let submit t ~key f =
  let fut = { key; state = Pending } in
  if t.width <= 1 then run_inline fut f
  else begin
    Mutex.lock t.mutex;
    if t.stopping then begin
      Mutex.unlock t.mutex;
      invalid_arg (Printf.sprintf "Pool.submit %S: pool is shut down" key)
    end;
    Queue.add (Task (fut, f)) t.queue;
    Condition.signal t.work;
    Mutex.unlock t.mutex
  end;
  fut

let resolve fut =
  match fut.state with
  | Done v -> v
  | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
  | Abandoned | Pending ->
      invalid_arg (Printf.sprintf "Pool.await %S: task never ran (pool shut down)" fut.key)

let await t fut =
  match fut.state with
  | Done _ | Raised _ | Abandoned -> resolve fut
  | Pending ->
      Mutex.lock t.mutex;
      let rec loop () =
        match fut.state with
        | Pending -> (
            (* Help: run someone's queued task rather than going idle. *)
            match take_locked t with
            | Some task ->
                Mutex.unlock t.mutex;
                run_task t task;
                Mutex.lock t.mutex;
                loop ()
            | None ->
                if t.stopping && t.in_flight = 0 then fut.state <- Abandoned
                else begin
                  Condition.wait t.done_ t.mutex;
                  loop ()
                end)
        | Done _ | Raised _ | Abandoned -> ()
      in
      loop ();
      Mutex.unlock t.mutex;
      resolve fut

let map_list t ~key ~f xs =
  let futs =
    List.mapi
      (fun i x -> submit t ~key:(Printf.sprintf "%s[%d]" key i) (fun () -> f i x))
      xs
  in
  List.map (await t) futs

let shutdown t =
  Mutex.lock t.mutex;
  let already = t.stopping in
  t.stopping <- true;
  Condition.broadcast t.work;
  Condition.broadcast t.done_;
  Mutex.unlock t.mutex;
  if not already then begin
    List.iter Domain.join t.workers;
    t.workers <- []
  end

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let default_jobs () =
  match Sys.getenv_opt "MALLOC_REPRO_JOBS" with
  | None -> Domain.recommended_domain_count ()
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None ->
          invalid_arg
            (Printf.sprintf "MALLOC_REPRO_JOBS=%S: expected a positive integer" s))

(* The global pool may be demanded from several domains at once (a task
   of an explicit pool calling a pooled helper), hence the lock. *)
let global_lock = Mutex.create ()

let global_pool = ref None

let global () =
  Mutex.lock global_lock;
  let t =
    match !global_pool with
    | Some t -> t
    | None ->
        let t = create ~jobs:(default_jobs ()) in
        global_pool := Some t;
        (* at_exit is domain-local: registering from a worker domain
           would shut the global pool down when that worker is joined.
           From any other domain, skip it — idle workers die with the
           process. *)
        if Domain.is_main_domain () then at_exit (fun () -> shutdown t);
        t
  in
  Mutex.unlock global_lock;
  t
