(** Conservative parallel execution of a simulation's shard queues.

    Runs an engine to completion with the same observable schedule as
    {!Mb_sim.Engine.run} — byte-identical traces, counters and results
    at any domain count — while draining the per-CPU timing wheels on
    parallel domains. The run proceeds in windows: the coordinator
    picks a horizon (frontier time + a conservative lookahead derived
    by the machine layer from its cheapest cross-CPU scheduling edge),
    a crew of domains drains each shard's wheel up to that horizon in
    parallel ({!Mb_sim.Shard.drain_shard} — no simulation code runs, so
    wheel access is domain-exclusive), and the coordinator then
    executes the merged plan serially in exact global (time, seq)
    order, interleaving any newly pushed event that sorts before the
    remaining plan ("rollback-free sync stalls", counted as
    {!stats.residue}). Sequence numbers are only assigned during the
    serial execute phase, which is what makes the schedule independent
    of the domain count by construction. See PARALLELISM.md for the
    full protocol and invariant argument. *)

type stats = {
  domains : int;
      (** Effective crew width: the requested domain count capped at
          the engine's shard count. *)
  windows : int;
      (** Merge barriers — one per drain/execute round (each round
          covers [batch] lookahead windows). *)
  batch : int;
      (** Lookahead windows per merge barrier. *)
  drained : int;
      (** Events staged by drains (excludes residue events, which ran
          straight off the live queues). *)
  residue : int;
      (** Mid-window arrivals executed from the live queues because
          they sorted before the remaining plan — the conservative
          protocol's rollback-free sync stalls. *)
  barrier_waits : int;
      (** Worker-side barrier crossings: [windows * (domains - 1)]. *)
  per_domain_drained : int array;
      (** Events drained by each crew member ([length = domains]);
          the only field whose value depends on the domain count. *)
  drain_ns : float;
      (** Host wall-clock spent in the parallel phase (drains, side
          jobs, barrier, resync), in nanoseconds. Wall-clock, so
          host-dependent — unlike every other field. *)
  exec_ns : float;
      (** Host wall-clock spent in the serial execute phase, in
          nanoseconds. [exec_ns /. (exec_ns +. drain_ns)] is the
          serial fraction the crew cannot help with. *)
}
(** Counters for the [sched.domain.*] observations; every field except
    [per_domain_drained], [barrier_waits] (which scales with the crew)
    and the wall-clock pair is identical at any domain count. *)

val default_target : int
(** Default events-per-window target for the adaptive horizon (48). *)

val default_batch : int
(** Default lookahead windows per merge barrier (4). *)

val run :
  ?target:int ->
  ?batch:int ->
  ?side:(unit -> (unit -> unit) option) ->
  Mb_sim.Engine.t ->
  domains:int ->
  lookahead_ns:float ->
  stats
(** [run engine ~domains ~lookahead_ns] drains [engine]'s event queue
    to completion across [domains] domains ([domains] is capped at the
    shard count; 1 means no crew is spawned and the window protocol
    runs entirely on the calling domain). [lookahead_ns] is the
    minimum window width in simulated nanoseconds; windows widen and
    shrink adaptively toward [target] events per window, which only
    re-sizes the mechanical batches — never the schedule. [batch]
    lookahead windows are drained and executed per merge barrier, so
    the crew synchronizes [batch] times less often for the same
    schedule. [side], polled once per barrier while the simulation is
    quiescent, may return one mechanical job to run on a crew domain
    alongside the drains (trace serialization, checker table growth —
    work that must not change observable behaviour); the job completes
    before the execute phase resumes. Returns the window statistics.
    @raise Mb_sim.Engine.Stalled on deadlock, as {!Mb_sim.Engine.run}
    would. *)
