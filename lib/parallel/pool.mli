(** Fixed-size domain pool with deterministic, submission-ordered joins.

    The pool exists to parallelize the experiment harness across CPU
    cores without changing any observable output: tasks are pure
    computations (no printing inside a task), and callers join futures
    in submission order, so the sequence of results — and anything
    printed from them by the joining domain — is byte-identical to a
    sequential run.

    Width 1 is special-cased: [submit] runs the task immediately on the
    calling domain and no worker domains are spawned, reproducing the
    exact single-threaded behavior (and cost profile) of a pool-free
    harness.

    Widths above 1 spawn [jobs - 1] worker domains; the submitting
    domain "steals" queued work while it waits in {!await}, so nested
    submissions (a pool task that itself submits sub-tasks and joins
    them) cannot deadlock even when every worker is busy. *)

type t
(** A pool of worker domains plus a shared FIFO task queue. *)

type 'a future
(** Handle to a submitted task's eventual result (or exception). *)

val create : jobs:int -> t
(** [create ~jobs] makes a pool of total width [jobs] (>= 1): the
    calling domain plus [jobs - 1] spawned worker domains.
    @raise Invalid_argument if [jobs < 1]. *)

val jobs : t -> int
(** Total width the pool was created with. *)

val submit : t -> key:string -> (unit -> 'a) -> 'a future
(** [submit t ~key f] queues [f] for execution. [key] is a stable label
    used in error messages; it does not affect scheduling. On a
    width-1 pool, [f] runs right here, right now. Exceptions raised by
    [f] are captured and re-raised (with backtrace) by {!await}. *)

val await : t -> 'a future -> 'a
(** Block until the future's task has run, returning its result or
    re-raising its exception. While waiting, the calling domain
    executes other queued tasks (helping), so it is safe to await from
    inside a pool task. *)

val map_list : t -> key:string -> f:(int -> 'a -> 'b) -> 'a list -> 'b list
(** [map_list t ~key ~f xs] submits [f i x] for each element and joins
    in submission order: the result list lines up with [xs] exactly as
    [List.mapi f xs] would, regardless of pool width. *)

val shutdown : t -> unit
(** Stop and join all worker domains. Idempotent. Futures not yet run
    are abandoned; awaiting them afterwards raises [Invalid_argument]. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** Scoped [create]/[shutdown]. *)

val default_jobs : unit -> int
(** Pool width requested by the environment: [MALLOC_REPRO_JOBS] if
    set (must be a positive integer), else
    [Domain.recommended_domain_count ()]. *)

val global : unit -> t
(** The process-wide pool, created on first use with
    [~jobs:(default_jobs ())] and shut down automatically at exit.
    Safe to call from any domain. *)
