(* Conservative parallel execution of one simulation's shard queues.

   The serial engine pops the global (time, seq) minimum and runs it,
   one event at a time. This module keeps that execution order *exactly*
   — which is what makes schedules byte-identical at any domain count —
   while moving the queue mechanics onto worker domains. A run proceeds
   in windows:

     1. Horizon. The coordinator picks a horizon: the frontier time plus
        a conservative lookahead the machine layer derives from its
        cheapest cross-CPU scheduling edge (adaptively widened so a
        window carries a useful batch — the widening only re-sizes
        windows, never reorders events; see PARALLELISM.md).

     2. Drain (parallel). Each domain drains its own shards' timing
        wheels up to the horizon via Shard.drain_shard, into per-shard
        staging buffers. No simulation code runs during this phase, so
        each wheel is touched by exactly one domain and the phase is
        race-free by construction. The barrier at the end of the phase
        is the await on the crew's futures; Shard.resync then rebuilds
        the frontier caches.

     3. Execute (serial, coordinator only). The staged buffers are a
        per-shard-sorted partition of the window, so an S-way cursor
        merge replays the exact (key, pk) order a serial pop sequence
        would have produced. Executing an event may push *new* events —
        mutex wakeups, cross-CPU frees, coherence-driven re-arms — some
        of them earlier than the rest of the plan. Those land in the
        live shard queues, and before each planned event the executor
        compares the live frontier against the plan head and lets the
        earlier one run ("rollback-free sync stall": the conservative
        answer to the mid-window arrivals an optimistic engine would
        roll back for). The engine's delay fast path is kept honest by
        Engine.set_plan_min: a drained-but-unexecuted event is morally
        still queued.

   Sequence numbers are only ever assigned while the coordinator
   executes (phase 3), in execution order — never during a drain — so
   the (time, seq) stream, and therefore the schedule, is identical for
   any domain count, including 1. Window boundaries differ across domain
   counts only in *when* the mechanics happen, never in what runs when
   in simulated time. *)

module Engine = Mb_sim.Engine
module Shard = Mb_sim.Shard
module Tw = Mb_sim.Timing_wheel

type stats = {
  domains : int;
  windows : int;
  batch : int;
  drained : int;
  residue : int;
  barrier_waits : int;
  per_domain_drained : int array;
  drain_ns : float;
  exec_ns : float;
}

(* Per-shard staging buffer: (key, pk) pairs in drain (= sorted) order.
   Written by exactly one domain during a drain phase, read by the
   coordinator during execution. *)
type buf = {
  mutable keys : int array;
  mutable pks : int array;
  mutable n : int;
}

let default_target = 48
let default_batch = 4

let run ?(target = default_target) ?(batch = default_batch) ?side engine ~domains
    ~lookahead_ns =
  if domains < 1 then invalid_arg "Conservative.run: domains < 1";
  if target < 1 then invalid_arg "Conservative.run: target < 1";
  if batch < 1 then invalid_arg "Conservative.run: batch < 1";
  let q = Engine.queue engine in
  let shards = Shard.shards q in
  (* More domains than shards would leave crews idle; cap silently so
     MALLOC_REPRO_DOMAINS=8 on a 2-CPU machine still works. *)
  let d = min domains shards in
  Engine.set_domains engine domains;
  let bufs =
    Array.init shards (fun _ -> { keys = Array.make 64 0; pks = Array.make 64 0; n = 0 })
  in
  let cursors = Array.make shards 0 in
  (* One preallocated emit closure per shard, so a drain allocates
     nothing per event. *)
  let emits =
    Array.map
      (fun b ->
        fun key pk ->
         let n = b.n in
         if n = Array.length b.keys then begin
           let cap = 2 * n in
           let nk = Array.make cap 0 and np = Array.make cap 0 in
           Array.blit b.keys 0 nk 0 n;
           Array.blit b.pks 0 np 0 n;
           b.keys <- nk;
           b.pks <- np
         end;
         b.keys.(n) <- key;
         b.pks.(n) <- pk;
         b.n <- n + 1)
      bufs
  in
  (* Domain g owns shards g, g+d, g+2d, ... After draining a shard the
     same domain presorts its wheel's next L1 buckets — mechanical,
     ordering-invisible work (see Timing_wheel.presort_l1) done here
     because the drain phase is when the domain owns the wheel. *)
  let drain_group g horizon_key =
    let total = ref 0 in
    let i = ref g in
    while !i < shards do
      total := !total + Shard.drain_shard q ~shard:!i ~horizon_key ~emit:emits.(!i);
      Shard.presort q ~shard:!i ~buckets:2;
      i := !i + d
    done;
    !total
  in
  let windows = ref 0 in
  let drained = ref 0 in
  let residue = ref 0 in
  let per_domain = Array.make d 0 in
  let drain_s = ref 0. in
  let exec_s = ref 0. in
  let lookahead_ns = if lookahead_ns > 0. then lookahead_ns else 1. in
  let window_ns = ref (max lookahead_ns 1.) in
  (* Current plan head: argmin over the staging cursors. Rescans cost
     O(shards) per planned event — the same scan a serial Shard.pop
     pays to re-establish its frontier. *)
  let pm_shard = ref (-1) in
  let rescan_plan () =
    let mk = ref max_int and mp = ref max_int and ms = ref (-1) in
    for i = 0 to shards - 1 do
      let b = Array.unsafe_get bufs i in
      let c = Array.unsafe_get cursors i in
      if c < b.n then begin
        let k = Array.unsafe_get b.keys c in
        if k < !mk || (k = !mk && Array.unsafe_get b.pks c < !mp) then begin
          mk := k;
          mp := Array.unsafe_get b.pks c;
          ms := i
        end
      end
    done;
    pm_shard := !ms;
    Engine.set_plan_min engine ~key:!mk ~pk:!mp;
    (!mk, !mp)
  in
  let rec execute_merged (pmk, pmp) =
    if !pm_shard >= 0 then
      (* A mid-window arrival that sorts before the plan head runs
         first — straight off the live queue, with the plan head still
         registered as the delay fast path's bound. *)
      if
        Shard.min_key q < pmk
        || (Shard.min_key q = pmk && Shard.min_pk q < pmp)
      then begin
        incr residue;
        Engine.step_queue engine;
        execute_merged (pmk, pmp)
      end
      else begin
        let sh = !pm_shard in
        cursors.(sh) <- cursors.(sh) + 1;
        (* Advance the registered plan head *before* running the event:
           delays performed inside it must compare against what remains. *)
        let next = rescan_plan () in
        Engine.execute_planned engine ~key:pmk ~pk:pmp ~shard:sh;
        execute_merged next
      end
  in
  let run_windows crew =
    let rec window () =
      if Shard.is_empty q then Engine.check_stall engine
      else begin
        incr windows;
        let t0 = Unix.gettimeofday () in
        let fk = Shard.min_key q in
        (* One merge barrier covers a batch of [batch] lookahead
           windows: the horizon advances batch windows at once, so the
           crew synchronizes once per batch instead of once per window.
           Widening the horizon never reorders anything — the executor
           replays the staged plan in exact (key, pk) order and the
           residue path already covers mid-window arrivals — it only
           re-sizes the mechanical batches. *)
        let horizon_key =
          let hk =
            Tw.key_of_time (Tw.time_of_key fk +. (float_of_int batch *. !window_ns))
          in
          if hk <= fk then fk + 1 else hk
        in
        for i = 0 to shards - 1 do
          bufs.(i).n <- 0;
          cursors.(i) <- 0
        done;
        (* Side work rides the same barrier: one mechanical job per
           window (trace serialization, checker table growth), taken
           from the machine layer while the simulation is quiescent and
           run on a crew domain alongside the drains. *)
        let side_job = match side with Some f -> f () | None -> None in
        let drained_now =
          match crew with
          | None ->
              (match side_job with Some job -> job () | None -> ());
              let n = drain_group 0 horizon_key in
              per_domain.(0) <- per_domain.(0) + n;
              n
          | Some pool ->
              let side_fut =
                match side_job with
                | Some job -> Some (Pool.submit pool ~key:"conservative-side" job)
                | None -> None
              in
              let futs =
                Array.init (d - 1) (fun k ->
                    Pool.submit pool ~key:"conservative-drain" (fun () ->
                        drain_group (k + 1) horizon_key))
              in
              let own = drain_group 0 horizon_key in
              per_domain.(0) <- per_domain.(0) + own;
              let total = ref own in
              Array.iteri
                (fun k fut ->
                  let n = Pool.await pool fut in
                  per_domain.(k + 1) <- per_domain.(k + 1) + n;
                  total := !total + n)
                futs;
              (match side_fut with Some fut -> Pool.await pool fut | None -> ());
              !total
        in
        Shard.resync q;
        drained := !drained + drained_now;
        (* Window auto-sizing: aim for [target] events per window,
           [batch * target] per barrier. The drained set is a pure
           function of the horizon sequence and the event stream — both
           domain-count-independent — so the adaptation, and with it
           every counter except the per-domain split, is identical at
           any domain count. *)
        if drained_now < batch * ((target + 1) / 2) then
          window_ns := Float.min (!window_ns *. 2.) 1e12
        else if drained_now > batch * target * 4 then
          window_ns := Float.max (!window_ns /. 2.) lookahead_ns;
        let t1 = Unix.gettimeofday () in
        drain_s := !drain_s +. (t1 -. t0);
        execute_merged (rescan_plan ());
        exec_s := !exec_s +. (Unix.gettimeofday () -. t1);
        window ()
      end
    in
    Fun.protect
      ~finally:(fun () -> Engine.set_plan_min engine ~key:max_int ~pk:max_int)
      window
  in
  if d > 1 then Pool.with_pool ~jobs:d (fun pool -> run_windows (Some pool))
  else run_windows None;
  { domains = d;
    windows = !windows;
    batch;
    drained = !drained;
    residue = !residue;
    barrier_waits = !windows * (d - 1);
    per_domain_drained = per_domain;
    drain_ns = !drain_s *. 1e9;
    exec_ns = !exec_s *. 1e9;
  }
