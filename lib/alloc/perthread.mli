(** A per-thread-cache allocator in the spirit of Hoard (Berger &
    Blumofe), the design the paper's section 2 reports gave the iPlanet
    directory server a six-fold improvement.

    Each thread keeps magazine-style free lists per small size class and
    serves [malloc]/[free] from them without any locking; only refills
    and flushes touch the shared {!Dlheap} under its mutex, amortizing
    the lock over [batch] objects. Foreign frees simply feed the freeing
    thread's cache (producer/consumer pairs recycle memory without
    contention), bounded by [cache_limit] per class to keep blowup
    bounded. Large requests go straight to the shared heap. *)

type t
(** One per-thread-cache allocator instance. *)

val make :
  Mb_machine.Machine.proc ->
  ?costs:Costs.t ->
  ?params:Dlheap.params ->
  ?batch:int ->
  ?cache_limit:int ->
  unit ->
  t
(** [batch] (default 16) objects move per refill/flush; [cache_limit]
    (default 64) bounds each per-class cache. Costs default to
    {!Costs.glibc}. *)

val allocator : t -> Allocator.t
(** The uniform allocator record over this instance. *)

val cached_objects : t -> int
(** Objects currently parked in all thread caches. *)

val global_lock_acquisitions : t -> int
(** How rarely the shared lock is touched is the point of the design. *)
