(** A kernel-style slab allocator (Bonwick), modelling the paper's
    closing observation: "the kernel's slab allocator uses a single spin
    lock in each slab cache … this has the same performance implications
    as using a single spin lock at the user level."

    Objects of one size class are carved from page-multiple slabs; each
    size-class cache keeps partial/full slab lists under its own lock.
    Same-size-heavy workloads (like benchmark 1) therefore serialize on
    one cache lock exactly as the paper predicts; mixed-size workloads
    spread across cache locks. *)

type t
(** One slab allocator instance: its size-class caches and slabs. *)

val make : Mb_machine.Machine.proc -> ?costs:Costs.t -> ?slab_pages:int -> unit -> t
(** [slab_pages] (default 1) pages per slab. Costs default to
    {!Costs.glibc}. *)

val allocator : t -> Allocator.t
(** The uniform allocator record over this instance. *)

val cache_count : t -> int
(** Distinct size-class caches instantiated so far. *)

val slab_count : t -> int
(** Slabs currently mapped. *)

val cache_lock_contentions : t -> int
(** Summed contention across all cache locks. *)
