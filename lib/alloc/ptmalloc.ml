module M = Mb_machine.Machine
module Int_table = Mb_sim.Int_table
module Rng = Mb_prng.Rng

type arena = {
  heap : Dlheap.t;
  mutex : M.Mutex.t;
  descriptor : int;  (* hot lock word; written on every op under the lock *)
  aindex : int;
}

type t = {
  proc : M.proc;
  costs : Costs.t;
  mutable params : Dlheap.params;
  stats : Astats.t;
  mutable arenas : arena array;     (* creation order; main arena first.
                                       Capacity array: only slots
                                       0 .. n_arenas-1 are live, so
                                       appending an arena is amortized
                                       O(1) instead of an O(n) copy. *)
  mutable n_arenas : int;
  tl_arena : arena Int_table.t;     (* thread id -> last-used arena;
                                       probed on every malloc and free *)
  mutable meta_base : int;          (* descriptor region; -1 until mapped *)
  meta_phase : int;                 (* per-run layout phase, 0..31 *)
  max_arenas : int option;
  mutable arenas_reserved : int;    (* slots claimed, including in-flight
                                       creations that have not yet been
                                       appended — guards the cap across
                                       the time arena setup consumes *)
  arena_init_cycles : int;
}

let descriptor_stride = 16

let main_descriptor = M.libc_data_address + 0x200

let make proc ?(costs = Costs.glibc) ?(params = Dlheap.default_params) ?max_arenas () =
  let stats = Astats.create () in
  let main_heap = Dlheap.create_main proc ~costs ~params ~stats in
  let machine = M.proc_machine proc in
  let main =
    { heap = main_heap;
      mutex = M.Mutex.create machine ~name:"arena-0" ~heap:true ();
      descriptor = main_descriptor;
      aindex = 0;
    }
  in
  stats.Astats.arenas_created <- 1;
  { proc;
    costs;
    params;
    stats;
    arenas = Array.make 4 main;  (* slots >= n_arenas are padding *)
    n_arenas = 1;
    tl_arena = Int_table.create ~initial:16 ();
    meta_base = -1;
    meta_phase = Rng.int (M.rng machine) 32;
    max_arenas;
    arenas_reserved = 1;
    arena_init_cycles = 2500;
  }

let arena_count t = t.n_arenas

(* Live prefix of the capacity array; for cold accessors only. *)
let live_arenas t = Array.sub t.arenas 0 t.n_arenas

(* Amortized-growth append: double the capacity when full. *)
let push_arena t arena =
  let cap = Array.length t.arenas in
  if t.n_arenas = cap then begin
    let narr = Array.make (2 * cap) arena in
    Array.blit t.arenas 0 narr 0 cap;
    t.arenas <- narr
  end;
  t.arenas.(t.n_arenas) <- arena;
  t.n_arenas <- t.n_arenas + 1

let fold_arenas t f init =
  let acc = ref init in
  for i = 0 to t.n_arenas - 1 do
    acc := f !acc t.arenas.(i)
  done;
  !acc

let arena_of_thread t tid =
  match Int_table.find_opt t.tl_arena tid with Some a -> Some a.aindex | None -> None

let arena_live_chunks t =
  Array.to_list (Array.map (fun a -> Dlheap.live_chunks a.heap) (live_arenas t))

let arena_free_bytes t =
  Array.to_list (Array.map (fun a -> Dlheap.free_bytes a.heap) (live_arenas t))

let heap_bytes t =
  fold_arenas t
    (fun acc a ->
      let base, stop = Dlheap.segment_bounds a.heap in
      acc + (stop - base))
    0

(* Create a fresh arena, append it to the list, and return it. Its
   descriptor is packed at [meta_base + phase + 16 * (index - 1)], so two
   consecutively created arenas may share a cache line depending on the
   per-run phase — the Table 4 sloshing model. *)
let create_arena t ctx =
  (* Claim the slot before consuming any simulated time, or two threads
     could both pass the cap check while one is mid-creation. *)
  match t.max_arenas with
  | Some cap when t.arenas_reserved >= cap -> None
  | Some _ | None -> (
      let aindex = t.arenas_reserved in
      t.arenas_reserved <- aindex + 1;
      M.work ctx (Costs.apply t.costs t.arena_init_cycles);
      if t.meta_base < 0 then begin
        match M.mmap ctx ~len:4096 with
        | Some base -> if t.meta_base < 0 then t.meta_base <- base
        | None -> Allocator.out_of_memory ~bytes:4096 "ptmalloc (arena metadata)"
      end;
      match Dlheap.create_sub ctx ~costs:t.costs ~params:t.params ~stats:t.stats with
      | None ->
          t.arenas_reserved <- t.arenas_reserved - 1;
          None
      | Some heap ->
          let arena =
            { heap;
              mutex =
                M.Mutex.create (M.proc_machine t.proc)
                  ~name:(Printf.sprintf "arena-%d" aindex) ~heap:true ();
              descriptor = t.meta_base + t.meta_phase + (descriptor_stride * (aindex - 1));
              aindex;
            }
          in
          push_arena t arena;
          let obs = M.ctx_obs ctx in
          if Mb_obs.Recorder.tracing obs then
            Mb_obs.Recorder.instant obs ~lane:(M.lane ctx)
              ~name:(Printf.sprintf "arena-create %d" aindex)
              ~ts_ns:(M.now ctx) ();
          Some arena)

(* The heart of ptmalloc: find an arena we can lock without waiting.
   Returns with the arena's mutex held. *)
let acquire_arena t ctx =
  let tid = M.tid ctx in
  let preferred =
    match Int_table.find_exn t.tl_arena tid with
    | a -> a
    | exception Not_found -> t.arenas.(0)
  in
  if M.Mutex.try_lock preferred.mutex ctx then preferred
  else begin
    t.stats.Astats.contended_ops <- t.stats.Astats.contended_ops + 1;
    let rec scan i =
      if i >= t.n_arenas then None
      else begin
        let a = t.arenas.(i) in
        if a != preferred then begin
          M.work ctx (Costs.apply t.costs t.costs.Costs.bin_probe);
          if M.Mutex.try_lock a.mutex ctx then Some a else scan (i + 1)
        end
        else scan (i + 1)
      end
    in
    match scan 0 with
    | Some a -> a
    | None -> (
        match create_arena t ctx with
        | Some a ->
            if not (M.Mutex.try_lock a.mutex ctx) then
              invalid_arg "ptmalloc: fresh arena unexpectedly locked";
            a
        | None ->
            (* Cannot create more arenas (cap or exhaustion): wait for
               the preferred one. *)
            M.Mutex.lock preferred.mutex ctx;
            preferred)
  end

let remember t ctx arena =
  let tid = M.tid ctx in
  (match Int_table.find_exn t.tl_arena tid with
  | prev when prev == arena -> ()
  | _ -> t.stats.Astats.arena_switches <- t.stats.Astats.arena_switches + 1
  | exception Not_found -> ());
  Int_table.set t.tl_arena tid arena

let rec malloc_with t ctx arena size attempts =
  M.write_mem ctx arena.descriptor;
  match Dlheap.malloc arena.heap ctx size with
  | Some user ->
      M.Mutex.unlock arena.mutex ctx;
      remember t ctx arena;
      user
  | None ->
      (* This arena's region is full: move to a fresh arena (bounded
         retries so address-space exhaustion terminates). *)
      M.Mutex.unlock arena.mutex ctx;
      if attempts >= 3 then Allocator.out_of_memory ~bytes:size "ptmalloc"
      else begin
        match create_arena t ctx with
        | Some fresh ->
            if not (M.Mutex.try_lock fresh.mutex ctx) then
              invalid_arg "ptmalloc: fresh arena unexpectedly locked";
            malloc_with t ctx fresh size (attempts + 1)
        | None -> Allocator.out_of_memory ~bytes:size "ptmalloc"
      end

let malloc t ctx size =
  let arena = acquire_arena t ctx in
  malloc_with t ctx arena size 0

let owning_arena t ctx user =
  let n = t.n_arenas in
  let rec scan i =
    if i >= n then None
    else begin
      M.work ctx (Costs.apply t.costs 2);
      if Dlheap.owns t.arenas.(i).heap user then Some t.arenas.(i) else scan (i + 1)
    end
  in
  scan 0

let free t ctx user =
  match owning_arena t ctx user with
  | None -> invalid_arg "ptmalloc.free: address not owned by any arena"
  | Some arena ->
      let tid = M.tid ctx in
      (match Int_table.find_exn t.tl_arena tid with
      | a when a != arena -> t.stats.Astats.foreign_frees <- t.stats.Astats.foreign_frees + 1
      | _ -> ()
      | exception Not_found -> ());
      (* free must take the owning arena's lock and wait if necessary. *)
      if not (M.Mutex.try_lock arena.mutex ctx) then begin
        t.stats.Astats.contended_ops <- t.stats.Astats.contended_ops + 1;
        M.Mutex.lock arena.mutex ctx
      end;
      M.write_mem ctx arena.descriptor;
      Dlheap.free arena.heap ctx user;
      M.Mutex.unlock arena.mutex ctx

let usable_size t user =
  let rec scan i =
    if i >= t.n_arenas then invalid_arg "ptmalloc.usable_size: unknown address"
    else if Dlheap.owns t.arenas.(i).heap user then Dlheap.usable_size t.arenas.(i).heap user
    else scan (i + 1)
  in
  scan 0

let validate t =
  let rec check i =
    if i >= t.n_arenas then Ok ()
    else
      match Dlheap.validate t.arenas.(i).heap with
      | Ok () -> check (i + 1)
      | Error msg -> Error (Printf.sprintf "arena %d: %s" i msg)
  in
  check 0

(* --- mallopt / mallinfo (paper section 3: "an application can invoke
   mallopt(3) to enable some of these features") ------------------------ *)

type tunable =
  | Mmap_threshold of int
  | Trim_threshold of int
  | Top_pad of int
  | Fastbins of bool
  | Defer_coalescing of bool

let mallopt t tunable =
  let params =
    match tunable with
    | Mmap_threshold v ->
        if v <= 0 then invalid_arg "mallopt: M_MMAP_THRESHOLD <= 0";
        { t.params with Dlheap.mmap_threshold = v }
    | Trim_threshold v ->
        if v < 0 then invalid_arg "mallopt: M_TRIM_THRESHOLD < 0";
        { t.params with Dlheap.trim_threshold = v }
    | Top_pad v ->
        if v < 0 then invalid_arg "mallopt: M_TOP_PAD < 0";
        { t.params with Dlheap.top_pad = v }
    | Fastbins v -> { t.params with Dlheap.use_fastbins = v }
    | Defer_coalescing v -> { t.params with Dlheap.defer_coalescing = v }
  in
  t.params <- params;
  for i = 0 to t.n_arenas - 1 do
    Dlheap.set_params t.arenas.(i).heap params
  done

type mallinfo = {
  arena : int;      (* bytes of heap segments (brk extent + sub-heap use) *)
  narenas : int;
  hblks : int;      (* live direct-mmapped chunks *)
  hblkhd : int;     (* bytes in them *)
  uordblks : int;   (* bytes in allocated chunks *)
  fordblks : int;   (* bytes in free chunks, including tops *)
  keepcost : int;   (* main-arena top size (releasable via trim) *)
}

let mallinfo t =
  { arena = heap_bytes t;
    narenas = t.n_arenas;
    hblks = fold_arenas t (fun acc a -> acc + Dlheap.mmapped_count a.heap) 0;
    hblkhd = fold_arenas t (fun acc a -> acc + Dlheap.mmapped_bytes a.heap) 0;
    uordblks = fold_arenas t (fun acc a -> acc + Dlheap.used_bytes a.heap) 0;
    fordblks =
      fold_arenas t (fun acc a -> acc + Dlheap.free_bytes a.heap + Dlheap.top_bytes a.heap) 0;
    keepcost = Dlheap.top_bytes t.arenas.(0).heap;
  }

let allocator t =
  Allocator.instrument
  { Allocator.name = "ptmalloc";
    malloc = (fun ctx size -> malloc t ctx size);
    free = (fun ctx user -> free t ctx user);
    usable_size = (fun user -> usable_size t user);
    stats = t.stats;
    origins = Hashtbl.create 8;
    validate = (fun () -> validate t);
  }
