module M = Mb_machine.Machine
module Check = Mb_check.Checker
module Fault = Mb_fault.Injector

type t = {
  name : string;
  malloc : M.ctx -> int -> int;
  free : M.ctx -> int -> unit;
  usable_size : int -> int;
  stats : Astats.t;
  validate : unit -> (unit, string) result;
  origins : (int, int) Hashtbl.t;
}

let out_of_memory ?(bytes = 0) who = raise (Fault.Alloc_failure { who; bytes })

(* Cost model for the derived entry points: a 1999-class CPU moves or
   clears roughly 8 bytes per cycle from/to cache. *)
let zero_cost_cycles bytes = (bytes + 7) / 8

let copy_cost_cycles bytes = (bytes + 7) / 8 * 2  (* load + store *)

let calloc t ctx ~count ~size =
  if count < 0 || size < 0 then invalid_arg "Allocator.calloc: negative";
  if size > 0 && count > max_int / size then invalid_arg "Allocator.calloc: overflow";
  let bytes = max 1 (count * size) in
  let user = t.malloc ctx bytes in
  M.work ctx (zero_cost_cycles bytes);
  M.touch_range ctx user ~len:bytes;
  user

let memalign t ctx ~alignment size =
  if alignment <= 0 || alignment land (alignment - 1) <> 0 then
    invalid_arg "Allocator.memalign: alignment not a power of two";
  let raw = t.malloc ctx (size + alignment) in
  let user = (raw + alignment - 1) / alignment * alignment in
  if user <> raw then Hashtbl.replace t.origins user raw;
  user

let free_aligned t ctx user =
  match Hashtbl.find_opt t.origins user with
  | Some raw ->
      Hashtbl.remove t.origins user;
      t.free ctx raw
  | None -> t.free ctx user

let realloc t ctx addr new_size =
  if new_size < 0 then invalid_arg "Allocator.realloc: negative size";
  if addr = 0 then if new_size = 0 then 0 else t.malloc ctx new_size
  else if new_size = 0 then begin
    free_aligned t ctx addr;
    0
  end
  else begin
    (* [addr] may be a memalign'd block: size and free the raw chunk it
       was carved from, not the aligned user address — the latter is not
       a chunk boundary and freeing it corrupts the simulated heap. *)
    let raw = match Hashtbl.find_opt t.origins addr with Some r -> r | None -> addr in
    let old_usable = t.usable_size raw - (addr - raw) in
    if old_usable >= new_size then addr  (* shrink or fitting growth: in place *)
    else begin
      let fresh = t.malloc ctx new_size in
      M.work ctx (copy_cost_cycles old_usable);
      M.touch_range ctx fresh ~len:old_usable;
      if raw <> addr then Hashtbl.remove t.origins addr;
      t.free ctx raw;
      fresh
    end
  end

let instrument t =
  (* Origins-aware free: a raw [free] of a memalign'd user address must
     release the chunk it was carved from, exactly as {!free_aligned}
     does — without this, workloads that mix memalign blocks into a
     plain free path corrupt the simulated heap. *)
  let free_raw ctx user =
    match Hashtbl.find_opt t.origins user with
    | Some raw ->
        Hashtbl.remove t.origins user;
        t.free ctx raw
    | None -> t.free ctx user
  in
  (* Retry-with-backoff under an armed fault plan: an [Alloc_failure]
     from the underlying allocator (a vetoed or genuinely exhausted
     reservation) backs off in {e simulated} time — so schedules stay
     deterministic — and retries up to [Fault.max_retries] times before
     letting the failure surface to the workload's degradation guard.
     With faults off this is the bare [t.malloc] call. *)
  let rec malloc_attempt fault ctx size i =
    match t.malloc ctx size with
    | user ->
        if i > 0 then Fault.note_survived fault;
        user
    | exception Fault.Alloc_failure _ when i < Fault.max_retries ->
        M.work_exact ctx (Fault.backoff_cycles i);
        malloc_attempt fault ctx size (i + 1)
  in
  let malloc_resilient ctx size =
    let fault = M.ctx_fault ctx in
    if not (Fault.armed fault) then t.malloc ctx size
    else malloc_attempt fault ctx size 0
  in
  let malloc ctx size =
    let chk = M.ctx_check ctx in
    if not (Check.armed chk) then malloc_resilient ctx size
    else begin
      let tid = M.tid ctx in
      (* Allocator-internal accesses (headers, arena metadata) migrate
         between locks by design; bracket them out of the detectors. *)
      Check.enter_runtime chk ~tid;
      let user =
        Fun.protect
          ~finally:(fun () -> Check.exit_runtime chk ~tid)
          (fun () -> malloc_resilient ctx size)
      in
      Check.on_alloc chk ~tid ~asid:(M.asid ctx) ~addr:user ~len:(t.usable_size user);
      user
    end
  in
  let free ctx user =
    let chk = M.ctx_check ctx in
    if not (Check.armed chk) then free_raw ctx user
    else begin
      let tid = M.tid ctx in
      (* A double-free is recorded and suppressed (on_free returns
         false), the way a hardened allocator refuses: the run survives
         to report every finding instead of dying on the first. *)
      if Check.on_free chk ~tid ~asid:(M.asid ctx) ~addr:user then begin
        Check.enter_runtime chk ~tid;
        Fun.protect
          ~finally:(fun () -> Check.exit_runtime chk ~tid)
          (fun () -> free_raw ctx user)
      end
    end
  in
  { t with malloc; free }
