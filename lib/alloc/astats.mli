(** Mutable allocation statistics shared by all allocator implementations.

    Counters cover the quantities the paper reasons about: operation
    volume, live bytes, arena population, and how often lock contention
    redirected or delayed an operation. *)

type t = {
  mutable mallocs : int;
  mutable frees : int;
  mutable bytes_requested : int;   (** sum of malloc sizes *)
  mutable live_bytes : int;        (** requested bytes currently allocated *)
  mutable live_objects : int;
  mutable peak_live_bytes : int;
  mutable arenas_created : int;    (** subheaps ever created (never shrinks) *)
  mutable arena_switches : int;    (** ops served by a different arena than the thread's cached one *)
  mutable contended_ops : int;     (** ops that found their first-choice lock busy *)
  mutable foreign_frees : int;     (** frees of chunks owned by another arena/thread *)
  mutable mmapped_chunks : int;    (** requests served by direct mmap *)
  mutable grow_failures : int;     (** sbrk/sub-heap exhaustion events *)
  mutable deferred_frees : int;    (** frees binned with coalescing deferred *)
  mutable consolidations : int;    (** bulk deferred-coalescing passes *)
}

val create : unit -> t
(** A zeroed counter set. *)

val record_malloc : t -> int -> unit
(** [record_malloc t size] accounts one successful allocation. *)

val record_free : t -> int -> unit
(** [record_free t size] accounts one release of [size] requested bytes. *)

val live_bytes : t -> int
(** Requested bytes currently allocated. *)

val publish : t -> Mb_obs.Recorder.t -> unit
(** [publish t obs] adds the counters to [obs] under [alloc.*] keys
    (e.g. [alloc.arena.created], [alloc.free.foreign]). Addition, not
    assignment, so several allocators publishing into one recorder
    accumulate. No-op on a recorder without metrics enabled. *)

val pp : Format.formatter -> t -> unit
(** One-line human-readable rendering of all counters. *)
