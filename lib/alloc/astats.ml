type t = {
  mutable mallocs : int;
  mutable frees : int;
  mutable bytes_requested : int;
  mutable live_bytes : int;
  mutable live_objects : int;
  mutable peak_live_bytes : int;
  mutable arenas_created : int;
  mutable arena_switches : int;
  mutable contended_ops : int;
  mutable foreign_frees : int;
  mutable mmapped_chunks : int;
  mutable grow_failures : int;
  mutable deferred_frees : int;
  mutable consolidations : int;
}

let create () =
  { mallocs = 0;
    frees = 0;
    bytes_requested = 0;
    live_bytes = 0;
    live_objects = 0;
    peak_live_bytes = 0;
    arenas_created = 0;
    arena_switches = 0;
    contended_ops = 0;
    foreign_frees = 0;
    mmapped_chunks = 0;
    grow_failures = 0;
    deferred_frees = 0;
    consolidations = 0;
  }

let record_malloc t size =
  t.mallocs <- t.mallocs + 1;
  t.bytes_requested <- t.bytes_requested + size;
  t.live_bytes <- t.live_bytes + size;
  t.live_objects <- t.live_objects + 1;
  if t.live_bytes > t.peak_live_bytes then t.peak_live_bytes <- t.live_bytes

let record_free t size =
  t.frees <- t.frees + 1;
  t.live_bytes <- t.live_bytes - size;
  t.live_objects <- t.live_objects - 1

let live_bytes t = t.live_bytes

let publish t obs =
  let module Obs = Mb_obs.Recorder in
  if Obs.metering obs then begin
    Obs.add obs "alloc.mallocs" t.mallocs;
    Obs.add obs "alloc.frees" t.frees;
    Obs.add obs "alloc.bytes_requested" t.bytes_requested;
    Obs.add obs "alloc.peak_live_bytes" t.peak_live_bytes;
    Obs.add obs "alloc.arena.created" t.arenas_created;
    Obs.add obs "alloc.arena.switches" t.arena_switches;
    Obs.add obs "alloc.contended_ops" t.contended_ops;
    Obs.add obs "alloc.free.foreign" t.foreign_frees;
    Obs.add obs "alloc.mmapped_chunks" t.mmapped_chunks;
    Obs.add obs "alloc.grow_failures" t.grow_failures;
    if t.deferred_frees > 0 then Obs.add obs "alloc.free.deferred" t.deferred_frees;
    if t.consolidations > 0 then Obs.add obs "alloc.consolidations" t.consolidations
  end

let pp fmt t =
  Format.fprintf fmt
    "mallocs=%d frees=%d live=%dB peak=%dB arenas=%d switches=%d contended=%d foreign_frees=%d \
     mmapped=%d grow_failures=%d"
    t.mallocs t.frees t.live_bytes t.peak_live_bytes t.arenas_created t.arena_switches
    t.contended_ops t.foreign_frees t.mmapped_chunks t.grow_failures
