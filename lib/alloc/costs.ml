type t = {
  malloc_base : int;
  free_base : int;
  bin_probe : int;
  split : int;
  coalesce : int;
  deferred_free : int;
  scale : float;
}

let glibc =
  { malloc_base = 238;
    free_base = 176;
    bin_probe = 8;
    split = 30;
    coalesce = 35;
    deferred_free = 90;
    scale = 1.0;
  }

let solaris =
  { malloc_base = 117;
    free_base = 85;
    bin_probe = 6;
    split = 20;
    coalesce = 25;
    deferred_free = 45;
    scale = 1.0;
  }

let scaled t f = { t with scale = t.scale *. f }

let apply t cycles = int_of_float (float_of_int cycles *. t.scale +. 0.5)
