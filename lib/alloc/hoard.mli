(** The Hoard allocator (Berger & Blumofe, TR-99-22), the scalable
    multiprocessor design the paper's sections 2 and 6 cite — and the
    kind of allocator behind the iPlanet fix.

    Structure, following the tech report:

    - memory is carved from fixed-size {e superblocks} (8 KB), each
      dedicated to one size class;
    - each thread hashes to one of [heap_count] per-thread heaps; heap 0
      is the global heap. Every heap has its own lock, so threads
      contend only when they hash together or exchange superblocks;
    - [malloc] takes a free block from a superblock owned by the
      thread's heap, pulling a superblock from the global heap (or
      [mmap]) only when the heap has none with space;
    - [free] returns the block to its {e owning} superblock whichever
      thread calls it, so producer/consumer patterns cannot orphan
      memory — the failure benchmark 2 measures in ptmalloc;
    - the {e emptiness invariant}: when a heap's in-use fraction drops
      below [1 - empty_fraction] and it holds more than [slack]
      superblocks of slack, its emptiest superblock moves to the global
      heap, bounding blowup to a constant factor of live data. *)

type t
(** One Hoard instance: per-thread heaps, the global heap, and their
    superblocks. *)

val make :
  Mb_machine.Machine.proc ->
  ?costs:Costs.t ->
  ?heap_count:int ->
  ?superblock_bytes:int ->
  ?empty_fraction:float ->
  ?slack:int ->
  unit ->
  t
(** Defaults: one heap per CPU plus the global heap, 8 KB superblocks,
    empty fraction 1/4, slack 4 — the tech report's parameters. *)

val allocator : t -> Allocator.t
(** The uniform allocator record over this instance. *)

val superblock_count : t -> int
(** Superblocks currently mapped (all heaps). *)

val global_superblocks : t -> int
(** Superblocks parked on the global heap. *)

val transfers_to_global : t -> int
(** Times the emptiness invariant moved a superblock to heap 0. *)

val held_bytes : t -> int
(** Total bytes of mapped superblocks — the quantity Hoard's blowup
    bound constrains. *)

val heap_of_thread : t -> int -> int
(** Which heap a thread id hashes to (1-based; 0 is the global heap). *)
