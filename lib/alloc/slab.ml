module M = Mb_machine.Machine

type slab = {
  base : int;
  cache_size : int;        (* object size of the owning cache *)
  mutable free_objs : int list;
  mutable in_use : int;
  capacity : int;
}

type cache = {
  obj_size : int;
  lock : M.Mutex.t;
  mutable partial : slab list;   (* slabs with both free and used objects (or all free) *)
  mutable full : slab list;
  mutable nslabs : int;
}

type t = {
  proc : M.proc;
  costs : Costs.t;
  stats : Astats.t;
  caches : (int, cache) Hashtbl.t;       (* obj_size -> cache *)
  objects : (int, slab) Hashtbl.t;       (* user addr -> owning slab *)
  slab_pages : int;
  large_threshold : int;
  mm_large : (int, int) Hashtbl.t;       (* large objects: user addr -> mapped len *)
  op_cycles : int;
}

(* Power-of-two size classes from 16 bytes, like the historical kmalloc. *)
let size_class size =
  let rec grow c = if c >= size then c else grow (c * 2) in
  grow 16

let make proc ?(costs = Costs.glibc) ?(slab_pages = 4) () =
  { proc;
    costs;
    stats = Astats.create ();
    caches = Hashtbl.create 16;
    objects = Hashtbl.create 1024;
    slab_pages;
    large_threshold = slab_pages * 4096 / 2;
    mm_large = Hashtbl.create 16;
    op_cycles = 60;
  }

let cache_for t cls =
  match Hashtbl.find_opt t.caches cls with
  | Some c -> c
  | None ->
      let c =
        { obj_size = cls;
          lock =
            M.Mutex.create (M.proc_machine t.proc)
              ~name:(Printf.sprintf "kmem-%d" cls) ~heap:true ();
          partial = [];
          full = [];
          nslabs = 0;
        }
      in
      Hashtbl.replace t.caches cls c;
      t.stats.Astats.arenas_created <- t.stats.Astats.arenas_created + 1;
      c

let with_cache t cache ctx f =
  if not (M.Mutex.try_lock cache.lock ctx) then begin
    t.stats.Astats.contended_ops <- t.stats.Astats.contended_ops + 1;
    M.Mutex.lock cache.lock ctx
  end;
  (* Exception-safe: see Serial.with_lock. *)
  Fun.protect ~finally:(fun () -> M.Mutex.unlock cache.lock ctx) f

let grow_cache t cache ctx =
  let len = t.slab_pages * 4096 in
  match M.mmap ctx ~len with
  | None -> Allocator.out_of_memory ~bytes:len "slab"
  | Some base ->
      let capacity = len / cache.obj_size in
      let slab =
        { base;
          cache_size = cache.obj_size;
          free_objs = List.init capacity (fun i -> base + (i * cache.obj_size));
          in_use = 0;
          capacity;
        }
      in
      cache.partial <- slab :: cache.partial;
      cache.nslabs <- cache.nslabs + 1;
      slab

let malloc t ctx size =
  if size <= 0 then invalid_arg "Slab.malloc: size <= 0";
  M.work ctx (Costs.apply t.costs t.op_cycles);
  if size > t.large_threshold then begin
    let len = (size + 4095) / 4096 * 4096 in
    match M.mmap ctx ~len with
    | None -> Allocator.out_of_memory ~bytes:len "slab (large)"
    | Some base ->
        Hashtbl.replace t.mm_large base len;
        t.stats.Astats.mmapped_chunks <- t.stats.Astats.mmapped_chunks + 1;
        Astats.record_malloc t.stats len;
        base
  end
  else begin
    let cls = size_class size in
    let cache = cache_for t cls in
    with_cache t cache ctx (fun () ->
        let slab = match cache.partial with s :: _ -> s | [] -> grow_cache t cache ctx in
        match slab.free_objs with
        | [] -> invalid_arg "Slab.malloc: partial slab with no free objects"
        | user :: rest ->
            slab.free_objs <- rest;
            slab.in_use <- slab.in_use + 1;
            if rest = [] then begin
              cache.partial <- List.filter (fun s -> s != slab) cache.partial;
              cache.full <- slab :: cache.full
            end;
            Hashtbl.replace t.objects user slab;
            M.write_mem ctx user;
            Astats.record_malloc t.stats cls;
            user)
  end

let free t ctx user =
  M.work ctx (Costs.apply t.costs t.op_cycles);
  match Hashtbl.find_opt t.mm_large user with
  | Some len ->
      Hashtbl.remove t.mm_large user;
      M.munmap ctx user ~len;
      Astats.record_free t.stats len
  | None -> (
      match Hashtbl.find_opt t.objects user with
      | None -> invalid_arg "Slab.free: unknown address"
      | Some slab ->
          let cache = cache_for t slab.cache_size in
          with_cache t cache ctx (fun () ->
              Hashtbl.remove t.objects user;
              let was_full = slab.free_objs = [] in
              slab.free_objs <- user :: slab.free_objs;
              slab.in_use <- slab.in_use - 1;
              if was_full then begin
                cache.full <- List.filter (fun s -> s != slab) cache.full;
                cache.partial <- slab :: cache.partial
              end;
              (* Reclaim fully empty slabs beyond the first, kernel-style. *)
              if slab.in_use = 0 && List.length cache.partial > 1 then begin
                cache.partial <- List.filter (fun s -> s != slab) cache.partial;
                cache.nslabs <- cache.nslabs - 1;
                List.iter (fun o -> Hashtbl.remove t.objects o) slab.free_objs;
                M.munmap ctx slab.base ~len:(t.slab_pages * 4096)
              end;
              Astats.record_free t.stats slab.cache_size))

let usable_size t user =
  match Hashtbl.find_opt t.mm_large user with
  | Some len -> len
  | None -> (
      match Hashtbl.find_opt t.objects user with
      | Some slab -> slab.cache_size
      | None -> invalid_arg "Slab.usable_size: unknown address")

let validate t =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let check_slab cache expect_full slab =
    let free = List.length slab.free_objs in
    if free + slab.in_use <> slab.capacity then
      fail "slab 0x%x: free %d + in_use %d <> capacity %d" slab.base free slab.in_use slab.capacity
    else if expect_full && free <> 0 then fail "slab 0x%x on full list has free objects" slab.base
    else if (not expect_full) && free = 0 then fail "slab 0x%x on partial list is full" slab.base
    else if List.exists (fun o -> o < slab.base || o >= slab.base + (slab.capacity * cache.obj_size)) slab.free_objs
    then fail "slab 0x%x has out-of-range free object" slab.base
    else Ok ()
  in
  let exception Bad of string in
  try
    Hashtbl.iter
      (fun _ cache ->
        List.iter
          (fun s -> match check_slab cache false s with Error m -> raise (Bad m) | Ok () -> ())
          cache.partial;
        List.iter
          (fun s -> match check_slab cache true s with Error m -> raise (Bad m) | Ok () -> ())
          cache.full)
      t.caches;
    Ok ()
  with Bad m -> Error m

let cache_count t = Hashtbl.length t.caches

let slab_count t = Hashtbl.fold (fun _ c acc -> acc + c.nslabs) t.caches 0

let cache_lock_contentions t = Hashtbl.fold (fun _ c acc -> acc + M.Mutex.contentions c.lock) t.caches 0

let allocator t =
  Allocator.instrument
  { Allocator.name = "slab";
    malloc = (fun ctx size -> malloc t ctx size);
    free = (fun ctx user -> free t ctx user);
    usable_size = (fun user -> usable_size t user);
    stats = t.stats;
    origins = Hashtbl.create 8;
    validate = (fun () -> validate t);
  }
