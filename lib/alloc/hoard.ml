module M = Mb_machine.Machine

type superblock = {
  base : int;
  class_bytes : int;
  capacity : int;
  mutable free_blocks : int list;
  mutable in_use : int;
  mutable owner : int;  (* heap index; 0 = global *)
}

type heap = {
  index : int;
  lock : M.Mutex.t;
  (* superblocks by size-class index *)
  mutable blocks : superblock list array;
  mutable used : int;      (* blocks in use across the heap, in bytes *)
  mutable held : int;      (* capacity held across the heap, in bytes *)
}

type t = {
  proc : M.proc;
  costs : Costs.t;
  stats : Astats.t;
  heaps : heap array;              (* heaps.(0) is the global heap *)
  owners : (int, superblock) Hashtbl.t;  (* block addr -> superblock *)
  superblock_bytes : int;
  empty_fraction : float;
  slack : int;
  mm_large : (int, int) Hashtbl.t;
  mutable nsuperblocks : int;
  mutable transfers : int;
  op_cycles : int;
}

(* Size classes: 8-byte steps to 64, then powers of two to half a
   superblock. *)
let class_bytes_of_index i = if i < 8 then 8 * (i + 1) else 64 lsl (i - 7)

let class_index size =
  if size <= 64 then (size + 7) / 8 - 1
  else begin
    let rec find i = if class_bytes_of_index i >= size then i else find (i + 1) in
    find 8
  end

let nclasses = 14  (* up to class_bytes_of_index 13 = 4096 *)

let make proc ?(costs = Costs.glibc) ?heap_count ?(superblock_bytes = 8192) ?(empty_fraction = 0.25)
    ?(slack = 4) () =
  let machine = M.proc_machine proc in
  let cpus = (M.config machine).M.cpus in
  let heap_count = match heap_count with Some n -> n | None -> max 1 cpus in
  let mk_heap index =
    { index;
      lock = M.Mutex.create machine ~name:(Printf.sprintf "hoard-heap-%d" index) ~heap:true ();
      blocks = Array.make nclasses [];
      used = 0;
      held = 0;
    }
  in
  { proc;
    costs;
    stats = Astats.create ();
    heaps = Array.init (heap_count + 1) mk_heap;
    owners = Hashtbl.create 1024;
    superblock_bytes;
    empty_fraction;
    slack;
    mm_large = Hashtbl.create 16;
    nsuperblocks = 0;
    transfers = 0;
    op_cycles = 50;
  }

let heap_of_thread t tid = 1 + (tid mod (Array.length t.heaps - 1))

let large_threshold t = t.superblock_bytes / 2

let with_heap t heap ctx f =
  if not (M.Mutex.try_lock heap.lock ctx) then begin
    t.stats.Astats.contended_ops <- t.stats.Astats.contended_ops + 1;
    M.Mutex.lock heap.lock ctx
  end;
  (* Exception-safe: see Serial.with_lock (malloc nests heap + global
     locks, so a leak here would wedge every thread of the process). *)
  Fun.protect ~finally:(fun () -> M.Mutex.unlock heap.lock ctx) f

let new_superblock t ctx cls owner_index =
  match M.mmap ctx ~len:t.superblock_bytes with
  | None -> Allocator.out_of_memory ~bytes:t.superblock_bytes "hoard"
  | Some base ->
      let class_bytes = class_bytes_of_index cls in
      let capacity = t.superblock_bytes / class_bytes in
      let sb =
        { base;
          class_bytes;
          capacity;
          free_blocks = List.init capacity (fun i -> base + (i * class_bytes));
          in_use = 0;
          owner = owner_index;
        }
      in
      List.iter (fun b -> Hashtbl.replace t.owners b sb) sb.free_blocks;
      t.nsuperblocks <- t.nsuperblocks + 1;
      t.stats.Astats.arenas_created <- t.stats.Astats.arenas_created + 1;
      sb

(* Move [sb] from [src] to [dst] (both locked by the caller as needed). *)
let move_superblock t sb src dst =
  let cls = class_index sb.class_bytes in
  src.blocks.(cls) <- List.filter (fun s -> s != sb) src.blocks.(cls);
  dst.blocks.(cls) <- sb :: dst.blocks.(cls);
  let bytes = sb.capacity * sb.class_bytes in
  let used = sb.in_use * sb.class_bytes in
  src.held <- src.held - bytes;
  src.used <- src.used - used;
  dst.held <- dst.held + bytes;
  dst.used <- dst.used + used;
  sb.owner <- dst.index;
  t.transfers <- t.transfers + 1

let malloc t ctx size =
  if size <= 0 then invalid_arg "Hoard.malloc: size <= 0";
  M.work ctx (Costs.apply t.costs t.op_cycles);
  if size > large_threshold t then begin
    let len = (size + 4095) / 4096 * 4096 in
    match M.mmap ctx ~len with
    | None -> Allocator.out_of_memory ~bytes:len "hoard (large)"
    | Some base ->
        Hashtbl.replace t.mm_large base len;
        t.stats.Astats.mmapped_chunks <- t.stats.Astats.mmapped_chunks + 1;
        Astats.record_malloc t.stats len;
        base
  end
  else begin
    let cls = class_index size in
    let heap = t.heaps.(heap_of_thread t (M.tid ctx)) in
    with_heap t heap ctx (fun () ->
        let sb =
          match List.find_opt (fun sb -> sb.free_blocks <> []) heap.blocks.(cls) with
          | Some sb -> sb
          | None ->
              (* Pull from the global heap, or map a fresh superblock. *)
              let global = t.heaps.(0) in
              with_heap t global ctx (fun () ->
                  match List.find_opt (fun sb -> sb.free_blocks <> []) global.blocks.(cls) with
                  | Some sb ->
                      move_superblock t sb global heap;
                      sb
                  | None ->
                      let sb = new_superblock t ctx cls heap.index in
                      heap.blocks.(cls) <- sb :: heap.blocks.(cls);
                      heap.held <- heap.held + (sb.capacity * sb.class_bytes);
                      sb)
        in
        match sb.free_blocks with
        | [] -> invalid_arg "Hoard.malloc: chosen superblock has no space"
        | user :: rest ->
            sb.free_blocks <- rest;
            sb.in_use <- sb.in_use + 1;
            heap.used <- heap.used + sb.class_bytes;
            M.write_mem ctx user;
            Astats.record_malloc t.stats sb.class_bytes;
            user)
  end

(* The emptiness invariant: keep u(h) >= held - slack*S and
   u(h) >= (1 - f) * held, else ship the emptiest superblock to the
   global heap. *)
let enforce_invariant t heap ctx =
  if heap.index <> 0 then begin
    let slack_bytes = t.slack * t.superblock_bytes in
    if
      heap.held - heap.used > slack_bytes
      && float_of_int heap.used < (1. -. t.empty_fraction) *. float_of_int heap.held
    then begin
      (* find the emptiest superblock across classes *)
      let emptiest = ref None in
      Array.iter
        (List.iter (fun sb ->
             let fullness = float_of_int sb.in_use /. float_of_int sb.capacity in
             match !emptiest with
             | Some (best, _) when best <= fullness -> ()
             | _ -> emptiest := Some (fullness, sb)))
        heap.blocks;
      match !emptiest with
      | Some (_, sb) ->
          let global = t.heaps.(0) in
          with_heap t global ctx (fun () -> move_superblock t sb heap global)
      | None -> ()
    end
  end

let free t ctx user =
  M.work ctx (Costs.apply t.costs t.op_cycles);
  match Hashtbl.find_opt t.mm_large user with
  | Some len ->
      Hashtbl.remove t.mm_large user;
      M.munmap ctx user ~len;
      Astats.record_free t.stats len
  | None -> (
      match Hashtbl.find_opt t.owners user with
      | None -> invalid_arg "Hoard.free: unknown address"
      | Some sb ->
          (* Lock the owning heap; ownership may move between the lookup
             and the lock, so re-read after acquiring. *)
          let rec lock_owner () =
            let heap = t.heaps.(sb.owner) in
            if not (M.Mutex.try_lock heap.lock ctx) then begin
              t.stats.Astats.contended_ops <- t.stats.Astats.contended_ops + 1;
              M.Mutex.lock heap.lock ctx
            end;
            if sb.owner = heap.index then heap
            else begin
              M.Mutex.unlock heap.lock ctx;
              lock_owner ()
            end
          in
          let heap = lock_owner () in
          if heap.index <> heap_of_thread t (M.tid ctx) then
            t.stats.Astats.foreign_frees <- t.stats.Astats.foreign_frees + 1;
          sb.free_blocks <- user :: sb.free_blocks;
          sb.in_use <- sb.in_use - 1;
          heap.used <- heap.used - sb.class_bytes;
          Astats.record_free t.stats sb.class_bytes;
          enforce_invariant t heap ctx;
          M.Mutex.unlock heap.lock ctx)

let usable_size t user =
  match Hashtbl.find_opt t.mm_large user with
  | Some len -> len
  | None -> (
      match Hashtbl.find_opt t.owners user with
      | Some sb -> sb.class_bytes
      | None -> invalid_arg "Hoard.usable_size: unknown address")

let validate t =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let exception Bad of string in
  try
    Array.iter
      (fun heap ->
        let used = ref 0 and held = ref 0 in
        Array.iteri
          (fun cls sbs ->
            List.iter
              (fun sb ->
                if sb.owner <> heap.index then
                  raise (Bad (Printf.sprintf "sb 0x%x owner %d on heap %d" sb.base sb.owner heap.index));
                if class_index sb.class_bytes <> cls then
                  raise (Bad (Printf.sprintf "sb 0x%x misfiled class" sb.base));
                if List.length sb.free_blocks + sb.in_use <> sb.capacity then
                  raise (Bad (Printf.sprintf "sb 0x%x free+used <> capacity" sb.base));
                used := !used + (sb.in_use * sb.class_bytes);
                held := !held + (sb.capacity * sb.class_bytes))
              sbs)
          heap.blocks;
        if !used <> heap.used then
          raise (Bad (Printf.sprintf "heap %d used %d <> %d" heap.index heap.used !used));
        if !held <> heap.held then
          raise (Bad (Printf.sprintf "heap %d held %d <> %d" heap.index heap.held !held)))
      t.heaps;
    Ok ()
  with Bad m -> fail "%s" m

let superblock_count t = t.nsuperblocks

let global_superblocks t =
  Array.fold_left (fun acc sbs -> acc + List.length sbs) 0 t.heaps.(0).blocks

let transfers_to_global t = t.transfers

let held_bytes t = Array.fold_left (fun acc h -> acc + h.held) 0 t.heaps

let allocator t =
  Allocator.instrument
  { Allocator.name = "hoard";
    malloc = (fun ctx size -> malloc t ctx size);
    free = (fun ctx user -> free t ctx user);
    usable_size = (fun user -> usable_size t user);
    stats = t.stats;
    origins = Hashtbl.create 8;
    validate = (fun () -> validate t);
  }
