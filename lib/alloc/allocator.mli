(** The common allocator interface.

    An allocator is a record of closures over its hidden state, so that
    wrappers (e.g. {!Aligned}) and the benchmark drivers can treat every
    implementation — ptmalloc, the serial Solaris model, the per-thread
    baseline, the slab allocator — uniformly, the way the paper treats
    each [malloc] as a black box.

    Addresses returned by [malloc] are user-data addresses in the owning
    process's simulated address space; the caller may {!Mb_machine.Machine.write_mem}
    them. [malloc] consumes simulated time on the calling thread. *)

type t = {
  name : string;
  malloc : Mb_machine.Machine.ctx -> int -> int;
      (** [malloc ctx size] returns the user address of a new block of at
          least [size] bytes.
          @raise Mb_fault.Injector.Alloc_failure when the address space
          or arena space is exhausted (see {!out_of_memory}). *)
  free : Mb_machine.Machine.ctx -> int -> unit;
      (** [free ctx addr] releases a block previously returned by
          [malloc]. @raise Invalid_argument on a bad address (the
          simulation's equivalent of heap corruption). *)
  usable_size : int -> int;
      (** Bytes actually reserved for the block at a user address
          (chunk size minus header) — the allocator's internal
          fragmentation, inspectable for tests. *)
  stats : Astats.t;
  validate : unit -> (unit, string) result;
      (** Full heap-invariant check (boundary tags, bin membership,
          overlap freedom); [Error msg] pinpoints the first violation. *)
  origins : (int, int) Hashtbl.t;
      (** {!memalign} bookkeeping (aligned -> raw address); create with
          [Hashtbl.create 8]. Wrappers that share the inner allocator's
          state should share this table too. *)
}

val out_of_memory : ?bytes:int -> string -> 'a
(** Raise {!Mb_fault.Injector.Alloc_failure} naming the allocator and,
    when known, the request size. Every allocator's exhaustion path
    funnels through here, which is what lets {!instrument}'s retry loop
    and the workloads' degradation guards catch one structured
    exception instead of pattern-matching [Failure] strings. *)

val instrument : t -> t
(** [instrument t] is [t] with [malloc]/[free] wrapped for correctness:

    - [free] routes through the {!field-origins} table, so a raw [free]
      of a {!memalign}'d user address releases the chunk it was carved
      from instead of corrupting the heap;
    - when the machine's {!Mb_fault.Injector.t} is armed, an
      [Alloc_failure] from the underlying allocator is retried up to
      {!Mb_fault.Injector.max_retries} times with exponential backoff
      in {e simulated} time ({!Mb_fault.Injector.backoff_cycles}), so
      injected reservation failures are survived deterministically;
      only an exhausted retry budget lets the failure surface;
    - when the machine's {!Mb_check.Checker.t} is armed, block
      lifetimes are reported to it ([on_alloc]/[on_free]) and
      allocator-internal accesses run inside runtime-suppression
      brackets; a double-free is recorded as a finding and suppressed
      rather than crashing the run.

    Every concrete allocator constructor applies this to what it
    returns. The wrapper shares the inner allocator's state (stats,
    origins, validate), and with checking off it adds one hashtable
    lookup per free and nothing per malloc. *)

(** {1 Derived entry points}

    The rest of the C allocation API, built portably on [malloc]/[free]/
    [usable_size] the way early libc shims did. Costs are charged to the
    calling thread: zeroing and copying consume cycles proportional to
    the bytes moved. *)

val calloc : t -> Mb_machine.Machine.ctx -> count:int -> size:int -> int
(** [calloc t ctx ~count ~size] allocates [count * size] zeroed bytes
    (the zeroing both costs time and demand-pages the block).
    @raise Invalid_argument on overflowing [count * size]. *)

val realloc : t -> Mb_machine.Machine.ctx -> int -> int -> int
(** [realloc t ctx addr new_size] grows or shrinks a block. Returns the
    (possibly moved) address; shrinking and fitting growth are in-place,
    a real move copies the old contents at memcpy cost. [realloc t ctx
    addr 0] frees and returns 0; [realloc t ctx 0 n] is [malloc n].
    [addr] may be a {!memalign}'d block: the raw chunk is sized and
    freed through the {!field-origins} table (and the origin entry
    retired when the block moves). *)

val memalign : t -> Mb_machine.Machine.ctx -> alignment:int -> int -> int
(** [memalign t ctx ~alignment size] returns a block aligned to
    [alignment] (a power of two). Over-allocates and remembers the
    original address, like the classic portable implementation; blocks
    from [memalign] must be released with {!free_aligned}. *)

val free_aligned : t -> Mb_machine.Machine.ctx -> int -> unit
(** Releases a {!memalign} block (also accepts plain [malloc] blocks,
    so callers can treat the two uniformly). *)

val zero_cost_cycles : int -> int
(** Cycles charged to zero [n] bytes (exposed for tests). *)

val copy_cost_cycles : int -> int
(** Cycles charged to copy [n] bytes (exposed for tests). *)
