(** The single-lock allocator: one {!Dlheap} behind one process-wide
    mutex — the structure of the Solaris 2.6 libc allocator whose Table 2
    collapse motivates the paper, and of any "thread-safe by adding a
    single lock" vendor malloc (section 1).

    Whether the contention turns into a convoy is the machine's choice:
    on the [dual_ultrasparc] preset (no adaptive spin) every contended
    acquisition blocks; on a Linux preset it spins first. The
    [ablate-spin] bench isolates exactly that difference. *)

type t
(** One serial-allocator instance: a heap, its mutex, and statistics. *)

val make : Mb_machine.Machine.proc -> ?costs:Costs.t -> ?params:Dlheap.params -> unit -> t
(** Costs default to {!Costs.solaris} (the paper's fastest
    single-threaded allocator). *)

val allocator : t -> Allocator.t
(** The uniform allocator record over this instance. *)

val lock_contentions : t -> int
(** Acquisitions of the single lock that found it held. *)

val lock_acquisitions : t -> int
(** Total acquisitions of the single lock (two per malloc/free pair). *)

val heap : t -> Dlheap.t
(** The underlying heap, for tests and introspection. *)
