(** A Doug Lea-style heap arena over simulated memory.

    This is the building block under both glibc's ptmalloc (one {!t} per
    arena) and the Solaris-model serial allocator (one {!t} under one
    lock): boundary-tagged chunks, exact-fit small bins plus sorted
    large bins, split and coalesce, a wilderness ("top") chunk extended
    by [sbrk] (main heap) or carved from a pre-mapped region (sub-heap),
    direct [mmap] for requests at or above the threshold — the paper's
    "sbrk for allocations smaller than 32 pages, mmap for larger" — and
    an [mmap] fallback when [sbrk] hits a pre-existing mapping (the
    post-2.1.3 glibc behaviour discussed in section 3).

    A heap performs no locking; callers serialize access (that division
    of labour is exactly glibc's). All operations consume simulated time
    on the calling thread and fault pages on first touch. *)

type t
(** One heap arena: its chunk segment, bins, top chunk, and direct
    mmap list. *)

type params = {
  mmap_threshold : int;     (** requests >= this go to direct mmap (bytes) *)
  trim_threshold : int;     (** main-heap top larger than this is returned via negative sbrk *)
  top_pad : int;            (** extra bytes requested on each top extension *)
  sub_heap_bytes : int;     (** region size reserved for each sub-heap *)
  use_fastbins : bool;      (** glibc-2.3-style fast path: frees of chunks up to 80 bytes skip coalescing into per-size LIFO caches, consolidated in bulk before the heap would otherwise grow. Off by default — the study's subject is the 2.0/2.1 allocator; the [ablate-fastbins] bench measures what the evolution buys *)
  defer_coalescing : bool;  (** skip neighbour merges on small-chunk frees: the chunk is tagged free and LIFO-pushed into its exact-spacing bin (priced at {!Costs.t.deferred_free}), immediately reusable through the exact-fit fast path; merges happen wholesale when the heap would otherwise grow. Off by default — a racing variant, not a change to the study's subject; the [ablate-deferred] bench measures it *)
  exact_fit : bool;         (** serve a small request whose exact-spacing bin is occupied straight from that bin's LIFO head — same chunk, same simulated charges as the general first-fit scan (each small bin holds exactly one size), minus the host-side scan and split bookkeeping. On by default; the off position exists so the property tests can prove the address and cost streams are identical either way *)
  mmap_fallback : bool;     (** retry a failed [sbrk] arena growth with [mmap], the post-2.1.3 glibc behaviour the paper's section 3 describes; turning it off models the older libc that simply fails when the brk hits a mapping *)
}

val default_params : params
(** 32-page mmap threshold (the paper's figure), 128 KB trim threshold,
    4 KB top pad, 1 MB sub-heaps (early ptmalloc's HEAP_MAX_SIZE),
    fastbins off. *)

val fastbin_limit : int
(** Largest chunk size served by the fastbin path (80). *)

val fastbin_chunks : t -> int
(** Chunks currently parked in fastbins. *)

val consolidate : t -> Mb_machine.Machine.ctx -> int
(** Drain the fastbins through the normal coalescing path (glibc's
    [malloc_consolidate]); returns the number of chunks drained. *)

val consolidate_deferred : t -> Mb_machine.Machine.ctx -> int
(** Merge every binned free chunk with its free neighbours — the bulk
    pass backing {!params.defer_coalescing}; returns the number of
    chunks passed through the coalescer. *)

val header_bytes : int
(** Per-chunk bookkeeping overhead (8, as in dlmalloc). *)

val min_chunk_bytes : int
(** Smallest chunk the heap will carve (16 bytes, header included). *)

val create_main : Mb_machine.Machine.proc -> costs:Costs.t -> params:params -> stats:Astats.t -> t
(** The process's primary heap, growing at the break. Lazy: the first
    allocation performs the initial [sbrk]. *)

val create_sub :
  Mb_machine.Machine.ctx -> costs:Costs.t -> params:params -> stats:Astats.t -> t option
(** A ptmalloc-style sub-heap: reserves [sub_heap_bytes] of address space
    with [mmap] immediately (hence needs a running thread) and carves its
    top chunk from it. [None] if the address space is exhausted. *)

val malloc : t -> Mb_machine.Machine.ctx -> int -> int option
(** [malloc t ctx size] returns the user address of a block of at least
    [size] bytes, or [None] if this heap cannot satisfy it (sub-heap
    region full, or main heap blocked by both the brk ceiling and mmap
    exhaustion). [size] must be positive. *)

val free : t -> Mb_machine.Machine.ctx -> int -> unit
(** Releases a block owned by this heap.
    @raise Invalid_argument on an address this heap does not own or a
    double free. *)

val owns : t -> int -> bool
(** Whether a user address lies in this heap's segment or one of its
    direct-mmapped chunks. How ptmalloc routes [free] to the right
    arena. *)

val usable_size : t -> int -> int
(** Reserved bytes behind a user address (>= the requested size). *)

(** {1 Introspection (tests, reports)} *)

val is_sub : t -> bool
(** True for sub-heaps ({!create_sub}), false for the main heap. *)

val segment_bounds : t -> int * int
(** Current [base, end) of the contiguous chunk segment. *)

val top_bytes : t -> int
(** Size of the wilderness chunk. *)

val free_bytes : t -> int
(** Bytes in binned free chunks (excluding top). *)

val live_chunks : t -> int
(** Number of currently allocated chunks (direct-mmapped included). *)

val used_bytes : t -> int
(** Bytes held by allocated chunks (headers included), excluding
    direct-mmapped blocks. *)

val mmapped_bytes : t -> int
(** Bytes in live direct-mmapped chunks. *)

val mmapped_count : t -> int
(** Number of live direct-mmapped chunks. *)

val set_params : t -> params -> unit
(** Replace the tunables (the [mallopt] path); affects subsequent
    operations only. *)

val params : t -> params
(** The tunables currently in force. *)

val validate : t -> (unit, string) result
(** Full structural check: the segment tiles exactly into chunks,
    boundary tags agree, no two adjacent free chunks, bin lists
    well-formed and correctly populated, large bins sorted. *)
