module M = Mb_machine.Machine
module Int_table = Mb_sim.Int_table

type params = {
  mmap_threshold : int;
  trim_threshold : int;
  top_pad : int;
  sub_heap_bytes : int;
  use_fastbins : bool;
  defer_coalescing : bool;
  exact_fit : bool;
  mmap_fallback : bool;
}

let default_params =
  { mmap_threshold = 32 * 4096;
    trim_threshold = 128 * 1024;
    top_pad = 4096;
    sub_heap_bytes = 1024 * 1024;
    use_fastbins = false;
    defer_coalescing = false;
    exact_fit = true;
    mmap_fallback = true;
  }

let header_bytes = 8

let min_chunk_bytes = 16

let align = 8

(* A chunk is bookkeeping for [size] bytes at [addr]; user data starts at
   [addr + header_bytes]. [prev_size] is the boundary tag: the size of the
   chunk immediately below in the segment (0 at the segment base). Free
   chunks are linked into their bin through [fd]/[bk]. *)
type chunk = {
  addr : int;
  mutable size : int;
  mutable is_free : bool;
  mutable prev_size : int;
  mutable fd : chunk option;
  mutable bk : chunk option;
  mutable bin : int;  (* -1 when not binned *)
  mutable in_fastbin : bool;
}

(* The wilderness chunk; kept out of the bins and the chunk table. *)
type top = { mutable taddr : int; mutable tsize : int; mutable tprev_size : int }

type kind =
  | Main                                      (* grows at the process break *)
  | Sub of { region_base : int; region_len : int; mutable sub_brk : int }

type t = {
  proc : M.proc;
  costs : Costs.t;
  mutable params : params;
  stats : Astats.t;
  kind : kind;
  bins : chunk option array;
  mutable binmap_small : int;  (* bit i set iff bins.(i) is non-empty, for
                                  the 62 exact-spacing small bins — the
                                  first-fit scan is a ctz instead of a
                                  walk over empty slots *)
  mutable binmap_large : int;  (* same, bit (i - 62) for bins 62..95 *)
  fastbins : chunk option array;              (* glibc-2.3-style no-coalesce caches, opt-in *)
  chunks : chunk Int_table.t;                 (* every non-top chunk, by addr;
                                                 probed on every free and
                                                 coalesce, so open addressing *)
  mm_chunks : int Int_table.t;                (* direct-mmapped: chunk addr -> mapped len *)
  top : top;
  mutable seg_base : int;                     (* -1 until the first growth *)
  mutable initialized : bool;
}

let nbins = 96

let small_limit = 512

(* Small bins: exact 8-byte spacing for chunk sizes 16..511 -> indexes
   0..61. Large bins: four per size doubling, dlmalloc style. *)
let bin_index size =
  if size < small_limit then (size - min_chunk_bytes) / align
  else begin
    let rec find idx lo width =
      if idx >= nbins - 1 then nbins - 1
      else begin
        (* Bins [idx .. idx+3] cover [lo, 2*lo) in four steps of [width];
           clamp at the catch-all last bin (giant coalesced regions). *)
        let doubling_end = 2 * lo in
        if size < doubling_end then min (nbins - 1) (idx + ((size - lo) / width))
        else find (idx + 4) doubling_end (width * 2)
      end
    in
    find 62 small_limit (small_limit / 4)
  end

let is_small size = size < small_limit

let small_bin_count = (small_limit - min_chunk_bytes) / align  (* bins 0..61 *)

(* Fastbins: chunk sizes 16..80, 8-byte spacing (glibc 2.3's fast path,
   modelled here as the opt-in evolution the ablate-fastbins bench
   studies). Fastbin chunks stay marked in use so neighbours never
   coalesce with them; consolidation happens in bulk when the heap must
   otherwise grow. *)
let fastbin_limit = 80

let nfastbins = ((fastbin_limit - min_chunk_bytes) / align) + 1

let fastbin_index size = (size - min_chunk_bytes) / align

let fastbin_cycles = 85

let chunk_size_for request = max min_chunk_bytes ((request + header_bytes + align - 1) / align * align)

let create_main proc ~costs ~params ~stats =
  { proc;
    costs;
    params;
    stats;
    kind = Main;
    bins = Array.make nbins None;
    binmap_small = 0;
    binmap_large = 0;
    fastbins = Array.make nfastbins None;
    chunks = Int_table.create ~initial:256 ();
    mm_chunks = Int_table.create ~initial:16 ();
    top = { taddr = 0; tsize = 0; tprev_size = 0 };
    seg_base = -1;
    initialized = false;
  }

let create_sub ctx ~costs ~params ~stats =
  match M.mmap ctx ~len:params.sub_heap_bytes with
  | None -> None
  | Some region_base ->
      let t =
        { proc = M.proc ctx;
          costs;
          params;
          stats;
          kind = Sub { region_base; region_len = params.sub_heap_bytes; sub_brk = region_base };
          bins = Array.make nbins None;
          binmap_small = 0;
          binmap_large = 0;
          fastbins = Array.make nfastbins None;
          chunks = Int_table.create ~initial:256 ();
          mm_chunks = Int_table.create ~initial:16 ();
          top = { taddr = region_base; tsize = 0; tprev_size = 0 };
          seg_base = region_base;
          initialized = true;
        }
      in
      stats.Astats.arenas_created <- stats.Astats.arenas_created + 1;
      Some t

(* --- bin list management ------------------------------------------------ *)

(* Occupancy bitmap over the bins, split small/large because 96 bins
   exceed one OCaml int. Maintained at the only two places a bin's
   emptiness can change ([bin_insert], [unlink]); [search_bins] and the
   exact-fit fast path read it so a first-fit scan never visits an
   empty slot. *)

let binmap_set t idx =
  if idx < small_bin_count then t.binmap_small <- t.binmap_small lor (1 lsl idx)
  else t.binmap_large <- t.binmap_large lor (1 lsl (idx - small_bin_count))

let binmap_clear_if_empty t idx =
  if t.bins.(idx) = None then
    if idx < small_bin_count then t.binmap_small <- t.binmap_small land lnot (1 lsl idx)
    else t.binmap_large <- t.binmap_large land lnot (1 lsl (idx - small_bin_count))

(* Count trailing zeros of a non-zero word (62 bits used at most). *)
let ctz v =
  let n = ref 0 and v = ref v in
  if !v land 0xFFFFFFFF = 0 then begin n := 32; v := !v lsr 32 end;
  if !v land 0xFFFF = 0 then begin n := !n + 16; v := !v lsr 16 end;
  if !v land 0xFF = 0 then begin n := !n + 8; v := !v lsr 8 end;
  if !v land 0xF = 0 then begin n := !n + 4; v := !v lsr 4 end;
  if !v land 0x3 = 0 then begin n := !n + 2; v := !v lsr 2 end;
  if !v land 0x1 = 0 then incr n;
  !n

let unlink t c =
  let idx = c.bin in
  (match c.bk with
  | Some b -> b.fd <- c.fd
  | None -> t.bins.(idx) <- c.fd);
  (match c.fd with Some f -> f.bk <- c.bk | None -> ());
  c.fd <- None;
  c.bk <- None;
  c.bin <- -1;
  binmap_clear_if_empty t idx

(* Insert into its bin: small bins are LIFO; large bins are kept sorted
   ascending by size so the first fitting chunk is the best fit. Returns
   the number of list nodes examined (charged by the caller). *)
let bin_insert t c =
  let idx = bin_index c.size in
  c.bin <- idx;
  binmap_set t idx;
  if is_small c.size then begin
    (match t.bins.(idx) with
    | Some head ->
        head.bk <- Some c;
        c.fd <- Some head
    | None -> ());
    t.bins.(idx) <- Some c;
    1
  end
  else begin
    let rec walk probes prev cur =
      match cur with
      | Some node when node.size < c.size -> walk (probes + 1) cur node.fd
      | _ ->
          c.fd <- cur;
          c.bk <- prev;
          (match cur with Some node -> node.bk <- Some c | None -> ());
          (match prev with Some node -> node.fd <- Some c | None -> t.bins.(idx) <- Some c);
          probes
    in
    walk 1 None t.bins.(idx)
  end

(* --- boundary-tag helpers ---------------------------------------------- *)

let top_end t = t.top.taddr + t.top.tsize

(* Record that the chunk starting at [addr] now follows one of [size]
   bytes. [addr] may be the top chunk or beyond the segment end. *)
let set_prev_size t addr size =
  if addr = t.top.taddr then t.top.tprev_size <- size
  else
    match Int_table.find_exn t.chunks addr with
    | c -> c.prev_size <- size
    | exception Not_found -> ()  (* beyond the segment end *)

let prev_chunk t c =
  if c.prev_size = 0 then None
  else Int_table.find_opt t.chunks (c.addr - c.prev_size)

(* --- growth -------------------------------------------------------------- *)

(* Extend the top chunk by at least [need] bytes; false when this heap's
   backing cannot grow further. *)
let grow_top t ctx need =
  match t.kind with
  | Main -> begin
      let request = (need + t.params.top_pad + 4095) / 4096 * 4096 in
      match M.sbrk ctx request with
      | Some base ->
          if not t.initialized then begin
            t.seg_base <- base;
            t.top.taddr <- base;
            t.top.tsize <- 0;
            t.initialized <- true
          end;
          (* sbrk growth is contiguous with the previous break. *)
          t.top.tsize <- t.top.tsize + request;
          true
      | None ->
          t.stats.Astats.grow_failures <- t.stats.Astats.grow_failures + 1;
          false
    end
  | Sub s ->
      let limit = s.region_base + s.region_len in
      let request = min (limit - s.sub_brk) (max need t.params.top_pad) in
      if request < need then begin
        t.stats.Astats.grow_failures <- t.stats.Astats.grow_failures + 1;
        false
      end
      else begin
        s.sub_brk <- s.sub_brk + request;
        t.top.tsize <- t.top.tsize + request;
        true
      end

(* Give back an oversized main-heap top via a negative sbrk; sub-heaps
   keep their reservation (as early ptmalloc did). *)
let maybe_trim t ctx =
  match t.kind with
  | Sub _ -> ()
  | Main ->
      if t.initialized && t.top.tsize > t.params.trim_threshold then begin
        let keep = t.params.top_pad in
        let release = (t.top.tsize - keep) / 4096 * 4096 in
        if release > 0 then
          match M.sbrk ctx (-release) with
          | Some _ -> t.top.tsize <- t.top.tsize - release
          | None -> ()
      end

(* --- malloc -------------------------------------------------------------- *)

let charge_probes t ctx probes = if probes > 0 then M.work ctx (Costs.apply t.costs (t.costs.Costs.bin_probe * probes))

(* Split [size] bytes off the front of a free (unlinked) chunk; the
   remainder goes back to a bin. *)
let split_chunk t ctx c size =
  let rem_size = c.size - size in
  if rem_size >= min_chunk_bytes then begin
    let rem =
      { addr = c.addr + size;
        size = rem_size;
        is_free = true;
        prev_size = size;
        fd = None;
        bk = None;
        bin = -1;
        in_fastbin = false;
      }
    in
    c.size <- size;
    Int_table.set t.chunks rem.addr rem;
    set_prev_size t (rem.addr + rem.size) rem.size;
    let probes = bin_insert t rem in
    M.work ctx (Costs.apply t.costs t.costs.Costs.split);
    charge_probes t ctx probes;
    M.write_mem ctx rem.addr
  end

(* Take [size] bytes from the bottom of the wilderness. *)
let carve_top t ctx size =
  let c =
    { addr = t.top.taddr;
      size;
      is_free = false;
      prev_size = t.top.tprev_size;
      fd = None;
      bk = None;
      bin = -1;
      in_fastbin = false;
    }
  in
  t.top.taddr <- t.top.taddr + size;
  t.top.tsize <- t.top.tsize - size;
  t.top.tprev_size <- size;
  Int_table.set t.chunks c.addr c;
  M.write_mem ctx c.addr;
  c

(* Accounting convention: live/requested bytes are counted as usable
   bytes (chunk size minus header) on both malloc and free, so the two
   sides always balance. *)
let malloc_mmapped t ctx csize =
  let len = (csize + 4095) / 4096 * 4096 in
  match M.mmap ctx ~len with
  | None -> None
  | Some addr ->
      Int_table.set t.mm_chunks addr len;
      t.stats.Astats.mmapped_chunks <- t.stats.Astats.mmapped_chunks + 1;
      M.write_mem ctx addr;
      Astats.record_malloc t.stats (len - header_bytes);
      Some (addr + header_bytes)

(* Coalesce a newly freed chunk with its neighbours and bin it (or merge
   it into the wilderness). [c.is_free] must already be set. *)
let coalesce_and_bin t ctx c =
  (* Coalesce backward. *)
  let c =
    match prev_chunk t c with
    | Some p when p.is_free ->
        unlink t p;
        Int_table.remove t.chunks c.addr;
        p.size <- p.size + c.size;
        set_prev_size t (p.addr + p.size) p.size;
        M.work ctx (Costs.apply t.costs t.costs.Costs.coalesce);
        M.write_mem ctx p.addr;
        p
    | Some _ | None -> c
  in
  (* Coalesce forward, possibly into the wilderness. *)
  let next_addr = c.addr + c.size in
  if next_addr = t.top.taddr then begin
    Int_table.remove t.chunks c.addr;
    t.top.taddr <- c.addr;
    t.top.tsize <- t.top.tsize + c.size;
    t.top.tprev_size <- c.prev_size;
    M.work ctx (Costs.apply t.costs t.costs.Costs.coalesce);
    M.write_mem ctx c.addr;
    maybe_trim t ctx
  end
  else begin
    (match Int_table.find_opt t.chunks next_addr with
    | Some n when n.is_free ->
        unlink t n;
        Int_table.remove t.chunks n.addr;
        c.size <- c.size + n.size;
        set_prev_size t (c.addr + c.size) c.size;
        M.work ctx (Costs.apply t.costs t.costs.Costs.coalesce)
    | Some _ | None -> ());
    let probes = bin_insert t c in
    charge_probes t ctx probes;
    M.write_mem ctx c.addr
  end

(* Merge every binned free chunk with its free neighbours — the bulk
   companion to [defer_coalescing]: frees skip the merge work, and this
   pass performs it wholesale when the heap would otherwise grow.
   Returns the number of chunks that went through the coalescing path.
   Chunks absorbed by an earlier merge in the same pass are recognized
   by their cleared bin tag and skipped. *)
let consolidate_deferred t ctx =
  let pending = ref [] in
  for i = nbins - 1 downto 0 do
    let rec collect node =
      match node with
      | None -> ()
      | Some c ->
          pending := c :: !pending;
          collect c.fd
    in
    collect t.bins.(i)
  done;
  let merged = ref 0 in
  List.iter
    (fun c ->
      if c.is_free && c.bin >= 0 then begin
        incr merged;
        unlink t c;
        coalesce_and_bin t ctx c
      end)
    !pending;
  t.stats.Astats.consolidations <- t.stats.Astats.consolidations + 1;
  !merged

(* Drain every fastbin through the normal coalescing path — what glibc's
   malloc_consolidate does before growing the heap. Returns the number
   of chunks consolidated. *)
let consolidate_fastbins t ctx =
  let drained = ref 0 in
  for i = 0 to nfastbins - 1 do
    let rec drain node =
      match node with
      | None -> ()
      | Some c ->
          let next = c.fd in
          c.fd <- None;
          c.in_fastbin <- false;
          c.is_free <- true;
          incr drained;
          coalesce_and_bin t ctx c;
          drain next
    in
    drain t.fastbins.(i);
    t.fastbins.(i) <- None
  done;
  !drained

(* Scan bins at [idx] and above for the first chunk of at least [csize];
   large bins are sorted so the first fit within a bin is best. The
   occupancy bitmaps drive the scan, so only non-empty bins are visited —
   exactly the bins the plain walk charged probes for, so the simulated
   cost (and the chunk chosen) is identical to a linear scan. *)
let search_bins t idx csize =
  let probes = ref 0 in
  let found = ref None in
  if idx < small_bin_count then begin
    let bits = t.binmap_small land ((-1) lsl idx) in
    if bits <> 0 then begin
      match t.bins.(ctz bits) with
      | Some head ->
          incr probes;
          (* Exact-spacing bin: the head always fits if the bin is right. *)
          if head.size >= csize then found := Some head
      | None -> assert false
    end
  end;
  if !found = None then begin
    let start = if idx < small_bin_count then 0 else idx - small_bin_count in
    let bits = ref (t.binmap_large land ((-1) lsl start)) in
    while !found = None && !bits <> 0 do
      let i = small_bin_count + ctz !bits in
      bits := !bits land (!bits - 1);
      match t.bins.(i) with
      | Some head ->
          incr probes;
          let rec walk node =
            match node with
            | None -> ()
            | Some c ->
                incr probes;
                if c.size >= csize then found := Some c else walk c.fd
          in
          walk (Some head)
      | None -> assert false
    done
  end;
  (!found, !probes)

let malloc t ctx request =
  if request <= 0 then invalid_arg "Dlheap.malloc: size <= 0";
  let csize = chunk_size_for request in
  if
    t.params.use_fastbins && csize <= fastbin_limit && t.fastbins.(fastbin_index csize) <> None
  then begin
    (* glibc fast path: exact-size LIFO pop, no unlink or split work —
       charged instead of, not on top of, the regular malloc path. *)
    match t.fastbins.(fastbin_index csize) with
    | Some c ->
        t.fastbins.(fastbin_index csize) <- c.fd;
        c.fd <- None;
        c.in_fastbin <- false;
        M.work ctx (Costs.apply t.costs fastbin_cycles);
        M.write_mem ctx c.addr;
        Astats.record_malloc t.stats (c.size - header_bytes);
        Some (c.addr + header_bytes)
    | None -> assert false
  end
  else if csize >= t.params.mmap_threshold then begin
    M.work ctx (Costs.apply t.costs t.costs.Costs.malloc_base);
    malloc_mmapped t ctx csize
  end
  else if
    t.params.exact_fit && is_small csize
    && t.binmap_small land (1 lsl ((csize - min_chunk_bytes) / align)) <> 0
  then begin
    (* Exact-fit fast path: the request's own small bin is occupied, so
       the answer is its LIFO head — same chunk, same charges (base +
       one probe; a zero-remainder split charges nothing) as the general
       scan would produce, without the scan, the general unlink or the
       split bookkeeping. *)
    M.work ctx (Costs.apply t.costs t.costs.Costs.malloc_base);
    let idx = (csize - min_chunk_bytes) / align in
    match t.bins.(idx) with
    | Some c when c.size = csize ->
        charge_probes t ctx 1;
        (match c.fd with
        | Some f ->
            f.bk <- None;
            t.bins.(idx) <- c.fd
        | None ->
            t.bins.(idx) <- None;
            t.binmap_small <- t.binmap_small land lnot (1 lsl idx));
        c.fd <- None;
        c.bin <- -1;
        c.is_free <- false;
        M.write_mem ctx c.addr;
        Astats.record_malloc t.stats (c.size - header_bytes);
        Some (c.addr + header_bytes)
    | Some _ | None -> assert false (* exact spacing: the head's size is the bin's size *)
  end
  else begin
    M.work ctx (Costs.apply t.costs t.costs.Costs.malloc_base);
    let idx = bin_index csize in
    let found, probes = search_bins t idx csize in
    charge_probes t ctx probes;
    match found with
    | Some c ->
        unlink t c;
        c.is_free <- false;
        split_chunk t ctx c csize;
        M.write_mem ctx c.addr;
        Astats.record_malloc t.stats (c.size - header_bytes);
        Some (c.addr + header_bytes)
    | None ->
        (* Nothing binned fits: use the wilderness, growing it if needed. *)
        if t.top.tsize >= csize + min_chunk_bytes then begin
          let c = carve_top t ctx csize in
          Astats.record_malloc t.stats (c.size - header_bytes);
          Some (c.addr + header_bytes)
        end
        else if
          (t.params.use_fastbins && consolidate_fastbins t ctx > 0)
          || (t.params.defer_coalescing && consolidate_deferred t ctx > 0)
        then begin
          (* glibc consolidates the fastbins (and, with coalescing
             deferred, the binned free chunks) before growing the heap;
             retry the bins with the coalesced chunks available. *)
          let found, probes = search_bins t idx csize in
          charge_probes t ctx probes;
          match found with
          | Some c ->
              unlink t c;
              c.is_free <- false;
              split_chunk t ctx c csize;
              M.write_mem ctx c.addr;
              Astats.record_malloc t.stats (c.size - header_bytes);
              Some (c.addr + header_bytes)
          | None ->
              if t.top.tsize >= csize + min_chunk_bytes || grow_top t ctx (csize + min_chunk_bytes)
              then begin
                let c = carve_top t ctx csize in
                Astats.record_malloc t.stats (c.size - header_bytes);
                Some (c.addr + header_bytes)
              end
              else begin
                match t.kind with
                | Main -> malloc_mmapped t ctx csize
                | Sub _ -> None
              end
        end
        else if grow_top t ctx (csize + min_chunk_bytes) then begin
          let c = carve_top t ctx csize in
          Astats.record_malloc t.stats (c.size - header_bytes);
          Some (c.addr + header_bytes)
        end
        else begin
          match t.kind with
          | Main when t.params.mmap_fallback ->
              (* The brk hit a mapping: fall back to mmap for this
                 request, as glibc does after 2.1.3. *)
              malloc_mmapped t ctx csize
          | Main | Sub _ -> None
        end
  end

(* --- free ---------------------------------------------------------------- *)

let free t ctx user =
  let caddr = user - header_bytes in
  if Int_table.mem t.mm_chunks caddr then begin
    M.work ctx (Costs.apply t.costs t.costs.Costs.free_base);
    let len = Int_table.find_exn t.mm_chunks caddr in
    Int_table.remove t.mm_chunks caddr;
    M.munmap ctx caddr ~len;
    Astats.record_free t.stats (len - header_bytes)
  end
  else begin
    let c =
      match Int_table.find_exn t.chunks caddr with
      | c -> c
      | exception Not_found -> invalid_arg "Dlheap.free: address not owned by this heap"
    in
    if c.is_free then invalid_arg "Dlheap.free: double free";
    if c.in_fastbin then invalid_arg "Dlheap.free: double free (fastbin)";
    M.read_mem ctx c.addr;
    Astats.record_free t.stats (c.size - header_bytes);
    if t.params.use_fastbins && c.size <= fastbin_limit then begin
      (* Fast path: no coalescing, the chunk stays marked in use. *)
      M.work ctx (Costs.apply t.costs fastbin_cycles);
      let idx = fastbin_index c.size in
      c.in_fastbin <- true;
      c.fd <- t.fastbins.(idx);
      t.fastbins.(idx) <- Some c;
      M.write_mem ctx c.addr
    end
    else if t.params.defer_coalescing && is_small c.size then begin
      (* Deferred coalescing: tag the chunk free and LIFO-push it into
         its exact-spacing bin, leaving the neighbour merges to a bulk
         [consolidate_deferred] pass when the heap would otherwise
         grow. The chunk is immediately reusable through the exact-fit
         fast path. *)
      M.work ctx (Costs.apply t.costs t.costs.Costs.deferred_free);
      t.stats.Astats.deferred_frees <- t.stats.Astats.deferred_frees + 1;
      c.is_free <- true;
      let probes = bin_insert t c in
      charge_probes t ctx probes;
      M.write_mem ctx c.addr
    end
    else begin
      M.work ctx (Costs.apply t.costs t.costs.Costs.free_base);
      c.is_free <- true;
      coalesce_and_bin t ctx c
    end
  end

(* --- queries -------------------------------------------------------------- *)

let owns t user =
  let caddr = user - header_bytes in
  if Int_table.mem t.mm_chunks caddr then true
  else
    match t.kind with
    | Main -> t.initialized && caddr >= t.seg_base && caddr < top_end t
    | Sub s -> caddr >= s.region_base && caddr < s.region_base + s.region_len

let usable_size t user =
  let caddr = user - header_bytes in
  match Int_table.find_opt t.mm_chunks caddr with
  | Some len -> len - header_bytes
  | None -> (
      match Int_table.find_opt t.chunks caddr with
      | Some c -> c.size - header_bytes
      | None -> invalid_arg "Dlheap.usable_size: unknown address")

let is_sub t = match t.kind with Main -> false | Sub _ -> true

let segment_bounds t = if t.initialized then (t.seg_base, top_end t) else (0, 0)

let top_bytes t = t.top.tsize

let free_bytes t =
  Int_table.fold (fun _ c acc -> if c.is_free then acc + c.size else acc) t.chunks 0

let live_chunks t =
  Int_table.fold (fun _ c acc -> if c.is_free then acc else acc + 1) t.chunks 0

let used_bytes t =
  Int_table.fold (fun _ c acc -> if c.is_free then acc else acc + c.size) t.chunks 0

let mmapped_bytes t = Int_table.fold (fun _ len acc -> acc + len) t.mm_chunks 0

let mmapped_count t = Int_table.length t.mm_chunks

let set_params t params = t.params <- params

let fastbin_chunks t =
  let count = ref 0 in
  Array.iter
    (fun head ->
      let rec walk = function None -> () | Some c -> incr count; walk c.fd in
      walk head)
    t.fastbins;
  !count

let consolidate = consolidate_fastbins

let params t = t.params

(* --- validation ------------------------------------------------------------ *)

let validate t =
  let fail fmt = Printf.ksprintf (fun msg -> Error msg) fmt in
  let check_segment () =
    if not t.initialized then Ok ()
    else begin
      let rec walk addr prev_size prev_free =
        if addr = t.top.taddr then
          if t.top.tprev_size <> prev_size then
            fail "top.prev_size=%d but previous chunk has size %d" t.top.tprev_size prev_size
          else Ok ()
        else if addr > t.top.taddr then fail "chunk walk overshot top at 0x%x" addr
        else
          match Int_table.find_opt t.chunks addr with
          | None -> fail "segment hole at 0x%x" addr
          | Some c ->
              if c.size < min_chunk_bytes then fail "undersized chunk at 0x%x" addr
              else if c.size mod align <> 0 then fail "misaligned size at 0x%x" addr
              else if c.prev_size <> prev_size then
                fail "bad boundary tag at 0x%x: prev_size=%d, actual=%d" addr c.prev_size prev_size
              else if c.is_free && prev_free && not t.params.defer_coalescing then
                fail "adjacent free chunks at 0x%x" addr
              else if c.is_free && c.bin < 0 then fail "free chunk at 0x%x not in a bin" addr
              else if (not c.is_free) && c.bin >= 0 then fail "live chunk at 0x%x still binned" addr
              else walk (addr + c.size) c.size c.is_free
      in
      walk t.seg_base 0 false
    end
  in
  let same_chunk a b =
    match (a, b) with None, None -> true | Some x, Some y -> x == y | Some _, None | None, Some _ -> false
  in
  let check_bins () =
    let rec check_bin idx =
      if idx >= nbins then Ok ()
      else begin
        let rec walk prev node last_size count =
          match node with
          | None -> Ok count
          | Some c ->
              if not c.is_free then fail "bin %d holds live chunk 0x%x" idx c.addr
              else if c.bin <> idx then fail "chunk 0x%x in bin %d but tagged %d" c.addr idx c.bin
              else if bin_index c.size <> idx then
                fail "chunk 0x%x (size %d) misfiled in bin %d" c.addr c.size idx
              else if not (same_chunk c.bk prev) then fail "broken back link at 0x%x in bin %d" c.addr idx
              else if (not (is_small c.size)) && c.size < last_size then
                fail "large bin %d unsorted at 0x%x" idx c.addr
              else walk node c.fd c.size (count + 1)
        in
        match walk None t.bins.(idx) 0 0 with
        | Error _ as e -> e
        | Ok _ -> check_bin (idx + 1)
      end
    in
    check_bin 0
  in
  let check_counts () =
    let binned = ref 0 in
    Array.iter
      (fun head ->
        let rec count node = match node with None -> () | Some c -> incr binned; count c.fd in
        count head)
      t.bins;
    let free_chunks = Int_table.fold (fun _ c acc -> if c.is_free then acc + 1 else acc) t.chunks 0 in
    if !binned <> free_chunks then fail "%d free chunks but %d binned" free_chunks !binned
    else Ok ()
  in
  let check_binmap () =
    let rec check idx =
      if idx >= nbins then Ok ()
      else begin
        let bit =
          if idx < small_bin_count then t.binmap_small land (1 lsl idx)
          else t.binmap_large land (1 lsl (idx - small_bin_count))
        in
        match (t.bins.(idx), bit) with
        | Some _, 0 -> fail "bin %d occupied but binmap bit clear" idx
        | None, b when b <> 0 -> fail "bin %d empty but binmap bit set" idx
        | _ -> check (idx + 1)
      end
    in
    check 0
  in
  let check_fastbins () =
    let bad = ref None in
    Array.iteri
      (fun i head ->
        let rec walk = function
          | None -> ()
          | Some c ->
              if !bad = None then begin
                if not c.in_fastbin then
                  bad := Some (Printf.sprintf "fastbin %d holds untagged chunk 0x%x" i c.addr)
                else if c.is_free then bad := Some (Printf.sprintf "fastbin chunk 0x%x marked free" c.addr)
                else if c.size > fastbin_limit then
                  bad := Some (Printf.sprintf "oversized fastbin chunk 0x%x" c.addr)
                else if fastbin_index c.size <> i then
                  bad := Some (Printf.sprintf "fastbin chunk 0x%x misfiled" c.addr)
              end;
              walk c.fd
        in
        walk head)
      t.fastbins;
    match !bad with Some m -> Error m | None -> Ok ()
  in
  match check_segment () with
  | Error _ as e -> e
  | Ok () -> (
      match check_bins () with
      | Error _ as e -> e
      | Ok () -> (
          match check_counts () with
          | Error _ as e -> e
          | Ok () -> (
              match check_binmap () with Error _ as e -> e | Ok () -> check_fastbins ())))
