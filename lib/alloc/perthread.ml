module M = Mb_machine.Machine

let class_limit = 512

let nclasses = (class_limit / 8) + 1

(* Size class of a request: 8-byte spacing up to [class_limit]. *)
let class_of size = (size + 7) / 8

type t = {
  global : Dlheap.t;
  gmutex : M.Mutex.t;
  stats : Astats.t;        (* the facade's view *)
  heap_stats : Astats.t;   (* the shared heap's internal accounting *)
  caches : (int, int list array * int array) Hashtbl.t;  (* tid -> (per-class lists, counts) *)
  sizes : (int, int) Hashtbl.t;  (* user addr -> class bytes, for cached routing *)
  batch : int;
  cache_limit : int;
  fast_cycles : int;  (* cache-hit path *)
  costs : Costs.t;
}

let make proc ?(costs = Costs.glibc) ?(params = Dlheap.default_params) ?(batch = 16) ?(cache_limit = 64) () =
  let stats = Astats.create () in
  let heap_stats = Astats.create () in
  let global = Dlheap.create_main proc ~costs ~params ~stats:heap_stats in
  stats.Astats.arenas_created <- 1;
  { global;
    gmutex = M.Mutex.create (M.proc_machine proc) ~name:"perthread-global" ~heap:true ();
    stats;
    heap_stats;
    caches = Hashtbl.create 16;
    sizes = Hashtbl.create 1024;
    batch;
    cache_limit;
    fast_cycles = 40;
    costs;
  }

let cache_for t tid =
  match Hashtbl.find_opt t.caches tid with
  | Some c -> c
  | None ->
      let c = (Array.make nclasses [], Array.make nclasses 0) in
      Hashtbl.replace t.caches tid c;
      c

let with_global t ctx f =
  if not (M.Mutex.try_lock t.gmutex ctx) then begin
    t.stats.Astats.contended_ops <- t.stats.Astats.contended_ops + 1;
    M.Mutex.lock t.gmutex ctx
  end;
  (* Exception-safe: see Serial.with_lock. *)
  Fun.protect ~finally:(fun () -> M.Mutex.unlock t.gmutex ctx) f

let global_malloc t ctx size =
  match Dlheap.malloc t.global ctx size with
  | Some user -> user
  | None -> Allocator.out_of_memory ~bytes:size "perthread"

let malloc t ctx size =
  if size <= 0 then invalid_arg "Perthread.malloc: size <= 0";
  if size > class_limit then begin
    let user = with_global t ctx (fun () -> global_malloc t ctx size) in
    (* Record usable bytes so the later free (which can only see the
       chunk size) balances exactly. *)
    Astats.record_malloc t.stats (Dlheap.usable_size t.global user);
    user
  end
  else begin
    let cls = class_of size in
    let cls_bytes = cls * 8 in
    let lists, counts = cache_for t (M.tid ctx) in
    M.work ctx (Costs.apply t.costs t.fast_cycles);
    let user =
      match lists.(cls) with
      | user :: rest ->
          lists.(cls) <- rest;
          counts.(cls) <- counts.(cls) - 1;
          user
      | [] ->
          (* Refill a batch from the shared heap under one lock. *)
          let blocks =
            with_global t ctx (fun () -> List.init t.batch (fun _ -> global_malloc t ctx cls_bytes))
          in
          List.iter (fun u -> Hashtbl.replace t.sizes u cls_bytes) blocks;
          (match blocks with
          | user :: rest ->
              lists.(cls) <- rest;
              counts.(cls) <- List.length rest;
              user
          | [] -> Allocator.out_of_memory ~bytes:cls_bytes "perthread")
    in
    M.write_mem ctx (user - Dlheap.header_bytes);
    Astats.record_malloc t.stats cls_bytes;
    user
  end

let free t ctx user =
  match Hashtbl.find_opt t.sizes user with
  | None ->
      (* A large block: straight back to the shared heap. *)
      let size = Dlheap.usable_size t.global user in
      with_global t ctx (fun () -> Dlheap.free t.global ctx user);
      Astats.record_free t.stats size
  | Some cls_bytes ->
      let cls = class_of cls_bytes in
      let lists, counts = cache_for t (M.tid ctx) in
      M.work ctx (Costs.apply t.costs t.fast_cycles);
      Astats.record_free t.stats cls_bytes;
      lists.(cls) <- user :: lists.(cls);
      counts.(cls) <- counts.(cls) + 1;
      if counts.(cls) > t.cache_limit then begin
        (* Flush half the magazine back to the shared heap. *)
        let keep = t.cache_limit / 2 in
        let rec split i acc rest =
          if i = 0 then (List.rev acc, rest)
          else match rest with [] -> (List.rev acc, []) | x :: xs -> split (i - 1) (x :: acc) xs
        in
        let kept, flushed = split keep [] lists.(cls) in
        lists.(cls) <- kept;
        counts.(cls) <- keep;
        with_global t ctx (fun () ->
            List.iter
              (fun u ->
                Hashtbl.remove t.sizes u;
                Dlheap.free t.global ctx u)
              flushed)
      end

let usable_size t user =
  match Hashtbl.find_opt t.sizes user with
  | Some cls_bytes -> cls_bytes
  | None -> Dlheap.usable_size t.global user

let cached_objects t =
  Hashtbl.fold (fun _ (_, counts) acc -> acc + Array.fold_left ( + ) 0 counts) t.caches 0

let global_lock_acquisitions t = M.Mutex.acquisitions t.gmutex

let allocator t =
  Allocator.instrument
  { Allocator.name = "perthread";
    malloc = (fun ctx size -> malloc t ctx size);
    free = (fun ctx user -> free t ctx user);
    usable_size = (fun user -> usable_size t user);
    stats = t.stats;
    origins = Hashtbl.create 8;
    validate = (fun () -> Dlheap.validate t.global);
  }
