module M = Mb_machine.Machine

type t = {
  heap : Dlheap.t;
  mutex : M.Mutex.t;
  descriptor : int;  (* the allocator's hot lock word in libc data *)
  stats : Astats.t;
}

let make proc ?(costs = Costs.solaris) ?(params = Dlheap.default_params) () =
  let stats = Astats.create () in
  let heap = Dlheap.create_main proc ~costs ~params ~stats in
  stats.Astats.arenas_created <- 1;
  { heap;
    mutex = M.Mutex.create (M.proc_machine proc) ~name:"malloc-lock" ~heap:true ();
    descriptor = M.libc_data_address + 0x100;
    stats;
  }

let with_lock t ctx f =
  if not (M.Mutex.try_lock t.mutex ctx) then begin
    t.stats.Astats.contended_ops <- t.stats.Astats.contended_ops + 1;
    M.Mutex.lock t.mutex ctx
  end;
  M.write_mem ctx t.descriptor;
  (* Exception-safe: an [Alloc_failure] escaping [f] must not leave the
     heap lock held, or the next malloc deadlocks the simulation. *)
  Fun.protect ~finally:(fun () -> M.Mutex.unlock t.mutex ctx) f

let malloc t ctx size =
  with_lock t ctx (fun () ->
      match Dlheap.malloc t.heap ctx size with
      | Some user -> user
      | None -> Allocator.out_of_memory ~bytes:size "serial")

let free t ctx user = with_lock t ctx (fun () -> Dlheap.free t.heap ctx user)

let allocator t =
  Allocator.instrument
  { Allocator.name = "serial";
    malloc = (fun ctx size -> malloc t ctx size);
    free = (fun ctx user -> free t ctx user);
    usable_size = (fun user -> Dlheap.usable_size t.heap user);
    stats = t.stats;
    origins = Hashtbl.create 8;
    validate = (fun () -> Dlheap.validate t.heap);
  }

let lock_contentions t = M.Mutex.contentions t.mutex

let lock_acquisitions t = M.Mutex.acquisitions t.mutex

let heap t = t.heap
