(** Gloger's ptmalloc — the glibc 2.0/2.1 allocator the paper studies.

    Multiple {!Dlheap} arenas behind per-arena mutexes. A [malloc] tries
    the calling thread's last-used arena with a try-lock; on contention
    it walks the arena list try-locking each, and if every arena is busy
    it creates a new one — the paper's "simple way to grow the number of
    subheaps … nothing stops the heap list from growing without bound"
    (section 3). A [free] must lock the arena that owns the chunk, which
    is how storage allocated in one thread and freed in another leaks
    pages into arenas the freeing thread will not allocate from — the
    mechanism benchmark 2 measures.

    Each arena descriptor's lock word is written on every operation.
    Non-main arena descriptors are packed 16 bytes apart in a metadata
    line region whose base phase is drawn per instance (DESIGN.md's
    "cache sloshing" layout model behind Table 4); the main arena's
    descriptor lives alone in libc data. *)

type t
(** One ptmalloc instance: its arena list and per-thread affinity map. *)

val make :
  Mb_machine.Machine.proc ->
  ?costs:Costs.t ->
  ?params:Dlheap.params ->
  ?max_arenas:int ->
  unit ->
  t
(** [max_arenas] caps arena creation for the ablation study; unlimited by
    default. Costs default to {!Costs.glibc}. *)

val allocator : t -> Allocator.t
(** The uniform allocator record over this instance. *)

val arena_count : t -> int
(** Arenas currently in the list (never shrinks, matching the paper). *)

val arena_of_thread : t -> int -> int option
(** [arena_of_thread t tid] is the index of the arena the thread last
    used, if it has allocated. *)

val arena_live_chunks : t -> int list
(** Live-chunk population of each arena, in creation order — makes
    benchmark 2's cross-arena imbalance observable. *)

val arena_free_bytes : t -> int list
(** Binned free bytes of each arena, in creation order. *)

val heap_bytes : t -> int
(** Total bytes of address space held by all arenas (brk extent plus
    sub-heap reservations actually used). *)

(** {1 mallopt / mallinfo}

    The tunables section 3 of the paper mentions ("an application can
    invoke mallopt(3)"). Changes apply to every existing arena and to
    arenas created later. *)

type tunable =
  | Mmap_threshold of int  (** M_MMAP_THRESHOLD: direct-mmap cutoff, bytes *)
  | Trim_threshold of int  (** M_TRIM_THRESHOLD: release top above this *)
  | Top_pad of int         (** M_TOP_PAD: slack kept on heap growth *)
  | Fastbins of bool       (** enable the glibc-2.3-style fast path (M_MXFAST-ish) *)
  | Defer_coalescing of bool
      (** defer small-chunk coalescing to bulk passes ({!Dlheap.params.defer_coalescing}) *)

val mallopt : t -> tunable -> unit
(** @raise Invalid_argument on non-positive thresholds. *)

type mallinfo = {
  arena : int;      (** bytes of heap segments (brk extent + sub-heap use) *)
  narenas : int;
  hblks : int;      (** live direct-mmapped chunks *)
  hblkhd : int;     (** bytes in direct-mmapped chunks *)
  uordblks : int;   (** bytes held by allocated chunks *)
  fordblks : int;   (** bytes in free chunks, including arena tops *)
  keepcost : int;   (** main-arena top size (what a trim could release) *)
}

val mallinfo : t -> mallinfo
(** Aggregate snapshot in the style of the C [mallinfo(3)] call. *)
