(** Instruction-cycle cost model for allocator code paths.

    These constants represent the straight-line instruction work of each
    allocator operation; memory-system costs (cache coherence, page
    faults) and locking are charged separately by the machine layer.
    [scale] is the per-host calibration multiplier described in DESIGN.md:
    it absorbs architectural differences (issue width, pipeline depth)
    between the paper's hosts without touching protocol behaviour. *)

type t = {
  malloc_base : int;     (** fast-path [malloc] instructions *)
  free_base : int;       (** fast-path [free] instructions *)
  bin_probe : int;       (** examining one candidate bin / free-list node *)
  split : int;           (** splitting a remainder off a chunk *)
  coalesce : int;        (** merging with one neighbour *)
  deferred_free : int;   (** binning a freed chunk with coalescing deferred:
                             a tag write and a LIFO push, no neighbour
                             merges — the price of a free under
                             {!Dlheap.params.defer_coalescing} *)
  scale : float;
}

val glibc : t
(** Calibrated so a 512-byte malloc/free pair on the 200 MHz Pentium Pro
    preset matches the paper's 23.28 s / 10M pairs single-thread run. *)

val solaris : t
(** The paper's Solaris allocator is the fastest single-threaded one
    (6.05 s on a 400 MHz UltraSPARC II); smaller base costs reflect that. *)

val scaled : t -> float -> t
(** [scaled t f] multiplies the calibration scale (composes). *)

val apply : t -> int -> int
(** [apply t cycles] scales a raw cycle count. *)
