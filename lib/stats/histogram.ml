type t = {
  lo : float;
  hi : float;
  width : float;
  counts : int array;
  mutable total : int;
  mutable underflow : int;
  mutable overflow : int;
}

let create ~lo ~hi ~bins =
  if lo >= hi then invalid_arg "Histogram.create: lo >= hi";
  if bins <= 0 then invalid_arg "Histogram.create: bins <= 0";
  {
    lo;
    hi;
    width = (hi -. lo) /. float_of_int bins;
    counts = Array.make bins 0;
    total = 0;
    underflow = 0;
    overflow = 0;
  }

(* Bin index for an in-range sample. Float division can land exactly on
   [bins] when [x] is a hair under [hi]; fold that edge back into the
   last bin. Out-of-range samples never reach here — [add] diverts them
   to the underflow/overflow counters. *)
let bin_of t x =
  let i = int_of_float ((x -. t.lo) /. t.width) in
  let last = Array.length t.counts - 1 in
  if i > last then last else i

let add t x =
  if Float.is_nan x then invalid_arg "Histogram.add: NaN sample";
  if x < t.lo then t.underflow <- t.underflow + 1
  else if x >= t.hi then t.overflow <- t.overflow + 1
  else begin
    let i = bin_of t x in
    t.counts.(i) <- t.counts.(i) + 1
  end;
  t.total <- t.total + 1

let count t = t.total

let underflow t = t.underflow

let overflow t = t.overflow

let binned t = t.total - t.underflow - t.overflow

let bin_count t i = t.counts.(i)

let bin_bounds t i =
  let lo = t.lo +. (float_of_int i *. t.width) in
  (lo, lo +. t.width)

let percentile t p =
  if t.total = 0 then invalid_arg "Histogram.percentile: empty histogram";
  if p < 0. || p > 100. then invalid_arg "Histogram.percentile: p outside [0, 100]";
  (* Conservative rank: the upper of the two samples a linear
     interpolation would blend, so a tail percentile never under-reads. *)
  let rank = int_of_float (Float.ceil (p /. 100. *. float_of_int (t.total - 1))) in
  if rank < t.underflow then
    invalid_arg "Histogram.percentile: rank falls in the underflow region";
  if rank >= t.total - t.overflow then
    invalid_arg "Histogram.percentile: rank falls in the overflow region";
  let target = rank - t.underflow in
  let rec walk i acc =
    let acc' = acc + t.counts.(i) in
    if acc' > target then
      let lo, _ = bin_bounds t i in
      lo +. (t.width *. ((float_of_int (target - acc) +. 0.5) /. float_of_int t.counts.(i)))
    else walk (i + 1) acc'
  in
  walk 0 0

let modes t =
  let n = Array.length t.counts in
  let get i = if i < 0 || i >= n then 0 else t.counts.(i) in
  let is_mode i =
    t.counts.(i) > 0
    && ((get i > get (i - 1) && get i >= get (i + 1))
       || (get i >= get (i - 1) && get i > get (i + 1)))
  in
  let rec collect i acc = if i >= n then List.rev acc else collect (i + 1) (if is_mode i then i :: acc else acc) in
  collect 0 []

let pp fmt t =
  let maxc = Array.fold_left max 1 t.counts in
  if t.underflow > 0 then Format.fprintf fmt "(-inf, %8.3f) %4d underflow@." t.lo t.underflow;
  Array.iteri
    (fun i c ->
      if c > 0 then begin
        let lo, hi = bin_bounds t i in
        let bar = String.make (max 1 (c * 40 / maxc)) '#' in
        Format.fprintf fmt "[%8.3f, %8.3f) %4d %s@." lo hi c bar
      end)
    t.counts;
  if t.overflow > 0 then Format.fprintf fmt "[%8.3f,     +inf) %4d overflow@." t.hi t.overflow
