(** Fixed-width histograms.

    Used to expose bimodality in run times (Table 4's 12.6 s / 14.8 s
    clusters) and latency distributions in the uptime and open-loop
    server benchmarks. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** [create ~lo ~hi ~bins] covers [\[lo, hi)] with [bins] equal bins.
    Samples outside the range are not clamped into the edge bins: they
    are tallied in separate {!underflow} / {!overflow} counters so tail
    percentiles read from the histogram are never silently distorted.
    Requires [lo < hi] and [bins > 0]. *)

val add : t -> float -> unit
(** Adds one sample. Raises [Invalid_argument] on NaN — a NaN sample is
    always a caller bug, and the old behaviour of filing it in bin 0
    corrupted the distribution silently. *)

val count : t -> int
(** Total number of samples added, including out-of-range ones. *)

val underflow : t -> int
(** Samples below [lo]. *)

val overflow : t -> int
(** Samples at or above [hi]. *)

val binned : t -> int
(** Samples that landed in a bin: [count - underflow - overflow]. *)

val bin_count : t -> int -> int
(** [bin_count t i] is the number of samples in bin [i]. *)

val bin_bounds : t -> int -> float * float
(** Half-open bounds of bin [i]. *)

val percentile : t -> float -> float
(** [percentile t p] estimates the [p]th percentile (0–100) over all
    recorded samples, interpolating within the covering bin. The rank is
    computed over {!count} samples, so out-of-range samples keep their
    place in the order; if the requested rank falls inside the underflow
    or overflow region the estimate would be a lie, and the call raises
    [Invalid_argument] instead. Requires at least one sample. *)

val modes : t -> int list
(** Indexes of local maxima with non-zero counts, in increasing index
    order; a bimodal sample yields two entries. A bin is a local maximum
    if strictly greater than one neighbour and at least equal to the
    other. *)

val pp : Format.formatter -> t -> unit
(** ASCII bar rendering, one line per non-empty bin, plus underflow /
    overflow lines when non-zero. *)
