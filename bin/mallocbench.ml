(* mallocbench — command-line driver for the malloc() reproduction.

   Subcommands:
     bench1      the multithread-scalability microbenchmark
     bench2      the heap-leak / minor-fault microbenchmark
     bench3      the false-sharing microbenchmark
     server      the network-server workload
     experiment  regenerate a paper table/figure (or all of them)
     suite       run a declarative benchmark suite, append a session
     report      cross-session trend tables from the history file
     gate        trend-aware regression gate over the history file
     list        enumerate machines, allocators and experiments *)

open Cmdliner

let machine_conv =
  let parse s =
    match Core.Configs.by_name s with
    | Some cfg -> Ok cfg
    | None ->
        Error (`Msg (Printf.sprintf "unknown machine %S (try: %s)" s
                       (String.concat ", " Core.Configs.names)))
  in
  let print fmt (cfg : Core.Machine.config) =
    Format.fprintf fmt "%d cpu @ %.0f MHz" cfg.Core.Machine.cpus cfg.Core.Machine.mhz
  in
  Arg.conv (parse, print)

let factory_conv =
  let parse s =
    match Core.Factory.by_name s with
    | Some f -> Ok f
    | None ->
        Error (`Msg (Printf.sprintf "unknown allocator %S (try: %s)" s
                       (String.concat ", " Core.Factory.names)))
  in
  let print fmt (f : Core.Factory.t) = Format.fprintf fmt "%s" f.Core.Factory.label in
  Arg.conv (parse, print)

let machine_arg =
  Arg.(value
       & opt machine_conv Core.Configs.dual_pentium_pro
       & info [ "m"; "machine" ] ~docv:"MACHINE" ~doc:"Machine preset (see $(b,list)).")

let factory_arg =
  Arg.(value
       & opt factory_conv (Core.Factory.ptmalloc ())
       & info [ "a"; "allocator" ] ~docv:"ALLOC" ~doc:"Allocator (see $(b,list)).")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.")

let jobs_arg =
  let pos_int =
    let parse s =
      match int_of_string_opt s with
      | Some n when n >= 1 -> Ok n
      | Some _ | None -> Error (`Msg (Printf.sprintf "expected a positive integer, got %S" s))
    in
    Arg.conv (parse, Format.pp_print_int)
  in
  Arg.(value & opt (some pos_int) None
       & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Run on a pool of $(docv) domains (default: $(b,MALLOC_REPRO_JOBS) or all \
                 cores). Output is identical for any width.")

let threads_arg default =
  Arg.(value & opt int default & info [ "t"; "threads" ] ~doc:"Worker thread count.")

(* --- observation -------------------------------------------------------- *)

let trace_arg =
  Arg.(value
       & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a Chrome trace_event JSON timeline of the simulated runs to $(docv) \
                 (open in chrome://tracing or ui.perfetto.dev).")

let metrics_arg =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:"Print the observed-counters table (lock acquisitions and contention, \
                 cache-coherence traffic, arena churn, VM syscalls) after the runs.")

let gc_stats_arg =
  Arg.(value & flag
       & info [ "gc-stats" ]
           ~doc:"Print host-level GC deltas ($(b,Gc.quick_stat) before/after the runs): \
                 how much the simulator itself allocated. Unlike $(b,--metrics) and \
                 $(b,--trace) this never turns observation on, so it measures the \
                 undisturbed hot path.")

let check_arg =
  Arg.(value & flag
       & info [ "check" ]
           ~doc:"Arm the dynamic correctness checker for the simulated runs: Eraser-style \
                 lockset race detection, allocation sanitizing (double-free, \
                 use-after-free, out-of-bounds) and structured deadlock diagnosis. \
                 Findings are printed on $(b,check:)-prefixed lines and a non-empty \
                 report exits with status 3. Checking consumes no simulated time, so \
                 all other output is identical to an unchecked run.")

let faults_conv =
  let parse s =
    match Core.Fault.Plan.parse s with Ok v -> Ok v | Error msg -> Error (`Msg msg)
  in
  let print fmt v = Format.pp_print_string fmt (Core.Fault.Plan.to_string v) in
  Arg.conv (parse, print)

let faults_arg =
  Arg.(value
       & opt faults_conv None
       & info [ "faults" ] ~docv:"PLAN[:SEED]"
           ~doc:"Arm the deterministic fault-injection layer for the simulated runs. \
                 $(docv) names a scenario — $(b,oom-pressure) (a decaying address-space \
                 budget), $(b,flaky-reserve) (a seeded fraction of page reservations \
                 fail), $(b,preempt-storm) (extra context switches at lock sites) or \
                 $(b,slow-lock) (stretched heap-mutex hold times) — with an optional \
                 seed (default 1). Injected failures are absorbed by the allocator \
                 retry/backoff path or surface as graceful degradation; each run prints \
                 a $(b,fault:) line and the invocation ends with a $(b,degraded:) \
                 summary. The same plan and seed reproduce byte-identical output; \
                 $(b,none) leaves faults disarmed and the run byte-identical to a \
                 plain one.")

(* Turn observation/checking/fault-injection on for the duration of
   [f], then drain the collected recorders, checkers and injectors into
   the requested sinks. With no flag, [f] runs on the disabled path
   untouched; --gc-stats only snapshots Gc counters around [f], so it
   composes with either path without perturbing it. *)
let with_observation ~trace ~metrics ~gc_stats ?(check = false) ?(faults = None) f =
  let gc_before = if gc_stats then Some (Gc.quick_stat ()) else None in
  let check_failed = ref false in
  let result =
    if trace = None && (not metrics) && (not check) && faults = None then f ()
    else begin
      Core.Obs.Ctl.set { Core.Obs.Ctl.trace = trace <> None; metrics };
      Core.Check.Ctl.arm check;
      Core.Fault.Ctl.arm faults;
      let finish () =
        Core.Obs.Ctl.set Core.Obs.Ctl.off;
        Core.Check.Ctl.arm false;
        Core.Fault.Ctl.arm None;
        let runs = Core.Obs.Collect.drain () in
        (match trace with
        | Some path ->
            Core.Obs.Trace_json.write_file path runs;
            Printf.printf "trace: %d events from %d runs -> %s\n"
              (Core.Obs.Trace_json.event_total runs)
              (List.length runs) path
        | None -> ());
        if metrics then Core.Metrics.print runs;
        if check then begin
          let checked = Core.Check.Collect.drain () in
          let total =
            List.fold_left
              (fun acc (_, c) -> acc + Core.Check.Checker.finding_count c)
              0 checked
          in
          List.iter
            (fun (label, c) ->
              List.iter
                (fun (fd : Core.Check.Checker.finding) ->
                  Printf.printf "check: [%s] %s: %s\n"
                    (Core.Check.Checker.kind_label fd.Core.Check.Checker.kind)
                    label fd.Core.Check.Checker.message)
                (Core.Check.Checker.findings c))
            checked;
          Printf.printf "check: %d finding(s) in %d checked run(s)\n" total (List.length checked);
          if total > 0 then check_failed := true
        end;
        match faults with
        | None -> ()
        | Some (plan, seed) ->
            let module I = Core.Fault.Injector in
            let stormed = Core.Fault.Collect.drain () in
            List.iter
              (fun (label, inj) ->
                Printf.printf
                  "fault: [%s] %s: injected %d (reserve %d, preempt %d, slow-lock %d) | \
                   survived %d | degraded %d\n"
                  (Core.Fault.Plan.label plan) label (I.injected inj)
                  (I.injected_reserve inj) (I.injected_preempt inj) (I.injected_slowlock inj)
                  (I.survived inj) (I.degraded inj))
              stormed;
            let sum get = List.fold_left (fun acc (_, inj) -> acc + get inj) 0 stormed in
            Printf.printf "degraded: plan %s | runs: %d | injected: %d | survived: %d | degraded: %d\n"
              (Core.Fault.Plan.to_string (Some (plan, seed)))
              (List.length stormed) (sum I.injected) (sum I.survived) (sum I.degraded)
      in
      Fun.protect ~finally:finish f
    end
  in
  (match gc_before with
  | Some before -> Core.Metrics.print_gc ~before ~after:(Gc.quick_stat ())
  | None -> ());
  if !check_failed then Stdlib.exit 3;
  result

(* --- bench1 ----------------------------------------------------------- *)

let bench1_cmd =
  let run machine factory seed workers iterations size processes trace metrics gc_stats check faults =
    with_observation ~trace ~metrics ~gc_stats ~check ~faults @@ fun () ->
    let params =
      { Core.Bench1.default with
        Core.Bench1.machine;
        factory;
        seed;
        workers;
        iterations;
        size;
        mode = (if processes then Core.Bench1.Processes else Core.Bench1.Threads);
      }
    in
    let r = Core.Bench1.run params in
    Printf.printf "mode: %s | workers: %d | size: %dB | iterations: %d (scaled to %d)\n"
      (if processes then "processes" else "threads")
      workers size iterations params.Core.Bench1.paper_iterations;
    List.iteri
      (fun i s -> Printf.printf "worker %d: %.6f s (scaled)\n" (i + 1) s)
      r.Core.Bench1.scaled_s;
    Printf.printf "context switches: %d | contended ops: %d | arenas: %d | utilization: %.1f%%\n"
      r.Core.Bench1.ctx_switches r.Core.Bench1.lock_contended_ops r.Core.Bench1.arenas
      (100. *. r.Core.Bench1.utilization)
  in
  let iterations = Arg.(value & opt int 50_000 & info [ "iterations" ] ~doc:"malloc/free pairs per worker.") in
  let size = Arg.(value & opt int 512 & info [ "size" ] ~doc:"Request size in bytes.") in
  let processes = Arg.(value & flag & info [ "processes" ] ~doc:"One process per worker instead of threads.") in
  Cmd.v
    (Cmd.info "bench1" ~doc:"Multithread scalability: timed malloc/free loops")
    Term.(const run $ machine_arg $ factory_arg $ seed_arg $ threads_arg 2 $ iterations $ size
          $ processes $ trace_arg $ metrics_arg $ gc_stats_arg $ check_arg $ faults_arg)

(* --- bench2 ----------------------------------------------------------- *)

let bench2_cmd =
  let run machine factory seed threads rounds objects replacements size trace metrics gc_stats check faults =
    with_observation ~trace ~metrics ~gc_stats ~check ~faults @@ fun () ->
    let params =
      { Core.Bench2.machine;
        factory;
        seed;
        threads;
        rounds;
        objects_per_thread = objects;
        replacements_per_round = replacements;
        size;
      }
    in
    let r = Core.Bench2.run params in
    Printf.printf "threads: %d | rounds: %d | objects/thread: %d | size: %dB\n" threads rounds
      objects size;
    Printf.printf "minor page faults: %d (paper predictor: %.1f)\n" r.Core.Bench2.minor_faults
      (Core.Bench2.paper_predictor ~threads ~rounds);
    Printf.printf "resident pages: %d | arenas: %d | foreign frees: %d | sbrk calls: %d | mmap calls: %d\n"
      r.Core.Bench2.resident_pages r.Core.Bench2.arenas_created r.Core.Bench2.foreign_frees
      r.Core.Bench2.sbrk_calls r.Core.Bench2.mmap_calls
  in
  let rounds = Arg.(value & opt int 4 & info [ "rounds" ] ~doc:"Thread generations per chain.") in
  let objects = Arg.(value & opt int 10_000 & info [ "objects" ] ~doc:"Pre-allocated objects per thread.") in
  let replacements = Arg.(value & opt int 2_200 & info [ "replacements" ] ~doc:"Replacements per round.") in
  let size = Arg.(value & opt int 40 & info [ "size" ] ~doc:"Object size in bytes.") in
  let machine_arg2 =
    Arg.(value & opt machine_conv Core.Configs.uni_k6
         & info [ "m"; "machine" ] ~docv:"MACHINE" ~doc:"Machine preset.")
  in
  Cmd.v
    (Cmd.info "bench2" ~doc:"Heap leakage: minor faults under cross-thread frees")
    Term.(const run $ machine_arg2 $ factory_arg $ seed_arg $ threads_arg 3 $ rounds $ objects
          $ replacements $ size $ trace_arg $ metrics_arg $ gc_stats_arg $ check_arg $ faults_arg)

(* --- bench3 ----------------------------------------------------------- *)

let bench3_cmd =
  let run machine factory seed threads size writes aligned trace metrics gc_stats check faults =
    with_observation ~trace ~metrics ~gc_stats ~check ~faults @@ fun () ->
    let params =
      { Core.Bench3.default with
        Core.Bench3.machine;
        factory;
        seed;
        threads;
        object_size = size;
        writes;
        aligned;
      }
    in
    let r = Core.Bench3.run params in
    Printf.printf "threads: %d | object size: %dB | writes: %d (scaled to %d) | %s\n" threads size
      writes params.Core.Bench3.paper_writes
      (if aligned then "cache-aligned" else "normal placement");
    Printf.printf "elapsed: %.6f s (scaled) | ping-pong transfers: %d | shared lines: %d\n"
      r.Core.Bench3.scaled_s r.Core.Bench3.transfers r.Core.Bench3.shared_lines;
    Printf.printf "object addresses: %s\n"
      (String.concat ", " (List.map (Printf.sprintf "0x%x") r.Core.Bench3.addresses))
  in
  let size = Arg.(value & opt int 40 & info [ "size" ] ~doc:"Object size (the paper sweeps 3-52).") in
  let writes = Arg.(value & opt int 1_000_000 & info [ "writes" ] ~doc:"Writes per thread.") in
  let aligned = Arg.(value & flag & info [ "aligned" ] ~doc:"Use the cache-line-aligning wrapper.") in
  let machine_arg3 =
    Arg.(value & opt machine_conv Core.Configs.quad_xeon
         & info [ "m"; "machine" ] ~docv:"MACHINE" ~doc:"Machine preset.")
  in
  Cmd.v
    (Cmd.info "bench3" ~doc:"False cache-line sharing between writer threads")
    Term.(const run $ machine_arg3 $ factory_arg $ seed_arg $ threads_arg 2 $ size $ writes
          $ aligned $ trace_arg $ metrics_arg $ gc_stats_arg $ check_arg $ faults_arg)

(* --- server ------------------------------------------------------------ *)

let server_cmd =
  let run machine factory seed threads requests latency arrivals model queue churn mix trace
      metrics gc_stats check faults =
    with_observation ~trace ~metrics ~gc_stats ~check ~faults @@ fun () ->
    let read_pct, write_pct = mix in
    let open_loop =
      match arrivals with
      | None -> None
      | Some process ->
          let model =
            match model with
            | `Pool -> Core.Server.Thread_pool { queue_capacity = queue }
            | `Thread_per_connection -> Core.Server.Thread_per_connection
          in
          Some
            { Core.Server.process;
              total_requests = requests;
              model;
              churn_mean_requests = churn;
              read_pct;
              write_pct;
            }
    in
    let params =
      { Core.Server.default with
        Core.Server.machine;
        factory;
        seed;
        threads;
        requests_per_thread = requests;
        probe_latency = latency;
        open_loop;
      }
    in
    let r = Core.Server.run params in
    (match open_loop with
    | None ->
        Printf.printf "mode: closed loop | threads: %d | requests/thread: %d | allocator: %s\n"
          threads requests factory.Core.Factory.label
    | Some o ->
        Printf.printf "mode: open loop (%s, %s) | total requests: %d | allocator: %s\n"
          (Core.Arrivals.to_string o.Core.Server.process)
          (Core.Server.model_label o.Core.Server.model)
          requests factory.Core.Factory.label);
    Printf.printf "throughput: %.0f req/s (simulated) | makespan: %.3f s\n"
      r.Core.Server.requests_per_second r.Core.Server.elapsed_s;
    Printf.printf "foreign frees: %d | arenas: %d | contended ops: %d\n" r.Core.Server.foreign_frees
      r.Core.Server.arenas r.Core.Server.contended_ops;
    (match r.Core.Server.requests with
    | None -> ()
    | Some s ->
        Printf.printf
          "requests: %d completed, %d dropped, %d connections churned | offered %.0f req/s\n"
          s.Core.Server.completed s.Core.Server.dropped s.Core.Server.churned
          s.Core.Server.offered_rps;
        Printf.printf "request latency: p50 %.1f us | p95 %.1f us | p99 %.1f us | max %.1f us\n"
          (s.Core.Server.p50_ns /. 1e3) (s.Core.Server.p95_ns /. 1e3)
          (s.Core.Server.p99_ns /. 1e3) (s.Core.Server.max_ns /. 1e3);
        List.iter
          (fun (cls, n) -> Printf.printf "  class %-6s %d completed\n" cls n)
          s.Core.Server.by_class);
    match r.Core.Server.latency with
    | None -> ()
    | Some p ->
        Printf.printf "malloc latency: mean %.0f ns, p99 %.0f ns, uptime drift %.2f\n"
          p.Core.Server.malloc_mean_ns p.Core.Server.malloc_p99_ns p.Core.Server.drift;
        List.iter
          (fun (o : Core.Server.op_stat) ->
            Printf.printf "  op %-7s %6d samples | mean %.0f ns | p99 %.0f ns\n"
              o.Core.Server.op o.Core.Server.op_count o.Core.Server.op_mean_ns
              o.Core.Server.op_p99_ns)
          p.Core.Server.op_stats
  in
  let requests =
    Arg.(value & opt int 2_000
         & info [ "requests" ]
             ~doc:"Requests per worker (closed loop) or total arrivals (open loop).")
  in
  let latency = Arg.(value & flag & info [ "latency" ] ~doc:"Probe per-allocator-op latency.") in
  let arrivals_conv =
    let parse s =
      match Core.Arrivals.of_string s with
      | p -> Ok p
      | exception Invalid_argument msg -> Error (`Msg msg)
    in
    let print fmt p = Format.pp_print_string fmt (Core.Arrivals.to_string p) in
    Arg.conv (parse, print)
  in
  let arrivals =
    Arg.(value & opt (some arrivals_conv) None
         & info [ "arrivals" ] ~docv:"SPEC"
             ~doc:"Drive the server open loop from a deterministic arrival process instead of \
                   the closed-loop workers: $(b,poisson:RATE), \
                   $(b,bursty:BASE:BURST:ON_S:OFF_S) or $(b,diurnal:LOW:HIGH:PERIOD_S) \
                   (rates in requests/s). Reports per-request latency percentiles and \
                   throughput against offered load.")
  in
  let model =
    Arg.(value
         & opt (enum [ ("pool", `Pool); ("thread-per-connection", `Thread_per_connection) ]) `Pool
         & info [ "model" ] ~docv:"MODEL"
             ~doc:"Open-loop server model: $(b,pool) (fixed workers, bounded queue) or \
                   $(b,thread-per-connection).")
  in
  let queue =
    Arg.(value & opt int 1_024
         & info [ "queue" ] ~docv:"N"
             ~doc:"Pool model: bounded request-queue capacity; a full queue sheds arrivals.")
  in
  let churn =
    Arg.(value & opt int 64
         & info [ "churn" ] ~docv:"N"
             ~doc:"Mean requests per connection lifetime before the connection closes and \
                   reopens (0 disables churn).")
  in
  let mix_conv =
    let parse s =
      match String.split_on_char ':' s with
      | [ r; w; u ] -> (
          match (int_of_string_opt r, int_of_string_opt w, int_of_string_opt u) with
          | Some r, Some w, Some u when r >= 0 && w >= 0 && u >= 0 && r + w + u = 100 ->
              Ok (r, w)
          | _ -> Error (`Msg (Printf.sprintf "expected R:W:U percentages summing to 100, got %S" s)))
      | _ -> Error (`Msg (Printf.sprintf "expected R:W:U percentages summing to 100, got %S" s))
    in
    let print fmt (r, w) = Format.fprintf fmt "%d:%d:%d" r w (100 - r - w) in
    Arg.conv (parse, print)
  in
  let mix =
    Arg.(value & opt mix_conv (60, 25)
         & info [ "mix" ] ~docv:"R:W:U"
             ~doc:"Open-loop request-class mix as read:write:update percentages (sum 100).")
  in
  let machine_arg4 =
    Arg.(value & opt machine_conv Core.Configs.quad_xeon
         & info [ "m"; "machine" ] ~docv:"MACHINE" ~doc:"Machine preset.")
  in
  Cmd.v
    (Cmd.info "server" ~doc:"Network-server workload (iPlanet-style)")
    Term.(const run $ machine_arg4 $ factory_arg $ seed_arg $ threads_arg 4 $ requests $ latency
          $ arrivals $ model $ queue $ churn $ mix $ trace_arg $ metrics_arg $ gc_stats_arg
          $ check_arg $ faults_arg)

(* --- experiment --------------------------------------------------------- *)

let experiment_cmd =
  let run ids quick seed csv_dir jobs trace metrics gc_stats check faults =
    let opts = { Core.Exp_common.quick; seed } in
    let only = match ids with [] -> None | ids -> Some ids in
    let outcomes =
      with_observation ~trace ~metrics ~gc_stats ~check ~faults (fun () ->
          Core.Experiments.run_all ?jobs ?only opts)
    in
    (match csv_dir with
    | None -> ()
    | Some dir ->
        List.iter
          (fun (o : Core.Outcome.t) ->
            if o.Core.Outcome.series <> [] then
              Core.Csv.write_file
                (Filename.concat dir (o.Core.Outcome.id ^ ".csv"))
                (Core.Csv.of_series o.Core.Outcome.series))
          outcomes);
    print_endline "== summary ==";
    List.iter (fun o -> print_endline (Core.Outcome.summary_line o)) outcomes;
    (* Under an armed fault plan the paper's pass thresholds no longer
       apply — the run is judged on completing gracefully (exit 0), not
       on matching fault-free reference numbers. *)
    if faults = None && not (List.for_all Core.Outcome.passed outcomes) then Stdlib.exit 1
  in
  let ids =
    Arg.(value & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids (default: all).")
  in
  let quick = Arg.(value & flag & info [ "quick" ] ~doc:"Reduced iteration counts.") in
  let csv_dir =
    Arg.(value & opt (some dir) None & info [ "csv" ] ~docv:"DIR" ~doc:"Also write series as CSV files.")
  in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate a paper table or figure")
    Term.(const run $ ids $ quick $ seed_arg $ csv_dir $ jobs_arg $ trace_arg $ metrics_arg $ gc_stats_arg
          $ check_arg $ faults_arg)

(* --- suite / report / gate ----------------------------------------------- *)

let history_arg =
  Arg.(value & opt string "BENCH_history.json"
       & info [ "history" ] ~docv:"FILE"
           ~doc:"Session history file. $(b,suite) appends to it; $(b,report) and \
                 $(b,gate) read it.")

let die fmt = Printf.ksprintf (fun s -> prerr_endline s; Stdlib.exit 2) fmt

let load_history path =
  match Core.Suite.History.load path with Ok h -> h | Error e -> die "%s" e

let suite_cmd =
  let run file history jobs dry_run no_history =
    let module Spec = Core.Suite.Spec in
    let module History = Core.Suite.History in
    let text =
      try In_channel.with_open_text file In_channel.input_all
      with Sys_error e -> die "suite: %s" e
    in
    let spec = match Spec.of_string text with Ok s -> s | Error e -> die "suite %s: %s" file e in
    let registry = Core.Experiments.suite_registry in
    if dry_run then begin
      match Spec.expand spec ~exp_ids:registry.Core.Suite.Runner.exp_ids with
      | Error e -> die "%s" e
      | Ok cells ->
          List.iter (fun (c : Spec.cell) -> print_endline c.Spec.key) cells;
          Printf.printf "%d cell(s)\n" (List.length cells)
    end
    else begin
      let id = History.generate_id () in
      let time_s = Unix.gettimeofday () in
      match Core.Suite.Runner.run ?jobs ~registry spec with
      | Error e -> die "%s" e
      | Ok data ->
          let mode = match spec.Spec.mode with `Quick -> "quick" | `Full -> "full" in
          let host = History.current_host () in
          let cells = List.map (fun ((c : Spec.cell), d) -> (c.Spec.key, d)) data in
          Printf.printf "== session %s ==\n" id;
          Printf.printf "suite %s (%s, seed %d) on %s\n" spec.Spec.name mode spec.Spec.seed
            (History.host_to_string host);
          List.iter
            (fun (key, (d : History.cell_data)) ->
              Printf.printf "%-44s %12.0f ns/run %14.0f minor w/run  %s\n" key
                d.History.ns_per_run d.History.minor_words_per_run
                (if d.History.ok then "ok" else "FAIL"))
            cells;
          let session =
            { History.id; time_s; suite = spec.Spec.name; mode; seed = spec.Spec.seed; host; cells }
          in
          if not no_history then begin
            match History.append history session with
            | Ok h ->
                Printf.printf "history: %s now holds %d session(s)\n" history
                  (List.length h.History.sessions)
            | Error e -> die "history: %s" e
          end;
          if List.exists (fun (_, (d : History.cell_data)) -> not d.History.ok) cells then
            Stdlib.exit 1
    end
  in
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"SUITE" ~doc:"Suite spec file.")
  in
  let dry_run =
    Arg.(value & flag
         & info [ "dry-run" ] ~doc:"Print the expanded cell keys and exit without running.")
  in
  let no_history =
    Arg.(value & flag & info [ "no-history" ] ~doc:"Run and print, but do not touch the history file.")
  in
  Cmd.v
    (Cmd.info "suite" ~doc:"Run a declarative benchmark suite and record a session")
    Term.(const run $ file $ history_arg $ jobs_arg $ dry_run $ no_history)

let report_cmd =
  let run history last csv =
    let h = load_history history in
    (match csv with
    | None -> ()
    | Some path ->
        Out_channel.with_open_text path (fun oc ->
            Out_channel.output_string oc (Core.Suite.Report.to_csv ~last h));
        Printf.printf "csv: -> %s\n" path);
    print_string (Core.Suite.Report.render ~last h)
  in
  let last =
    Arg.(value & opt int 8 & info [ "last" ] ~docv:"N" ~doc:"Sessions to include (newest N).")
  in
  let csv =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the long-format CSV export to $(docv).")
  in
  Cmd.v
    (Cmd.info "report" ~doc:"Render cross-session trend tables from the history")
    Term.(const run $ history_arg $ last $ csv)

let gate_cmd =
  let run history last threshold gc_threshold self_test =
    let h = load_history history in
    match Core.Suite.Gate.check ~last ~threshold ~gc_threshold ?scale_first:self_test h with
    | Error e -> die "%s" e
    | Ok v ->
        List.iter print_endline v.Core.Suite.Gate.lines;
        if not v.Core.Suite.Gate.ok then Stdlib.exit 1
  in
  let last =
    Arg.(value & opt int 5
         & info [ "last" ] ~docv:"N" ~doc:"Baseline window: median over the last $(docv) \
                                           same-host sessions before the newest.")
  in
  let threshold =
    Arg.(value & opt float 1.25
         & info [ "threshold" ] ~docv:"R"
             ~doc:"Fail a cell whose median-normalized ns/run ratio exceeds $(docv).")
  in
  let gc_threshold =
    Arg.(value & opt float 1.25
         & info [ "gc-threshold" ] ~docv:"R"
             ~doc:"Fail a cell whose raw minor-words ratio exceeds $(docv).")
  in
  let self_test =
    Arg.(value & opt (some float) None
         & info [ "self-test" ] ~docv:"FACTOR"
             ~doc:"Multiply the newest session's first cell's ns/run by $(docv) before \
                   gating — CI uses this to prove the gate fails on a synthetic \
                   regression.")
  in
  Cmd.v
    (Cmd.info "gate" ~doc:"Trend-aware regression gate over the session history")
    Term.(const run $ history_arg $ last $ threshold $ gc_threshold $ self_test)

(* --- list ---------------------------------------------------------------- *)

let list_cmd =
  let run () =
    Printf.printf "machines:    %s\n" (String.concat ", " Core.Configs.names);
    Printf.printf "allocators:  %s\n" (String.concat ", " Core.Factory.names);
    Printf.printf "experiments: %s\n" (String.concat ", " Core.Experiments.ids)
  in
  Cmd.v (Cmd.info "list" ~doc:"List machines, allocators and experiments") Term.(const run $ const ())

let main =
  let doc = "simulated reproduction of 'malloc() Performance in a Multithreaded Linux Environment'" in
  Cmd.group
    (Cmd.info "mallocbench" ~version:"1.0.0" ~doc)
    [ bench1_cmd; bench2_cmd; bench3_cmd; server_cmd; experiment_cmd; suite_cmd; report_cmd;
      gate_cmd; list_cmd ]

let () = exit (Cmd.eval main)
