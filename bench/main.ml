(* The benchmark harness.

   Phase 1 regenerates every table and figure from the paper (plus the
   ablations and future-work extensions) at full scale and prints them
   with their shape checks — the reproduction's primary output, recorded
   in EXPERIMENTS.md.

   Phase 2 runs one Bechamel microbenchmark per paper artifact: each
   measures the wall-clock cost of the miniature kernel of that
   experiment's workload on this host, i.e. the simulator's own speed.

   Both phases are timed, and the results land in BENCH_kernels.json
   (kernel name -> ns/run plus the harness's own wall clock) so the
   reproduction's speed can be tracked across PRs.

   Set MALLOC_REPRO_QUICK=1 for reduced iteration counts,
   MALLOC_REPRO_NO_BECHAMEL=1 to skip phase 2, MALLOC_REPRO_JOBS=N to
   set the experiment pool width (default: all cores), and
   MALLOC_REPRO_BENCH_JSON to redirect the JSON report. *)

let quick = Sys.getenv_opt "MALLOC_REPRO_QUICK" <> None

(* --- phase 2: bechamel kernels ---------------------------------------- *)

module Kernels = struct
  module B1 = Core.Bench1
  module B2 = Core.Bench2
  module B3 = Core.Bench3

  let bench1 ~machine ~factory ~workers ~mode ~size () =
    ignore
      (B1.run
         { B1.default with
           B1.machine;
           factory;
           workers;
           mode;
           size;
           iterations = 300;
           paper_iterations = 300;
         })

  let bench2 ~machine ~threads ~rounds () =
    ignore
      (B2.run
         { B2.default with
           B2.machine;
           threads;
           rounds;
           objects_per_thread = 400;
           replacements_per_round = 150;
         })

  let bench3 ~threads ~aligned () =
    ignore
      (B3.run
         { B3.default with B3.threads; aligned; object_size = 40; writes = 20_000; paper_writes = 20_000 })

  (* The open-loop traffic engine: acceptor + bounded-queue pool under a
     Poisson stream just past the knee, so the priced path includes
     timer sleeps, waitq handoffs and connection churn. *)
  let server_open ~model () =
    let module S = Core.Server in
    ignore
      (S.run
         { S.default with
           S.machine = Core.Configs.quad_xeon;
           threads = 4;
           connections = 64;
           open_loop =
             Some
               { S.process = Core.Arrivals.Poisson { rate_rps = 450_000. };
                 total_requests = 600;
                 model;
                 churn_mean_requests = 32;
                 read_pct = 60;
                 write_pct = 25;
               };
         })

  (* Run a kernel with MALLOC_REPRO_DOMAINS set, so its machines use
     the conservative parallel executor at the given width. The domain
     sweep exists to price the window protocol: the schedule (and so
     the simulated result) is byte-identical at every width, only the
     wall-clock differs. *)
  let with_domains d kernel () =
    let prev = Sys.getenv_opt "MALLOC_REPRO_DOMAINS" in
    Unix.putenv "MALLOC_REPRO_DOMAINS" (string_of_int d);
    Fun.protect
      ~finally:(fun () ->
        (* no unsetenv in Unix; width 1 is the documented default *)
        Unix.putenv "MALLOC_REPRO_DOMAINS"
          (match prev with Some v -> v | None -> "1"))
      kernel

  (* One kernel per paper artifact. *)
  let all =
    let ppro = Core.Configs.dual_pentium_pro in
    let xeon = Core.Configs.quad_xeon in
    let sparc = Core.Configs.dual_ultrasparc in
    let k6 = Core.Configs.uni_k6 in
    let pt = Core.Factory.ptmalloc () in
    let serial = Core.Factory.serial_solaris () in
    [ ("table1", bench1 ~machine:ppro ~factory:pt ~workers:2 ~mode:B1.Threads ~size:512);
      ("fig1", bench1 ~machine:ppro ~factory:pt ~workers:4 ~mode:B1.Threads ~size:8192);
      ("fig2", bench1 ~machine:ppro ~factory:pt ~workers:16 ~mode:B1.Threads ~size:4100);
      ("table2", bench1 ~machine:sparc ~factory:serial ~workers:2 ~mode:B1.Threads ~size:512);
      ("fig3", bench1 ~machine:sparc ~factory:serial ~workers:4 ~mode:B1.Threads ~size:8192);
      ("table3", bench1 ~machine:xeon ~factory:pt ~workers:2 ~mode:B1.Threads ~size:512);
      ("fig4", bench1 ~machine:xeon ~factory:pt ~workers:5 ~mode:B1.Threads ~size:8192);
      ("table4", bench1 ~machine:xeon ~factory:pt ~workers:3 ~mode:B1.Threads ~size:8192);
      ("predictor", bench2 ~machine:k6 ~threads:1 ~rounds:2);
      ("fig5", bench2 ~machine:k6 ~threads:1 ~rounds:4);
      ("fig6", bench2 ~machine:k6 ~threads:3 ~rounds:4);
      ("fig7", bench2 ~machine:k6 ~threads:7 ~rounds:2);
      ("fig8", bench2 ~machine:xeon ~threads:7 ~rounds:4);
      ("fig8-domains2", with_domains 2 (bench2 ~machine:xeon ~threads:7 ~rounds:4));
      ("fig8-domains4", with_domains 4 (bench2 ~machine:xeon ~threads:7 ~rounds:4));
      ("fig9", bench3 ~threads:2 ~aligned:false);
      ("fig10", bench3 ~threads:3 ~aligned:false);
      ("fig11", bench3 ~threads:4 ~aligned:false);
      ("bench3-aligned", bench3 ~threads:4 ~aligned:true);
      ("server-open-pool", server_open ~model:(Core.Server.Thread_pool { queue_capacity = 256 }));
      ("server-open-tpc", server_open ~model:Core.Server.Thread_per_connection);
    ]
end

let run_bechamel () =
  let open Bechamel in
  let open Toolkit in
  let tests =
    List.map (fun (name, kernel) -> Test.make ~name (Staged.stage kernel)) Kernels.all
  in
  let grouped = Test.make_grouped ~name:"kernels" tests in
  let cfg =
    Benchmark.cfg ~limit:30
      ~quota:(Time.second (if quick then 0.10 else 0.30))
      ~kde:None ~stabilize:false ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  print_endline "=== bechamel: simulator kernel cost per paper artifact (host wall clock) ===";
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort compare rows in
  List.filter_map
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ ns ] ->
          Printf.printf "%-28s %12.0f ns/run\n" name ns;
          Some (name, ns)
      | Some _ | None ->
          Printf.printf "%-28s (no estimate)\n" name;
          None)
    rows

(* --- phase 3: observed counters per kernel ------------------------------ *)

(* One extra (untimed) run of each kernel with metrics on, so the JSON
   records what the kernel *does* alongside what it costs: a drift in
   lock traffic or arena churn shows up in review even when the ns/run
   happens to stay flat. Runs after bechamel so observation can never
   touch the timed path. *)

let headline_counters =
  [ "alloc.mallocs";
    "alloc.lock.acquired";
    "alloc.lock.contended";
    "alloc.arena.created";
    "alloc.free.foreign";
    "cache.invalidations";
    "sched.ctx_switches";
    "vm.sbrk_calls";
    "vm.mmap_calls"
  ]

let observe_kernels () =
  Core.Obs.Ctl.set { Core.Obs.Ctl.trace = false; metrics = true };
  let observed =
    List.map
      (fun (name, kernel) ->
        kernel ();
        let totals = Core.Obs.Recorder.totals (Core.Obs.Collect.drain ()) in
        (name, List.filter (fun (k, _) -> List.mem k headline_counters) totals))
      Kernels.all
  in
  Core.Obs.Ctl.set Core.Obs.Ctl.off;
  observed

(* --- phase 4: GC pressure per kernel ------------------------------------ *)

(* How many words each kernel makes the *host* GC allocate per run —
   the direct measure of the simulator's hot-path allocation discipline
   (event queue, heap index, scheduler). Observation stays off so the
   numbers describe the same configuration bechamel timed. Each kernel
   is run once to warm up (first-run arena/table growth is not steady
   state), then [reps] times under [Gc.minor_words] deltas. *)

let gc_kernels () =
  let reps = if quick then 1 else 3 in
  List.map
    (fun (name, kernel) ->
      kernel ();
      let w0 = Gc.minor_words () in
      let p0 = (Gc.quick_stat ()).Gc.promoted_words in
      for _ = 1 to reps do
        kernel ()
      done;
      let minor = (Gc.minor_words () -. w0) /. float_of_int reps in
      let promoted = ((Gc.quick_stat ()).Gc.promoted_words -. p0) /. float_of_int reps in
      (name, minor, promoted))
    Kernels.all

(* --- BENCH_kernels.json ------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* The kernel names come back from bechamel as "kernels/<artifact>"; keep
   just the artifact so the JSON keys are stable across grouping changes. *)
let kernel_key name =
  match String.rindex_opt name '/' with
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)
  | None -> name

(* The host block makes the baseline's provenance explicit: ns/run
   numbers are only comparable on the machine that wrote them, and
   compare.ml warns when the fresh run's host differs. *)
let host_cpu_model () =
  match
    In_channel.with_open_text "/proc/cpuinfo" (fun ic ->
        let rec scan () =
          match In_channel.input_line ic with
          | None -> None
          | Some line -> (
              match String.index_opt line ':' with
              | Some i
                when String.length line >= 10 && String.sub line 0 10 = "model name" ->
                  Some (String.trim (String.sub line (i + 1) (String.length line - i - 1)))
              | _ -> scan ())
        in
        scan ())
  with
  | Some model -> model
  | None | (exception Sys_error _) -> "unknown"

let host_domains () =
  match Sys.getenv_opt "MALLOC_REPRO_DOMAINS" with
  | Some v -> ( match int_of_string_opt v with Some d when d > 0 -> d | _ -> 1)
  | None -> 1

let write_json path ~jobs ~experiments_wall_s ~bechamel_wall_s ~total_wall_s ~counters ~gc
    kernels =
  let oc = open_out path in
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"schema\": 3,\n";
  Printf.fprintf oc "  \"host\": {\"cores\": %d, \"cpu_model\": \"%s\", \"domains\": %d},\n"
    (Domain.recommended_domain_count ())
    (json_escape (host_cpu_model ()))
    (host_domains ());
  Printf.fprintf oc "  \"mode\": %S,\n" (if quick then "quick" else "full");
  Printf.fprintf oc "  \"jobs\": %d,\n" jobs;
  Printf.fprintf oc "  \"experiments_wall_s\": %.3f,\n" experiments_wall_s;
  Printf.fprintf oc "  \"bechamel_wall_s\": %.3f,\n" bechamel_wall_s;
  Printf.fprintf oc "  \"total_wall_s\": %.3f,\n" total_wall_s;
  Printf.fprintf oc "  \"kernels_ns_per_run\": {";
  List.iteri
    (fun i (name, ns) ->
      Printf.fprintf oc "%s\n    \"%s\": %.1f" (if i = 0 then "" else ",")
        (json_escape (kernel_key name)) ns)
    kernels;
  Printf.fprintf oc "%s},\n" (if kernels = [] then "" else "\n  ");
  Printf.fprintf oc "  \"kernel_counters\": {";
  List.iteri
    (fun i (name, cs) ->
      Printf.fprintf oc "%s\n    \"%s\": {" (if i = 0 then "" else ",") (json_escape name);
      List.iteri
        (fun j (k, v) ->
          Printf.fprintf oc "%s\"%s\": %d" (if j = 0 then "" else ", ") (json_escape k) v)
        cs;
      Printf.fprintf oc "}")
    counters;
  Printf.fprintf oc "%s},\n" (if counters = [] then "" else "\n  ");
  Printf.fprintf oc "  \"kernel_gc\": {";
  List.iteri
    (fun i (name, minor, promoted) ->
      Printf.fprintf oc
        "%s\n    \"%s\": {\"minor_words_per_run\": %.0f, \"promoted_words_per_run\": %.0f}"
        (if i = 0 then "" else ",")
        (json_escape name) minor promoted)
    gc;
  Printf.fprintf oc "%s}\n}\n" (if gc = [] then "" else "\n  ");
  close_out oc

(* --- main ---------------------------------------------------------------- *)

let () =
  let opts = { Core.Exp_common.quick; seed = 1 } in
  let jobs = Core.Pool.default_jobs () in
  Printf.printf "malloc() reproduction benchmark harness (%s mode, %d job%s)\n\n"
    (if quick then "quick" else "full")
    jobs
    (if jobs = 1 then "" else "s");
  let t0 = Unix.gettimeofday () in
  let outcomes = Core.Experiments.run_all opts in
  let t1 = Unix.gettimeofday () in
  print_endline "== summary: paper artifacts and extensions ==";
  List.iter (fun o -> print_endline (Core.Outcome.summary_line o)) outcomes;
  let failed = List.filter (fun o -> not (Core.Outcome.passed o)) outcomes in
  Printf.printf "\n%d/%d experiments reproduce the paper's shape\n\n"
    (List.length outcomes - List.length failed)
    (List.length outcomes);
  let kernels =
    if Sys.getenv_opt "MALLOC_REPRO_NO_BECHAMEL" = None then run_bechamel () else []
  in
  let t2 = Unix.gettimeofday () in
  let counters = observe_kernels () in
  let gc = gc_kernels () in
  print_endline "=== gc: simulator allocation pressure per kernel (host minor words/run) ===";
  List.iter
    (fun (name, minor, promoted) ->
      Printf.printf "%-28s %14.0f minor words/run %12.0f promoted\n" name minor promoted)
    gc;
  let json_path =
    match Sys.getenv_opt "MALLOC_REPRO_BENCH_JSON" with
    | Some p -> p
    | None -> "BENCH_kernels.json"
  in
  write_json json_path ~jobs ~experiments_wall_s:(t1 -. t0) ~bechamel_wall_s:(t2 -. t1)
    ~total_wall_s:(t2 -. t0) ~counters ~gc kernels;
  Printf.printf "wall clock: experiments %.1fs, bechamel %.1fs -> %s\n" (t1 -. t0) (t2 -. t1)
    json_path;
  if failed <> [] then exit 1
