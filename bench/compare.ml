(* Kernel regression gate: compare a freshly generated kernels JSON
   against the committed baseline.

     compare.exe BASELINE.json FRESH.json [THRESHOLD]

   Absolute ns/run numbers are not comparable across hosts, so the gate
   works on per-kernel ratios fresh/baseline normalized by the *median*
   ratio: the median cancels the overall host-speed factor (and most of
   a shared noise term), leaving each kernel's speed relative to the
   rest of the fleet. A kernel whose normalized ratio exceeds THRESHOLD
   (default 1.10, i.e. >10% slower than the fleet moved) is a
   regression and the exit status is 1. A kernel present in the
   baseline but missing from the fresh run also fails — a silently
   dropped benchmark must not pass the gate. Kernels only in the fresh
   file are listed but don't fail (new benchmarks land before their
   baseline does). Exit 2 on usage or parse errors.

   The parser is deliberately minimal: it reads exactly the flat
   ["kernels_ns_per_run": { "name": number, ... }] object the bench
   harness writes (bench/main.ml), not general JSON. *)

let die fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 2) fmt

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> s
  | exception Sys_error e -> die "compare: cannot read %s: %s" path e

(* Extract the flat  "kernels_ns_per_run": { "k": 1.5, ... }  object. *)
let kernels_of_json path =
  let s = read_file path in
  let field = "\"kernels_ns_per_run\"" in
  let rec find i =
    if i + String.length field > String.length s then
      die "compare: %s: no kernels_ns_per_run field" path
    else if String.sub s i (String.length field) = field then i
    else find (i + 1)
  in
  let start = find 0 in
  let lbrace =
    match String.index_from_opt s start '{' with
    | Some i -> i
    | None -> die "compare: %s: malformed kernels_ns_per_run" path
  in
  let rbrace =
    match String.index_from_opt s lbrace '}' with
    | Some i -> i
    | None -> die "compare: %s: unterminated kernels_ns_per_run" path
  in
  let body = String.sub s (lbrace + 1) (rbrace - lbrace - 1) in
  String.split_on_char ',' body
  |> List.filter_map (fun entry ->
         match String.split_on_char ':' (String.trim entry) with
         | [ name; value ] -> (
             let name = String.trim name in
             let name =
               if String.length name >= 2 && name.[0] = '"' then
                 String.sub name 1 (String.length name - 2)
               else die "compare: %s: unquoted kernel name %S" path name
             in
             match float_of_string_opt (String.trim value) with
             | Some v -> Some (name, v)
             | None -> die "compare: %s: bad number for %s" path name)
         | [] | [ _ ] | _ :: _ :: _ ->
             if String.trim entry = "" then None
             else die "compare: %s: malformed entry %S" path entry)

let median xs =
  match List.sort compare xs with
  | [] -> die "compare: no kernels in common"
  | sorted ->
      let n = List.length sorted in
      if n mod 2 = 1 then List.nth sorted (n / 2)
      else (List.nth sorted ((n / 2) - 1) +. List.nth sorted (n / 2)) /. 2.

let () =
  let base_path, fresh_path, threshold =
    match Array.to_list Sys.argv with
    | [ _; b; f ] -> (b, f, 1.10)
    | [ _; b; f; t ] -> (
        match float_of_string_opt t with
        | Some t when t > 1.0 -> (b, f, t)
        | _ -> die "compare: threshold must be a float > 1.0")
    | _ -> die "usage: compare BASELINE.json FRESH.json [THRESHOLD]"
  in
  let base = kernels_of_json base_path in
  let fresh = kernels_of_json fresh_path in
  let missing =
    List.filter (fun (k, _) -> not (List.mem_assoc k fresh)) base |> List.map fst
  in
  let added =
    List.filter (fun (k, _) -> not (List.mem_assoc k base)) fresh |> List.map fst
  in
  let common =
    List.filter_map
      (fun (k, b) ->
        match List.assoc_opt k fresh with
        | Some f when b > 0. -> Some (k, b, f, f /. b)
        | _ -> None)
      base
    |> List.sort compare
  in
  let m = median (List.map (fun (_, _, _, r) -> r) common) in
  Printf.printf "compare: %d kernels, host factor (median ratio) %.3f, threshold %.2f\n"
    (List.length common) m threshold;
  let regressions = ref [] in
  List.iter
    (fun (k, b, f, r) ->
      let norm = r /. m in
      let flag = if norm > threshold then (regressions := k :: !regressions; "  <-- REGRESSION") else "" in
      Printf.printf "  %-16s %14.1f -> %14.1f ns/run  ratio %.3f  normalized %.3f%s\n"
        k b f r norm flag)
    common;
  List.iter (Printf.printf "  %-16s only in fresh run (no baseline yet)\n") added;
  List.iter (Printf.printf "  %-16s MISSING from fresh run\n") missing;
  if missing <> [] || !regressions <> [] then begin
    Printf.printf "compare: FAIL (%d regression(s), %d missing)\n"
      (List.length !regressions) (List.length missing);
    exit 1
  end
  else print_endline "compare: OK"
