(* Kernel regression gate: compare a freshly generated kernels JSON
   against the committed baseline.

     compare.exe BASELINE.json FRESH.json [THRESHOLD]

   The logic lives in Mb_suite.Compare so the test suite can exercise
   it against synthetic files; this executable is the CI-facing shell
   (exit 0 ok, 1 regressions/missing kernels, 2 usage/parse errors). *)

let () = Stdlib.exit (Mb_suite.Compare.main (Array.to_list Sys.argv))
