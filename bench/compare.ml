(* Kernel regression gate: compare a freshly generated kernels JSON
   against the committed baseline.

     compare.exe BASELINE.json FRESH.json [THRESHOLD]

   Absolute ns/run numbers are not comparable across hosts, so the gate
   works on per-kernel ratios fresh/baseline normalized by the *median*
   ratio: the median cancels the overall host-speed factor (and most of
   a shared noise term), leaving each kernel's speed relative to the
   rest of the fleet. A kernel whose normalized ratio exceeds THRESHOLD
   (default 1.10, i.e. >10% slower than the fleet moved) is a
   regression and the exit status is 1. A kernel present in the
   baseline but missing from the fresh run also fails — a silently
   dropped benchmark must not pass the gate. Kernels only in the fresh
   file are listed but don't fail (new benchmarks land before their
   baseline does). Exit 2 on usage or parse errors.

   Two further checks ride along:

   - host provenance (schema 3): when both files carry a ["host"]
     block and it differs, a warning is printed — ratios against a
     baseline from another machine are still median-normalized, but
     the reader should know what they're looking at. Schema-2 files
     (no host block) compare silently.
   - allocation-rate gate: a kernel whose fresh
     [kernel_gc.minor_words_per_run] exceeds the baseline's by more
     than 25% fails, threshold-independent — minor words per run are
     host-independent, so no normalization applies.

   The parser is deliberately minimal: it reads exactly the objects
   the bench harness writes (bench/main.ml), not general JSON. *)

let die fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 2) fmt

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> s
  | exception Sys_error e -> die "compare: cannot read %s: %s" path e

(* Extract the flat  "kernels_ns_per_run": { "k": 1.5, ... }  object. *)
let kernels_of_json path =
  let s = read_file path in
  let field = "\"kernels_ns_per_run\"" in
  let rec find i =
    if i + String.length field > String.length s then
      die "compare: %s: no kernels_ns_per_run field" path
    else if String.sub s i (String.length field) = field then i
    else find (i + 1)
  in
  let start = find 0 in
  let lbrace =
    match String.index_from_opt s start '{' with
    | Some i -> i
    | None -> die "compare: %s: malformed kernels_ns_per_run" path
  in
  let rbrace =
    match String.index_from_opt s lbrace '}' with
    | Some i -> i
    | None -> die "compare: %s: unterminated kernels_ns_per_run" path
  in
  let body = String.sub s (lbrace + 1) (rbrace - lbrace - 1) in
  String.split_on_char ',' body
  |> List.filter_map (fun entry ->
         match String.split_on_char ':' (String.trim entry) with
         | [ name; value ] -> (
             let name = String.trim name in
             let name =
               if String.length name >= 2 && name.[0] = '"' then
                 String.sub name 1 (String.length name - 2)
               else die "compare: %s: unquoted kernel name %S" path name
             in
             match float_of_string_opt (String.trim value) with
             | Some v -> Some (name, v)
             | None -> die "compare: %s: bad number for %s" path name)
         | [] | [ _ ] | _ :: _ :: _ ->
             if String.trim entry = "" then None
             else die "compare: %s: malformed entry %S" path entry)

(* The balanced {...} body following ["field":] in [s]; None if the
   field is absent. Brace-counting is as naive as the rest of the
   parser — fine for the harness's output, where no string value
   contains a brace. *)
let object_of s field =
  let needle = "\"" ^ field ^ "\"" in
  let n = String.length s and nn = String.length needle in
  let rec find i =
    if i + nn > n then None
    else if String.sub s i nn = needle then Some (i + nn)
    else find (i + 1)
  in
  match Option.bind (find 0) (fun j -> String.index_from_opt s j '{') with
  | None -> None
  | Some lbrace ->
      let depth = ref 0 and stop = ref (-1) and i = ref lbrace in
      while !stop < 0 && !i < n do
        (match s.[!i] with
        | '{' -> incr depth
        | '}' ->
            decr depth;
            if !depth = 0 then stop := !i
        | _ -> ());
        incr i
      done;
      if !stop < 0 then None else Some (String.sub s (lbrace + 1) (!stop - lbrace - 1))

(* "host": {"cores": 4, "cpu_model": "...", "domains": 1} — rendered
   back to a canonical one-line string for display and comparison.
   None for schema-2 files. *)
let host_of_json path =
  let s = read_file path in
  Option.map
    (fun body -> "{" ^ String.trim body ^ "}")
    (object_of s "host")

(* "kernel_gc": { "name": {"minor_words_per_run": X, ...}, ... } ->
   [(name, minor_words_per_run)]. Empty for files without the block. *)
let gc_minor_of_json path =
  let s = read_file path in
  match object_of s "kernel_gc" with
  | None -> []
  | Some body ->
      let n = String.length body in
      let out = ref [] in
      let i = ref 0 in
      (try
         while true do
           let q1 = String.index_from body !i '"' in
           let q2 = String.index_from body (q1 + 1) '"' in
           let name = String.sub body (q1 + 1) (q2 - q1 - 1) in
           let lb = String.index_from body q2 '{' in
           let rb = String.index_from body lb '}' in
           let entry = String.sub body lb (rb - lb + 1) in
           let key = "\"minor_words_per_run\":" in
           (let kn = String.length key in
            let rec find j =
              if j + kn > String.length entry then ()
              else if String.sub entry j kn = key then begin
                let stop = ref (j + kn) in
                while
                  !stop < String.length entry
                  && (match entry.[!stop] with
                     | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' | ' ' -> true
                     | _ -> false)
                do
                  incr stop
                done;
                match float_of_string_opt (String.trim (String.sub entry (j + kn) (!stop - j - kn))) with
                | Some v -> out := (name, v) :: !out
                | None -> die "compare: %s: bad minor_words_per_run for %s" path name
              end
              else find (j + 1)
            in
            find 0);
           i := rb + 1;
           if !i >= n then raise Exit
         done
       with Not_found | Exit -> ());
      List.rev !out

let median xs =
  match List.sort compare xs with
  | [] -> die "compare: no kernels in common"
  | sorted ->
      let n = List.length sorted in
      if n mod 2 = 1 then List.nth sorted (n / 2)
      else (List.nth sorted ((n / 2) - 1) +. List.nth sorted (n / 2)) /. 2.

let () =
  let base_path, fresh_path, threshold =
    match Array.to_list Sys.argv with
    | [ _; b; f ] -> (b, f, 1.10)
    | [ _; b; f; t ] -> (
        match float_of_string_opt t with
        | Some t when t > 1.0 -> (b, f, t)
        | _ -> die "compare: threshold must be a float > 1.0")
    | _ -> die "usage: compare BASELINE.json FRESH.json [THRESHOLD]"
  in
  let base = kernels_of_json base_path in
  let fresh = kernels_of_json fresh_path in
  (match (host_of_json base_path, host_of_json fresh_path) with
  | Some b, Some f when b <> f ->
      Printf.printf "compare: WARNING: host mismatch\n  baseline %s\n  fresh    %s\n" b f
  | _ -> ());
  let missing =
    List.filter (fun (k, _) -> not (List.mem_assoc k fresh)) base |> List.map fst
  in
  let added =
    List.filter (fun (k, _) -> not (List.mem_assoc k base)) fresh |> List.map fst
  in
  let common =
    List.filter_map
      (fun (k, b) ->
        match List.assoc_opt k fresh with
        | Some f when b > 0. -> Some (k, b, f, f /. b)
        | _ -> None)
      base
    |> List.sort compare
  in
  let m = median (List.map (fun (_, _, _, r) -> r) common) in
  Printf.printf "compare: %d kernels, host factor (median ratio) %.3f, threshold %.2f\n"
    (List.length common) m threshold;
  let regressions = ref [] in
  List.iter
    (fun (k, b, f, r) ->
      let norm = r /. m in
      let flag = if norm > threshold then (regressions := k :: !regressions; "  <-- REGRESSION") else "" in
      Printf.printf "  %-16s %14.1f -> %14.1f ns/run  ratio %.3f  normalized %.3f%s\n"
        k b f r norm flag)
    common;
  List.iter (Printf.printf "  %-16s only in fresh run (no baseline yet)\n") added;
  List.iter (Printf.printf "  %-16s MISSING from fresh run\n") missing;
  let gc_threshold = 1.25 in
  let gc_regressions = ref [] in
  let base_gc = gc_minor_of_json base_path and fresh_gc = gc_minor_of_json fresh_path in
  List.iter
    (fun (k, b) ->
      match List.assoc_opt k fresh_gc with
      | Some f when b > 0. ->
          let r = f /. b in
          if r > gc_threshold then begin
            gc_regressions := k :: !gc_regressions;
            Printf.printf
              "  %-16s minor words %.0f -> %.0f per run  ratio %.3f  <-- GC REGRESSION\n"
              k b f r
          end
      | _ -> ())
    base_gc;
  if missing <> [] || !regressions <> [] || !gc_regressions <> [] then begin
    Printf.printf "compare: FAIL (%d regression(s), %d GC regression(s), %d missing)\n"
      (List.length !regressions) (List.length !gc_regressions) (List.length missing);
    exit 1
  end
  else print_endline "compare: OK"
