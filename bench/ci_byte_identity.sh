#!/usr/bin/env bash
# Byte-identity gate over one MALLOC_REPRO_* engine knob.
#
#   ci_byte_identity.sh VAR "V1 V2 ..." PLAIN_REF CHECK_REF FAULTS_REF -- ARGS...
#
# Runs `mallocbench ARGS...` once per value V with MALLOC_REPRO_VAR=V
# and diffs the output against PLAIN_REF: the determinism invariants
# say the knob may change wall clock, never output. When FAULTS_REF is
# not "-", each value is also run under `--faults oom-pressure:7` and
# diffed against it (an injected-fault schedule is part of the
# reproducible artifact). When CHECK_REF is not "-", the last value is
# additionally run under `--check` and diffed against it (one checked
# sweep is enough — the checker itself is knob-independent; the plain
# sweep already pinned the knob).
#
# Factored out of ci.yml, where four near-identical shard/domain loops
# used to live; the workflow calls this once per knob per reference.
set -euo pipefail

if [ $# -lt 7 ]; then
  echo "usage: $0 VAR \"V1 V2 ...\" PLAIN_REF CHECK_REF|- FAULTS_REF|- -- ARGS..." >&2
  exit 2
fi

var=$1
values=$2
plain_ref=$3
check_ref=$4
faults_ref=$5
shift 5
if [ "$1" != "--" ]; then
  echo "$0: expected -- before the mallocbench arguments" >&2
  exit 2
fi
shift

run() { # run <value> <output> [extra mallocbench flags...]
  local value=$1 out=$2
  shift 2
  env "MALLOC_REPRO_${var}=${value}" \
    opam exec -- dune exec bin/mallocbench.exe -- "$@" > "$out"
}

out=$(mktemp)
trap 'rm -f "$out"' EXIT

last=""
for v in $values; do
  last=$v
  echo "== ${var}=${v}: plain vs ${plain_ref}"
  run "$v" "$out" "$@"
  diff "$plain_ref" "$out"
  if [ "$faults_ref" != "-" ]; then
    echo "== ${var}=${v}: --faults oom-pressure:7 vs ${faults_ref}"
    run "$v" "$out" "$@" --faults oom-pressure:7
    diff "$faults_ref" "$out"
  fi
done

if [ "$check_ref" != "-" ]; then
  echo "== ${var}=${last}: --check vs ${check_ref}"
  run "$last" "$out" "$@" --check
  diff "$check_ref" "$out"
fi
